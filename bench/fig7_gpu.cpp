//===-- bench/fig7_gpu.cpp - Paper Figure 7 (CUDA table, simulated) -----------===//
//
// Regenerates the structure of the paper's Figure 7 GPU comparison (E6 in
// DESIGN.md) on the simulated GPU device: for each app with a GPU
// schedule, the hybrid CPU/GPU-sim program is compiled from the *same
// algorithm* with a different schedule, and the kernel-graph size the
// paper highlights (e.g. 58 distinct kernels for local Laplacian) is
// reported from the device's launch statistics. Absolute times are not
// comparable to real CUDA (see DESIGN.md substitution 2).
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "metrics/ScheduleMetrics.h"
#include "runtime/GpuSim.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace halide;

namespace {

RawBuffer makeOutput(const App &A, int W, int H,
                     std::shared_ptr<void> *Keep) {
  const Function &F = A.Output.function();
  Type T = F.outputType();
  int Dims = F.dimensions();
  int C = Dims >= 3 ? 3 : 1;
  auto Storage = std::make_shared<std::vector<uint8_t>>(
      size_t(int64_t(W) * H * C * T.bytes()), uint8_t(0));
  *Keep = Storage;
  RawBuffer Raw;
  Raw.Host = Storage->data();
  Raw.ElemType = T;
  Raw.Dimensions = Dims;
  Raw.Dim[0] = {0, W, 1};
  Raw.Dim[1] = {0, H, W};
  if (Dims >= 3)
    Raw.Dim[2] = {0, C, W * H};
  Raw.Owner = Storage;
  return Raw;
}

} // namespace

int main() {
  const int W = 512, H = 384;
  std::printf("=== Figure 7 (GPU, SIMULATED device): hybrid schedules ===\n");
  std::printf("(one frame per app at %dx%d; kernel counts from the "
              "simulator)\n\n",
              W, H);
  std::printf("%-16s %12s %12s %10s %10s\n", "app", "gpu-sim(ms)",
              "cpu-tuned(ms)", "kernels", "blocks");

  std::vector<App> Apps = paperApps(/*LocalLaplacianLevels=*/4);
  for (App &A : Apps) {
    if (!A.ScheduleGpu)
      continue;
    ParamBindings Inputs = A.MakeInputs(W, H);
    std::shared_ptr<void> Keep;
    RawBuffer Out = makeOutput(A, W, H, &Keep);
    ParamBindings Params = Inputs;
    Params.bind(A.Output.name(), Out);

    A.ScheduleTuned();
    double CpuMs =
        benchmarkMs(*Pipeline(A.Output).compile(Target::jit()), Params, 2);

    A.ScheduleGpu();
    auto Gpu = Pipeline(A.Output).compile(Target::gpuSim());
    Gpu->run(Params); // warm-up
    gpuSim().resetStats();
    double GpuMs = benchmarkMs(*Gpu, Params, 2);
    // Stats accumulate over warm-up + timed runs; report per-frame.
    int64_t Frames = 3; // 1 warm-up inside benchmarkMs + 2 timed
    int64_t Kernels = gpuSim().stats().KernelLaunches / Frames;
    int64_t Blocks = gpuSim().stats().BlocksExecuted / Frames;

    std::printf("%-16s %12.2f %12.2f %10lld %10lld\n", A.Name.c_str(),
                GpuMs, CpuMs, (long long)Kernels, (long long)Blocks);
  }
  std::printf("\npaper (real Tesla C2070): bilateral 8.1ms, interpolate "
              "9.1ms, local Laplacian 21ms with 58 distinct kernels. Here "
              "the device is software-simulated: compare kernel-graph "
              "structure, not absolute time.\n");
  return 0;
}
