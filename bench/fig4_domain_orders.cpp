//===-- bench/fig4_domain_orders.cpp - Paper Figure 4 -------------------------===//
//
// Enumerates the domain-order choices of the paper's Figure 4 on the blur
// pipeline — serial row-major/column-major, vectorized, parallel, and
// split/tiled traversals — and times each (E3 in DESIGN.md). The call
// schedule is held fixed (producer at root) so only the domain order
// varies.
//
//===----------------------------------------------------------------------===//

#include "lang/ImageParam.h"
#include "lang/Pipeline.h"
#include "metrics/ScheduleMetrics.h"

#include <cstdio>
#include <functional>
#include <vector>

using namespace halide;

namespace {

struct Harness {
  ImageParam In;
  Var x{"x"}, y{"y"};
  Func Blurx, Out;
  Harness() : In(UInt(8), 2, "f4_in"), Blurx("f4_blurx"), Out("f4_out") {
    auto InC = [&](Expr X, Expr Y) {
      return cast(UInt(16), In(clamp(X, 0, In.width() - 1),
                               clamp(Y, 0, In.height() - 1)));
    };
    Blurx(x, y) =
        cast(UInt(16), (InC(x - 1, y) + InC(x, y) + InC(x + 1, y)) / 3);
    Out(x, y) = cast(UInt(8),
                     (Blurx(x, y - 1) + Blurx(x, y) + Blurx(x, y + 1)) / 3);
    Blurx.computeRoot();
  }
};

} // namespace

int main() {
  const int W = 1536, H = 1024;
  struct Order {
    const char *Name;
    std::function<void(Harness &)> Apply;
  };
  std::vector<Order> Orders = {
      {"serial y, serial x (row-major)", [](Harness &) {}},
      {"serial x, serial y (column-major)",
       [](Harness &H) { H.Out.reorder(H.y, H.x); }},
      {"serial y, vectorized x",
       [](Harness &H) { H.Out.vectorize(H.x, 8); }},
      {"parallel y, vectorized x",
       [](Harness &H) { H.Out.parallel(H.y).vectorize(H.x, 8); }},
      {"split 2x2 (tiled traversal)",
       [](Harness &H) {
         Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
         H.Out.tile(H.x, H.y, xo, yo, xi, yi, 2, 2);
       }},
      {"tiled 32x32, vec x, parallel tiles",
       [](Harness &H) {
         Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
         H.Out.tile(H.x, H.y, xo, yo, xi, yi, 32, 32)
             .vectorize(xi, 8)
             .parallel(yo);
       }},
      {"unrolled x by 4",
       [](Harness &H) { H.Out.unroll(H.x, 4); }},
  };

  std::printf("=== Figure 4: domain orders for the blur output stage ===\n");
  std::printf("(%dx%d, producer at root; only the traversal varies)\n\n", W,
              H);
  std::printf("%-40s %10s\n", "domain order", "time(ms)");
  for (const Order &O : Orders) {
    Harness Hn;
    Hn.Out.function().resetSchedule();
    Hn.Blurx.function().resetSchedule();
    Hn.Blurx.computeRoot();
    O.Apply(Hn);
    Buffer<uint8_t> Input(W, H);
    Input.fill([](int X, int Y) { return (X + Y) % 256; });
    Buffer<uint8_t> Output(W, H);
    ParamBindings Params;
    Params.bind("f4_in", Input);
    Params.bind(Hn.Out.name(), Output);
    auto CP = Pipeline(Hn.Out).compile(Target::jit());
    std::printf("%-40s %10.3f\n", O.Name, benchmarkMs(*CP, Params, 5));
  }
  std::printf("\n(The paper's Figure 4 is illustrative; this regenerates "
              "the same choice space with measured times.)\n");
  return 0;
}
