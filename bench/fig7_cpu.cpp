//===-- bench/fig7_cpu.cpp - Paper Figure 7 (x86 table) ------------------------===//
//
// Regenerates the paper's Figure 7 CPU comparison (E5 in DESIGN.md): for
// each app, the schedule-optimized Halide implementation (JIT, native)
// against the hand-written expert baseline and the naive clean-C++
// baseline, plus the breadth-first Halide schedule to isolate the value of
// scheduling. Also reports code-size factors as the paper does.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "metrics/ScheduleMetrics.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace halide;

namespace {

RawBuffer makeOutput(const App &A, int W, int H,
                     std::shared_ptr<void> *Keep) {
  const Function &F = A.Output.function();
  Type T = F.outputType();
  int Dims = F.dimensions();
  int C = Dims >= 3 ? 3 : 1;
  auto Storage = std::make_shared<std::vector<uint8_t>>(
      size_t(int64_t(W) * H * C * T.bytes()), uint8_t(0));
  *Keep = Storage;
  RawBuffer Raw;
  Raw.Host = Storage->data();
  Raw.ElemType = T;
  Raw.Dimensions = Dims;
  Raw.Dim[0] = {0, W, 1};
  Raw.Dim[1] = {0, H, W};
  if (Dims >= 3)
    Raw.Dim[2] = {0, C, W * H};
  Raw.Owner = Storage;
  return Raw;
}

} // namespace

int main() {
  const int W = 768, H = 512;
  std::printf("=== Figure 7 (x86): Halide vs hand-written baselines, "
              "%dx%d ===\n\n",
              W, H);
  std::printf("%-16s %10s %10s %10s %10s %8s | paper: halide %s expert, "
              "lines factor\n",
              "app", "halide(ms)", "bf(ms)", "expert(ms)", "naive(ms)",
              "speedup", "vs");

  std::vector<App> Apps = paperApps(/*LocalLaplacianLevels=*/6);
  for (App &A : Apps) {
    ParamBindings Inputs = A.MakeInputs(W, H);
    std::shared_ptr<void> Keep;
    RawBuffer Out = makeOutput(A, W, H, &Keep);
    ParamBindings Params = Inputs;
    Params.bind(A.Output.name(), Out);

    A.ScheduleTuned();
    double TunedMs =
        benchmarkMs(*Pipeline(A.Output).compile(Target::jit()), Params, 3);
    A.ScheduleBreadthFirst();
    double BfMs =
        benchmarkMs(*Pipeline(A.Output).compile(Target::jit()), Params, 3);
    double ExpertMs =
        A.ExpertBaselineMs ? A.ExpertBaselineMs(W, H) : -1.0;
    double NaiveMs = A.NaiveBaselineMs ? A.NaiveBaselineMs(W, H) : -1.0;

    std::printf("%-16s %10.2f %10.2f %10.2f %10.2f %7.2fx | %4.0fms vs "
                "%4.0fms, %dx shorter\n",
                A.Name.c_str(), TunedMs, BfMs, ExpertMs, NaiveMs,
                ExpertMs > 0 ? ExpertMs / TunedMs : 0.0, A.PaperHalideMs,
                A.PaperExpertMs,
                A.PaperExpertLines / std::max(1, A.PaperHalideLines));
  }
  std::printf(
      "\nshape to check (paper, 4-core + SIMD): tuned Halide >= expert "
      "baseline, >> naive C++ and breadth-first Halide. On this single-core "
      "container speedups come from locality and fusion only.\n");
  return 0;
}
