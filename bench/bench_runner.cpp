//===-- bench/bench_runner.cpp - Perf-baseline runner ---------------------===//
//
// Times every registered app under each of its packaged schedules through
// the selected backend and (with --json <path>) writes the results as a
// JSON perf baseline — time-per-pixel per app per schedule — that future
// optimization PRs benchmark themselves against (BENCH_seed.json at the
// repo root holds the seed trajectory).
//
// --threads=N sets both the task scheduler's pool size and the Target's
// thread request, and is recorded in every row. A built-in threads sweep
// additionally times the parallel (tuned) schedules of blur and
// local_laplacian on the bytecode VM serially and at 4 threads, so the
// parallel-runtime speedup is part of the tracked trajectory
// (--no-thread-sweep skips it).
//
// --serve switches to throughput mode: N client threads (--serve-clients)
// each submit M frames (--serve-frames) of every app's tuned schedule
// through Pipeline::realizeAsync against the shared task scheduler, and
// the rows report aggregate frames/sec plus p50/p99 per-frame latency —
// the serving trajectory rather than the single-frame one.
//
// Observability (see README's Observability section): --profile compiles
// with Target::Profile and prints the per-stage profiler report plus the
// unified metrics snapshot after the runs; --trace <path> records a
// Chrome trace-event JSON of the whole bench (load it in
// chrome://tracing or https://ui.perfetto.dev); --value-trace <path>
// compiles with Target::Trace and streams every load/store/realization
// of the runs into a binary value trace (README "Value tracing") that
// trace_analyzer replays into per-stage locality reports. --app <name>
// restricts the run to one registered app. Requesting more --threads
// than the host has cores warns and is recorded in the JSON baseline
// (threads_oversubscribed), since such rows time contention, not
// speedup. When BENCH_seed.json is readable and records a different
// host_threads than this machine's, a warning is printed and the
// mismatch lands in the JSON output (baseline_host_threads_mismatch) —
// rows timed on different core counts are not comparable.
//
// Every single-frame row records the schedule's requested vector width
// (vector_width in the JSON; 1 = scalar), so SIMD regressions show up in
// the baseline. --novec demotes each schedule's vectorized loops to
// serial before compiling (splits intact — the same loop structure minus
// the lanes), and --jit-flags overrides the C backend's host-compiler
// flags: together they isolate the emitted SIMD's contribution, e.g.
//   bench_runner --backend=jit --app=blur [--novec]
//                --jit-flags "-O3 -fno-tree-vectorize"
//
// Usage: bench_runner [--backend interp|vm|jit|gpu] [--threads N]
//                     [--json <path>] [--width W] [--height H]
//                     [--iters N] [--no-thread-sweep] [--novec]
//                     [--jit-flags <flags>] [--app <name>]
//                     [--serve] [--serve-clients N] [--serve-frames M]
//                     [--profile] [--trace <path>] [--value-trace <path>]
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "metrics/ScheduleMetrics.h"
#include "observe/MetricsRegistry.h"
#include "observe/Profiler.h"
#include "observe/TraceRecorder.h"
#include "observe/TraceStream.h"
#include "runtime/TaskScheduler.h"
#include "support/DiffTest.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace halide;

namespace {

struct BenchRow {
  std::string App;
  std::string Schedule;
  std::string BackendName;
  int Threads = 1;
  int VecWidth = 1;
  int Width = 0, Height = 0;
  double Ms = 0;
  double NsPerPixel = 0;
};

/// --novec: after each schedule is applied, demote its vectorized loops
/// to serial (splits intact). Comparing a run against its --novec twin
/// isolates the SIMD contribution of an otherwise identical schedule.
bool ScalarizeSchedules = false;

void runOne(App &A, const char *ScheduleName,
            const std::function<void()> &Apply, const Target &T, int W,
            int H, int Iters, std::vector<BenchRow> *Rows) {
  if (!Apply)
    return;
  Apply();
  if (ScalarizeSchedules)
    scalarizeVectorLoops(A.Output.function());
  std::shared_ptr<const Executable> Exe = Pipeline(A.Output).compile(T);
  ParamBindings Params = A.MakeInputs(W, H);
  std::shared_ptr<void> Keep;
  RawBuffer Out = makeAppOutput(A, W, H, &Keep);
  Params.bind(A.Output.name(), Out);
  double Ms = benchmarkMs(*Exe, Params, Iters);
  BenchRow Row;
  Row.App = A.Name;
  Row.Schedule = ScheduleName;
  Row.BackendName = backendName(T.TargetBackend);
  // The interpreter never dispatches through the task scheduler; its rows
  // are strictly single-threaded whatever the pool size.
  Row.Threads = T.TargetBackend == Backend::Interpreter ? 1
                : T.NumThreads > 0 ? T.NumThreads
                                   : taskSchedulerThreads();
  Row.VecWidth = scheduleVectorWidth(A.Output.function());
  Row.Width = W;
  Row.Height = H;
  Row.Ms = Ms;
  Row.NsPerPixel = Ms * 1e6 / (double(W) * H);
  Rows->push_back(Row);
  std::printf(
      "%-16s %-14s %-11s t%-2d v%-2d %4dx%-4d %9.3f ms  %8.3f ns/px\n",
      A.Name.c_str(), ScheduleName, Row.BackendName.c_str(), Row.Threads,
      Row.VecWidth, W, H, Ms, Row.NsPerPixel);
}

struct ServeRow {
  std::string App;
  std::string Schedule;
  std::string BackendName;
  int Threads = 1;
  int Clients = 0, FramesPerClient = 0;
  int Width = 0, Height = 0;
  double Fps = 0;
  double P50Ms = 0, P99Ms = 0;
};

double percentileMs(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = size_t(P * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

/// Throughput mode for one app: \p Clients client threads each realize
/// \p FramesPer frames asynchronously (alternating request priorities,
/// waiting on each frame's future before submitting the next — a closed
/// per-client loop, like a serving tier with per-connection pipelining of
/// depth one). Compile and one warmup frame happen before the clock
/// starts, so the row measures steady-state serving: cached executable,
/// warm buffer pool.
void runServe(App &A, const Target &T, int W, int H, int Clients,
              int FramesPer, std::vector<ServeRow> *Rows) {
  const bool Tuned = A.ScheduleTuned != nullptr;
  const std::function<void()> &Apply =
      Tuned ? A.ScheduleTuned : A.ScheduleBreadthFirst;
  if (!Apply)
    return;
  Apply();
  Pipeline Pipe(A.Output);
  ParamBindings Params = A.MakeInputs(W, H);
  {
    std::shared_ptr<void> Keep;
    RawBuffer Out = makeAppOutput(A, W, H, &Keep);
    Pipe.realizeAsync(Out, Params, T).wait(); // compile + warm the pools
  }

  std::vector<std::vector<double>> Latencies;
  Latencies.resize(size_t(Clients));
  const auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> ClientThreads;
  for (int C = 0; C < Clients; ++C) {
    ClientThreads.emplace_back([&, C] {
      std::shared_ptr<void> Keep;
      RawBuffer Out = makeAppOutput(A, W, H, &Keep);
      for (int F = 0; F < FramesPer; ++F) {
        const auto T0 = std::chrono::steady_clock::now();
        Pipe.realizeAsync(Out, Params, T, /*Priority=*/C % 2).wait();
        Latencies[size_t(C)].push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - T0)
                .count());
      }
    });
  }
  for (std::thread &Th : ClientThreads)
    Th.join();
  const double WallSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  std::vector<double> All;
  for (const std::vector<double> &L : Latencies)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());

  ServeRow Row;
  Row.App = A.Name;
  Row.Schedule = Tuned ? "tuned" : "breadth_first";
  Row.BackendName = backendName(T.TargetBackend);
  Row.Threads = T.NumThreads > 0 ? T.NumThreads : taskSchedulerThreads();
  Row.Clients = Clients;
  Row.FramesPerClient = FramesPer;
  Row.Width = W;
  Row.Height = H;
  Row.Fps = WallSec > 0 ? double(All.size()) / WallSec : 0;
  Row.P50Ms = percentileMs(All, 0.50);
  Row.P99Ms = percentileMs(All, 0.99);
  Rows->push_back(Row);
  std::printf("%-16s %-14s %-11s t%-2d %dx%-2d clients  %8.2f fps  "
              "p50 %8.3f ms  p99 %8.3f ms\n",
              A.Name.c_str(), Row.Schedule.c_str(), Row.BackendName.c_str(),
              Row.Threads, Clients, FramesPer, Row.Fps, Row.P50Ms,
              Row.P99Ms);
}

/// The threads sweep: the two apps whose tuned schedules carry the
/// paper's parallel strategies, timed on the VM serially and at 4
/// threads. The scheduler pool is resized around each row so the thread
/// request measures real workers, then restored.
void runThreadsSweep(std::vector<App> &Apps, int W, int H, int Iters,
                     std::vector<BenchRow> *Rows) {
  const int Before = taskSchedulerThreads();
  for (App &A : Apps) {
    if (A.Name != "blur" && A.Name != "local_laplacian")
      continue;
    for (int N : {1, 4}) {
      setTaskSchedulerThreads(N);
      runOne(A, "tuned", A.ScheduleTuned, Target::vm().withThreads(N), W,
             H, Iters, Rows);
    }
  }
  setTaskSchedulerThreads(Before);
}

/// host_threads recorded in a baseline JSON (0 when absent/unreadable).
int baselineHostThreads(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return 0;
  std::stringstream SS;
  SS << In.rdbuf();
  const std::string Text = SS.str();
  size_t Pos = Text.find("\"host_threads\"");
  if (Pos == std::string::npos)
    return 0;
  Pos = Text.find(':', Pos);
  if (Pos == std::string::npos)
    return 0;
  return std::atoi(Text.c_str() + Pos + 1);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  Target T = Target::jit();
  int W = 512, H = 384, Iters = 5, Threads = 0;
  bool ThreadSweep = true;
  bool Serve = false;
  int ServeClients = 4, ServeFrames = 16;
  bool Profile = false;
  std::string TracePath;
  std::string ValueTracePath;
  std::string AppFilter;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    std::string BackendText;
    if (Arg.rfind("--backend=", 0) == 0)
      BackendText = Arg.substr(std::strlen("--backend="));
    else if (Arg == "--backend" && I + 1 < Argc)
      BackendText = Argv[++I];

    if (!BackendText.empty()) {
      if (!Target::parse(BackendText, &T)) {
        std::fprintf(stderr,
                     "unknown backend '%s' (try interp, vm, jit, or gpu)\n",
                     BackendText.c_str());
        return 2;
      }
    } else if (Arg.rfind("--threads=", 0) == 0)
      Threads = std::atoi(Arg.c_str() + std::strlen("--threads="));
    else if (Arg == "--threads" && I + 1 < Argc)
      Threads = std::atoi(Argv[++I]);
    else if (Arg == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (Arg == "--width" && I + 1 < Argc)
      W = std::atoi(Argv[++I]);
    else if (Arg == "--height" && I + 1 < Argc)
      H = std::atoi(Argv[++I]);
    else if (Arg == "--iters" && I + 1 < Argc)
      Iters = std::atoi(Argv[++I]);
    else if (Arg == "--no-thread-sweep")
      ThreadSweep = false;
    else if (Arg == "--novec")
      ScalarizeSchedules = true;
    else if (Arg.rfind("--jit-flags=", 0) == 0)
      T = T.withJitFlags(Arg.substr(std::strlen("--jit-flags=")));
    else if (Arg == "--jit-flags" && I + 1 < Argc)
      T = T.withJitFlags(Argv[++I]);
    else if (Arg == "--serve")
      Serve = true;
    else if (Arg == "--serve-clients" && I + 1 < Argc)
      ServeClients = std::atoi(Argv[++I]);
    else if (Arg == "--serve-frames" && I + 1 < Argc)
      ServeFrames = std::atoi(Argv[++I]);
    else if (Arg == "--profile")
      Profile = true;
    else if (Arg.rfind("--trace=", 0) == 0)
      TracePath = Arg.substr(std::strlen("--trace="));
    else if (Arg == "--trace" && I + 1 < Argc)
      TracePath = Argv[++I];
    else if (Arg.rfind("--value-trace=", 0) == 0)
      ValueTracePath = Arg.substr(std::strlen("--value-trace="));
    else if (Arg == "--value-trace" && I + 1 < Argc)
      ValueTracePath = Argv[++I];
    else if (Arg.rfind("--app=", 0) == 0)
      AppFilter = Arg.substr(std::strlen("--app="));
    else if (Arg == "--app" && I + 1 < Argc)
      AppFilter = Argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: %s [--backend interp|vm|jit|gpu] [--threads N] "
                   "[--json <path>] [--width W] [--height H] [--iters N] "
                   "[--no-thread-sweep] [--novec] [--jit-flags <flags>] "
                   "[--app <name>] [--serve] "
                   "[--serve-clients N] [--serve-frames M] [--profile] "
                   "[--trace <path>] [--value-trace <path>]\n",
                   Argv[0]);
      return 2;
    }
  }

  const int HostThreads = int(std::thread::hardware_concurrency());
  const bool Oversubscribed =
      Threads > 0 && HostThreads > 0 && Threads > HostThreads;
  if (Oversubscribed)
    std::fprintf(stderr,
                 "warning: --threads %d exceeds this host's %d hardware "
                 "threads; rows will time scheduling contention, not "
                 "parallel speedup\n",
                 Threads, HostThreads);

  const int BaselineThreads = baselineHostThreads("BENCH_seed.json");
  const bool BaselineMismatch =
      BaselineThreads > 0 && HostThreads > 0 && BaselineThreads != HostThreads;
  if (BaselineMismatch)
    std::fprintf(stderr,
                 "warning: BENCH_seed.json was measured on a host with %d "
                 "hardware threads, this host has %d; absolute times are "
                 "not comparable against that baseline\n",
                 BaselineThreads, HostThreads);

  if (Threads > 0) {
    setTaskSchedulerThreads(Threads);
    T = T.withThreads(Threads);
  }
  if (Profile) {
    setProfilerEnabled(true);
    T = T.withProfile();
  }
  if (!TracePath.empty()) {
    traceSetThreadName("main");
    traceStart();
  }
  if (!ValueTracePath.empty()) {
    T = T.withTrace();
    if (!traceStreamStart(ValueTracePath)) {
      std::fprintf(stderr, "cannot write %s\n", ValueTracePath.c_str());
      return 1;
    }
  }

  std::vector<BenchRow> Rows;
  std::vector<ServeRow> ServeRows;
  std::vector<App> Apps = paperApps();
  Apps.push_back(makeHistogramEqualizeApp());
  if (!AppFilter.empty()) {
    bool Known = false;
    for (App &A : Apps)
      Known = Known || A.Name == AppFilter;
    if (!Known) {
      std::fprintf(stderr, "unknown app '%s'\n", AppFilter.c_str());
      return 2;
    }
  }
  if (Serve) {
    for (App &A : Apps) {
      if (!AppFilter.empty() && A.Name != AppFilter)
        continue;
      runServe(A, T, W, H, ServeClients, ServeFrames, &ServeRows);
    }
  } else {
    for (App &A : Apps) {
      if (!AppFilter.empty() && A.Name != AppFilter)
        continue;
      runOne(A, "breadth_first", A.ScheduleBreadthFirst, T, W, H, Iters,
             &Rows);
      runOne(A, "tuned", A.ScheduleTuned, T, W, H, Iters, &Rows);
      runOne(A, "gpu_sim", A.ScheduleGpu, T, W, H, Iters, &Rows);
    }
    if (ThreadSweep && AppFilter.empty())
      runThreadsSweep(Apps, W, H, Iters, &Rows);
  }

  if (!TracePath.empty()) {
    traceStop();
    if (traceWriteFile(TracePath))
      std::printf("wrote trace to %s\n", TracePath.c_str());
    else {
      std::fprintf(stderr, "cannot write %s\n", TracePath.c_str());
      return 1;
    }
  }
  if (!ValueTracePath.empty()) {
    traceStreamStop();
    TraceStreamStats TS = traceStreamStats();
    std::printf("wrote value trace to %s (%lld events, %lld dropped, "
                "%lld bytes)\n",
                ValueTracePath.c_str(), (long long)TS.EventsEmitted,
                (long long)TS.EventsDropped, (long long)TS.BytesWritten);
  }
  if (Profile) {
    std::printf("\n%s\n", profilerReport().str().c_str());
    std::printf("%s", metricsSnapshot().str().c_str());
  }

  if (!JsonPath.empty()) {
    std::ofstream Json(JsonPath);
    if (!Json) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    // host_threads records the runner's core count: baselines from
    // different machines are not comparable, and the field makes that
    // visible in the artifact instead of folklore.
    Json << "{\n  \"frame\": {\"width\": " << W << ", \"height\": " << H
         << "},\n  \"iters\": " << Iters << ",\n  \"host_threads\": "
         << std::thread::hardware_concurrency()
         << ",\n  \"threads_oversubscribed\": "
         << (Oversubscribed ? "true" : "false")
         << ",\n  \"baseline_host_threads\": " << BaselineThreads
         << ",\n  \"baseline_host_threads_mismatch\": "
         << (BaselineMismatch ? "true" : "false") << ",\n  \"backend\": \""
         << backendName(T.TargetBackend) << "\",\n  \"results\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const BenchRow &R = Rows[I];
      Json << "    {\"app\": \"" << R.App << "\", \"schedule\": \""
           << R.Schedule << "\", \"backend\": \"" << R.BackendName
           << "\", \"threads\": " << R.Threads
           << ", \"vector_width\": " << R.VecWidth
           << ", \"ms\": " << R.Ms
           << ", \"ns_per_pixel\": " << R.NsPerPixel << "}"
           << (I + 1 < Rows.size() ? "," : "") << "\n";
    }
    Json << "  ],\n  \"serve_results\": [\n";
    for (size_t I = 0; I < ServeRows.size(); ++I) {
      const ServeRow &R = ServeRows[I];
      Json << "    {\"app\": \"" << R.App << "\", \"schedule\": \""
           << R.Schedule << "\", \"backend\": \"" << R.BackendName
           << "\", \"threads\": " << R.Threads
           << ", \"clients\": " << R.Clients
           << ", \"frames_per_client\": " << R.FramesPerClient
           << ", \"fps\": " << R.Fps << ", \"p50_ms\": " << R.P50Ms
           << ", \"p99_ms\": " << R.P99Ms << "}"
           << (I + 1 < ServeRows.size() ? "," : "") << "\n";
    }
    Json << "  ]\n}\n";
    std::printf("wrote %zu rows to %s\n", Rows.size() + ServeRows.size(),
                JsonPath.c_str());
  }
  return 0;
}
