//===-- bench/bench_runner.cpp - Perf-baseline runner ---------------------===//
//
// Times every registered app under each of its packaged schedules through
// the selected backend and (with --json <path>) writes the results as a
// JSON perf baseline — time-per-pixel per app per schedule — that future
// optimization PRs benchmark themselves against (BENCH_seed.json at the
// repo root holds the seed trajectory).
//
// --threads=N sets both the task scheduler's pool size and the Target's
// thread request, and is recorded in every row. A built-in threads sweep
// additionally times the parallel (tuned) schedules of blur and
// local_laplacian on the bytecode VM serially and at 4 threads, so the
// parallel-runtime speedup is part of the tracked trajectory
// (--no-thread-sweep skips it).
//
// Usage: bench_runner [--backend interp|vm|jit|gpu] [--threads N]
//                     [--json <path>] [--width W] [--height H]
//                     [--iters N] [--no-thread-sweep]
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "metrics/ScheduleMetrics.h"
#include "runtime/TaskScheduler.h"
#include "support/DiffTest.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace halide;

namespace {

struct BenchRow {
  std::string App;
  std::string Schedule;
  std::string BackendName;
  int Threads = 1;
  int Width = 0, Height = 0;
  double Ms = 0;
  double NsPerPixel = 0;
};

void runOne(App &A, const char *ScheduleName,
            const std::function<void()> &Apply, const Target &T, int W,
            int H, int Iters, std::vector<BenchRow> *Rows) {
  if (!Apply)
    return;
  Apply();
  std::shared_ptr<const Executable> Exe = Pipeline(A.Output).compile(T);
  ParamBindings Params = A.MakeInputs(W, H);
  std::shared_ptr<void> Keep;
  RawBuffer Out = makeAppOutput(A, W, H, &Keep);
  Params.bind(A.Output.name(), Out);
  double Ms = benchmarkMs(*Exe, Params, Iters);
  BenchRow Row;
  Row.App = A.Name;
  Row.Schedule = ScheduleName;
  Row.BackendName = backendName(T.TargetBackend);
  // The interpreter never dispatches through the task scheduler; its rows
  // are strictly single-threaded whatever the pool size.
  Row.Threads = T.TargetBackend == Backend::Interpreter ? 1
                : T.NumThreads > 0 ? T.NumThreads
                                   : taskSchedulerThreads();
  Row.Width = W;
  Row.Height = H;
  Row.Ms = Ms;
  Row.NsPerPixel = Ms * 1e6 / (double(W) * H);
  Rows->push_back(Row);
  std::printf("%-16s %-14s %-11s t%-2d %4dx%-4d %9.3f ms  %8.3f ns/px\n",
              A.Name.c_str(), ScheduleName, Row.BackendName.c_str(),
              Row.Threads, W, H, Ms, Row.NsPerPixel);
}

/// The threads sweep: the two apps whose tuned schedules carry the
/// paper's parallel strategies, timed on the VM serially and at 4
/// threads. The scheduler pool is resized around each row so the thread
/// request measures real workers, then restored.
void runThreadsSweep(std::vector<App> &Apps, int W, int H, int Iters,
                     std::vector<BenchRow> *Rows) {
  const int Before = taskSchedulerThreads();
  for (App &A : Apps) {
    if (A.Name != "blur" && A.Name != "local_laplacian")
      continue;
    for (int N : {1, 4}) {
      setTaskSchedulerThreads(N);
      runOne(A, "tuned", A.ScheduleTuned, Target::vm().withThreads(N), W,
             H, Iters, Rows);
    }
  }
  setTaskSchedulerThreads(Before);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  Target T = Target::jit();
  int W = 512, H = 384, Iters = 5, Threads = 0;
  bool ThreadSweep = true;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    std::string BackendText;
    if (Arg.rfind("--backend=", 0) == 0)
      BackendText = Arg.substr(std::strlen("--backend="));
    else if (Arg == "--backend" && I + 1 < Argc)
      BackendText = Argv[++I];

    if (!BackendText.empty()) {
      if (!Target::parse(BackendText, &T)) {
        std::fprintf(stderr,
                     "unknown backend '%s' (try interp, vm, jit, or gpu)\n",
                     BackendText.c_str());
        return 2;
      }
    } else if (Arg.rfind("--threads=", 0) == 0)
      Threads = std::atoi(Arg.c_str() + std::strlen("--threads="));
    else if (Arg == "--threads" && I + 1 < Argc)
      Threads = std::atoi(Argv[++I]);
    else if (Arg == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (Arg == "--width" && I + 1 < Argc)
      W = std::atoi(Argv[++I]);
    else if (Arg == "--height" && I + 1 < Argc)
      H = std::atoi(Argv[++I]);
    else if (Arg == "--iters" && I + 1 < Argc)
      Iters = std::atoi(Argv[++I]);
    else if (Arg == "--no-thread-sweep")
      ThreadSweep = false;
    else {
      std::fprintf(stderr,
                   "usage: %s [--backend interp|vm|jit|gpu] [--threads N] "
                   "[--json <path>] [--width W] [--height H] [--iters N] "
                   "[--no-thread-sweep]\n",
                   Argv[0]);
      return 2;
    }
  }

  if (Threads > 0) {
    setTaskSchedulerThreads(Threads);
    T = T.withThreads(Threads);
  }

  std::vector<BenchRow> Rows;
  std::vector<App> Apps = paperApps();
  Apps.push_back(makeHistogramEqualizeApp());
  for (App &A : Apps) {
    runOne(A, "breadth_first", A.ScheduleBreadthFirst, T, W, H, Iters,
           &Rows);
    runOne(A, "tuned", A.ScheduleTuned, T, W, H, Iters, &Rows);
    runOne(A, "gpu_sim", A.ScheduleGpu, T, W, H, Iters, &Rows);
  }
  if (ThreadSweep)
    runThreadsSweep(Apps, W, H, Iters, &Rows);

  if (!JsonPath.empty()) {
    std::ofstream Json(JsonPath);
    if (!Json) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    Json << "{\n  \"frame\": {\"width\": " << W << ", \"height\": " << H
         << "},\n  \"iters\": " << Iters << ",\n  \"backend\": \""
         << backendName(T.TargetBackend) << "\",\n  \"results\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const BenchRow &R = Rows[I];
      Json << "    {\"app\": \"" << R.App << "\", \"schedule\": \""
           << R.Schedule << "\", \"backend\": \"" << R.BackendName
           << "\", \"threads\": " << R.Threads << ", \"ms\": " << R.Ms
           << ", \"ns_per_pixel\": " << R.NsPerPixel << "}"
           << (I + 1 < Rows.size() ? "," : "") << "\n";
    }
    Json << "  ]\n}\n";
    std::printf("wrote %zu rows to %s\n", Rows.size(), JsonPath.c_str());
  }
  return 0;
}
