//===-- bench/fig8_cross_resolution.cpp - Paper Figure 8 -----------------------===//
//
// Regenerates the paper's Figure 8 (E7/E9 in DESIGN.md): autotune a
// pipeline at a source resolution, run the winning schedule at a target
// resolution, and compare against tuning directly at the target. The
// paper's observation — schedules generalize better from low resolutions
// to high than the reverse — is reproduced as the "slowdown" column.
// Also cross-tests the GPU-style schedule on the CPU (section 6.1).
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "autotune/Autotuner.h"
#include "lang/ImageParam.h"
#include "metrics/ScheduleMetrics.h"

#include <cstdio>

using namespace halide;

namespace {

struct BlurPipe {
  ImageParam In;
  Var x{"x"}, y{"y"};
  Func Blurx, Out;
  BlurPipe() : In(UInt(8), 2, "f8_in"), Blurx("f8_blurx"), Out("f8_out") {
    auto InC = [&](Expr X, Expr Y) {
      return cast(UInt(16), In(clamp(X, 0, In.width() - 1),
                               clamp(Y, 0, In.height() - 1)));
    };
    Blurx(x, y) =
        cast(UInt(16), (InC(x - 1, y) + InC(x, y) + InC(x + 1, y)) / 3);
    Out(x, y) = cast(UInt(8),
                     (Blurx(x, y - 1) + Blurx(x, y) + Blurx(x, y + 1)) / 3);
  }
};

ParamBindings bindingsFor(BlurPipe &P, int W, int H, RawBuffer *OutRaw) {
  Buffer<uint8_t> Input(W, H);
  Input.fill([](int X, int Y) { return (X * 3 + Y) % 256; });
  Buffer<uint8_t> Output(W, H);
  ParamBindings Params;
  Params.bind("f8_in", Input);
  Params.bind(P.Out.name(), Output);
  *OutRaw = Output.raw();
  return Params;
}

double timeAt(BlurPipe &P, const Genome &G, const ScheduleSpace &Space,
              int W, int H) {
  Space.apply(G);
  RawBuffer OutRaw;
  ParamBindings Params = bindingsFor(P, W, H, &OutRaw);
  auto CP = Pipeline(P.Out).compile(Target::jit());
  return benchmarkMs(*CP, Params, 3);
}

} // namespace

int main() {
  // "0.3 MP" and "2 MP" stand-ins sized for the tuning budget.
  const int SmallW = 256, SmallH = 192;
  const int LargeW = 1024, LargeH = 768;

  std::printf("=== Figure 8: cross-testing autotuned schedules across "
              "resolutions (blur) ===\n\n");

  TuneOptions Opts;
  Opts.Population = 10;
  Opts.Generations = 4;
  Opts.BenchIters = 2;
  Opts.Seed = 3;

  BlurPipe P;
  ScheduleSpace Space(P.Out.function());

  // Tune at each size.
  RawBuffer SmallOut, LargeOut;
  ParamBindings SmallParams = bindingsFor(P, SmallW, SmallH, &SmallOut);
  ParamBindings LargeParams = bindingsFor(P, LargeW, LargeH, &LargeOut);
  TuneResult TunedSmall = autotune(P.Out, SmallParams, SmallOut, Opts);
  Genome BestSmall = TunedSmall.Best;
  TuneResult TunedLarge = autotune(P.Out, LargeParams, LargeOut, Opts);
  Genome BestLarge = TunedLarge.Best;

  double SmallOnLarge = timeAt(P, BestSmall, Space, LargeW, LargeH);
  double LargeOnLarge = timeAt(P, BestLarge, Space, LargeW, LargeH);
  double LargeOnSmall = timeAt(P, BestLarge, Space, SmallW, SmallH);
  double SmallOnSmall = timeAt(P, BestSmall, Space, SmallW, SmallH);

  std::printf("%-10s %-10s %16s %16s %10s\n", "source", "target",
              "cross-tested(ms)", "tuned-on-target", "slowdown");
  std::printf("%-10s %-10s %16.3f %16.3f %9.2fx\n", "0.3MP*", "2MP*",
              SmallOnLarge, LargeOnLarge, SmallOnLarge / LargeOnLarge);
  std::printf("%-10s %-10s %16.3f %16.3f %9.2fx\n", "2MP*", "0.3MP*",
              LargeOnSmall, SmallOnSmall, LargeOnSmall / SmallOnSmall);
  std::printf("  (*%dx%d and %dx%d stand-ins; paper: low->high "
              "generalizes ~1.2x, high->low up to 16x)\n\n",
              SmallW, SmallH, LargeW, LargeH);

  // Section 6.1's second cross test: the GPU-style schedule on the CPU.
  App A = makeBlurApp();
  RawBuffer Out2;
  Buffer<uint8_t> OutBuf(LargeW, LargeH);
  ParamBindings AppParams = A.MakeInputs(LargeW, LargeH);
  AppParams.bind(A.Output.name(), OutBuf);
  A.ScheduleTuned();
  double CpuMs =
      benchmarkMs(*Pipeline(A.Output).compile(Target::jit()), AppParams, 3);
  A.ScheduleGpu();
  double GpuOnCpuMs =
      benchmarkMs(*Pipeline(A.Output).compile(Target::jit()), AppParams, 3);
  std::printf("GPU-style schedule executed on CPU: %.3f ms vs best CPU "
              "schedule %.3f ms (%.1fx slower; paper reports 7x for local "
              "Laplacian)\n",
              GpuOnCpuMs, CpuMs, GpuOnCpuMs / CpuMs);
  (void)Out2;
  return 0;
}
