//===-- bench/fig6_app_properties.cpp - Paper Figure 6 -------------------------===//
//
// Regenerates the paper's Figure 6 table: number of functions, number of
// stencil stages, and graph structure for each evaluation app (E4 in
// DESIGN.md), computed by introspecting the pipeline graphs.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "apps/Apps.h"

#include <cstdio>

using namespace halide;

int main() {
  std::printf("=== Figure 6: properties of the example applications ===\n\n");
  std::printf("%-20s %12s %12s   %-14s %12s %12s\n", "app", "#functions",
              "#stencils", "structure", "paper #fn", "paper #st");

  struct PaperRow {
    const char *Structure;
    int Functions, Stencils;
  };
  PaperRow Paper[] = {
      {"simple", 2, 2},        {"moderate", 7, 3},
      {"complex", 32, 22},     {"complex", 49, 47},
      {"very complex", 99, 85},
  };

  std::vector<App> Apps = paperApps(/*LocalLaplacianLevels=*/8);
  for (size_t I = 0; I < Apps.size(); ++I) {
    const App &A = Apps[I];
    auto Env = buildEnvironment(A.Output.function());
    int Stencils = countStencils(A.Output.function());
    std::printf("%-20s %12zu %12d   %-14s %12d %12d\n", A.Name.c_str(),
                Env.size(), Stencils, Paper[I].Structure,
                Paper[I].Functions, Paper[I].Stencils);
  }
  std::printf("\n(Counts differ in detail from the paper because our app "
              "implementations are independent reconstructions; the size "
              "ranking and order of magnitude reproduce Figure 6. See "
              "DESIGN.md.)\n");
  return 0;
}
