//===-- bench/sec6_autotune.cpp - Section 6.1 autotuner convergence ------------===//
//
// Regenerates the paper's section-6.1 observations (E8 in DESIGN.md): the
// genetic algorithm's best-per-generation convergence curve, and the
// comparison of the converged schedule to breadth-first. Budgets are
// scaled down from the paper's population-128 / multi-hour runs.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "autotune/Autotuner.h"
#include "lang/ImageParam.h"
#include "metrics/ScheduleMetrics.h"

#include <cstdio>

using namespace halide;

int main() {
  std::printf("=== Section 6.1: autotuning convergence ===\n\n");

  // Blur.
  {
    App A = makeBlurApp();
    const int W = 512, H = 384;
    ParamBindings Inputs = A.MakeInputs(W, H);
    Buffer<uint8_t> Out(W, H);

    A.ScheduleBreadthFirst();
    ParamBindings Params = Inputs;
    Params.bind(A.Output.name(), Out);
    double BfMs =
        benchmarkMs(*Pipeline(A.Output).compile(Target::jit()), Params, 3);

    TuneOptions Opts;
    Opts.Population = 12;
    Opts.Generations = 5;
    Opts.BenchIters = 2;
    Opts.Seed = 42;
    TuneResult R = autotune(A.Output, Inputs, Out.raw(), Opts);

    std::printf("blur %dx%d: breadth-first %.3f ms\n", W, H, BfMs);
    std::printf("  generation best (ms):");
    for (double Ms : R.BestPerGeneration)
      std::printf(" %.3f", Ms);
    std::printf("\n  converged: %.3f ms (%.2fx over breadth-first) after "
                "%d candidates\n",
                R.BestMs, BfMs / R.BestMs, R.CandidatesEvaluated);
    std::printf("  best schedule: %s\n\n", R.Description.c_str());
  }

  // Histogram equalization (reductions constrain the space).
  {
    App A = makeHistogramEqualizeApp();
    const int W = 448, H = 320;
    ParamBindings Inputs = A.MakeInputs(W, H);
    Buffer<uint8_t> Out(W, H);
    A.ScheduleBreadthFirst();
    ParamBindings Params = Inputs;
    Params.bind(A.Output.name(), Out);
    double BfMs =
        benchmarkMs(*Pipeline(A.Output).compile(Target::jit()), Params, 3);

    TuneOptions Opts;
    Opts.Population = 8;
    Opts.Generations = 4;
    Opts.BenchIters = 2;
    Opts.Seed = 7;
    TuneResult R = autotune(A.Output, Inputs, Out.raw(), Opts);
    std::printf("histeq %dx%d: breadth-first %.3f ms -> tuned %.3f ms "
                "(%.2fx), %d candidates\n",
                W, H, BfMs, R.BestMs, BfMs / R.BestMs,
                R.CandidatesEvaluated);
    std::printf("  best schedule: %s\n", R.Description.c_str());
  }
  std::printf("\npaper: tuning converged within 15%% of final performance "
              "in under a day per app (population 128); this harness uses "
              "minutes-scale budgets with the same algorithm.\n");
  return 0;
}
