//===-- bench/trace_analyzer.cpp - Schedule locality from a value trace ---===//
//
// Replays a binary value trace (observe/TraceStream.h, produced by
// bench_runner --value-trace or any Target::Trace run) into per-stage
// locality reports — the numbers the paper's schedule comparisons are
// about, measured from the actual execution instead of predicted:
//
//   * stores per distinct stored element (the recomputation factor: 1.0
//     for breadth-first, > 1 wherever a tile or sliding window re-derives
//     producer values),
//   * realized vs. consumed footprint (allocated extent product per
//     realization against the distinct elements actually loaded),
//   * a reuse-distance histogram per stage (log2 buckets of the number of
//     accesses between consecutive touches of the same element — small
//     distances mean values are consumed while hot),
//   * producer->consumer interleaving (how often the serial event order
//     switches stages; breadth-first computes whole stages back to back,
//     fused/tiled schedules alternate).
//
// Threaded traces interleave at flush granularity, so event *order*
// derived numbers (reuse distances, interleaving) are only meaningful for
// serial traces; counts and footprints are exact either way.
//
// Usage: trace_analyzer <trace-file> [--json <path>]
//
//===----------------------------------------------------------------------===//

#include "observe/TraceStream.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

using namespace halide;

namespace {

struct StageReport {
  std::string Name;
  int64_t LoadEvents = 0, StoreEvents = 0;
  int64_t LoadLanes = 0, StoreLanes = 0;
  int64_t Realizations = 0;
  int64_t RealizedElems = 0; ///< sum of extent products over realizations
  /// coord -> global lane tick of the most recent access (loads+stores).
  std::unordered_map<int32_t, int64_t> LastTouch;
  std::unordered_map<int32_t, int64_t> LoadedCoords; ///< coord -> load count
  std::unordered_map<int32_t, int64_t> StoredCoords; ///< coord -> store count
  int64_t ReuseHist[32] = {0}; ///< log2 buckets of re-touch distances
};

int log2Bucket(int64_t D) {
  int B = 0;
  while (D > 1 && B < 31) {
    D >>= 1;
    ++B;
  }
  return B;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path, JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (Arg.rfind("--json=", 0) == 0)
      JsonPath = Arg.substr(std::strlen("--json="));
    else if (Path.empty() && !Arg.empty() && Arg[0] != '-')
      Path = Arg;
    else {
      std::fprintf(stderr, "usage: %s <trace-file> [--json <path>]\n",
                   Argv[0]);
      return 2;
    }
  }
  if (Path.empty()) {
    std::fprintf(stderr, "usage: %s <trace-file> [--json <path>]\n", Argv[0]);
    return 2;
  }

  std::vector<TraceEvent> Events;
  std::string Error;
  if (!readTraceFile(Path, &Events, &Error)) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), Error.c_str());
    return 1;
  }

  // Name pre-pass: Name records map stage ids to buffer names.
  std::map<uint16_t, std::string> Names;
  for (const TraceEvent &E : Events)
    if (E.Kind == TraceEventKind::TraceName)
      Names[E.StageId] = E.Name;
  auto NameOf = [&Names](uint16_t Id) {
    auto It = Names.find(Id);
    return It != Names.end() ? It->second : "stage" + std::to_string(Id);
  };

  // The pipeline's output realization brackets the whole execution, so
  // the first Begin record identifies the output stage and its extents
  // give the output pixel count.
  int64_t OutputPixels = 0;
  uint16_t OutputStage = 0;
  bool HaveOutput = false;

  std::map<uint16_t, StageReport> Stages;
  // Ordered-pair stage switches in event order (access events only).
  std::map<std::pair<uint16_t, uint16_t>, int64_t> Switches;
  bool HaveLast = false;
  uint16_t LastStage = 0;
  int64_t Tick = 0;

  for (const TraceEvent &E : Events) {
    if (E.Kind == TraceEventKind::TraceName)
      continue;
    StageReport &S = Stages[E.StageId];
    switch (E.Kind) {
    case TraceEventKind::TraceBegin: {
      ++S.Realizations;
      int64_t Elems = 1;
      for (int32_t Ext : E.Coords)
        Elems *= Ext;
      S.RealizedElems += Elems;
      if (!HaveOutput) {
        HaveOutput = true;
        OutputStage = E.StageId;
        OutputPixels = Elems;
      }
      break;
    }
    case TraceEventKind::TraceEnd:
      break;
    case TraceEventKind::TraceLoad:
    case TraceEventKind::TraceStore: {
      const bool IsLoad = E.Kind == TraceEventKind::TraceLoad;
      (IsLoad ? S.LoadEvents : S.StoreEvents) += 1;
      (IsLoad ? S.LoadLanes : S.StoreLanes) += int64_t(E.Coords.size());
      if (HaveLast && LastStage != E.StageId)
        ++Switches[{LastStage, E.StageId}];
      HaveLast = true;
      LastStage = E.StageId;
      for (int32_t Coord : E.Coords) {
        auto [It, Fresh] = S.LastTouch.try_emplace(Coord, Tick);
        if (!Fresh) {
          ++S.ReuseHist[log2Bucket(Tick - It->second)];
          It->second = Tick;
        }
        ++(IsLoad ? S.LoadedCoords : S.StoredCoords)[Coord];
        ++Tick;
      }
      break;
    }
    default:
      break;
    }
  }

  int64_t TotalLanes = 0;
  for (const auto &[Id, S] : Stages)
    TotalLanes += S.LoadLanes + S.StoreLanes;
  std::printf("trace: %s\n", Path.c_str());
  std::printf("events: %zu records, %lld access lanes, %zu stages\n",
              Events.size(), (long long)TotalLanes, Stages.size());
  if (HaveOutput)
    std::printf("output: %s (%lld pixels)\n", NameOf(OutputStage).c_str(),
                (long long)OutputPixels);

  for (const auto &[Id, S] : Stages) {
    const int64_t DistinctStored = int64_t(S.StoredCoords.size());
    const int64_t DistinctLoaded = int64_t(S.LoadedCoords.size());
    const double Recompute =
        DistinctStored ? double(S.StoreLanes) / double(DistinctStored) : 0;
    const double StoresPerOut =
        OutputPixels ? double(S.StoreLanes) / double(OutputPixels) : 0;
    std::printf("\n%s:\n", NameOf(Id).c_str());
    std::printf("  loads:  %lld lanes in %lld events (%lld distinct "
                "elements consumed)\n",
                (long long)S.LoadLanes, (long long)S.LoadEvents,
                (long long)DistinctLoaded);
    std::printf("  stores: %lld lanes in %lld events (%lld distinct "
                "elements)\n",
                (long long)S.StoreLanes, (long long)S.StoreEvents,
                (long long)DistinctStored);
    if (S.Realizations)
      std::printf("  realized: %lld elements over %lld realization(s); "
                  "consumed %lld (%.1f%% of realized)\n",
                  (long long)S.RealizedElems, (long long)S.Realizations,
                  (long long)DistinctLoaded,
                  S.RealizedElems
                      ? 100.0 * double(DistinctLoaded) /
                            double(S.RealizedElems)
                      : 0.0);
    if (S.StoreLanes)
      std::printf("  stores/output-pixel: %.3f   recompute factor: %.3f\n",
                  StoresPerOut, Recompute);
    bool AnyReuse = false;
    for (int B = 0; B < 32; ++B)
      AnyReuse = AnyReuse || S.ReuseHist[B];
    if (AnyReuse) {
      std::printf("  reuse distance (accesses between touches, log2 "
                  "buckets):\n");
      for (int B = 0; B < 32; ++B)
        if (S.ReuseHist[B])
          std::printf("    2^%-2d  %lld\n", B, (long long)S.ReuseHist[B]);
    }
  }

  if (!Switches.empty()) {
    std::vector<std::pair<std::pair<uint16_t, uint16_t>, int64_t>> Pairs(
        Switches.begin(), Switches.end());
    std::sort(Pairs.begin(), Pairs.end(),
              [](const auto &A, const auto &B) { return A.second > B.second; });
    std::printf("\nstage interleaving (event-order switches):\n");
    for (size_t I = 0; I < Pairs.size() && I < 8; ++I)
      std::printf("  %s -> %s: %lld\n", NameOf(Pairs[I].first.first).c_str(),
                  NameOf(Pairs[I].first.second).c_str(),
                  (long long)Pairs[I].second);
  }

  if (!JsonPath.empty()) {
    std::ofstream Json(JsonPath);
    if (!Json) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    Json << "{\n  \"records\": " << Events.size()
         << ",\n  \"access_lanes\": " << TotalLanes
         << ",\n  \"output_pixels\": " << OutputPixels
         << ",\n  \"stages\": [\n";
    size_t I = 0;
    for (const auto &[Id, S] : Stages) {
      const int64_t DistinctStored = int64_t(S.StoredCoords.size());
      Json << "    {\"name\": \"" << NameOf(Id)
           << "\", \"load_lanes\": " << S.LoadLanes
           << ", \"store_lanes\": " << S.StoreLanes
           << ", \"distinct_loaded\": " << S.LoadedCoords.size()
           << ", \"distinct_stored\": " << DistinctStored
           << ", \"realizations\": " << S.Realizations
           << ", \"realized_elems\": " << S.RealizedElems
           << ", \"recompute_factor\": "
           << (DistinctStored ? double(S.StoreLanes) / double(DistinctStored)
                              : 0)
           << "}" << (++I < Stages.size() ? "," : "") << "\n";
    }
    Json << "  ]\n}\n";
    std::printf("\nwrote %s\n", JsonPath.c_str());
  }
  return 0;
}
