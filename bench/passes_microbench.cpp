//===-- bench/passes_microbench.cpp - Compiler pass microbenchmarks -----------===//
//
// Supporting benchmark (E10 in DESIGN.md): google-benchmark timings of the
// compiler itself — simplification, bounds analysis, and full lowering of
// small and large pipelines — so compile-time regressions are visible.
// Also hosts the execution-dispatch microbench: the tree-walking
// interpreter vs the bytecode VM over the Figure-3 blur schedules, the
// measurement behind the differential suite's backend switch.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "analysis/Bounds.h"
#include "codegen/Executable.h"
#include "lang/ImageParam.h"
#include "lang/Pipeline.h"
#include "support/DiffTest.h"
#include "transforms/Simplify.h"

#include <benchmark/benchmark.h>

using namespace halide;

namespace {

Expr buildBoundsExpr() {
  Expr X = Variable::make(Int(32), "x");
  Expr Y = Variable::make(Int(32), "y");
  Expr E = (X * 8 + 7) - (X * 8) + (Y * 32 + 31) / 32 +
           min(X * 4 + 3, Y * 4) - max(X, Y) + (X * 16 + 5) % 16;
  return E;
}

void BM_Simplify(benchmark::State &State) {
  Expr E = buildBoundsExpr();
  for (auto _ : State)
    benchmark::DoNotOptimize(simplify(E));
}
BENCHMARK(BM_Simplify);

void BM_BoundsOfExpr(benchmark::State &State) {
  Expr E = buildBoundsExpr();
  Scope<Interval> S;
  S.push("x", Interval(Expr(0), Expr(1000)));
  S.push("y", Interval(Expr(0), Expr(1000)));
  for (auto _ : State)
    benchmark::DoNotOptimize(boundsOfExprInScope(E, S));
}
BENCHMARK(BM_BoundsOfExpr);

void BM_LowerBlur(benchmark::State &State) {
  App A = makeBlurApp();
  A.ScheduleTuned();
  for (auto _ : State)
    benchmark::DoNotOptimize(lower(A.Output.function()).Body.get());
}
BENCHMARK(BM_LowerBlur);

void BM_LowerCameraPipe(benchmark::State &State) {
  App A = makeCameraPipeApp();
  A.ScheduleTuned();
  for (auto _ : State)
    benchmark::DoNotOptimize(lower(A.Output.function()).Body.get());
}
BENCHMARK(BM_LowerCameraPipe);

void BM_LowerLocalLaplacian(benchmark::State &State) {
  App A = makeLocalLaplacianApp(/*Levels=*/6);
  A.ScheduleTuned();
  for (auto _ : State)
    benchmark::DoNotOptimize(lower(A.Output.function()).Body.get());
}
BENCHMARK(BM_LowerLocalLaplacian);

/// Lowering time of the deep-pyramid simulated-GPU schedule by pyramid
/// depth: the workload whose bounds expressions used to grow exponentially
/// before bounds inference learned to share subexpressions (ISSUE 4 /
/// LoweringScalabilityTest enforce the polynomial trend; this row makes
/// the trend visible in compile-time benchmarks).
void BM_LowerPyramid(benchmark::State &State) {
  App A = makeLocalLaplacianApp(int(State.range(0)));
  A.ScheduleGpu();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        lower(A.Output.function(), Target::gpuSim()).Body.get());
}
BENCHMARK(BM_LowerPyramid)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// Execution dispatch: interpreter vs bytecode VM on the Figure-3 blur.
//===----------------------------------------------------------------------===//

/// The Figure-3 two-stage blur under one of its canonical schedules
/// (bench/fig3_blur_strategies.cpp is the full table; these are the
/// representative rows: no producer-consumer locality, tiles, and the
/// sliding window).
struct BlurFixture {
  ImageParam In;
  Var x{"x"}, y{"y"};
  Func Blurx, Out;
  Buffer<uint8_t> Input, Output;
  ParamBindings Params;

  BlurFixture(const std::string &Tag, int W, int H)
      : In(UInt(8), 2, Tag + "_in"), Blurx(Tag + "_blurx"),
        Out(Tag + "_out"), Input(W, H), Output(W, H) {
    auto InC = [&](Expr X, Expr Y) {
      return cast(UInt(16), In(clamp(X, 0, In.width() - 1),
                               clamp(Y, 0, In.height() - 1)));
    };
    Blurx(x, y) =
        cast(UInt(16), (InC(x - 1, y) + InC(x, y) + InC(x + 1, y)) / 3);
    Out(x, y) = cast(UInt(8),
                     (Blurx(x, y - 1) + Blurx(x, y) + Blurx(x, y + 1)) / 3);
    Input.fill([](int X, int Y) { return (X * 23 + Y * 7) % 256; });
    Params.bind(In.name(), Input);
    Params.bind(Out.name(), Output);
  }

  void applySchedule(const std::string &Name) {
    Out.function().resetSchedule();
    Blurx.function().resetSchedule();
    if (Name == "breadth_first") {
      Blurx.computeRoot();
    } else if (Name == "tiled") {
      Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
      Out.tile(x, y, xo, yo, xi, yi, 32, 32).parallel(yo);
      Blurx.computeAt(Out, xo);
    } else if (Name == "sliding_window") {
      Blurx.storeRoot().computeAt(Out, y);
    }
  }
};

void dispatchBench(benchmark::State &State, const Target &T,
                   const char *Schedule) {
  // Frame small enough that an interpreter iteration stays in the
  // microbench budget; both engines run the identical lowered pipeline.
  BlurFixture F(std::string("mb_") + backendName(T.TargetBackend) + "_" +
                    Schedule,
                192, 128);
  F.applySchedule(Schedule);
  std::shared_ptr<const Executable> Exe = Pipeline(F.Out).compile(T);
  for (auto _ : State)
    benchmark::DoNotOptimize(Exe->run(F.Params));
}

void BM_DispatchInterpBreadthFirst(benchmark::State &State) {
  dispatchBench(State, Target::interpreter(), "breadth_first");
}
BENCHMARK(BM_DispatchInterpBreadthFirst)->Unit(benchmark::kMillisecond);

void BM_DispatchVmBreadthFirst(benchmark::State &State) {
  dispatchBench(State, Target::vm(), "breadth_first");
}
BENCHMARK(BM_DispatchVmBreadthFirst)->Unit(benchmark::kMillisecond);

void BM_DispatchInterpTiled(benchmark::State &State) {
  dispatchBench(State, Target::interpreter(), "tiled");
}
BENCHMARK(BM_DispatchInterpTiled)->Unit(benchmark::kMillisecond);

void BM_DispatchVmTiled(benchmark::State &State) {
  dispatchBench(State, Target::vm(), "tiled");
}
BENCHMARK(BM_DispatchVmTiled)->Unit(benchmark::kMillisecond);

void BM_DispatchInterpSlidingWindow(benchmark::State &State) {
  dispatchBench(State, Target::interpreter(), "sliding_window");
}
BENCHMARK(BM_DispatchInterpSlidingWindow)->Unit(benchmark::kMillisecond);

void BM_DispatchVmSlidingWindow(benchmark::State &State) {
  dispatchBench(State, Target::vm(), "sliding_window");
}
BENCHMARK(BM_DispatchVmSlidingWindow)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
