//===-- bench/passes_microbench.cpp - Compiler pass microbenchmarks -----------===//
//
// Supporting benchmark (E10 in DESIGN.md): google-benchmark timings of the
// compiler itself — simplification, bounds analysis, and full lowering of
// small and large pipelines — so compile-time regressions are visible.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "analysis/Bounds.h"
#include "lang/ImageParam.h"
#include "lang/Pipeline.h"
#include "transforms/Simplify.h"

#include <benchmark/benchmark.h>

using namespace halide;

namespace {

Expr buildBoundsExpr() {
  Expr X = Variable::make(Int(32), "x");
  Expr Y = Variable::make(Int(32), "y");
  Expr E = (X * 8 + 7) - (X * 8) + (Y * 32 + 31) / 32 +
           min(X * 4 + 3, Y * 4) - max(X, Y) + (X * 16 + 5) % 16;
  return E;
}

void BM_Simplify(benchmark::State &State) {
  Expr E = buildBoundsExpr();
  for (auto _ : State)
    benchmark::DoNotOptimize(simplify(E));
}
BENCHMARK(BM_Simplify);

void BM_BoundsOfExpr(benchmark::State &State) {
  Expr E = buildBoundsExpr();
  Scope<Interval> S;
  S.push("x", Interval(Expr(0), Expr(1000)));
  S.push("y", Interval(Expr(0), Expr(1000)));
  for (auto _ : State)
    benchmark::DoNotOptimize(boundsOfExprInScope(E, S));
}
BENCHMARK(BM_BoundsOfExpr);

void BM_LowerBlur(benchmark::State &State) {
  App A = makeBlurApp();
  A.ScheduleTuned();
  for (auto _ : State)
    benchmark::DoNotOptimize(lower(A.Output.function()).Body.get());
}
BENCHMARK(BM_LowerBlur);

void BM_LowerCameraPipe(benchmark::State &State) {
  App A = makeCameraPipeApp();
  A.ScheduleTuned();
  for (auto _ : State)
    benchmark::DoNotOptimize(lower(A.Output.function()).Body.get());
}
BENCHMARK(BM_LowerCameraPipe);

void BM_LowerLocalLaplacian(benchmark::State &State) {
  App A = makeLocalLaplacianApp(/*Levels=*/6);
  A.ScheduleTuned();
  for (auto _ : State)
    benchmark::DoNotOptimize(lower(A.Output.function()).Body.get());
}
BENCHMARK(BM_LowerLocalLaplacian);

} // namespace

BENCHMARK_MAIN();
