//===-- bench/fig3_blur_strategies.cpp - Paper Figure 3 + section 3.1 --------===//
//
// Regenerates the paper's Figure 3: for the two-stage blur, quantifies
// span (available parallelism), max reuse distance (locality), and work
// amplification (redundant recomputation) for each scheduling strategy,
// plus measured wall time through the JIT backend (E1/E2 in DESIGN.md).
// Analytic metrics are gathered at a reduced size (reuse tracking is
// per-element); times are measured at full size.
//
//===----------------------------------------------------------------------===//

#include "lang/ImageParam.h"
#include "lang/Pipeline.h"
#include "metrics/ScheduleMetrics.h"

#include <cstdio>
#include <functional>
#include <vector>

using namespace halide;

namespace {

struct Harness {
  ImageParam In;
  Var x{"x"}, y{"y"};
  Func Blurx, Out;

  Harness() : In(UInt(8), 2, "f3_in"), Blurx("f3_blurx"), Out("f3_out") {
    auto InC = [&](Expr X, Expr Y) {
      return cast(UInt(16), In(clamp(X, 0, In.width() - 1),
                               clamp(Y, 0, In.height() - 1)));
    };
    Blurx(x, y) =
        cast(UInt(16), (InC(x - 1, y) + InC(x, y) + InC(x + 1, y)) / 3);
    Out(x, y) = cast(UInt(8),
                     (Blurx(x, y - 1) + Blurx(x, y) + Blurx(x, y + 1)) / 3);
  }

  void reset() {
    Out.function().resetSchedule();
    Blurx.function().resetSchedule();
  }
};

ParamBindings makeParams(Harness &H, int W, int HH, RawBuffer *OutRaw,
                         std::vector<Buffer<uint8_t>> *Keep) {
  Buffer<uint8_t> Input(W, HH);
  Input.fill([](int X, int Y) { return (X * 23 + Y * 7) % 256; });
  Buffer<uint8_t> Output(W, HH);
  Keep->push_back(Input);
  Keep->push_back(Output);
  ParamBindings P;
  P.bind("f3_in", Input);
  P.bind(H.Out.name(), Output);
  *OutRaw = Output.raw();
  return P;
}

} // namespace

int main() {
  // Paper size 3072x2046; metrics at 192x128 (identical shape, tractable
  // per-element reuse tracking), times at 1536x1024.
  const int MW = 192, MH = 128;
  const int TW = 1536, TH = 1024;

  struct Strategy {
    const char *Name;
    std::function<void(Harness &)> Apply;
    const char *PaperRow;
  };
  std::vector<Strategy> Strategies = {
      {"breadth_first",
       [](Harness &H) { H.Blurx.computeRoot(); },
       "span>=WxH reuse=whole-image amp=1.0"},
      {"full_fusion", [](Harness &) {},
       "span>=WxH reuse=3x3 amp=2.0 (amplified by stencil)"},
      {"sliding_window",
       [](Harness &H) { H.Blurx.storeRoot().computeAt(H.Out, H.y); },
       "span=W reuse=W*(3+3) amp=1.0 (serialized y)"},
      {"tiled",
       [](Harness &H) {
         Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
         H.Out.tile(H.x, H.y, xo, yo, xi, yi, 32, 32).parallel(yo);
         H.Blurx.computeAt(H.Out, xo);
       },
       "span>=WxH reuse=34x32x3 amp=1.0625"},
      {"sliding_in_tiles",
       [](Harness &H) {
         Var ty("ty");
         H.Out.split(H.y, ty, H.y, 8).parallel(ty).vectorize(H.x, 8);
         H.Blurx.storeAt(H.Out, ty).computeAt(H.Out, H.y).vectorize(H.x, 8);
       },
       "span=WxH/8 reuse=W*(3+3) amp=1.25"},
  };

  std::printf("=== Figure 3: strategies for the two-stage blur ===\n");
  std::printf("metrics at %dx%d (analytic), time at %dx%d (JIT, native)\n\n",
              MW, MH, TW, TH);
  std::printf("%-18s %12s %14s %10s %12s %12s\n", "strategy",
              "span(iters)", "reuse(ops)", "work-amp", "peak-mem(B)",
              "time(ms)");

  int64_t BreadthOps = 0;
  double BreadthMs = 0;
  for (const Strategy &S : Strategies) {
    Harness H;
    H.reset();
    S.Apply(H);

    std::vector<Buffer<uint8_t>> Keep;
    RawBuffer OutRaw;
    ParamBindings MetricParams = makeParams(H, MW, MH, &OutRaw, &Keep);
    LoweredPipeline MetricsLP = lower(H.Out.function());
    StrategyMetrics M =
        analyzeStrategy(S.Name, MetricsLP, MetricParams, BreadthOps);
    if (BreadthOps == 0) {
      // First row is breadth-first: it defines amplification 1.0.
      BreadthOps = M.MemoryOps;
      M.WorkAmplification = 1.0;
    }

    Harness HT;
    HT.reset();
    S.Apply(HT);
    std::vector<Buffer<uint8_t>> KeepT;
    RawBuffer OutRawT;
    ParamBindings TimeParams = makeParams(HT, TW, TH, &OutRawT, &KeepT);
    auto CP = Pipeline(HT.Out).compile(Target::jit());
    double Ms = benchmarkMs(*CP, TimeParams, 5);
    if (BreadthMs == 0)
      BreadthMs = Ms;

    std::printf("%-18s %12lld %14lld %10.3f %12lld %9.3f (%4.1fx)\n",
                S.Name, (long long)M.Span, (long long)M.MaxReuseDistance,
                M.WorkAmplification, (long long)M.PeakMemoryBytes, Ms,
                BreadthMs / Ms);
  }
  std::printf("\npaper reference rows (3072x2046, 4-core Xeon):\n");
  for (const Strategy &S : Strategies)
    std::printf("  %-18s %s\n", S.Name, S.PaperRow);
  std::printf("\nSection 3.1 claim: tiled/fused strategies beat "
              "breadth-first (paper: 10x on 4 cores; locality-only effect "
              "on this machine shown above).\n");
  return 0;
}
