//===-- tests/OptimizationTest.cpp - Sliding window & storage folding --------===//
//
// Observes the paper's section-4.3 optimizations through the interpreter's
// counters: sliding window eliminates redundant recomputation (store
// counts); storage folding shrinks peak memory. Both must leave results
// unchanged.
//
//===----------------------------------------------------------------------===//

#include "apps/baselines/Baselines.h"
#include "lang/ImageParam.h"
#include "lang/Pipeline.h"
#include "metrics/ScheduleMetrics.h"

#include <gtest/gtest.h>

using namespace halide;

namespace {

struct BlurFixture {
  ImageParam In;
  Var x{"x"}, y{"y"};
  Func Blurx, Out;
  int W = 64, H = 48;

  BlurFixture()
      : In(UInt(8), 2, "opt_in"), Blurx("opt_blurx"), Out("opt_out") {
    auto InC = [&](Expr X, Expr Y) {
      return cast(UInt(16), In(clamp(X, 0, In.width() - 1),
                               clamp(Y, 0, In.height() - 1)));
    };
    Blurx(x, y) =
        cast(UInt(16), (InC(x - 1, y) + InC(x, y) + InC(x + 1, y)) / 3);
    Out(x, y) = cast(UInt(8),
                     (Blurx(x, y - 1) + Blurx(x, y) + Blurx(x, y + 1)) / 3);
  }

  ExecutionStats run(Buffer<uint8_t> *OutImg = nullptr,
                     const Target &T = Target()) {
    Buffer<uint8_t> Input(W, H);
    Input.fill([](int X, int Y) { return (X * 23 + Y * 7) % 256; });
    Buffer<uint8_t> Output(W, H);
    ParamBindings Params;
    Params.bind("opt_in", Input);
    ExecutionStats Stats = Pipeline(Out).realize(Output, Params, T);
    if (OutImg)
      *OutImg = Output;
    return Stats;
  }
};

} // namespace

TEST(SlidingWindowTest, EliminatesRecomputation) {
  BlurFixture F;
  F.Blurx.storeRoot().computeAt(F.Out, F.y);
  ExecutionStats Stats = F.run();
  // Exactly one compute per point: W x (H + 2) scanlines of blurx.
  EXPECT_EQ(Stats.StoresPerBuffer[F.Blurx.name()],
            int64_t(F.W) * (F.H + 2));
}

TEST(SlidingWindowTest, WithoutItRecomputes) {
  BlurFixture F;
  F.Blurx.storeRoot().computeAt(F.Out, F.y);
  ExecutionStats Stats = F.run(nullptr, Target().withoutSlidingWindow());
  // Each of the H iterations computes a full 3-scanline window.
  EXPECT_EQ(Stats.StoresPerBuffer[F.Blurx.name()],
            int64_t(F.W) * F.H * 3);
}

TEST(SlidingWindowTest, ResultUnchanged) {
  BlurFixture A, B;
  A.Blurx.storeRoot().computeAt(A.Out, A.y);
  B.Blurx.storeRoot().computeAt(B.Out, B.y);
  Buffer<uint8_t> WithOpt, WithoutOpt;
  A.run(&WithOpt);
  B.run(&WithoutOpt, Target().withoutSlidingWindow());
  for (int Y = 0; Y < A.H; ++Y)
    for (int X = 0; X < A.W; ++X)
      ASSERT_EQ(WithOpt(X, Y), WithoutOpt(X, Y));
}

TEST(StorageFoldingTest, ShrinksPeakMemory) {
  BlurFixture F;
  F.Blurx.storeRoot().computeAt(F.Out, F.y);
  ExecutionStats Folded = F.run();
  BlurFixture G;
  G.Blurx.storeRoot().computeAt(G.Out, G.y);
  ExecutionStats Unfolded =
      G.run(nullptr, Target().withoutStorageFolding());
  // Unfolded: the full blurx plane. Folded: a few scanlines.
  EXPECT_GE(Unfolded.PeakAllocationBytes,
            int64_t(F.W) * (F.H + 2) * 2);
  EXPECT_LE(Folded.PeakAllocationBytes, int64_t(F.W) * 8 * 2);
  EXPECT_LT(Folded.PeakAllocationBytes, Unfolded.PeakAllocationBytes / 4);
}

TEST(StorageFoldingTest, FoldedIndexingIsCorrect) {
  BlurFixture F;
  F.Blurx.storeRoot().computeAt(F.Out, F.y);
  Buffer<uint8_t> Got;
  F.run(&Got);
  Buffer<uint8_t> Input(F.W, F.H);
  Input.fill([](int X, int Y) { return (X * 23 + Y * 7) % 256; });
  Buffer<uint8_t> Want(F.W, F.H);
  baselines::blurReference(Input, Want);
  for (int Y = 0; Y < F.H; ++Y)
    for (int X = 0; X < F.W; ++X)
      ASSERT_EQ(Got(X, Y), Want(X, Y)) << X << "," << Y;
}

TEST(StorageFoldingTest, NoFoldAcrossParallelLoop) {
  // A parallel intervening loop must not slide (no unique first iteration).
  BlurFixture F;
  F.Out.parallel(F.y);
  F.Blurx.storeRoot().computeAt(F.Out, F.y);
  ExecutionStats Stats = F.run();
  // Without sliding, each iteration computes its full window.
  EXPECT_EQ(Stats.StoresPerBuffer[F.Blurx.name()],
            int64_t(F.W) * F.H * 3);
}

namespace {

/// Measures a schedule of the blur fixture through ScheduleMetrics.
StrategyMetrics measureStrategy(BlurFixture &F, const char *Name,
                                const Target &T = Target()) {
  Buffer<uint8_t> Input(F.W, F.H);
  Input.fill([](int X, int Y) { return (X * 23 + Y * 7) % 256; });
  Buffer<uint8_t> Output(F.W, F.H);
  ParamBindings Params;
  Params.bind("opt_in", Input);
  Params.bind(F.Out.name(), Output);
  LoweredPipeline LP = lower(F.Out.function(), T);
  return analyzeStrategy(Name, LP, Params, 0);
}

} // namespace

TEST(SlidingFoldingInteraction, Figure3FootprintsViaMetrics) {
  // Figure 3's three blur strategies must land on their characteristic
  // intermediate-storage footprints (measured via ScheduleMetrics):
  // breadth-first materializes the whole blurx plane, full fusion
  // allocates nothing, and sliding window keeps a few folded scanlines.
  BlurFixture Breadth;
  Breadth.Blurx.computeRoot();
  StrategyMetrics BF = measureStrategy(Breadth, "breadth_first");
  int64_t FullPlane = int64_t(Breadth.W) * (Breadth.H + 2) * 2; // uint16
  EXPECT_GE(BF.PeakMemoryBytes, FullPlane);
  EXPECT_LE(BF.PeakMemoryBytes, FullPlane * 5 / 4);

  BlurFixture Fused; // inline schedule: no intermediate at all
  StrategyMetrics FU = measureStrategy(Fused, "full_fusion");
  EXPECT_EQ(FU.PeakMemoryBytes, 0);

  BlurFixture Sliding;
  Sliding.Blurx.storeRoot().computeAt(Sliding.Out, Sliding.y);
  StrategyMetrics SW = measureStrategy(Sliding, "sliding_window");
  EXPECT_GT(SW.PeakMemoryBytes, 0);
  EXPECT_LE(SW.PeakMemoryBytes, int64_t(Sliding.W) * 8 * 2);
  EXPECT_LT(SW.PeakMemoryBytes, BF.PeakMemoryBytes / 4);
}

TEST(SlidingFoldingInteraction, FoldingNeedsSlidingForFootprintWin) {
  // The two passes compose: sliding window alone trims recomputation but
  // (without folding) still allocates the full plane; with folding the
  // same schedule shrinks to a rolling window. Either way the compute
  // count stays one-store-per-point.
  BlurFixture WithBoth;
  WithBoth.Blurx.storeRoot().computeAt(WithBoth.Out, WithBoth.y);
  StrategyMetrics Both = measureStrategy(WithBoth, "slide+fold");

  BlurFixture NoFold;
  NoFold.Blurx.storeRoot().computeAt(NoFold.Out, NoFold.y);
  StrategyMetrics SlideOnly =
      measureStrategy(NoFold, "slide_only", Target().withoutStorageFolding());

  int64_t FullPlane = int64_t(NoFold.W) * (NoFold.H + 2) * 2;
  EXPECT_GE(SlideOnly.PeakMemoryBytes, FullPlane);
  EXPECT_LT(Both.PeakMemoryBytes, SlideOnly.PeakMemoryBytes / 4);
  // Work (loads+stores) is identical: folding changes where values live,
  // never how many times they are computed.
  EXPECT_EQ(Both.MemoryOps, SlideOnly.MemoryOps);
}

TEST(WorkAmplificationTest, MatchesPaperFigure3Shape) {
  // Figure 3: full fusion has ~2x work amplification for the two-stage
  // blur (3 recomputes per consumer sample amortized); breadth-first is
  // 1.0x by definition; tiling costs a small boundary factor.
  BlurFixture BF;
  BF.Blurx.computeRoot();
  int64_t BreadthStores = BF.run().totalStores();

  BlurFixture Fused; // inline
  int64_t FusedStores = Fused.run().totalStores();
  // blurx is recomputed 3x per output point but adds no stores; total
  // output stores equal; instead compare *loads* of the input.
  BlurFixture BF2;
  BF2.Blurx.computeRoot();
  ExecutionStats S2 = BF2.run();
  BlurFixture Fused2;
  ExecutionStats SF = Fused2.run();
  EXPECT_GT(SF.LoadsPerBuffer["opt_in"],
            2 * S2.LoadsPerBuffer["opt_in"]);
  (void)BreadthStores;
  (void)FusedStores;

  BlurFixture Tiled;
  {
    Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
    Tiled.Out.tile(Tiled.x, Tiled.y, xo, yo, xi, yi, 16, 8);
    Tiled.Blurx.computeAt(Tiled.Out, xo);
  }
  ExecutionStats ST = Tiled.run();
  double Amp = double(ST.StoresPerBuffer[Tiled.Blurx.name()]) /
               double(64 * 48);
  EXPECT_GT(Amp, 1.0);
  EXPECT_LT(Amp, 1.5); // small ghost-zone overhead only
}
