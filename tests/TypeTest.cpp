//===-- tests/TypeTest.cpp - Type system unit tests ------------------------===//

#include "ir/Type.h"

#include <gtest/gtest.h>

using namespace halide;

TEST(TypeTest, Constructors) {
  EXPECT_TRUE(Int(32).isInt());
  EXPECT_TRUE(UInt(8).isUInt());
  EXPECT_TRUE(Float(32).isFloat());
  EXPECT_TRUE(Bool().isBool());
  EXPECT_TRUE(Bool().isUInt());
  EXPECT_EQ(Int(16, 4).Lanes, 4);
  EXPECT_TRUE(Int(16, 4).isVector());
  EXPECT_FALSE(Int(16).isVector());
}

TEST(TypeTest, WithLanesAndElement) {
  Type V = Float(32, 8);
  EXPECT_EQ(V.element(), Float(32));
  EXPECT_EQ(Float(32).withLanes(8), V);
  EXPECT_EQ(V.withCode(TypeCode::Int), Int(32, 8));
}

TEST(TypeTest, Bytes) {
  EXPECT_EQ(UInt(8).bytes(), 1);
  EXPECT_EQ(Bool().bytes(), 1);
  EXPECT_EQ(Int(16).bytes(), 2);
  EXPECT_EQ(Float(64).bytes(), 8);
}

TEST(TypeTest, IntRanges) {
  EXPECT_EQ(Int(8).intMin(), -128);
  EXPECT_EQ(Int(8).intMax(), 127);
  EXPECT_EQ(UInt(8).intMin(), 0);
  EXPECT_EQ(UInt(8).intMax(), 255);
  EXPECT_EQ(UInt(16).uintMax(), 65535u);
  EXPECT_EQ(Int(32).intMax(), 2147483647);
}

TEST(TypeTest, CanRepresent) {
  EXPECT_TRUE(UInt(8).canRepresent(int64_t(255)));
  EXPECT_FALSE(UInt(8).canRepresent(int64_t(256)));
  EXPECT_FALSE(UInt(8).canRepresent(int64_t(-1)));
  EXPECT_TRUE(Int(8).canRepresent(int64_t(-128)));
  EXPECT_FALSE(Int(8).canRepresent(int64_t(128)));
  EXPECT_TRUE(Float(32).canRepresent(0.5));
  EXPECT_FALSE(Float(32).canRepresent(0.1)); // not exact in binary32
  EXPECT_TRUE(Float(64).canRepresent(0.1));
}

TEST(TypeTest, Printing) {
  EXPECT_EQ(Int(32).str(), "int32");
  EXPECT_EQ(UInt(8, 16).str(), "uint8x16");
  EXPECT_EQ(Float(32).str(), "float32");
  EXPECT_EQ(Bool().str(), "bool");
}

TEST(TypeTest, Equality) {
  EXPECT_EQ(Int(32), Int(32));
  EXPECT_NE(Int(32), UInt(32));
  EXPECT_NE(Int(32), Int(32, 4));
  EXPECT_NE(Int(32), Int(16));
}
