//===-- tests/SimplifyTest.cpp - Simplifier rules & properties --------------===//

#include "transforms/Simplify.h"
#include "ir/IREquality.h"
#include "ir/IROperators.h"
#include "ir/IRPrinter.h"
#include "analysis/Bounds.h"
#include "transforms/Substitute.h"

#include <gtest/gtest.h>
#include <random>

using namespace halide;

namespace {
Expr var(const char *Name) { return Variable::make(Int(32), Name); }
} // namespace

TEST(SimplifyTest, LinearCancellation) {
  Expr Y = var("y");
  // The canonicalization sliding window and storage folding rely on.
  int64_t V;
  EXPECT_TRUE(proveConstInt(simplify((Y * 8 + 7) - (Y * 8)), &V));
  EXPECT_EQ(V, 7);
  EXPECT_TRUE(proveConstInt(simplify((Y + 2) - (Y + 0) + 1), &V));
  EXPECT_EQ(V, 3);
  EXPECT_TRUE(proveConstInt(simplify(Y - Y), &V));
  EXPECT_EQ(V, 0);
  EXPECT_TRUE(proveConstInt(simplify(3 * Y + 2 * Y - 5 * Y), &V));
  EXPECT_EQ(V, 0);
}

TEST(SimplifyTest, MinMaxResolution) {
  Expr Y = var("y");
  EXPECT_TRUE(equal(simplify(min(Y, Y + 3)), Y));
  Expr M = simplify(max(Y, Y + 3));
  EXPECT_TRUE(equal(M, simplify(Y + 3)));
  EXPECT_TRUE(equal(simplify(min(Y, Y)), Y));
  // Symbolic min stays.
  EXPECT_NE(simplify(min(var("a"), var("b"))).as<Min>(), nullptr);
}

TEST(SimplifyTest, ComparisonResolution) {
  Expr Y = var("y");
  EXPECT_TRUE(isProvablyTrue(Y < Y + 1));
  EXPECT_TRUE(isProvablyFalse(Y + 2 < Y));
  EXPECT_TRUE(isProvablyTrue(Y * 4 <= Y * 4));
  EXPECT_TRUE(isProvablyTrue(Y * 2 + 1 != Y * 2));
}

TEST(SimplifyTest, DivisionDistribution) {
  Expr X = var("x");
  // (x*c + r)/c == x + r/c under floor division.
  int64_t V;
  EXPECT_TRUE(equal(simplify((X * 8) / 8), X));
  EXPECT_TRUE(equal(simplify((X * 8 + 3) / 8), X));
  Expr E = simplify((X * 16 + 8) / 8);
  EXPECT_TRUE(equal(E, simplify(X * 2 + 1)));
  // Nested division composes.
  EXPECT_TRUE(equal(simplify((X / 4) / 2), simplify(X / 8)));
  (void)V;
}

TEST(SimplifyTest, ModResolution) {
  Expr X = var("x");
  int64_t V;
  EXPECT_TRUE(proveConstInt(simplify((X * 8) % 8), &V));
  EXPECT_EQ(V, 0);
  EXPECT_TRUE(proveConstInt(simplify((X * 8 + 5) % 8), &V));
  EXPECT_EQ(V, 5);
}

TEST(SimplifyTest, SelectAndLet) {
  Expr X = var("x");
  EXPECT_TRUE(equal(simplify(select(makeTrue(), X, X + 1)), X));
  EXPECT_TRUE(equal(simplify(select(X < X, X, X + 1)), simplify(X + 1)));
  // Equal branches collapse.
  EXPECT_TRUE(equal(simplify(select(var("c") == 0, X, X)), X));
  // Trivial lets inline.
  Expr L = Let::make("t", X, Add::make(var("t"), Expr(1)));
  EXPECT_TRUE(equal(simplify(L), simplify(X + 1)));
}

TEST(SimplifyTest, StatementCleanup) {
  // Zero-extent loops vanish; extent-1 loops unwrap.
  Stmt Dead = For::make("i", 0, 0, ForType::Serial,
                        Store::make("b", var("i"), var("i")));
  std::string Text = stmtToString(simplify(Dead));
  EXPECT_EQ(Text.find("for"), std::string::npos);

  Stmt One = For::make("i", 5, 1, ForType::Serial,
                       Store::make("b", var("i"), var("i")));
  Text = stmtToString(simplify(One));
  EXPECT_EQ(Text.find("for"), std::string::npos);
  EXPECT_NE(Text.find("b[5] = 5"), std::string::npos);

  // if (false) drops the branch; provably-true asserts vanish.
  Stmt If = IfThenElse::make(makeFalse(), Store::make("b", Expr(1), Expr(0)));
  EXPECT_EQ(stmtToString(simplify(If)).find("b["), std::string::npos);
  Stmt Assert = AssertStmt::make(Expr(1) < Expr(2), "ok");
  EXPECT_EQ(stmtToString(simplify(Assert)).find("assert"),
            std::string::npos);
}

TEST(SimplifyTest, VectorAlgebra) {
  Expr R = Ramp::make(var("x"), 1, 8);
  Expr B = Broadcast::make(Expr(3), 8);
  // Ramp + broadcast folds into the ramp base.
  Expr E = simplify(Add::make(R, B));
  const Ramp *RR = E.as<Ramp>();
  ASSERT_NE(RR, nullptr);
  EXPECT_TRUE(equal(RR->Base, simplify(var("x") + 3)));
  // Broadcast op broadcast folds scalar-wise.
  Expr BB = simplify(Mul::make(B, B));
  const Broadcast *BN = BB.as<Broadcast>();
  ASSERT_NE(BN, nullptr);
  int64_t V;
  EXPECT_TRUE(asConstInt(BN->Value, &V));
  EXPECT_EQ(V, 9);
}

TEST(SimplifyTest, ConstantFoldingAcrossMinMaxSelect) {
  // Constants must fold through arbitrary min/max/select nests — the
  // shapes bounds inference produces for tile and pyramid extents.
  int64_t V;
  EXPECT_TRUE(proveConstInt(simplify(min(Expr(3), max(Expr(7), Expr(5)))),
                            &V));
  EXPECT_EQ(V, 3);
  EXPECT_TRUE(proveConstInt(
      simplify(max(min(Expr(-2), Expr(4)), min(Expr(9), Expr(6)))), &V));
  EXPECT_EQ(V, 6);
  EXPECT_TRUE(proveConstInt(
      simplify(select(Expr(3) < Expr(5), min(Expr(8), Expr(2)),
                      max(Expr(1), Expr(0)))),
      &V));
  EXPECT_EQ(V, 2);
  // A select whose condition depends on a variable folds only when both
  // branches agree after folding.
  Expr X = var("x");
  EXPECT_TRUE(proveConstInt(
      simplify(select(X < 0, min(Expr(4), Expr(9)), Expr(2) + Expr(2))),
      &V));
  EXPECT_EQ(V, 4);
  // min distributed over a shared term cancels symbolically.
  EXPECT_TRUE(proveConstInt(simplify(min(X + 3, X + 7) - X), &V));
  EXPECT_EQ(V, 3);
  EXPECT_TRUE(proveConstInt(simplify(max(X - 5, X - 1) - X), &V));
  EXPECT_EQ(V, -1);
}

TEST(SimplifyTest, PowerOfTwoDivMod) {
  // Floor division and modulo by powers of two (the strength-reduction
  // cases the C backend and vectorizer rely on). Negative numerators must
  // follow floor semantics, not C truncation.
  int64_t V;
  EXPECT_TRUE(proveConstInt(simplify(Expr(-7) / 4), &V));
  EXPECT_EQ(V, -2); // floor(-1.75)
  EXPECT_TRUE(proveConstInt(simplify(Expr(-7) % 4), &V));
  EXPECT_EQ(V, 1); // -7 = -2*4 + 1
  EXPECT_TRUE(proveConstInt(simplify(Expr(-8) / 8), &V));
  EXPECT_EQ(V, -1);
  EXPECT_TRUE(proveConstInt(simplify(Expr(-8) % 8), &V));
  EXPECT_EQ(V, 0);

  Expr X = var("x");
  // x*2^k keeps divisibility through shifts of scale.
  EXPECT_TRUE(equal(simplify((X * 32) / 16), simplify(X * 2)));
  EXPECT_TRUE(proveConstInt(simplify((X * 32) % 16), &V));
  EXPECT_EQ(V, 0);
  EXPECT_TRUE(proveConstInt(simplify((X * 16 + 12) % 4), &V));
  EXPECT_EQ(V, 0);
  // Non-dividing remainders keep the residue.
  EXPECT_TRUE(proveConstInt(simplify((X * 16 + 13) % 4), &V));
  EXPECT_EQ(V, 1);
  // Chained power-of-two divisions collapse into one.
  EXPECT_TRUE(equal(simplify((X / 2) / 2 / 2), simplify(X / 8)));
}

TEST(SimplifyTest, RampBroadcastBounds) {
  // Interval analysis over vector IR: a dense ramp spans
  // [base, base + (lanes-1)*stride] and a broadcast is a single point —
  // the facts dense-load classification builds on (paper section 4.5).
  Scope<Interval> Empty;
  Expr X = var("x");

  Interval RampB =
      boundsOfExprInScope(Ramp::make(X, 1, 8), Empty);
  ASSERT_TRUE(RampB.hasLowerBound());
  ASSERT_TRUE(RampB.hasUpperBound());
  EXPECT_TRUE(equal(simplify(RampB.Min), X));
  EXPECT_TRUE(equal(simplify(RampB.Max), simplify(X + 7)));

  // Negative stride flips which end is the minimum.
  Interval RevB =
      boundsOfExprInScope(Ramp::make(X, -2, 4), Empty);
  EXPECT_TRUE(equal(simplify(RevB.Min), simplify(X - 6)));
  EXPECT_TRUE(equal(simplify(RevB.Max), X));

  Interval BcastB =
      boundsOfExprInScope(Broadcast::make(X + 5, 8), Empty);
  EXPECT_TRUE(equal(simplify(BcastB.Min), simplify(X + 5)));
  EXPECT_TRUE(equal(simplify(BcastB.Max), simplify(X + 5)));

  // Constant ramps fold to constant endpoints.
  Interval ConstB =
      boundsOfExprInScope(Ramp::make(Expr(10), 3, 4), Empty);
  int64_t Lo = 0, Hi = 0;
  EXPECT_TRUE(proveConstInt(simplify(ConstB.Min), &Lo));
  EXPECT_TRUE(proveConstInt(simplify(ConstB.Max), &Hi));
  EXPECT_EQ(Lo, 10);
  EXPECT_EQ(Hi, 19);
}

//===----------------------------------------------------------------------===//
// Property test: simplification preserves value on random expressions.
//===----------------------------------------------------------------------===//

namespace {

Expr randomExpr(std::mt19937 &Rng, int Depth) {
  std::uniform_int_distribution<int> Pick(0, Depth <= 0 ? 1 : 9);
  switch (Pick(Rng)) {
  case 0:
    return Expr(int(std::uniform_int_distribution<int>(-20, 20)(Rng)));
  case 1: {
    const char *Names[3] = {"x", "y", "z"};
    return var(Names[std::uniform_int_distribution<int>(0, 2)(Rng)]);
  }
  case 2:
    return randomExpr(Rng, Depth - 1) + randomExpr(Rng, Depth - 1);
  case 3:
    return randomExpr(Rng, Depth - 1) - randomExpr(Rng, Depth - 1);
  case 4:
    return randomExpr(Rng, Depth - 1) *
           Expr(int(std::uniform_int_distribution<int>(-4, 4)(Rng)));
  case 5:
    return min(randomExpr(Rng, Depth - 1), randomExpr(Rng, Depth - 1));
  case 6:
    return max(randomExpr(Rng, Depth - 1), randomExpr(Rng, Depth - 1));
  case 7:
    return randomExpr(Rng, Depth - 1) /
           Expr(int(std::uniform_int_distribution<int>(1, 8)(Rng)));
  case 8:
    return randomExpr(Rng, Depth - 1) %
           Expr(int(std::uniform_int_distribution<int>(1, 8)(Rng)));
  default:
    return select(randomExpr(Rng, Depth - 1) <
                      randomExpr(Rng, Depth - 1),
                  randomExpr(Rng, Depth - 1), randomExpr(Rng, Depth - 1));
  }
}

int64_t evalToConst(const Expr &E, int X, int Y, int Z) {
  std::map<std::string, Expr> Bindings = {
      {"x", Expr(X)}, {"y", Expr(Y)}, {"z", Expr(Z)}};
  Expr Val = simplify(substitute(Bindings, E));
  int64_t V = 0;
  EXPECT_TRUE(asConstInt(Val, &V)) << "did not fold: " << exprToString(Val);
  return V;
}

} // namespace

class SimplifyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyPropertyTest, SimplifyPreservesValue) {
  std::mt19937 Rng(static_cast<uint32_t>(GetParam()));
  Expr E = randomExpr(Rng, 4);
  Expr S = simplify(E);
  for (int X = -3; X <= 3; X += 3)
    for (int Y = -2; Y <= 2; Y += 2)
      for (int Z : {-1, 5}) {
        ASSERT_EQ(evalToConst(E, X, Y, Z), evalToConst(S, X, Y, Z))
            << "expr: " << exprToString(E)
            << "\nsimplified: " << exprToString(S) << "\nat (" << X << ","
            << Y << "," << Z << ")";
      }
}

INSTANTIATE_TEST_SUITE_P(RandomExprs, SimplifyPropertyTest,
                         ::testing::Range(0, 60));
