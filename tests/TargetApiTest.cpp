//===-- tests/TargetApiTest.cpp - Target/compile/realize API ----------------===//
//
// The unified execution API: Target-directed dispatch, the compiled-
// pipeline cache (compile-once-run-many, fingerprint invalidation on
// schedule changes), Param<T>/ImageParam argument inference with clear
// user_errors on the unbound and type-mismatch paths, and the TileSpec /
// variadic scheduling sugar.
//
//===----------------------------------------------------------------------===//

#include "lang/ImageParam.h"
#include "lang/Pipeline.h"

#include <gtest/gtest.h>

using namespace halide;

namespace {

/// A two-stage pipeline with an input image and two scalar params.
struct ParamPipe {
  ImageParam In;
  Param<int32_t> Gain;
  Param<float> Offset;
  Var x{"x"}, y{"y"};
  Func F;

  explicit ParamPipe(const std::string &Tag)
      : In(UInt(8), 2, Tag + "_in"), Gain(Tag + "_gain"),
        Offset(Tag + "_offset"), F(Tag + "_out") {
    F(x, y) = cast(Float(32), In(clamp(x, 0, In.width() - 1),
                                 clamp(y, 0, In.height() - 1)) *
                                  Gain) +
              Offset;
  }
};

Buffer<uint8_t> makeInput(int W, int H) {
  Buffer<uint8_t> B(W, H);
  B.fill([](int X, int Y) { return (X * 7 + Y * 13) % 256; });
  return B;
}

} // namespace

//===----------------------------------------------------------------------===//
// Compile-cache behaviour.
//===----------------------------------------------------------------------===//

TEST(CompileCacheTest, UnchangedScheduleCompilesOnce) {
  Var x("x"), y("y");
  Func F("cc_f"), G("cc_g");
  F(x, y) = x + y * 3;
  G(x, y) = F(x, y) + F(x + 1, y);
  F.computeRoot();
  Pipeline Pipe(G);

  CompileCounters Before = Pipeline::compileCounters();
  Buffer<int32_t> Out1(16, 8), Out2(16, 8);
  Pipe.realize(Out1, ParamBindings(), Target::jit());
  Pipe.realize(Out2, ParamBindings(), Target::jit());

  const CompileCounters &After = Pipeline::compileCounters();
  // One lowering, one host-compiler invocation; the second realize is a
  // pure cache hit (the acceptance criterion for compile-once-run-many).
  EXPECT_EQ(After.Lowerings - Before.Lowerings, 1);
  EXPECT_EQ(After.BackendCompiles - Before.BackendCompiles, 1);
  EXPECT_GE(After.CacheHits - Before.CacheHits, 1);

  for (int Y = 0; Y < 8; ++Y)
    for (int X = 0; X < 16; ++X) {
      EXPECT_EQ(Out1(X, Y), (X + Y * 3) + (X + 1 + Y * 3));
      EXPECT_EQ(Out2(X, Y), Out1(X, Y));
    }
}

TEST(CompileCacheTest, ScheduleTouchInvalidatesFingerprint) {
  Var x("x"), y("y");
  Func F("ci_f"), G("ci_g");
  F(x, y) = x * 2 + y;
  G(x, y) = F(x, y) + 1;
  F.computeRoot();
  Pipeline Pipe(G);
  Buffer<int32_t> Out(16, 8);

  Pipe.realize(Out, ParamBindings(), Target::jit());
  std::string FpBefore = Pipe.scheduleFingerprint();

  CompileCounters Mid = Pipeline::compileCounters();
  // Touching any stage's schedule must produce a different fingerprint and
  // force a fresh lower + compile.
  G.vectorize(x, 4);
  EXPECT_NE(Pipe.scheduleFingerprint(), FpBefore);
  Pipe.realize(Out, ParamBindings(), Target::jit());
  const CompileCounters &After = Pipeline::compileCounters();
  EXPECT_EQ(After.Lowerings - Mid.Lowerings, 1);
  EXPECT_EQ(After.BackendCompiles - Mid.BackendCompiles, 1);

  // Restoring an identical schedule restores the fingerprint, and the
  // original artifact is served from the cache without recompiling.
  G.function().resetSchedule();
  F.computeRoot();
  EXPECT_EQ(Pipe.scheduleFingerprint(), FpBefore);
  CompileCounters Mid2 = Pipeline::compileCounters();
  Pipe.realize(Out, ParamBindings(), Target::jit());
  const CompileCounters &Final = Pipeline::compileCounters();
  EXPECT_EQ(Final.Lowerings - Mid2.Lowerings, 0);
  EXPECT_EQ(Final.BackendCompiles - Mid2.BackendCompiles, 0);
  EXPECT_GE(Final.CacheHits - Mid2.CacheHits, 1);
}

TEST(CompileCacheTest, ReusedNameWithNewDefinitionDoesNotAlias) {
  // Function names are unique only among *live* stages. Cached artifacts
  // pin their stages alive (so a colliding new stage would be suffixed),
  // but once the cache is cleared the name genuinely recycles — and the
  // fingerprint's process-unique function id must keep any survivors
  // (e.g. an Executable still held by a caller) from aliasing the new
  // definition.
  Buffer<int32_t> Out1(8), Out2(8);
  {
    Var x("x");
    Func F("cr_f");
    F(x) = x * 2;
    Pipeline(F).realize(Out1, ParamBindings(), Target::jit());
  }
  Pipeline::clearCompileCache(); // unpins the first stage; name recycles
  {
    Var x("x");
    Func F("cr_f");
    F(x) = x * 2 + 1;
    EXPECT_EQ(F.name(), "cr_f"); // the name really was reused
    Pipeline(F).realize(Out2, ParamBindings(), Target::jit());
  }
  for (int X = 0; X < 8; ++X) {
    EXPECT_EQ(Out1(X), X * 2);
    EXPECT_EQ(Out2(X), X * 2 + 1);
  }
}

TEST(CompileCacheTest, BackendsShareOneLowering) {
  Var x("x"), y("y");
  Func F("cs_f");
  F(x, y) = x + 10 * y;
  Pipeline Pipe(F);
  Buffer<int32_t> OutI(8, 8), OutJ(8, 8);

  CompileCounters Before = Pipeline::compileCounters();
  Pipe.realize(OutI, ParamBindings(), Target::interpreter());
  Pipe.realize(OutJ, ParamBindings(), Target::jit());
  const CompileCounters &After = Pipeline::compileCounters();
  // The interpreter and the JIT key their executables separately but share
  // the lowered pipeline.
  EXPECT_EQ(After.Lowerings - Before.Lowerings, 1);
  EXPECT_EQ(After.BackendCompiles - Before.BackendCompiles, 1);

  for (int Y = 0; Y < 8; ++Y)
    for (int X = 0; X < 8; ++X)
      EXPECT_EQ(OutI(X, Y), OutJ(X, Y));
}

TEST(CompileCacheTest, LoweringFlagsAreInTheFingerprint) {
  Var x("x"), y("y");
  Func F("cf_f");
  F(x, y) = x + y;
  Pipeline Pipe(F);
  EXPECT_NE(Pipe.scheduleFingerprint(Target()),
            Pipe.scheduleFingerprint(Target().withoutSlidingWindow()));
  EXPECT_EQ(Pipe.scheduleFingerprint(Target::interpreter()),
            Pipe.scheduleFingerprint(Target::jit()));
}

//===----------------------------------------------------------------------===//
// Target dispatch.
//===----------------------------------------------------------------------===//

TEST(TargetTest, ParseRoundTrips) {
  Target T;
  EXPECT_TRUE(Target::parse("interp", &T));
  EXPECT_EQ(T.TargetBackend, Backend::Interpreter);
  EXPECT_TRUE(Target::parse("vm", &T));
  EXPECT_EQ(T.TargetBackend, Backend::VmBytecode);
  EXPECT_TRUE(Target::parse("vm_bytecode", &T));
  EXPECT_EQ(T.TargetBackend, Backend::VmBytecode);
  EXPECT_TRUE(Target::parse("jit", &T));
  EXPECT_EQ(T.TargetBackend, Backend::JitC);
  EXPECT_TRUE(Target::parse("gpu_sim", &T));
  EXPECT_EQ(T.TargetBackend, Backend::GpuSim);
  EXPECT_TRUE(Target::parse("jit-no_sliding_window", &T));
  EXPECT_TRUE(T.DisableSlidingWindow);
  EXPECT_TRUE(Target::parse("vm-threads4", &T));
  EXPECT_EQ(T.TargetBackend, Backend::VmBytecode);
  EXPECT_EQ(T.NumThreads, 4);
  EXPECT_EQ(T.str(), "vm_bytecode-threads4");
  EXPECT_EQ(Target::vm().withThreads(4), T);
  // The thread request is an execution knob, not a lowering flag.
  EXPECT_EQ(T.lowerOptionsFingerprint(), Target::vm().lowerOptionsFingerprint());
  EXPECT_FALSE(Target::parse("vm-threads0", &T));
  EXPECT_FALSE(Target::parse("cuda", &T));
}

TEST(TargetTest, GpuSimTargetReportsKernelLaunches) {
  Var x("x"), y("y"), bx("bx"), by("by"), tx("tx"), ty("ty");
  Func F("tg_gpu");
  F(x, y) = x * 3 + y;
  F.gpuTile(x, y, bx, by, tx, ty, 8, 8);
  Pipeline Pipe(F);
  Buffer<int32_t> Out(32, 16);
  ExecutionStats Stats =
      Pipe.realize(Out, ParamBindings(), Target::gpuSim());
  EXPECT_EQ(Stats.GpuKernelLaunches, 1);
  EXPECT_EQ(Stats.GpuBlocksExecuted, (32 / 8) * (16 / 8));
  for (int Y = 0; Y < 16; ++Y)
    for (int X = 0; X < 32; ++X)
      ASSERT_EQ(Out(X, Y), X * 3 + Y);
}

TEST(TargetTest, InterpreterStillGathersStats) {
  Var x("x"), y("y");
  Func F("ts_f"), G("ts_g");
  F(x, y) = x + y;
  G(x, y) = F(x, y) * 2;
  F.computeRoot();
  Buffer<int32_t> Out(8, 4);
  ExecutionStats Stats = Pipeline(G).realize(Out);
  EXPECT_EQ(Stats.StoresPerBuffer[F.name()], int64_t(8 * 4));
}

//===----------------------------------------------------------------------===//
// Param<T> / ImageParam argument inference.
//===----------------------------------------------------------------------===//

TEST(ParamInferTest, BoundParamsResolveOnBothBackends) {
  ParamPipe P("pi_a");
  Buffer<uint8_t> Input = makeInput(16, 8);
  P.In.set(Input);
  P.Gain.set(3);
  P.Offset.set(0.5f);

  Pipeline Pipe(P.F);
  Buffer<float> OutI(16, 8), OutJ(16, 8);
  Pipe.realize(OutI, ParamBindings(), Target::interpreter());
  Pipe.realize(OutJ, ParamBindings(), Target::jit());
  for (int Y = 0; Y < 8; ++Y)
    for (int X = 0; X < 16; ++X) {
      EXPECT_FLOAT_EQ(OutI(X, Y), float(Input(X, Y)) * 3 + 0.5f);
      EXPECT_EQ(OutI(X, Y), OutJ(X, Y));
    }

  // Re-setting a Param does not touch the schedule fingerprint: the next
  // realize reuses the compiled artifact with the new value.
  CompileCounters Before = Pipeline::compileCounters();
  P.Gain.set(5);
  Pipe.realize(OutJ, ParamBindings(), Target::jit());
  EXPECT_EQ(Pipeline::compileCounters().BackendCompiles,
            Before.BackendCompiles);
  EXPECT_FLOAT_EQ(OutJ(1, 1), float(Input(1, 1)) * 5 + 0.5f);

  EXPECT_EQ(P.Gain.get(), 5);
}

TEST(ParamInferTest, ExplicitBindingsStillWinOverRegistry) {
  ParamPipe P("pi_b");
  Buffer<uint8_t> Input = makeInput(8, 8);
  P.In.set(Input);
  P.Gain.set(2);
  P.Offset.set(0.0f);
  ParamBindings Explicit;
  Explicit.bindInt(P.Gain.name(), 7); // overrides the registry value
  Buffer<float> Out(8, 8);
  Pipeline(P.F).realize(Out, Explicit);
  EXPECT_FLOAT_EQ(Out(2, 3), float(Input(2, 3)) * 7);
}

TEST(ParamInferTest, InferArgumentsReportsSignature) {
  ParamPipe P("pi_c");
  std::vector<Argument> Args = Pipeline(P.F).inferArguments();
  ASSERT_EQ(Args.size(), 4u);
  EXPECT_EQ(Args[0].Name, P.F.name());
  EXPECT_EQ(Args[0].ArgKind, Argument::Kind::OutputBuffer);
  EXPECT_EQ(Args[0].ArgType, Float(32));
  EXPECT_EQ(Args[0].Dimensions, 2);
  EXPECT_EQ(Args[1].Name, P.In.name());
  EXPECT_EQ(Args[1].ArgKind, Argument::Kind::InputBuffer);
  EXPECT_EQ(Args[1].ArgType, UInt(8));
  // Scalars in name order.
  EXPECT_EQ(Args[2].Name, P.Gain.name());
  EXPECT_EQ(Args[2].ArgKind, Argument::Kind::Scalar);
  EXPECT_EQ(Args[2].ArgType, Int(32));
  EXPECT_EQ(Args[3].Name, P.Offset.name());
  EXPECT_EQ(Args[3].ArgType, Float(32));
}

TEST(ParamInferDeathTest, UnboundScalarNamesTheArgument) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ParamPipe P("pd_a");
  P.In.set(makeInput(8, 8));
  P.Gain.set(1);
  // Offset is declared but never set().
  Buffer<float> Out(8, 8);
  EXPECT_DEATH(Pipeline(P.F).realize(Out),
               "scalar parameter 'pd_a_offset' is unbound");
}

TEST(ParamInferDeathTest, UnboundImageNamesTheArgument) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ParamPipe P("pd_b");
  P.Gain.set(1);
  P.Offset.set(0.0f);
  Buffer<float> Out(8, 8);
  EXPECT_DEATH(Pipeline(P.F).realize(Out),
               "input image 'pd_b_in' is unbound");
}

TEST(ParamInferDeathTest, ScalarTypeMismatchNamesTheArgument) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ParamPipe P("pd_c");
  P.In.set(makeInput(8, 8));
  P.Offset.set(0.0f);
  // Re-declare the gain under the same name with the wrong type: the
  // pipeline was built expecting int32.
  Param<float> WrongGain(P.Gain.name());
  WrongGain.set(2.0f);
  Buffer<float> Out(8, 8);
  EXPECT_DEATH(Pipeline(P.F).realize(Out),
               "scalar parameter 'pd_c_gain' is declared float32 but the "
               "pipeline expects int32");
}

TEST(ParamInferDeathTest, ImageParamTypeMismatchNamesTheParam) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ImageParam In(UInt(8), 2, "pd_d_in");
  Buffer<float> Wrong(4, 4);
  EXPECT_DEATH(In.set(Wrong),
               "ImageParam pd_d_in declared uint8 but bound to a float32 "
               "buffer");
}

TEST(ParamInferDeathTest, OutputBufferTypeMismatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Var x("x"), y("y");
  Func F("pd_e_out");
  F(x, y) = cast(Float(32), x + y);
  Buffer<int32_t> Out(4, 4); // pipeline produces float32
  EXPECT_DEATH(Pipeline(F).realize(Out),
               "output buffer 'pd_e_out' has element type int32");
}

//===----------------------------------------------------------------------===//
// Scheduling sugar: TileSpec and variadic arities.
//===----------------------------------------------------------------------===//

TEST(SchedulingSugarTest, TileSpecMatchesPositionalTile) {
  Var x("x"), y("y"), xo("xo"), yo("yo"), xi("xi"), yi("yi");
  Func A("tsp_a"), B("tsp_b");
  A(x, y) = x + y;
  B(x, y) = x + y;
  A.tile(TileSpec(x, y).outer(xo, yo).inner(xi, yi).factors(8, 4));
  B.tile(x, y, xo, yo, xi, yi, 8, 4);
  // Identical splits and loop order (modulo the stage name).
  EXPECT_EQ(A.function().schedule().str(), B.function().schedule().str());
  Buffer<int32_t> Out(16, 8);
  Pipeline(A).realize(Out);
  EXPECT_EQ(Out(9, 5), 14);
}

TEST(SchedulingSugarTest, VariadicCallBeyondFourDims) {
  // The old fixed-arity overloads stopped at 4 coordinates; the variadic
  // form takes any arity and any Var/Expr/int mix.
  Var a("a"), b("b"), c("c"), d("d"), e("e"), x("x");
  Func F5("vs_f5"), G("vs_g");
  F5(a, b, c, d, e) = a + b * 2 + c * 3 + d * 4 + e * 5;
  G(x) = F5(x, x + 1, 2, x, 0);
  Buffer<int32_t> Out(6);
  Pipeline(G).realize(Out);
  for (int X = 0; X < 6; ++X)
    EXPECT_EQ(Out(X), X + (X + 1) * 2 + 2 * 3 + X * 4);
}

TEST(SchedulingSugarTest, VariadicReorder) {
  Var x("x"), y("y"), z("z");
  Func F("vr_f");
  F(x, y, z) = x + y + z;
  F.reorder(z, y, x); // z innermost now
  const Schedule &S = F.function().schedule();
  ASSERT_EQ(S.Dims.size(), 3u);
  EXPECT_EQ(S.Dims[0].Var, "x");
  EXPECT_EQ(S.Dims[1].Var, "y");
  EXPECT_EQ(S.Dims[2].Var, "z");
}
