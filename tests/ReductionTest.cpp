//===-- tests/ReductionTest.cpp - Update definitions & RDoms ------------------===//

#include "lang/ImageParam.h"
#include "lang/Pipeline.h"

#include <gtest/gtest.h>

using namespace halide;

TEST(ReductionTest, SumOverDomain) {
  Var x("x");
  Func Sum("red_sum");
  RDom R(0, 10, "rsum");
  Sum(x) = 0;
  Sum(x) += Expr(R) + x;
  Buffer<int32_t> Out(4);
  Pipeline(Sum).realize(Out);
  // sum_{r=0..9} (r + x) = 45 + 10x
  for (int X = 0; X < 4; ++X)
    EXPECT_EQ(Out(X), 45 + 10 * X);
}

TEST(ReductionTest, LexicographicOrderScan) {
  // A prefix-sum style scan whose result depends on iteration order
  // (paper: recursing in lexicographic order across the domain).
  Var i("i");
  Func Scan("red_scan");
  RDom R(1, 9, "rscan");
  Scan(i) = i;            // init: scan(i) = i
  Scan(R) = Scan(Expr(R) - 1) * 2 + 1;
  Scan.bound(i, 0, 10);
  Buffer<int32_t> Out(10);
  Pipeline(Scan).realize(Out);
  int Expected = 0; // scan(0) = 0
  EXPECT_EQ(Out(0), 0);
  for (int I = 1; I < 10; ++I) {
    Expected = Expected * 2 + 1;
    EXPECT_EQ(Out(I), Expected);
  }
}

TEST(ReductionTest, TwoDimensionalRDomOrder) {
  // r.y is the outer loop, r.x inner (lexicographic); verify by recording
  // the last writer of a single cell.
  Var x("x");
  Func Last("red_last");
  RDom R(0, 3, 0, 2, "rlast"); // x in [0,3), y in [0,2)
  Last(x) = -1;
  Last(0) = Expr(R.y) * 10 + Expr(R.x);
  Buffer<int32_t> Out(1);
  Pipeline(Last).realize(Out);
  EXPECT_EQ(Out(0), 12); // y=1, x=2 iterates last
}

TEST(ReductionTest, ScatterWithDataDependentTarget) {
  ImageParam In(UInt(8), 1, "red_scatter_in");
  Var i("i");
  Func Votes("red_votes");
  RDom R(0, In.width(), "rvote");
  Votes(i) = 0;
  Votes(clamp(cast(Int(32), In(R)) % 4, 0, 3)) += 1;
  Votes.bound(i, 0, 4);
  Buffer<uint8_t> Input(16);
  Input.fill([](int X) { return X; });
  Buffer<int32_t> Out(4);
  ParamBindings Params;
  Params.bind("red_scatter_in", Input);
  Pipeline(Votes).realize(Out, Params);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Out(I), 4);
}

TEST(ReductionTest, UpdateWithPureDimension) {
  // Per-column reduction: the pure var x survives as a loop around the
  // reduction (free variable dimension).
  ImageParam In(UInt(8), 2, "red_col_in");
  Var x("x");
  Func ColSum("red_colsum");
  RDom R(0, In.height(), "rcol");
  ColSum(x) = 0;
  ColSum(x) += cast(Int(32), In(x, R));
  const int W = 8, H = 5;
  Buffer<uint8_t> Input(W, H);
  Input.fill([](int X, int Y) { return X + Y; });
  Buffer<int32_t> Out(W);
  ParamBindings Params;
  Params.bind("red_col_in", Input);
  Pipeline(ColSum).realize(Out, Params);
  for (int X = 0; X < W; ++X) {
    int Want = 0;
    for (int Y = 0; Y < H; ++Y)
      Want += X + Y;
    EXPECT_EQ(Out(X), Want);
  }
}

TEST(ReductionTest, UpdateStagesNeverInline) {
  // A reduction consumed by another stage must materialize even with the
  // default (inline) schedule.
  Var x("x");
  Func Acc("red_acc"), Use("red_use");
  RDom R(0, 4, "racc");
  Acc(x) = x;
  Acc(x) += Expr(R);
  Use(x) = Acc(x) * 2;
  Buffer<int32_t> Out(4);
  Pipeline(Use).realize(Out);
  for (int X = 0; X < 4; ++X)
    EXPECT_EQ(Out(X), (X + 6) * 2);
}

TEST(ReductionTest, HistogramEqualizationEndToEnd) {
  // The paper's section-2 example, verified against a direct C++
  // implementation.
  ImageParam In(UInt(8), 2, "red_he_in");
  Var x("x"), y("y"), i("i");
  Func Hist("red_he_hist"), Cdf("red_he_cdf"), Out("red_he_out");
  RDom R(0, In.width(), 0, In.height(), "rhe");
  Hist(i) = cast(UInt(32), 0);
  Hist(clamp(cast(Int(32), In(R.x, R.y)), 0, 255)) += cast(UInt(32), 1);
  Hist.bound(i, 0, 256);
  RDom Ri(1, 255, "rhe_scan");
  Cdf(i) = cast(UInt(32), 0);
  Cdf(0) = Hist(0);
  Cdf(Ri) = Cdf(Expr(Ri) - 1) + Hist(Ri);
  Cdf.bound(i, 0, 256);
  Hist.computeRoot();
  Cdf.computeRoot();
  Expr Total = cast(Float(32), In.width() * In.height());
  Out(x, y) = cast(UInt(8),
                   clamp(cast(Float(32),
                              Cdf(clamp(cast(Int(32),
                                             In(clamp(x, 0, In.width() - 1),
                                                clamp(y, 0,
                                                      In.height() - 1))),
                                        0, 255))) /
                             Total * 255.0f,
                         0.0f, 255.0f));

  const int W = 32, H = 16;
  Buffer<uint8_t> Input(W, H);
  Input.fill([](int X, int Y) { return 50 + (X * 3 + Y * 7) % 100; });
  Buffer<uint8_t> Got(W, H);
  ParamBindings Params;
  Params.bind("red_he_in", Input);
  Pipeline(Out).realize(Got, Params);

  // Direct implementation.
  uint32_t H256[256] = {0};
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      ++H256[Input(X, Y)];
  uint32_t C256[256];
  C256[0] = H256[0];
  for (int I = 1; I < 256; ++I)
    C256[I] = C256[I - 1] + H256[I];
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      float R8 = float(C256[Input(X, Y)]) / float(W * H) * 255.0f;
      R8 = R8 < 0 ? 0 : (R8 > 255 ? 255 : R8);
      ASSERT_EQ(int(Got(X, Y)), int(uint8_t(R8))) << X << "," << Y;
    }
}
