//===-- tests/BackendTest.cpp - JIT vs interpreter, vector codegen -----------===//
//
// Differential tests between the two back ends, plus checks that the C
// backend classifies vector accesses as the paper describes (dense ramp
// loads vs gathers) and that parallel loops compile to closure dispatch.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenC.h"
#include "codegen/Interpreter.h"
#include "codegen/Jit.h"
#include "lang/ImageParam.h"
#include "lang/Pipeline.h"
#include "runtime/GpuSim.h"

#include <gtest/gtest.h>

using namespace halide;

namespace {

/// Builds a pipeline with mixed types and a stencil; scheduled by Variant.
struct MixedPipe {
  ImageParam In;
  Var x{"x"}, y{"y"};
  Func Stage1, Out;

  explicit MixedPipe(int Variant)
      : In(Float(32), 2, "be_in"), Stage1("be_stage1"), Out("be_out") {
    auto InC = [&](Expr X, Expr Y) {
      return In(clamp(X, 0, In.width() - 1), clamp(Y, 0, In.height() - 1));
    };
    Stage1(x, y) = InC(x - 1, y) * 0.25f + InC(x, y) * 0.5f +
                   InC(x + 1, y) * 0.25f + halide::sqrt(abs(InC(x, y)));
    Out(x, y) = cast(Int(16), clamp(Stage1(x, y - 1) + Stage1(x, y + 1),
                                    -30000.0f, 30000.0f));
    switch (Variant) {
    case 0:
      Stage1.computeRoot();
      break;
    case 1:
      break; // inline
    case 2: {
      Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
      Out.tile(x, y, xo, yo, xi, yi, 16, 8).vectorize(xi, 8).parallel(yo);
      Stage1.computeAt(Out, xo).vectorize(x, 4);
      break;
    }
    case 3:
      Out.vectorize(x, 8);
      Stage1.storeRoot().computeAt(Out, y).vectorize(x, 8);
      break;
    default:
      Stage1.computeRoot().parallel(y);
      Out.parallel(y);
      break;
    }
  }
};

} // namespace

class BackendParityTest : public ::testing::TestWithParam<int> {};

TEST_P(BackendParityTest, JitMatchesInterpreter) {
  const int W = 64, H = 32;
  MixedPipe P(GetParam());

  Buffer<float> Input(W, H);
  Input.fill([](int X, int Y) {
    return float((X * 13 + Y * 29) % 101) / 17.0f - 2.0f;
  });
  ParamBindings Params;
  Params.bind("be_in", Input);

  LoweredPipeline LP = lower(P.Out.function());

  Buffer<int16_t> FromInterp(W, H);
  {
    ParamBindings PI = Params;
    PI.bind(P.Out.name(), FromInterp);
    interpret(LP, PI);
  }
  Buffer<int16_t> FromJit(W, H);
  {
    ParamBindings PJ = Params;
    PJ.bind(P.Out.name(), FromJit);
    auto CP = jitCompile(LP);
    ASSERT_EQ(CP->run(PJ), 0);
  }
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      ASSERT_EQ(FromInterp(X, Y), FromJit(X, Y))
          << "variant " << GetParam() << " at (" << X << "," << Y << ")";
}

INSTANTIATE_TEST_SUITE_P(Variants, BackendParityTest,
                         ::testing::Range(0, 5));

TEST(CodeGenCTest, DenseRampLoadsAreContiguous) {
  ImageParam In(Float(32), 2, "cg_in");
  Var x("x"), y("y");
  Func F("cg_dense");
  F(x, y) = In(clamp(x, 0, In.width() - 1), clamp(y, 0, In.height() - 1)) *
            2.0f;
  F.vectorize(x, 8);
  std::string Source = codegenC(lower(F.function()), "test_fn");
  // Dense stride-1 stores use the contiguous helper, not scatters.
  EXPECT_NE(Source.find("_store(&"), std::string::npos);
  EXPECT_EQ(Source.find("_scatter"), std::string::npos);
  // The vector type was materialized.
  EXPECT_NE(Source.find("hl_f32x8"), std::string::npos);
}

TEST(CodeGenCTest, GatherForDataDependentIndex) {
  ImageParam Lut(Float(32), 1, "cg_lut");
  ImageParam Idx(UInt(8), 2, "cg_idx");
  Var x("x"), y("y");
  Func F("cg_gather");
  F(x, y) = Lut(clamp(cast(Int(32), Idx(clamp(x, 0, Idx.width() - 1),
                                        clamp(y, 0, Idx.height() - 1))),
                      0, 255));
  F.vectorize(x, 8);
  std::string Source = codegenC(lower(F.function()), "test_fn");
  EXPECT_NE(Source.find("_gather"), std::string::npos);
}

TEST(CodeGenCTest, ParallelLoopBecomesClosure) {
  Var x("x"), y("y");
  Func F("cg_par");
  F(x, y) = x + y;
  F.parallel(y);
  std::string Source = codegenC(lower(F.function()), "test_fn");
  EXPECT_NE(Source.find("ParFor"), std::string::npos);
  EXPECT_NE(Source.find("hl_closure_"), std::string::npos);
}

TEST(CodeGenCTest, GpuLoopBecomesKernelLaunch) {
  Var x("x"), y("y"), bx("bx"), by("by"), tx("tx"), ty("ty");
  Func F("cg_gpu");
  F(x, y) = x * y;
  F.gpuTile(x, y, bx, by, tx, ty, 8, 8);
  std::string Source = codegenC(lower(F.function()), "test_fn");
  EXPECT_NE(Source.find("GpuLaunch"), std::string::npos);
  EXPECT_NE(Source.find("hl_kernel_"), std::string::npos);
}

TEST(GpuSimTest, KernelLaunchCounting) {
  Var x("x"), y("y"), bx("bx"), by("by"), tx("tx"), ty("ty");
  Func F("gpu_count");
  F(x, y) = x + 2 * y;
  F.gpuTile(x, y, bx, by, tx, ty, 8, 8);
  auto CP = jitCompile(lower(F.function()));
  Buffer<int32_t> Out(32, 16);
  ParamBindings Params;
  Params.bind(F.name(), Out);
  gpuSim().resetStats();
  ASSERT_EQ(CP->run(Params), 0);
  EXPECT_EQ(gpuSim().stats().KernelLaunches, 1);
  EXPECT_EQ(gpuSim().stats().BlocksExecuted, (32 / 8) * (16 / 8));
  for (int Y = 0; Y < 16; ++Y)
    for (int X = 0; X < 32; ++X)
      ASSERT_EQ(Out(X, Y), X + 2 * Y);
}

TEST(JitTest, ScalarParamsThreadThrough) {
  Var x("x");
  Param<int32_t> K("jit_k");
  Param<float> S("jit_s");
  Func F("jit_params");
  F(x) = cast(Float(32), x + K) * S;
  auto CP = jitCompile(lower(F.function()));
  Buffer<float> Out(8);
  ParamBindings Params;
  Params.bind(F.name(), Out);
  Params.bindInt("jit_k", 10);
  Params.bindFloat("jit_s", 0.5);
  ASSERT_EQ(CP->run(Params), 0);
  EXPECT_FLOAT_EQ(Out(6), 8.0f);
}

TEST(JitTest, UpdateStagesRunNatively) {
  // Histogram via JIT: scatter + scan, compared against direct counting.
  ImageParam In(UInt(8), 2, "jit_hist_in");
  Var i("i");
  Func Hist("jit_hist");
  RDom R(0, In.width(), 0, In.height(), "jit_r");
  Hist(i) = cast(UInt(32), 0);
  Hist(clamp(cast(Int(32), In(R.x, R.y)), 0, 255)) += cast(UInt(32), 1);
  Hist.bound(i, 0, 256);

  const int W = 37, H = 23;
  Buffer<uint8_t> Input(W, H);
  Input.fill([](int X, int Y) { return (X * 5 + Y * 11) % 256; });
  Buffer<uint32_t> Out(256);
  ParamBindings Params;
  Params.bind("jit_hist_in", Input);
  Params.bind(Hist.name(), Out);
  auto CP = jitCompile(lower(Hist.function()));
  ASSERT_EQ(CP->run(Params), 0);

  std::vector<uint32_t> Want(256, 0);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      ++Want[Input(X, Y)];
  for (int I = 0; I < 256; ++I)
    ASSERT_EQ(Out(I), Want[size_t(I)]) << "bin " << I;
}
