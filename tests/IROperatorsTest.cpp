//===-- tests/IROperatorsTest.cpp - Operator and folding tests -------------===//

#include "ir/IROperators.h"
#include "ir/IREquality.h"
#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

using namespace halide;

namespace {
Expr var(const char *Name) { return Variable::make(Int(32), Name); }
} // namespace

TEST(IROperatorsTest, ConstantFolding) {
  int64_t V;
  EXPECT_TRUE(asConstInt(Expr(2) + Expr(3), &V));
  EXPECT_EQ(V, 5);
  EXPECT_TRUE(asConstInt(Expr(7) * Expr(6), &V));
  EXPECT_EQ(V, 42);
  EXPECT_TRUE(asConstInt(min(Expr(3), Expr(9)), &V));
  EXPECT_EQ(V, 3);
  EXPECT_TRUE(asConstInt(max(Expr(3), Expr(9)), &V));
  EXPECT_EQ(V, 9);
}

TEST(IROperatorsTest, FloorDivisionSemantics) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(floorDiv(5, 0), 0); // defined as zero
  EXPECT_EQ(floorMod(7, 3), 1);
  EXPECT_EQ(floorMod(-7, 3), 2); // sign of divisor
  EXPECT_EQ(floorMod(-6, 3), 0);
  int64_t V;
  EXPECT_TRUE(asConstInt(Expr(-7) / Expr(2), &V));
  EXPECT_EQ(V, -4);
  EXPECT_TRUE(asConstInt(Expr(-7) % Expr(2), &V));
  EXPECT_EQ(V, 1);
}

TEST(IROperatorsTest, WrapToType) {
  EXPECT_EQ(wrapToType(256, UInt(8)), 0);
  EXPECT_EQ(wrapToType(257, UInt(8)), 1);
  EXPECT_EQ(wrapToType(128, Int(8)), -128);
  EXPECT_EQ(wrapToType(-1, UInt(8)), 255);
}

TEST(IROperatorsTest, Identities) {
  Expr X = var("x");
  EXPECT_TRUE(equal(X + 0, X));
  EXPECT_TRUE(equal(X * 1, X));
  EXPECT_TRUE(equal(X - 0, X));
  EXPECT_TRUE(isConstZero(X * 0));
  EXPECT_TRUE(equal(X / 1, X));
}

TEST(IROperatorsTest, TypePromotion) {
  Expr U8 = makeConst(UInt(8), int64_t(3));
  // Immediate adopts the non-immediate side's type.
  Expr E = Variable::make(UInt(8), "v") + 1;
  EXPECT_EQ(E.type(), UInt(8));
  // Mixed widths widen.
  Expr Wide = Variable::make(Int(16), "a") + Variable::make(Int(32), "b");
  EXPECT_EQ(Wide.type(), Int(32));
  // int + float -> float.
  Expr F = var("x") + Expr(1.5f);
  EXPECT_EQ(F.type(), Float(32));
  // uint + int at equal width -> int.
  Expr M = Variable::make(UInt(32), "u") + var("x");
  EXPECT_EQ(M.type(), Int(32));
  (void)U8;
}

TEST(IROperatorsTest, VectorBroadcastPromotion) {
  Expr V = Broadcast::make(var("x"), 4);
  Expr E = V + 1;
  EXPECT_EQ(E.type(), Int(32, 4));
}

TEST(IROperatorsTest, Comparisons) {
  int64_t V;
  EXPECT_TRUE(asConstInt(Expr(2) < Expr(3), &V));
  EXPECT_EQ(V, 1);
  EXPECT_TRUE(asConstInt(Expr(3) <= Expr(2), &V));
  EXPECT_EQ(V, 0);
  EXPECT_EQ((var("x") < var("y")).type(), Bool());
}

TEST(IROperatorsTest, BooleanAlgebra) {
  Expr T = makeTrue(), F = makeFalse();
  EXPECT_TRUE(isConstOne(T && T));
  EXPECT_TRUE(isConstZero(T && F));
  EXPECT_TRUE(isConstOne(F || T));
  EXPECT_TRUE(isConstZero(!T));
  Expr C = var("x") < 3;
  EXPECT_TRUE(equal(T && C, C)); // short-circuit identities
  EXPECT_TRUE(equal(F || C, C));
}

TEST(IROperatorsTest, ClampSelectAbs) {
  Expr X = var("x");
  Expr C = clamp(X, 0, 10);
  EXPECT_NE(C.as<Max>(), nullptr); // max(min(x, 10), 0)
  int64_t V;
  EXPECT_TRUE(asConstInt(select(makeTrue(), Expr(1), Expr(2)), &V));
  EXPECT_EQ(V, 1);
  EXPECT_TRUE(asConstInt(select(Expr(1) > Expr(2), Expr(1), Expr(2)), &V));
  EXPECT_EQ(V, 2);
  // Multi-way select.
  Expr MW = select(X == 0, Expr(10), X == 1, Expr(20), Expr(30));
  EXPECT_NE(MW.as<Select>(), nullptr);
}

TEST(IROperatorsTest, CastFolding) {
  int64_t V;
  EXPECT_TRUE(asConstInt(cast(UInt(8), Expr(300)), &V));
  EXPECT_EQ(V, 44); // wraps
  double F;
  EXPECT_TRUE(asConstFloat(cast(Float(32), Expr(3)), &F));
  EXPECT_EQ(F, 3.0);
  // No-op cast returns the input unchanged.
  Expr X = var("x");
  EXPECT_TRUE(cast(Int(32), X).sameAs(X));
}

TEST(IROperatorsTest, MathFunctions) {
  double F;
  EXPECT_TRUE(asConstFloat(halide::sqrt(Expr(4.0f)), &F));
  EXPECT_FLOAT_EQ(float(F), 2.0f);
  EXPECT_TRUE(asConstFloat(halide::floor(Expr(2.7f)), &F));
  EXPECT_EQ(F, 2.0);
  // Integer args promote to float.
  EXPECT_EQ(halide::sqrt(var("x")).type(), Float(32));
  const Call *C = halide::pow(Expr(2.0f), var("x")).as<Call>();
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Name, "pow");
  EXPECT_EQ(C->CallKind, CallType::PureExtern);
}

TEST(IROperatorsTest, Lerp) {
  double F;
  EXPECT_TRUE(asConstFloat(lerp(Expr(0.0f), Expr(10.0f), Expr(0.25f)), &F));
  EXPECT_FLOAT_EQ(float(F), 2.5f);
}

TEST(IROperatorsTest, TypeMinMax) {
  int64_t V;
  EXPECT_TRUE(asConstInt(makeTypeMax(UInt(8)), &V));
  EXPECT_EQ(V, 255);
  EXPECT_TRUE(asConstInt(makeTypeMin(Int(16)), &V));
  EXPECT_EQ(V, -32768);
}
