//===-- tests/DifferentialScheduleTest.cpp -----------------------------------===//
//
// The differential schedule-correctness suite: for every app in the
// registry, a deterministic sample of schedules from the autotuner's
// search space must produce the breadth-first reference result on the
// bytecode VM (the suite's default engine) and CodeGenC, with the
// tree-walking interpreter spot-checking a prefix of the sample
// bit-for-bit; the reference must also agree with the hand-written C++
// baseline where one exists. This is the repo-wide safety net behind the
// paper's "scheduling never changes semantics" guarantee.
// HALIDE_DIFF_BACKEND forces the execution engine (see DiffTest.h).
//
//===----------------------------------------------------------------------===//

#include "autotune/ScheduleSpace.h"
#include "lang/Pipeline.h"
#include "support/DiffTest.h"

#include <gtest/gtest.h>

#include <ctime>

using namespace halide;

namespace {

/// Levels used for the pyramid-depth-parameterized local Laplacian app
/// (paper value is 8; shallower keeps the interpreter sweep fast).
constexpr int TestLLLevels = 3;

void expectDifferentialOk(App A, DiffOptions Opts = DiffOptions()) {
  DiffReport R = runScheduleDifferential(A, Opts);
  EXPECT_GE(R.SchedulesRun, 4) << A.Name;
  EXPECT_TRUE(R.ok()) << R.summary();
}

} // namespace

TEST(DifferentialScheduleTest, RegistryCoversPaperApps) {
  // The sweep below must keep covering every registered app: if the
  // registry grows, add a differential case for the new app.
  std::vector<App> Apps = paperApps(TestLLLevels);
  ASSERT_EQ(Apps.size(), 5u);
  const char *Expected[] = {"blur", "bilateral_grid", "camera_pipe",
                            "interpolate", "local_laplacian"};
  for (size_t I = 0; I < Apps.size(); ++I) {
    EXPECT_EQ(Apps[I].Name, Expected[I]);
    EXPECT_TRUE(Apps[I].Reference != nullptr)
        << Apps[I].Name << ": missing hand-written baseline hook";
  }
}

TEST(DifferentialScheduleTest, DeterministicSampleIsStable) {
  App A = makeBlurApp();
  ScheduleSpace Space(A.Output.function());
  std::vector<Genome> S1 = Space.deterministicSample(8, 2013);
  std::vector<Genome> S2 = Space.deterministicSample(8, 2013);
  ASSERT_EQ(S1.size(), 8u);
  ASSERT_EQ(S1.size(), S2.size());
  for (size_t I = 0; I < S1.size(); ++I)
    EXPECT_EQ(Space.describe(S1[I]), Space.describe(S2[I])) << "genome " << I;
  // The canonical prefix must contain distinct schedules.
  for (size_t I = 0; I < 5; ++I)
    for (size_t J = I + 1; J < 5; ++J)
      EXPECT_NE(Space.describe(S1[I]), Space.describe(S1[J]))
          << I << " vs " << J;
}

TEST(DifferentialScheduleTest, Blur) {
  expectDifferentialOk(paperApps(TestLLLevels)[0]);
}

TEST(DifferentialScheduleTest, BilateralGrid) {
  DiffOptions Opts;
  // Small sweep frame (the fully inlined grid-blur chain is expensive to
  // interpret); baseline check at a frame whose interior survives the
  // three-grid-tile margin. Both multiples of the 8-pixel grid tile.
  Opts.Width = 64;
  Opts.Height = 48;
  Opts.BaselineWidth = 96;
  Opts.BaselineHeight = 64;
  expectDifferentialOk(paperApps(TestLLLevels)[1], Opts);
}

TEST(DifferentialScheduleTest, CameraPipe) {
  expectDifferentialOk(paperApps(TestLLLevels)[2]);
}

TEST(DifferentialScheduleTest, Interpolate) {
  DiffOptions Opts;
  // Small sweep frame (the pyramid is the most expensive app to
  // interpret); the six-level pyramid diverges from the baseline's
  // per-level clamping over a ~64-pixel border band, so the baseline
  // check needs a frame with an interior beyond that band.
  Opts.Width = 64;
  Opts.Height = 48;
  Opts.BaselineWidth = 256;
  Opts.BaselineHeight = 160;
  expectDifferentialOk(paperApps(TestLLLevels)[3], Opts);
}

TEST(DifferentialScheduleTest, LocalLaplacian) {
  expectDifferentialOk(paperApps(TestLLLevels)[4]);
}

TEST(DifferentialScheduleTest, LocalLaplacianPaperDepthGpuSim) {
  // The paper's 8-level local Laplacian under its simulated-GPU schedule:
  // the deepest pipeline in the repo, and the one whose bounds expressions
  // grew exponentially before bounds inference shared subexpressions —
  // bench_runner used to skip this row because it could not be lowered.
  // Lowering must now complete in interactive time, and the schedule must
  // agree with the breadth-first reference on both remaining engines (the
  // bytecode VM and CodeGenC). The tree-walking interpreter sits this one
  // out: the 8x8 per-stage round-up compounds geometrically down the
  // pyramid, so the schedule does hundreds of millions of stores at any
  // frame size — minutes on the tree walker. The interpreter's audit of
  // this app stays with the depth-3 sweep above (InterpreterSpotChecks
  // keeps its prefix there).
  const int W = 96, H = 64; // multiples of the 8-pixel gpu tile
  App A = makeLocalLaplacianApp(/*Levels=*/8);
  ParamBindings Inputs = A.MakeInputs(W, H);
  Pipeline Pipe(A.Output);

  // Reference: breadth-first through the suite's default engine.
  A.ScheduleBreadthFirst();
  std::shared_ptr<void> KeepRef;
  RawBuffer Ref = makeAppOutput(A, W, H, &KeepRef);
  {
    LoweredPipeline P = Pipe.lowerPipeline();
    ParamBindings PB = Inputs;
    PB.bind(A.Output.name(), Ref);
    ASSERT_EQ(runOnBackend(Target::vm(), P, PB), 0);
  }

  // The acceptance bar from ISSUE 4 is "lowers in < 5 s"; shared-bounds
  // lowering measures ~2 s. Assert on process CPU time with regime-scale
  // margin rather than wall time, which under the parallel ctest jobs
  // measures machine load, not the compiler: the exponential trajectory
  // this guards against took over half an hour.
  A.ScheduleGpu();
  std::clock_t Start = std::clock();
  LoweredPipeline P = Pipe.lowerPipeline();
  double LowerCpuMs = 1000.0 * double(std::clock() - Start) / CLOCKS_PER_SEC;
  EXPECT_LT(LowerCpuMs, 20000.0)
      << "8-level gpu-sim lowering regressed far past the 5 s acceptance bar";

  std::shared_ptr<void> KeepVm;
  RawBuffer OutVm = makeAppOutput(A, W, H, &KeepVm);
  {
    ParamBindings PB = Inputs;
    PB.bind(A.Output.name(), OutVm);
    ASSERT_EQ(runOnBackend(Target::vm(), P, PB), 0);
  }
  std::string Detail;
  EXPECT_TRUE(buffersMatch(Ref, OutVm, 1e-5, 0, &Detail))
      << "vm vs reference: " << Detail;

  std::shared_ptr<void> KeepC;
  RawBuffer OutC = makeAppOutput(A, W, H, &KeepC);
  {
    ParamBindings PB = Inputs;
    PB.bind(A.Output.name(), OutC);
    ASSERT_EQ(runOnBackend(Target::jit().withJitFlags("-O0"), P, PB), 0);
  }
  EXPECT_TRUE(buffersMatch(Ref, OutC, 1e-5, 0, &Detail))
      << "codegen_c vs reference: " << Detail;
}

TEST(DifferentialScheduleTest, HistogramEqualize) {
  // Not part of the paper's five-app registry but packaged the same way;
  // no hand-written baseline, so this checks backend agreement only.
  expectDifferentialOk(makeHistogramEqualizeApp());
}
