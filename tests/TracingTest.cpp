//===-- tests/TracingTest.cpp ---------------------------------------------===//
//
// The observability contract of Target::Trace (observe/TraceStream.h +
// transforms/InjectTracing.h):
//
//  * Zero cost when off: the trace bit never reaches the lowering
//    fingerprint or the lowered IR — one cached lowering serves both the
//    instrumented and uninstrumented executables, the instrumented build
//    is one extra backend compile and zero extra lowerings, an off-target
//    artifact contains no trace ops, and a traced run produces
//    bit-identical output to an untraced one.
//  * Engine agreement: for the paper's Figure-3 blur under breadth-first,
//    tiled, and sliding-window schedules, the interpreter, the bytecode
//    VM, and the CodeGenC JIT emit *identical* serial event streams
//    (Name records excluded — the intern table is process-wide and grows
//    monotonically across runs).
//  * Analyzer consistency: per-buffer store lanes summed from the trace
//    equal the run's ExecutionStats, and the trace-derived recomputation
//    factor reproduces the Figure-3 shape (breadth-first 1.0, overlapping
//    tiles > 1).
//  * Threaded runs: a multi-threaded trace interleaves at flush
//    granularity but is the same event *multiset* as the serial trace.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "lang/ImageParam.h"
#include "observe/MetricsRegistry.h"
#include "observe/TraceStream.h"
#include "runtime/TaskScheduler.h"
#include "support/DiffTest.h"
#include "transforms/Lower.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <tuple>
#include <vector>

#include <unistd.h>

using namespace halide;

namespace {

std::string tmpTracePath(const char *Tag) {
  return "/tmp/halide_tracing_test_" + std::to_string(getpid()) + "_" + Tag +
         ".bin";
}

/// Runs \p P on \p T with tracing enabled, streaming to a throwaway file,
/// and returns the decoded events.
std::vector<TraceEvent> runTraced(const Target &T, const LoweredPipeline &P,
                                  const ParamBindings &PB, const char *Tag,
                                  ExecutionStats *Stats = nullptr) {
  const std::string Path = tmpTracePath(Tag);
  EXPECT_TRUE(traceStreamStart(Path)) << Path;
  EXPECT_EQ(runOnBackend(T.withTrace(), P, PB, Stats), 0);
  traceStreamStop();
  std::vector<TraceEvent> Events;
  std::string Error;
  EXPECT_TRUE(readTraceFile(Path, &Events, &Error)) << Error;
  std::remove(Path.c_str());
  return Events;
}

/// Strips Name records: the stage-id intern table is process-wide, so a
/// later run's trace names every id interned so far, not just its own.
std::vector<TraceEvent> accessStream(std::vector<TraceEvent> Events) {
  Events.erase(std::remove_if(Events.begin(), Events.end(),
                              [](const TraceEvent &E) {
                                return E.Kind == TraceEventKind::TraceName;
                              }),
               Events.end());
  return Events;
}

std::string eventStr(const TraceEvent &E) {
  std::ostringstream OS;
  OS << "stage=" << E.StageId << " kind=" << int(E.Kind)
     << " type=" << traceTypeCodeStr(E.TypeCode) << " coords=[";
  for (size_t I = 0; I < E.Coords.size(); ++I)
    OS << (I ? "," : "") << E.Coords[I];
  OS << "] bits=[";
  for (size_t I = 0; I < E.Bits.size(); ++I)
    OS << (I ? "," : "") << E.Bits[I];
  OS << "]";
  return OS.str();
}

void expectSameStream(const std::vector<TraceEvent> &A,
                      const std::vector<TraceEvent> &B, const char *Label) {
  ASSERT_EQ(A.size(), B.size()) << Label;
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_TRUE(A[I] == B[I]) << Label << ": first divergence at record "
                              << I << "\n  " << eventStr(A[I]) << "\n  "
                              << eventStr(B[I]);
}

bool eventLess(const TraceEvent &A, const TraceEvent &B) {
  return std::tie(A.StageId, A.Kind, A.TypeCode, A.Coords, A.Bits, A.Name) <
         std::tie(B.StageId, B.Kind, B.TypeCode, B.Coords, B.Bits, B.Name);
}

/// The paper's Figure-3 two-stage blur, self-contained so the test owns
/// the schedules (stage names prefixed to stay out of other tests' way).
struct BlurHarness {
  ImageParam In;
  Var x{"x"}, y{"y"};
  Func Blurx, Out;

  BlurHarness() : In(UInt(8), 2, "tt_in"), Blurx("tt_blurx"), Out("tt_out") {
    auto InC = [&](Expr X, Expr Y) {
      return cast(UInt(16), In(clamp(X, 0, In.width() - 1),
                               clamp(Y, 0, In.height() - 1)));
    };
    Blurx(x, y) =
        cast(UInt(16), (InC(x - 1, y) + InC(x, y) + InC(x + 1, y)) / 3);
    Out(x, y) = cast(UInt(8),
                     (Blurx(x, y - 1) + Blurx(x, y) + Blurx(x, y + 1)) / 3);
  }

  void reset() {
    Out.function().resetSchedule();
    Blurx.function().resetSchedule();
  }

  ParamBindings params(int W, int H, std::vector<Buffer<uint8_t>> *Keep) {
    Buffer<uint8_t> Input(W, H);
    Input.fill([](int X, int Y) { return (X * 23 + Y * 7) % 256; });
    Buffer<uint8_t> Output(W, H);
    Keep->push_back(Input);
    Keep->push_back(Output);
    ParamBindings P;
    P.bind("tt_in", Input);
    P.bind(Out.name(), Output);
    return P;
  }
};

/// Sums per-lane load/store records per stage name.
struct TraceTraffic {
  std::map<std::string, int64_t> LoadLanes, StoreLanes;
  std::map<std::string, int64_t> DistinctStored;
};

TraceTraffic trafficOf(const std::vector<TraceEvent> &Events) {
  std::map<uint16_t, std::string> Names;
  for (const TraceEvent &E : Events)
    if (E.Kind == TraceEventKind::TraceName)
      Names[E.StageId] = E.Name;
  std::map<std::string, std::map<int32_t, int64_t>> Stored;
  TraceTraffic T;
  for (const TraceEvent &E : Events) {
    if (E.Kind == TraceEventKind::TraceLoad)
      T.LoadLanes[Names[E.StageId]] += int64_t(E.Coords.size());
    else if (E.Kind == TraceEventKind::TraceStore) {
      T.StoreLanes[Names[E.StageId]] += int64_t(E.Coords.size());
      for (int32_t C : E.Coords)
        ++Stored[Names[E.StageId]][C];
    }
  }
  for (const auto &[Name, Coords] : Stored)
    T.DistinctStored[Name] = int64_t(Coords.size());
  return T;
}

} // namespace

TEST(TracingTest, TraceOffIsZeroCost) {
  App A = makeBlurApp();
  A.ScheduleTuned();
  Pipeline Pipe(A.Output);
  const Target Off = Target::vm();
  const Target On = Off.withTrace();

  // The trace bit never reaches the lowering: same fingerprint, same
  // lowered IR, so the cache shares one lowering between both targets.
  EXPECT_EQ(Pipe.scheduleFingerprint(Off), Pipe.scheduleFingerprint(On));
  EXPECT_EQ(Pipe.loweredText(Off), Pipe.loweredText(On));

  std::shared_ptr<const Executable> ExeOff = Pipe.compile(Off);
  CompileCounters C1 = Pipeline::compileCounters();
  std::shared_ptr<const Executable> ExeOn = Pipe.compile(On);
  CompileCounters C2 = Pipeline::compileCounters();
  // Instrumentation happens at executable build, on a copy: a second
  // backend compile, but no second lowering.
  EXPECT_EQ(C2.Lowerings, C1.Lowerings);
  EXPECT_EQ(C2.BackendCompiles, C1.BackendCompiles + 1);
  EXPECT_NE(ExeOff.get(), ExeOn.get());
  // Both keys hit the executable cache on recompile.
  Pipe.compile(Off);
  Pipe.compile(On);
  EXPECT_EQ(Pipeline::compileCounters().CacheHits, C2.CacheHits + 2);

  // Trace ops exist only in the instrumented artifact (VM disassembly
  // names them trace.load / trace.store / trace.begin / trace.end).
  EXPECT_EQ(ExeOff->source().find("trace."), std::string::npos);
  EXPECT_NE(ExeOn->source().find("trace.load"), std::string::npos);
  EXPECT_NE(ExeOn->source().find("trace.store"), std::string::npos);
  EXPECT_NE(ExeOn->source().find("trace.begin"), std::string::npos);

  // Traced and untraced runs produce bit-identical output, and the
  // stream's counters surface through the metrics registry.
  const int W = 96, H = 64;
  ParamBindings Params = A.MakeInputs(W, H);
  std::shared_ptr<void> KeepOff, KeepOn;
  RawBuffer OutOff = makeAppOutput(A, W, H, &KeepOff);
  RawBuffer OutOn = makeAppOutput(A, W, H, &KeepOn);
  ParamBindings POff = Params, POn = Params;
  POff.bind(A.Output.name(), OutOff);
  POn.bind(A.Output.name(), OutOn);
  EXPECT_EQ(ExeOff->run(POff), 0);
  const std::string Path = tmpTracePath("zerocost");
  ASSERT_TRUE(traceStreamStart(Path));
  EXPECT_EQ(ExeOn->run(POn), 0);
  traceStreamStop();
  std::remove(Path.c_str());
  std::string Detail;
  EXPECT_TRUE(buffersMatch(OutOff, OutOn, 0.0, 0, &Detail)) << Detail;
  TraceStreamStats TS = traceStreamStats();
  EXPECT_GT(TS.EventsEmitted, 0);
  EXPECT_EQ(TS.EventsDropped, 0);
  EXPECT_GT(TS.BytesWritten, 0);
  MetricsSnapshot M = metricsSnapshot();
  EXPECT_EQ(M.get("trace.events_emitted"), TS.EventsEmitted);
  EXPECT_EQ(M.get("trace.events_dropped"), 0);
  EXPECT_EQ(M.get("trace.bytes_written"), TS.BytesWritten);
}

TEST(TracingTest, EnginesEmitIdenticalSerialStreams) {
  BlurHarness B;
  const int W = 32, H = 32; // multiple of the tile size below
  std::vector<Buffer<uint8_t>> Keep;
  ParamBindings Params = B.params(W, H, &Keep);

  struct Sched {
    const char *Name;
    std::function<void(BlurHarness &)> Apply;
  };
  std::vector<Sched> Schedules = {
      {"breadth_first", [](BlurHarness &H) { H.Blurx.computeRoot(); }},
      {"tiled",
       [](BlurHarness &H) {
         Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
         H.Out.tile(H.x, H.y, xo, yo, xi, yi, 16, 16);
         H.Blurx.computeAt(H.Out, xo);
       }},
      {"sliding_window",
       [](BlurHarness &H) {
         H.Blurx.storeRoot().computeAt(H.Out, H.y);
       }},
  };

  for (const Sched &S : Schedules) {
    B.reset();
    S.Apply(B);
    LoweredPipeline P = lower(B.Out.function());

    std::vector<TraceEvent> Interp = accessStream(
        runTraced(Target::interpreter(), P, Params, "interp"));
    std::vector<TraceEvent> Vm = accessStream(
        runTraced(Target::vm().withThreads(1), P, Params, "vm"));
    std::vector<TraceEvent> Jit = accessStream(runTraced(
        Target::jit().withJitFlags("-O0"), P, Params, "jit"));

    ASSERT_FALSE(Interp.empty()) << S.Name;
    expectSameStream(Interp, Vm,
                     (std::string(S.Name) + ": interpreter vs vm").c_str());
    expectSameStream(Interp, Jit,
                     (std::string(S.Name) + ": interpreter vs jit_c").c_str());
  }
}

TEST(TracingTest, AnalyzerCountsMatchExecutionStats) {
  BlurHarness B;
  const int W = 64, H = 48;
  std::vector<Buffer<uint8_t>> Keep;
  ParamBindings Params = B.params(W, H, &Keep);

  // Breadth-first: every blurx element is stored exactly once — the
  // trace-derived recomputation factor is exactly 1.
  B.reset();
  B.Blurx.computeRoot();
  LoweredPipeline BF = lower(B.Out.function());
  ExecutionStats BFStats;
  TraceTraffic BFT = trafficOf(runTraced(Target::vm().withThreads(1), BF,
                                         Params, "bf", &BFStats));
  EXPECT_EQ(BFT.LoadLanes, BFStats.LoadsPerBuffer);
  EXPECT_EQ(BFT.StoreLanes, BFStats.StoresPerBuffer);
  ASSERT_GT(BFT.DistinctStored["tt_blurx"], 0);
  EXPECT_EQ(BFT.StoreLanes["tt_blurx"], BFT.DistinctStored["tt_blurx"]);
  EXPECT_EQ(BFT.StoreLanes["tt_out"], int64_t(W) * H);

  // Overlapping 16x16 tiles: each tile re-derives its neighbours' blurx
  // fringe rows, so stores outnumber distinct elements (Figure 3's
  // work-amplification, measured from the actual execution).
  B.reset();
  Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
  B.Out.tile(B.x, B.y, xo, yo, xi, yi, 16, 16);
  B.Blurx.computeAt(B.Out, xo);
  LoweredPipeline Tiled = lower(B.Out.function());
  ExecutionStats TiledStats;
  TraceTraffic TiledT = trafficOf(runTraced(Target::vm().withThreads(1),
                                            Tiled, Params, "tiled",
                                            &TiledStats));
  EXPECT_EQ(TiledT.LoadLanes, TiledStats.LoadsPerBuffer);
  EXPECT_EQ(TiledT.StoreLanes, TiledStats.StoresPerBuffer);
  EXPECT_GT(TiledT.StoreLanes["tt_blurx"], TiledT.DistinctStored["tt_blurx"]);
  // The output itself is never recomputed by any schedule.
  EXPECT_EQ(TiledT.StoreLanes["tt_out"], int64_t(W) * H);
}

TEST(TracingTest, ThreadedTraceIsSerialMultiset) {
  BlurHarness B;
  const int W = 64, H = 48;
  std::vector<Buffer<uint8_t>> Keep;
  ParamBindings Params = B.params(W, H, &Keep);

  B.reset();
  Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
  B.Out.tile(B.x, B.y, xo, yo, xi, yi, 16, 16).parallel(yo);
  B.Blurx.computeAt(B.Out, xo);
  LoweredPipeline P = lower(B.Out.function());

  std::vector<TraceEvent> Serial = accessStream(
      runTraced(Target::vm().withThreads(1), P, Params, "serial"));

  const int Before = taskSchedulerThreads();
  setTaskSchedulerThreads(4);
  std::vector<TraceEvent> Threaded = accessStream(
      runTraced(Target::vm().withThreads(4), P, Params, "threaded"));
  setTaskSchedulerThreads(Before);

  // Worker buffers flush in nondeterministic order, but every event of
  // the serial run appears exactly once: same multiset.
  ASSERT_FALSE(Serial.empty());
  ASSERT_EQ(Serial.size(), Threaded.size());
  std::sort(Serial.begin(), Serial.end(), eventLess);
  std::sort(Threaded.begin(), Threaded.end(), eventLess);
  expectSameStream(Serial, Threaded, "threaded vs serial (sorted)");
}
