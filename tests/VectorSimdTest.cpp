//===-- tests/VectorSimdTest.cpp - SIMD execution + vector correctness ----===//
//
// Pins the SIMD execution layer introduced for vectorize():
//  - CodeGenC emits native GCC vector types and restrict buffer pointers.
//  - Reversed (stride -1) ramps classify as dense load/store + lane
//    reverse, not gathers/scatters.
//  - Clamped-boundary stencil loads (off + clamp(ramp, lo, hi), the shape
//    In(clamp(x+dx, 0, W-1), y) lowers to) classify as a clamped dense
//    load — memcpy in the interior, per-lane clamp at the edges — not a
//    gather, and execute correctly at both.
//  - The VM compiles unit-stride ramp accesses to the dense lane-group
//    memory opcodes.
//  - Vector floor div/mod semantics agree bit for bit across the
//    interpreter, the VM, and compiled C, including negative numerators
//    and denominators and division by zero inside Ramp'd expressions.
//  - Vectorizing a split whose extent is not divisible by the factor is
//    safe on internal (padded) funcs and rejected on outputs — at
//    lowering time when the bound is static, at run time otherwise.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenC.h"
#include "codegen/Interpreter.h"
#include "codegen/Jit.h"
#include "lang/ImageParam.h"
#include "lang/Pipeline.h"
#include "vm/VmCompiler.h"
#include "vm/VmExecutable.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace halide;

TEST(VectorSimdTest, NativeVectorTypesAndRestrictPointers) {
  ImageParam In(Float(32), 2, "vs_in");
  Var x("x"), y("y");
  Func F("vs_simd");
  F(x, y) = In(clamp(x, 0, In.width() - 1), clamp(y, 0, In.height() - 1)) *
                2.0f +
            1.0f;
  F.vectorize(x, 8);
  std::string Source = codegenC(lower(F.function()), "test_fn");
  // 8 x f32 is a native 32-byte vector, not the struct fallback.
  EXPECT_NE(Source.find("typedef float hl_f32x8 "
                        "__attribute__((vector_size(32)))"),
            std::string::npos);
  EXPECT_EQ(Source.find("typedef struct hl_f32x8"), std::string::npos);
  // Buffer pointers carry restrict so the C compiler can keep vector
  // temporaries live across the dense load/store helpers.
  EXPECT_NE(Source.find("*restrict"), std::string::npos);
}

TEST(VectorSimdTest, NonPowerOfTwoLanesFallBackToStruct) {
  Var x("x");
  Func F("vs_odd");
  F(x) = x * 2 + 1;
  F.bound(x, 0, 12).vectorize(x, 6); // 6 lanes: no native GCC vector
  std::string Source = codegenC(lower(F.function()), "test_fn");
  EXPECT_NE(Source.find("typedef struct hl_i32x6"), std::string::npos);
  EXPECT_EQ(Source.find("hl_i32x6 __attribute__"), std::string::npos);
}

TEST(VectorSimdTest, ReversedRampIsDenseLoadPlusLaneReverse) {
  Var x("x");
  Func Src("vr_src"), F("vr_out");
  Src(x) = x * 3 + 1;
  Src.computeRoot();
  // "127 - x" is a mirrored index: Broadcast - Ramp folds to a stride -1
  // ramp, which must take the dense-reversed path, not a gather.
  F(x) = Src(127 - Expr(x)) + Src(x);
  F.vectorize(x, 8);
  std::string Source = codegenC(lower(F.function()), "test_fn");
  EXPECT_NE(Source.find("_load_rev(&"), std::string::npos);
  EXPECT_EQ(Source.find("_gather"), std::string::npos);
  EXPECT_EQ(Source.find("_load_strided"), std::string::npos);
}

TEST(VectorSimdTest, ReversedRampExecutesCorrectlyOnAllBackends) {
  const int N = 128;
  Var x("x");
  Func Src("vrx_src"), F("vrx_out");
  Src(x) = x * 3 + 1;
  Src.computeRoot();
  F(x) = Src(127 - Expr(x)) + Src(x);
  F.vectorize(x, 8);
  LoweredPipeline LP = lower(F.function());

  Buffer<int32_t> FromInterp(N), FromVm(N), FromJit(N);
  {
    ParamBindings P;
    P.bind(F.name(), FromInterp);
    interpret(LP, P);
  }
  {
    ParamBindings P;
    P.bind(F.name(), FromVm);
    ASSERT_EQ(vmCompile(LP, Target::vm())->run(P), 0);
  }
  {
    ParamBindings P;
    P.bind(F.name(), FromJit);
    ASSERT_EQ(jitCompile(LP)->run(P), 0);
  }
  for (int X = 0; X < N; ++X) {
    int32_t Want = ((127 - X) * 3 + 1) + (X * 3 + 1);
    ASSERT_EQ(FromInterp(X), Want) << "interp at " << X;
    ASSERT_EQ(FromVm(X), Want) << "vm at " << X;
    ASSERT_EQ(FromJit(X), Want) << "jit at " << X;
  }
}

TEST(VectorSimdTest, ReversedRampStoreEmitsDenseReverseHelper) {
  // No scheduling path produces a reversed store from a pure definition
  // (pure LHS indices are always forward), so drive the emitter directly:
  // a Store whose index is a stride -1 ramp must use the dense reversed
  // store helper rather than a scatter.
  LoweredPipeline LP;
  LP.Name = "revstore";
  LP.Buffers.push_back({"out", Int(32), 1, true});
  Expr Value = Ramp::make(IntImm::make(Int(32), 0), IntImm::make(Int(32), 2),
                          8);
  Expr Index = Ramp::make(IntImm::make(Int(32), 7), IntImm::make(Int(32), -1),
                          8);
  LP.Body = Store::make("out", Value, Index);
  std::string Source = codegenC(LP, "test_fn");
  EXPECT_NE(Source.find("_store_rev(&"), std::string::npos);
  EXPECT_EQ(Source.find("_scatter"), std::string::npos);
}

TEST(VectorSimdTest, ClampedRampStencilIsDenseClampedLoadNotGather) {
  ImageParam In(UInt(8), 2, "vcl_in");
  Var x("x"), y("y");
  Func F("vcl_out");
  // The standard clamped-boundary stencil: each tap's x index lowers to
  // off + clamp(ramp(base, 1, 8), 0, W-1). That must classify as the
  // clamped dense load (memcpy when the whole lane group is interior),
  // never a per-lane gather.
  auto InC = [&](Expr X) {
    return cast(Int(32), In(clamp(X, 0, In.width() - 1), y));
  };
  F(x, y) = InC(x - 1) + InC(x) * 2 + InC(x + 1);
  F.vectorize(x, 8);
  std::string Source = codegenC(lower(F.function()), "test_fn");
  EXPECT_NE(Source.find("_load_clamped("), std::string::npos);
  EXPECT_EQ(Source.find("_gather"), std::string::npos);
}

TEST(VectorSimdTest, ClampedRampExecutesCorrectlyAtBoundaries) {
  // W = 64 is a multiple of the lane count, so the first and last lane
  // groups hold clamped (slow-path) lanes while every interior group
  // takes the dense memcpy fast path; both must match the interpreter.
  const int W = 64, H = 4;
  ImageParam In(UInt(8), 2, "vclx_in");
  Var x("x"), y("y");
  Func F("vclx_out");
  auto InC = [&](Expr X) {
    return cast(Int(32), In(clamp(X, 0, In.width() - 1), y));
  };
  F(x, y) = InC(x - 1) + InC(x) * 2 + InC(x + 1);
  F.vectorize(x, 8);
  LoweredPipeline LP = lower(F.function());

  Buffer<uint8_t> Input(W, H);
  Input.fill([](int X, int Y) { return uint8_t((X * 7 + Y * 31) % 251); });
  ParamBindings Params;
  Params.bind("vclx_in", Input);

  Buffer<int32_t> FromInterp(W, H), FromVm(W, H), FromJit(W, H);
  {
    ParamBindings P = Params;
    P.bind(F.name(), FromInterp);
    interpret(LP, P);
  }
  {
    ParamBindings P = Params;
    P.bind(F.name(), FromVm);
    ASSERT_EQ(vmCompile(LP, Target::vm())->run(P), 0);
  }
  {
    ParamBindings P = Params;
    P.bind(F.name(), FromJit);
    ASSERT_EQ(jitCompile(LP)->run(P), 0);
  }
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      auto At = [&](int I) {
        return int32_t(Input(std::clamp(I, 0, W - 1), Y));
      };
      int32_t Want = At(X - 1) + At(X) * 2 + At(X + 1);
      ASSERT_EQ(FromInterp(X, Y), Want) << "interp at (" << X << "," << Y << ")";
      ASSERT_EQ(FromVm(X, Y), Want) << "vm at (" << X << "," << Y << ")";
      ASSERT_EQ(FromJit(X, Y), Want) << "jit at (" << X << "," << Y << ")";
    }
}

TEST(VectorSimdTest, VmCompilesUnitStrideRampsToDenseOps) {
  Var x("x");
  Func Src("vmdense_src"), F("vmdense_out");
  Src(x) = x + 7;
  Src.computeRoot().vectorize(x, 8);
  F(x) = Src(x) * 2;
  F.vectorize(x, 8);
  auto Exe = vmCompile(lower(F.function()), Target::vm());
  std::string Listing = Exe->program().disassemble();
  EXPECT_NE(Listing.find("load.dense"), std::string::npos);
  EXPECT_NE(Listing.find("store.dense"), std::string::npos);

  const int N = 64;
  Buffer<int32_t> FromVm(N), FromInterp(N);
  LoweredPipeline LP = lower(F.function());
  {
    ParamBindings P;
    P.bind(F.name(), FromVm);
    ASSERT_EQ(vmCompile(LP, Target::vm())->run(P), 0);
  }
  {
    ParamBindings P;
    P.bind(F.name(), FromInterp);
    interpret(LP, P);
  }
  for (int X = 0; X < N; ++X)
    ASSERT_EQ(FromVm(X), FromInterp(X)) << "at " << X;
}

TEST(VectorSimdTest, VectorDivModFloorSemanticsParity) {
  // Floor division and floor remainder inside Ramp'd vector expressions,
  // over negative numerators AND negative denominators, with division by
  // zero (defined as 0) in some lanes. All three backends must agree bit
  // for bit; any divergence is a backend bug.
  ImageParam In(Int(32), 2, "vdm_in");
  Var x("x"), y("y");
  Func F("vdm_out");
  Expr V = In(clamp(x, 0, In.width() - 1), clamp(y, 0, In.height() - 1));
  Expr Num = V - 37;                    // mixed signs, ramps along x
  Expr DenB = Expr(y) % 7 - 3;          // broadcast denominator, -3..3 (has 0)
  Expr DenR = (Expr(x) + Expr(y)) % 5 - 2; // ramp denominator, -2..2 (has 0)
  F(x, y) = Num / DenB + Num % DenB * 100 + Num / DenR * 10000 +
            Num % DenR * 1000000 +
            cast(Int(32), cast(Int(16), Num * 5) / cast(Int(16), DenR)) +
            cast(Int(32),
                 cast(UInt(32), Expr(x) + 1) / cast(UInt(32), Expr(y) % 4) +
                     cast(UInt(32), Expr(x) + 3) % cast(UInt(32), 6));
  F.vectorize(x, 8);

  const int W = 64, H = 16;
  Buffer<int32_t> Input(W, H);
  Input.fill([](int X, int Y) { return X * 7 + Y * 13 - 60; });
  ParamBindings Params;
  Params.bind("vdm_in", Input);

  LoweredPipeline LP = lower(F.function());
  Buffer<int32_t> FromInterp(W, H), FromVm(W, H), FromJit(W, H);
  {
    ParamBindings P = Params;
    P.bind(F.name(), FromInterp);
    interpret(LP, P);
  }
  {
    ParamBindings P = Params;
    P.bind(F.name(), FromVm);
    ASSERT_EQ(vmCompile(LP, Target::vm())->run(P), 0);
  }
  {
    ParamBindings P = Params;
    P.bind(F.name(), FromJit);
    ASSERT_EQ(jitCompile(LP)->run(P), 0);
  }
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      ASSERT_EQ(FromInterp(X, Y), FromVm(X, Y))
          << "interp vs vm at (" << X << "," << Y << ")";
      ASSERT_EQ(FromInterp(X, Y), FromJit(X, Y))
          << "interp vs jit at (" << X << "," << Y << ")";
    }
}

TEST(VectorSimdTest, NonDivisibleVectorizedInternalUpdateStageIsSafe) {
  // Histogram-style pipeline: the init stage of the histogram is
  // vectorized by 8 over extent 100 (rounds up to 104). The histogram is
  // an internal stage, so its allocation is padded to the rounded extent
  // and the update stage still walks exactly [0, 100) — every backend
  // must produce the exact counts.
  ImageParam In(UInt(8), 1, "nds_in");
  Var i("i");
  Func Hist("nds_hist"), Out("nds_out");
  RDom R(0, In.width(), "nds_r");
  Hist(i) = cast(UInt(32), 0);
  Hist(clamp(cast(Int(32), In(R.x)), 0, 99)) += cast(UInt(32), 1);
  Hist.computeRoot().bound(i, 0, 100).vectorize(i, 8);
  Out(i) = Hist(i) + cast(UInt(32), 1);

  const int N = 237;
  Buffer<uint8_t> Input(N);
  Input.fill([](int X) { return (X * 31 + 7) % 100; });
  std::vector<uint32_t> Want(100, 1);
  for (int X = 0; X < N; ++X)
    Want[size_t((X * 31 + 7) % 100)] += 1;

  LoweredPipeline LP = lower(Out.function());
  ParamBindings Params;
  Params.bind("nds_in", Input);

  Buffer<uint32_t> FromInterp(100), FromVm(100), FromJit(100);
  {
    ParamBindings P = Params;
    P.bind(Out.name(), FromInterp);
    interpret(LP, P);
  }
  {
    ParamBindings P = Params;
    P.bind(Out.name(), FromVm);
    ASSERT_EQ(vmCompile(LP, Target::vm())->run(P), 0);
  }
  {
    ParamBindings P = Params;
    P.bind(Out.name(), FromJit);
    ASSERT_EQ(jitCompile(LP)->run(P), 0);
  }
  for (int X = 0; X < 100; ++X) {
    ASSERT_EQ(FromInterp(X), Want[size_t(X)]) << "interp at " << X;
    ASSERT_EQ(FromVm(X), Want[size_t(X)]) << "vm at " << X;
    ASSERT_EQ(FromJit(X), Want[size_t(X)]) << "jit at " << X;
  }
}

TEST(VectorSimdTest, NonDivisibleVectorizedOutputRejectedAtLoweringTime) {
  // With a static bound the round-up is provable at lowering time, so the
  // schedule is rejected with an error naming the stage instead of
  // deferring to a runtime abort.
  Var x("x");
  Func F("ndr_out");
  F(x) = x * 2;
  F.bound(x, 0, 100).vectorize(x, 8);
  EXPECT_DEATH(lower(F.function()), "round the written extent up");
}

TEST(VectorSimdTest, NonDivisibleVectorizedOutputAbortsAtRunTime) {
  // Without a static bound the same schedule must still refuse to write
  // out of bounds when the realized extent is not a factor multiple.
  Var x("x");
  Func F("ndrt_out");
  F(x) = x * 2;
  F.vectorize(x, 8);
  auto CP = jitCompile(lower(F.function()));
  Buffer<int32_t> Out(100);
  ParamBindings P;
  P.bind(F.name(), Out);
  EXPECT_DEATH(CP->run(P), "must be a multiple of the split factors");
}
