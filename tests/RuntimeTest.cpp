//===-- tests/RuntimeTest.cpp - Task scheduler, GPU sim, buffers ---------------===//

#include "runtime/Buffer.h"
#include "runtime/GpuSim.h"
#include "runtime/Runtime.h"
#include "runtime/TaskScheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>

using namespace halide;

TEST(TaskSchedulerTest, CoversAllIterations) {
  std::vector<std::atomic<int>> Hits(100);
  for (auto &H : Hits)
    H = 0;
  struct Ctx {
    std::vector<std::atomic<int>> *Hits;
  } C{&Hits};
  parallelFor(0, 100,
              [](int32_t I, void *P) {
                auto *Ctx_ = static_cast<Ctx *>(P);
                (*Ctx_->Hits)[size_t(I)].fetch_add(1);
              },
              &C);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Hits[size_t(I)].load(), 1) << "iteration " << I;
}

TEST(TaskSchedulerTest, NonZeroMin) {
  std::atomic<int64_t> Sum{0};
  struct Ctx {
    std::atomic<int64_t> *Sum;
  } C{&Sum};
  parallelFor(10, 5,
              [](int32_t I, void *P) {
                static_cast<Ctx *>(P)->Sum->fetch_add(I);
              },
              &C);
  EXPECT_EQ(Sum.load(), 10 + 11 + 12 + 13 + 14);
}

TEST(TaskSchedulerTest, NestedParallelism) {
  std::atomic<int> Count{0};
  struct Ctx {
    std::atomic<int> *Count;
  } C{&Count};
  parallelFor(0, 4,
              [](int32_t, void *P) {
                auto *Outer = static_cast<Ctx *>(P);
                parallelFor(0, 8,
                            [](int32_t, void *Q) {
                              static_cast<Ctx *>(Q)->Count->fetch_add(1);
                            },
                            Outer);
              },
              &C);
  EXPECT_EQ(Count.load(), 32);
}

TEST(TaskSchedulerTest, NestedLoopsRunOffTheSubmittingThread) {
  // The work-stealing property the single-queue pool lacked: a nested
  // parallel loop's iterations are real tasks other threads execute, not
  // inlined serially on the submitting worker. A barrier holds all four
  // outer iterations concurrently occupied — which already requires the
  // workers to have stolen the outer chunks from the submitter's deque —
  // and then each runs a nested loop; the barrier releasing at all
  // proves 4-way outer concurrency, and inner work must land on more
  // than one thread.
  if (taskSchedulerThreads() < 4)
    GTEST_SKIP() << "needs at least 4 scheduler threads";
  struct Ctx {
    std::mutex M;
    std::condition_variable CV;
    int Arrived = 0;
    std::set<std::thread::id> Ids;
  } C;
  parallelFor(0, 4,
              [](int32_t, void *P) {
                auto *Ctx_ = static_cast<Ctx *>(P);
                {
                  std::unique_lock<std::mutex> Lock(Ctx_->M);
                  if (++Ctx_->Arrived >= 4)
                    Ctx_->CV.notify_all();
                  else
                    while (Ctx_->Arrived < 4)
                      Ctx_->CV.wait(Lock);
                }
                parallelFor(0, 64,
                            [](int32_t, void *Q) {
                              auto *Inner = static_cast<Ctx *>(Q);
                              std::lock_guard<std::mutex> Lock(Inner->M);
                              Inner->Ids.insert(std::this_thread::get_id());
                            },
                            Ctx_);
              },
              &C);
  EXPECT_GT(C.Ids.size(), 1u);
}

TEST(TaskSchedulerTest, ZeroAndNegativeExtent) {
  parallelFor(0, 0, [](int32_t, void *) { FAIL(); }, nullptr);
  parallelFor(0, -5, [](int32_t, void *) { FAIL(); }, nullptr);
}

TEST(TaskSchedulerTest, ChunkPartitionIsDeterministicAndComplete) {
  struct Ctx {
    std::atomic<int64_t> Iters{0};
    std::atomic<int> Chunks{0};
  } C;
  int N = parallelForChunks(
      5, 1000, 7,
      [](int64_t Begin, int64_t End, int Chunk, void *P) {
        auto *Ctx_ = static_cast<Ctx *>(P);
        EXPECT_GE(Chunk, 0);
        EXPECT_LT(Chunk, 7);
        EXPECT_LT(Begin, End);
        Ctx_->Iters.fetch_add(End - Begin);
        Ctx_->Chunks.fetch_add(1);
      },
      &C);
  EXPECT_EQ(N, 7);
  EXPECT_EQ(C.Iters.load(), 1000);
  EXPECT_EQ(C.Chunks.load(), 7);
  EXPECT_EQ(parallelForChunks(
                0, 0, 4, [](int64_t, int64_t, int, void *) { FAIL(); },
                nullptr),
            0);
}

TEST(TaskSchedulerTest, ResizeTakesEffectAndRestoresDefault) {
  int Default = taskSchedulerThreads();
  EXPECT_GE(Default, 1);
  setTaskSchedulerThreads(3);
  EXPECT_EQ(taskSchedulerThreads(), 3);
  // Loops still cover every iteration at the new size.
  std::atomic<int> Count{0};
  parallelFor(0, 50,
              [](int32_t, void *P) {
                static_cast<std::atomic<int> *>(P)->fetch_add(1);
              },
              &Count);
  EXPECT_EQ(Count.load(), 50);
  setTaskSchedulerThreads(0);
  EXPECT_EQ(taskSchedulerThreads(), Default);
}

TEST(TaskSchedulerTest, ResizeIsLockedAgainstInFlightLoops) {
  // The ThreadPool lifecycle bug this runtime replaced: resizing while
  // loops are in flight tore down workers under a running job. The
  // scheduler must instead drain in-flight loops, rebuild, and release
  // the queued loops — no lost iterations, no deadlock, no crash.
  std::atomic<bool> Done{false};
  std::atomic<int64_t> Total{0};
  std::vector<std::thread> Submitters;
  for (int S = 0; S < 3; ++S)
    Submitters.emplace_back([&] {
      while (!Done.load()) {
        parallelFor(0, 64,
                    [](int32_t, void *P) {
                      static_cast<std::atomic<int64_t> *>(P)->fetch_add(1);
                    },
                    &Total);
      }
    });
  for (int N : {2, 4, 1, 3, 0})
    setTaskSchedulerThreads(N);
  Done = true;
  for (std::thread &T : Submitters)
    T.join();
  EXPECT_EQ(Total.load() % 64, 0);
  EXPECT_GT(Total.load(), 0);
}

TEST(TaskSchedulerTest, InTaskWorkerReflectsContext) {
  EXPECT_FALSE(inTaskWorker());
  struct Ctx {
    std::atomic<int> InTask{0};
  } C;
  parallelFor(0, 8,
              [](int32_t, void *P) {
                if (inTaskWorker())
                  static_cast<Ctx *>(P)->InTask.fetch_add(1);
              },
              &C);
  EXPECT_EQ(C.InTask.load(), 8);
  EXPECT_FALSE(inTaskWorker());
}

TEST(GpuSimTest, LaunchStats) {
  gpuSim().resetStats();
  std::atomic<int> Blocks{0};
  struct Ctx {
    std::atomic<int> *Blocks;
  } C{&Blocks};
  gpuSim().launch(12,
                  [](int32_t, void *P) {
                    static_cast<Ctx *>(P)->Blocks->fetch_add(1);
                  },
                  &C);
  EXPECT_EQ(Blocks.load(), 12);
  EXPECT_EQ(gpuSim().stats().KernelLaunches, 1);
  EXPECT_EQ(gpuSim().stats().BlocksExecuted, 12);
}

TEST(BufferTest, LayoutAndAccess) {
  Buffer<uint16_t> B(5, 3);
  EXPECT_EQ(B.width(), 5);
  EXPECT_EQ(B.height(), 3);
  EXPECT_EQ(B.raw().Dim[0].Stride, 1); // innermost dense
  EXPECT_EQ(B.raw().Dim[1].Stride, 5);
  B(2, 1) = 42;
  EXPECT_EQ(B.data()[1 * 5 + 2], 42);
  B.fill([](int X, int Y) { return X * 10 + Y; });
  EXPECT_EQ(B(4, 2), 42);
}

TEST(BufferTest, ThreeDimensional) {
  Buffer<float> B(4, 3, 2);
  EXPECT_EQ(B.raw().Dim[2].Stride, 12);
  B(1, 2, 1) = 7.0f;
  EXPECT_EQ(B.data()[1 * 12 + 2 * 4 + 1], 7.0f);
}

TEST(BufferTest, MinOffsets) {
  Buffer<int32_t> B(4, 4);
  B.setMin(100, 200);
  B(101, 202) = 9;
  EXPECT_EQ(B(101, 202), 9);
  EXPECT_EQ(B.minCoord(0), 100);
}

TEST(BufferTest, RawKeepsStorageAlive) {
  RawBuffer Raw;
  {
    Buffer<uint8_t> B(8, 8);
    B.fillConstant(77);
    Raw = B.raw();
  }
  // The typed buffer is gone; the descriptor's Owner keeps data valid.
  EXPECT_EQ(static_cast<uint8_t *>(Raw.Host)[0], 77);
}

TEST(ParamBindingsTest, MetadataLookup) {
  Buffer<float> B(6, 4);
  B.setMin(2, 3);
  ParamBindings P;
  P.bind("img", B);
  double V;
  EXPECT_TRUE(P.lookupScalar("img.extent.0", &V));
  EXPECT_EQ(V, 6);
  EXPECT_TRUE(P.lookupScalar("img.min.1", &V));
  EXPECT_EQ(V, 3);
  EXPECT_TRUE(P.lookupScalar("img.stride.1", &V));
  EXPECT_EQ(V, 6);
  // Dimensions beyond rank read as degenerate.
  EXPECT_TRUE(P.lookupScalar("img.extent.2", &V));
  EXPECT_EQ(V, 1);
  EXPECT_FALSE(P.lookupScalar("other.extent.0", &V));
  P.bindInt("k", 42);
  EXPECT_TRUE(P.lookupScalar("k", &V));
  EXPECT_EQ(V, 42);
}

TEST(RuntimeVTableTest, MallocAlignment) {
  void *P = halideMalloc(1000);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 64, 0u);
  halideFree(P);
  const RuntimeVTable *VT = runtimeVTable();
  void *Q = VT->Malloc(16);
  ASSERT_NE(Q, nullptr);
  VT->Free(Q);
}
