//===-- tests/RuntimeTest.cpp - Thread pool, GPU sim, buffers ------------------===//

#include "runtime/Buffer.h"
#include "runtime/GpuSim.h"
#include "runtime/Runtime.h"
#include "runtime/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace halide;

TEST(ThreadPoolTest, CoversAllIterations) {
  std::vector<std::atomic<int>> Hits(100);
  for (auto &H : Hits)
    H = 0;
  struct Ctx {
    std::vector<std::atomic<int>> *Hits;
  } C{&Hits};
  parallelFor(0, 100,
              [](int32_t I, void *P) {
                auto *Ctx_ = static_cast<Ctx *>(P);
                (*Ctx_->Hits)[size_t(I)].fetch_add(1);
              },
              &C);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Hits[size_t(I)].load(), 1) << "iteration " << I;
}

TEST(ThreadPoolTest, NonZeroMin) {
  std::atomic<int64_t> Sum{0};
  struct Ctx {
    std::atomic<int64_t> *Sum;
  } C{&Sum};
  parallelFor(10, 5,
              [](int32_t I, void *P) {
                static_cast<Ctx *>(P)->Sum->fetch_add(I);
              },
              &C);
  EXPECT_EQ(Sum.load(), 10 + 11 + 12 + 13 + 14);
}

TEST(ThreadPoolTest, NestedParallelism) {
  std::atomic<int> Count{0};
  struct Ctx {
    std::atomic<int> *Count;
  } C{&Count};
  parallelFor(0, 4,
              [](int32_t, void *P) {
                auto *Outer = static_cast<Ctx *>(P);
                parallelFor(0, 8,
                            [](int32_t, void *Q) {
                              static_cast<Ctx *>(Q)->Count->fetch_add(1);
                            },
                            Outer);
              },
              &C);
  EXPECT_EQ(Count.load(), 32);
}

TEST(ThreadPoolTest, ZeroAndNegativeExtent) {
  parallelFor(0, 0, [](int32_t, void *) { FAIL(); }, nullptr);
  parallelFor(0, -5, [](int32_t, void *) { FAIL(); }, nullptr);
}

TEST(GpuSimTest, LaunchStats) {
  gpuSim().resetStats();
  std::atomic<int> Blocks{0};
  struct Ctx {
    std::atomic<int> *Blocks;
  } C{&Blocks};
  gpuSim().launch(12,
                  [](int32_t, void *P) {
                    static_cast<Ctx *>(P)->Blocks->fetch_add(1);
                  },
                  &C);
  EXPECT_EQ(Blocks.load(), 12);
  EXPECT_EQ(gpuSim().stats().KernelLaunches, 1);
  EXPECT_EQ(gpuSim().stats().BlocksExecuted, 12);
}

TEST(BufferTest, LayoutAndAccess) {
  Buffer<uint16_t> B(5, 3);
  EXPECT_EQ(B.width(), 5);
  EXPECT_EQ(B.height(), 3);
  EXPECT_EQ(B.raw().Dim[0].Stride, 1); // innermost dense
  EXPECT_EQ(B.raw().Dim[1].Stride, 5);
  B(2, 1) = 42;
  EXPECT_EQ(B.data()[1 * 5 + 2], 42);
  B.fill([](int X, int Y) { return X * 10 + Y; });
  EXPECT_EQ(B(4, 2), 42);
}

TEST(BufferTest, ThreeDimensional) {
  Buffer<float> B(4, 3, 2);
  EXPECT_EQ(B.raw().Dim[2].Stride, 12);
  B(1, 2, 1) = 7.0f;
  EXPECT_EQ(B.data()[1 * 12 + 2 * 4 + 1], 7.0f);
}

TEST(BufferTest, MinOffsets) {
  Buffer<int32_t> B(4, 4);
  B.setMin(100, 200);
  B(101, 202) = 9;
  EXPECT_EQ(B(101, 202), 9);
  EXPECT_EQ(B.minCoord(0), 100);
}

TEST(BufferTest, RawKeepsStorageAlive) {
  RawBuffer Raw;
  {
    Buffer<uint8_t> B(8, 8);
    B.fillConstant(77);
    Raw = B.raw();
  }
  // The typed buffer is gone; the descriptor's Owner keeps data valid.
  EXPECT_EQ(static_cast<uint8_t *>(Raw.Host)[0], 77);
}

TEST(ParamBindingsTest, MetadataLookup) {
  Buffer<float> B(6, 4);
  B.setMin(2, 3);
  ParamBindings P;
  P.bind("img", B);
  double V;
  EXPECT_TRUE(P.lookupScalar("img.extent.0", &V));
  EXPECT_EQ(V, 6);
  EXPECT_TRUE(P.lookupScalar("img.min.1", &V));
  EXPECT_EQ(V, 3);
  EXPECT_TRUE(P.lookupScalar("img.stride.1", &V));
  EXPECT_EQ(V, 6);
  // Dimensions beyond rank read as degenerate.
  EXPECT_TRUE(P.lookupScalar("img.extent.2", &V));
  EXPECT_EQ(V, 1);
  EXPECT_FALSE(P.lookupScalar("other.extent.0", &V));
  P.bindInt("k", 42);
  EXPECT_TRUE(P.lookupScalar("k", &V));
  EXPECT_EQ(V, 42);
}

TEST(RuntimeVTableTest, MallocAlignment) {
  void *P = halideMalloc(1000);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 64, 0u);
  halideFree(P);
  const RuntimeVTable *VT = runtimeVTable();
  void *Q = VT->Malloc(16);
  ASSERT_NE(Q, nullptr);
  VT->Free(Q);
}
