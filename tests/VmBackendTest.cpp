//===-- tests/VmBackendTest.cpp - Bytecode VM backend ------------------------===//
//
// The VmBytecode backend: bit-identical results to the tree-walking
// interpreter across schedules, types, division semantics, vector code,
// extern math, scalar params, and update stages; one bytecode compile for
// repeated realizes through the process compile cache; and a readable
// disassembly with pre-resolved operands.
//
//===----------------------------------------------------------------------===//

#include "codegen/Interpreter.h"
#include "lang/ImageParam.h"
#include "lang/Pipeline.h"
#include "runtime/TaskScheduler.h"
#include "vm/VmExecutable.h"

#include <gtest/gtest.h>

using namespace halide;

namespace {

/// Builds a pipeline with mixed types and a stencil; scheduled by Variant
/// (the same shapes the JIT parity test uses: root, inline, tiled +
/// vectorized + parallel, sliding window + vectorized, parallel).
struct MixedPipe {
  ImageParam In;
  Var x{"x"}, y{"y"};
  Func Stage1, Out;

  MixedPipe(const std::string &Tag, int Variant)
      : In(Float(32), 2, Tag + "_in"), Stage1(Tag + "_stage1"),
        Out(Tag + "_out") {
    auto InC = [&](Expr X, Expr Y) {
      return In(clamp(X, 0, In.width() - 1), clamp(Y, 0, In.height() - 1));
    };
    Stage1(x, y) = InC(x - 1, y) * 0.25f + InC(x, y) * 0.5f +
                   InC(x + 1, y) * 0.25f + halide::sqrt(abs(InC(x, y)));
    Out(x, y) = cast(Int(16), clamp(Stage1(x, y - 1) + Stage1(x, y + 1),
                                    -30000.0f, 30000.0f));
    switch (Variant) {
    case 0:
      Stage1.computeRoot();
      break;
    case 1:
      break; // inline
    case 2: {
      Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
      Out.tile(x, y, xo, yo, xi, yi, 16, 8).vectorize(xi, 8).parallel(yo);
      Stage1.computeAt(Out, xo).vectorize(x, 4);
      break;
    }
    case 3:
      Out.vectorize(x, 8);
      Stage1.storeRoot().computeAt(Out, y).vectorize(x, 8);
      break;
    default:
      Stage1.computeRoot().parallel(y);
      Out.parallel(y);
      break;
    }
  }
};

} // namespace

class VmParityTest : public ::testing::TestWithParam<int> {};

TEST_P(VmParityTest, VmMatchesInterpreter) {
  const int W = 64, H = 32;
  MixedPipe P("vmp" + std::to_string(GetParam()), GetParam());

  Buffer<float> Input(W, H);
  Input.fill([](int X, int Y) {
    return float((X * 13 + Y * 29) % 101) / 17.0f - 2.0f;
  });
  ParamBindings Params;
  Params.bind(P.In.name(), Input);

  LoweredPipeline LP = lower(P.Out.function());

  Buffer<int16_t> FromInterp(W, H);
  {
    ParamBindings PI = Params;
    PI.bind(P.Out.name(), FromInterp);
    interpret(LP, PI);
  }
  Buffer<int16_t> FromVm(W, H);
  {
    ParamBindings PV = Params;
    PV.bind(P.Out.name(), FromVm);
    auto VP = vmCompile(LP, Target::vm());
    ASSERT_EQ(VP->run(PV), 0);
  }
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      ASSERT_EQ(FromInterp(X, Y), FromVm(X, Y))
          << "variant " << GetParam() << " at (" << X << "," << Y << ")";
}

INSTANTIATE_TEST_SUITE_P(Variants, VmParityTest, ::testing::Range(0, 5));

TEST(VmBackendTest, IntegerDivisionSemantics) {
  // Floor division / floor remainder over negative numerators and the
  // wrapping of narrow types must match the interpreter bit for bit.
  ImageParam In(Int(32), 1, "vmd_in");
  Var x("x");
  Func F("vmd_out");
  Expr V = In(clamp(x, 0, In.width() - 1));
  F(x) = (V - 17) / 5 + (V - 17) % 5 * 100 +
         cast(Int(32), cast(UInt(8), V * 3 + 250)) +
         cast(Int(32), cast(Int(8), V * 7 - 200));

  const int N = 64;
  Buffer<int32_t> Input(N);
  Input.fill([](int X) { return X * 3 - 40; });
  ParamBindings Params;
  Params.bind("vmd_in", Input);

  LoweredPipeline LP = lower(F.function());
  Buffer<int32_t> FromInterp(N), FromVm(N);
  {
    ParamBindings PI = Params;
    PI.bind(F.name(), FromInterp);
    interpret(LP, PI);
  }
  {
    ParamBindings PV = Params;
    PV.bind(F.name(), FromVm);
    ASSERT_EQ(vmCompile(LP, Target::vm())->run(PV), 0);
  }
  for (int X = 0; X < N; ++X)
    ASSERT_EQ(FromInterp(X), FromVm(X)) << "at " << X;
}

TEST(VmBackendTest, ExternMathMatchesInterpreter) {
  ImageParam In(Float(32), 1, "vmm_in");
  Var x("x");
  Func F("vmm_out");
  Expr V = In(clamp(x, 0, In.width() - 1));
  Expr Pos = abs(V) + 0.25f;
  F(x) = halide::sqrt(Pos) + sin(V) * cos(V) + exp(V * 0.125f) +
         log(Pos) + floor(V) + ceil(V) + pow(Pos, 0.75f);

  const int N = 128;
  Buffer<float> Input(N);
  Input.fill([](int X) { return float(X - 64) / 9.0f; });
  ParamBindings Params;
  Params.bind("vmm_in", Input);

  LoweredPipeline LP = lower(F.function());
  Buffer<float> FromInterp(N), FromVm(N);
  {
    ParamBindings PI = Params;
    PI.bind(F.name(), FromInterp);
    interpret(LP, PI);
  }
  {
    ParamBindings PV = Params;
    PV.bind(F.name(), FromVm);
    ASSERT_EQ(vmCompile(LP, Target::vm())->run(PV), 0);
  }
  for (int X = 0; X < N; ++X)
    ASSERT_EQ(FromInterp(X), FromVm(X)) << "at " << X; // bit-exact
}

TEST(VmBackendTest, ScalarParamsThreadThrough) {
  Var x("x");
  Param<int32_t> K("vm_k");
  Param<float> S("vm_s");
  Func F("vm_params");
  F(x) = cast(Float(32), x + K) * S;
  auto VP = vmCompile(lower(F.function()), Target::vm());
  Buffer<float> Out(8);
  ParamBindings Params;
  Params.bind(F.name(), Out);
  Params.bindInt("vm_k", 10);
  Params.bindFloat("vm_s", 0.5);
  ASSERT_EQ(VP->run(Params), 0);
  EXPECT_FLOAT_EQ(Out(6), 8.0f);

  // The same compiled program re-runs with different parameter values:
  // params are registers re-initialized per run, not baked constants.
  Params.bindInt("vm_k", -6);
  ASSERT_EQ(VP->run(Params), 0);
  EXPECT_FLOAT_EQ(Out(6), 0.0f);
}

TEST(VmBackendTest, UpdateStagesExecute) {
  // Histogram: scatter + scan through the VM against direct counting.
  ImageParam In(UInt(8), 2, "vm_hist_in");
  Var i("i");
  Func Hist("vm_hist");
  RDom R(0, In.width(), 0, In.height(), "vm_r");
  Hist(i) = cast(UInt(32), 0);
  Hist(clamp(cast(Int(32), In(R.x, R.y)), 0, 255)) += cast(UInt(32), 1);
  Hist.bound(i, 0, 256);

  const int W = 37, H = 23;
  Buffer<uint8_t> Input(W, H);
  Input.fill([](int X, int Y) { return (X * 5 + Y * 11) % 256; });
  Buffer<uint32_t> Out(256);
  ParamBindings Params;
  Params.bind("vm_hist_in", Input);
  Params.bind(Hist.name(), Out);
  ASSERT_EQ(vmCompile(lower(Hist.function()), Target::vm())->run(Params), 0);

  std::vector<uint32_t> Want(256, 0);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      ++Want[Input(X, Y)];
  for (int I = 0; I < 256; ++I)
    ASSERT_EQ(Out(I), Want[size_t(I)]) << "bin " << I;
}

TEST(VmBackendTest, DisassemblyResolvesNames) {
  Var x("x"), y("y");
  Func F("vm_disasm_f"), G("vm_disasm_g");
  F(x, y) = x + y;
  G(x, y) = F(x, y) * 2;
  F.computeRoot();
  auto VP = vmCompile(lower(G.function()), Target::vm());
  const std::string &Listing = VP->source();
  // Buffers appear as pre-resolved table slots, loops as fused back-edges.
  EXPECT_NE(Listing.find("vm_disasm_f"), std::string::npos);
  EXPECT_NE(Listing.find("loop_next"), std::string::npos);
  EXPECT_NE(Listing.find("store"), std::string::npos);
  EXPECT_NE(Listing.find("halt"), std::string::npos);
  // The program ends in exactly one halt, and every jump target is in
  // range (the disassembler would have crashed on a bad message index).
  const VmProgram &Prog = VP->program();
  ASSERT_FALSE(Prog.Code.empty());
  EXPECT_EQ(Prog.Code.back().Op, VmOp::Halt);
  for (const VmInstr &In : Prog.Code) {
    if (In.Op == VmOp::Jump || In.Op == VmOp::JumpIfFalse ||
        In.Op == VmOp::LoopNext) {
      ASSERT_LT(size_t(In.Aux), Prog.Code.size());
    }
    if (In.Op == VmOp::ParFor) {
      // The resume point, task index, and body region must all resolve.
      ASSERT_LT(size_t(In.Aux), Prog.Code.size());
      ASSERT_LT(size_t(In.Dst), Prog.Tasks.size());
      const VmTaskDesc &T = Prog.Tasks[In.Dst];
      ASSERT_LT(T.BodyStart, T.BodyEnd);
      ASSERT_LT(size_t(T.BodyEnd), Prog.Code.size());
      ASSERT_EQ(Prog.Code[T.BodyEnd].Op, VmOp::TaskRet);
      for (const auto &[Slot, Len] : T.LiveIn)
        ASSERT_LE(size_t(Slot) + Len, Prog.InitialRegs.size());
    }
  }
}

//===----------------------------------------------------------------------===//
// Threaded parallel dispatch: parallel For bodies become task entry
// points executed over the work-stealing scheduler; results must stay
// bit-identical to the interpreter (and to the serial VM) whatever the
// thread count.
//===----------------------------------------------------------------------===//

namespace {

/// Forces a real 4-worker pool for the scope of a test, restoring the
/// previous size on destruction.
struct ScopedPool {
  int Before;
  explicit ScopedPool(int N) : Before(taskSchedulerThreads()) {
    setTaskSchedulerThreads(N);
  }
  ~ScopedPool() { setTaskSchedulerThreads(Before); }
};

} // namespace

TEST(VmBackendTest, ParallelHistogramUpdateStages) {
  // Histogram with a *parallel* initialization stage and a serial
  // scatter update, followed by a parallel scan consumer: the update
  // stage must see fully initialized bins regardless of which workers
  // zeroed them, and the consumer must see the completed scatter.
  ScopedPool Pool(4);
  ImageParam In(UInt(8), 2, "vmph_in");
  Var i("i");
  Func Hist("vmph_hist"), Cum("vmph_cum");
  RDom R(0, In.width(), 0, In.height(), "vmph_r");
  Hist(i) = cast(UInt(32), 0);
  Hist(clamp(cast(Int(32), In(R.x, R.y)), 0, 255)) += cast(UInt(32), 1);
  Hist.bound(i, 0, 256);
  Cum(i) = Hist(i) * 2 + 1;
  Cum.bound(i, 0, 256);
  Hist.computeRoot().parallel(i);
  Cum.parallel(i);

  const int W = 37, H = 23;
  Buffer<uint8_t> Input(W, H);
  Input.fill([](int X, int Y) { return (X * 5 + Y * 11) % 256; });
  ParamBindings Params;
  Params.bind("vmph_in", Input);

  LoweredPipeline LP = lower(Cum.function());
  Buffer<uint32_t> FromInterp(256), FromVm(256);
  {
    ParamBindings PI = Params;
    PI.bind(Cum.name(), FromInterp);
    interpret(LP, PI);
  }
  {
    ParamBindings PV = Params;
    PV.bind(Cum.name(), FromVm);
    ASSERT_EQ(vmCompile(LP, Target::vm().withThreads(4))->run(PV), 0);
  }
  std::vector<uint32_t> Want(256, 0);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      ++Want[Input(X, Y)];
  for (int I = 0; I < 256; ++I) {
    ASSERT_EQ(FromVm(I), Want[size_t(I)] * 2 + 1) << "bin " << I;
    ASSERT_EQ(FromVm(I), FromInterp(I)) << "bin " << I;
  }
}

TEST(VmBackendTest, NestedParallelTiles) {
  // The paper's Fig. 3 motivation: parallel tiles with a parallel
  // producer nested inside each tile. Under the single-queue pool the
  // inner loop serialized on the submitting worker; under the
  // work-stealing scheduler both levels fan out — and the output must
  // still match the interpreter bit for bit.
  ScopedPool Pool(4);
  MixedPipe P("vmnp", /*Variant=*/0); // schedule overridden below
  Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
  P.Out.function().resetSchedule();
  P.Stage1.function().resetSchedule();
  P.Out.tile(P.x, P.y, xo, yo, xi, yi, 16, 8).parallel(yo);
  P.Stage1.computeAt(P.Out, xo).parallel(P.y);

  const int W = 64, H = 32;
  Buffer<float> Input(W, H);
  Input.fill([](int X, int Y) {
    return float((X * 13 + Y * 29) % 101) / 17.0f - 2.0f;
  });
  ParamBindings Params;
  Params.bind(P.In.name(), Input);

  LoweredPipeline LP = lower(P.Out.function());
  Buffer<int16_t> FromInterp(W, H), FromVm(W, H), FromVmSerial(W, H);
  {
    ParamBindings PI = Params;
    PI.bind(P.Out.name(), FromInterp);
    interpret(LP, PI);
  }
  {
    ParamBindings PV = Params;
    PV.bind(P.Out.name(), FromVm);
    auto Exe = vmCompile(LP, Target::vm().withThreads(4));
    // The program advertises its extracted tasks (outer tiles + nested
    // producer), and the listing shows their closures.
    EXPECT_GE(Exe->program().Tasks.size(), 2u);
    EXPECT_NE(Exe->source().find("par_for"), std::string::npos);
    EXPECT_NE(Exe->source().find("live_in"), std::string::npos);
    ASSERT_EQ(Exe->run(PV), 0);
  }
  {
    ParamBindings PV = Params;
    PV.bind(P.Out.name(), FromVmSerial);
    ASSERT_EQ(vmCompile(LP, Target::vm().withThreads(1))->run(PV), 0);
  }
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      ASSERT_EQ(FromInterp(X, Y), FromVm(X, Y))
          << "threaded vs interpreter at (" << X << "," << Y << ")";
      ASSERT_EQ(FromVmSerial(X, Y), FromVm(X, Y))
          << "threaded vs serial VM at (" << X << "," << Y << ")";
    }
}

TEST(VmBackendTest, ThreadTargetsShareOneLoweringButNotExecutables) {
  // withThreads is an execution knob: it must not re-lower, but two
  // thread counts cannot alias one cached executable (the artifact
  // carries its Target, whose NumThreads drives dispatch).
  Var x("x"), y("y");
  Func F("vmtt_f"), G("vmtt_g");
  F(x, y) = x + y * 5;
  G(x, y) = F(x, y) + F(x + 1, y);
  F.computeRoot().parallel(y);
  G.parallel(y);
  Pipeline Pipe(G);
  Buffer<int32_t> Out1(32, 16), Out2(32, 16);

  CompileCounters Before = Pipeline::compileCounters();
  Pipe.realize(Out1, ParamBindings(), Target::vm().withThreads(1));
  Pipe.realize(Out2, ParamBindings(), Target::vm().withThreads(4));
  const CompileCounters &After = Pipeline::compileCounters();
  EXPECT_EQ(After.Lowerings - Before.Lowerings, 1);
  EXPECT_EQ(After.BackendCompiles - Before.BackendCompiles, 2);
  for (int Y = 0; Y < 16; ++Y)
    for (int X = 0; X < 32; ++X)
      EXPECT_EQ(Out1(X, Y), Out2(X, Y));
}

//===----------------------------------------------------------------------===//
// Compile-cache behaviour (TargetApiTest-style counter assertions).
//===----------------------------------------------------------------------===//

TEST(VmCompileCacheTest, RepeatedRealizesCompileBytecodeOnce) {
  Var x("x"), y("y");
  Func F("vmcc_f"), G("vmcc_g");
  F(x, y) = x + y * 3;
  G(x, y) = F(x, y) + F(x + 1, y);
  F.computeRoot();
  Pipeline Pipe(G);

  CompileCounters Before = Pipeline::compileCounters();
  Buffer<int32_t> Out1(16, 8), Out2(16, 8);
  Pipe.realize(Out1, ParamBindings(), Target::vm());
  Pipe.realize(Out2, ParamBindings(), Target::vm());

  const CompileCounters &After = Pipeline::compileCounters();
  // One lowering, one bytecode compile; the second realize is a pure
  // schedule-fingerprint cache hit.
  EXPECT_EQ(After.Lowerings - Before.Lowerings, 1);
  EXPECT_EQ(After.BackendCompiles - Before.BackendCompiles, 1);
  EXPECT_GE(After.CacheHits - Before.CacheHits, 1);

  for (int Y = 0; Y < 8; ++Y)
    for (int X = 0; X < 16; ++X) {
      EXPECT_EQ(Out1(X, Y), (X + Y * 3) + (X + 1 + Y * 3));
      EXPECT_EQ(Out2(X, Y), Out1(X, Y));
    }
}

TEST(VmCompileCacheTest, VmAndInterpreterShareOneLowering) {
  Var x("x"), y("y");
  Func F("vmcs_f"), G("vmcs_g");
  F(x, y) = x * 2 + y;
  G(x, y) = F(x, y) + 1;
  F.computeRoot();
  Pipeline Pipe(G);
  Buffer<int32_t> Out(16, 8);

  CompileCounters Before = Pipeline::compileCounters();
  Pipe.realize(Out, ParamBindings(), Target::vm());
  Pipe.realize(Out, ParamBindings(), Target::interpreter());
  const CompileCounters &After = Pipeline::compileCounters();
  // Backends key their executables separately but share the lowered IR.
  EXPECT_EQ(After.Lowerings - Before.Lowerings, 1);
  EXPECT_EQ(After.BackendCompiles - Before.BackendCompiles, 1);
}
