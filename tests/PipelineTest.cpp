//===-- tests/PipelineTest.cpp - Front end, lowering, bounds inference -------===//

#include "lang/ImageParam.h"
#include "lang/Pipeline.h"
#include "analysis/CallGraph.h"
#include "codegen/Interpreter.h"

#include <gtest/gtest.h>

using namespace halide;

namespace {

/// A reusable two-stage gradient pipeline (no input image).
struct GradientPipe {
  Var x{"x"}, y{"y"};
  Func F, G;
  GradientPipe() : F("grad_f"), G("grad_g") {
    F(x, y) = x + y * 10;
    G(x, y) = F(x, y) + F(x + 1, y) * 2;
  }
};

} // namespace

TEST(FuncTest, PureDefinitionBasics) {
  Var x("x"), y("y");
  Func F("deftest");
  F(x, y) = x * 2 + y;
  EXPECT_TRUE(F.defined());
  EXPECT_EQ(F.dimensions(), 2);
  EXPECT_EQ(F.function().outputType(), Int(32));
  EXPECT_EQ(F.function().args()[0], "x");
  EXPECT_EQ(F.function().args()[1], "y");
  // Default loop order is row-major: x innermost (last in Dims).
  const Schedule &S = F.function().schedule();
  ASSERT_EQ(S.Dims.size(), 2u);
  EXPECT_EQ(S.Dims[0].Var, "y");
  EXPECT_EQ(S.Dims[1].Var, "x");
}

TEST(FuncTest, UniqueNames) {
  Func A("collide"), B("collide");
  EXPECT_NE(A.name(), B.name());
  Function Found = Function::lookup(B.name());
  EXPECT_TRUE(Found.sameAs(B.function()));
}

TEST(FuncTest, CallGraph) {
  GradientPipe P;
  auto Env = buildEnvironment(P.G.function());
  EXPECT_EQ(Env.size(), 2u);
  auto Order = realizationOrder(P.G.function(), Env);
  ASSERT_EQ(Order.size(), 2u);
  EXPECT_EQ(Order[0], P.F.name()); // producer first
  EXPECT_EQ(Order[1], P.G.name());
  auto Callees = directCallees(P.G.function());
  ASSERT_EQ(Callees.size(), 1u);
  EXPECT_EQ(Callees[0], P.F.name());
}

TEST(PipelineTest, RealizeNoInput) {
  GradientPipe P;
  P.F.computeRoot();
  Pipeline Pipe(P.G);
  Buffer<int32_t> Out(8, 6);
  Pipe.realize(Out);
  for (int Y = 0; Y < 6; ++Y)
    for (int X = 0; X < 8; ++X) {
      int FXY = X + Y * 10, FX1Y = (X + 1) + Y * 10;
      EXPECT_EQ(Out(X, Y), FXY + 2 * FX1Y);
    }
}

TEST(PipelineTest, OutputWindowWithMins) {
  GradientPipe P;
  Pipeline Pipe(P.G);
  Buffer<int32_t> Out(4, 4);
  Out.setMin(10, 20);
  Pipe.realize(Out);
  EXPECT_EQ(Out(10, 20), (10 + 200) + 2 * (11 + 200));
  EXPECT_EQ(Out(13, 23), (13 + 230) + 2 * (14 + 230));
}

TEST(PipelineTest, ScalarParams) {
  Var x("x");
  Param<int32_t> Gain("gain");
  Param<float> Offset("offset");
  Func F("paramtest");
  F(x) = cast(Float(32), x * Gain) + Offset;
  Pipeline Pipe(F);
  Buffer<float> Out(5);
  ParamBindings Params;
  Params.bindInt("gain", 3);
  Params.bindFloat("offset", 0.5);
  Pipe.realize(Out, Params);
  EXPECT_FLOAT_EQ(Out(4), 12.5f);
  // The lowered pipeline advertises the scalar args.
  LoweredPipeline LP = Pipe.lowerPipeline();
  EXPECT_EQ(LP.Scalars.size(), 2u);
}

TEST(PipelineTest, ImageParamMetadata) {
  ImageParam In(UInt(8), 2, "meta_in");
  Var x("x"), y("y");
  Func F("metatest");
  F(x, y) = cast(Int(32), In(clamp(x, 0, In.width() - 1),
                             clamp(y, 0, In.height() - 1))) +
            In.width();
  Buffer<uint8_t> Input(7, 3);
  Input.fillConstant(5);
  Pipeline Pipe(F);
  Buffer<int32_t> Out(7, 3);
  ParamBindings Params;
  Params.bind("meta_in", Input);
  Pipe.realize(Out, Params);
  EXPECT_EQ(Out(0, 0), 5 + 7);
}

TEST(LoweringTest, BreadthFirstStructure) {
  GradientPipe P;
  P.F.computeRoot();
  std::string Text = Pipeline(P.G).loweredText();
  // Allocation, produce/consume markers, loops with qualified names.
  EXPECT_NE(Text.find("allocate " + P.F.name()), std::string::npos);
  EXPECT_NE(Text.find("produce " + P.F.name()), std::string::npos);
  EXPECT_NE(Text.find("consume " + P.F.name()), std::string::npos);
  EXPECT_NE(Text.find("for (" + P.G.name() + ".x"), std::string::npos);
  // No unflattened constructs remain.
  EXPECT_EQ(Text.find("realize"), std::string::npos);
}

TEST(LoweringTest, BoundsInferenceExpandsProducer) {
  // G reads F at x and x+1, so F's allocation must be one wider than G's
  // region ("at least as large as the region consumed", paper section 4.2).
  GradientPipe P;
  P.F.computeRoot();
  Pipeline Pipe(P.G);
  Buffer<int32_t> Out(8, 6);
  ExecutionStats Stats = Pipe.realize(Out);
  EXPECT_EQ(Stats.StoresPerBuffer[P.F.name()], int64_t(9 * 6));
  EXPECT_EQ(Stats.StoresPerBuffer[P.G.name()], int64_t(8 * 6));
}

TEST(LoweringTest, InlineLeavesNoAllocation) {
  GradientPipe P; // default schedule: F inlined
  std::string Text = Pipeline(P.G).loweredText();
  EXPECT_EQ(Text.find("allocate " + P.F.name()), std::string::npos);
  Buffer<int32_t> Out(4, 4);
  ExecutionStats Stats = Pipeline(P.G).realize(Out);
  EXPECT_EQ(Stats.StoresPerBuffer.count(P.F.name()), 0u);
  EXPECT_EQ(Out(1, 1), (1 + 10) + 2 * (2 + 10));
}

TEST(LoweringTest, ComputeAtPlacement) {
  GradientPipe P;
  P.F.computeAt(P.G, P.y);
  std::string Text = Pipeline(P.G).loweredText();
  // The produce of F must appear inside G's y loop: find positions.
  size_t YLoop = Text.find("for (" + P.G.name() + ".y");
  size_t Produce = Text.find("produce " + P.F.name());
  ASSERT_NE(YLoop, std::string::npos);
  ASSERT_NE(Produce, std::string::npos);
  EXPECT_LT(YLoop, Produce);
  // Per-scanline allocation: F's buffer holds one row (of width 9).
  Buffer<int32_t> Out(8, 6);
  ExecutionStats Stats = Pipeline(P.G).realize(Out);
  EXPECT_EQ(Stats.PeakAllocationBytes, int64_t(9 * 4));
}

TEST(LoweringTest, SplitRoundsUp) {
  // Splitting a producer's dimension rounds the traversed domain up to a
  // multiple of the factor (paper section 4.1).
  GradientPipe P;
  Var xo("xo"), xi("xi");
  P.F.computeRoot().split(P.x, xo, xi, 4);
  Buffer<int32_t> Out(6, 2); // F needs 7 columns -> rounds to 8
  ExecutionStats Stats = Pipeline(P.G).realize(Out);
  EXPECT_EQ(Stats.StoresPerBuffer[P.F.name()], int64_t(8 * 2));
}

TEST(LoweringTest, OutputSplitDivisibilityAssert) {
  GradientPipe P;
  Var xo("xo"), xi("xi");
  P.G.split(P.x, xo, xi, 4);
  std::string Text = Pipeline(P.G).loweredText();
  EXPECT_NE(Text.find("assert"), std::string::npos);
  // A divisible size passes.
  Buffer<int32_t> Out(8, 4);
  Pipeline(P.G).realize(Out);
  EXPECT_EQ(Out(7, 3), (7 + 30) + 2 * (8 + 30));
}

TEST(LoweringTest, TwoConsumersAtRoot) {
  Var x("x");
  Func A("multi_a"), B("multi_b"), C("multi_c"), D("multi_d");
  A(x) = x * x;
  B(x) = A(x) + 1;
  C(x) = A(x + 1) * 2;
  D(x) = B(x) + C(x);
  A.computeRoot();
  B.computeRoot();
  C.computeRoot();
  Buffer<int32_t> Out(10);
  Pipeline(D).realize(Out);
  for (int X = 0; X < 10; ++X)
    EXPECT_EQ(Out(X), (X * X + 1) + ((X + 1) * (X + 1) * 2));
}

TEST(LoweringTest, ReorderChangesLoopNesting) {
  GradientPipe P;
  P.G.reorder(P.y, P.x); // y innermost now
  std::string Text = Pipeline(P.G).loweredText();
  size_t XLoop = Text.find("for (" + P.G.name() + ".x");
  size_t YLoop = Text.find("for (" + P.G.name() + ".y");
  ASSERT_NE(XLoop, std::string::npos);
  ASSERT_NE(YLoop, std::string::npos);
  EXPECT_LT(XLoop, YLoop); // x is now the outer loop
  Buffer<int32_t> Out(4, 4);
  Pipeline(P.G).realize(Out);
  EXPECT_EQ(Out(2, 2), (2 + 20) + 2 * (3 + 20));
}
