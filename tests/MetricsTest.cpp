//===-- tests/MetricsTest.cpp - Figure-3 metric extraction ---------------------===//
//
// Checks that the measured span / reuse-distance / work-amplification
// metrics reproduce the *shape* of the paper's Figure 3 for the two-stage
// blur: breadth-first has huge reuse distance and no redundant work; full
// fusion doubles the work with tiny reuse distance; sliding window gets
// both but surrenders parallelism; tiles sit in between.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "lang/ImageParam.h"
#include "metrics/ScheduleMetrics.h"
#include "transforms/Lower.h"

#include <gtest/gtest.h>

using namespace halide;

namespace {

struct MetricsFixture {
  App A = makeBlurApp();
  int W = 64, H = 48;
  ParamBindings Params;

  MetricsFixture() {
    Params = A.MakeInputs(W, H);
    Buffer<uint8_t> Out(W, H);
    Params.bind(A.Output.name(), Out);
  }

  StrategyMetrics measure(const char *Name,
                          const std::function<void()> &Sched,
                          int64_t BreadthStores = 0) {
    Sched();
    LoweredPipeline LP = lower(A.Output.function());
    return analyzeStrategy(Name, LP, Params, BreadthStores);
  }
};

} // namespace

TEST(MetricsTest, Figure3Shape) {
  MetricsFixture F;
  StrategyMetrics BreadthFirst =
      F.measure("breadth_first", F.A.ScheduleBreadthFirst);
  int64_t BFOps = BreadthFirst.MemoryOps;

  StrategyMetrics BF2 =
      F.measure("breadth_first", F.A.ScheduleBreadthFirst, BFOps);
  EXPECT_NEAR(BF2.WorkAmplification, 1.0, 0.05);

  StrategyMetrics Tuned = F.measure("tuned", F.A.ScheduleTuned, BFOps);
  // Sliding-in-strips recomputes two scanlines per 8-scanline strip.
  EXPECT_GT(Tuned.WorkAmplification, 1.0);
  EXPECT_LT(Tuned.WorkAmplification, 1.6);

  // Locality: the tuned schedule's max reuse distance is far smaller than
  // breadth-first's (which spans the whole blurx plane).
  EXPECT_LT(Tuned.MaxReuseDistance, BreadthFirst.MaxReuseDistance / 4);

  // Parallelism: the tuned schedule exposes parallel strip iterations.
  EXPECT_GT(Tuned.Span, 1);

  // Memory: the tuned schedule folds blurx into a few scanlines per strip.
  EXPECT_LT(Tuned.PeakMemoryBytes, BreadthFirst.PeakMemoryBytes);
}

TEST(MetricsTest, BenchmarkMsPositive) {
  MetricsFixture F;
  F.A.ScheduleTuned();
  auto CP = Pipeline(F.A.Output).compile(Target::jit());
  double Ms = benchmarkMs(*CP, F.Params, 3);
  EXPECT_GT(Ms, 0.0);
  EXPECT_LT(Ms, 10000.0);
}
