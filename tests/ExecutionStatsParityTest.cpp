//===-- tests/ExecutionStatsParityTest.cpp -----------------------------------===//
//
// The bytecode VM reports the same ExecutionStats the tree-walking
// interpreter does — load/store counts per buffer, peak allocation, and
// parallel iterations — so the Figure-3 footprint tests and the metrics
// layer can run on either engine interchangeably, and the *threaded* VM
// reports stats bit-identical to the serial VM: per-worker shards merge
// deterministically, so threading never perturbs the observability
// contract. Checked on blur (breadth-first and tiled, the paper's
// canonical recomputation trade-off) and on local_laplacian at reduced
// pyramid depth.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "runtime/TaskScheduler.h"
#include "support/DiffTest.h"

#include <gtest/gtest.h>

using namespace halide;

namespace {

/// Realizes \p A's pipeline at W x H on \p T and returns the stats.
ExecutionStats statsOn(App &A, const Target &T, int W, int H,
                       RawBuffer *OutBuf = nullptr,
                       std::shared_ptr<void> *KeepOut = nullptr) {
  Pipeline Pipe(A.Output);
  ParamBindings Params = A.MakeInputs(W, H);
  std::shared_ptr<void> Keep;
  RawBuffer Out = makeAppOutput(A, W, H, &Keep);
  ExecutionStats S = Pipe.realize(Out, Params, T);
  if (OutBuf) {
    *OutBuf = Out;
    *KeepOut = Keep;
  }
  return S;
}

void expectStatsParity(App &A, int W, int H) {
  ExecutionStats I = statsOn(A, Target::interpreter(), W, H);
  ExecutionStats V = statsOn(A, Target::vm(), W, H);

  // ExecutionStats::operator== is the determinism contract (loads,
  // stores, peak allocation, span); mismatches print via operator<<.
  EXPECT_EQ(I, V) << A.Name;
  // Both engines saw real work.
  EXPECT_GT(V.totalStores(), 0) << A.Name;
}

/// Serial VM vs 4-thread VM: identical merged stats (loads, stores, peak
/// allocation, span) and bit-identical output, regardless of which
/// workers executed which chunks. A 4-worker pool is forced so the
/// threaded dispatch really fans out even on small CI machines.
void expectThreadedStatsDeterminism(App &A, int W, int H) {
  int Before = taskSchedulerThreads();
  setTaskSchedulerThreads(4);
  std::shared_ptr<void> KeepS, KeepT;
  RawBuffer OutS, OutT;
  ExecutionStats Serial =
      statsOn(A, Target::vm().withThreads(1), W, H, &OutS, &KeepS);
  ExecutionStats Threaded =
      statsOn(A, Target::vm().withThreads(4), W, H, &OutT, &KeepT);
  setTaskSchedulerThreads(Before);

  EXPECT_EQ(Serial, Threaded) << A.Name;
  EXPECT_GT(Threaded.ParallelIterations, 0)
      << A.Name << ": schedule has no parallel loop to thread";
  std::string Detail;
  EXPECT_TRUE(buffersMatch(OutS, OutT, 0.0, 0, &Detail))
      << A.Name << ": " << Detail;
}

} // namespace

TEST(ExecutionStatsParityTest, BlurBreadthFirst) {
  App A = makeBlurApp();
  A.ScheduleBreadthFirst();
  expectStatsParity(A, 96, 64);
}

TEST(ExecutionStatsParityTest, BlurTiled) {
  // The tuned blur schedule is the paper's tiled + recompute variant: its
  // work amplification must be observed identically by both engines.
  App A = makeBlurApp();
  A.ScheduleTuned();
  expectStatsParity(A, 96, 64);
}

TEST(ExecutionStatsParityTest, LocalLaplacianReducedLevels) {
  App A = makeLocalLaplacianApp(/*Levels=*/3);
  A.ScheduleBreadthFirst();
  expectStatsParity(A, 64, 48);
}

TEST(ExecutionStatsParityTest, LocalLaplacianTunedReducedLevels) {
  App A = makeLocalLaplacianApp(/*Levels=*/3);
  A.ScheduleTuned();
  expectStatsParity(A, 64, 48);
}

TEST(ExecutionStatsParityTest, ThreadedBlurTiledDeterministic) {
  // The paper's tiled + parallel-strip blur: sliding window inside each
  // strip, strips threaded. Work amplification, footprint, and span must
  // come out of the 4-thread run exactly as out of the serial run.
  App A = makeBlurApp();
  A.ScheduleTuned();
  expectThreadedStatsDeterminism(A, 96, 64);
}

TEST(ExecutionStatsParityTest, ThreadedLocalLaplacianDeterministic) {
  App A = makeLocalLaplacianApp(/*Levels=*/3);
  A.ScheduleTuned();
  expectThreadedStatsDeterminism(A, 64, 48);
}

TEST(ExecutionStatsParityTest, ThreadedMatchesInterpreterStats) {
  // Transitivity spelled out: the 4-thread VM still reports exactly what
  // the tree-walking interpreter reports.
  App A = makeBlurApp();
  A.ScheduleTuned();
  ExecutionStats I = statsOn(A, Target::interpreter(), 96, 64);
  int Before = taskSchedulerThreads();
  setTaskSchedulerThreads(4);
  ExecutionStats V = statsOn(A, Target::vm().withThreads(4), 96, 64);
  setTaskSchedulerThreads(Before);
  EXPECT_EQ(I, V);
}
