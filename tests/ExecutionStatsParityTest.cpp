//===-- tests/ExecutionStatsParityTest.cpp -----------------------------------===//
//
// The bytecode VM reports the same ExecutionStats the tree-walking
// interpreter does — load/store counts per buffer, peak allocation, and
// parallel iterations — so the Figure-3 footprint tests and the metrics
// layer can run on either engine interchangeably. Checked on blur
// (breadth-first and tiled, the paper's canonical recomputation
// trade-off) and on local_laplacian at reduced pyramid depth.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "support/DiffTest.h"

#include <gtest/gtest.h>

using namespace halide;

namespace {

/// Realizes \p A's pipeline at W x H on \p T and returns the stats.
ExecutionStats statsOn(App &A, const Target &T, int W, int H) {
  Pipeline Pipe(A.Output);
  ParamBindings Params = A.MakeInputs(W, H);
  std::shared_ptr<void> Keep;
  RawBuffer Out = makeAppOutput(A, W, H, &Keep);
  return Pipe.realize(Out, Params, T);
}

void expectStatsParity(App &A, int W, int H) {
  ExecutionStats I = statsOn(A, Target::interpreter(), W, H);
  ExecutionStats V = statsOn(A, Target::vm(), W, H);

  EXPECT_EQ(I.StoresPerBuffer, V.StoresPerBuffer) << A.Name;
  EXPECT_EQ(I.LoadsPerBuffer, V.LoadsPerBuffer) << A.Name;
  EXPECT_EQ(I.PeakAllocationBytes, V.PeakAllocationBytes) << A.Name;
  EXPECT_EQ(I.ParallelIterations, V.ParallelIterations) << A.Name;
  // Both engines saw real work.
  EXPECT_GT(V.totalStores(), 0) << A.Name;
}

} // namespace

TEST(ExecutionStatsParityTest, BlurBreadthFirst) {
  App A = makeBlurApp();
  A.ScheduleBreadthFirst();
  expectStatsParity(A, 96, 64);
}

TEST(ExecutionStatsParityTest, BlurTiled) {
  // The tuned blur schedule is the paper's tiled + recompute variant: its
  // work amplification must be observed identically by both engines.
  App A = makeBlurApp();
  A.ScheduleTuned();
  expectStatsParity(A, 96, 64);
}

TEST(ExecutionStatsParityTest, LocalLaplacianReducedLevels) {
  App A = makeLocalLaplacianApp(/*Levels=*/3);
  A.ScheduleBreadthFirst();
  expectStatsParity(A, 64, 48);
}

TEST(ExecutionStatsParityTest, LocalLaplacianTunedReducedLevels) {
  App A = makeLocalLaplacianApp(/*Levels=*/3);
  A.ScheduleTuned();
  expectStatsParity(A, 64, 48);
}
