//===-- tests/ProfilerTest.cpp --------------------------------------------===//
//
// The observability contract of Target::Profile (observe/Profiler.h):
//
//  * Zero cost when off: the profile bit never reaches the lowering
//    fingerprint or the lowered IR — one cached lowering serves both the
//    instrumented and uninstrumented executables — and a profiled run
//    produces bit-identical output to an unprofiled one.
//  * Faithful attribution: on a serial run, per-stage self-times sum to
//    the pipeline's wall time (within tolerance), because the injected
//    markers bracket every produce body and the outermost stage brackets
//    the whole pipeline.
//  * Thread-safe merging: a 4-thread run reports the same per-stage
//    invocation counts as a serial run — workers extend the submitter's
//    stage as chunk scopes (no invocation bump), so nothing double
//    counts. (This test is part of the TSan CI job.)
//
// Plus the trace layer riding on the same markers: a traced realizeAsync
// emits serve spans (queue_wait / execute) into Chrome trace JSON.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "observe/MetricsRegistry.h"
#include "observe/Profiler.h"
#include "observe/TraceRecorder.h"
#include "runtime/TaskScheduler.h"
#include "support/DiffTest.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>

using namespace halide;

namespace {

/// Scoped master switch so a failing assertion cannot leak an enabled
/// profiler into unrelated tests.
struct ScopedProfiler {
  ScopedProfiler() {
    profilerReset();
    setProfilerEnabled(true);
  }
  ~ScopedProfiler() { setProfilerEnabled(false); }
};

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Realizes \p A at W x H on \p T \p Iters times and returns the summed
/// wall nanoseconds of the run() calls alone (compile excluded).
int64_t timedRuns(App &A, const Target &T, int W, int H, int Iters,
                  RawBuffer *OutBuf = nullptr,
                  std::shared_ptr<void> *KeepOut = nullptr) {
  std::shared_ptr<const Executable> Exe = Pipeline(A.Output).compile(T);
  ParamBindings Params = A.MakeInputs(W, H);
  std::shared_ptr<void> Keep;
  RawBuffer Out = makeAppOutput(A, W, H, &Keep);
  Params.bind(A.Output.name(), Out);
  int64_t Wall = 0;
  for (int I = 0; I < Iters; ++I) {
    const int64_t T0 = nowNs();
    EXPECT_EQ(Exe->run(Params), 0);
    Wall += nowNs() - T0;
  }
  if (OutBuf) {
    *OutBuf = Out;
    *KeepOut = Keep;
  }
  return Wall;
}

std::map<std::string, int64_t> invocationsByStage() {
  std::map<std::string, int64_t> M;
  for (const StageProfile &S : profilerReport().Stages)
    M[S.Name] = S.Invocations;
  return M;
}

void expectSelfTimesSumToWall(App &A, int W, int H) {
  ScopedProfiler Scope;
  // Serial VM: one thread, so summed self-time is directly comparable to
  // wall time. A warm-up run first so compile/pool effects are off the
  // clock, then reset and measure.
  const Target T = Target::vm().withThreads(1).withProfile();
  timedRuns(A, T, W, H, 1);
  profilerReset();
  const int64_t WallNs = timedRuns(A, T, W, H, 3);
  ProfileReport R = profilerReport();
  const int64_t SelfSum = R.totalSelfNanos();
  ASSERT_GT(WallNs, 0) << A.Name;
  EXPECT_GE(SelfSum, WallNs * 95 / 100)
      << A.Name << ": stages unaccounted for\n"
      << R.str();
  EXPECT_LE(SelfSum, WallNs * 105 / 100)
      << A.Name << ": self-time exceeds wall\n"
      << R.str();
  // Total time of the outermost stage (the output) covers everything,
  // and child time shows up as total - self.
  bool FoundOutput = false;
  for (const StageProfile &S : R.Stages)
    if (S.Name == A.Output.name()) {
      FoundOutput = true;
      EXPECT_GE(S.TotalNanos, S.SelfNanos);
      EXPECT_GE(S.TotalNanos, WallNs * 95 / 100) << A.Name;
    }
  EXPECT_TRUE(FoundOutput) << A.Name << "\n" << R.str();
}

} // namespace

TEST(ProfilerTest, ProfileOffIsZeroCost) {
  App A = makeBlurApp();
  A.ScheduleTuned();
  Pipeline Pipe(A.Output);
  const Target Off = Target::vm();
  const Target On = Off.withProfile();

  // The profile bit never reaches the lowering: same fingerprint, same
  // lowered IR, so the cache shares one lowering between both targets.
  EXPECT_EQ(Pipe.scheduleFingerprint(Off), Pipe.scheduleFingerprint(On));
  EXPECT_EQ(Pipe.loweredText(Off), Pipe.loweredText(On));

  std::shared_ptr<const Executable> ExeOff = Pipe.compile(Off);
  CompileCounters C1 = Pipeline::compileCounters();
  std::shared_ptr<const Executable> ExeOn = Pipe.compile(On);
  CompileCounters C2 = Pipeline::compileCounters();
  // Instrumentation happens at executable build, on a copy: a second
  // backend compile, but no second lowering.
  EXPECT_EQ(C2.Lowerings, C1.Lowerings);
  EXPECT_EQ(C2.BackendCompiles, C1.BackendCompiles + 1);
  EXPECT_NE(ExeOff.get(), ExeOn.get());
  // Both keys hit the executable cache on recompile.
  Pipe.compile(Off);
  Pipe.compile(On);
  EXPECT_EQ(Pipeline::compileCounters().CacheHits, C2.CacheHits + 2);

  // Markers exist only in the instrumented executable.
  EXPECT_EQ(ExeOff->source().find("prof_enter"), std::string::npos);
  EXPECT_NE(ExeOn->source().find("prof_enter"), std::string::npos);

  // Profiled and unprofiled runs produce bit-identical output.
  ScopedProfiler Scope;
  const int W = 96, H = 64;
  std::shared_ptr<void> KeepOff, KeepOn;
  RawBuffer OutOff, OutOn;
  timedRuns(A, Off, W, H, 1, &OutOff, &KeepOff);
  timedRuns(A, On, W, H, 1, &OutOn, &KeepOn);
  std::string Detail;
  EXPECT_TRUE(buffersMatch(OutOff, OutOn, 0.0, 0, &Detail)) << Detail;
}

TEST(ProfilerTest, InstrumentedDisassemblyNamesStages) {
  App A = makeBlurApp();
  A.ScheduleTuned();
  std::shared_ptr<const Executable> Exe =
      Pipeline(A.Output).compile(Target::vm().withProfile());
  const std::string &Listing = Exe->source();
  EXPECT_NE(Listing.find("prof_enter"), std::string::npos);
  EXPECT_NE(Listing.find("prof_exit"), std::string::npos);
  EXPECT_NE(Listing.find(A.Output.name()), std::string::npos);
}

TEST(ProfilerTest, SelfTimesSumToWallBlur) {
  App A = makeBlurApp();
  A.ScheduleTuned();
  expectSelfTimesSumToWall(A, 256, 192);
}

TEST(ProfilerTest, SelfTimesSumToWallLocalLaplacian) {
  App A = makeLocalLaplacianApp(/*Levels=*/3);
  A.ScheduleTuned();
  expectSelfTimesSumToWall(A, 128, 96);
}

TEST(ProfilerTest, ThreadedRunDoesNotDoubleCount) {
  App A = makeBlurApp();
  A.ScheduleTuned();
  const int W = 128, H = 96;

  ScopedProfiler Scope;
  timedRuns(A, Target::vm().withThreads(1).withProfile(), W, H, 1);
  std::map<std::string, int64_t> Serial = invocationsByStage();

  profilerReset();
  const int Before = taskSchedulerThreads();
  setTaskSchedulerThreads(4);
  timedRuns(A, Target::vm().withThreads(4).withProfile(), W, H, 1);
  setTaskSchedulerThreads(Before);
  std::map<std::string, int64_t> Threaded = invocationsByStage();

  // Chunk re-entries on workers charge time but never bump invocation
  // counts, so the threaded histogram is identical to the serial one.
  EXPECT_EQ(Serial, Threaded);
  EXPECT_FALSE(Serial.empty());
}

TEST(ProfilerTest, TracedServingFrameEmitsSpans) {
  App A = makeBlurApp();
  A.ScheduleTuned();
  const int W = 96, H = 64;
  Pipeline Pipe(A.Output);
  ParamBindings Params = A.MakeInputs(W, H);
  std::shared_ptr<void> Keep;
  RawBuffer Out = makeAppOutput(A, W, H, &Keep);

  traceStart();
  Pipe.realizeAsync(Out, Params, Target::vm(), /*Priority=*/1).wait();
  traceStop();
  const std::string Json = traceWriteJson();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("queue_wait"), std::string::npos);
  EXPECT_NE(Json.find("execute"), std::string::npos);
  EXPECT_NE(Json.find("\"priority\":1"), std::string::npos);

  // The metrics registry saw the frame.
  MetricsSnapshot M = metricsSnapshot();
  EXPECT_GE(M.get("serve.frames_submitted"), 1);
  EXPECT_GE(M.get("serve.frames_completed"), 1);
  EXPECT_NE(M.toJson().find("\"scheduler.threads\""), std::string::npos);
}
