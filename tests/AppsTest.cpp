//===-- tests/AppsTest.cpp - Application correctness ---------------------------===//
//
// For every paper app: the tuned (and GPU) schedules must produce output
// identical to the breadth-first schedule — the schedule can never change
// the meaning of the algorithm.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "apps/Apps.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace halide;

namespace {

/// Allocates an output buffer matching the app's output signature.
RawBuffer makeOutput(const App &A, int W, int H,
                     std::shared_ptr<void> *Keep) {
  const Function &F = A.Output.function();
  Type T = F.outputType();
  int Dims = F.dimensions();
  int C = Dims >= 3 ? 3 : 1;
  int64_t Elems = int64_t(W) * H * C;
  auto Storage = std::make_shared<std::vector<uint8_t>>(
      size_t(Elems * T.bytes()), uint8_t(0));
  *Keep = Storage;
  RawBuffer Raw;
  Raw.Host = Storage->data();
  Raw.ElemType = T;
  Raw.Dimensions = Dims;
  Raw.Dim[0] = {0, W, 1};
  Raw.Dim[1] = {0, H, W};
  if (Dims >= 3)
    Raw.Dim[2] = {0, C, W * H};
  Raw.Owner = Storage;
  return Raw;
}

void expectSameOutput(App &A, const std::function<void()> &SchedA,
                      const std::function<void()> &SchedB, int W, int H,
                      const char *Label) {
  ParamBindings Inputs = A.MakeInputs(W, H);

  std::shared_ptr<void> KeepA, KeepB;
  RawBuffer OutA = makeOutput(A, W, H, &KeepA);
  RawBuffer OutB = makeOutput(A, W, H, &KeepB);

  SchedA();
  auto CA = Pipeline(A.Output).compile(Target::jit());
  ParamBindings PA = Inputs;
  PA.bind(A.Output.name(), OutA);
  ASSERT_EQ(CA->run(PA), 0);

  SchedB();
  auto CB = Pipeline(A.Output).compile(Target::jit());
  ParamBindings PB = Inputs;
  PB.bind(A.Output.name(), OutB);
  ASSERT_EQ(CB->run(PB), 0);

  int64_t Bytes = OutA.numElements() * OutA.ElemType.bytes();
  EXPECT_EQ(std::memcmp(OutA.Host, OutB.Host, size_t(Bytes)), 0)
      << A.Name << ": " << Label;
}

} // namespace

TEST(AppsTest, BlurTunedMatchesBreadthFirst) {
  App A = makeBlurApp();
  expectSameOutput(A, A.ScheduleBreadthFirst, A.ScheduleTuned, 128, 96,
                   "tuned vs breadth-first");
}

TEST(AppsTest, BlurGpuMatchesBreadthFirst) {
  App A = makeBlurApp();
  expectSameOutput(A, A.ScheduleBreadthFirst, A.ScheduleGpu, 128, 64,
                   "gpu vs breadth-first");
}

TEST(AppsTest, BilateralGridTunedMatchesBreadthFirst) {
  App A = makeBilateralGridApp();
  expectSameOutput(A, A.ScheduleBreadthFirst, A.ScheduleTuned, 128, 96,
                   "tuned vs breadth-first");
}

TEST(AppsTest, BilateralGridGpuMatchesBreadthFirst) {
  App A = makeBilateralGridApp();
  expectSameOutput(A, A.ScheduleBreadthFirst, A.ScheduleGpu, 128, 64,
                   "gpu vs breadth-first");
}

TEST(AppsTest, CameraPipeTunedMatchesBreadthFirst) {
  App A = makeCameraPipeApp();
  expectSameOutput(A, A.ScheduleBreadthFirst, A.ScheduleTuned, 128, 96,
                   "tuned vs breadth-first");
}

TEST(AppsTest, InterpolateTunedMatchesBreadthFirst) {
  App A = makeInterpolateApp();
  expectSameOutput(A, A.ScheduleBreadthFirst, A.ScheduleTuned, 128, 96,
                   "tuned vs breadth-first");
}

TEST(AppsTest, LocalLaplacianTunedMatchesBreadthFirst) {
  App A = makeLocalLaplacianApp(/*Levels=*/4);
  expectSameOutput(A, A.ScheduleBreadthFirst, A.ScheduleTuned, 128, 96,
                   "tuned vs breadth-first");
}

TEST(AppsTest, HistogramEqualizeTunedMatchesBreadthFirst) {
  App A = makeHistogramEqualizeApp();
  expectSameOutput(A, A.ScheduleBreadthFirst, A.ScheduleTuned, 128, 96,
                   "tuned vs breadth-first");
}

TEST(AppsTest, StageCountsMatchFigure6Shape) {
  // Figure 6 reports pipeline sizes; check ours have the right order of
  // magnitude and ranking.
  App Blur = makeBlurApp();
  App Bilateral = makeBilateralGridApp();
  App Camera = makeCameraPipeApp();
  App Interp = makeInterpolateApp();
  App LL = makeLocalLaplacianApp(8);
  auto Stages = [](const App &A) {
    return buildEnvironment(A.Output.function()).size();
  };
  EXPECT_EQ(Stages(Blur), 2u);
  EXPECT_EQ(Stages(Bilateral), 7u);
  EXPECT_GE(Stages(Camera), 14u);
  EXPECT_GE(Stages(Interp), 20u);
  EXPECT_GE(Stages(LL), 70u); // paper: 99 stages at 8 levels
  EXPECT_GT(Stages(LL), Stages(Interp));
  EXPECT_GT(Stages(Interp), Stages(Camera));
  EXPECT_GT(Stages(Camera), Stages(Bilateral));
}

TEST(AppsTest, StencilCountsArePositive) {
  App Blur = makeBlurApp();
  EXPECT_GE(countStencils(Blur.Output.function()), 1);
  App LL = makeLocalLaplacianApp(4);
  EXPECT_GE(countStencils(LL.Output.function()), 10);
}

TEST(AppsTest, HistogramEqualizeFlattensHistogram) {
  App A = makeHistogramEqualizeApp();
  A.ScheduleTuned();
  const int W = 128, H = 96;
  ParamBindings Params = A.MakeInputs(W, H);
  Buffer<uint8_t> Out(W, H);
  Params.bind(A.Output.name(), Out);
  auto CP = Pipeline(A.Output).compile(Target::jit());
  ASSERT_EQ(CP->run(Params), 0);
  int MinV = 255, MaxV = 0;
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      MinV = std::min<int>(MinV, Out(X, Y));
      MaxV = std::max<int>(MaxV, Out(X, Y));
    }
  // Equalization stretches the low-contrast input across the range.
  EXPECT_GT(MaxV - MinV, 150);
}
