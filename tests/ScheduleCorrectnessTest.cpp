//===-- tests/ScheduleCorrectnessTest.cpp ------------------------------------===//
//
// The paper's core safety property (section 5): "all valid schedules
// generate correct code". A parameterized sweep applies many different
// schedules to the same two-stage blur algorithm and checks every one
// produces output identical to the breadth-first reference.
//
//===----------------------------------------------------------------------===//

#include "apps/baselines/Baselines.h"
#include "lang/ImageParam.h"
#include "lang/Pipeline.h"

#include <gtest/gtest.h>

using namespace halide;

namespace {

struct BlurHarness {
  ImageParam In;
  Var x{"x"}, y{"y"};
  Func Blurx, Out;

  BlurHarness()
      : In(UInt(8), 2, "sched_in"), Blurx("sched_blurx"), Out("sched_out") {
    auto InC = [&](Expr X, Expr Y) {
      return cast(UInt(16), In(clamp(X, 0, In.width() - 1),
                               clamp(Y, 0, In.height() - 1)));
    };
    Blurx(x, y) =
        cast(UInt(16), (InC(x - 1, y) + InC(x, y) + InC(x + 1, y)) / 3);
    Out(x, y) = cast(UInt(8),
                     (Blurx(x, y - 1) + Blurx(x, y) + Blurx(x, y + 1)) / 3);
  }

  Buffer<uint8_t> run(int W, int H) {
    Buffer<uint8_t> Input(W, H);
    Input.fill([](int X, int Y) { return (X * 23 + Y * 7) % 256; });
    Buffer<uint8_t> Output(W, H);
    ParamBindings Params;
    Params.bind("sched_in", Input);
    Pipeline(Out).realize(Output, Params);
    return Output;
  }
};

using ScheduleFn = void (*)(BlurHarness &);

void schedBreadthFirst(BlurHarness &H) { H.Blurx.computeRoot(); }
void schedInline(BlurHarness &) {}
void schedComputeAtY(BlurHarness &H) { H.Blurx.computeAt(H.Out, H.y); }
void schedComputeAtX(BlurHarness &H) { H.Blurx.computeAt(H.Out, H.x); }
void schedSliding(BlurHarness &H) {
  H.Blurx.storeRoot().computeAt(H.Out, H.y);
}
void schedTiled(BlurHarness &H) {
  Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
  H.Out.tile(H.x, H.y, xo, yo, xi, yi, 16, 8);
  H.Blurx.computeAt(H.Out, xo);
}
void schedTiledStoreAtTile(BlurHarness &H) {
  Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
  H.Out.tile(H.x, H.y, xo, yo, xi, yi, 16, 8);
  H.Blurx.storeAt(H.Out, xo).computeAt(H.Out, yi);
}
void schedSlidingInTiles(BlurHarness &H) {
  Var ty("ty");
  H.Out.split(H.y, ty, H.y, 8);
  H.Blurx.storeAt(H.Out, ty).computeAt(H.Out, H.y);
}
void schedVectorized(BlurHarness &H) {
  H.Out.vectorize(H.x, 8);
  H.Blurx.computeRoot().vectorize(H.x, 8);
}
void schedVectorNarrow(BlurHarness &H) {
  H.Out.vectorize(H.x, 4);
  H.Blurx.computeAt(H.Out, H.y).vectorize(H.x, 4);
}
void schedUnrolled(BlurHarness &H) {
  H.Out.unroll(H.x, 4);
  H.Blurx.computeRoot();
}
void schedParallel(BlurHarness &H) {
  H.Out.parallel(H.y);
  H.Blurx.computeAt(H.Out, H.y);
}
void schedParallelTiles(BlurHarness &H) {
  Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
  H.Out.tile(H.x, H.y, xo, yo, xi, yi, 32, 8).parallel(yo).vectorize(xi, 8);
  H.Blurx.computeAt(H.Out, xo).vectorize(H.x, 8);
}
void schedReordered(BlurHarness &H) {
  H.Out.reorder(H.y, H.x); // column-major
  H.Blurx.computeRoot();
}
void schedNestedSplit(BlurHarness &H) {
  Var xo("xo"), xi("xi"), xoo("xoo"), xoi("xoi");
  H.Out.split(H.x, xo, xi, 16).split(xo, xoo, xoi, 2);
  H.Blurx.computeRoot();
}
void schedGpuTiles(BlurHarness &H) {
  Var bx("bx"), by("by"), tx("tx"), ty("ty");
  H.Out.gpuTile(H.x, H.y, bx, by, tx, ty, 16, 8);
  H.Blurx.computeAt(H.Out, bx);
}

struct NamedSchedule {
  const char *Name;
  ScheduleFn Apply;
};

const NamedSchedule Schedules[] = {
    {"breadth_first", schedBreadthFirst},
    {"inline", schedInline},
    {"compute_at_y", schedComputeAtY},
    {"compute_at_x", schedComputeAtX},
    {"sliding_window", schedSliding},
    {"tiled", schedTiled},
    {"tiled_store_at_tile", schedTiledStoreAtTile},
    {"sliding_in_tiles", schedSlidingInTiles},
    {"vectorized", schedVectorized},
    {"vector_narrow", schedVectorNarrow},
    {"unrolled", schedUnrolled},
    {"parallel", schedParallel},
    {"parallel_tiles", schedParallelTiles},
    {"reordered", schedReordered},
    {"nested_split", schedNestedSplit},
    {"gpu_tiles", schedGpuTiles},
};

} // namespace

class ScheduleSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ScheduleSweepTest, MatchesReference) {
  const NamedSchedule &S = Schedules[GetParam()];
  const int W = 64, Ht = 48;

  BlurHarness H;
  S.Apply(H);
  Buffer<uint8_t> Got = H.run(W, Ht);

  // Reference from the hand-written C++ implementation.
  Buffer<uint8_t> Input(W, Ht);
  Input.fill([](int X, int Y) { return (X * 23 + Y * 7) % 256; });
  Buffer<uint8_t> Want(W, Ht);
  baselines::blurReference(Input, Want);

  for (int Y = 0; Y < Ht; ++Y)
    for (int X = 0; X < W; ++X)
      ASSERT_EQ(int(Got(X, Y)), int(Want(X, Y)))
          << "schedule " << S.Name << " wrong at (" << X << "," << Y << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedules, ScheduleSweepTest,
    ::testing::Range<size_t>(0, std::size(Schedules)),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return Schedules[Info.param].Name;
    });

TEST(ScheduleApiTest, SplitValidation) {
  Var x("x"), y("y"), xo("xo"), xi("xi");
  Func F("splitcheck");
  F(x, y) = x + y;
  F.split(x, xo, xi, 8);
  const Schedule &S = F.function().schedule();
  ASSERT_EQ(S.Splits.size(), 1u);
  EXPECT_EQ(S.Splits[0].Old, "x");
  ASSERT_EQ(S.Dims.size(), 3u);
  EXPECT_EQ(S.Dims[0].Var, "y");
  EXPECT_EQ(S.Dims[1].Var, "xo");
  EXPECT_EQ(S.Dims[2].Var, "xi");
}

TEST(ScheduleApiTest, TileProducesCanonicalOrder) {
  Var x("x"), y("y"), xo("xo"), yo("yo"), xi("xi"), yi("yi");
  Func F("tilecheck");
  F(x, y) = x + y;
  F.tile(x, y, xo, yo, xi, yi, 8, 8);
  const Schedule &S = F.function().schedule();
  ASSERT_EQ(S.Dims.size(), 4u);
  EXPECT_EQ(S.Dims[0].Var, "yo");
  EXPECT_EQ(S.Dims[1].Var, "xo");
  EXPECT_EQ(S.Dims[2].Var, "yi");
  EXPECT_EQ(S.Dims[3].Var, "xi");
}

TEST(ScheduleApiTest, LoopLevels) {
  EXPECT_TRUE(LoopLevel::root().isRoot());
  EXPECT_TRUE(LoopLevel::inlined().isInlined());
  LoopLevel At = LoopLevel::at("f", "x");
  EXPECT_EQ(At.loopName(), "f.x");
  EXPECT_EQ(At.str(), "f.x");
}

TEST(ScheduleApiTest, ResetSchedule) {
  Var x("x"), y("y"), xo("xo"), xi("xi");
  Func F("resetcheck");
  F(x, y) = x + y;
  F.split(x, xo, xi, 8).parallel(y).computeRoot();
  F.function().resetSchedule();
  const Schedule &S = F.function().schedule();
  EXPECT_TRUE(S.Splits.empty());
  EXPECT_EQ(S.Dims.size(), 2u);
  EXPECT_TRUE(S.ComputeLevel.isInlined());
}
