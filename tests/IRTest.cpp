//===-- tests/IRTest.cpp - IR node, printer, equality tests ----------------===//

#include "ir/Expr.h"
#include "ir/IREquality.h"
#include "ir/IRMutator.h"
#include "ir/IROperators.h"
#include "ir/IRPrinter.h"
#include "ir/IRVisitor.h"

#include <gtest/gtest.h>

using namespace halide;

namespace {
Expr var(const char *Name) { return Variable::make(Int(32), Name); }
} // namespace

TEST(IRTest, Immediates) {
  Expr I = IntImm::make(Int(32), 42);
  EXPECT_EQ(I.type(), Int(32));
  EXPECT_EQ(I.as<IntImm>()->Value, 42);
  Expr U = UIntImm::make(UInt(8), 255);
  EXPECT_EQ(U.as<UIntImm>()->Value, 255u);
  Expr F = FloatImm::make(Float(32), 1.5);
  EXPECT_EQ(F.as<FloatImm>()->Value, 1.5);
}

TEST(IRTest, LiteralConversions) {
  Expr A = 3;
  EXPECT_EQ(A.type(), Int(32));
  Expr B = 2.5f;
  EXPECT_EQ(B.type(), Float(32));
  // Representable double literals collapse to float32.
  Expr C = 0.25;
  EXPECT_EQ(C.type(), Float(32));
  Expr D = 0.1;
  EXPECT_EQ(D.type(), Float(64));
}

TEST(IRTest, AsCast) {
  Expr E = Add::make(var("x"), Expr(1));
  EXPECT_NE(E.as<Add>(), nullptr);
  EXPECT_EQ(E.as<Sub>(), nullptr);
  EXPECT_EQ(E.as<Add>()->B.as<IntImm>()->Value, 1);
}

TEST(IRTest, PrinterExpr) {
  Expr E = Add::make(var("x"), Mul::make(var("y"), Expr(2)));
  EXPECT_EQ(exprToString(E), "(x + (y * 2))");
  EXPECT_EQ(exprToString(Select::make(LT::make(var("x"), Expr(0)),
                                      Expr(1), Expr(2))),
            "select((x < 0), 1, 2)");
  EXPECT_EQ(exprToString(Ramp::make(var("x"), 1, 8)), "ramp(x, 1, 8)");
  EXPECT_EQ(exprToString(Broadcast::make(Expr(7), 4)), "x4(7)");
}

TEST(IRTest, PrinterStmt) {
  Stmt S = For::make("f.x", 0, 10, ForType::Serial,
                     Store::make("buf", var("f.x"), var("f.x")));
  std::string Text = stmtToString(S);
  EXPECT_NE(Text.find("for (f.x, 0, 10)"), std::string::npos);
  EXPECT_NE(Text.find("buf[f.x] = f.x"), std::string::npos);
}

TEST(IRTest, StructuralEquality) {
  Expr A = Add::make(var("x"), Expr(1));
  Expr B = Add::make(var("x"), Expr(1));
  Expr C = Add::make(var("x"), Expr(2));
  EXPECT_TRUE(equal(A, B));
  EXPECT_FALSE(equal(A, C));
  EXPECT_FALSE(equal(A, Sub::make(var("x"), Expr(1))));
  // Total order consistency.
  EXPECT_EQ(compareExpr(A, B), 0);
  EXPECT_EQ(compareExpr(A, C), -compareExpr(C, A));
}

TEST(IRTest, StmtEquality) {
  Stmt A = Store::make("b", Expr(1), var("x"));
  Stmt B = Store::make("b", Expr(1), var("x"));
  Stmt C = Store::make("c", Expr(1), var("x"));
  EXPECT_TRUE(equal(A, B));
  EXPECT_FALSE(equal(A, C));
}

namespace {
/// Counts Variable nodes.
class VarCounter : public IRVisitor {
public:
  int Count = 0;
  void visit(const Variable *) override { ++Count; }
};
} // namespace

TEST(IRTest, VisitorTraversesChildren) {
  Expr E = Select::make(LT::make(var("a"), var("b")),
                        Add::make(var("c"), Expr(1)), var("d"));
  VarCounter Counter;
  E.accept(&Counter);
  EXPECT_EQ(Counter.Count, 4);
}

TEST(IRTest, MutatorPreservesSharingWhenUnchanged) {
  Expr E = Add::make(var("x"), Expr(1));
  IRMutator M;
  Expr E2 = M.mutate(E);
  EXPECT_TRUE(E.sameAs(E2)); // pointer-identical when nothing changed
}

TEST(IRTest, BlockOfList) {
  Stmt S1 = Evaluate::make(1);
  Stmt S2 = Evaluate::make(2);
  Stmt S3 = Evaluate::make(3);
  Stmt B = Block::make({S1, S2, S3});
  ASSERT_NE(B.as<Block>(), nullptr);
  EXPECT_TRUE(equal(B.as<Block>()->First, S1));
}

TEST(IRTest, ForTypeNames) {
  EXPECT_STREQ(forTypeName(ForType::Serial), "for");
  EXPECT_STREQ(forTypeName(ForType::Parallel), "parallel for");
  EXPECT_STREQ(forTypeName(ForType::Vectorized), "vectorized for");
  EXPECT_TRUE(isParallelForType(ForType::GPUBlock));
  EXPECT_FALSE(isParallelForType(ForType::Serial));
}
