//===-- tests/AutotunerTest.cpp - Schedule search tests ------------------------===//

#include "autotune/Autotuner.h"
#include "apps/Apps.h"
#include "codegen/Interpreter.h"
#include "lang/ImageParam.h"
#include "lang/Pipeline.h"

#include <gtest/gtest.h>

using namespace halide;

namespace {

struct TunablePipe {
  ImageParam In;
  Var x{"x"}, y{"y"};
  Func A, B, Out;

  TunablePipe()
      : In(UInt(8), 2, "tune_in"), A("tune_a"), B("tune_b"),
        Out("tune_out") {
    auto InC = [&](Expr X, Expr Y) {
      return cast(Int(32), In(clamp(X, 0, In.width() - 1),
                              clamp(Y, 0, In.height() - 1)));
    };
    A(x, y) = InC(x - 1, y) + InC(x + 1, y);
    B(x, y) = A(x, y - 1) + A(x, y + 1);
    Out(x, y) = cast(UInt(8), B(x, y) / 4);
  }
};

} // namespace

TEST(ScheduleSpaceTest, GenomeShape) {
  TunablePipe P;
  ScheduleSpace Space(P.Out.function());
  EXPECT_EQ(Space.size(), 3u);
  Genome BF = Space.breadthFirstGenome();
  EXPECT_EQ(BF.Genes.size(), 3u);
  for (const FuncGene &G : BF.Genes)
    EXPECT_EQ(G.Call, FuncGene::CallSchedule::Root);
}

TEST(ScheduleSpaceTest, CrossoverPreservesLength) {
  TunablePipe P;
  ScheduleSpace Space(P.Out.function());
  std::mt19937 Rng(7);
  Genome A = Space.randomGenome(Rng), B = Space.randomGenome(Rng);
  Genome C = Space.crossover(A, B, Rng);
  EXPECT_EQ(C.Genes.size(), A.Genes.size());
}

// The paper rejects invalid schedules during sampling; our genomes are
// valid by construction. Verify: every random genome applies, lowers, and
// computes the right answer.
class GenomeValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(GenomeValidityTest, RandomGenomesAreValidAndCorrect) {
  TunablePipe P;
  ScheduleSpace Space(P.Out.function());
  std::mt19937 Rng(uint32_t(GetParam()) * 31 + 5);
  Genome G = Space.randomGenome(Rng);
  for (int I = 0; I < 3; ++I)
    Space.mutate(G, Rng);
  Space.apply(G);

  const int W = 64, H = 64;
  Buffer<uint8_t> Input(W, H);
  Input.fill([](int X, int Y) { return (X * 3 + Y * 17) % 256; });
  Buffer<uint8_t> Got(W, H);
  ParamBindings Params;
  Params.bind("tune_in", Input);
  Pipeline(P.Out).realize(Got, Params);

  auto InC = [&](int X, int Y) {
    X = std::clamp(X, 0, W - 1);
    Y = std::clamp(Y, 0, H - 1);
    return int(Input(X, Y));
  };
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      int AXY0 = InC(X - 1, Y - 1) + InC(X + 1, Y - 1);
      int AXY1 = InC(X - 1, Y + 1) + InC(X + 1, Y + 1);
      int Want = (AXY0 + AXY1) / 4;
      ASSERT_EQ(int(Got(X, Y)), Want & 0xff)
          << Space.describe(G) << " at (" << X << "," << Y << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGenomes, GenomeValidityTest,
                         ::testing::Range(0, 25));

TEST(AutotunerTest, ImprovesOrMatchesBreadthFirst) {
  TunablePipe P;
  const int W = 128, H = 128;
  Buffer<uint8_t> Input(W, H);
  Input.fill([](int X, int Y) { return (X + Y) % 256; });
  ParamBindings Inputs;
  Inputs.bind("tune_in", Input);
  Buffer<uint8_t> Out(W, H);

  TuneOptions Opts;
  Opts.Population = 6;
  Opts.Generations = 3;
  Opts.BenchIters = 1;
  Opts.Seed = 11;
  TuneResult R = autotune(P.Out, Inputs, Out.raw(), Opts);
  EXPECT_GT(R.CandidatesEvaluated, 0);
  EXPECT_GT(R.BestMs, 0.0);
  ASSERT_EQ(R.BestPerGeneration.size(), 3u);
  // Monotone non-increasing best-so-far (elitism).
  EXPECT_LE(R.BestPerGeneration[2], R.BestPerGeneration[0] * 1.05);
  EXPECT_FALSE(R.Description.empty());
}
