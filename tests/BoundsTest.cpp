//===-- tests/BoundsTest.cpp - Interval analysis & boxes ---------------------===//

#include "analysis/Bounds.h"
#include "analysis/Interval.h"
#include "analysis/Monotonic.h"
#include "analysis/Derivatives.h"
#include "ir/IREquality.h"
#include "ir/IROperators.h"
#include "ir/IRPrinter.h"
#include "ir/IRVisitor.h"
#include "transforms/Simplify.h"
#include "transforms/Substitute.h"

#include <gtest/gtest.h>
#include <random>

using namespace halide;

namespace {
Expr var(const char *Name) { return Variable::make(Int(32), Name); }

int64_t constOf(const Expr &E) {
  int64_t V = 0;
  EXPECT_TRUE(proveConstInt(E, &V)) << exprToString(E);
  return V;
}
} // namespace

TEST(IntervalTest, BasicOperations) {
  Interval A(Expr(1), Expr(5)), B(Expr(3), Expr(9));
  Interval U = intervalUnion(A, B);
  EXPECT_EQ(constOf(U.Min), 1);
  EXPECT_EQ(constOf(U.Max), 9);
  Interval I = intervalIntersection(A, B);
  EXPECT_EQ(constOf(I.Min), 3);
  EXPECT_EQ(constOf(I.Max), 5);
  EXPECT_TRUE(Interval::single(var("x")).isSinglePoint());
  EXPECT_TRUE(Interval::everything().isEverything());
  // Unbounded union stays unbounded on that side.
  Interval Ub = intervalUnion(Interval(Expr(0), Expr()), A);
  EXPECT_FALSE(Ub.hasUpperBound());
}

TEST(BoundsTest, ArithmeticBounds) {
  Scope<Interval> S;
  S.push("x", Interval(Expr(0), Expr(9)));
  Interval B = boundsOfExprInScope(var("x") * 2 + 1, S);
  EXPECT_EQ(constOf(B.Min), 1);
  EXPECT_EQ(constOf(B.Max), 19);
  B = boundsOfExprInScope(10 - var("x"), S);
  EXPECT_EQ(constOf(B.Min), 1);
  EXPECT_EQ(constOf(B.Max), 10);
  B = boundsOfExprInScope(var("x") * -3, S);
  EXPECT_EQ(constOf(B.Min), -27);
  EXPECT_EQ(constOf(B.Max), 0);
  B = boundsOfExprInScope(var("x") / 2, S);
  EXPECT_EQ(constOf(B.Min), 0);
  EXPECT_EQ(constOf(B.Max), 4);
  B = boundsOfExprInScope(var("x") % 4, S);
  EXPECT_EQ(constOf(B.Min), 0);
  EXPECT_EQ(constOf(B.Max), 3);
}

TEST(BoundsTest, ClampBoundsDataDependent) {
  // The paper's pattern: interval analysis "through nearly any
  // computation", with clamp declaring bounds for unanalyzable values.
  Scope<Interval> S;
  Expr Load = Call::make(UInt(8), "img", {var("x")}, CallType::Image);
  Interval B = boundsOfExprInScope(clamp(cast(Int(32), Load), 0, 255), S);
  EXPECT_EQ(constOf(B.Min), 0);
  EXPECT_EQ(constOf(B.Max), 255);
  // Unclamped uint8 load still bounded by its type.
  B = boundsOfExprInScope(cast(Int(32), Load), S);
  EXPECT_EQ(constOf(B.Min), 0);
  EXPECT_EQ(constOf(B.Max), 255);
}

TEST(BoundsTest, SymbolicBounds) {
  // Unknown variables stay symbolic: bounds inference depends on this to
  // emit per-loop-level preambles.
  Scope<Interval> S;
  S.push("x", Interval(var("lo"), var("hi")));
  Interval B = boundsOfExprInScope(var("x") + 1, S);
  EXPECT_TRUE(equal(simplify(B.Min), simplify(var("lo") + 1)));
  EXPECT_TRUE(equal(simplify(B.Max), simplify(var("hi") + 1)));
}

TEST(BoundsTest, SelectAndMinMax) {
  Scope<Interval> S;
  S.push("x", Interval(Expr(0), Expr(9)));
  Interval B = boundsOfExprInScope(
      select(var("c") == 0, var("x"), var("x") + 100), S);
  EXPECT_EQ(constOf(B.Min), 0);
  EXPECT_EQ(constOf(B.Max), 109);
  B = boundsOfExprInScope(min(var("x"), 5), S);
  EXPECT_EQ(constOf(B.Max), 5);
}

TEST(BoundsTest, BoxRequiredStencil) {
  // for y in [0, 10): for x in [0, 20): ... f(x-1..x+1, y) ...
  Expr CallF = Call::make(Float(32), "f", {var("x") - 1, var("y")},
                          CallType::Halide) +
               Call::make(Float(32), "f", {var("x") + 1, var("y")},
                          CallType::Halide);
  Stmt S = For::make(
      "y", 0, 10, ForType::Serial,
      For::make("x", 0, 20, ForType::Serial,
                Provide::make("g", CallF, {var("x"), var("y")})));
  Scope<Interval> Empty;
  Box B = boxRequired(S, "f", Empty);
  ASSERT_EQ(B.size(), 2u);
  EXPECT_EQ(constOf(B[0].Min), -1);
  EXPECT_EQ(constOf(B[0].Max), 20);
  EXPECT_EQ(constOf(B[1].Min), 0);
  EXPECT_EQ(constOf(B[1].Max), 9);
  Box P = boxProvided(S, "g", Empty);
  ASSERT_EQ(P.size(), 2u);
  EXPECT_EQ(constOf(P[0].Max), 19);
}

//===----------------------------------------------------------------------===//
// The sharing layer (ExprLedger): identical sub-intervals resolve to one
// let-bound name, hits are observable through Bounds::statistics(), and
// the sharing survives Simplify/Substitute round-trips.
//===----------------------------------------------------------------------===//

namespace {

/// A deterministic expression over the free variable "u" that is too large
/// for the ledger's inline threshold, so its bounds must be interned.
Expr bigSharedValue() {
  return min(var("u") * 2 + 1,
             min(var("u") * 3 + 2,
                 min(var("u") * 5 + 3, var("u") * 7 + 4)));
}

/// Collects every Let binding and every Variable occurrence in a tree.
class LetAndVarCollector : public IRVisitor {
public:
  std::map<std::string, int> LetDefs;
  std::map<std::string, int> VarUses;

  void visit(const Let *Op) override {
    ++LetDefs[Op->Name];
    IRVisitor::visit(Op);
  }
  void visit(const Variable *Op) override { ++VarUses[Op->Name]; }
};

} // namespace

TEST(BoundsSharingTest, IdenticalSubIntervalsShareOneLetName) {
  Bounds::resetStatistics();
  // Two lets with structurally identical large values: their bounds must
  // intern to the same ledger name, observable as one miss plus hits.
  Expr E = Let::make("a", bigSharedValue(),
                     Let::make("b", bigSharedValue(),
                               var("a") + var("b")));
  Scope<Interval> S;
  Interval B = boundsOfExprInScope(E, S);
  ASSERT_TRUE(B.isBounded());

  BoundsStatistics Stats = Bounds::statistics();
  EXPECT_GE(Stats.CacheMisses, 1u) << "the large value was never interned";
  EXPECT_GE(Stats.CacheHits, 1u)
      << "the second identical value did not reuse the first's name";
  EXPECT_GE(Stats.LetsEmitted, 1u) << "materialize() emitted no definitions";

  // The materialized endpoint carries exactly one definition of the shared
  // value, referenced from both use sites.
  LetAndVarCollector C;
  B.Min.accept(&C);
  ASSERT_EQ(C.LetDefs.size(), 1u)
      << "expected a single shared definition, got " << C.LetDefs.size();
  const std::string &SharedName = C.LetDefs.begin()->first;
  EXPECT_EQ(C.LetDefs.begin()->second, 1);
  EXPECT_EQ(C.VarUses[SharedName], 2)
      << "both let-bound uses should reference the shared name";

  // Semantics: the shared form evaluates like the tree it replaced.
  for (int U : {-3, 0, 7}) {
    Expr Direct = simplify(substitute("u", Expr(U),
                                      bigSharedValue() + bigSharedValue()));
    Expr Shared = simplify(substitute("u", Expr(U), B.Min));
    int64_t DirectV = 0, SharedV = 0;
    ASSERT_TRUE(proveConstInt(Direct, &DirectV));
    ASSERT_TRUE(proveConstInt(Shared, &SharedV)) << exprToString(Shared);
    EXPECT_EQ(DirectV, SharedV) << "at u=" << U;
  }
}

TEST(BoundsSharingTest, SmallEndpointsStayInline) {
  Bounds::resetStatistics();
  Scope<Interval> S;
  S.push("x", Interval(Expr(0), Expr(9)));
  Expr E = Let::make("t", var("x") + 1, var("t") * 2);
  Interval B = boundsOfExprInScope(E, S);
  EXPECT_EQ(constOf(B.Min), 2);
  EXPECT_EQ(constOf(B.Max), 20);
  BoundsStatistics Stats = Bounds::statistics();
  EXPECT_EQ(Stats.CacheMisses, 0u)
      << "a hand-countable endpoint should not be interned";
  EXPECT_GE(Stats.EndpointsInlined, 1u);
}

TEST(BoundsSharingTest, SharingSurvivesSimplifyAndSubstitute) {
  Expr E = Let::make("a", bigSharedValue(),
                     Let::make("b", bigSharedValue(),
                               var("a") + var("b")));
  Scope<Interval> S;
  Interval B = boundsOfExprInScope(E, S);

  // Simplify must traverse the Let structure, not re-expand it.
  Expr Simplified = simplify(B.Min);
  LetAndVarCollector C;
  Simplified.accept(&C);
  EXPECT_EQ(C.LetDefs.size(), 1u)
      << "simplify re-expanded or dropped the shared definition: "
      << exprToString(Simplified);

  // Substituting an unrelated variable leaves the sharing intact.
  Expr Sub = substitute("unrelated", Expr(1), Simplified);
  LetAndVarCollector C2;
  Sub.accept(&C2);
  EXPECT_EQ(C2.LetDefs.size(), 1u);

  // A Simplify -> Substitute -> Simplify round-trip stays semantically
  // equal to the unshared tree.
  Expr Final = simplify(substitute("u", Expr(4), Sub));
  int64_t FinalV = 0, DirectV = 0;
  ASSERT_TRUE(proveConstInt(Final, &FinalV));
  ASSERT_TRUE(proveConstInt(
      simplify(substitute("u", Expr(4),
                          bigSharedValue() + bigSharedValue())),
      &DirectV));
  EXPECT_EQ(FinalV, DirectV);
}

TEST(BoundsSharingTest, LedgerMaterializeIsSelfContained) {
  // Raw results against a caller-owned ledger reference ledger names;
  // materialize() must wrap every transitively needed definition.
  ExprLedger Ledger;
  Scope<Interval> S;
  Expr E = Let::make("a", bigSharedValue(), var("a") - 1);
  Interval Raw = boundsOfExprInScope(E, S, &Ledger);
  ASSERT_TRUE(Raw.isBounded());
  Interval Done = Ledger.materialize(Raw);
  // Every variable left in the materialized endpoint must be bound by one
  // of its own lets or be the genuinely free "u".
  LetAndVarCollector C;
  Done.Min.accept(&C);
  for (const auto &[Name, Uses] : C.VarUses)
    EXPECT_TRUE(Name == "u" || C.LetDefs.count(Name))
        << "unbound name " << Name << " escaped materialize()";
}

TEST(MonotonicTest, Classification) {
  Expr Y = var("y");
  EXPECT_EQ(isMonotonic(Y, "y"), Monotonic::Increasing);
  EXPECT_EQ(isMonotonic(Y * 2 + 3, "y"), Monotonic::Increasing);
  EXPECT_EQ(isMonotonic(5 - Y, "y"), Monotonic::Decreasing);
  EXPECT_EQ(isMonotonic(Y * -1, "y"), Monotonic::Decreasing);
  EXPECT_EQ(isMonotonic(var("x"), "y"), Monotonic::Constant);
  EXPECT_EQ(isMonotonic(Y / 2, "y"), Monotonic::Increasing);
  EXPECT_EQ(isMonotonic(Y % 3, "y"), Monotonic::Unknown);
  EXPECT_EQ(isMonotonic(min(Y, Y + 2), "y"), Monotonic::Increasing);
  EXPECT_EQ(isMonotonic(Y - Y, "y"), Monotonic::Unknown); // not simplified
  EXPECT_EQ(isMonotonic(max(Y * 2, Y + 1), "y"), Monotonic::Increasing);
  EXPECT_EQ(isMonotonic(select(var("c") == 0, Y, Y + 1), "y"),
            Monotonic::Increasing);
}

TEST(DerivativesTest, VarUsage) {
  Expr E = var("x") + var("y") * 2;
  EXPECT_TRUE(exprUsesVar(E, "x"));
  EXPECT_FALSE(exprUsesVar(E, "z"));
  // Lets shadow.
  Expr L = Let::make("x", Expr(1), var("x") + var("y"));
  EXPECT_FALSE(exprUsesVar(L, "x"));
  EXPECT_TRUE(exprUsesVar(L, "y"));
  auto Free = freeVars(E);
  EXPECT_EQ(Free.size(), 2u);
  EXPECT_TRUE(Free.count("x"));
}

TEST(DerivativesTest, AffineStride) {
  int64_t Stride;
  EXPECT_TRUE(affineStride(var("x") * 3 + var("y"), "x", &Stride));
  EXPECT_EQ(Stride, 3);
  EXPECT_TRUE(affineStride(var("x") * 3 + var("y"), "y", &Stride));
  EXPECT_EQ(Stride, 1);
  EXPECT_TRUE(affineStride(var("y") * 7, "x", &Stride));
  EXPECT_EQ(Stride, 0);
  EXPECT_TRUE(affineStride(var("x") - var("x") * 4, "x", &Stride));
  EXPECT_EQ(Stride, -3);
  EXPECT_FALSE(affineStride(var("x") * var("x"), "x", &Stride));
}

//===----------------------------------------------------------------------===//
// Property: inferred bounds contain every reachable value.
//===----------------------------------------------------------------------===//

namespace {

Expr randomIndexExpr(std::mt19937 &Rng, int Depth) {
  std::uniform_int_distribution<int> Pick(0, Depth <= 0 ? 1 : 7);
  switch (Pick(Rng)) {
  case 0:
    return Expr(int(std::uniform_int_distribution<int>(-8, 8)(Rng)));
  case 1:
    return var("x");
  case 2:
    return randomIndexExpr(Rng, Depth - 1) + randomIndexExpr(Rng, Depth - 1);
  case 3:
    return randomIndexExpr(Rng, Depth - 1) - randomIndexExpr(Rng, Depth - 1);
  case 4:
    return randomIndexExpr(Rng, Depth - 1) *
           Expr(int(std::uniform_int_distribution<int>(-3, 3)(Rng)));
  case 5:
    return min(randomIndexExpr(Rng, Depth - 1),
               randomIndexExpr(Rng, Depth - 1));
  case 6:
    return randomIndexExpr(Rng, Depth - 1) /
           Expr(int(std::uniform_int_distribution<int>(1, 4)(Rng)));
  default:
    return max(randomIndexExpr(Rng, Depth - 1),
               randomIndexExpr(Rng, Depth - 1));
  }
}

} // namespace

class BoundsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundsPropertyTest, BoundsContainAllValues) {
  std::mt19937 Rng(uint32_t(GetParam()) + 1000);
  Expr E = randomIndexExpr(Rng, 4);
  const int Lo = -5, Hi = 7;
  Scope<Interval> S;
  S.push("x", Interval(Expr(Lo), Expr(Hi)));
  Interval B = boundsOfExprInScope(E, S);
  ASSERT_TRUE(B.isBounded()) << exprToString(E);
  int64_t Min = constOf(B.Min), Max = constOf(B.Max);
  for (int X = Lo; X <= Hi; ++X) {
    Expr V = simplify(substitute("x", Expr(X), E));
    int64_t C = 0;
    ASSERT_TRUE(asConstInt(V, &C));
    EXPECT_LE(Min, C) << exprToString(E) << " at x=" << X;
    EXPECT_GE(Max, C) << exprToString(E) << " at x=" << X;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomIndexExprs, BoundsPropertyTest,
                         ::testing::Range(0, 60));
