//===-- tests/BoundsTest.cpp - Interval analysis & boxes ---------------------===//

#include "analysis/Bounds.h"
#include "analysis/Interval.h"
#include "analysis/Monotonic.h"
#include "analysis/Derivatives.h"
#include "ir/IREquality.h"
#include "ir/IROperators.h"
#include "ir/IRPrinter.h"
#include "transforms/Simplify.h"
#include "transforms/Substitute.h"

#include <gtest/gtest.h>
#include <random>

using namespace halide;

namespace {
Expr var(const char *Name) { return Variable::make(Int(32), Name); }

int64_t constOf(const Expr &E) {
  int64_t V = 0;
  EXPECT_TRUE(proveConstInt(E, &V)) << exprToString(E);
  return V;
}
} // namespace

TEST(IntervalTest, BasicOperations) {
  Interval A(Expr(1), Expr(5)), B(Expr(3), Expr(9));
  Interval U = intervalUnion(A, B);
  EXPECT_EQ(constOf(U.Min), 1);
  EXPECT_EQ(constOf(U.Max), 9);
  Interval I = intervalIntersection(A, B);
  EXPECT_EQ(constOf(I.Min), 3);
  EXPECT_EQ(constOf(I.Max), 5);
  EXPECT_TRUE(Interval::single(var("x")).isSinglePoint());
  EXPECT_TRUE(Interval::everything().isEverything());
  // Unbounded union stays unbounded on that side.
  Interval Ub = intervalUnion(Interval(Expr(0), Expr()), A);
  EXPECT_FALSE(Ub.hasUpperBound());
}

TEST(BoundsTest, ArithmeticBounds) {
  Scope<Interval> S;
  S.push("x", Interval(Expr(0), Expr(9)));
  Interval B = boundsOfExprInScope(var("x") * 2 + 1, S);
  EXPECT_EQ(constOf(B.Min), 1);
  EXPECT_EQ(constOf(B.Max), 19);
  B = boundsOfExprInScope(10 - var("x"), S);
  EXPECT_EQ(constOf(B.Min), 1);
  EXPECT_EQ(constOf(B.Max), 10);
  B = boundsOfExprInScope(var("x") * -3, S);
  EXPECT_EQ(constOf(B.Min), -27);
  EXPECT_EQ(constOf(B.Max), 0);
  B = boundsOfExprInScope(var("x") / 2, S);
  EXPECT_EQ(constOf(B.Min), 0);
  EXPECT_EQ(constOf(B.Max), 4);
  B = boundsOfExprInScope(var("x") % 4, S);
  EXPECT_EQ(constOf(B.Min), 0);
  EXPECT_EQ(constOf(B.Max), 3);
}

TEST(BoundsTest, ClampBoundsDataDependent) {
  // The paper's pattern: interval analysis "through nearly any
  // computation", with clamp declaring bounds for unanalyzable values.
  Scope<Interval> S;
  Expr Load = Call::make(UInt(8), "img", {var("x")}, CallType::Image);
  Interval B = boundsOfExprInScope(clamp(cast(Int(32), Load), 0, 255), S);
  EXPECT_EQ(constOf(B.Min), 0);
  EXPECT_EQ(constOf(B.Max), 255);
  // Unclamped uint8 load still bounded by its type.
  B = boundsOfExprInScope(cast(Int(32), Load), S);
  EXPECT_EQ(constOf(B.Min), 0);
  EXPECT_EQ(constOf(B.Max), 255);
}

TEST(BoundsTest, SymbolicBounds) {
  // Unknown variables stay symbolic: bounds inference depends on this to
  // emit per-loop-level preambles.
  Scope<Interval> S;
  S.push("x", Interval(var("lo"), var("hi")));
  Interval B = boundsOfExprInScope(var("x") + 1, S);
  EXPECT_TRUE(equal(simplify(B.Min), simplify(var("lo") + 1)));
  EXPECT_TRUE(equal(simplify(B.Max), simplify(var("hi") + 1)));
}

TEST(BoundsTest, SelectAndMinMax) {
  Scope<Interval> S;
  S.push("x", Interval(Expr(0), Expr(9)));
  Interval B = boundsOfExprInScope(
      select(var("c") == 0, var("x"), var("x") + 100), S);
  EXPECT_EQ(constOf(B.Min), 0);
  EXPECT_EQ(constOf(B.Max), 109);
  B = boundsOfExprInScope(min(var("x"), 5), S);
  EXPECT_EQ(constOf(B.Max), 5);
}

TEST(BoundsTest, BoxRequiredStencil) {
  // for y in [0, 10): for x in [0, 20): ... f(x-1..x+1, y) ...
  Expr CallF = Call::make(Float(32), "f", {var("x") - 1, var("y")},
                          CallType::Halide) +
               Call::make(Float(32), "f", {var("x") + 1, var("y")},
                          CallType::Halide);
  Stmt S = For::make(
      "y", 0, 10, ForType::Serial,
      For::make("x", 0, 20, ForType::Serial,
                Provide::make("g", CallF, {var("x"), var("y")})));
  Scope<Interval> Empty;
  Box B = boxRequired(S, "f", Empty);
  ASSERT_EQ(B.size(), 2u);
  EXPECT_EQ(constOf(B[0].Min), -1);
  EXPECT_EQ(constOf(B[0].Max), 20);
  EXPECT_EQ(constOf(B[1].Min), 0);
  EXPECT_EQ(constOf(B[1].Max), 9);
  Box P = boxProvided(S, "g", Empty);
  ASSERT_EQ(P.size(), 2u);
  EXPECT_EQ(constOf(P[0].Max), 19);
}

TEST(MonotonicTest, Classification) {
  Expr Y = var("y");
  EXPECT_EQ(isMonotonic(Y, "y"), Monotonic::Increasing);
  EXPECT_EQ(isMonotonic(Y * 2 + 3, "y"), Monotonic::Increasing);
  EXPECT_EQ(isMonotonic(5 - Y, "y"), Monotonic::Decreasing);
  EXPECT_EQ(isMonotonic(Y * -1, "y"), Monotonic::Decreasing);
  EXPECT_EQ(isMonotonic(var("x"), "y"), Monotonic::Constant);
  EXPECT_EQ(isMonotonic(Y / 2, "y"), Monotonic::Increasing);
  EXPECT_EQ(isMonotonic(Y % 3, "y"), Monotonic::Unknown);
  EXPECT_EQ(isMonotonic(min(Y, Y + 2), "y"), Monotonic::Increasing);
  EXPECT_EQ(isMonotonic(Y - Y, "y"), Monotonic::Unknown); // not simplified
  EXPECT_EQ(isMonotonic(max(Y * 2, Y + 1), "y"), Monotonic::Increasing);
  EXPECT_EQ(isMonotonic(select(var("c") == 0, Y, Y + 1), "y"),
            Monotonic::Increasing);
}

TEST(DerivativesTest, VarUsage) {
  Expr E = var("x") + var("y") * 2;
  EXPECT_TRUE(exprUsesVar(E, "x"));
  EXPECT_FALSE(exprUsesVar(E, "z"));
  // Lets shadow.
  Expr L = Let::make("x", Expr(1), var("x") + var("y"));
  EXPECT_FALSE(exprUsesVar(L, "x"));
  EXPECT_TRUE(exprUsesVar(L, "y"));
  auto Free = freeVars(E);
  EXPECT_EQ(Free.size(), 2u);
  EXPECT_TRUE(Free.count("x"));
}

TEST(DerivativesTest, AffineStride) {
  int64_t Stride;
  EXPECT_TRUE(affineStride(var("x") * 3 + var("y"), "x", &Stride));
  EXPECT_EQ(Stride, 3);
  EXPECT_TRUE(affineStride(var("x") * 3 + var("y"), "y", &Stride));
  EXPECT_EQ(Stride, 1);
  EXPECT_TRUE(affineStride(var("y") * 7, "x", &Stride));
  EXPECT_EQ(Stride, 0);
  EXPECT_TRUE(affineStride(var("x") - var("x") * 4, "x", &Stride));
  EXPECT_EQ(Stride, -3);
  EXPECT_FALSE(affineStride(var("x") * var("x"), "x", &Stride));
}

//===----------------------------------------------------------------------===//
// Property: inferred bounds contain every reachable value.
//===----------------------------------------------------------------------===//

namespace {

Expr randomIndexExpr(std::mt19937 &Rng, int Depth) {
  std::uniform_int_distribution<int> Pick(0, Depth <= 0 ? 1 : 7);
  switch (Pick(Rng)) {
  case 0:
    return Expr(int(std::uniform_int_distribution<int>(-8, 8)(Rng)));
  case 1:
    return var("x");
  case 2:
    return randomIndexExpr(Rng, Depth - 1) + randomIndexExpr(Rng, Depth - 1);
  case 3:
    return randomIndexExpr(Rng, Depth - 1) - randomIndexExpr(Rng, Depth - 1);
  case 4:
    return randomIndexExpr(Rng, Depth - 1) *
           Expr(int(std::uniform_int_distribution<int>(-3, 3)(Rng)));
  case 5:
    return min(randomIndexExpr(Rng, Depth - 1),
               randomIndexExpr(Rng, Depth - 1));
  case 6:
    return randomIndexExpr(Rng, Depth - 1) /
           Expr(int(std::uniform_int_distribution<int>(1, 4)(Rng)));
  default:
    return max(randomIndexExpr(Rng, Depth - 1),
               randomIndexExpr(Rng, Depth - 1));
  }
}

} // namespace

class BoundsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundsPropertyTest, BoundsContainAllValues) {
  std::mt19937 Rng(uint32_t(GetParam()) + 1000);
  Expr E = randomIndexExpr(Rng, 4);
  const int Lo = -5, Hi = 7;
  Scope<Interval> S;
  S.push("x", Interval(Expr(Lo), Expr(Hi)));
  Interval B = boundsOfExprInScope(E, S);
  ASSERT_TRUE(B.isBounded()) << exprToString(E);
  int64_t Min = constOf(B.Min), Max = constOf(B.Max);
  for (int X = Lo; X <= Hi; ++X) {
    Expr V = simplify(substitute("x", Expr(X), E));
    int64_t C = 0;
    ASSERT_TRUE(asConstInt(V, &C));
    EXPECT_LE(Min, C) << exprToString(E) << " at x=" << X;
    EXPECT_GE(Max, C) << exprToString(E) << " at x=" << X;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomIndexExprs, BoundsPropertyTest,
                         ::testing::Range(0, 60));
