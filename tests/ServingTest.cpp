//===-- tests/ServingTest.cpp - Concurrent multi-frame serving --------------===//
//
// The pipeline-as-a-service layer: realizeAsync frames queued as async
// jobs on the work-stealing scheduler must be bit-identical (output and
// ExecutionStats) to sequential realizes, whether the in-flight frames
// share one pipeline or mix several; queued jobs run highest-priority
// first; the buffer pool makes steady-state serving allocation-free; the
// JIT leaves no scratch directories behind; and a compile stampede of N
// identical requests does one lowering and one backend compile while the
// other N-1 wait as cache hits.
//
//===----------------------------------------------------------------------===//

#include "lang/ImageParam.h"
#include "lang/Pipeline.h"
#include "runtime/BufferPool.h"
#include "runtime/TaskScheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <dirent.h>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace halide;

namespace {

/// A two-stage stencil pipeline with a parallel tiled schedule — enough
/// structure to exercise internal allocations, nested parallel loops, and
/// per-schedule lowering, while staying fast enough to serve many frames.
struct ServePipe {
  ImageParam In;
  Var x{"x"}, y{"y"};
  Func Stage, Out;

  explicit ServePipe(const std::string &Tag, int Variant = 0)
      : In(Float(32), 2, Tag + "_in"), Stage(Tag + "_stage"),
        Out(Tag + "_out") {
    auto InC = [&](Expr X, Expr Y) {
      return In(clamp(X, 0, In.width() - 1), clamp(Y, 0, In.height() - 1));
    };
    Stage(x, y) = InC(x - 1, y) + InC(x, y) * 2.0f + InC(x + 1, y);
    Out(x, y) = Stage(x, y - 1) + Stage(x, y + 1) + float(Variant);
    switch (Variant) {
    case 0:
      Stage.computeRoot().parallel(y);
      Out.parallel(y);
      break;
    case 1: {
      Var xo("xo"), yo("yo"), xi("xi"), yi("yi");
      Out.tile(x, y, xo, yo, xi, yi, 16, 8).parallel(yo);
      Stage.computeAt(Out, xo);
      break;
    }
    default:
      Stage.computeRoot();
      break;
    }
  }
};

Buffer<float> makeInput(int W, int H) {
  Buffer<float> In(W, H);
  In.fill([](int X, int Y) { return float((X * 7 + Y * 13) % 51) * 0.25f; });
  return In;
}

// Stats comparison rides on ExecutionStats::operator== (the determinism
// contract lives in runtime/Tracing.h, shared with the differential
// harness and the parity tests).

int countJitTempDirs() {
  int Count = 0;
  if (DIR *D = opendir("/tmp")) {
    while (const dirent *E = readdir(D))
      if (std::string(E->d_name).rfind("hl_jit_", 0) == 0)
        ++Count;
    closedir(D);
  }
  return Count;
}

} // namespace

TEST(ServingTest, ConcurrentFramesOfOnePipelineMatchSequential) {
  const int W = 64, H = 48, Frames = 6;
  ServePipe P("srv_one");
  Buffer<float> Input = makeInput(W, H);
  ParamBindings Params;
  Params.bind(P.In.name(), Input);
  Pipeline Pipe(P.Out);

  Buffer<float> Ref(W, H);
  ExecutionStats RefStats =
      Pipe.realize(Ref, Params, Target::vm());

  std::vector<Buffer<float>> Outs;
  for (int F = 0; F < Frames; ++F)
    Outs.emplace_back(W, H);
  std::vector<FrameFuture> Futures;
  for (int F = 0; F < Frames; ++F)
    Futures.push_back(
        Pipe.realizeAsync(Outs[size_t(F)], Params, Target::vm(), F % 3));
  for (int F = 0; F < Frames; ++F) {
    ExecutionStats S = Futures[size_t(F)].wait();
    EXPECT_TRUE(Futures[size_t(F)].done());
    EXPECT_EQ(S, RefStats) << "frame " << F;
    for (int Y = 0; Y < H; ++Y)
      for (int X = 0; X < W; ++X)
        ASSERT_EQ(Outs[size_t(F)](X, Y), Ref(X, Y))
            << "frame " << F << " at (" << X << "," << Y << ")";
  }
}

TEST(ServingTest, ConcurrentFramesOfDifferentPipelinesMatchSequential) {
  const int W = 48, H = 32, Variants = 3;
  Buffer<float> Input = makeInput(W, H);

  std::vector<std::unique_ptr<ServePipe>> Pipes;
  std::vector<Buffer<float>> Refs, Outs;
  std::vector<ExecutionStats> RefStats;
  std::vector<ParamBindings> Bindings;
  for (int V = 0; V < Variants; ++V) {
    Pipes.push_back(std::make_unique<ServePipe>(
        "srv_mix" + std::to_string(V), V));
    ParamBindings PB;
    PB.bind(Pipes.back()->In.name(), Input);
    Bindings.push_back(PB);
    Refs.emplace_back(W, H);
    RefStats.push_back(Pipeline(Pipes.back()->Out)
                           .realize(Refs.back(), PB, Target::vm()));
    Outs.emplace_back(W, H);
  }

  // All three pipelines' frames in flight at once, mixed priorities.
  std::vector<FrameFuture> Futures;
  for (int V = 0; V < Variants; ++V)
    Futures.push_back(Pipeline(Pipes[size_t(V)]->Out)
                          .realizeAsync(Outs[size_t(V)],
                                        Bindings[size_t(V)], Target::vm(),
                                        (Variants - V) % 2));
  for (int V = 0; V < Variants; ++V) {
    ExecutionStats S = Futures[size_t(V)].wait();
    EXPECT_EQ(S, RefStats[size_t(V)]) << "variant " << V;
    for (int Y = 0; Y < H; ++Y)
      for (int X = 0; X < W; ++X)
        ASSERT_EQ(Outs[size_t(V)](X, Y), Refs[size_t(V)](X, Y))
            << "variant " << V << " at (" << X << "," << Y << ")";
  }
}

TEST(ServingTest, SteadyStateServingAllocatesNothingFresh) {
  const int W = 64, H = 48;
  ServePipe P("srv_pool");
  Buffer<float> Input = makeInput(W, H);
  ParamBindings Params;
  Params.bind(P.In.name(), Input);
  Pipeline Pipe(P.Out);
  Buffer<float> Out(W, H);

  // Warm up: compile, and let the pool learn this frame shape's blocks.
  for (int F = 0; F < 3; ++F)
    Pipe.realize(Out, Params, Target::vm());

  const BufferPoolStats Before = bufferPoolStats();
  for (int F = 0; F < 8; ++F)
    Pipe.realize(Out, Params, Target::vm());
  const BufferPoolStats After = bufferPoolStats();

  // Every internal allocation of the steady-state frames was served from
  // the pool: zero fresh system allocations, and the hits prove the pool
  // (not the absence of allocations) is what made that true.
  EXPECT_EQ(After.FreshAllocations - Before.FreshAllocations, 0);
  EXPECT_GT(After.PoolHits - Before.PoolHits, 0);
}

TEST(ServingTest, QueuedJobsRunHighestPriorityFirstThenFifo) {
  // On a one-thread pool there are no workers, so nothing runs until the
  // first wait() starts helping — which makes the pickup order exactly
  // observable: priority descending, submission order within a priority.
  const int Before = taskSchedulerThreads();
  setTaskSchedulerThreads(1);
  std::mutex M;
  std::vector<int> Order;
  auto note = [&](int Id) {
    std::lock_guard<std::mutex> Lock(M);
    Order.push_back(Id);
  };
  AsyncJob A = submitAsyncJob([&] { note(0); }, 0);
  AsyncJob B = submitAsyncJob([&] { note(1); }, 5);
  AsyncJob C = submitAsyncJob([&] { note(2); }, 5);
  AsyncJob D = submitAsyncJob([&] { note(3); }, -1);
  EXPECT_TRUE(A.valid());
  A.wait();
  B.wait();
  C.wait();
  D.wait();
  EXPECT_TRUE(A.done() && B.done() && C.done() && D.done());
  ASSERT_EQ(Order.size(), 4u);
  EXPECT_EQ(Order[0], 1); // highest priority first
  EXPECT_EQ(Order[1], 2); // FIFO among equal priorities
  EXPECT_EQ(Order[2], 0);
  EXPECT_EQ(Order[3], 3); // lowest priority last
  setTaskSchedulerThreads(Before);
}

TEST(ServingTest, ResizeDrainsQueuedAsyncJobs) {
  // A resize must execute (not orphan) jobs still sitting in the queue —
  // on a one-thread pool there is nobody else to run them.
  const int Before = taskSchedulerThreads();
  setTaskSchedulerThreads(1);
  std::atomic<int> Ran{0};
  AsyncJob A = submitAsyncJob([&] { Ran.fetch_add(1); });
  AsyncJob B = submitAsyncJob([&] { Ran.fetch_add(1); });
  setTaskSchedulerThreads(2);
  EXPECT_EQ(Ran.load(), 2);
  EXPECT_TRUE(A.done() && B.done());
  setTaskSchedulerThreads(Before);
}

TEST(ServingTest, JitLeavesNoTempDirsBehind) {
  const int Before = countJitTempDirs();
  ServePipe P("srv_jit");
  Buffer<float> Input = makeInput(32, 24);
  ParamBindings Params;
  Params.bind(P.In.name(), Input);
  Buffer<float> Out(32, 24);
  Pipeline(P.Out).realize(Out, Params,
                          Target::jit().withJitFlags("-O0"));
  EXPECT_EQ(countJitTempDirs(), Before);
}

TEST(CompileStampedeTest, StampedeCompilesOnceAndHitsNMinusOne) {
  // N threads race to compile the same fingerprint on the (slow) JIT
  // backend: exactly one lowering and one host-compiler run may happen;
  // the other N-1 requests must wait on the entry's latch and count as
  // cache hits — and every thread must get a working executable.
  const int N = 8;
  ServePipe P("srv_stampede");
  Pipeline Pipe(P.Out);
  const Target T = Target::jit().withJitFlags("-O0");

  const CompileCounters Before = Pipeline::compileCounters();
  std::vector<std::shared_ptr<const Executable>> Exes;
  Exes.resize(size_t(N));
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      while (!Go.load())
        std::this_thread::yield();
      Exes[size_t(I)] = Pipe.compile(T);
    });
  Go.store(true);
  for (std::thread &Th : Threads)
    Th.join();

  const CompileCounters After = Pipeline::compileCounters();
  EXPECT_EQ(After.Lowerings - Before.Lowerings, 1);
  EXPECT_EQ(After.BackendCompiles - Before.BackendCompiles, 1);
  EXPECT_EQ(After.CacheHits - Before.CacheHits, N - 1);
  for (int I = 0; I < N; ++I) {
    ASSERT_NE(Exes[size_t(I)], nullptr) << "thread " << I;
    EXPECT_EQ(Exes[size_t(I)], Exes[0]) << "thread " << I;
  }

  // The artifact the stampede produced actually runs.
  Buffer<float> Input = makeInput(32, 24);
  ParamBindings Params;
  Params.bind(P.In.name(), Input);
  Buffer<float> Out(32, 24);
  Params.bind(P.Out.name(), Out);
  EXPECT_EQ(Exes[0]->run(Params), 0);
}

TEST(CompileStampedeTest, UnrelatedPipelinesCompileIndependently) {
  // Two different fingerprints from interleaved threads: each compiles
  // exactly once, and neither stampede's waiters block the other's
  // compile from completing (the latches are per-entry).
  const int PerPipe = 3;
  ServePipe A("srv_indep_a", 0), B("srv_indep_b", 1);
  Pipeline PipeA(A.Out), PipeB(B.Out);
  const Target T = Target::vm();

  const CompileCounters Before = Pipeline::compileCounters();
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  for (int I = 0; I < PerPipe; ++I) {
    Threads.emplace_back([&] {
      while (!Go.load())
        std::this_thread::yield();
      PipeA.compile(T);
    });
    Threads.emplace_back([&] {
      while (!Go.load())
        std::this_thread::yield();
      PipeB.compile(T);
    });
  }
  Go.store(true);
  for (std::thread &Th : Threads)
    Th.join();

  const CompileCounters After = Pipeline::compileCounters();
  EXPECT_EQ(After.Lowerings - Before.Lowerings, 2);
  EXPECT_EQ(After.BackendCompiles - Before.BackendCompiles, 2);
  EXPECT_EQ(After.CacheHits - Before.CacheHits, 2 * (PerPipe - 1));
}
