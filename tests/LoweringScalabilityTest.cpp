//===-- tests/LoweringScalabilityTest.cpp - Polynomial lowering --------------===//
//
// Guards the graph-structured bounds inference (ISSUE 4): lowering a deep
// pyramid with per-stage splits must grow polynomially in pyramid depth,
// in both IR size and wall time. Before bounds inference shared its
// subexpressions, both grew exponentially (~5x per level), and the paper's
// 8-level local Laplacian under its simulated-GPU schedule could not be
// lowered at all. These tests lower that exact workload at depths 2/4/6/8
// and fail loudly if the blowup ever returns; the CMakeLists TIMEOUT on
// this suite cuts a reintroduced exponential off long before it would
// finish.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "ir/IRVisitor.h"
#include "transforms/Lower.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <ctime>
#include <map>

using namespace halide;

namespace {

struct LoweringCost {
  size_t Nodes = 0;
  double CpuMs = 0;
};

/// Lowers the paper's local Laplacian at the given pyramid depth under the
/// simulated-GPU schedule (computeRoot everywhere, every 2-D+ stage
/// gpu-tiled 8x8 — the per-stage splits that used to amplify the bounds
/// trees) and reports IR size and lowering cost. Cost is process CPU
/// time, not wall time: this suite runs in the parallel fast CTest job,
/// where wall clocks measure machine load, not the compiler.
LoweringCost lowerPyramidAtDepth(int Depth) {
  App A = makeLocalLaplacianApp(Depth);
  A.ScheduleGpu();
  std::clock_t Start = std::clock();
  LoweredPipeline P = lower(A.Output.function(), Target::gpuSim());
  std::clock_t End = std::clock();
  LoweringCost Cost;
  Cost.Nodes = countIRNodes(P.Body);
  Cost.CpuMs = 1000.0 * double(End - Start) / CLOCKS_PER_SEC;
  return Cost;
}

} // namespace

TEST(LoweringScalabilityTest, DeepPyramidGrowsPolynomially) {
  std::map<int, LoweringCost> Costs;
  for (int Depth : {2, 4, 6, 8})
    Costs[Depth] = lowerPyramidAtDepth(Depth);

  for (const auto &[Depth, Cost] : Costs) {
    SCOPED_TRACE("depth " + std::to_string(Depth));
    ASSERT_GT(Cost.Nodes, 0u);
    // Cubic envelope with a generous constant: at the exponential
    // trajectory the seed exhibited (~5x per level), depth 8 sat around
    // 60x over this bound, so the margin distinguishes regimes, not
    // constants. Measured values are ~230 * depth^3 after sharing.
    EXPECT_LT(Cost.Nodes, size_t(1000) * Depth * Depth * Depth)
        << "IR node count is no longer polynomial in pyramid depth";
  }

  // Exponential growth means ~25x more IR from depth 4 to depth 8 per
  // doubling of the remaining levels; the shared-bounds pipeline measures
  // ~8x. A factor-10 ceiling keeps the regime check robust to schedule
  // tweaks while still failing fast on any return of the blowup.
  EXPECT_LT(Costs[8].Nodes, 10 * Costs[4].Nodes)
      << "depth-8 IR is super-polynomially larger than depth-4 IR";

  // Time trend check on CPU time (immune to CI load), distinguishing
  // regimes rather than constants: shared-bounds lowering measures ~2 s
  // of CPU at depth 8; the exponential trajectory took over half an hour
  // even on fast hardware. The node-count envelopes above catch a
  // regression deterministically; this catches a time-only blowup (e.g.
  // quadratic re-walks) long before the CTest TIMEOUT would.
  EXPECT_LT(Costs[8].CpuMs, 30000.0)
      << "depth-8 lowering no longer completes in interactive time";
  EXPECT_LT(Costs[8].CpuMs, 100.0 * std::max(Costs[4].CpuMs, 100.0))
      << "depth-8 lowering time is super-polynomially above depth-4";
}

TEST(LoweringScalabilityTest, TunedScheduleStaysPolynomialToo) {
  // The tuned (CPU) schedule splits less aggressively but walks the same
  // 99-stage graph; keep it covered so the guard is not GPU-specific.
  std::map<int, size_t> Nodes;
  for (int Depth : {4, 8}) {
    App A = makeLocalLaplacianApp(Depth);
    A.ScheduleTuned();
    LoweredPipeline P = lower(A.Output.function(), Target::jit());
    Nodes[Depth] = countIRNodes(P.Body);
    ASSERT_GT(Nodes[Depth], 0u);
  }
  EXPECT_LT(Nodes[8], 10 * Nodes[4]);
}
