//===-- codegen/Interpreter.cpp --------------------------------------------------=//

#include "codegen/Interpreter.h"
#include "analysis/Scope.h"
#include "ir/IROperators.h"
#include "ir/IRPrinter.h"
#include "observe/Profiler.h"
#include "observe/TraceStream.h"

#include <cmath>
#include <cstring>

using namespace halide;

namespace {

/// A runtime value: one slot per vector lane. Integers (and booleans) live
/// in I with their type's wrapping applied; floats live in F.
struct Value {
  Type T;
  std::vector<int64_t> I;
  std::vector<double> F;

  int lanes() const { return T.Lanes; }
  bool isFloat() const { return T.isFloat(); }

  static Value intVal(Type T, int64_t V) {
    Value Result;
    Result.T = T;
    Result.I.assign(size_t(T.Lanes), wrapToType(V, T.element()));
    return Result;
  }
  static Value floatVal(Type T, double V) {
    Value Result;
    Result.T = T;
    Result.F.assign(size_t(T.Lanes), V);
    return Result;
  }

  int64_t scalarInt() const {
    internal_assert(T.isScalar() && !isFloat());
    return I[0];
  }
};

/// An executable buffer: pipeline boundary buffers alias caller storage;
/// internal allocations own their storage.
struct BufferSlot {
  void *Data = nullptr;
  Type ElemType;
  int64_t SizeElems = 0; // for bounds checking; 0 = unknown (skip check)
  bool Owned = false;
  /// Per-element op index of the last store, when reuse tracking is on.
  std::shared_ptr<std::vector<int64_t>> LastStoreOp;
};

class Interp {
public:
  Interp(const LoweredPipeline &P, const ParamBindings &Params,
         const InterpOptions &Opts)
      : P(P), Params(Params), Opts(Opts) {}

  ExecutionStats run() {
    // Bind boundary buffers.
    for (const BufferArg &Arg : P.Buffers) {
      const RawBuffer &Raw = Params.buffer(Arg.Name);
      user_assert(Raw.defined()) << "buffer " << Arg.Name << " is undefined";
      user_assert(Raw.ElemType == Arg.ElemType)
          << "buffer " << Arg.Name << " has element type "
          << Raw.ElemType.str() << ", pipeline expects "
          << Arg.ElemType.str();
      user_assert(Raw.Dim[0].Stride == 1)
          << "buffer " << Arg.Name
          << " must be dense in dimension 0 (stride 1)";
      BufferSlot Slot;
      Slot.Data = Raw.Host;
      Slot.ElemType = Raw.ElemType;
      int64_t MaxIndex = 0;
      for (int D = 0; D < Raw.Dimensions; ++D)
        MaxIndex += int64_t(Raw.Dim[D].Extent - 1) * Raw.Dim[D].Stride;
      Slot.SizeElems = MaxIndex + 1;
      if (Opts.TrackReuseDistance)
        Slot.LastStoreOp = std::make_shared<std::vector<int64_t>>(
            size_t(Slot.SizeElems), int64_t(-1));
      Buffers.push(Arg.Name, Slot);
    }
    exec(P.Body);
    return Stats;
  }

private:
  //===------------------------------------------------------------------===//
  // Expression evaluation
  //===------------------------------------------------------------------===//

  Value eval(const Expr &E) {
    switch (E->Kind) {
    case IRNodeKind::IntImm:
      return Value::intVal(E.type(), E.as<IntImm>()->Value);
    case IRNodeKind::UIntImm:
      return Value::intVal(E.type(), int64_t(E.as<UIntImm>()->Value));
    case IRNodeKind::FloatImm:
      return Value::floatVal(E.type(), E.as<FloatImm>()->Value);
    case IRNodeKind::StringImm:
      internal_error << "cannot evaluate string immediate";
      return Value();
    case IRNodeKind::Cast:
      return evalCast(E.as<Cast>());
    case IRNodeKind::Variable:
      return evalVariable(E.as<Variable>());
    case IRNodeKind::Add:
      return evalBinary(E.as<Add>()->A, E.as<Add>()->B, OpKind::Add);
    case IRNodeKind::Sub:
      return evalBinary(E.as<Sub>()->A, E.as<Sub>()->B, OpKind::Sub);
    case IRNodeKind::Mul:
      return evalBinary(E.as<Mul>()->A, E.as<Mul>()->B, OpKind::Mul);
    case IRNodeKind::Div:
      return evalBinary(E.as<Div>()->A, E.as<Div>()->B, OpKind::Div);
    case IRNodeKind::Mod:
      return evalBinary(E.as<Mod>()->A, E.as<Mod>()->B, OpKind::Mod);
    case IRNodeKind::Min:
      return evalBinary(E.as<Min>()->A, E.as<Min>()->B, OpKind::Min);
    case IRNodeKind::Max:
      return evalBinary(E.as<Max>()->A, E.as<Max>()->B, OpKind::Max);
    case IRNodeKind::EQ:
      return evalCompare(E.as<EQ>()->A, E.as<EQ>()->B, OpKind::EQ);
    case IRNodeKind::NE:
      return evalCompare(E.as<NE>()->A, E.as<NE>()->B, OpKind::NE);
    case IRNodeKind::LT:
      return evalCompare(E.as<LT>()->A, E.as<LT>()->B, OpKind::LT);
    case IRNodeKind::LE:
      return evalCompare(E.as<LE>()->A, E.as<LE>()->B, OpKind::LE);
    case IRNodeKind::GT:
      return evalCompare(E.as<GT>()->A, E.as<GT>()->B, OpKind::GT);
    case IRNodeKind::GE:
      return evalCompare(E.as<GE>()->A, E.as<GE>()->B, OpKind::GE);
    case IRNodeKind::And:
      return evalCompare(E.as<And>()->A, E.as<And>()->B, OpKind::And);
    case IRNodeKind::Or:
      return evalCompare(E.as<Or>()->A, E.as<Or>()->B, OpKind::Or);
    case IRNodeKind::Not: {
      Value A = eval(E.as<Not>()->A);
      for (int64_t &L : A.I)
        L = !L;
      return A;
    }
    case IRNodeKind::Select:
      return evalSelect(E.as<Select>());
    case IRNodeKind::Load:
      return evalLoad(E.as<Load>());
    case IRNodeKind::Ramp:
      return evalRamp(E.as<Ramp>());
    case IRNodeKind::Broadcast:
      return evalBroadcast(E.as<Broadcast>());
    case IRNodeKind::Call:
      return evalCall(E.as<Call>());
    case IRNodeKind::Let: {
      const Let *L = E.as<Let>();
      ScopedBinding<Value> Bind(Vars, L->Name, eval(L->Value));
      return eval(L->Body);
    }
    default:
      internal_error << "interpreter: statement kind in expression position";
      return Value();
    }
  }

  enum class OpKind { Add, Sub, Mul, Div, Mod, Min, Max, EQ, NE, LT, LE,
                      GT, GE, And, Or };

  Value evalBinary(const Expr &AE, const Expr &BE, OpKind Op) {
    Value A = eval(AE), B = eval(BE);
    internal_assert(A.T == B.T) << "interpreter: binary type mismatch";
    Value R;
    R.T = A.T;
    if (A.isFloat()) {
      R.F.resize(A.F.size());
      for (size_t L = 0; L < A.F.size(); ++L) {
        double X = A.F[L], Y = B.F[L];
        double Z = 0;
        switch (Op) {
        case OpKind::Add:
          Z = X + Y;
          break;
        case OpKind::Sub:
          Z = X - Y;
          break;
        case OpKind::Mul:
          Z = X * Y;
          break;
        case OpKind::Div:
          Z = X / Y;
          break;
        case OpKind::Mod:
          Z = X - std::floor(X / Y) * Y;
          break;
        case OpKind::Min:
          Z = X < Y ? X : Y;
          break;
        case OpKind::Max:
          Z = X > Y ? X : Y;
          break;
        default:
          internal_error << "float compare routed to evalBinary";
        }
        // Arithmetic on Float(32) rounds through single precision, matching
        // compiled code.
        R.F[L] = A.T.Bits == 32 ? double(float(Z)) : Z;
      }
      return R;
    }
    R.I.resize(A.I.size());
    Type Elem = A.T.element();
    for (size_t L = 0; L < A.I.size(); ++L) {
      int64_t X = A.I[L], Y = B.I[L];
      int64_t Z = 0;
      switch (Op) {
      case OpKind::Add:
        Z = X + Y;
        break;
      case OpKind::Sub:
        Z = X - Y;
        break;
      case OpKind::Mul:
        Z = X * Y;
        break;
      case OpKind::Div:
        Z = Elem.isUInt() ? (Y == 0 ? 0 : int64_t(uint64_t(X) / uint64_t(Y)))
                          : floorDiv(X, Y);
        break;
      case OpKind::Mod:
        Z = Elem.isUInt() ? (Y == 0 ? 0 : int64_t(uint64_t(X) % uint64_t(Y)))
                          : floorMod(X, Y);
        break;
      case OpKind::Min:
        Z = Elem.isUInt() ? int64_t(std::min(uint64_t(X), uint64_t(Y)))
                          : std::min(X, Y);
        break;
      case OpKind::Max:
        Z = Elem.isUInt() ? int64_t(std::max(uint64_t(X), uint64_t(Y)))
                          : std::max(X, Y);
        break;
      default:
        internal_error << "compare routed to evalBinary";
      }
      R.I[L] = wrapToType(Z, Elem);
    }
    return R;
  }

  Value evalCompare(const Expr &AE, const Expr &BE, OpKind Op) {
    Value A = eval(AE), B = eval(BE);
    Value R;
    R.T = Bool(A.T.Lanes);
    size_t N = A.isFloat() ? A.F.size() : A.I.size();
    R.I.resize(N);
    for (size_t L = 0; L < N; ++L) {
      bool Z = false;
      if (A.isFloat()) {
        double X = A.F[L], Y = B.F[L];
        switch (Op) {
        case OpKind::EQ:
          Z = X == Y;
          break;
        case OpKind::NE:
          Z = X != Y;
          break;
        case OpKind::LT:
          Z = X < Y;
          break;
        case OpKind::LE:
          Z = X <= Y;
          break;
        case OpKind::GT:
          Z = X > Y;
          break;
        case OpKind::GE:
          Z = X >= Y;
          break;
        default:
          internal_error << "non-compare in evalCompare";
        }
      } else {
        bool IsUnsigned = A.T.isUInt() && !A.T.isBool();
        int64_t X = A.I[L], Y = B.I[L];
        switch (Op) {
        case OpKind::EQ:
          Z = X == Y;
          break;
        case OpKind::NE:
          Z = X != Y;
          break;
        case OpKind::LT:
          Z = IsUnsigned ? uint64_t(X) < uint64_t(Y) : X < Y;
          break;
        case OpKind::LE:
          Z = IsUnsigned ? uint64_t(X) <= uint64_t(Y) : X <= Y;
          break;
        case OpKind::GT:
          Z = IsUnsigned ? uint64_t(X) > uint64_t(Y) : X > Y;
          break;
        case OpKind::GE:
          Z = IsUnsigned ? uint64_t(X) >= uint64_t(Y) : X >= Y;
          break;
        case OpKind::And:
          Z = X && Y;
          break;
        case OpKind::Or:
          Z = X || Y;
          break;
        default:
          internal_error << "non-compare in evalCompare";
        }
      }
      R.I[L] = Z ? 1 : 0;
    }
    return R;
  }

  Value evalCast(const Cast *Op) {
    Value A = eval(Op->Value);
    Type To = Op->NodeType;
    Value R;
    R.T = To;
    int N = To.Lanes;
    if (To.isFloat()) {
      R.F.resize(size_t(N));
      for (int L = 0; L < N; ++L) {
        double V = A.isFloat() ? A.F[size_t(L)]
                   : A.T.isUInt() ? double(uint64_t(A.I[size_t(L)]))
                                  : double(A.I[size_t(L)]);
        R.F[size_t(L)] = To.Bits == 32 ? double(float(V)) : V;
      }
      return R;
    }
    R.I.resize(size_t(N));
    for (int L = 0; L < N; ++L) {
      int64_t V;
      if (A.isFloat())
        V = int64_t(A.F[size_t(L)]); // C truncation semantics
      else
        V = A.I[size_t(L)];
      R.I[size_t(L)] = wrapToType(V, To.element());
    }
    return R;
  }

  Value evalVariable(const Variable *Op) {
    if (Vars.contains(Op->Name))
      return Vars.get(Op->Name);
    double Scalar;
    if (Params.lookupScalar(Op->Name, &Scalar)) {
      if (Op->NodeType.isFloat())
        return Value::floatVal(Op->NodeType, Scalar);
      return Value::intVal(Op->NodeType, int64_t(Scalar));
    }
    internal_error << "interpreter: unbound variable " << Op->Name;
    return Value();
  }

  Value evalSelect(const Select *Op) {
    Value C = eval(Op->Condition);
    Value T = eval(Op->TrueValue);
    Value F = eval(Op->FalseValue);
    Value R;
    R.T = T.T;
    if (T.isFloat()) {
      R.F.resize(T.F.size());
      for (size_t L = 0; L < T.F.size(); ++L)
        R.F[L] = C.I[L] ? T.F[L] : F.F[L];
    } else {
      R.I.resize(T.I.size());
      for (size_t L = 0; L < T.I.size(); ++L)
        R.I[L] = C.I[L] ? T.I[L] : F.I[L];
    }
    return R;
  }

  Value evalRamp(const Ramp *Op) {
    Value Base = eval(Op->Base);
    Value Stride = eval(Op->Stride);
    Value R;
    R.T = Op->NodeType;
    R.I.resize(size_t(Op->Lanes));
    for (int L = 0; L < Op->Lanes; ++L)
      R.I[size_t(L)] =
          wrapToType(Base.I[0] + int64_t(L) * Stride.I[0], R.T.element());
    return R;
  }

  Value evalBroadcast(const Broadcast *Op) {
    Value V = eval(Op->Value);
    Value R;
    R.T = Op->NodeType;
    if (V.isFloat())
      R.F.assign(size_t(Op->Lanes), V.F[0]);
    else
      R.I.assign(size_t(Op->Lanes), V.I[0]);
    return R;
  }

  Value evalCall(const Call *Op) {
    if (Op->CallKind == CallType::Intrinsic) {
      if (Op->Name == Call::TracePoint)
        return Value::intVal(Int(32), 0);
      if (Op->Name == Call::ProfileStageStart ||
          Op->Name == Call::ProfileStageEnd) {
        // Reference path: re-intern the stage name per event (the VM and
        // JIT pre-resolve ids at compile time; the interpreter favors
        // simplicity over speed).
        const StringImm *Stage = Op->Args.at(0).as<StringImm>();
        internal_assert(Stage) << "profile marker without stage name";
        int Id = profilerStageId(Stage->Value);
        if (Op->Name == Call::ProfileStageStart)
          profilerEnter(Id);
        else
          profilerExit(Id);
        return Value::intVal(Int(32), 0);
      }
      if (Op->Name == Call::TraceLoad) {
        // Args: {StringImm(buffer), Load}. The index is evaluated once and
        // shared by the load and the event's coordinates.
        const StringImm *Buf = Op->Args.at(0).as<StringImm>();
        const Load *L = Op->Args.at(1).as<Load>();
        internal_assert(Buf && L) << "malformed trace_load";
        Value Index = eval(L->Index);
        Value R = evalLoadWithIndex(L, Index);
        emitAccessEvent(TraceEventKind::TraceLoad, Buf->Value, R, Index);
        return R;
      }
      if (Op->Name == Call::TraceStore) {
        // Args: {StringImm(buffer), Value, Index}. Same evaluation order
        // as an untraced Store: value first, then index.
        const StringImm *Buf = Op->Args.at(0).as<StringImm>();
        internal_assert(Buf) << "malformed trace_store";
        Value V = eval(Op->Args.at(1));
        Value Index = eval(Op->Args.at(2));
        doStore(Buf->Value, V, Index);
        emitAccessEvent(TraceEventKind::TraceStore, Buf->Value, V, Index);
        return Value::intVal(Int(32), 0);
      }
      if (Op->Name == Call::TraceBegin) {
        const StringImm *Buf = Op->Args.at(0).as<StringImm>();
        internal_assert(Buf) << "malformed trace_begin";
        std::vector<int32_t> Extents;
        for (size_t I = 1; I < Op->Args.size(); ++I)
          Extents.push_back(int32_t(eval(Op->Args[I]).scalarInt()));
        traceStreamEmit(profilerStageId(Buf->Value),
                        TraceEventKind::TraceBegin, 0, 0, Extents.data(),
                        int(Extents.size()), nullptr);
        return Value::intVal(Int(32), 0);
      }
      if (Op->Name == Call::TraceEnd) {
        const StringImm *Buf = Op->Args.at(0).as<StringImm>();
        internal_assert(Buf) << "malformed trace_end";
        traceStreamEmit(profilerStageId(Buf->Value),
                        TraceEventKind::TraceEnd, 0, 0, nullptr, 0, nullptr);
        return Value::intVal(Int(32), 0);
      }
      internal_error << "interpreter: unknown intrinsic " << Op->Name;
    }
    internal_assert(Op->CallKind == CallType::PureExtern)
        << "interpreter: unlowered call to " << Op->Name;
    std::vector<Value> Args;
    Args.reserve(Op->Args.size());
    for (const Expr &Arg : Op->Args)
      Args.push_back(eval(Arg));
    Value R;
    R.T = Op->NodeType;
    int N = R.T.Lanes;
    R.F.resize(size_t(N));
    bool Single = R.T.element().Bits == 32;
    auto Arg0 = [&](int L) { return Args[0].F[size_t(L)]; };
    for (int L = 0; L < N; ++L) {
      double V = 0;
      // Compute through the same precision path as the compiled code.
      if (Op->Name == "sqrt")
        V = Single ? std::sqrt(float(Arg0(L))) : std::sqrt(Arg0(L));
      else if (Op->Name == "sin")
        V = Single ? std::sin(float(Arg0(L))) : std::sin(Arg0(L));
      else if (Op->Name == "cos")
        V = Single ? std::cos(float(Arg0(L))) : std::cos(Arg0(L));
      else if (Op->Name == "exp")
        V = Single ? std::exp(float(Arg0(L))) : std::exp(Arg0(L));
      else if (Op->Name == "log")
        V = Single ? std::log(float(Arg0(L))) : std::log(Arg0(L));
      else if (Op->Name == "floor")
        V = std::floor(Arg0(L));
      else if (Op->Name == "ceil")
        V = std::ceil(Arg0(L));
      else if (Op->Name == "round")
        V = std::nearbyint(Arg0(L));
      else if (Op->Name == "pow")
        V = Single ? std::pow(float(Arg0(L)), float(Args[1].F[size_t(L)]))
                   : std::pow(Arg0(L), Args[1].F[size_t(L)]);
      else
        internal_error << "interpreter: unknown extern " << Op->Name;
      R.F[size_t(L)] = Single ? double(float(V)) : V;
    }
    return R;
  }

  //===------------------------------------------------------------------===//
  // Memory access
  //===------------------------------------------------------------------===//

  Value evalLoad(const Load *Op) {
    Value Index = eval(Op->Index);
    return evalLoadWithIndex(Op, Index);
  }

  Value evalLoadWithIndex(const Load *Op, const Value &Index) {
    const BufferSlot &Slot = Buffers.get(Op->Name);
    Value R;
    R.T = Op->NodeType;
    int N = R.T.Lanes;
    Stats.LoadsPerBuffer[Op->Name] += N;
    if (R.T.isFloat())
      R.F.resize(size_t(N));
    else
      R.I.resize(size_t(N));
    for (int L = 0; L < N; ++L) {
      int64_t Idx = Index.I[size_t(L)];
      checkBounds(Op->Name, Slot, Idx);
      loadElem(Slot, Idx, R, L);
      if (Slot.LastStoreOp) {
        int64_t &Stamp = (*Slot.LastStoreOp)[size_t(Idx)];
        if (Stamp >= 0) {
          int64_t Distance = OpCounter - Stamp;
          int64_t &MaxDist = Stats.MaxReuseDistance[Op->Name];
          if (Distance > MaxDist)
            MaxDist = Distance;
        }
        ++OpCounter;
      }
    }
    return R;
  }

  void loadElem(const BufferSlot &Slot, int64_t Idx, Value &R, int L) {
    const void *Base = Slot.Data;
    Type T = Slot.ElemType;
    switch (T.Bits) {
    case 1:
    case 8:
      if (T.isUInt())
        R.I[size_t(L)] = static_cast<const uint8_t *>(Base)[Idx];
      else
        R.I[size_t(L)] = static_cast<const int8_t *>(Base)[Idx];
      return;
    case 16:
      if (T.isUInt())
        R.I[size_t(L)] = static_cast<const uint16_t *>(Base)[Idx];
      else
        R.I[size_t(L)] = static_cast<const int16_t *>(Base)[Idx];
      return;
    case 32:
      if (T.isFloat())
        R.F[size_t(L)] = double(static_cast<const float *>(Base)[Idx]);
      else if (T.isUInt())
        R.I[size_t(L)] = static_cast<const uint32_t *>(Base)[Idx];
      else
        R.I[size_t(L)] = static_cast<const int32_t *>(Base)[Idx];
      return;
    case 64:
      if (T.isFloat())
        R.F[size_t(L)] = static_cast<const double *>(Base)[Idx];
      else
        R.I[size_t(L)] = static_cast<const int64_t *>(Base)[Idx];
      return;
    default:
      internal_error << "interpreter: unsupported element width " << T.Bits;
    }
  }

  void storeElem(const BufferSlot &Slot, int64_t Idx, const Value &V,
                 int L) {
    void *Base = Slot.Data;
    Type T = Slot.ElemType;
    switch (T.Bits) {
    case 1:
    case 8:
      static_cast<uint8_t *>(Base)[Idx] = uint8_t(V.I[size_t(L)]);
      return;
    case 16:
      static_cast<uint16_t *>(Base)[Idx] = uint16_t(V.I[size_t(L)]);
      return;
    case 32:
      if (T.isFloat())
        static_cast<float *>(Base)[Idx] = float(V.F[size_t(L)]);
      else
        static_cast<uint32_t *>(Base)[Idx] = uint32_t(V.I[size_t(L)]);
      return;
    case 64:
      if (T.isFloat())
        static_cast<double *>(Base)[Idx] = V.F[size_t(L)];
      else
        static_cast<uint64_t *>(Base)[Idx] = uint64_t(V.I[size_t(L)]);
      return;
    default:
      internal_error << "interpreter: unsupported element width " << T.Bits;
    }
  }

  void checkBounds(const std::string &Name, const BufferSlot &Slot,
                   int64_t Idx) {
    internal_assert(Idx >= 0 && (Slot.SizeElems == 0 || Idx < Slot.SizeElems))
        << "interpreter: access to " << Name << " at flat index " << Idx
        << " outside [0, " << Slot.SizeElems << ")";
  }

  /// The store path shared by Store statements and trace_store intrinsics
  /// (value and index already evaluated, in that order).
  void doStore(const std::string &Name, const Value &V, const Value &Index) {
    const BufferSlot &Slot = Buffers.get(Name);
    int N = V.T.Lanes;
    Stats.StoresPerBuffer[Name] += N;
    for (int L = 0; L < N; ++L) {
      int64_t Idx = Index.I[size_t(L)];
      checkBounds(Name, Slot, Idx);
      storeElem(Slot, Idx, V, L);
      if (Slot.LastStoreOp) {
        (*Slot.LastStoreOp)[size_t(Idx)] = OpCounter;
        ++OpCounter;
      }
    }
  }

  /// Emits one load/store trace event: one flat coordinate and one
  /// normalized value word per lane (see TraceStream.h).
  void emitAccessEvent(TraceEventKind Kind, const std::string &Buf,
                       const Value &V, const Value &Index) {
    if (!traceStreamActive())
      return;
    int N = V.T.Lanes;
    std::vector<int32_t> Coords(size_t(N), 0);
    std::vector<uint64_t> Bits(size_t(N), 0);
    for (int L = 0; L < N; ++L) {
      Coords[size_t(L)] = int32_t(Index.I[size_t(L)]);
      Bits[size_t(L)] = V.isFloat() ? traceBitsOfDouble(V.F[size_t(L)])
                                    : traceBitsOfInt(V.I[size_t(L)]);
    }
    traceStreamEmit(profilerStageId(Buf), Kind, traceTypeCode(V.T), N,
                    Coords.data(), N, Bits.data());
  }

  //===------------------------------------------------------------------===//
  // Statement execution
  //===------------------------------------------------------------------===//

  void exec(const Stmt &S) {
    switch (S->Kind) {
    case IRNodeKind::LetStmt: {
      const LetStmt *Op = S.as<LetStmt>();
      ScopedBinding<Value> Bind(Vars, Op->Name, eval(Op->Value));
      exec(Op->Body);
      return;
    }
    case IRNodeKind::AssertStmt: {
      const AssertStmt *Op = S.as<AssertStmt>();
      Value C = eval(Op->Condition);
      user_assert(C.I[0]) << "pipeline assertion failed: " << Op->Message;
      return;
    }
    case IRNodeKind::ProducerConsumer:
      exec(S.as<ProducerConsumer>()->Body);
      return;
    case IRNodeKind::For:
      execFor(S.as<For>());
      return;
    case IRNodeKind::Store: {
      const Store *Op = S.as<Store>();
      Value V = eval(Op->Value);
      Value Index = eval(Op->Index);
      doStore(Op->Name, V, Index);
      return;
    }
    case IRNodeKind::Allocate:
      execAllocate(S.as<Allocate>());
      return;
    case IRNodeKind::Block:
      exec(S.as<Block>()->First);
      exec(S.as<Block>()->Rest);
      return;
    case IRNodeKind::IfThenElse: {
      const IfThenElse *Op = S.as<IfThenElse>();
      Value C = eval(Op->Condition);
      if (C.I[0])
        exec(Op->ThenCase);
      else if (Op->ElseCase.defined())
        exec(Op->ElseCase);
      return;
    }
    case IRNodeKind::Evaluate:
      eval(S.as<Evaluate>()->Value);
      return;
    case IRNodeKind::Provide:
    case IRNodeKind::Realize:
      internal_error << "interpreter: unflattened "
                     << (S->Kind == IRNodeKind::Provide ? "Provide"
                                                        : "Realize");
      return;
    default:
      internal_error << "interpreter: expression kind in statement position";
    }
  }

  void execFor(const For *Op) {
    Value MinV = eval(Op->MinExpr);
    Value ExtentV = eval(Op->Extent);
    int64_t Min = MinV.scalarInt();
    int64_t Extent = ExtentV.scalarInt();
    internal_assert(Op->Kind != ForType::Vectorized &&
                    Op->Kind != ForType::Unrolled)
        << "interpreter: unlowered " << forTypeName(Op->Kind) << " loop";
    if (isParallelForType(Op->Kind))
      Stats.ParallelIterations += Extent;
    for (int64_t I = 0; I < Extent; ++I) {
      ScopedBinding<Value> Bind(Vars, Op->Name,
                                Value::intVal(Int(32), Min + I));
      exec(Op->Body);
    }
  }

  void execAllocate(const Allocate *Op) {
    int64_t Elems = 1;
    for (const Expr &E : Op->Extents)
      Elems *= eval(E).scalarInt();
    internal_assert(Elems >= 0) << "negative allocation size for "
                                << Op->Name;
    int64_t Bytes = Elems * Op->ElemType.bytes();
    BufferSlot Slot;
    Slot.Data = halideMalloc(Bytes);
    internal_assert(Slot.Data) << "allocation of " << Bytes
                               << " bytes failed for " << Op->Name;
    Slot.ElemType = Op->ElemType;
    Slot.SizeElems = Elems;
    Slot.Owned = true;
    if (Opts.TrackReuseDistance)
      Slot.LastStoreOp = std::make_shared<std::vector<int64_t>>(
          size_t(Elems), int64_t(-1));
    Stats.noteAllocation(Bytes);
    Buffers.push(Op->Name, Slot);
    exec(Op->Body);
    Buffers.pop(Op->Name);
    Stats.noteFree(Bytes);
    halideFree(Slot.Data);
  }

  const LoweredPipeline &P;
  const ParamBindings &Params;
  InterpOptions Opts;
  Scope<Value> Vars;
  Scope<BufferSlot> Buffers;
  ExecutionStats Stats;
  int64_t OpCounter = 0;
};

} // namespace

ExecutionStats halide::interpret(const LoweredPipeline &P,
                                 const ParamBindings &Params,
                                 const InterpOptions &Opts) {
  Interp I(P, Params, Opts);
  return I.run();
}
