//===-- codegen/Jit.h - Compile-and-load native pipelines -------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JIT execution of lowered pipelines: the C backend's output is compiled
/// with the host C compiler into a shared object and loaded with dlopen
/// (DESIGN.md substitution 1 for the paper's LLVM JIT). The entry point
/// receives the runtime vtable, so the shared object is self-contained.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_CODEGEN_JIT_H
#define HALIDE_CODEGEN_JIT_H

#include "runtime/Runtime.h"
#include "transforms/Lower.h"

#include <memory>
#include <string>

namespace halide {

/// A natively compiled pipeline, ready to run.
class CompiledPipeline {
public:
  CompiledPipeline() = default;

  bool valid() const { return Fn != nullptr; }

  /// Executes the pipeline. All buffers (output and inputs) and scalar
  /// parameters must be bound in \p Params. Returns the pipeline's exit
  /// code (0 on success).
  int run(const ParamBindings &Params) const;

  /// The generated C source (for inspection and tests).
  const std::string &source() const { return Source; }

private:
  friend CompiledPipeline jitCompile(const LoweredPipeline &,
                                     const std::string &);

  using EntryPoint = int32_t (*)(const RuntimeVTable *, void **,
                                 const int64_t *, const double *);

  std::shared_ptr<void> Handle; // dlopen handle, closed on destruction
  EntryPoint Fn = nullptr;
  std::string Source;
  // Argument signature (copied from the LoweredPipeline).
  std::vector<BufferArg> Buffers;
  std::vector<ScalarArg> Scalars;
};

/// Emits C for \p P, compiles it with the host compiler, and loads it.
/// Aborts (user_error) if the host compiler fails.
CompiledPipeline jitCompile(const LoweredPipeline &P,
                            const std::string &ExtraFlags = "");

} // namespace halide

#endif // HALIDE_CODEGEN_JIT_H
