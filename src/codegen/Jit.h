//===-- codegen/Jit.h - Compile-and-load native pipelines -------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JIT execution of lowered pipelines: the C backend's output is compiled
/// with the host C compiler into a shared object and loaded with dlopen
/// (DESIGN.md substitution 1 for the paper's LLVM JIT). The entry point
/// receives the runtime vtable, so the shared object is self-contained.
/// CompiledPipeline implements the common Executable interface; a GpuSim
/// Target shares the same native path but reports the simulated device's
/// launch statistics through ExecutionStats.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_CODEGEN_JIT_H
#define HALIDE_CODEGEN_JIT_H

#include "codegen/Executable.h"

#include <memory>
#include <string>

namespace halide {

/// A natively compiled pipeline, ready to run.
class CompiledPipeline final : public Executable {
public:
  /// Executes the pipeline; all buffers and scalars must be bound in
  /// \p Params. Returns the pipeline's exit code (0 on success). On a
  /// GpuSim target, \p Stats receives the run's kernel-launch counters.
  int run(const ParamBindings &Params,
          ExecutionStats *Stats = nullptr) const override;

  /// The generated C source (for inspection and tests).
  const std::string &source() const override { return Source; }

private:
  friend std::shared_ptr<CompiledPipeline> jitCompile(const LoweredPipeline &,
                                                      const Target &);

  CompiledPipeline(LoweredPipeline P, Target T)
      : Executable(std::move(P), std::move(T)) {}

  using EntryPoint = int32_t (*)(const RuntimeVTable *, void **,
                                 const int64_t *, const double *);

  std::shared_ptr<void> Handle; // dlopen handle, closed on destruction
  EntryPoint Fn = nullptr;
  std::string Source;
};

/// Emits C for \p P, compiles it with the host compiler (appending
/// \p T.JitFlags to the command line), and loads it. Aborts (user_error)
/// if the host compiler fails.
std::shared_ptr<CompiledPipeline> jitCompile(const LoweredPipeline &P,
                                             const Target &T = Target::jit());

} // namespace halide

#endif // HALIDE_CODEGEN_JIT_H
