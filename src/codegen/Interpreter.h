//===-- codegen/Interpreter.h - Reference backend ---------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct tree-walking executor for lowered pipeline statements. It is
/// the semantic reference the C backend is differentially tested against,
/// and it gathers execution statistics (stores per buffer, peak memory,
/// parallel iterations) that the tests and Figure-3 benchmarks use to
/// observe work amplification and storage folding. Execution is serial and
/// deterministic; parallel loop types are counted, not threaded.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_CODEGEN_INTERPRETER_H
#define HALIDE_CODEGEN_INTERPRETER_H

#include "runtime/Runtime.h"
#include "runtime/Tracing.h"
#include "transforms/Lower.h"

namespace halide {

/// Options controlling interpretation.
struct InterpOptions {
  /// Track the operation distance between each store and the loads that
  /// reuse it (Figure 3's locality measure). Adds per-element bookkeeping.
  bool TrackReuseDistance = false;
};

/// Executes a lowered pipeline against concrete parameter bindings,
/// returning execution statistics. Aborts (via user_error) on failed
/// pipeline assertions or out-of-bounds accesses.
ExecutionStats interpret(const LoweredPipeline &P,
                         const ParamBindings &Params,
                         const InterpOptions &Opts = InterpOptions());

} // namespace halide

#endif // HALIDE_CODEGEN_INTERPRETER_H
