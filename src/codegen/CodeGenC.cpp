//===-- codegen/CodeGenC.cpp -----------------------------------------------------=//

#include "codegen/CodeGenC.h"
#include "analysis/Scope.h"
#include "ir/IROperators.h"
#include "ir/IRVisitor.h"
#include "observe/Profiler.h"
#include "observe/TraceStream.h"
#include "runtime/Buffer.h"

#include <map>
#include <set>
#include <sstream>

using namespace halide;

int halide::bufferMetadataSlots() { return 3 * MaxBufferDims; }

namespace {

/// C type of a scalar IR type.
std::string scalarCType(Type T) {
  if (T.isFloat())
    return T.Bits == 32 ? "float" : "double";
  if (T.isHandle())
    return "void*";
  if (T.isBool())
    return "uint8_t";
  return std::string(T.isUInt() ? "u" : "") + "int" +
         std::to_string(T.Bits) + "_t";
}

/// Short mangled tag of a scalar type ("i32", "u8", "f32", "b").
std::string typeTag(Type T) {
  if (T.isBool())
    return "b";
  if (T.isFloat())
    return "f" + std::to_string(T.Bits);
  return std::string(T.isUInt() ? "u" : "i") + std::to_string(T.Bits);
}

/// Name of the struct for a vector type ("hl_i32x8").
std::string vecCType(Type T) {
  internal_assert(T.isVector());
  return "hl_" + typeTag(T.element()) + "x" + std::to_string(T.Lanes);
}

std::string cTypeOf(Type T) {
  return T.isVector() ? vecCType(T) : scalarCType(T);
}

/// True when this vector type can be represented as a GCC/Clang native
/// vector (__attribute__((vector_size(N)))). GCC requires a power-of-two
/// lane count; everything vectorize() produces in practice (4/8/16) is.
/// Other lane counts keep the portable struct-of-lanes fallback.
bool nativeVectorOk(Type T) {
  if (!T.isVector() || T.isHandle())
    return false;
  int L = T.Lanes;
  return L >= 2 && (L & (L - 1)) == 0;
}

/// Integer vector type used for mask algebra and shuffle masks of T:
/// signed, same element width, same lane count. Vector compares on T
/// produce exactly this shape, and same-size vector casts reinterpret.
Type vecMaskType(Type T) {
  return Int(T.isBool() ? 8 : T.element().Bits, T.Lanes);
}

/// How a vector operation lowers onto native vectors. One row per IR op:
/// new vector ops land in the table below and are picked up by
/// CodeGen::vectorOpHelper without touching the per-op emitters.
enum class VecShape {
  Infix,     ///< lanewise infix arithmetic: a <op> b
  BoolLogic, ///< bitwise logic on 0/1 boolean vectors: a <op> b
  Compare,   ///< a <op> b, narrowed to a 0/1 boolean vector
  MinMax,    ///< native compare + mask blend
  FloorDiv,  ///< branch-free floor division with x/0 == 0
  FloorMod,  ///< branch-free floor remainder with x%0 == 0
};

struct VecOpRule {
  const char *Name; ///< helper suffix ("add", "lt", ...)
  const char *COp;  ///< C infix operator used in the body
  VecShape Shape;
};

const VecOpRule *vecOpRule(const std::string &Name) {
  static const VecOpRule Table[] = {
      // Dense arithmetic ("div" is the float-only true division; integer
      // division routes through the FloorDiv/FloorMod rows).
      {"add", "+", VecShape::Infix},
      {"sub", "-", VecShape::Infix},
      {"mul", "*", VecShape::Infix},
      {"div", "/", VecShape::Infix},
      // Comparisons, narrowed to 0/1 boolean vectors.
      {"eq", "==", VecShape::Compare},
      {"ne", "!=", VecShape::Compare},
      {"lt", "<", VecShape::Compare},
      {"le", "<=", VecShape::Compare},
      {"gt", ">", VecShape::Compare},
      {"ge", ">=", VecShape::Compare},
      // Logic on boolean vectors (lanes hold 0/1, so bitwise == logical).
      {"and", "&", VecShape::BoolLogic},
      {"or", "|", VecShape::BoolLogic},
      {"xor1", "^", VecShape::BoolLogic},
      // Compare + blend.
      {"min", "<", VecShape::MinMax},
      {"max", ">", VecShape::MinMax},
      // Euclidean-style floor division (matches the interpreter and VM).
      {"fdiv", "/", VecShape::FloorDiv},
      {"mod", "%", VecShape::FloorMod},
  };
  for (const VecOpRule &R : Table)
    if (Name == R.Name)
      return &R;
  return nullptr;
}

/// Sanitizes an IR name into a C identifier fragment.
std::string sanitize(const std::string &Name) {
  std::string Out;
  for (char C : Name) {
    if ((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
        (C >= '0' && C <= '9'))
      Out += C;
    else
      Out += '_';
  }
  if (Out.empty() || (Out[0] >= '0' && Out[0] <= '9'))
    Out = "v" + Out;
  return Out;
}

/// Collects free variable names and referenced buffer names of a statement
/// (respecting Let/LetStmt/For/Allocate shadowing). Used to build closures
/// for parallel loop bodies.
class CollectCapture : public IRVisitor {
public:
  std::set<std::string> FreeVariables;
  std::set<std::string> BufferNames;

  void visit(const Variable *Op) override {
    if (!Shadowed.contains(Op->Name))
      FreeVariables.insert(Op->Name);
  }
  void visit(const Load *Op) override {
    if (!ShadowedBufs.contains(Op->Name))
      BufferNames.insert(Op->Name);
    IRVisitor::visit(Op);
  }
  void visit(const Store *Op) override {
    if (!ShadowedBufs.contains(Op->Name))
      BufferNames.insert(Op->Name);
    IRVisitor::visit(Op);
  }
  void visit(const Call *Op) override {
    // A trace_store intrinsic replaces the Store node outright, so the
    // stored-to buffer is named only by its StringImm argument here.
    if (Op->CallKind == CallType::Intrinsic && Op->Name == Call::TraceStore)
      if (const StringImm *Buf = Op->Args.at(0).as<StringImm>())
        if (!ShadowedBufs.contains(Buf->Value))
          BufferNames.insert(Buf->Value);
    IRVisitor::visit(Op);
  }
  void visit(const Let *Op) override {
    Op->Value.accept(this);
    ScopedBinding<int> Bind(Shadowed, Op->Name, 0);
    Op->Body.accept(this);
  }
  void visit(const LetStmt *Op) override {
    Op->Value.accept(this);
    ScopedBinding<int> Bind(Shadowed, Op->Name, 0);
    Op->Body.accept(this);
  }
  void visit(const For *Op) override {
    Op->MinExpr.accept(this);
    Op->Extent.accept(this);
    ScopedBinding<int> Bind(Shadowed, Op->Name, 0);
    Op->Body.accept(this);
  }
  void visit(const Allocate *Op) override {
    for (const Expr &E : Op->Extents)
      E.accept(this);
    ScopedBinding<int> Bind(ShadowedBufs, Op->Name, 0);
    Op->Body.accept(this);
  }

private:
  Scope<int> Shadowed, ShadowedBufs;
};

/// State of one C-emission.
class CodeGen {
public:
  CodeGen(const LoweredPipeline &P, const std::string &FnName)
      : P(P), FnName(FnName) {}

  std::string run() {
    emitMain();
    std::ostringstream Out;
    Out << "/* Generated by the halide-pldi13-repro compiler. Do not edit. "
           "*/\n"
        << "#include <stdint.h>\n#include <math.h>\n#include <string.h>\n\n"
        << "typedef struct hl_vtable {\n"
        << "  void *(*Malloc)(int64_t);\n  void (*Free)(void *);\n"
        << "  void (*ParFor)(int32_t, int32_t, void (*)(int32_t, void *), "
           "void *);\n"
        << "  void (*GpuLaunch)(int32_t, void (*)(int32_t, void *), void "
           "*);\n"
        << "  void (*Abort)(const char *);\n"
        << "  void (*ProfEnter)(int32_t);\n  void (*ProfExit)(int32_t);\n"
        << "  void (*TraceLoad)(int32_t, int32_t, int32_t, const int32_t *, "
           "const uint64_t *);\n"
        << "  void (*TraceStore)(int32_t, int32_t, int32_t, const int32_t *, "
           "const uint64_t *);\n"
        << "  void (*TraceBegin)(int32_t, int32_t, const int32_t *);\n"
        << "  void (*TraceEnd)(int32_t);\n"
        << "} hl_vtable;\n\n"
        << TypedefText.str() << "\n"
        << HelperText.str() << "\n"
        << FunctionText.str() << "\n"
        << MainText.str();
    return Out.str();
  }

private:
  //===------------------------------------------------------------------===//
  // Helper/typedef emission (on demand)
  //===------------------------------------------------------------------===//

  void needVectorType(Type T) {
    internal_assert(T.isVector());
    std::string Name = vecCType(T);
    if (!EmittedHelpers.insert("type:" + Name).second)
      return;
    if (nativeVectorOk(T)) {
      int ElemBytes = T.isBool() ? 1 : T.element().Bits / 8;
      TypedefText << "typedef " << scalarCType(T.element()) << " " << Name
                  << " __attribute__((vector_size(" << T.Lanes * ElemBytes
                  << ")));\n";
    } else {
      TypedefText << "typedef struct " << Name << " { "
                  << scalarCType(T.element()) << " v[" << T.Lanes
                  << "]; } " << Name << ";\n";
    }
  }

  /// Lane accessor valid in generated helpers: native vectors subscript
  /// directly, the struct fallback goes through its array member.
  static std::string laneRef(Type T, const std::string &V,
                             const std::string &I) {
    return V + (nativeVectorOk(T) ? "[" : ".v[") + I + "]";
  }

  /// Compound-literal lane list "{f(0), f(1), ...}" for native vectors.
  template <typename Fn> static std::string laneList(int Lanes, Fn F) {
    std::string Out = "{";
    for (int L = 0; L < Lanes; ++L)
      Out += (L ? ", " : "") + F(L);
    return Out + "}";
  }

  /// Emits a helper definition once; Key identifies it, Definition is the
  /// full text.
  void needHelper(const std::string &Key, const std::string &Definition) {
    if (!EmittedHelpers.insert(Key).second)
      return;
    HelperText << Definition << "\n";
  }

  std::string laneLoop(int Lanes, const std::string &Body) {
    std::ostringstream OS;
    OS << "  for (int l = 0; l < " << Lanes << "; ++l) " << Body << "\n";
    return OS.str();
  }

  /// Scalar floor-division / floor-mod helpers for signed ints; guarded
  /// division for unsigned (x/0 == 0 in the IR's semantics).
  std::string scalarDivHelper(Type T, bool IsMod) {
    std::string CT = scalarCType(T);
    std::string Tag = typeTag(T);
    std::string Name = std::string("hl_") + (IsMod ? "mod" : "div") + "_" +
                       Tag;
    std::ostringstream Def;
    Def << "static inline " << CT << " " << Name << "(" << CT << " a, "
        << CT << " b) {\n  if (b == 0) return 0;\n";
    if (T.isInt()) {
      Def << "  " << CT << " q = a / b;\n  " << CT << " r = a - q * b;\n"
          << "  if (r != 0 && ((r < 0) != (b < 0))) { q -= 1; r += b; }\n"
          << "  return " << (IsMod ? "r" : "q") << ";\n}";
    } else {
      Def << "  return a " << (IsMod ? "%" : "/") << " b;\n}";
    }
    needHelper(Name, Def.str());
    return Name;
  }

  std::string scalarMinMaxHelper(Type T, bool IsMax) {
    std::string CT = scalarCType(T);
    std::string Name = std::string("hl_") + (IsMax ? "max" : "min") + "_" +
                       typeTag(T);
    needHelper(Name, "static inline " + CT + " " + Name + "(" + CT + " a, " +
                         CT + " b) { return " +
                         (IsMax ? "a > b ? a : b" : "a < b ? a : b") +
                         "; }");
    return Name;
  }

  /// Emits (once) and names the helper implementing vector op OpName on
  /// operand type T, consulting the op table above. Power-of-two lane
  /// counts get native-vector bodies (single SIMD expressions, mask
  /// algebra for blends since C lacks a vector ?:); other lane counts get
  /// the portable struct lane loop. T is the operand type; Compare-shaped
  /// ops return the matching boolean vector.
  std::string vectorOpHelper(Type T, const std::string &OpName) {
    const VecOpRule *Rule = vecOpRule(OpName);
    internal_assert(Rule) << "codegen: no vector op rule for " << OpName;
    needVectorType(T);
    std::string VT = vecCType(T);
    std::string Name = VT + "_" + OpName;
    if (EmittedHelpers.count(Name))
      return Name;

    std::string RetVT = VT;
    if (Rule->Shape == VecShape::Compare) {
      needVectorType(Bool(T.Lanes));
      RetVT = vecCType(Bool(T.Lanes));
    }
    std::string COp = Rule->COp;
    std::ostringstream Def;
    Def << "static inline " << RetVT << " " << Name << "(" << VT << " a, "
        << VT << " b) {\n";

    if (!nativeVectorOk(T)) {
      // Portable lane-loop fallback (non-power-of-two lane counts).
      switch (Rule->Shape) {
      case VecShape::Infix:
      case VecShape::BoolLogic:
        Def << "  " << VT << " r;\n"
            << laneLoop(T.Lanes, "r.v[l] = a.v[l] " + COp + " b.v[l];")
            << "  return r;\n}";
        break;
      case VecShape::Compare:
        Def << "  " << RetVT << " r;\n"
            << laneLoop(T.Lanes,
                        "r.v[l] = a.v[l] " + COp + " b.v[l] ? 1 : 0;")
            << "  return r;\n}";
        break;
      case VecShape::MinMax: {
        std::string Scalar = scalarMinMaxHelper(T.element(), OpName == "max");
        Def << "  " << VT << " r;\n"
            << laneLoop(T.Lanes, "r.v[l] = " + Scalar + "(a.v[l], b.v[l]);")
            << "  return r;\n}";
        break;
      }
      case VecShape::FloorDiv:
      case VecShape::FloorMod: {
        std::string Scalar = scalarDivHelper(
            T.element(), Rule->Shape == VecShape::FloorMod);
        Def << "  " << VT << " r;\n"
            << laneLoop(T.Lanes, "r.v[l] = " + Scalar + "(a.v[l], b.v[l]);")
            << "  return r;\n}";
        break;
      }
      }
      needHelper(Name, Def.str());
      return Name;
    }

    Type MaskT = vecMaskType(T);
    needVectorType(MaskT);
    std::string MT = vecCType(MaskT);
    switch (Rule->Shape) {
    case VecShape::Infix:
    case VecShape::BoolLogic:
      Def << "  return a " << COp << " b;\n}";
      break;
    case VecShape::Compare:
      // Vector compares yield full-width 0/-1 masks; narrow to the 0/1
      // boolean vector the IR expects.
      Def << "  return __builtin_convertvector((a " << COp << " b) & 1, "
          << RetVT << ");\n}";
      break;
    case VecShape::MinMax:
      // Blend through the same-width integer mask: C has no vector ?:.
      Def << "  " << MT << " m = a " << COp << " b;\n"
          << "  return (" << VT << ")(((" << MT << ")a & m) | ((" << MT
          << ")b & ~m));\n}";
      break;
    case VecShape::FloorDiv:
    case VecShape::FloorMod: {
      bool IsMod = Rule->Shape == VecShape::FloorMod;
      // Branch-free: substitute 1 for zero divisors, divide, then zero the
      // affected lanes; signed types additionally floor-adjust lanes whose
      // remainder sign differs from the divisor's.
      Def << "  " << VT << " bz = (" << VT << ")(b == 0);\n"
          << "  " << VT << " bs = b | (bz & 1);\n";
      if (T.element().isInt()) {
        Def << "  " << VT << " q = a / bs;\n"
            << "  " << VT << " r = a - q * bs;\n"
            << "  " << VT << " adj = (" << VT
            << ")((r != 0) & ((r ^ bs) < 0));\n";
        if (IsMod)
          Def << "  r += bs & adj;\n  return r & ~bz;\n}";
        else
          Def << "  q += adj;\n  return q & ~bz;\n}";
      } else {
        Def << "  return (a " << (IsMod ? "%" : "/") << " bs) & ~bz;\n}";
      }
      break;
    }
    }
    needHelper(Name, Def.str());
    return Name;
  }

  std::string vectorSplatHelper(Type T) {
    needVectorType(T);
    std::string VT = vecCType(T), CT = scalarCType(T.element());
    std::string Name = VT + "_splat";
    std::string Body;
    if (nativeVectorOk(T))
      Body = "  return (" + VT + ")" +
             laneList(T.Lanes, [](int) { return std::string("x"); }) + ";\n}";
    else
      Body = "  " + VT + " r;\n" + laneLoop(T.Lanes, "r.v[l] = x;") +
             "  return r;\n}";
    needHelper(Name, "static inline " + VT + " " + Name + "(" + CT +
                         " x) {\n" + Body);
    return Name;
  }

  std::string vectorRampHelper(Type T) {
    needVectorType(T);
    std::string VT = vecCType(T), CT = scalarCType(T.element());
    std::string Name = VT + "_ramp";
    std::string Body;
    if (nativeVectorOk(T))
      // One broadcast-add over the iota constant; folds to a single
      // vector op after constant propagation.
      Body = "  return base + (" + VT + ")" +
             laneList(T.Lanes,
                      [&](int L) { return "(" + CT + ")" + std::to_string(L); }) +
             " * stride;\n}";
    else
      Body = "  " + VT + " r;\n" +
             laneLoop(T.Lanes, "r.v[l] = base + (" + CT + ")l * stride;") +
             "  return r;\n}";
    needHelper(Name, "static inline " + VT + " " + Name + "(" + CT +
                         " base, " + CT + " stride) {\n" + Body);
    return Name;
  }

  std::string vectorSelectHelper(Type T) {
    needVectorType(T);
    Type BT = Bool(T.Lanes);
    needVectorType(BT);
    std::string VT = vecCType(T), BVT = vecCType(BT);
    std::string Name = VT + "_select";
    std::string Body;
    if (nativeVectorOk(T)) {
      // Widen the 0/1 byte mask to element width, turn it into a 0/-1
      // mask, then blend bitwise (C has no vector ?:). Float payloads
      // round-trip through the same-size integer vector.
      Type MaskT = vecMaskType(T);
      needVectorType(MaskT);
      std::string MT = vecCType(MaskT);
      Body = "  " + MT + " w = __builtin_convertvector(m, " + MT +
             ") != 0;\n  return (" + VT + ")(((" + MT + ")a & w) | ((" + MT +
             ")b & ~w));\n}";
    } else {
      Body = "  " + VT + " r;\n" +
             laneLoop(T.Lanes, "r.v[l] = m.v[l] ? a.v[l] : b.v[l];") +
             "  return r;\n}";
    }
    needHelper(Name, "static inline " + VT + " " + Name + "(" + BVT +
                         " m, " + VT + " a, " + VT + " b) {\n" + Body);
    return Name;
  }

  std::string vectorLoadHelper(Type T) {
    needVectorType(T);
    std::string VT = vecCType(T), CT = scalarCType(T.element());
    std::string Name = VT + "_load";
    needHelper(Name, "static inline " + VT + " " + Name + "(const " + CT +
                         " *p) {\n  " + VT +
                         " r;\n  memcpy(&r, p, sizeof(r));\n  return r;\n}");
    return Name;
  }

  std::string vectorStoreHelper(Type T) {
    needVectorType(T);
    std::string VT = vecCType(T), CT = scalarCType(T.element());
    std::string Name = VT + "_store";
    needHelper(Name, "static inline void " + Name + "(" + CT + " *p, " + VT +
                         " x) {\n  memcpy(p, &x, sizeof(x));\n}");
    return Name;
  }

  /// Dense load of the Lanes preceding-and-including *p in reverse order:
  /// the vector equivalent of a stride -1 ramp (e.g. mirrored boundaries).
  /// One contiguous load + lane reverse instead of Lanes scalar gathers.
  std::string vectorReverseLoadHelper(Type T) {
    needVectorType(T);
    std::string VT = vecCType(T), CT = scalarCType(T.element());
    std::string Name = VT + "_load_rev";
    std::string Body;
    if (nativeVectorOk(T)) {
      Type MaskT = vecMaskType(T);
      needVectorType(MaskT);
      Body = "  " + VT + " r;\n  memcpy(&r, p, sizeof(r));\n  return "
             "__builtin_shuffle(r, (" + vecCType(MaskT) + ")" +
             laneList(T.Lanes,
                      [&](int L) { return std::to_string(T.Lanes - 1 - L); }) +
             ");\n}";
    } else {
      Body = "  " + VT + " r;\n" +
             laneLoop(T.Lanes,
                      "r.v[l] = p[" + std::to_string(T.Lanes - 1) + " - l];") +
             "  return r;\n}";
    }
    needHelper(Name, "static inline " + VT + " " + Name + "(const " + CT +
                         " *p) {\n" + Body);
    return Name;
  }

  /// Dense store of x's lanes in reverse order starting at *p; the store
  /// counterpart of vectorReverseLoadHelper.
  std::string vectorReverseStoreHelper(Type T) {
    needVectorType(T);
    std::string VT = vecCType(T), CT = scalarCType(T.element());
    std::string Name = VT + "_store_rev";
    std::string Body;
    if (nativeVectorOk(T)) {
      Type MaskT = vecMaskType(T);
      needVectorType(MaskT);
      Body = "  x = __builtin_shuffle(x, (" + vecCType(MaskT) + ")" +
             laneList(T.Lanes,
                      [&](int L) { return std::to_string(T.Lanes - 1 - L); }) +
             ");\n  memcpy(p, &x, sizeof(x));\n}";
    } else {
      Body = laneLoop(T.Lanes,
                      "p[" + std::to_string(T.Lanes - 1) + " - l] = x.v[l];") +
             "}";
    }
    needHelper(Name, "static inline void " + Name + "(" + CT + " *p, " + VT +
                         " x) {\n" + Body);
    return Name;
  }

  /// A vector load index of the form Off + clamp(ramp(Base, 1, L), Lo,
  /// Hi) — the shape every clamped-boundary stencil tap lowers to. All
  /// four pieces are scalar expressions; Off may be undefined (zero).
  struct ClampedRampIndex {
    Expr Off;
    Expr Base;
    Expr Lo, Hi;
  };

  static bool matchClampedRampIndex(const Expr &Index,
                                    ClampedRampIndex *Out) {
    auto UnitRamp = [](const Expr &E) -> const Ramp * {
      const Ramp *R = E.as<Ramp>();
      int64_t Stride;
      return R && asConstInt(R->Stride, &Stride) && Stride == 1 ? R
                                                                : nullptr;
    };
    // The clamp core, in either nesting order (the simplifier does not
    // canonicalize min-of-max vs max-of-min) and with the broadcast on
    // either side of each node.
    if (const Max *M = Index.as<Max>()) {
      const Min *Inner = M->A.as<Min>() ? M->A.as<Min>() : M->B.as<Min>();
      const Broadcast *Lo =
          M->A.as<Min>() ? M->B.as<Broadcast>() : M->A.as<Broadcast>();
      if (Inner && Lo) {
        const Ramp *R = UnitRamp(Inner->A) ? UnitRamp(Inner->A)
                                           : UnitRamp(Inner->B);
        const Broadcast *Hi = UnitRamp(Inner->A)
                                  ? Inner->B.as<Broadcast>()
                                  : Inner->A.as<Broadcast>();
        if (R && Hi) {
          Out->Base = R->Base;
          Out->Lo = Lo->Value;
          Out->Hi = Hi->Value;
          return true;
        }
      }
    }
    if (const Min *M = Index.as<Min>()) {
      const Max *Inner = M->A.as<Max>() ? M->A.as<Max>() : M->B.as<Max>();
      const Broadcast *Hi =
          M->A.as<Max>() ? M->B.as<Broadcast>() : M->A.as<Broadcast>();
      if (Inner && Hi) {
        const Ramp *R = UnitRamp(Inner->A) ? UnitRamp(Inner->A)
                                           : UnitRamp(Inner->B);
        const Broadcast *Lo = UnitRamp(Inner->A)
                                  ? Inner->B.as<Broadcast>()
                                  : Inner->A.as<Broadcast>();
        if (R && Lo) {
          Out->Base = R->Base;
          Out->Lo = Lo->Value;
          Out->Hi = Hi->Value;
          return true;
        }
      }
    }
    // Affine wrappers: a broadcast added to / subtracted from the clamp
    // folds into the scalar byte offset.
    auto AddOff = [Out](const Expr &E, bool Negate) {
      Expr Term = Negate ? Sub::make(makeZero(E.type()), E) : E;
      Out->Off = Out->Off.defined() ? Add::make(Out->Off, Term) : Term;
    };
    if (const Add *A = Index.as<Add>()) {
      if (const Broadcast *B = A->B.as<Broadcast>())
        if (matchClampedRampIndex(A->A, Out)) {
          AddOff(B->Value, false);
          return true;
        }
      if (const Broadcast *B = A->A.as<Broadcast>())
        if (matchClampedRampIndex(A->B, Out)) {
          AddOff(B->Value, false);
          return true;
        }
    }
    if (const Sub *S = Index.as<Sub>())
      if (const Broadcast *B = S->B.as<Broadcast>())
        if (matchClampedRampIndex(S->A, Out)) {
          AddOff(B->Value, true);
          return true;
        }
    return false;
  }

  /// Load of Lanes elements at clamp(base + l, lo, hi) + off: a dense
  /// contiguous load whenever the whole lane range sits inside [lo, hi]
  /// (the interior of a clamped-boundary stencil — almost every
  /// iteration), a per-lane clamping gather on the boundary columns.
  std::string vectorClampedLoadHelper(Type T) {
    needVectorType(T);
    std::string VT = vecCType(T), CT = scalarCType(T.element());
    std::string Name = VT + "_load_clamped";
    std::string Body =
        "  " + VT + " r;\n  if (lo <= base && base + " +
        std::to_string(T.Lanes - 1) +
        " <= hi) {\n    memcpy(&r, p + off + base, sizeof(r));\n    "
        "return r;\n  }\n" +
        laneLoop(T.Lanes, "{ int32_t i = base + l; i = i < lo ? lo : i; "
                          "i = i > hi ? hi : i; " +
                              laneRef(T, "r", "l") + " = p[off + i]; }") +
        "  return r;\n}";
    needHelper(Name, "static inline " + VT + " " + Name + "(const " + CT +
                         " *p, int32_t off, int32_t base, int32_t lo, "
                         "int32_t hi) {\n" +
                         Body);
    return Name;
  }

  std::string vectorStridedLoadHelper(Type T) {
    needVectorType(T);
    std::string VT = vecCType(T), CT = scalarCType(T.element());
    std::string Name = VT + "_load_strided";
    needHelper(Name,
               "static inline " + VT + " " + Name + "(const " + CT +
                   " *p, int32_t s) {\n  " + VT + " r;\n" +
                   laneLoop(T.Lanes,
                            laneRef(T, "r", "l") + " = p[(int64_t)l * s];") +
                   "  return r;\n}");
    return Name;
  }

  std::string vectorGatherHelper(Type T, Type IndexT) {
    needVectorType(T);
    needVectorType(IndexT);
    std::string VT = vecCType(T), CT = scalarCType(T.element());
    std::string IVT = vecCType(IndexT);
    std::string Name = VT + "_gather_" + typeTag(IndexT.element());
    needHelper(Name,
               "static inline " + VT + " " + Name + "(const " + CT +
                   " *p, " + IVT + " idx) {\n  " + VT + " r;\n" +
                   laneLoop(T.Lanes, laneRef(T, "r", "l") + " = p[" +
                                         laneRef(IndexT, "idx", "l") + "];") +
                   "  return r;\n}");
    return Name;
  }

  std::string vectorScatterHelper(Type T, Type IndexT) {
    needVectorType(T);
    needVectorType(IndexT);
    std::string VT = vecCType(T), CT = scalarCType(T.element());
    std::string IVT = vecCType(IndexT);
    std::string Name = VT + "_scatter_" + typeTag(IndexT.element());
    needHelper(Name,
               "static inline void " + Name + "(" + CT + " *p, " + IVT +
                   " idx, " + VT + " x) {\n" +
                   laneLoop(T.Lanes, "p[" + laneRef(IndexT, "idx", "l") +
                                         "] = " + laneRef(T, "x", "l") +
                                         ";") +
                   "}");
    return Name;
  }

  std::string vectorCastHelper(Type From, Type To) {
    needVectorType(From);
    needVectorType(To);
    std::string Name = "hl_cast_" + typeTag(From.element()) + "x" +
                       std::to_string(From.Lanes) + "_" +
                       typeTag(To.element());
    std::string Body;
    if (nativeVectorOk(From) && nativeVectorOk(To))
      // __builtin_convertvector has C cast semantics per lane.
      Body = "  return __builtin_convertvector(a, " + vecCType(To) + ");\n}";
    else
      Body = "  " + vecCType(To) + " r;\n" +
             laneLoop(To.Lanes, laneRef(To, "r", "l") + " = (" +
                                    scalarCType(To.element()) + ")" +
                                    laneRef(From, "a", "l") + ";") +
             "  return r;\n}";
    needHelper(Name, "static inline " + vecCType(To) + " " + Name + "(" +
                         vecCType(From) + " a) {\n" + Body);
    return Name;
  }

  std::string vectorMathHelper(Type T, const std::string &Fn, int Arity) {
    needVectorType(T);
    std::string VT = vecCType(T);
    std::string CFn = scalarMathName(Fn, T.element());
    std::string Name = VT + "_" + Fn;
    std::string Params = VT + " a" + (Arity == 2 ? ", " + VT + " b" : "");
    // Math calls stay lane loops: libm has no vector entry points here.
    std::string Call =
        Arity == 2 ? CFn + "(" + laneRef(T, "a", "l") + ", " +
                         laneRef(T, "b", "l") + ")"
                   : CFn + "(" + laneRef(T, "a", "l") + ")";
    needHelper(Name,
               "static inline " + VT + " " + Name + "(" + Params +
                   ") {\n  " + VT + " r;\n" +
                   laneLoop(T.Lanes, laneRef(T, "r", "l") + " = " + Call +
                                         ";") +
                   "  return r;\n}");
    return Name;
  }

  static std::string scalarMathName(const std::string &Fn, Type Elem) {
    std::string Base = Fn == "round" ? "nearbyint" : Fn;
    return Elem.Bits == 32 ? Base + "f" : Base;
  }

  //===------------------------------------------------------------------===//
  // Expression emission
  //===------------------------------------------------------------------===//

  std::string freshName(const std::string &Base) {
    return sanitize(Base) + "_" + std::to_string(NameCounter++);
  }

  std::string emit(const Expr &E) {
    switch (E->Kind) {
    case IRNodeKind::IntImm: {
      const IntImm *Op = E.as<IntImm>();
      std::ostringstream OS;
      if (Op->NodeType.Bits == 64)
        OS << "(int64_t)" << Op->Value << "LL";
      else
        OS << "(" << scalarCType(Op->NodeType) << ")" << Op->Value;
      return OS.str();
    }
    case IRNodeKind::UIntImm: {
      const UIntImm *Op = E.as<UIntImm>();
      std::ostringstream OS;
      OS << "(" << scalarCType(Op->NodeType) << ")" << Op->Value << "ULL";
      return OS.str();
    }
    case IRNodeKind::FloatImm: {
      const FloatImm *Op = E.as<FloatImm>();
      std::ostringstream OS;
      OS.precision(17);
      OS << "(" << scalarCType(Op->NodeType) << ")(" << std::scientific
         << Op->Value << ")";
      return OS.str();
    }
    case IRNodeKind::StringImm:
      internal_error << "codegen: string immediate in expression";
      return "";
    case IRNodeKind::Cast:
      return emitCast(E.as<Cast>());
    case IRNodeKind::Variable:
      return emitVariable(E.as<Variable>());
    case IRNodeKind::Add:
      return emitBinary(E, E.as<Add>()->A, E.as<Add>()->B, "add", "+");
    case IRNodeKind::Sub:
      return emitBinary(E, E.as<Sub>()->A, E.as<Sub>()->B, "sub", "-");
    case IRNodeKind::Mul:
      return emitBinary(E, E.as<Mul>()->A, E.as<Mul>()->B, "mul", "*");
    case IRNodeKind::Div:
      return emitDivMod(E, false);
    case IRNodeKind::Mod:
      return emitDivMod(E, true);
    case IRNodeKind::Min:
      return emitMinMax(E, false);
    case IRNodeKind::Max:
      return emitMinMax(E, true);
    case IRNodeKind::EQ:
      return emitCompare(E, E.as<EQ>()->A, E.as<EQ>()->B, "eq", "==");
    case IRNodeKind::NE:
      return emitCompare(E, E.as<NE>()->A, E.as<NE>()->B, "ne", "!=");
    case IRNodeKind::LT:
      return emitCompare(E, E.as<LT>()->A, E.as<LT>()->B, "lt", "<");
    case IRNodeKind::LE:
      return emitCompare(E, E.as<LE>()->A, E.as<LE>()->B, "le", "<=");
    case IRNodeKind::GT:
      return emitCompare(E, E.as<GT>()->A, E.as<GT>()->B, "gt", ">");
    case IRNodeKind::GE:
      return emitCompare(E, E.as<GE>()->A, E.as<GE>()->B, "ge", ">=");
    case IRNodeKind::And:
      return emitCompare(E, E.as<And>()->A, E.as<And>()->B, "and", "&&");
    case IRNodeKind::Or:
      return emitCompare(E, E.as<Or>()->A, E.as<Or>()->B, "or", "||");
    case IRNodeKind::Not: {
      const Not *Op = E.as<Not>();
      std::string A = emit(Op->A);
      if (E.type().isScalar())
        return "(!" + A + ")";
      std::string Helper = vectorOpHelper(E.type(), "xor1");
      std::string Splat = vectorSplatHelper(E.type());
      return Helper + "(" + A + ", " + Splat + "(1))";
    }
    case IRNodeKind::Select:
      return emitSelect(E.as<Select>());
    case IRNodeKind::Load:
      return emitLoad(E.as<Load>());
    case IRNodeKind::Ramp: {
      const Ramp *Op = E.as<Ramp>();
      std::string Helper = vectorRampHelper(Op->NodeType);
      return Helper + "(" + emit(Op->Base) + ", " + emit(Op->Stride) + ")";
    }
    case IRNodeKind::Broadcast: {
      const Broadcast *Op = E.as<Broadcast>();
      std::string Helper = vectorSplatHelper(Op->NodeType);
      return Helper + "(" + emit(Op->Value) + ")";
    }
    case IRNodeKind::Call:
      return emitCall(E.as<Call>());
    case IRNodeKind::Let: {
      const Let *Op = E.as<Let>();
      std::string Value = emit(Op->Value);
      std::string CName = freshName(Op->Name);
      line("const " + cTypeOf(Op->Value.type()) + " " + CName + " = " +
           Value + ";");
      ScopedBinding<std::string> Bind(VarNames, Op->Name, CName);
      ScopedBinding<std::string> BindType(VarTypes, Op->Name,
                                          cTypeOf(Op->Value.type()));
      return emit(Op->Body);
    }
    default:
      internal_error << "codegen: statement kind in expression position";
      return "";
    }
  }

  std::string emitVariable(const Variable *Op) {
    internal_assert(VarNames.contains(Op->Name))
        << "codegen: unbound variable " << Op->Name;
    return VarNames.get(Op->Name);
  }

  std::string emitCast(const Cast *Op) {
    std::string V = emit(Op->Value);
    if (Op->NodeType.isScalar())
      return "((" + scalarCType(Op->NodeType) + ")(" + V + "))";
    std::string Helper = vectorCastHelper(Op->Value.type(), Op->NodeType);
    return Helper + "(" + V + ")";
  }

  std::string emitBinary(const Expr &E, const Expr &A, const Expr &B,
                         const char *Name, const char *COp) {
    std::string SA = emit(A), SB = emit(B);
    if (E.type().isScalar())
      return "(" + SA + " " + COp + " " + SB + ")";
    std::string Helper = vectorOpHelper(E.type(), Name);
    return Helper + "(" + SA + ", " + SB + ")";
  }

  std::string emitDivMod(const Expr &E, bool IsMod) {
    const Expr &A = IsMod ? Expr(E.as<Mod>()->A) : Expr(E.as<Div>()->A);
    const Expr &B = IsMod ? Expr(E.as<Mod>()->B) : Expr(E.as<Div>()->B);
    std::string SA = emit(A), SB = emit(B);
    Type T = E.type();
    if (T.isFloat()) {
      if (IsMod) {
        // Floor-mod on floats: a - floor(a/b)*b.
        if (T.isScalar()) {
          std::string FloorFn = T.Bits == 32 ? "floorf" : "floor";
          return "(" + SA + " - " + FloorFn + "(" + SA + " / " + SB +
                 ") * " + SB + ")";
        }
        // Dedicated helper for float vector mod: floor() keeps it a lane
        // loop in both vector representations.
        needVectorType(T);
        std::string VT = vecCType(T);
        std::string FloorFn = T.element().Bits == 32 ? "floorf" : "floor";
        needHelper(VT + "_fmod2",
                   "static inline " + VT + " " + VT + "_fmod2(" + VT +
                       " a, " + VT + " b) {\n  " + VT + " r;\n" +
                       laneLoop(T.Lanes,
                                laneRef(T, "r", "l") + " = " +
                                    laneRef(T, "a", "l") + " - " + FloorFn +
                                    "(" + laneRef(T, "a", "l") + " / " +
                                    laneRef(T, "b", "l") + ") * " +
                                    laneRef(T, "b", "l") + ";") +
                       "  return r;\n}");
        return VT + "_fmod2(" + SA + ", " + SB + ")";
      }
      if (T.isScalar())
        return "(" + SA + " / " + SB + ")";
      return vectorOpHelper(T, "div") + "(" + SA + ", " + SB + ")";
    }
    if (T.isScalar())
      return scalarDivHelper(T, IsMod) + "(" + SA + ", " + SB + ")";
    std::string Helper = vectorOpHelper(T, IsMod ? "mod" : "fdiv");
    return Helper + "(" + SA + ", " + SB + ")";
  }

  std::string emitMinMax(const Expr &E, bool IsMax) {
    const Expr &A = IsMax ? Expr(E.as<Max>()->A) : Expr(E.as<Min>()->A);
    const Expr &B = IsMax ? Expr(E.as<Max>()->B) : Expr(E.as<Min>()->B);
    std::string SA = emit(A), SB = emit(B);
    Type T = E.type();
    if (T.isScalar())
      return scalarMinMaxHelper(T, IsMax) + "(" + SA + ", " + SB + ")";
    std::string Helper = vectorOpHelper(T, IsMax ? "max" : "min");
    return Helper + "(" + SA + ", " + SB + ")";
  }

  std::string emitCompare(const Expr &E, const Expr &A, const Expr &B,
                          const char *Name, const char *COp) {
    std::string SA = emit(A), SB = emit(B);
    if (E.type().isScalar())
      return "((uint8_t)(" + SA + " " + COp + " " + SB + "))";
    std::string Helper = vectorOpHelper(A.type(), Name);
    return Helper + "(" + SA + ", " + SB + ")";
  }

  std::string emitSelect(const Select *Op) {
    std::string C = emit(Op->Condition);
    std::string T = emit(Op->TrueValue);
    std::string F = emit(Op->FalseValue);
    if (Op->NodeType.isScalar())
      return "(" + C + " ? " + T + " : " + F + ")";
    std::string Helper = vectorSelectHelper(Op->NodeType);
    return Helper + "(" + C + ", " + T + ", " + F + ")";
  }

  std::string emitLoad(const Load *Op) {
    std::string Buf = bufferName(Op->Name);
    if (Op->NodeType.isScalar())
      return Buf + "[" + emit(Op->Index) + "]";
    // Classify the vector access (paper section 4.5): dense ramp loads and
    // stores become contiguous; constant-strided ramps become strided;
    // everything else is a gather.
    if (const Ramp *R = Op->Index.as<Ramp>()) {
      int64_t Stride;
      if (asConstInt(R->Stride, &Stride)) {
        if (Stride == 1)
          return vectorLoadHelper(Op->NodeType) + "(&" + Buf + "[" +
                 emit(R->Base) + "])";
        // Stride -1 (reversed ramp, e.g. mirrored boundaries) is still a
        // dense access: one contiguous load ending at base + lane reverse.
        if (Stride == -1)
          return vectorReverseLoadHelper(Op->NodeType) + "(&" + Buf + "[(" +
                 emit(R->Base) + ") - " +
                 std::to_string(Op->NodeType.Lanes - 1) + "])";
      }
      return vectorStridedLoadHelper(Op->NodeType) + "(&" + Buf + "[" +
             emit(R->Base) + "], " + emit(R->Stride) + ")";
    }
    // A clamped unit ramp (boundary-condition stencil tap) is dense over
    // the whole interior; only boundary columns pay the per-lane clamp.
    ClampedRampIndex CR;
    if (matchClampedRampIndex(Op->Index, &CR))
      return vectorClampedLoadHelper(Op->NodeType) + "(" + Buf + ", " +
             (CR.Off.defined() ? emit(CR.Off) : "0") + ", " +
             emit(CR.Base) + ", " + emit(CR.Lo) + ", " + emit(CR.Hi) + ")";
    return vectorGatherHelper(Op->NodeType, Op->Index.type()) + "(" + Buf +
           ", " + emit(Op->Index) + ")";
  }

  //===------------------------------------------------------------------===//
  // Value tracing (Target::Trace only; see transforms/InjectTracing.h)
  //===------------------------------------------------------------------===//

  /// C expression for one lane's normalized 64-bit value word (the bit
  /// normalization documented in observe/TraceStream.h, mirrored in
  /// generated code so every engine writes identical records).
  std::string traceBitsExpr(Type Elem, const std::string &X) {
    if (Elem.isFloat()) {
      needHelper("hl_trace_bits_f",
                 "static inline uint64_t hl_trace_bits_f(double x) {\n"
                 "  uint64_t r;\n  memcpy(&r, &x, 8);\n  return r;\n}");
      return "hl_trace_bits_f((double)" + X + ")";
    }
    if (Elem.isUInt() || Elem.isBool())
      return "(uint64_t)" + X;
    return "(uint64_t)(int64_t)" + X;
  }

  /// Fills coords/bits arrays from an index temp and a value temp, then
  /// calls the TraceLoad/TraceStore vtable slot with the stage id and type
  /// code baked in at codegen time.
  void emitTraceAccess(const char *Slot, const std::string &StageName, Type T,
                       const std::string &Val, Type IdxT,
                       const std::string &Idx) {
    int Lanes = T.Lanes;
    std::string Coords = freshName(StageName + "_tc");
    std::string Bits = freshName(StageName + "_tb");
    line("int32_t " + Coords + "[" + std::to_string(Lanes) + "];");
    line("uint64_t " + Bits + "[" + std::to_string(Lanes) + "];");
    if (T.isScalar()) {
      line(Coords + "[0] = (int32_t)" + Idx + ";");
      line(Bits + "[0] = " + traceBitsExpr(T, Val) + ";");
    } else {
      line("for (int32_t __l = 0; __l < " + std::to_string(Lanes) +
           "; ++__l) {");
      ++Indent;
      line(Coords + "[__l] = (int32_t)" + laneRef(IdxT, Idx, "__l") + ";");
      line(Bits + "[__l] = " +
           traceBitsExpr(T.element(), laneRef(T, Val, "__l")) + ";");
      --Indent;
      line("}");
    }
    line("rt->" + std::string(Slot) + "(" +
         std::to_string(profilerStageId(StageName)) + ", " +
         std::to_string(int(traceTypeCode(T.element()))) + ", " +
         std::to_string(Lanes) + ", " + Coords + ", " + Bits + "); /* " +
         StageName + " */");
  }

  /// A trace_load intrinsic: the wrapped Load, evaluated through hoisted
  /// index and value temps. Hoisting keeps nested trace events inside the
  /// index firing exactly once and pins the event order to the IR's
  /// left-to-right evaluation order, which C operand order would not. The
  /// value goes through the per-lane gather helper regardless of index
  /// shape — losing the dense-load optimization under trace-on is the
  /// accepted cost of observing every lane's flat index.
  std::string emitTraceLoad(const Call *Op) {
    const StringImm *BufName = Op->Args.at(0).as<StringImm>();
    const Load *L = Op->Args.at(1).as<Load>();
    internal_assert(BufName && L) << "codegen: malformed trace_load";
    Type T = L->NodeType;
    std::string Idx = freshName(L->Name + "_tidx");
    line("const " + cTypeOf(L->Index.type()) + " " + Idx + " = " +
         emit(L->Index) + ";");
    std::string Val = freshName(L->Name + "_tval");
    std::string Buf = bufferName(L->Name);
    if (T.isScalar())
      line("const " + cTypeOf(T) + " " + Val + " = " + Buf + "[" + Idx +
           "];");
    else
      line("const " + cTypeOf(T) + " " + Val + " = " +
           vectorGatherHelper(T, L->Index.type()) + "(" + Buf + ", " + Idx +
           ");");
    emitTraceAccess("TraceLoad", BufName->Value, T, Val, L->Index.type(),
                    Idx);
    return Val;
  }

  /// A trace_store intrinsic (replaces the Store node): value, then index,
  /// then the store itself, then the event — the same order the
  /// interpreter and the VM execute.
  void emitTraceStore(const Call *Op) {
    const StringImm *BufName = Op->Args.at(0).as<StringImm>();
    internal_assert(BufName && Op->Args.size() == 3)
        << "codegen: malformed trace_store";
    const Expr &Value = Op->Args.at(1);
    const Expr &Index = Op->Args.at(2);
    Type T = Value.type();
    std::string Val = freshName(BufName->Value + "_tval");
    line("const " + cTypeOf(T) + " " + Val + " = " + emit(Value) + ";");
    std::string Idx = freshName(BufName->Value + "_tidx");
    line("const " + cTypeOf(Index.type()) + " " + Idx + " = " + emit(Index) +
         ";");
    std::string Buf = bufferName(BufName->Value);
    if (T.isScalar())
      line(Buf + "[" + Idx + "] = " + Val + ";");
    else
      line(vectorScatterHelper(T, Index.type()) + "(" + Buf + ", " + Idx +
           ", " + Val + ");");
    emitTraceAccess("TraceStore", BufName->Value, T, Val, Index.type(), Idx);
  }

  std::string emitCall(const Call *Op) {
    if (Op->CallKind == CallType::Intrinsic) {
      if (Op->Name == Call::TracePoint)
        return "0";
      if (Op->Name == Call::TraceLoad)
        return emitTraceLoad(Op);
      internal_error << "codegen: unknown intrinsic " << Op->Name;
    }
    internal_assert(Op->CallKind == CallType::PureExtern)
        << "codegen: unlowered call to " << Op->Name;
    std::vector<std::string> Args;
    for (const Expr &Arg : Op->Args)
      Args.push_back(emit(Arg));
    Type T = Op->NodeType;
    if (T.isScalar()) {
      std::string Fn = scalarMathName(Op->Name, T);
      std::string Result = Fn + "(" + Args[0];
      for (size_t I = 1; I < Args.size(); ++I)
        Result += ", " + Args[I];
      return Result + ")";
    }
    std::string Helper = vectorMathHelper(T, Op->Name, int(Args.size()));
    std::string Result = Helper + "(" + Args[0];
    for (size_t I = 1; I < Args.size(); ++I)
      Result += ", " + Args[I];
    return Result + ")";
  }

  //===------------------------------------------------------------------===//
  // Statement emission
  //===------------------------------------------------------------------===//

  void line(const std::string &Text) {
    for (int I = 0; I < Indent; ++I)
      *Body << "  ";
    *Body << Text << "\n";
  }

  void emitStmt(const Stmt &S) {
    switch (S->Kind) {
    case IRNodeKind::LetStmt: {
      const LetStmt *Op = S.as<LetStmt>();
      std::string Value = emit(Op->Value);
      std::string CName = freshName(Op->Name);
      line("const " + cTypeOf(Op->Value.type()) + " " + CName + " = " +
           Value + ";");
      ScopedBinding<std::string> Bind(VarNames, Op->Name, CName);
      ScopedBinding<std::string> BindType(VarTypes, Op->Name,
                                          cTypeOf(Op->Value.type()));
      emitStmt(Op->Body);
      return;
    }
    case IRNodeKind::AssertStmt: {
      const AssertStmt *Op = S.as<AssertStmt>();
      line("if (!(" + emit(Op->Condition) + ")) rt->Abort(\"" +
           Op->Message + "\");");
      return;
    }
    case IRNodeKind::ProducerConsumer:
      emitStmt(S.as<ProducerConsumer>()->Body);
      return;
    case IRNodeKind::For:
      emitFor(S.as<For>());
      return;
    case IRNodeKind::Store:
      emitStore(S.as<Store>());
      return;
    case IRNodeKind::Allocate:
      emitAllocate(S.as<Allocate>());
      return;
    case IRNodeKind::Block:
      emitStmt(S.as<Block>()->First);
      emitStmt(S.as<Block>()->Rest);
      return;
    case IRNodeKind::IfThenElse: {
      const IfThenElse *Op = S.as<IfThenElse>();
      line("if (" + emit(Op->Condition) + ") {");
      ++Indent;
      emitStmt(Op->ThenCase);
      --Indent;
      if (Op->ElseCase.defined()) {
        line("} else {");
        ++Indent;
        emitStmt(Op->ElseCase);
        --Indent;
      }
      line("}");
      return;
    }
    case IRNodeKind::Evaluate: {
      // Profile markers (present only under Target::Profile) become
      // direct vtable calls with the process-wide stage id baked in at
      // codegen time; everything else evaluates for side effects.
      const Call *C = S.as<Evaluate>()->Value.as<Call>();
      if (C && C->CallKind == CallType::Intrinsic &&
          (C->Name == Call::ProfileStageStart ||
           C->Name == Call::ProfileStageEnd)) {
        const StringImm *Stage = C->Args.at(0).as<StringImm>();
        internal_assert(Stage) << "codegen: profile marker without stage";
        const char *Fn =
            C->Name == Call::ProfileStageStart ? "ProfEnter" : "ProfExit";
        line("rt->" + std::string(Fn) + "(" +
             std::to_string(profilerStageId(Stage->Value)) + "); /* " +
             Stage->Value + " */");
        return;
      }
      if (C && C->CallKind == CallType::Intrinsic &&
          C->Name == Call::TraceStore) {
        emitTraceStore(C);
        return;
      }
      if (C && C->CallKind == CallType::Intrinsic &&
          C->Name == Call::TraceBegin) {
        const StringImm *Buf = C->Args.at(0).as<StringImm>();
        internal_assert(Buf) << "codegen: malformed trace_begin";
        int Dims = int(C->Args.size()) - 1;
        std::string Arr = freshName(Buf->Value + "_text");
        line("int32_t " + Arr + "[" + std::to_string(Dims > 0 ? Dims : 1) +
             "];");
        for (int D = 0; D < Dims; ++D)
          line(Arr + "[" + std::to_string(D) + "] = (int32_t)(" +
               emit(C->Args.at(size_t(D) + 1)) + ");");
        line("rt->TraceBegin(" +
             std::to_string(profilerStageId(Buf->Value)) + ", " +
             std::to_string(Dims) + ", " + Arr + "); /* " + Buf->Value +
             " */");
        return;
      }
      if (C && C->CallKind == CallType::Intrinsic &&
          C->Name == Call::TraceEnd) {
        const StringImm *Buf = C->Args.at(0).as<StringImm>();
        internal_assert(Buf) << "codegen: malformed trace_end";
        line("rt->TraceEnd(" + std::to_string(profilerStageId(Buf->Value)) +
             "); /* " + Buf->Value + " */");
        return;
      }
      line("(void)(" + emit(S.as<Evaluate>()->Value) + ");");
      return;
    }
    default:
      internal_error << "codegen: unexpected statement kind";
    }
  }

  void emitStore(const Store *Op) {
    std::string Buf = bufferName(Op->Name);
    std::string Value = emit(Op->Value);
    if (Op->Value.type().isScalar()) {
      line(Buf + "[" + emit(Op->Index) + "] = " + Value + ";");
      return;
    }
    if (const Ramp *R = Op->Index.as<Ramp>()) {
      int64_t Stride;
      if (asConstInt(R->Stride, &Stride)) {
        if (Stride == 1) {
          line(vectorStoreHelper(Op->Value.type()) + "(&" + Buf + "[" +
               emit(R->Base) + "], " + Value + ");");
          return;
        }
        // Reversed dense store: shuffle lanes, then one contiguous store.
        if (Stride == -1) {
          line(vectorReverseStoreHelper(Op->Value.type()) + "(&" + Buf +
               "[(" + emit(R->Base) + ") - " +
               std::to_string(Op->Value.type().Lanes - 1) + "], " + Value +
               ");");
          return;
        }
      }
    }
    line(vectorScatterHelper(Op->Value.type(), Op->Index.type()) + "(" +
         Buf + ", " + emit(Op->Index) + ", " + Value + ");");
  }

  void emitFor(const For *Op) {
    if (Op->Kind == ForType::Parallel) {
      emitParallelFor(Op, /*Gpu=*/false);
      return;
    }
    if (Op->Kind == ForType::GPUBlock) {
      emitParallelFor(Op, /*Gpu=*/true);
      return;
    }
    internal_assert(Op->Kind == ForType::Serial ||
                    Op->Kind == ForType::GPUThread)
        << "codegen: unlowered " << forTypeName(Op->Kind) << " loop";
    // GPUThread loops run as serial loops within the simulated block body.
    std::string MinName = freshName(Op->Name + "_min");
    std::string ExtName = freshName(Op->Name + "_ext");
    line("const int32_t " + MinName + " = " + emit(Op->MinExpr) + ";");
    line("const int32_t " + ExtName + " = " + emit(Op->Extent) + ";");
    std::string CName = freshName(Op->Name);
    line("for (int32_t " + CName + " = " + MinName + "; " + CName + " < " +
         MinName + " + " + ExtName + "; ++" + CName + ") {");
    ++Indent;
    {
      ScopedBinding<std::string> Bind(VarNames, Op->Name, CName);
      ScopedBinding<std::string> BindType(VarTypes, Op->Name, "int32_t");
      emitStmt(Op->Body);
    }
    --Indent;
    line("}");
  }

  /// Emits a parallel (or simulated-GPU block) loop: a closure struct, a
  /// body function, and a runtime dispatch call (paper section 4.6). For
  /// GPU launches, a chain of directly nested GPUBlock loops is fused into
  /// one launch over the flattened block range.
  void emitParallelFor(const For *Op, bool Gpu) {
    std::vector<const For *> Chain = {Op};
    if (Gpu) {
      const For *Cursor = Op;
      while (const For *Inner = Cursor->Body.as<For>()) {
        if (Inner->Kind != ForType::GPUBlock)
          break;
        Chain.push_back(Inner);
        Cursor = Inner;
      }
    }
    const Stmt &InnerBody = Chain.back()->Body;

    // What the body needs from the enclosing scope.
    CollectCapture Capture;
    InnerBody.accept(&Capture);
    for (const For *Loop : Chain)
      Capture.FreeVariables.erase(Loop->Name);

    struct Field {
      std::string IRName, CName, CType;
      bool IsBuffer;
    };
    std::vector<Field> Fields;
    for (const std::string &Name : Capture.FreeVariables) {
      if (VarNames.contains(Name)) {
        Fields.push_back({Name, VarNames.get(Name),
                          VarTypes.get(Name), false});
      }
      // Names not in scope would be parameters already materialized as
      // locals in the main preamble, so this branch is exhaustive; anything
      // missing is a bug caught when the body references it.
    }
    for (const std::string &Name : Capture.BufferNames) {
      internal_assert(BufferPointers.contains(Name))
          << "codegen: captured unknown buffer " << Name;
      Fields.push_back({Name, BufferPointers.get(Name),
                        BufferTypes.get(Name) + " *", true});
    }

    int Id = ClosureCounter++;
    std::string StructName = "hl_closure_" + std::to_string(Id);
    std::string FnNameC =
        std::string(Gpu ? "hl_kernel_" : "hl_par_") + std::to_string(Id);

    // Mins/extents of the chain are evaluated at the launch site and
    // passed through the closure.
    std::vector<std::string> MinNames, ExtNames;
    for (size_t I = 0; I < Chain.size(); ++I) {
      MinNames.push_back("__min" + std::to_string(I));
      ExtNames.push_back("__ext" + std::to_string(I));
    }

    std::ostringstream StructDef;
    StructDef << "typedef struct " << StructName << " {\n";
    for (const Field &F : Fields)
      StructDef << "  " << F.CType << " " << F.CName << ";\n";
    for (size_t I = 0; I < Chain.size(); ++I)
      StructDef << "  int32_t " << MinNames[I] << ";\n  int32_t "
                << ExtNames[I] << ";\n";
    StructDef << "  const hl_vtable *rt;\n} " << StructName << ";\n";

    // Emit the body function into its own buffer.
    std::ostringstream FnBody;
    std::ostringstream *SavedBody = Body;
    int SavedIndent = Indent;
    Body = &FnBody;
    Indent = 1;

    {
      // Bind captured names inside the function.
      std::vector<std::unique_ptr<ScopedBinding<std::string>>> Binds;
      std::vector<std::unique_ptr<ScopedBinding<std::string>>> TypeBinds;
      std::vector<std::unique_ptr<ScopedBinding<std::string>>> BufBinds;
      for (const Field &F : Fields) {
        // Buffer pointers are distinct allocations; telling the C compiler
        // so (restrict) is what lets it keep vector temporaries in
        // registers across the dense load/store helpers.
        line(F.CType + (F.IsBuffer ? "restrict " : " ") + F.CName +
             " = __c->" + F.CName + ";");
        if (!F.IsBuffer) {
          Binds.push_back(std::make_unique<ScopedBinding<std::string>>(
              VarNames, F.IRName, F.CName));
          TypeBinds.push_back(std::make_unique<ScopedBinding<std::string>>(
              VarTypes, F.IRName, F.CType));
        }
      }
      // Decode loop indices from the flattened iteration number. ParFor
      // passes absolute indices (min..min+extent); GPU launches pass a
      // flattened block number in [0, total).
      std::vector<std::string> IdxNames;
      if (!Gpu) {
        line("int32_t " + sanitize(Chain[0]->Name) + "__idx = __i;");
        IdxNames.push_back(sanitize(Chain[0]->Name) + "__idx");
      } else {
        for (size_t I = 0; I < Chain.size(); ++I) {
          std::string Idx = "__b" + std::to_string(I);
          IdxNames.push_back(Idx);
          std::string Divisor = "1";
          for (size_t J = I + 1; J < Chain.size(); ++J)
            Divisor += " * __c->" + ExtNames[J];
          line("int32_t " + Idx + " = (__i / (" + Divisor +
               ")) % __c->" + ExtNames[I] + " + __c->" + MinNames[I] + ";");
        }
      }
      std::vector<std::unique_ptr<ScopedBinding<std::string>>> LoopBinds;
      std::vector<std::unique_ptr<ScopedBinding<std::string>>> LoopTypeBinds;
      for (size_t I = 0; I < Chain.size(); ++I) {
        LoopBinds.push_back(std::make_unique<ScopedBinding<std::string>>(
            VarNames, Chain[I]->Name, IdxNames[I]));
        LoopTypeBinds.push_back(
            std::make_unique<ScopedBinding<std::string>>(
                VarTypes, Chain[I]->Name, "int32_t"));
      }
      emitStmt(InnerBody);
    }

    Body = SavedBody;
    Indent = SavedIndent;

    FunctionText << StructDef.str();
    FunctionText << "static void " << FnNameC
                 << "(int32_t __i, void *__p) {\n  " << StructName
                 << " *__c = (" << StructName
                 << " *)__p;\n  const hl_vtable *rt = __c->rt;\n  (void)rt;\n"
                 << FnBody.str() << "}\n\n";

    // Launch site.
    std::string Obj = "__cl_" + std::to_string(Id);
    line("{");
    ++Indent;
    line(StructName + " " + Obj + ";");
    for (const Field &F : Fields)
      line(Obj + "." + F.CName + " = " + F.CName + ";");
    for (size_t I = 0; I < Chain.size(); ++I) {
      line(Obj + "." + MinNames[I] + " = " + emit(Chain[I]->MinExpr) + ";");
      line(Obj + "." + ExtNames[I] + " = " + emit(Chain[I]->Extent) + ";");
    }
    line(Obj + ".rt = rt;");
    std::string Total = Obj + "." + ExtNames[0];
    for (size_t I = 1; I < Chain.size(); ++I)
      Total += " * " + Obj + "." + ExtNames[I];
    if (Gpu) {
      line("rt->GpuLaunch(" + Total + ", " + FnNameC + ", &" + Obj + ");");
    } else {
      line("rt->ParFor(" + Obj + "." + MinNames[0] + ", " + Total + ", " +
           FnNameC + ", &" + Obj + ");");
    }
    --Indent;
    line("}");
  }

  void emitAllocate(const Allocate *Op) {
    std::string CT = scalarCType(Op->ElemType);
    std::string CName = freshName(Op->Name);
    std::string Size = "(int64_t)sizeof(" + CT + ")";
    for (const Expr &E : Op->Extents)
      Size += " * (int64_t)(" + emit(E) + ")";
    line("{");
    ++Indent;
    line(CT + " *restrict " + CName + " = (" + CT + " *)rt->Malloc(" + Size +
         ");");
    {
      ScopedBinding<std::string> BindPtr(BufferPointers, Op->Name, CName);
      ScopedBinding<std::string> BindType(BufferTypes, Op->Name, CT);
      emitStmt(Op->Body);
    }
    line("rt->Free(" + CName + ");");
    --Indent;
    line("}");
  }

  std::string bufferName(const std::string &Name) {
    internal_assert(BufferPointers.contains(Name))
        << "codegen: access to unknown buffer " << Name;
    return BufferPointers.get(Name);
  }

  //===------------------------------------------------------------------===//
  // Main function
  //===------------------------------------------------------------------===//

  void emitMain() {
    std::ostringstream MainBody;
    Body = &MainBody;
    Indent = 1;

    std::vector<std::unique_ptr<ScopedBinding<std::string>>> Binds;
    auto bindVar = [&](const std::string &IRName, const std::string &CName,
                       const std::string &CType) {
      Binds.push_back(std::make_unique<ScopedBinding<std::string>>(
          VarNames, IRName, CName));
      Binds.push_back(std::make_unique<ScopedBinding<std::string>>(
          VarTypes, IRName, CType));
    };

    // Buffers and their metadata.
    int Slot = 0;
    for (size_t I = 0; I < P.Buffers.size(); ++I) {
      const BufferArg &Arg = P.Buffers[I];
      std::string CT = scalarCType(Arg.ElemType);
      std::string CName = freshName(Arg.Name);
      line(CT + " *restrict " + CName + " = (" + CT + " *)bufs[" +
           std::to_string(I) + "];");
      Binds.push_back(std::make_unique<ScopedBinding<std::string>>(
          BufferPointers, Arg.Name, CName));
      Binds.push_back(std::make_unique<ScopedBinding<std::string>>(
          BufferTypes, Arg.Name, CT));
      for (int D = 0; D < MaxBufferDims; ++D) {
        const char *Kinds[3] = {"min", "extent", "stride"};
        for (int K = 0; K < 3; ++K) {
          std::string IRName =
              Arg.Name + "." + Kinds[K] + "." + std::to_string(D);
          std::string MName = freshName(IRName);
          line("const int32_t " + MName + " = (int32_t)iargs[" +
               std::to_string(Slot++) + "];");
          bindVar(IRName, MName, "int32_t");
        }
      }
    }
    // Scalar parameters: ints continue in iargs, floats use fargs.
    int FloatSlot = 0;
    for (const ScalarArg &Arg : P.Scalars) {
      std::string CT = scalarCType(Arg.ArgType);
      std::string CName = freshName(Arg.Name);
      if (Arg.ArgType.isFloat())
        line("const " + CT + " " + CName + " = (" + CT + ")fargs[" +
             std::to_string(FloatSlot++) + "];");
      else
        line("const " + CT + " " + CName + " = (" + CT + ")iargs[" +
             std::to_string(Slot++) + "];");
      bindVar(Arg.Name, CName, CT);
    }

    emitStmt(P.Body);

    MainText << "int32_t " << FnName
             << "(const hl_vtable *rt, void **bufs, const int64_t *iargs, "
                "const double *fargs) {\n  (void)bufs; (void)iargs; "
                "(void)fargs;\n"
             << MainBody.str() << "  return 0;\n}\n";
  }

  const LoweredPipeline &P;
  std::string FnName;

  std::ostringstream TypedefText, HelperText, FunctionText, MainText;
  std::ostringstream *Body = nullptr;
  int Indent = 0;
  int NameCounter = 0;
  int ClosureCounter = 0;
  std::set<std::string> EmittedHelpers;

  Scope<std::string> VarNames;  // IR name -> C local name
  Scope<std::string> VarTypes;  // IR name -> C type (for closures)
  Scope<std::string> BufferPointers;
  Scope<std::string> BufferTypes;
};

} // namespace

std::string halide::codegenC(const LoweredPipeline &P,
                             const std::string &FnName) {
  CodeGen CG(P, FnName);
  return CG.run();
}
