//===-- codegen/Jit.cpp ---------------------------------------------------===//

#include "codegen/Jit.h"
#include "codegen/CodeGenC.h"
#include "runtime/Buffer.h"
#include "runtime/GpuSim.h"

#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <fstream>
#include <unistd.h>

using namespace halide;

int CompiledPipeline::run(const ParamBindings &Params,
                          ExecutionStats *Stats) const {
  internal_assert(Fn) << "run of invalid CompiledPipeline";
  std::vector<void *> Bufs;
  std::vector<int64_t> IntArgs;
  std::vector<double> FloatArgs;

  for (const BufferArg &Arg : P.Buffers) {
    const RawBuffer &Raw = Params.buffer(Arg.Name);
    user_assert(Raw.defined()) << "buffer " << Arg.Name << " is unbound";
    user_assert(Raw.ElemType == Arg.ElemType)
        << "buffer " << Arg.Name << " has element type "
        << Raw.ElemType.str() << ", pipeline expects " << Arg.ElemType.str();
    user_assert(Raw.Dim[0].Stride == 1)
        << "buffer " << Arg.Name
        << " must be dense in dimension 0 (stride 1)";
    Bufs.push_back(Raw.Host);
    for (int D = 0; D < MaxBufferDims; ++D) {
      if (D < Raw.Dimensions) {
        IntArgs.push_back(Raw.Dim[D].Min);
        IntArgs.push_back(Raw.Dim[D].Extent);
        IntArgs.push_back(Raw.Dim[D].Stride);
      } else {
        IntArgs.push_back(0);
        IntArgs.push_back(1);
        IntArgs.push_back(0);
      }
    }
  }
  for (const ScalarArg &Arg : P.Scalars) {
    double Value;
    user_assert(Params.lookupScalar(Arg.Name, &Value))
        << "scalar parameter " << Arg.Name << " is unbound";
    if (Arg.ArgType.isFloat())
      FloatArgs.push_back(Value);
    else
      IntArgs.push_back(int64_t(Value));
  }
  // Never pass null array pointers.
  IntArgs.push_back(0);
  FloatArgs.push_back(0);

  // On the GpuSim target, report the run's launch statistics as the delta
  // of the process-wide device counters (runs are serialized per device).
  GpuStats Before;
  if (T.TargetBackend == Backend::GpuSim && Stats)
    Before = gpuSim().stats();
  int Rc = Fn(runtimeVTable(), Bufs.data(), IntArgs.data(), FloatArgs.data());
  if (T.TargetBackend == Backend::GpuSim && Stats) {
    const GpuStats &After = gpuSim().stats();
    Stats->GpuKernelLaunches = After.KernelLaunches - Before.KernelLaunches;
    Stats->GpuBlocksExecuted = After.BlocksExecuted - Before.BlocksExecuted;
  }
  return Rc;
}

namespace {

/// Owns one compile's /tmp/hl_jit_XXXXXX scratch directory. The
/// destructor removes the known artifacts and the directory on every
/// exit path — concurrent serving compiles many pipelines, so leaked
/// scratch dirs would otherwise accumulate per frame shape. keep()
/// disarms the cleanup when the host compiler fails, preserving the
/// generated source the error message points at.
class JitTempDir {
public:
  JitTempDir() {
    char Buf[] = "/tmp/hl_jit_XXXXXX";
    user_assert(mkdtemp(Buf)) << "could not create JIT temp directory";
    Dir = Buf;
  }
  ~JitTempDir() {
    if (Kept)
      return;
    std::remove(path("pipeline.c").c_str());
    std::remove(path("cc.log").c_str());
    std::remove(path("pipeline.so").c_str());
    rmdir(Dir.c_str());
  }
  JitTempDir(const JitTempDir &) = delete;
  JitTempDir &operator=(const JitTempDir &) = delete;

  std::string path(const char *Name) const { return Dir + "/" + Name; }
  void keep() { Kept = true; }

private:
  std::string Dir;
  bool Kept = false;
};

} // namespace

std::shared_ptr<CompiledPipeline> halide::jitCompile(const LoweredPipeline &P,
                                                     const Target &T) {
  user_assert(T.usesJit()) << "jitCompile on an interpreter Target";
  std::shared_ptr<CompiledPipeline> Result(new CompiledPipeline(P, T));

  std::string FnName = "hl_pipeline";
  Result->Source = codegenC(P, FnName);

  JitTempDir Temp;
  std::string CPath = Temp.path("pipeline.c");
  std::string SoPath = Temp.path("pipeline.so");
  {
    std::ofstream Out(CPath);
    Out << Result->Source;
  }

  // -ffp-contract=off keeps float results bit-identical across schedules
  // (FMA contraction would otherwise round differently per loop shape),
  // preserving the paper's "all valid schedules generate correct code"
  // property at the bit level.
  std::string Cmd = "cc -O3 -march=native -fno-math-errno "
                    "-ffp-contract=off -fPIC -shared " +
                    T.JitFlags + " -o " + SoPath + " " + CPath +
                    " -lm 2> " + Temp.path("cc.log");
  int Rc = std::system(Cmd.c_str());
  if (Rc != 0) {
    std::string Log;
    {
      std::ifstream In(Temp.path("cc.log"));
      std::string Line;
      while (std::getline(In, Line))
        Log += Line + "\n";
    }
    Temp.keep();
    user_error << "host C compiler failed on generated code:\n"
               << Log << "\nsource left at " << CPath;
  }

  void *Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  user_assert(Handle) << "dlopen failed: " << dlerror();
  Result->Handle = std::shared_ptr<void>(Handle, [](void *H) { dlclose(H); });
  Result->Fn = reinterpret_cast<CompiledPipeline::EntryPoint>(
      dlsym(Handle, FnName.c_str()));
  user_assert(Result->Fn) << "generated entry point not found";

  // The artifacts can be removed once loaded (Temp's destructor); the
  // source stays in memory on the CompiledPipeline.
  return Result;
}
