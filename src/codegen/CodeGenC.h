//===-- codegen/CodeGenC.h - C source backend -------------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a lowered pipeline as a self-contained C99 translation unit
/// (DESIGN.md substitution 1: the host C compiler stands in for the paper's
/// LLVM backend). Vector IR is emitted through fixed-width vector structs
/// with per-lane helper functions that the host compiler re-vectorizes;
/// dense stride-1 ramp loads/stores become contiguous memcpys, strided and
/// gathered accesses are classified exactly as in paper section 4.5.
/// Parallel loops compile to closure structs plus a body function handed to
/// the runtime's work-stealing task scheduler (section 4.6); GPU block loops
/// compile to simulated-device kernel launches.
///
/// The generated entry point is:
///   int32_t <name>(const hl_vtable *rt, void **bufs,
///                  const int64_t *iargs, const double *fargs);
/// with buffers and metadata packed by codegen/Jit.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_CODEGEN_CODEGENC_H
#define HALIDE_CODEGEN_CODEGENC_H

#include "transforms/Lower.h"

#include <string>

namespace halide {

/// Renders the complete C source for \p P. \p FnName must be a valid C
/// identifier.
std::string codegenC(const LoweredPipeline &P, const std::string &FnName);

/// The number of int64 metadata slots occupied by one buffer argument
/// (min/extent/stride for each of MaxBufferDims dimensions).
int bufferMetadataSlots();

} // namespace halide

#endif // HALIDE_CODEGEN_CODEGENC_H
