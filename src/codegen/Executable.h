//===-- codegen/Executable.h - Common backend interface ---------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seam between the compiler and the back ends: an Executable is a
/// lowered pipeline made runnable for one Target, whether by the reference
/// interpreter, the bytecode VM, or native code from the C-source JIT.
/// Pipeline::compile
/// caches Executables by schedule fingerprint so a pipeline is compiled
/// once and run over many frames (paper section 4, Figure 5).
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_CODEGEN_EXECUTABLE_H
#define HALIDE_CODEGEN_EXECUTABLE_H

#include "lang/Target.h"
#include "runtime/Runtime.h"
#include "runtime/Tracing.h"
#include "transforms/Lower.h"

#include <memory>
#include <string>

namespace halide {

/// A pipeline compiled for a concrete Target, ready to run any number of
/// times. All buffers (output and inputs) and scalar parameters must be
/// bound in the ParamBindings passed to run(); Pipeline::realize builds
/// those bindings from Param<T>/ImageParam values automatically.
class Executable {
public:
  virtual ~Executable() = default;

  /// Executes the pipeline. Returns the pipeline's exit code (0 on
  /// success; nonzero when a pipeline assertion failed on a backend that
  /// reports through the exit code). When \p Stats is non-null it receives
  /// whatever counters the backend gathers (the interpreter: stores,
  /// loads, peak memory; GpuSim: kernel launches).
  virtual int run(const ParamBindings &Params,
                  ExecutionStats *Stats = nullptr) const = 0;

  /// The generated source for inspection, empty for backends that do not
  /// generate any (the interpreter).
  virtual const std::string &source() const;

  const LoweredPipeline &pipeline() const { return P; }
  const Target &target() const { return T; }

protected:
  Executable(LoweredPipeline P, Target T) : P(std::move(P)), T(std::move(T)) {}

  LoweredPipeline P;
  Target T;
};

/// Makes \p P runnable on the backend \p T names. For JitC/GpuSim this
/// invokes the host C compiler (aborts via user_error if it fails);
/// VmBytecode compiles the IR to bytecode in-process; the interpreter
/// backend returns a thin wrapper with no compile cost.
std::shared_ptr<const Executable> makeExecutable(const LoweredPipeline &P,
                                                 const Target &T);

} // namespace halide

#endif // HALIDE_CODEGEN_EXECUTABLE_H
