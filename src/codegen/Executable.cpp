//===-- codegen/Executable.cpp --------------------------------------------===//

#include "codegen/Executable.h"

#include "codegen/Interpreter.h"
#include "codegen/Jit.h"
#include "transforms/InjectProfiling.h"
#include "transforms/InjectTracing.h"
#include "vm/VmExecutable.h"

using namespace halide;

const std::string &Executable::source() const {
  static const std::string Empty;
  return Empty;
}

namespace {

/// The interpreter backend: no compilation, just a handle that walks the
/// lowered statement on every run. Pipeline assertions abort via
/// user_error, so a completed run always returns 0.
class InterpretedPipeline final : public Executable {
public:
  InterpretedPipeline(LoweredPipeline P, Target T)
      : Executable(std::move(P), std::move(T)) {}

  int run(const ParamBindings &Params,
          ExecutionStats *Stats) const override {
    ExecutionStats S = interpret(P, Params);
    if (Stats)
      *Stats = std::move(S);
    return 0;
  }
};

} // namespace

std::shared_ptr<const Executable> halide::makeExecutable(
    const LoweredPipeline &P, const Target &T) {
  // Observability instrumentation happens here, after the lowering cache:
  // profile-on / trace-on targets get instrumented copies of the shared
  // lowered pipeline, so the lowering fingerprint never changes and
  // off-target executables are built from byte-identical IR.
  if (T.Profile || T.Trace) {
    LoweredPipeline Instrumented = T.Profile ? injectProfiling(P) : P;
    if (T.Trace)
      Instrumented = injectTracing(Instrumented);
    if (T.TargetBackend == Backend::Interpreter)
      return std::make_shared<InterpretedPipeline>(std::move(Instrumented), T);
    if (T.TargetBackend == Backend::VmBytecode)
      return vmCompile(Instrumented, T);
    return jitCompile(Instrumented, T);
  }
  if (T.TargetBackend == Backend::Interpreter)
    return std::make_shared<InterpretedPipeline>(P, T);
  if (T.TargetBackend == Backend::VmBytecode)
    return vmCompile(P, T);
  return jitCompile(P, T);
}
