//===-- observe/Profiler.h - Per-stage wall-time profiler -------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide per-stage profiler behind Target::Profile. Instrumented
/// executables (see transforms/InjectProfiling.h) call profilerEnter /
/// profilerExit around each stage's produce body; the profiler keeps a
/// per-thread stage stack and charges elapsed wall time to the innermost
/// active stage (self time) and to every enclosing stage (total time), so
/// child = total - self, mirroring real Halide's profiler attribution.
///
/// Stage names are interned process-wide into dense int ids
/// (profilerStageId) so the hot enter/exit path is an id compare, a clock
/// read, and two thread-local adds -- no strings, no locks. Each thread
/// accumulates into a thread_local shard registered with a global list;
/// profilerReport() merges live shards plus the retired totals of exited
/// threads. Merging a shard requires its thread to be between stages
/// (stack empty); callers synchronize by joining or draining the
/// TaskScheduler before reporting, which is how the bench and tests use
/// it.
///
/// The TaskScheduler propagates stage context across parallel chunks:
/// jobs capture the submitting thread's current stage and workers enter
/// it as a *chunk* scope (profilerEnterChunk), which charges time but
/// does not bump the invocation count -- a 4-thread run reports the same
/// per-stage invocation counts as a serial run.
///
/// Collection is gated on setProfilerEnabled(): when off every entry
/// point returns after one relaxed atomic load, so uninstrumented
/// pipelines pay nothing and even instrumented ones can run silent.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_OBSERVE_PROFILER_H
#define HALIDE_OBSERVE_PROFILER_H

#include <cstdint>
#include <string>
#include <vector>

namespace halide {

/// Merged per-stage totals, one row per interned stage that ran.
struct StageProfile {
  std::string Name;
  /// Times the stage's produce body was entered (chunk re-entries on
  /// worker threads do not count; see profilerEnterChunk).
  int64_t Invocations = 0;
  /// Wall nanoseconds with this stage innermost on some thread. Across
  /// worker threads self-times add, so on a 4-thread run the sum of
  /// SelfNanos can exceed the elapsed wall clock (it is CPU-seconds of
  /// stage work); on a serial run it matches wall time spent in stages.
  int64_t SelfNanos = 0;
  /// Wall nanoseconds with this stage anywhere on the stack (self +
  /// children). On threaded runs chunk scopes add like self-times.
  int64_t TotalNanos = 0;
  /// Peak bytes attributed to this stage via profilerNoteAlloc/Free
  /// (allocations are charged to the stage active on the allocating
  /// thread). Threaded runs sum per-worker peaks -- exact when serial,
  /// an upper bound when workers allocate concurrently.
  int64_t PeakBytes = 0;

  int64_t childNanos() const { return TotalNanos - SelfNanos; }
};

/// The merged report: rows sorted by descending SelfNanos.
struct ProfileReport {
  std::vector<StageProfile> Stages;

  /// Sum of SelfNanos over all stages (CPU-nanoseconds of stage work).
  int64_t totalSelfNanos() const;
  /// Human-readable table (one line per stage).
  std::string str() const;
  /// JSON array of {name, invocations, self_ns, total_ns, peak_bytes}.
  std::string toJson() const;
};

/// Master switch. Off (the default) makes every other entry point a
/// single relaxed atomic load. Flipping it on/off does not clear
/// accumulated data; use profilerReset() for that.
void setProfilerEnabled(bool Enabled);
bool profilerEnabled();

/// Interns \p Name into a dense process-wide id (stable for the life of
/// the process). Safe from any thread.
int profilerStageId(const std::string &Name);
/// The name interned under \p Id ("?" if out of range).
std::string profilerStageName(int Id);
/// Number of ids interned so far (valid ids are [0, count)). Used by
/// observe/TraceStream.cpp to append stage-name records to a trace file.
int profilerStageCount();

/// Stage entry/exit, called by instrumented code. Enter bumps the
/// invocation count, pushes the stage, and starts charging it self time;
/// exit pops it and resumes charging the parent. Mismatched exits are
/// ignored. No-ops while the profiler is disabled.
void profilerEnter(int StageId);
void profilerExit(int StageId);

/// Like profilerEnter but without the invocation bump: the TaskScheduler
/// uses this to extend a stage's scope onto a worker thread for one
/// chunk, so threaded runs charge time correctly without inflating
/// counts. Pair with profilerExit.
void profilerEnterChunk(int StageId);

/// The innermost active stage on the calling thread, or -1 (also -1
/// whenever the profiler is disabled). Cheap: one atomic load plus a
/// thread-local read; never allocates the calling thread's shard.
int profilerCurrentStage();

/// Charges \p Bytes (alloc) to the calling thread's innermost active
/// stage and remembers the owner so the matching free is charged back to
/// the allocating stage even if it happens under a different one.
/// BufferPool calls these for every halideMalloc/Free. No-ops while
/// disabled or when no stage is active.
void profilerNoteAlloc(const void *Ptr, int64_t Bytes);
void profilerNoteFree(const void *Ptr);

/// Clears all accumulated totals (live shards and retired threads).
/// Call only while no instrumented pipeline is running.
void profilerReset();

/// Merges every thread's totals into a report. Threads currently inside
/// a stage contribute their completed intervals only; call after joining
/// or draining outstanding work for exact numbers.
ProfileReport profilerReport();

} // namespace halide

#endif // HALIDE_OBSERVE_PROFILER_H
