//===-- observe/TraceRecorder.h - Chrome trace-event recorder ---*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide runtime trace recorder emitting Chrome trace-event
/// JSON (the format chrome://tracing and https://ui.perfetto.dev load).
/// Instrumentation points across the runtime -- profiler stage spans,
/// TaskScheduler chunk execution (steals visible because each worker is
/// its own lane), compile-cache events, BufferPool traffic, GpuSim
/// kernel launches, and realizeAsync serving spans -- call the record
/// functions below; each appends to a per-thread buffer with no locking
/// on the hot path, so tracing perturbs the timeline it records as
/// little as possible.
///
/// When tracing is inactive (the default) every record function returns
/// after a single relaxed atomic load. traceStart() clears old events
/// and activates recording; traceWriteJson()/traceWriteFile() serialize
/// everything recorded so far. Buffers of exited threads are retired
/// into a global list so their events survive until the write.
///
/// Timestamps are steady-clock nanoseconds rebased to the first
/// traceStart() call and written in microseconds (the trace-event
/// contract). Threads appear as tid 0..N in registration order with
/// thread_name metadata ("main", "worker 3", ...) set via
/// traceSetThreadName.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_OBSERVE_TRACERECORDER_H
#define HALIDE_OBSERVE_TRACERECORDER_H

#include <cstdint>
#include <string>
#include <vector>

namespace halide {

/// One "key":value pair attached to a trace event's args object. Values
/// render as JSON numbers when Numeric, else as quoted strings.
struct TraceArg {
  std::string Key;
  std::string Value;
  bool Numeric = false;

  TraceArg(std::string Key, int64_t V)
      : Key(std::move(Key)), Value(std::to_string(V)), Numeric(true) {}
  TraceArg(std::string Key, std::string V)
      : Key(std::move(Key)), Value(std::move(V)), Numeric(false) {}
};

/// True while a trace is being recorded. All record functions below are
/// no-ops (one relaxed atomic load) when this is false.
bool traceActive();

/// Begins a new trace: clears previously recorded events and activates
/// recording. traceStop() deactivates without clearing, so events can
/// still be written afterwards.
void traceStart();
void traceStop();

/// Nanoseconds on the trace clock (valid any time; rebased at write).
int64_t traceNowNs();

/// Names the calling thread's lane in the trace ("worker 2"). Sticky:
/// survives traceStart/Stop cycles, so long-lived workers named at
/// spawn show up in traces started later.
void traceSetThreadName(const std::string &Name);

/// Begin/end a nested duration span on the calling thread. Must nest
/// properly per thread (the profiler's stage stack guarantees this for
/// stage spans).
void traceBegin(const std::string &Cat, const std::string &Name);
void traceEnd();

/// A complete span with explicit start and duration -- for spans whose
/// extent is known only at the end (task chunks, serving frames) or
/// whose start happened on another thread (queue-wait).
void traceComplete(const std::string &Cat, const std::string &Name,
                   int64_t StartNs, int64_t DurNs,
                   std::vector<TraceArg> Args = {});

/// A zero-duration instant event (cache hits, fresh pool allocations).
void traceInstant(const std::string &Cat, const std::string &Name,
                  std::vector<TraceArg> Args = {});

/// A counter sample; renders as a stacked area chart in the viewer.
void traceCounter(const std::string &Name, int64_t Value);

/// Serializes everything recorded since traceStart() as a Chrome
/// trace-event JSON object: {"traceEvents":[...]}.
std::string traceWriteJson();

/// traceWriteJson() to \p Path; returns false if the file can't be
/// opened.
bool traceWriteFile(const std::string &Path);

} // namespace halide

#endif // HALIDE_OBSERVE_TRACERECORDER_H
