//===-- observe/TraceRecorder.cpp - Chrome trace-event recorder -----------===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "observe/TraceRecorder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace halide {

namespace {

std::atomic<bool> Active{false};

int64_t steadyNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class Phase : char {
  Begin = 'B',
  End = 'E',
  Complete = 'X',
  Instant = 'i',
  Counter = 'C',
};

struct Event {
  Phase Ph;
  int64_t TsNs = 0;
  int64_t DurNs = 0; // Complete only
  std::string Cat;
  std::string Name;
  std::vector<TraceArg> Args;
};

struct TraceShard;

struct TraceRegistry {
  std::mutex Mu;
  std::vector<TraceShard *> Live;
  std::vector<std::pair<int, std::vector<Event>>> Retired; // tid, events
  std::vector<std::pair<int, std::string>> RetiredNames;   // tid, name
  int NextTid = 0;
  int64_t EpochNs = 0; // set by the first traceStart
};

TraceRegistry &registry() {
  // Intentionally leaked: TaskScheduler workers are joined during static
  // destruction, and their thread_local TraceShard destructors must
  // still find a live registry whatever order the singletons were first
  // touched in (e.g. bench_runner calls setTaskSchedulerThreads before
  // traceStart, putting the scheduler's teardown after this registry's).
  static TraceRegistry *R = new TraceRegistry;
  return *R;
}

struct TraceShard {
  int Tid;
  std::string Name;
  std::vector<Event> Events;

  TraceShard() {
    TraceRegistry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    Tid = R.NextTid++;
    R.Live.push_back(this);
  }

  ~TraceShard() {
    TraceRegistry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    if (!Events.empty())
      R.Retired.emplace_back(Tid, std::move(Events));
    if (!Name.empty())
      R.RetiredNames.emplace_back(Tid, Name);
    R.Live.erase(std::remove(R.Live.begin(), R.Live.end(), this),
                 R.Live.end());
  }
};

TraceShard &shard() {
  static thread_local TraceShard S;
  return S;
}

void record(Event E) {
  E.TsNs = steadyNs();
  shard().Events.push_back(std::move(E));
}

void jsonEscape(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if ((unsigned char)C < 0x20) {
      char Buf[8];
      snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
}

void writeEvent(std::string &Out, int Tid, const Event &E, int64_t EpochNs,
                bool &First) {
  if (!First)
    Out += ",\n";
  First = false;
  char Buf[128];
  Out += "{\"name\":\"";
  jsonEscape(Out, E.Name);
  Out += "\",\"cat\":\"";
  jsonEscape(Out, E.Cat.empty() ? std::string("halide") : E.Cat);
  snprintf(Buf, sizeof(Buf), "\",\"ph\":\"%c\",\"ts\":%.3f", (char)E.Ph,
           (double)(E.TsNs - EpochNs) / 1e3);
  Out += Buf;
  if (E.Ph == Phase::Complete) {
    snprintf(Buf, sizeof(Buf), ",\"dur\":%.3f", (double)E.DurNs / 1e3);
    Out += Buf;
  }
  if (E.Ph == Phase::Instant)
    Out += ",\"s\":\"t\"";
  snprintf(Buf, sizeof(Buf), ",\"pid\":1,\"tid\":%d", Tid);
  Out += Buf;
  if (E.Ph == Phase::Counter) {
    // Counter events carry their value in args; emitted below like any
    // other args object.
  }
  if (!E.Args.empty()) {
    Out += ",\"args\":{";
    for (size_t I = 0; I < E.Args.size(); ++I) {
      if (I)
        Out += ",";
      Out += "\"";
      jsonEscape(Out, E.Args[I].Key);
      Out += "\":";
      if (E.Args[I].Numeric) {
        Out += E.Args[I].Value;
      } else {
        Out += "\"";
        jsonEscape(Out, E.Args[I].Value);
        Out += "\"";
      }
    }
    Out += "}";
  }
  Out += "}";
}

void writeThreadName(std::string &Out, int Tid, const std::string &Name,
                     bool &First) {
  if (!First)
    Out += ",\n";
  First = false;
  char Buf[64];
  Out += "{\"name\":\"thread_name\",\"ph\":\"M\"";
  snprintf(Buf, sizeof(Buf), ",\"pid\":1,\"tid\":%d", Tid);
  Out += Buf;
  Out += ",\"args\":{\"name\":\"";
  jsonEscape(Out, Name);
  Out += "\"}}";
}

} // namespace

bool traceActive() { return Active.load(std::memory_order_relaxed); }

void traceStart() {
  TraceRegistry &R = registry();
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    if (R.EpochNs == 0)
      R.EpochNs = steadyNs();
    R.Retired.clear();
    for (TraceShard *S : R.Live)
      S->Events.clear();
  }
  Active.store(true, std::memory_order_release);
}

void traceStop() { Active.store(false, std::memory_order_relaxed); }

int64_t traceNowNs() { return steadyNs(); }

void traceSetThreadName(const std::string &Name) { shard().Name = Name; }

void traceBegin(const std::string &Cat, const std::string &Name) {
  if (!traceActive())
    return;
  Event E;
  E.Ph = Phase::Begin;
  E.Cat = Cat;
  E.Name = Name;
  record(std::move(E));
}

void traceEnd() {
  if (!traceActive())
    return;
  Event E;
  E.Ph = Phase::End;
  record(std::move(E));
}

void traceComplete(const std::string &Cat, const std::string &Name,
                   int64_t StartNs, int64_t DurNs,
                   std::vector<TraceArg> Args) {
  if (!traceActive())
    return;
  Event E;
  E.Ph = Phase::Complete;
  E.Cat = Cat;
  E.Name = Name;
  E.DurNs = DurNs < 0 ? 0 : DurNs;
  E.Args = std::move(Args);
  E.TsNs = StartNs;
  shard().Events.push_back(std::move(E));
}

void traceInstant(const std::string &Cat, const std::string &Name,
                  std::vector<TraceArg> Args) {
  if (!traceActive())
    return;
  Event E;
  E.Ph = Phase::Instant;
  E.Cat = Cat;
  E.Name = Name;
  E.Args = std::move(Args);
  record(std::move(E));
}

void traceCounter(const std::string &Name, int64_t Value) {
  if (!traceActive())
    return;
  Event E;
  E.Ph = Phase::Counter;
  E.Cat = "counter";
  E.Name = Name;
  E.Args.emplace_back("value", Value);
  record(std::move(E));
}

std::string traceWriteJson() {
  TraceRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;
  for (TraceShard *S : R.Live)
    if (!S->Name.empty())
      writeThreadName(Out, S->Tid, S->Name, First);
  for (const auto &TN : R.RetiredNames)
    writeThreadName(Out, TN.first, TN.second, First);
  for (TraceShard *S : R.Live)
    for (const Event &E : S->Events)
      writeEvent(Out, S->Tid, E, R.EpochNs, First);
  for (const auto &TE : R.Retired)
    for (const Event &E : TE.second)
      writeEvent(Out, TE.first, E, R.EpochNs, First);
  Out += "\n]}\n";
  return Out;
}

bool traceWriteFile(const std::string &Path) {
  std::string Json = traceWriteJson();
  FILE *F = fopen(Path.c_str(), "w");
  if (!F)
    return false;
  fwrite(Json.data(), 1, Json.size(), F);
  fclose(F);
  return true;
}

} // namespace halide
