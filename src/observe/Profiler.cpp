//===-- observe/Profiler.cpp - Per-stage wall-time profiler ---------------===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "observe/Profiler.h"
#include "observe/TraceRecorder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <unordered_map>

namespace halide {

namespace {

std::atomic<bool> Enabled{false};

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-stage accumulator within one thread's shard.
struct StageSlot {
  int64_t Invocations = 0;
  int64_t SelfNanos = 0;
  int64_t TotalNanos = 0;
  int64_t CurBytes = 0;
  int64_t PeakBytes = 0;
};

struct StackFrame {
  int StageId;
  int64_t EnterNs;
};

struct Shard;

/// Global state: the intern table and the shard registry. Intentionally
/// leaked (see registry()): TaskScheduler workers are joined during
/// static destruction, and their thread_local shard destructors must
/// still find a live registry whatever the construction order was.
struct Registry {
  std::mutex Mu;
  std::unordered_map<std::string, int> Ids;
  std::vector<std::string> Names;
  std::vector<Shard *> Live;
  std::vector<StageSlot> Retired; // merged totals of exited threads

  int intern(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Ids.find(Name);
    if (It != Ids.end())
      return It->second;
    int Id = (int)Names.size();
    Ids.emplace(Name, Id);
    Names.push_back(Name);
    return Id;
  }
};

Registry &registry() {
  static Registry *R = new Registry; // never destroyed, by design
  return *R;
}

/// One thread's accumulation state. Registered on construction,
/// merged into Registry::Retired and unregistered on thread exit.
struct Shard {
  std::vector<StageSlot> Slots;
  std::vector<StackFrame> Stack;
  int64_t BaseNs = 0; // start of the current self-time interval
  /// Live allocations charged to a stage: ptr -> {stage id, bytes}.
  std::unordered_map<const void *, std::pair<int, int64_t>> Allocs;

  Shard() {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    R.Live.push_back(this);
  }

  ~Shard() {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    if (R.Retired.size() < Slots.size())
      R.Retired.resize(Slots.size());
    for (size_t I = 0; I < Slots.size(); ++I)
      mergeSlot(R.Retired[I], Slots[I]);
    R.Live.erase(std::remove(R.Live.begin(), R.Live.end(), this),
                 R.Live.end());
  }

  static void mergeSlot(StageSlot &Into, const StageSlot &From) {
    Into.Invocations += From.Invocations;
    Into.SelfNanos += From.SelfNanos;
    Into.TotalNanos += From.TotalNanos;
    Into.CurBytes += From.CurBytes;
    Into.PeakBytes += From.PeakBytes;
  }

  StageSlot &slot(int StageId) {
    if ((int)Slots.size() <= StageId)
      Slots.resize(StageId + 1);
    return Slots[StageId];
  }

  void enter(int StageId, bool CountInvocation) {
    int64_t Now = nowNs();
    if (!Stack.empty())
      slot(Stack.back().StageId).SelfNanos += Now - BaseNs;
    Stack.push_back({StageId, Now});
    BaseNs = Now;
    if (CountInvocation)
      slot(StageId).Invocations += 1;
    if (traceActive())
      traceBegin("stage", profilerStageName(StageId));
  }

  void exit(int StageId) {
    if (Stack.empty() || Stack.back().StageId != StageId)
      return; // mismatched marker; drop rather than corrupt the stack
    int64_t Now = nowNs();
    StageSlot &S = slot(StageId);
    S.SelfNanos += Now - BaseNs;
    S.TotalNanos += Now - Stack.back().EnterNs;
    Stack.pop_back();
    BaseNs = Now;
    if (traceActive())
      traceEnd();
  }

  void noteAlloc(const void *Ptr, int64_t Bytes) {
    if (Stack.empty())
      return;
    int StageId = Stack.back().StageId;
    Allocs[Ptr] = {StageId, Bytes};
    StageSlot &S = slot(StageId);
    S.CurBytes += Bytes;
    S.PeakBytes = std::max(S.PeakBytes, S.CurBytes);
  }

  void noteFree(const void *Ptr) {
    auto It = Allocs.find(Ptr);
    if (It == Allocs.end())
      return; // allocated before profiling began or on another thread
    slot(It->second.first).CurBytes -= It->second.second;
    Allocs.erase(It);
  }
};

Shard &shard() {
  static thread_local Shard S;
  return S;
}

/// Non-creating view of this thread's shard (null until first use).
thread_local Shard *ShardView = nullptr;

Shard &shardCreating() {
  Shard &S = shard();
  ShardView = &S;
  return S;
}

} // namespace

void setProfilerEnabled(bool E) { Enabled.store(E, std::memory_order_relaxed); }

bool profilerEnabled() { return Enabled.load(std::memory_order_relaxed); }

int profilerStageId(const std::string &Name) {
  return registry().intern(Name);
}

int profilerStageCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  return (int)R.Names.size();
}

std::string profilerStageName(int Id) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  if (Id < 0 || Id >= (int)R.Names.size())
    return "?";
  return R.Names[Id];
}

void profilerEnter(int StageId) {
  if (!profilerEnabled())
    return;
  shardCreating().enter(StageId, /*CountInvocation=*/true);
}

void profilerEnterChunk(int StageId) {
  if (!profilerEnabled())
    return;
  shardCreating().enter(StageId, /*CountInvocation=*/false);
}

void profilerExit(int StageId) {
  if (!profilerEnabled())
    return;
  if (Shard *S = ShardView)
    S->exit(StageId);
}

int profilerCurrentStage() {
  if (!profilerEnabled())
    return -1;
  Shard *S = ShardView;
  if (!S || S->Stack.empty())
    return -1;
  return S->Stack.back().StageId;
}

void profilerNoteAlloc(const void *Ptr, int64_t Bytes) {
  if (!profilerEnabled())
    return;
  if (Shard *S = ShardView)
    S->noteAlloc(Ptr, Bytes);
}

void profilerNoteFree(const void *Ptr) {
  if (!profilerEnabled())
    return;
  if (Shard *S = ShardView)
    S->noteFree(Ptr);
}

void profilerReset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Retired.clear();
  for (Shard *S : R.Live) {
    S->Slots.clear();
    // Leave any in-progress stack alone; its frames re-accumulate from
    // their original enter timestamps when they exit.
  }
}

ProfileReport profilerReport() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  std::vector<StageSlot> Merged = R.Retired;
  if (Merged.size() < R.Names.size())
    Merged.resize(R.Names.size());
  for (Shard *S : R.Live) {
    if (Merged.size() < S->Slots.size())
      Merged.resize(S->Slots.size());
    for (size_t I = 0; I < S->Slots.size(); ++I)
      Shard::mergeSlot(Merged[I], S->Slots[I]);
  }
  ProfileReport Report;
  for (size_t I = 0; I < Merged.size(); ++I) {
    const StageSlot &S = Merged[I];
    if (S.Invocations == 0 && S.SelfNanos == 0 && S.TotalNanos == 0 &&
        S.PeakBytes == 0)
      continue;
    StageProfile P;
    P.Name = I < R.Names.size() ? R.Names[I] : "?";
    P.Invocations = S.Invocations;
    P.SelfNanos = S.SelfNanos;
    P.TotalNanos = S.TotalNanos;
    P.PeakBytes = S.PeakBytes;
    Report.Stages.push_back(std::move(P));
  }
  std::sort(Report.Stages.begin(), Report.Stages.end(),
            [](const StageProfile &A, const StageProfile &B) {
              if (A.SelfNanos != B.SelfNanos)
                return A.SelfNanos > B.SelfNanos;
              return A.Name < B.Name;
            });
  return Report;
}

int64_t ProfileReport::totalSelfNanos() const {
  int64_t Sum = 0;
  for (const StageProfile &S : Stages)
    Sum += S.SelfNanos;
  return Sum;
}

std::string ProfileReport::str() const {
  std::string Out;
  char Line[256];
  snprintf(Line, sizeof(Line), "%-28s %10s %12s %12s %12s %12s\n", "stage",
           "calls", "self_ms", "child_ms", "total_ms", "peak_bytes");
  Out += Line;
  for (const StageProfile &S : Stages) {
    snprintf(Line, sizeof(Line),
             "%-28s %10lld %12.3f %12.3f %12.3f %12lld\n", S.Name.c_str(),
             (long long)S.Invocations, (double)S.SelfNanos / 1e6,
             (double)S.childNanos() / 1e6, (double)S.TotalNanos / 1e6,
             (long long)S.PeakBytes);
    Out += Line;
  }
  snprintf(Line, sizeof(Line), "%-28s %10s %12.3f\n", "total", "",
           (double)totalSelfNanos() / 1e6);
  Out += Line;
  return Out;
}

std::string ProfileReport::toJson() const {
  std::string Out = "[";
  for (size_t I = 0; I < Stages.size(); ++I) {
    const StageProfile &S = Stages[I];
    if (I)
      Out += ",";
    Out += "{\"name\":\"" + S.Name + "\"";
    Out += ",\"invocations\":" + std::to_string(S.Invocations);
    Out += ",\"self_ns\":" + std::to_string(S.SelfNanos);
    Out += ",\"total_ns\":" + std::to_string(S.TotalNanos);
    Out += ",\"peak_bytes\":" + std::to_string(S.PeakBytes);
    Out += "}";
  }
  Out += "]";
  return Out;
}

} // namespace halide
