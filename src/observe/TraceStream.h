//===-- observe/TraceStream.h - Binary value-trace writer -------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sink for value-level trace events (Func::traceLoads() and friends,
/// lowered by transforms/InjectTracing.h into Call::TraceLoad/TraceStore/
/// TraceBegin/TraceEnd intrinsics that all three engines execute).
///
/// Binary format ("HLTRACE1", host-endian):
///
///   file   := magic(8 bytes "HLTRACE1") record*
///   record := u16 StageId   -- profilerStageId of the buffer (Profiler.h)
///             u8  Kind      -- 0 load, 1 store, 2 begin, 3 end, 4 name
///             u8  TypeCode  -- traceTypeCode() of the value type; 0 if n/a
///             u16 Lanes     -- value lanes (loads/stores); 0 otherwise
///             u16 NumCoords -- i32 words that follow
///             i32 Coords[NumCoords]
///             u64 Bits[Lanes]
///
/// Loads/stores carry one flat (post-storage-flattening) buffer index per
/// lane in Coords and the value bits per lane in Bits: integers are
/// sign-extended (unsigned zero-extended) to 64 bits, floats are stored as
/// the bits of the value converted to double (f32 rounds through float
/// first), so the same access produces the same record in every engine.
/// Begin records carry the realization's extents in Coords; End records
/// carry nothing. Name records (appended on traceStreamStop) map StageId to
/// a UTF-8 name packed NUL-padded into the Coords words.
///
/// Writer discipline: events append to per-thread buffers that flush to the
/// file under one mutex (the Profiler shard idiom), so threaded runs
/// interleave at flush granularity — readers must treat a threaded trace as
/// an event multiset. A byte budget (HALIDE_TRACE_MAX_MB, default 1024)
/// applies backpressure: once reached, further events are counted in
/// EventsDropped instead of written. When no stream is active every emit
/// returns after one relaxed atomic load.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_OBSERVE_TRACESTREAM_H
#define HALIDE_OBSERVE_TRACESTREAM_H

#include "ir/Type.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace halide {

/// Event kinds as stored in the record's Kind byte.
enum class TraceEventKind : uint8_t {
  TraceLoad = 0,
  TraceStore = 1,
  TraceBegin = 2,
  TraceEnd = 3,
  TraceName = 4,
};

/// Packs a value type into one byte: (code << 4) | log2(bits), with code
/// 0 = int, 1 = uint, 2 = float (lane count travels in the record's Lanes
/// field, so only the element type is encoded).
uint8_t traceTypeCode(Type T);
/// Printable form of a packed type code, e.g. "f32", "u8", "i32".
std::string traceTypeCodeStr(uint8_t Code);

/// Value-bit normalization shared by the engines: integers sign-extend
/// through int64 (unsigned values arrive already zero-extended/wrapped
/// non-negative), floats store the bit pattern of the double value.
inline uint64_t traceBitsOfInt(int64_t V) { return (uint64_t)V; }
uint64_t traceBitsOfDouble(double V);
double traceDoubleOfBits(uint64_t Bits);

/// Counters for the current (or, after stop, the most recent) stream.
/// Mirrored into the metrics registry as trace.events_emitted /
/// trace.events_dropped / trace.bytes_written.
struct TraceStreamStats {
  int64_t EventsEmitted = 0;
  int64_t EventsDropped = 0;
  int64_t BytesWritten = 0;
};

/// Opens \p Path for writing, writes the magic, resets the counters, and
/// enables event collection. Returns false (stream stays inactive) if the
/// file cannot be opened or a stream is already active.
bool traceStreamStart(const std::string &Path);

/// Disables collection, flushes every thread's pending events, appends one
/// Name record per interned stage id, and closes the file.
void traceStreamStop();

/// One relaxed atomic load; the engines' only trace-off cost.
bool traceStreamActive();

TraceStreamStats traceStreamStats();

/// Appends one event. \p Bits may be null when \p Lanes is 0 (begin/end).
/// No-op (beyond the relaxed Active load) when no stream is active.
void traceStreamEmit(int StageId, TraceEventKind Kind, uint8_t TypeCode,
                     int Lanes, const int32_t *Coords, int NumCoords,
                     const uint64_t *Bits);

//===----------------------------------------------------------------------===//
// Reader (bench/trace_analyzer, DiffTest parity leg, tests).
//===----------------------------------------------------------------------===//

/// One decoded record.
struct TraceEvent {
  uint16_t StageId = 0;
  TraceEventKind Kind = TraceEventKind::TraceLoad;
  uint8_t TypeCode = 0;
  std::vector<int32_t> Coords; ///< flat indices (load/store) or extents
  std::vector<uint64_t> Bits;  ///< one value word per lane
  std::string Name;            ///< Name records only

  bool operator==(const TraceEvent &O) const {
    return StageId == O.StageId && Kind == O.Kind && TypeCode == O.TypeCode &&
           Coords == O.Coords && Bits == O.Bits && Name == O.Name;
  }
};

/// Parses a trace file. Returns false and fills \p Error on a malformed
/// file (bad magic, truncated record).
bool readTraceFile(const std::string &Path, std::vector<TraceEvent> *Out,
                   std::string *Error);

} // namespace halide

#endif // HALIDE_OBSERVE_TRACESTREAM_H
