//===-- observe/MetricsRegistry.cpp - Unified runtime metrics -------------===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "observe/MetricsRegistry.h"

#include "lang/Pipeline.h"
#include "observe/TraceStream.h"
#include "runtime/BufferPool.h"
#include "runtime/GpuSim.h"
#include "runtime/TaskScheduler.h"

#include <atomic>

namespace halide {

namespace {

std::atomic<int64_t> FramesSubmitted{0};
std::atomic<int64_t> FramesCompleted{0};

} // namespace

int64_t metricsNoteFrameSubmitted() {
  return FramesSubmitted.fetch_add(1, std::memory_order_relaxed) + 1;
}

void metricsNoteFrameCompleted() {
  FramesCompleted.fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot metricsSnapshot() {
  MetricsSnapshot Snap;
  auto Add = [&Snap](const char *Name, int64_t V) {
    Snap.Values.emplace_back(Name, V);
  };

  CompileCounters CC = Pipeline::compileCounters();
  Add("compile.lowerings", CC.Lowerings);
  Add("compile.backend_compiles", CC.BackendCompiles);
  Add("compile.cache_hits", CC.CacheHits);

  TaskSchedulerStats TS = taskSchedulerStats();
  Add("scheduler.threads", TS.Threads);
  Add("scheduler.steals", TS.Steals);
  Add("scheduler.chunks_executed", TS.ChunksExecuted);
  Add("scheduler.async_jobs_executed", TS.AsyncJobsExecuted);
  Add("scheduler.peak_queue_depth", TS.PeakQueueDepth);

  BufferPoolStats BP = bufferPoolStats();
  Add("pool.hits", BP.PoolHits);
  Add("pool.fresh_allocations", BP.FreshAllocations);
  Add("pool.capacity_evictions", BP.CapacityEvictions);
  Add("pool.bytes_held", BP.BytesHeld);
  Add("pool.bytes_live", BP.BytesLive);

  const GpuStats &GS = gpuSim().stats();
  Add("gpu.kernel_launches", GS.KernelLaunches);
  Add("gpu.blocks_executed", GS.BlocksExecuted);

  Add("serve.frames_submitted",
      FramesSubmitted.load(std::memory_order_relaxed));
  Add("serve.frames_completed",
      FramesCompleted.load(std::memory_order_relaxed));

  TraceStreamStats TR = traceStreamStats();
  Add("trace.events_emitted", TR.EventsEmitted);
  Add("trace.events_dropped", TR.EventsDropped);
  Add("trace.bytes_written", TR.BytesWritten);
  return Snap;
}

int64_t MetricsSnapshot::get(const std::string &Name) const {
  for (const auto &KV : Values)
    if (KV.first == Name)
      return KV.second;
  return 0;
}

std::string MetricsSnapshot::str() const {
  std::string Out;
  for (const auto &KV : Values) {
    Out += KV.first;
    Out += ' ';
    Out += std::to_string(KV.second);
    Out += '\n';
  }
  return Out;
}

std::string MetricsSnapshot::toJson() const {
  std::string Out = "{";
  for (size_t I = 0; I < Values.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\"" + Values[I].first + "\":" + std::to_string(Values[I].second);
  }
  Out += "}";
  return Out;
}

} // namespace halide
