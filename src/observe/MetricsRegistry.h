//===-- observe/MetricsRegistry.h - Unified runtime metrics -----*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One snapshot call unifying the runtime counters that previously lived
/// in five ad-hoc places: the compile cache (Pipeline::compileCounters),
/// the work-stealing TaskScheduler (taskSchedulerStats), the BufferPool
/// (bufferPoolStats), the simulated GPU (gpuSim().stats()), and the
/// serving layer's frame counters (maintained here, fed by
/// Pipeline::realizeAsync). The registry is pull-based: nothing is
/// registered or pushed at runtime; metricsSnapshot() reads each
/// subsystem's counters under its own synchronization and returns a
/// stable, ordered name -> value list. Exported names (the glossary
/// lives in README.md "Observability"):
///
///   compile.lowerings, compile.backend_compiles, compile.cache_hits,
///   scheduler.threads, scheduler.steals, scheduler.chunks_executed,
///   scheduler.async_jobs_executed, scheduler.peak_queue_depth,
///   pool.hits, pool.fresh_allocations, pool.capacity_evictions,
///   pool.bytes_held, pool.bytes_live,
///   gpu.kernel_launches, gpu.blocks_executed,
///   serve.frames_submitted, serve.frames_completed,
///   trace.events_emitted, trace.events_dropped, trace.bytes_written
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_OBSERVE_METRICSREGISTRY_H
#define HALIDE_OBSERVE_METRICSREGISTRY_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace halide {

/// A point-in-time view of every exported runtime counter, in a fixed
/// order (see the header comment for the name glossary).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> Values;

  /// Value under \p Name, or 0 when absent.
  int64_t get(const std::string &Name) const;
  /// "name value" lines, one per metric.
  std::string str() const;
  /// Flat JSON object {"name": value, ...}.
  std::string toJson() const;
};

/// Reads every subsystem's counters (each under its own lock/atomics)
/// and returns them as one snapshot. Counters from different subsystems
/// are not read atomically with respect to each other.
MetricsSnapshot metricsSnapshot();

/// Serving-layer frame counters, bumped by Pipeline::realizeAsync at
/// submission and by the frame job at completion. Returns the frame's
/// 1-based sequence number (used to label trace spans).
int64_t metricsNoteFrameSubmitted();
void metricsNoteFrameCompleted();

} // namespace halide

#endif // HALIDE_OBSERVE_METRICSREGISTRY_H
