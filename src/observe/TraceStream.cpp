//===-- observe/TraceStream.cpp - Binary value-trace writer ---------------===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "observe/TraceStream.h"
#include "observe/Profiler.h"
#include "support/Util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace halide {

namespace {

constexpr char Magic[8] = {'H', 'L', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr size_t FlushThresholdBytes = 64 * 1024;

std::atomic<bool> Active{false};

struct Shard;

/// Global writer state. Intentionally leaked for the same reason as the
/// profiler registry: worker threads' thread_local shard destructors run
/// during static destruction and must find a live registry.
struct Writer {
  std::mutex Mu; // guards File, Live, and the counters' flush side
  FILE *File = nullptr;
  std::vector<Shard *> Live;
  int64_t MaxBytes = 0;

  std::atomic<int64_t> EventsEmitted{0};
  std::atomic<int64_t> EventsDropped{0};
  std::atomic<int64_t> BytesWritten{0};
  /// Bytes admitted past the budget check (buffered or written). Checked
  /// against MaxBytes at emit time so backpressure applies before the
  /// buffers grow, not only at flush.
  std::atomic<int64_t> BytesReserved{0};
};

Writer &writer() {
  static Writer *W = new Writer; // never destroyed, by design
  return *W;
}

/// One thread's event buffer. Appends are uncontended (thread-local); the
/// per-shard mutex only synchronizes against traceStreamStop flushing a
/// still-registered shard from another thread.
struct Shard {
  std::mutex Mu;
  std::vector<uint8_t> Buf;

  Shard() {
    Writer &W = writer();
    std::lock_guard<std::mutex> Lock(W.Mu);
    W.Live.push_back(this);
  }

  ~Shard() {
    Writer &W = writer();
    std::lock_guard<std::mutex> Lock(W.Mu);
    flushLocked(W);
    W.Live.erase(std::remove(W.Live.begin(), W.Live.end(), this),
                 W.Live.end());
  }

  /// Writes the buffer to the file. Caller holds W.Mu.
  void flushLocked(Writer &W) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Buf.empty() && W.File) {
      size_t N = fwrite(Buf.data(), 1, Buf.size(), W.File);
      W.BytesWritten.fetch_add((int64_t)N, std::memory_order_relaxed);
    }
    Buf.clear();
  }
};

Shard &shard() {
  static thread_local Shard S;
  return S;
}

void append16(std::vector<uint8_t> &B, uint16_t V) {
  B.insert(B.end(), (const uint8_t *)&V, (const uint8_t *)&V + 2);
}

void append32(std::vector<uint8_t> &B, int32_t V) {
  B.insert(B.end(), (const uint8_t *)&V, (const uint8_t *)&V + 4);
}

void append64(std::vector<uint8_t> &B, uint64_t V) {
  B.insert(B.end(), (const uint8_t *)&V, (const uint8_t *)&V + 8);
}

void appendRecord(std::vector<uint8_t> &B, int StageId, TraceEventKind Kind,
                  uint8_t TypeCode, int Lanes, const int32_t *Coords,
                  int NumCoords, const uint64_t *Bits) {
  append16(B, (uint16_t)StageId);
  B.push_back((uint8_t)Kind);
  B.push_back(TypeCode);
  append16(B, (uint16_t)Lanes);
  append16(B, (uint16_t)NumCoords);
  for (int I = 0; I < NumCoords; ++I)
    append32(B, Coords[I]);
  for (int I = 0; I < Lanes; ++I)
    append64(B, Bits[I]);
}

int64_t maxBytesFromEnv() {
  const char *Env = std::getenv("HALIDE_TRACE_MAX_MB");
  int64_t Mb = 1024;
  if (Env && *Env) {
    int64_t V = std::atoll(Env);
    if (V > 0)
      Mb = V;
  }
  return Mb * 1024 * 1024;
}

} // namespace

uint8_t traceTypeCode(Type T) {
  int Log2 = 0;
  for (int B = T.Bits; B > 1; B >>= 1)
    ++Log2;
  int Code = T.isFloat() ? 2 : T.isUInt() ? 1 : 0;
  return (uint8_t)((Code << 4) | Log2);
}

std::string traceTypeCodeStr(uint8_t Code) {
  const char *Prefix[] = {"i", "u", "f", "?"};
  int Kind = (Code >> 4) & 3;
  int Bits = 1 << (Code & 15);
  return std::string(Prefix[Kind]) + std::to_string(Bits);
}

uint64_t traceBitsOfDouble(double V) {
  uint64_t B;
  memcpy(&B, &V, sizeof(B));
  return B;
}

double traceDoubleOfBits(uint64_t Bits) {
  double V;
  memcpy(&V, &Bits, sizeof(V));
  return V;
}

bool traceStreamStart(const std::string &Path) {
  Writer &W = writer();
  std::lock_guard<std::mutex> Lock(W.Mu);
  if (W.File)
    return false; // a stream is already active
  FILE *F = fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  if (fwrite(Magic, 1, sizeof(Magic), F) != sizeof(Magic)) {
    fclose(F);
    return false;
  }
  W.File = F;
  W.MaxBytes = maxBytesFromEnv();
  W.EventsEmitted.store(0, std::memory_order_relaxed);
  W.EventsDropped.store(0, std::memory_order_relaxed);
  W.BytesWritten.store(0, std::memory_order_relaxed);
  W.BytesReserved.store(0, std::memory_order_relaxed);
  // Drop any events a racing emitter buffered after the previous stop.
  for (Shard *S : W.Live) {
    std::lock_guard<std::mutex> SLock(S->Mu);
    S->Buf.clear();
  }
  Active.store(true, std::memory_order_relaxed);
  return true;
}

void traceStreamStop() {
  Writer &W = writer();
  Active.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(W.Mu);
  if (!W.File)
    return;
  for (Shard *S : W.Live)
    S->flushLocked(W);
  // Name records, so readers can resolve stage ids without the process's
  // intern table. Written directly: stop is single-threaded by contract.
  std::vector<uint8_t> B;
  int Count = profilerStageCount();
  for (int Id = 0; Id < Count; ++Id) {
    std::string Name = profilerStageName(Id);
    int Words = (int)((Name.size() + 4) / 4); // >=1 word, NUL-padded
    std::vector<int32_t> Packed(Words, 0);
    memcpy(Packed.data(), Name.data(), Name.size());
    appendRecord(B, Id, TraceEventKind::TraceName, 0, 0, Packed.data(),
                 Words, nullptr);
  }
  size_t N = fwrite(B.data(), 1, B.size(), W.File);
  W.BytesWritten.fetch_add((int64_t)N, std::memory_order_relaxed);
  fclose(W.File);
  W.File = nullptr;
}

bool traceStreamActive() { return Active.load(std::memory_order_relaxed); }

TraceStreamStats traceStreamStats() {
  Writer &W = writer();
  TraceStreamStats S;
  S.EventsEmitted = W.EventsEmitted.load(std::memory_order_relaxed);
  S.EventsDropped = W.EventsDropped.load(std::memory_order_relaxed);
  S.BytesWritten = W.BytesWritten.load(std::memory_order_relaxed);
  return S;
}

void traceStreamEmit(int StageId, TraceEventKind Kind, uint8_t TypeCode,
                     int Lanes, const int32_t *Coords, int NumCoords,
                     const uint64_t *Bits) {
  if (!traceStreamActive())
    return;
  Writer &W = writer();
  int64_t RecordBytes = 8 + 4 * (int64_t)NumCoords + 8 * (int64_t)Lanes;
  if (W.BytesReserved.fetch_add(RecordBytes, std::memory_order_relaxed) +
          RecordBytes >
      W.MaxBytes) {
    W.BytesReserved.fetch_sub(RecordBytes, std::memory_order_relaxed);
    W.EventsDropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard &S = shard();
  bool NeedFlush = false;
  {
    std::lock_guard<std::mutex> SLock(S.Mu);
    appendRecord(S.Buf, StageId, Kind, TypeCode, Lanes, Coords, NumCoords,
                 Bits);
    NeedFlush = S.Buf.size() >= FlushThresholdBytes;
  }
  W.EventsEmitted.fetch_add(1, std::memory_order_relaxed);
  if (NeedFlush) {
    std::lock_guard<std::mutex> Lock(W.Mu);
    S.flushLocked(W);
  }
}

bool readTraceFile(const std::string &Path, std::vector<TraceEvent> *Out,
                   std::string *Error) {
  Out->clear();
  FILE *F = fopen(Path.c_str(), "rb");
  if (!F) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  std::vector<uint8_t> Data;
  uint8_t Chunk[64 * 1024];
  size_t N;
  while ((N = fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Data.insert(Data.end(), Chunk, Chunk + N);
  fclose(F);
  if (Data.size() < sizeof(Magic) ||
      memcmp(Data.data(), Magic, sizeof(Magic)) != 0) {
    if (Error)
      *Error = Path + ": bad magic";
    return false;
  }
  size_t Pos = sizeof(Magic);
  while (Pos < Data.size()) {
    if (Data.size() - Pos < 8) {
      if (Error)
        *Error = Path + ": truncated record header";
      return false;
    }
    TraceEvent E;
    uint16_t U16;
    memcpy(&U16, &Data[Pos], 2);
    E.StageId = U16;
    E.Kind = (TraceEventKind)Data[Pos + 2];
    E.TypeCode = Data[Pos + 3];
    uint16_t Lanes, NumCoords;
    memcpy(&Lanes, &Data[Pos + 4], 2);
    memcpy(&NumCoords, &Data[Pos + 6], 2);
    Pos += 8;
    size_t Body = 4 * (size_t)NumCoords + 8 * (size_t)Lanes;
    if (Data.size() - Pos < Body) {
      if (Error)
        *Error = Path + ": truncated record body";
      return false;
    }
    E.Coords.resize(NumCoords);
    memcpy(E.Coords.data(), &Data[Pos], 4 * (size_t)NumCoords);
    Pos += 4 * (size_t)NumCoords;
    E.Bits.resize(Lanes);
    memcpy(E.Bits.data(), &Data[Pos], 8 * (size_t)Lanes);
    Pos += 8 * (size_t)Lanes;
    if (E.Kind == TraceEventKind::TraceName) {
      const char *Chars = (const char *)E.Coords.data();
      size_t MaxLen = E.Coords.size() * 4;
      size_t Len = 0;
      while (Len < MaxLen && Chars[Len])
        ++Len;
      E.Name.assign(Chars, Len);
      E.Coords.clear();
    }
    Out->push_back(std::move(E));
  }
  return true;
}

} // namespace halide
