//===-- transforms/InjectTracing.cpp - Value-trace instrumentation --------===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transforms/InjectTracing.h"

#include "ir/IRMutator.h"
#include "lang/Function.h"
#include "transforms/StorageFlattening.h"

#include <vector>

namespace halide {

namespace {

class InjectTracing : public IRMutator {
public:
  InjectTracing(const std::map<std::string, Function> &Env) : Env(Env) {
    for (const auto &[Name, F] : Env)
      if (F.traceLoads() || F.traceStores() || F.traceRealizations())
        TraceAll = false;
  }

  bool shouldTraceLoads(const std::string &Buf) const {
    auto It = Env.find(Buf);
    return It == Env.end() ? TraceAll : TraceAll || It->second.traceLoads();
  }

  bool shouldTraceStores(const std::string &Buf) const {
    auto It = Env.find(Buf);
    return It == Env.end() ? TraceAll : TraceAll || It->second.traceStores();
  }

  bool shouldTraceRealizations(const std::string &Buf) const {
    auto It = Env.find(Buf);
    return It == Env.end() ? TraceAll
                           : TraceAll || It->second.traceRealizations();
  }

private:
  const std::map<std::string, Function> &Env;
  /// With no per-stage flags anywhere, a traced target traces everything.
  bool TraceAll = true;

  Expr visit(const Load *Op) override {
    Expr E = IRMutator::visit(Op);
    if (!shouldTraceLoads(Op->Name))
      return E;
    return Call::make(Op->NodeType, Call::TraceLoad,
                      {StringImm::make(Op->Name), E}, CallType::Intrinsic);
  }

  Stmt visit(const Store *Op) override {
    Expr Value = mutate(Op->Value);
    Expr Index = mutate(Op->Index);
    if (!shouldTraceStores(Op->Name)) {
      if (Value.sameAs(Op->Value) && Index.sameAs(Op->Index))
        return Op;
      return Store::make(Op->Name, std::move(Value), std::move(Index));
    }
    return Evaluate::make(Call::make(
        Int(32), Call::TraceStore,
        {StringImm::make(Op->Name), std::move(Value), std::move(Index)},
        CallType::Intrinsic));
  }

  Stmt visit(const Allocate *Op) override {
    Stmt Body = mutate(Op->Body);
    if (shouldTraceRealizations(Op->Name))
      Body = bracketRealization(Op->Name, Op->Extents, std::move(Body));
    if (Body.sameAs(Op->Body))
      return Op;
    return Allocate::make(Op->Name, Op->ElemType, Op->Extents,
                          std::move(Body), Op->InSharedMemory);
  }

public:
  /// Wraps \p Body in begin(extents...)/end events for \p Buf.
  static Stmt bracketRealization(const std::string &Buf,
                                 const std::vector<Expr> &Extents,
                                 Stmt Body) {
    std::vector<Expr> BeginArgs = {StringImm::make(Buf)};
    for (const Expr &E : Extents)
      BeginArgs.push_back(E);
    Stmt Begin = Evaluate::make(Call::make(Int(32), Call::TraceBegin,
                                           std::move(BeginArgs),
                                           CallType::Intrinsic));
    Stmt End = Evaluate::make(Call::make(Int(32), Call::TraceEnd,
                                         {StringImm::make(Buf)},
                                         CallType::Intrinsic));
    return Block::make(std::move(Begin),
                       Block::make(std::move(Body), std::move(End)));
  }
};

} // namespace

LoweredPipeline injectTracing(const LoweredPipeline &P) {
  LoweredPipeline Out = P;
  InjectTracing M(P.Env);
  Out.Body = M.mutate(P.Body);
  if (!Out.Body.defined())
    return Out;
  // The output buffer is caller-allocated (no Allocate node); bracket the
  // whole pipeline with its realization using the buffer's extent
  // metadata parameters, which every backend can resolve.
  const std::string OutputName = P.Output.name();
  if (M.shouldTraceRealizations(OutputName)) {
    std::vector<Expr> Extents;
    for (int D = 0; D < P.Output.dimensions(); ++D)
      Extents.push_back(Variable::make(
          Int(32), bufferExtentName(OutputName, D), /*IsParam=*/true));
    Out.Body = InjectTracing::bracketRealization(OutputName, Extents,
                                                 std::move(Out.Body));
  }
  return Out;
}

} // namespace halide
