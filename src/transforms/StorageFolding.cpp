//===-- transforms/StorageFolding.cpp -------------------------------------------=//

#include "transforms/StorageFolding.h"
#include "analysis/Bounds.h"
#include "analysis/Derivatives.h"
#include "analysis/Monotonic.h"
#include "ir/IRMutator.h"
#include "ir/IROperators.h"
#include "ir/IRVisitor.h"
#include "transforms/Simplify.h"
#include "transforms/Substitute.h"

#include <algorithm>

using namespace halide;

namespace {

int64_t nextPowerOfTwo(int64_t V) {
  int64_t P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

/// Proves a footprint span constant. The raw span cancels when min and
/// max reference the same ledger names, but a loop range interned as two
/// distinct endpoint names (hint.min/hint.max) hides the cancellation —
/// expand definitions latest-first (so chains resolve transitively) and
/// retry, under a node budget so a pathological chain cannot reintroduce
/// the exponential blowup this proof used to ride on.
bool proveConstSpan(const Expr &Span, const ExprLedger &Ledger,
                    int64_t *Out) {
  Expr S = simplify(Span);
  if (proveConstInt(S, Out))
    return true;
  constexpr size_t ExpandBudget = size_t(1) << 14;
  const auto &Defs = Ledger.defs();
  for (size_t I = Defs.size(); I-- > 0;) {
    if (!exprUsesVar(S, Defs[I].first))
      continue;
    if (irNodeCountExceeds(S, ExpandBudget))
      return false;
    S = simplify(substitute(Defs[I].first, Defs[I].second, S));
    if (proveConstInt(S, Out))
      return true;
  }
  return false;
}

class ProduceFinder : public IRVisitor {
public:
  explicit ProduceFinder(const std::string &Name) : Name(Name) {}
  bool Found = false;
  void visit(const ProducerConsumer *Op) override {
    if (Op->Name == Name && Op->IsProducer) {
      Found = true;
      return;
    }
    IRVisitor::visit(Op);
  }

private:
  const std::string &Name;
};

bool containsProduceOf(const Stmt &S, const std::string &Name) {
  ProduceFinder Finder(Name);
  S.accept(&Finder);
  return Finder.Found;
}

/// Finds the innermost loop on the path from a statement to the produce
/// node of Name.
const For *innermostPathLoop(const Stmt &S, const std::string &Name) {
  const For *Innermost = nullptr;
  Stmt Cursor = S;
  while (Cursor.defined()) {
    if (const For *Loop = Cursor.as<For>()) {
      if (!containsProduceOf(Loop->Body, Name))
        return Innermost;
      Innermost = Loop;
      Cursor = Loop->Body;
      continue;
    }
    if (const LetStmt *L = Cursor.as<LetStmt>()) {
      Cursor = L->Body;
      continue;
    }
    if (const Realize *R = Cursor.as<Realize>()) {
      Cursor = R->Body;
      continue;
    }
    if (const ProducerConsumer *PC = Cursor.as<ProducerConsumer>()) {
      if (PC->Name == Name && PC->IsProducer)
        return Innermost;
      Cursor = PC->Body;
      continue;
    }
    if (const Block *B = Cursor.as<Block>()) {
      // Follow the branch containing the produce node.
      if (containsProduceOf(B->First, Name)) {
        Cursor = B->First;
        continue;
      }
      Cursor = B->Rest;
      continue;
    }
    if (const IfThenElse *I = Cursor.as<IfThenElse>()) {
      if (containsProduceOf(I->ThenCase, Name)) {
        Cursor = I->ThenCase;
        continue;
      }
      Cursor = I->ElseCase;
      continue;
    }
    return Innermost;
  }
  return Innermost;
}

/// Rewrites dimension \p Dim of every access to \p Name modulo \p Factor.
class FoldAccesses : public IRMutator {
public:
  FoldAccesses(const std::string &Name, int Dim, int64_t Factor)
      : Name(Name), Dim(Dim), Factor(Factor) {}

protected:
  Expr visit(const Call *Op) override {
    Expr Mutated = IRMutator::visit(Op);
    const Call *C = Mutated.as<Call>();
    if (!C || C->Name != Name || C->CallKind != CallType::Halide)
      return Mutated;
    std::vector<Expr> Args = C->Args;
    Args[Dim] = Args[Dim] % makeConst(Int(32), Factor);
    return Call::make(C->NodeType, C->Name, std::move(Args), C->CallKind);
  }

  Stmt visit(const Provide *Op) override {
    Stmt Mutated = IRMutator::visit(Op);
    const Provide *P = Mutated.as<Provide>();
    if (!P || P->Name != Name)
      return Mutated;
    std::vector<Expr> Args = P->Args;
    Args[Dim] = Args[Dim] % makeConst(Int(32), Factor);
    return Provide::make(P->Name, P->Value, std::move(Args));
  }

private:
  const std::string &Name;
  int Dim;
  int64_t Factor;
};

class StorageFoldingPass : public IRMutator {
public:
  explicit StorageFoldingPass(const std::map<std::string, Function> &Env)
      : Env(Env) {}

protected:
  Stmt visit(const Realize *Op) override {
    Stmt Body = mutate(Op->Body);

    const For *Loop = innermostPathLoop(Body, Op->Name);
    if (!Loop || Loop->Kind != ForType::Serial)
      return rebuild(Op, Body);

    // The per-iteration footprint of this function within the loop body.
    // Keeping the box raw against a ledger lets the span below cancel
    // structurally (max and min referencing the same shared name subtract
    // away) where a materialized copy per endpoint could not.
    Scope<Interval> Empty;
    ExprLedger Ledger;
    Box Reads = boxRequired(Loop->Body, Op->Name, Empty, &Ledger);
    Box Writes = boxProvided(Loop->Body, Op->Name, Empty, &Ledger);
    if (Reads.empty() || Writes.empty() ||
        Reads.size() != Writes.size())
      return rebuild(Op, Body);

    // Loop-variable dependence of each shared definition, in creation
    // order (later definitions may reference earlier ones).
    Scope<Monotonic> DefMono;
    for (const auto &[DefName, Def] : Ledger.defs())
      DefMono.push(DefName, isMonotonic(Def, Loop->Name, DefMono));

    for (int D = 0; D < int(Reads.size()); ++D) {
      if (!Reads[D].isBounded() || !Writes[D].isBounded())
        continue;
      // The footprint must march monotonically with the loop...
      Monotonic ReadMin = isMonotonic(Reads[D].Min, Loop->Name, DefMono);
      Monotonic WriteMin = isMonotonic(Writes[D].Min, Loop->Name, DefMono);
      if (ReadMin != Monotonic::Increasing ||
          WriteMin != Monotonic::Increasing)
        continue;
      // ...and have a constant-boundable extent.
      int64_t ReadSpan, WriteSpan;
      if (!proveConstSpan(Reads[D].Max - Reads[D].Min + 1, Ledger,
                          &ReadSpan) ||
          !proveConstSpan(Writes[D].Max - Writes[D].Min + 1, Ledger,
                          &WriteSpan))
        continue;
      int64_t Factor =
          nextPowerOfTwo(std::max({ReadSpan, WriteSpan, int64_t(1)}));
      // Only fold if it actually shrinks a provably larger allocation.
      int64_t AllocExtent;
      if (proveConstInt(Op->Bounds[D].Extent, &AllocExtent) &&
          AllocExtent <= Factor)
        continue;

      FoldAccesses Folder(Op->Name, D, Factor);
      Stmt Folded = Folder.mutate(Body);
      Region NewBounds = Op->Bounds;
      NewBounds[D] = Range(0, makeConst(Int(32), Factor));
      return Realize::make(Op->Name, Op->ElemType, std::move(NewBounds),
                           Folded);
    }
    return rebuild(Op, Body);
  }

private:
  static Stmt rebuild(const Realize *Op, const Stmt &Body) {
    if (Body.sameAs(Op->Body))
      return Op;
    return Realize::make(Op->Name, Op->ElemType, Op->Bounds, Body);
  }

  const std::map<std::string, Function> &Env;
};

} // namespace

Stmt halide::storageFolding(const Stmt &S,
                            const std::map<std::string, Function> &Env) {
  StorageFoldingPass Pass(Env);
  return Pass.mutate(S);
}
