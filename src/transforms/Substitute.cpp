//===-- transforms/Substitute.cpp --------------------------------------------=//

#include "transforms/Substitute.h"
#include "analysis/Scope.h"
#include "ir/IRMutator.h"

using namespace halide;

namespace {

class Substitutor : public IRMutator {
public:
  explicit Substitutor(const std::map<std::string, Expr> &Bindings)
      : Bindings(Bindings) {}

protected:
  Expr visit(const Variable *Op) override {
    if (Shadowed.contains(Op->Name))
      return Op;
    auto It = Bindings.find(Op->Name);
    if (It != Bindings.end())
      return It->second;
    return Op;
  }

  Expr visit(const Let *Op) override {
    Expr Value = mutate(Op->Value);
    ScopedBinding<int> Bind(Shadowed, Op->Name, 0);
    Expr Body = mutate(Op->Body);
    if (Value.sameAs(Op->Value) && Body.sameAs(Op->Body))
      return Op;
    return Let::make(Op->Name, Value, Body);
  }

  Stmt visit(const LetStmt *Op) override {
    Expr Value = mutate(Op->Value);
    ScopedBinding<int> Bind(Shadowed, Op->Name, 0);
    Stmt Body = mutate(Op->Body);
    if (Value.sameAs(Op->Value) && Body.sameAs(Op->Body))
      return Op;
    return LetStmt::make(Op->Name, Value, Body);
  }

  // For-loop variables also shadow.
  Stmt visit(const For *Op) override {
    Expr MinExpr = mutate(Op->MinExpr);
    Expr Extent = mutate(Op->Extent);
    ScopedBinding<int> Bind(Shadowed, Op->Name, 0);
    Stmt Body = mutate(Op->Body);
    if (MinExpr.sameAs(Op->MinExpr) && Extent.sameAs(Op->Extent) &&
        Body.sameAs(Op->Body))
      return Op;
    return For::make(Op->Name, MinExpr, Extent, Op->Kind, Body);
  }

private:
  const std::map<std::string, Expr> &Bindings;
  Scope<int> Shadowed;
};

} // namespace

Expr halide::substitute(const std::string &Name, const Expr &Replacement,
                        const Expr &E) {
  std::map<std::string, Expr> Bindings = {{Name, Replacement}};
  Substitutor Sub(Bindings);
  return Sub.mutate(E);
}

Stmt halide::substitute(const std::string &Name, const Expr &Replacement,
                        const Stmt &S) {
  std::map<std::string, Expr> Bindings = {{Name, Replacement}};
  Substitutor Sub(Bindings);
  return Sub.mutate(S);
}

Expr halide::substitute(const std::map<std::string, Expr> &Bindings,
                        const Expr &E) {
  Substitutor Sub(Bindings);
  return Sub.mutate(E);
}

Stmt halide::substitute(const std::map<std::string, Expr> &Bindings,
                        const Stmt &S) {
  Substitutor Sub(Bindings);
  return Sub.mutate(S);
}
