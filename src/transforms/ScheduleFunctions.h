//===-- transforms/ScheduleFunctions.h - Loop synthesis ---------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop synthesis (paper section 4.1): builds the loop nest realizing each
/// function according to its schedule's domain order, and recursively
/// injects the storage (Realize) and computation (ProducerConsumer) of each
/// non-inlined function at the loop levels given by its call schedule.
///
/// Loop bounds are left as symbolic variables ("f.v.loop_min" etc.) defined
/// by LetStmts in terms of the function's required-region variables
/// ("f.min.d", "f.extent.d"), which the subsequent bounds inference pass
/// (section 4.2) defines. Split dimensions round the traversed domain up to
/// the next multiple of the split factor, exactly as the paper describes.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_SCHEDULEFUNCTIONS_H
#define HALIDE_TRANSFORMS_SCHEDULEFUNCTIONS_H

#include "lang/Function.h"

#include <map>
#include <string>
#include <vector>

namespace halide {

/// Canonical name of the loop variable for dimension \p Var of \p Func.
inline std::string loopVarName(const std::string &Func,
                               const std::string &Var) {
  return Func + "." + Var;
}

/// Names of the required-region variables of dimension \p D of \p Func.
inline std::string funcMinName(const std::string &Func, int D) {
  return Func + ".min." + std::to_string(D);
}
inline std::string funcExtentName(const std::string &Func, int D) {
  return Func + ".extent." + std::to_string(D);
}

/// Builds the complete initial statement for the pipeline: the output
/// function's loop nest with every non-inlined function's Realize and
/// produce/consume nest injected at its scheduled levels. Calls to inlined
/// functions remain as Call nodes (resolved by the inline pass).
Stmt scheduleFunctions(const Function &Output,
                       const std::vector<std::string> &Order,
                       const std::map<std::string, Function> &Env);

/// Builds just the produce/update loop nest for one function (used by
/// scheduleFunctions and by tests).
Stmt buildProduceNest(const Function &F);

/// The extent actually written for dimension \p D when the loops of \p F
/// traverse a required extent of \p RequiredExtent: the product of leaf
/// loop extents after all splits, i.e. the round-up the paper describes.
Expr writtenExtent(const Function &F, int D, Expr RequiredExtent);

} // namespace halide

#endif // HALIDE_TRANSFORMS_SCHEDULEFUNCTIONS_H
