//===-- transforms/StorageFlattening.cpp ----------------------------------------=//

#include "transforms/StorageFlattening.h"
#include "ir/IRMutator.h"
#include "ir/IROperators.h"

using namespace halide;

namespace {

std::string allocMinName(const std::string &Name, int D) {
  return Name + ".alloc_min." + std::to_string(D);
}
std::string allocStrideName(const std::string &Name, int D) {
  return Name + ".alloc_stride." + std::to_string(D);
}
std::string allocExtentName(const std::string &Name, int D) {
  return Name + ".alloc_extent." + std::to_string(D);
}

class Flatten : public IRMutator {
public:
  Flatten(const std::string &OutputName,
          const std::set<std::string> &InputImages)
      : OutputName(OutputName), InputImages(InputImages) {}

protected:
  Stmt visit(const Realize *Op) override {
    InternalAllocations.insert(Op->Name);
    Stmt Body = mutate(Op->Body);

    // Allocation extents, and lets for the mins/strides referenced by the
    // flattened indices below.
    std::vector<Expr> Extents;
    for (const Range &R : Op->Bounds)
      Extents.push_back(
          Variable::make(Int(32), allocExtentName(Op->Name, int(&R - &Op->Bounds[0]))));

    std::vector<std::pair<std::string, Expr>> Lets;
    for (size_t D = 0; D < Op->Bounds.size(); ++D) {
      Lets.emplace_back(allocMinName(Op->Name, int(D)), Op->Bounds[D].Min);
      Lets.emplace_back(allocExtentName(Op->Name, int(D)),
                        Op->Bounds[D].Extent);
    }
    Lets.emplace_back(allocStrideName(Op->Name, 0), 1);
    for (size_t D = 1; D < Op->Bounds.size(); ++D) {
      Expr Prev = Variable::make(Int(32), allocStrideName(Op->Name, int(D - 1)));
      Expr PrevExtent =
          Variable::make(Int(32), allocExtentName(Op->Name, int(D - 1)));
      Lets.emplace_back(allocStrideName(Op->Name, int(D)), Prev * PrevExtent);
    }

    Stmt Result = Allocate::make(Op->Name, Op->ElemType, Extents, Body);
    for (size_t I = Lets.size(); I-- > 0;)
      Result = LetStmt::make(Lets[I].first, Lets[I].second, Result);
    return Result;
  }

  Stmt visit(const Provide *Op) override {
    Expr Value = mutate(Op->Value);
    std::vector<Expr> Args;
    Args.reserve(Op->Args.size());
    for (const Expr &Arg : Op->Args)
      Args.push_back(mutate(Arg));
    return Store::make(Op->Name, Value,
                       flatIndex(Op->Name, Args));
  }

  Expr visit(const Call *Op) override {
    if (Op->CallKind != CallType::Halide && Op->CallKind != CallType::Image)
      return IRMutator::visit(Op);
    std::vector<Expr> Args;
    Args.reserve(Op->Args.size());
    for (const Expr &Arg : Op->Args)
      Args.push_back(mutate(Arg));
    return Load::make(Op->NodeType, Op->Name, flatIndex(Op->Name, Args));
  }

private:
  /// index = sum_d (arg_d - min_d) * stride_d
  Expr flatIndex(const std::string &Name, const std::vector<Expr> &Args) {
    bool Internal = InternalAllocations.count(Name) > 0;
    internal_assert(Internal || Name == OutputName ||
                    InputImages.count(Name))
        << "flattening: access to " << Name
        << " which has no allocation or buffer binding";
    Expr Index;
    for (size_t D = 0; D < Args.size(); ++D) {
      Expr MinVar =
          Internal
              ? Variable::make(Int(32), allocMinName(Name, int(D)))
              : Variable::make(Int(32), bufferMinName(Name, int(D)), true);
      // The innermost dimension always has stride 1 (scanline layout,
      // paper section 4.4); boundary buffers are required to be dense in
      // dimension 0 (checked by the runtime), which keeps vector loads
      // and stores dense.
      Expr StrideVar =
          D == 0 ? Expr(1)
          : Internal
              ? Variable::make(Int(32), allocStrideName(Name, int(D)))
              : Variable::make(Int(32), bufferStrideName(Name, int(D)),
                               true);
      Expr Term = (Args[D] - MinVar) * StrideVar;
      Index = Index.defined() ? Index + Term : Term;
    }
    if (!Index.defined())
      Index = 0;
    return Index;
  }

  const std::string &OutputName;
  const std::set<std::string> &InputImages;
  std::set<std::string> InternalAllocations;
};

} // namespace

Stmt halide::storageFlattening(const Stmt &S, const std::string &OutputName,
                               const std::set<std::string> &InputImages,
                               const std::map<std::string, Function> &Env) {
  (void)Env;
  Flatten Pass(OutputName, InputImages);
  return Pass.mutate(S);
}
