//===-- transforms/InjectTracing.h - Value-trace instrumentation -*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation pass behind Target::Trace. Wraps the selected
/// stages' memory traffic in tracing intrinsics each backend executes
/// against observe/TraceStream.h:
///
///   - every Load from a traced buffer becomes Call::TraceLoad (expression
///     position: args {StringImm(buffer), Load}; evaluates to the load's
///     value with the index computed exactly once),
///   - every Store to a traced buffer becomes an Evaluate'd
///     Call::TraceStore (args {StringImm(buffer), Value, Index}; the
///     backend evaluates value then index — the untraced Store order —
///     performs the store, then emits the event),
///   - every Allocate of a traced buffer has its body bracketed by
///     Evaluate'd Call::TraceBegin (args {StringImm(buffer), extent...})
///     and Call::TraceEnd; the output buffer, which has no Allocate, is
///     bracketed around the whole pipeline body using its
///     "<name>.extent.<d>" metadata parameters.
///
/// Stage selection follows Func::traceLoads()/traceStores()/
/// traceRealizations(): if no stage in the pipeline requests anything, a
/// traced target instruments every buffer (including input images, which
/// have no Func to carry flags).
///
/// Like InjectProfiling the pass runs in makeExecutable(), on a copy of
/// the cached LoweredPipeline — never inside lower() — so tracing does not
/// enter the lowering fingerprint, trace-on and trace-off targets share
/// one cached lowering, and an off-target run executes bit-identical,
/// event-free code (the zero-cost-when-off guarantee TracingTest asserts).
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_INJECTTRACING_H
#define HALIDE_TRANSFORMS_INJECTTRACING_H

#include "transforms/Lower.h"

namespace halide {

/// Returns \p P with the traced stages' loads/stores/realizations wrapped
/// in tracing intrinsics. \p P itself is not modified.
LoweredPipeline injectTracing(const LoweredPipeline &P);

} // namespace halide

#endif // HALIDE_TRANSFORMS_INJECTTRACING_H
