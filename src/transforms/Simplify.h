//===-- transforms/Simplify.h - Algebraic simplification --------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic simplifier (paper section 4.6: "constant-folding ... which
/// also performs symbolic simplification of common patterns produced by
/// bounds inference"). Integer scalar arithmetic is canonicalized as a
/// linear combination of atomic terms, which makes region arithmetic like
/// `(y*8 + 7) - (y*8) + 1` collapse to constants — the property that
/// sliding-window and storage-folding legality checks rely on.
///
/// Index arithmetic is assumed not to overflow (the same assumption the
/// paper's compiler makes for Int(32) coordinates).
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_SIMPLIFY_H
#define HALIDE_TRANSFORMS_SIMPLIFY_H

#include "ir/Expr.h"

namespace halide {

/// Simplifies an expression.
Expr simplify(const Expr &E);

/// Simplifies every expression in a statement, removes trivially-dead code
/// (zero-extent loops, if(false) arms), and drops unused lets.
Stmt simplify(const Stmt &S);

/// Returns true if \p E provably evaluates to a constant true / false.
bool isProvablyTrue(const Expr &E);
bool isProvablyFalse(const Expr &E);

/// If simplify(E) is an integer constant, stores it and returns true.
bool proveConstInt(const Expr &E, int64_t *Value);

} // namespace halide

#endif // HALIDE_TRANSFORMS_SIMPLIFY_H
