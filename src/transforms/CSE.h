//===-- transforms/CSE.h - Common subexpression elimination -----*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lifts repeated non-trivial subexpressions into Let bindings. Mainly
/// benefits the reference interpreter (a C compiler re-does CSE on the
/// generated source); run near the end of lowering.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_CSE_H
#define HALIDE_TRANSFORMS_CSE_H

#include "ir/Expr.h"

namespace halide {

/// Eliminates common subexpressions within one expression.
Expr cseExpr(const Expr &E);

/// Applies cseExpr to every statement-level expression in \p S.
Stmt cse(const Stmt &S);

} // namespace halide

#endif // HALIDE_TRANSFORMS_CSE_H
