//===-- transforms/InjectProfiling.h - Stage profiling markers --*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiling instrumentation pass behind Target::Profile. Brackets
/// every stage's produce body with Evaluate'd Call::ProfileStageStart /
/// ProfileStageEnd intrinsics (one StringImm argument naming the stage),
/// which each backend executes as a profilerEnter/profilerExit pair: the
/// interpreter in evalCall, the VM via the ProfEnter/ProfExit bytecode
/// ops, and JIT-compiled C through the runtime vtable's ProfEnter /
/// ProfExit callbacks. Combined with the profiler's per-thread stage
/// stack this reproduces real Halide's produce/update/consume
/// attribution: entering a producer suspends the enclosing stage's self
/// time (that is the consume transition), and when a produce body's
/// statement chain is recognizably "init ; update(0) ; ..." each update
/// is additionally bracketed as its own "name.update(k)" sub-stage.
///
/// The pass runs *after* lowering, in makeExecutable(), on a copy of the
/// cached LoweredPipeline -- never inside lower() -- so the profile flag
/// does not enter the lowering fingerprint, profile-on and profile-off
/// targets share one cached lowering, and an off-target run executes
/// bit-identical, marker-free code (the zero-cost-when-off guarantee
/// ProfilerTest asserts).
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_INJECTPROFILING_H
#define HALIDE_TRANSFORMS_INJECTPROFILING_H

#include "transforms/Lower.h"

namespace halide {

/// Returns \p P with every ProducerConsumer produce body bracketed by
/// profile markers (plus per-update sub-stages where the body structure
/// permits). \p P itself is not modified.
LoweredPipeline injectProfiling(const LoweredPipeline &P);

} // namespace halide

#endif // HALIDE_TRANSFORMS_INJECTPROFILING_H
