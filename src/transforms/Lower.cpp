//===-- transforms/Lower.cpp ----------------------------------------------------=//

#include "transforms/Lower.h"
#include "analysis/CallGraph.h"
#include "ir/IROperators.h"
#include "ir/IRVisitor.h"
#include "transforms/BoundsInference.h"
#include "transforms/CSE.h"
#include "transforms/Inline.h"
#include "transforms/ScheduleFunctions.h"
#include "transforms/Simplify.h"
#include "transforms/SlidingWindow.h"
#include "transforms/StorageFlattening.h"
#include "transforms/StorageFolding.h"
#include "transforms/UnrollLoops.h"
#include "transforms/VectorizeLoops.h"

#include <algorithm>
#include <set>

using namespace halide;

namespace {

/// Collects input image references (name -> type and rank) from the
/// pre-flattening statement, and scalar parameters from anywhere.
class CollectArgs : public IRVisitor {
public:
  std::map<std::string, std::pair<Type, int>> Images;
  std::map<std::string, Type> ScalarParams;

  void visit(const Call *Op) override {
    IRVisitor::visit(Op);
    if (Op->CallKind == CallType::Image)
      Images[Op->Name] = {Op->NodeType, int(Op->Args.size())};
  }

  void visit(const Variable *Op) override {
    if (Op->IsParam)
      ScalarParams[Op->Name] = Op->NodeType;
  }
};

/// True if \p Name is a buffer metadata parameter for one of \p Buffers.
bool isBufferMetadata(const std::string &Name,
                      const std::set<std::string> &Buffers) {
  for (const char *Suffix : {".min.", ".extent.", ".stride."}) {
    size_t Pos = Name.rfind(Suffix);
    if (Pos == std::string::npos)
      continue;
    if (Buffers.count(Name.substr(0, Pos)))
      return true;
  }
  return false;
}

} // namespace

LoweredPipeline halide::lower(const Function &Output, const Target &T) {
  user_assert(Output.hasPureDefinition())
      << "cannot lower undefined function " << Output.name();

  LoweredPipeline Result;
  Result.Name = Output.name();
  Result.Output = Output;
  Result.Env = buildEnvironment(Output);
  std::vector<std::string> Order = realizationOrder(Output, Result.Env);

  for (const auto &[Name, F] : Result.Env)
    user_assert(F.hasPureDefinition())
        << "function " << Name << " is called but never defined";

  // Section 4.1: loop synthesis and injection of realizations.
  Stmt S = scheduleFunctions(Output, Order, Result.Env);

  // Total fusion of inline-scheduled stages.
  S = inlineCalls(S, Result.Env);

  // Record input images and scalar parameters while calls are still visible.
  CollectArgs Args;
  S.accept(&Args);

  // Section 4.2: bounds inference. The output's own required region
  // variables ("out.min.d"/"out.extent.d") are intentionally left unbound:
  // they coincide with the output buffer's metadata parameters, so all
  // generated bounds depend only on the size of the output image. Each
  // stage's region is introduced once, as named lets above its produce
  // node — reused bounds subexpressions become shared definitions in that
  // preamble rather than copies at every use site, which keeps lowering
  // polynomial in pipeline depth (deep pyramids used to blow up here).
  S = boundsInference(S, Result.Env);

  // Section 4.3: reuse and memory optimizations. These run before global
  // simplification: they pattern-match the bounds-let preambles (including
  // the shared definitions above the min/extent chains) that
  // simplification would otherwise inline away or drop.
  if (!T.DisableSlidingWindow)
    S = slidingWindow(S, Result.Env);
  if (!T.DisableStorageFolding)
    S = storageFolding(S, Result.Env);
  S = simplify(S);

  // Section 4.4: flattening to one-dimensional buffers.
  std::set<std::string> ImageNames;
  for (const auto &[Name, Info] : Args.Images)
    ImageNames.insert(Name);
  S = storageFlattening(S, Output.name(), ImageNames, Result.Env);
  S = simplify(S);

  // Section 4.5: vectorization and unrolling.
  S = vectorizeLoops(S);
  S = unrollLoops(S);
  S = simplify(S);
  S = cse(S);

  // Guard the round-up of split output dimensions: the loops write
  // [min, min + writtenExtent), which must not exceed the output buffer.
  // When the schedule pins the dimension's extent with bound(), the check
  // is decidable here, so a bad vectorize/split combination is rejected at
  // lowering time (naming the stage) instead of aborting at run time.
  std::vector<Stmt> Preamble;
  for (int D = 0; D < Output.dimensions(); ++D) {
    const std::string &DimVar = Output.args()[size_t(D)];
    for (const BoundConstraint &BC : Output.schedule().Bounds) {
      int64_t BoundExtent, WrittenConst;
      if (BC.Var != DimVar || !BC.Extent.defined() ||
          !asConstInt(simplify(BC.Extent), &BoundExtent))
        continue;
      Expr Written = simplify(
          writtenExtent(Output, D, IntImm::make(Int(32), BoundExtent)));
      if (asConstInt(Written, &WrittenConst) && WrittenConst != BoundExtent)
        user_error << "in schedule for output stage " << Output.name()
                   << ": dimension " << DimVar << " is bounded to extent "
                   << BoundExtent << " but its splits round the written "
                   << "extent up to " << WrittenConst
                   << "; the extent must be a multiple of the split "
                   << "factors (pad the bound or drop the non-dividing "
                   << "split/vectorize factor)";
    }
    Expr Extent = Variable::make(
        Int(32), bufferExtentName(Output.name(), D), /*IsParam=*/true);
    Expr Written = simplify(writtenExtent(Output, D, Extent));
    Expr Ok = simplify(Written == Extent);
    if (!isConstOne(Ok))
      Preamble.push_back(AssertStmt::make(
          Ok, "output extent of dimension " + std::to_string(D) + " of " +
                  Output.name() +
                  " must be a multiple of the split factors in its "
                  "schedule"));
  }
  if (!Preamble.empty()) {
    Preamble.push_back(S);
    S = Block::make(Preamble);
  }

  Result.Body = S;

  // Argument signature: output buffer, input images (name order), scalars
  // (name order, excluding buffer metadata).
  Result.Buffers.push_back(
      {Output.name(), Output.outputType(), Output.dimensions(), true});
  std::set<std::string> BufferNames = {Output.name()};
  for (const auto &[Name, Info] : Args.Images) {
    Result.Buffers.push_back({Name, Info.first, Info.second, false});
    BufferNames.insert(Name);
  }
  for (const auto &[Name, T] : Args.ScalarParams) {
    if (isBufferMetadata(Name, BufferNames))
      continue;
    Result.Scalars.push_back({Name, T});
  }
  return Result;
}
