//===-- transforms/Substitute.h - Variable substitution ---------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replaces free occurrences of named variables with expressions, respecting
/// Let shadowing. Used by lowering (split index rewriting), inlining, the
/// vectorizer, and the sliding window pass.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_SUBSTITUTE_H
#define HALIDE_TRANSFORMS_SUBSTITUTE_H

#include "ir/Expr.h"

#include <map>
#include <string>

namespace halide {

/// Substitutes Replacement for free uses of the variable named \p Name.
Expr substitute(const std::string &Name, const Expr &Replacement,
                const Expr &E);
Stmt substitute(const std::string &Name, const Expr &Replacement,
                const Stmt &S);

/// Substitutes several variables at once.
Expr substitute(const std::map<std::string, Expr> &Bindings, const Expr &E);
Stmt substitute(const std::map<std::string, Expr> &Bindings, const Stmt &S);

} // namespace halide

#endif // HALIDE_TRANSFORMS_SUBSTITUTE_H
