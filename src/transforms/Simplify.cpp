//===-- transforms/Simplify.cpp ----------------------------------------------=//

#include "transforms/Simplify.h"
#include "analysis/Derivatives.h"
#include "analysis/Scope.h"
#include "ir/IREquality.h"
#include "ir/IRMutator.h"
#include "ir/IROperators.h"
#include "ir/IRVisitor.h"
#include "transforms/Substitute.h"

#include <algorithm>
#include <map>

using namespace halide;

namespace {

/// A canonical linear combination Constant + sum(Coef_i * Atom_i) over
/// non-linear atomic subexpressions. Only built for scalar signed-integer
/// expressions, where the no-overflow assumption licenses reassociation.
struct LinearCombo {
  int64_t Constant = 0;
  std::vector<std::pair<int64_t, Expr>> Terms;
};

bool isCanonicalizableType(Type T) { return T.isInt() && T.isScalar(); }

/// Accumulates E scaled by Scale into Combo. Returns false when the tree
/// contains something that prevents linear decomposition entirely (it never
/// does: unknown nodes become atoms), so the return is used only to abort on
/// overflow hazards.
bool accumulateLinear(const Expr &E, int64_t Scale, LinearCombo *Combo,
                      int Depth = 0) {
  // Keep recursion bounded on adversarial trees.
  if (Depth > 128)
    return false;
  int64_t ConstVal;
  if (asConstInt(E, &ConstVal)) {
    Combo->Constant += Scale * ConstVal;
    return true;
  }
  if (const Add *Op = E.as<Add>())
    return accumulateLinear(Op->A, Scale, Combo, Depth + 1) &&
           accumulateLinear(Op->B, Scale, Combo, Depth + 1);
  if (const Sub *Op = E.as<Sub>())
    return accumulateLinear(Op->A, Scale, Combo, Depth + 1) &&
           accumulateLinear(Op->B, -Scale, Combo, Depth + 1);
  if (const Mul *Op = E.as<Mul>()) {
    int64_t C;
    if (asConstInt(Op->B, &C)) {
      if (C != 0 && std::abs(Scale) > (INT64_MAX / 8) / std::abs(C))
        return false;
      return accumulateLinear(Op->A, Scale * C, Combo, Depth + 1);
    }
    if (asConstInt(Op->A, &C)) {
      if (C != 0 && std::abs(Scale) > (INT64_MAX / 8) / std::abs(C))
        return false;
      return accumulateLinear(Op->B, Scale * C, Combo, Depth + 1);
    }
  }
  Combo->Terms.emplace_back(Scale, E);
  return true;
}

/// Merges equal atoms and sorts terms into the canonical order.
void normalizeCombo(LinearCombo *Combo) {
  std::stable_sort(Combo->Terms.begin(), Combo->Terms.end(),
                   [](const auto &A, const auto &B) {
                     return compareExpr(A.second, B.second) < 0;
                   });
  std::vector<std::pair<int64_t, Expr>> Merged;
  for (const auto &Term : Combo->Terms) {
    if (!Merged.empty() && equal(Merged.back().second, Term.second)) {
      Merged.back().first += Term.first;
      continue;
    }
    Merged.push_back(Term);
  }
  Combo->Terms.clear();
  for (const auto &Term : Merged)
    if (Term.first != 0)
      Combo->Terms.push_back(Term);
}

/// Rebuilds an expression from a canonical linear combination.
Expr rebuildLinear(const LinearCombo &Combo, Type T) {
  Expr Positive, Negative;
  auto addTerm = [&](Expr &Acc, const Expr &Term) {
    Acc = Acc.defined() ? Add::make(Acc, Term) : Term;
  };
  for (const auto &[Coef, Atom] : Combo.Terms) {
    int64_t AbsCoef = Coef < 0 ? -Coef : Coef;
    if (!T.canRepresent(AbsCoef))
      return Expr(); // overflow hazard; caller keeps original
    Expr Term =
        AbsCoef == 1 ? Atom : Mul::make(Atom, makeConst(T, AbsCoef));
    addTerm(Coef > 0 ? Positive : Negative, Term);
  }
  if (!T.canRepresent(Combo.Constant < 0 ? -Combo.Constant : Combo.Constant))
    return Expr();
  if (Combo.Constant > 0)
    addTerm(Positive, makeConst(T, Combo.Constant));
  if (!Positive.defined() && !Negative.defined())
    return makeConst(T, Combo.Constant);
  if (!Positive.defined()) {
    // Everything is negative: emit Constant - Negative (Constant may be 0).
    return Sub::make(makeConst(T, Combo.Constant), Negative);
  }
  Expr Result = Positive;
  if (Negative.defined())
    Result = Sub::make(Result, Negative);
  if (Combo.Constant < 0)
    Result = Sub::make(Result, makeConst(T, -Combo.Constant));
  return Result;
}

/// Canonicalizes an integer-scalar expression as a linear combination.
/// Returns the original expression when canonicalization bails out.
Expr canonicalizeLinear(const Expr &E) {
  if (!isCanonicalizableType(E.type()))
    return E;
  LinearCombo Combo;
  if (!accumulateLinear(E, 1, &Combo))
    return E;
  normalizeCombo(&Combo);
  Expr Rebuilt = rebuildLinear(Combo, E.type());
  return Rebuilt.defined() ? Rebuilt : E;
}

/// simplify(A - B) as a linear combo; returns a constant Expr iff the
/// difference is provably constant.
bool constDifference(const Expr &A, const Expr &B, int64_t *Delta) {
  if (!isCanonicalizableType(A.type()) || A.type() != B.type())
    return false;
  LinearCombo Combo;
  if (!accumulateLinear(A, 1, &Combo) || !accumulateLinear(B, -1, &Combo))
    return false;
  normalizeCombo(&Combo);
  if (!Combo.Terms.empty())
    return false;
  *Delta = Combo.Constant;
  return true;
}

Stmt noOpStmt() { return Evaluate::make(0); }

bool isNoOpStmt(const Stmt &S) {
  if (const Evaluate *E = S.as<Evaluate>())
    return isConst(E->Value);
  return false;
}

class Simplifier : public IRMutator {
public:
  using IRMutator::mutate;

protected:
  Expr visit(const Cast *Op) override {
    Expr Value = mutate(Op->Value);
    // cast folding of immediates and no-op casts.
    Expr Result = cast(Op->NodeType, Value);
    // Collapse cast-of-cast when the inner cast widens within ints.
    if (const Cast *Inner = Result.as<Cast>()) {
      if (const Cast *Inner2 = Inner->Value.as<Cast>()) {
        Type A = Inner2->Value.type(), B = Inner2->NodeType,
             C = Inner->NodeType;
        bool IntsOnly = (A.isInt() || A.isUInt()) &&
                        (B.isInt() || B.isUInt()) &&
                        (C.isInt() || C.isUInt());
        if (IntsOnly && B.Bits >= A.Bits && C.Bits >= B.Bits &&
            (A.isUInt() || B.isInt()))
          return cast(C, Inner2->Value);
      }
    }
    return Result;
  }

  Expr visit(const Add *Op) override {
    Expr A = mutate(Op->A), B = mutate(Op->B);
    if (Expr V = vectorBinaryRule<Add>(A, B); V.defined())
      return V;
    Expr Raw = A + B; // folds constants and identities
    return canonicalizeLinear(Raw);
  }

  Expr visit(const Sub *Op) override {
    Expr A = mutate(Op->A), B = mutate(Op->B);
    if (Expr V = vectorBinaryRule<Sub>(A, B); V.defined())
      return V;
    Expr Raw = A - B;
    return canonicalizeLinear(Raw);
  }

  Expr visit(const Mul *Op) override {
    Expr A = mutate(Op->A), B = mutate(Op->B);
    if (Expr V = vectorBinaryRule<Mul>(A, B); V.defined())
      return V;
    Expr Raw = A * B;
    return canonicalizeLinear(Raw);
  }

  Expr visit(const Div *Op) override {
    Expr A = mutate(Op->A), B = mutate(Op->B);
    Expr Raw = A / B; // constant folding
    const Div *D = Raw.as<Div>();
    if (!D)
      return Raw;
    int64_t Divisor;
    if (isCanonicalizableType(Raw.type()) && asConstInt(D->B, &Divisor) &&
        Divisor > 0) {
      // (q*c + r) / c == q + r/c under floor division for integer q.
      LinearCombo Combo;
      if (accumulateLinear(D->A, 1, &Combo)) {
        normalizeCombo(&Combo);
        LinearCombo Quotient, Remainder;
        for (const auto &[Coef, Atom] : Combo.Terms) {
          // (x/c1)/c2 == x/(c1*c2) for positive constant divisors.
          if (Coef % Divisor == 0)
            Quotient.Terms.emplace_back(Coef / Divisor, Atom);
          else
            Remainder.Terms.emplace_back(Coef, Atom);
        }
        int64_t ConstQ = Combo.Constant / Divisor;
        int64_t ConstR = Combo.Constant % Divisor;
        if (ConstR < 0) {
          ConstR += Divisor;
          ConstQ -= 1;
        }
        Quotient.Constant = ConstQ;
        Remainder.Constant = ConstR;
        if (Remainder.Terms.empty() && ConstR == 0) {
          Expr Q = rebuildLinear(Quotient, Raw.type());
          if (Q.defined())
            return Q;
        } else if (!Quotient.Terms.empty() || ConstQ != 0) {
          Expr Q = rebuildLinear(Quotient, Raw.type());
          Expr R = rebuildLinear(Remainder, Raw.type());
          if (Q.defined() && R.defined())
            return canonicalizeLinear(
                Add::make(Q, Div::make(R, D->B)));
        }
      }
      // Nested division by positive constants composes.
      if (const Div *InnerDiv = D->A.as<Div>()) {
        int64_t InnerDivisor;
        if (asConstInt(InnerDiv->B, &InnerDivisor) && InnerDivisor > 0 &&
            Divisor <= INT64_MAX / InnerDivisor) {
          Type T = Raw.type();
          if (T.canRepresent(InnerDivisor * Divisor))
            return Div::make(InnerDiv->A,
                             makeConst(T, InnerDivisor * Divisor));
        }
      }
    }
    return Raw;
  }

  Expr visit(const Mod *Op) override {
    Expr A = mutate(Op->A), B = mutate(Op->B);
    Expr Raw = A % B;
    const Mod *M = Raw.as<Mod>();
    if (!M)
      return Raw;
    int64_t Divisor;
    if (isCanonicalizableType(Raw.type()) && asConstInt(M->B, &Divisor) &&
        Divisor > 0) {
      // (q*c + r) mod c == r mod c.
      LinearCombo Combo;
      if (accumulateLinear(M->A, 1, &Combo)) {
        normalizeCombo(&Combo);
        LinearCombo Remainder;
        bool Dropped = false;
        for (const auto &[Coef, Atom] : Combo.Terms) {
          if (Coef % Divisor == 0) {
            Dropped = true;
            continue;
          }
          Remainder.Terms.emplace_back(Coef, Atom);
        }
        int64_t ConstR = Combo.Constant % Divisor;
        if (ConstR < 0)
          ConstR += Divisor;
        Dropped |= ConstR != Combo.Constant;
        Remainder.Constant = ConstR;
        if (Remainder.Terms.empty())
          return makeConst(Raw.type(), ConstR);
        if (Dropped) {
          Expr R = rebuildLinear(Remainder, Raw.type());
          if (R.defined())
            return Mod::make(R, M->B);
        }
      }
    }
    return Raw;
  }

  Expr visit(const Min *Op) override {
    Expr A = mutate(Op->A), B = mutate(Op->B);
    if (Expr V = vectorBinaryRule<Min>(A, B); V.defined())
      return V;
    Expr Raw = min(A, B);
    const Min *M = Raw.as<Min>();
    if (!M)
      return Raw;
    if (equal(M->A, M->B))
      return M->A;
    int64_t Delta;
    if (constDifference(M->A, M->B, &Delta))
      return Delta <= 0 ? M->A : M->B;
    // min(min(x, c1), c2) -> min(x, min(c1, c2))
    if (const Min *Inner = M->A.as<Min>()) {
      if (isConst(Inner->B) && isConst(M->B))
        return min(Inner->A, min(Inner->B, M->B));
      if (equal(Inner->A, M->B) || equal(Inner->B, M->B))
        return M->A;
    }
    return Raw;
  }

  Expr visit(const Max *Op) override {
    Expr A = mutate(Op->A), B = mutate(Op->B);
    if (Expr V = vectorBinaryRule<Max>(A, B); V.defined())
      return V;
    Expr Raw = max(A, B);
    const Max *M = Raw.as<Max>();
    if (!M)
      return Raw;
    if (equal(M->A, M->B))
      return M->A;
    int64_t Delta;
    if (constDifference(M->A, M->B, &Delta))
      return Delta >= 0 ? M->A : M->B;
    if (const Max *Inner = M->A.as<Max>()) {
      if (isConst(Inner->B) && isConst(M->B))
        return max(Inner->A, max(Inner->B, M->B));
      if (equal(Inner->A, M->B) || equal(Inner->B, M->B))
        return M->A;
    }
    return Raw;
  }

  Expr visit(const EQ *Op) override { return compareRule<EQ>(Op); }
  Expr visit(const NE *Op) override { return compareRule<NE>(Op); }
  Expr visit(const LT *Op) override { return compareRule<LT>(Op); }
  Expr visit(const LE *Op) override { return compareRule<LE>(Op); }
  Expr visit(const GT *Op) override { return compareRule<GT>(Op); }
  Expr visit(const GE *Op) override { return compareRule<GE>(Op); }

  Expr visit(const And *Op) override {
    Expr A = mutate(Op->A), B = mutate(Op->B);
    if (equal(A, B))
      return A;
    return A && B;
  }

  Expr visit(const Or *Op) override {
    Expr A = mutate(Op->A), B = mutate(Op->B);
    if (equal(A, B))
      return A;
    return A || B;
  }

  Expr visit(const Not *Op) override {
    Expr A = mutate(Op->A);
    if (const Not *Inner = A.as<Not>())
      return Inner->A;
    return !A;
  }

  Expr visit(const Select *Op) override {
    Expr Condition = mutate(Op->Condition);
    Expr TrueValue = mutate(Op->TrueValue);
    Expr FalseValue = mutate(Op->FalseValue);
    if (equal(TrueValue, FalseValue))
      return TrueValue;
    return select(Condition, TrueValue, FalseValue);
  }

  Expr visit(const Ramp *Op) override {
    Expr Base = mutate(Op->Base);
    Expr Stride = mutate(Op->Stride);
    if (isConstZero(Stride))
      return Broadcast::make(Base, Op->Lanes);
    if (Base.sameAs(Op->Base) && Stride.sameAs(Op->Stride))
      return Op;
    return Ramp::make(Base, Stride, Op->Lanes);
  }

  // Trivial let values (constants, variable aliases, vector index shapes)
  // are inlined by carrying the binding in a scope consulted at each
  // Variable, not by an eager substitute() — one traversal total, where
  // per-let substitution cost O(lets x body) on the deep preamble chains
  // bounds inference now emits. Dead lets are swept afterwards in one
  // batched pass (removeDeadLets) for the same reason.
  Expr visit(const Variable *Op) override {
    if (InlinedLets.contains(Op->Name)) {
      const Expr &Replacement = InlinedLets.get(Op->Name);
      if (Replacement.defined())
        return Replacement;
    }
    return Op;
  }

  Expr visit(const Let *Op) override {
    SawLet = true;
    Expr Value = mutate(Op->Value);
    if (shouldInlineLet(Value)) {
      // When the value itself references a shadowed outer binding of the
      // same name (splits reuse the old dimension name for the outer loop
      // variable), a scope binding would resolve those references to the
      // value itself while it is being re-visited. Substitute eagerly for
      // this rare shape; carry the binding in scope otherwise.
      if (exprUsesVar(Value, Op->Name))
        return mutate(substitute(Op->Name, Value, Op->Body));
      ScopedBinding<Expr> Bind(InlinedLets, Op->Name, Value);
      return mutate(Op->Body);
    }
    // An undefined binding shadows any enclosing inlined let of this name.
    ScopedBinding<Expr> Shadow(InlinedLets, Op->Name, Expr());
    Expr Body = mutate(Op->Body);
    // A let whose body is just its own variable is the value itself — the
    // shape the bounds-sharing layer produces for a lone shared endpoint.
    if (const Variable *V = Body.as<Variable>())
      if (V->Name == Op->Name)
        return Value;
    if (Value.sameAs(Op->Value) && Body.sameAs(Op->Body))
      return Op;
    return Let::make(Op->Name, Value, Body);
  }

  Stmt visit(const LetStmt *Op) override {
    SawLet = true;
    Expr Value = mutate(Op->Value);
    if (shouldInlineLet(Value)) {
      // See visit(Let): self-shadowing values must not ride the scope.
      if (exprUsesVar(Value, Op->Name))
        return mutate(substitute(Op->Name, Value, Op->Body));
      ScopedBinding<Expr> Bind(InlinedLets, Op->Name, Value);
      return mutate(Op->Body);
    }
    ScopedBinding<Expr> Shadow(InlinedLets, Op->Name, Expr());
    Stmt Body = mutate(Op->Body);
    if (Value.sameAs(Op->Value) && Body.sameAs(Op->Body))
      return Op;
    return LetStmt::make(Op->Name, Value, Body);
  }

  Stmt visit(const For *Op) override {
    Expr MinExpr = mutate(Op->MinExpr);
    Expr Extent = mutate(Op->Extent);
    int64_t ConstExtent;
    if (asConstInt(Extent, &ConstExtent)) {
      if (ConstExtent <= 0)
        return noOpStmt();
      if (ConstExtent == 1 && Op->Kind != ForType::Vectorized) {
        Stmt Body = mutate(substitute(Op->Name, MinExpr, Op->Body));
        return Body;
      }
    }
    // The loop variable shadows any enclosing inlined let of its name.
    ScopedBinding<Expr> Shadow(InlinedLets, Op->Name, Expr());
    Stmt Body = mutate(Op->Body);
    if (isNoOpStmt(Body))
      return noOpStmt();
    if (MinExpr.sameAs(Op->MinExpr) && Extent.sameAs(Op->Extent) &&
        Body.sameAs(Op->Body))
      return Op;
    return For::make(Op->Name, MinExpr, Extent, Op->Kind, Body);
  }

  Stmt visit(const IfThenElse *Op) override {
    Expr Condition = mutate(Op->Condition);
    int64_t CondValue;
    if (asConstInt(Condition, &CondValue)) {
      if (CondValue)
        return mutate(Op->ThenCase);
      if (Op->ElseCase.defined())
        return mutate(Op->ElseCase);
      return noOpStmt();
    }
    Stmt ThenCase = mutate(Op->ThenCase);
    Stmt ElseCase = mutate(Op->ElseCase);
    if (ElseCase.defined() && isNoOpStmt(ElseCase))
      ElseCase = Stmt();
    if (isNoOpStmt(ThenCase) && !ElseCase.defined())
      return noOpStmt();
    if (Condition.sameAs(Op->Condition) && ThenCase.sameAs(Op->ThenCase) &&
        ElseCase.sameAs(Op->ElseCase))
      return Op;
    return IfThenElse::make(Condition, ThenCase, ElseCase);
  }

  Stmt visit(const Block *Op) override {
    Stmt First = mutate(Op->First);
    Stmt Rest = mutate(Op->Rest);
    if (isNoOpStmt(First))
      return Rest;
    if (isNoOpStmt(Rest))
      return First;
    if (First.sameAs(Op->First) && Rest.sameAs(Op->Rest))
      return Op;
    return Block::make(First, Rest);
  }

  Stmt visit(const AssertStmt *Op) override {
    Expr Condition = mutate(Op->Condition);
    if (isConstOne(Condition))
      return noOpStmt();
    if (Condition.sameAs(Op->Condition))
      return Op;
    return AssertStmt::make(Condition, Op->Message);
  }

public:
  /// Whether any Let/LetStmt was encountered — when false, the dead-let
  /// sweep has nothing to do and is skipped (simplify() runs on every
  /// ledger endpoint during bounds walks, most of which are let-free).
  bool SawLet = false;

private:
  /// Bindings for lets being inlined; an undefined Expr marks a shadowing
  /// (non-inlined) binding of the same name.
  Scope<Expr> InlinedLets;

  static bool shouldInlineLet(const Expr &Value) {
    // Constants, plain variable aliases, and vector index shapes always
    // inline: keeping ramps visible at loads/stores is what lets the
    // back end classify dense accesses (paper section 4.5).
    return isConst(Value) || Value.as<Variable>() != nullptr ||
           Value.as<Broadcast>() != nullptr || Value.as<Ramp>() != nullptr;
  }

  /// Broadcast/Ramp algebra, shared by the elementwise binary visits:
  ///   op(Broadcast(a), Broadcast(b)) -> Broadcast(op(a, b))
  ///   Add/Sub(Ramp, Broadcast)       -> Ramp with adjusted base
  ///   Mul(Ramp, Broadcast)           -> Ramp with scaled base and stride
  template <typename NodeT>
  Expr vectorBinaryRule(const Expr &A, const Expr &B) {
    const Broadcast *BA = A.as<Broadcast>();
    const Broadcast *BB = B.as<Broadcast>();
    if (BA && BB)
      return Broadcast::make(mutate(NodeT::make(BA->Value, BB->Value)),
                             BA->Lanes);
    const Ramp *RA = A.as<Ramp>();
    const Ramp *RB = B.as<Ramp>();
    if constexpr (NodeT::StaticKind == IRNodeKind::Add) {
      if (RA && BB)
        return Ramp::make(mutate(Add::make(RA->Base, BB->Value)),
                          mutate(RA->Stride), RA->Lanes);
      if (BA && RB)
        return Ramp::make(mutate(Add::make(BA->Value, RB->Base)),
                          mutate(RB->Stride), RB->Lanes);
      if (RA && RB)
        return Ramp::make(mutate(Add::make(RA->Base, RB->Base)),
                          mutate(Add::make(RA->Stride, RB->Stride)),
                          RA->Lanes);
    }
    if constexpr (NodeT::StaticKind == IRNodeKind::Sub) {
      if (RA && BB)
        return Ramp::make(mutate(Sub::make(RA->Base, BB->Value)),
                          mutate(RA->Stride), RA->Lanes);
      // Mirrored indices ("W - 1 - x") subtract a ramp from a broadcast;
      // folding to a negative-stride ramp is what lets the back ends
      // classify the access as dense-reversed instead of a gather.
      if (BA && RB)
        return Ramp::make(
            mutate(Sub::make(BA->Value, RB->Base)),
            mutate(Sub::make(makeZero(RB->Stride.type()), RB->Stride)),
            RB->Lanes);
      if (RA && RB)
        return Ramp::make(mutate(Sub::make(RA->Base, RB->Base)),
                          mutate(Sub::make(RA->Stride, RB->Stride)),
                          RA->Lanes);
    }
    if constexpr (NodeT::StaticKind == IRNodeKind::Mul) {
      if (RA && BB)
        return Ramp::make(mutate(Mul::make(RA->Base, BB->Value)),
                          mutate(Mul::make(RA->Stride, BB->Value)),
                          RA->Lanes);
      if (BA && RB)
        return Ramp::make(mutate(Mul::make(BA->Value, RB->Base)),
                          mutate(Mul::make(BA->Value, RB->Stride)),
                          RB->Lanes);
    }
    return Expr();
  }

  template <typename NodeT> Expr compareRule(const NodeT *Op) {
    Expr A = mutate(Op->A), B = mutate(Op->B);
    // Broadcast comparisons become broadcast booleans.
    const Broadcast *BA = A.as<Broadcast>();
    const Broadcast *BB = B.as<Broadcast>();
    if (BA && BB)
      return Broadcast::make(mutate(NodeT::make(BA->Value, BB->Value)),
                             BA->Lanes);
    int64_t Delta;
    if (constDifference(A, B, &Delta)) {
      bool R = false;
      switch (NodeT::StaticKind) {
      case IRNodeKind::EQ:
        R = Delta == 0;
        break;
      case IRNodeKind::NE:
        R = Delta != 0;
        break;
      case IRNodeKind::LT:
        R = Delta < 0;
        break;
      case IRNodeKind::LE:
        R = Delta <= 0;
        break;
      case IRNodeKind::GT:
        R = Delta > 0;
        break;
      case IRNodeKind::GE:
        R = Delta >= 0;
        break;
      default:
        internal_error << "non-comparison in compareRule";
      }
      return makeConst(Bool(A.type().Lanes), int64_t(R));
    }
    // Fall back to the operator (folds matching immediates).
    switch (NodeT::StaticKind) {
    case IRNodeKind::EQ:
      return A == B;
    case IRNodeKind::NE:
      return A != B;
    case IRNodeKind::LT:
      return A < B;
    case IRNodeKind::LE:
      return A <= B;
    case IRNodeKind::GT:
      return A > B;
    case IRNodeKind::GE:
      return A >= B;
    default:
      internal_error << "non-comparison in compareRule";
      return Expr();
    }
  }
};

//===----------------------------------------------------------------------===//
// Batched dead-let elimination: one counting walk plus one removal walk per
// round, instead of a per-let O(body) liveness scan inside the simplifier.
//===----------------------------------------------------------------------===//

/// Counts occurrences of every variable name (aggregated across scopes —
/// a name is only removable when no occurrence anywhere uses it, which is
/// conservative under shadowing).
class CountVarUses : public IRVisitor {
public:
  std::map<std::string, size_t> Counts;
  void visit(const Variable *Op) override { ++Counts[Op->Name]; }
};

/// Drops Let/LetStmt bindings whose name is never referenced.
class DropDeadLets : public IRMutator {
public:
  explicit DropDeadLets(const std::map<std::string, size_t> &Counts)
      : Counts(Counts) {}

  bool Removed = false;

protected:
  Expr visit(const Let *Op) override {
    if (!Counts.count(Op->Name)) {
      Removed = true;
      return mutate(Op->Body);
    }
    return IRMutator::visit(Op);
  }

  Stmt visit(const LetStmt *Op) override {
    if (!Counts.count(Op->Name)) {
      Removed = true;
      return mutate(Op->Body);
    }
    return IRMutator::visit(Op);
  }

private:
  const std::map<std::string, size_t> &Counts;
};

template <typename NodeT> NodeT removeDeadLets(NodeT S) {
  // A removed let can orphan names its value referenced; iterate to a
  // fixpoint, with a cap so pathological chains cost bounded time (any
  // survivors are merely unused bindings).
  for (int Round = 0; Round < 8; ++Round) {
    CountVarUses Uses;
    S.accept(&Uses);
    DropDeadLets Dropper(Uses.Counts);
    NodeT Next = Dropper.mutate(S);
    if (!Dropper.Removed)
      break;
    S = Next;
  }
  return S;
}

} // namespace

namespace {

/// Two Simplifier rounds (rules frequently expose further folding), then
/// the batched dead-let sweep. Removing a let can unblock folds its node
/// was splitting apart (e.g. an ancestor of a body that collapsed to a
/// constant), so a removal triggers one more fold-and-sweep round.
template <typename NodeT> NodeT simplifyImpl(const NodeT &X) {
  Simplifier S;
  NodeT Folded = S.mutate(S.mutate(X));
  if (!S.SawLet)
    return Folded;
  NodeT Swept = removeDeadLets(Folded);
  if (!Swept.sameAs(Folded))
    Swept = removeDeadLets(S.mutate(Swept));
  return Swept;
}

} // namespace

Expr halide::simplify(const Expr &E) {
  if (!E.defined())
    return E;
  return simplifyImpl(E);
}

Stmt halide::simplify(const Stmt &S) {
  if (!S.defined())
    return S;
  return simplifyImpl(S);
}

bool halide::isProvablyTrue(const Expr &E) {
  return isConstOne(simplify(E));
}

bool halide::isProvablyFalse(const Expr &E) {
  Expr S = simplify(E);
  int64_t V;
  return asConstInt(S, &V) && V == 0;
}

bool halide::proveConstInt(const Expr &E, int64_t *Value) {
  return asConstInt(simplify(E), Value);
}
