//===-- transforms/VectorizeLoops.h - Vector code synthesis -----*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vectorization (paper section 4.5): replaces a constant-extent loop
/// scheduled as vectorized with a single statement in which the loop index
/// becomes a ramp vector. All IR nodes are meaningful for vector types —
/// loads become gathers (dense when the index is a stride-1 ramp), stores
/// become scatters, arithmetic becomes vector arithmetic — and vectors are
/// never split into bundles of scalars inside the compiler.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_VECTORIZELOOPS_H
#define HALIDE_TRANSFORMS_VECTORIZELOOPS_H

#include "ir/Expr.h"

namespace halide {

/// Replaces all vectorized loops in \p S with vector statements.
Stmt vectorizeLoops(const Stmt &S);

} // namespace halide

#endif // HALIDE_TRANSFORMS_VECTORIZELOOPS_H
