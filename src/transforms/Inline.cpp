//===-- transforms/Inline.cpp ---------------------------------------------------=//

#include "transforms/Inline.h"
#include "ir/IRMutator.h"
#include "transforms/Substitute.h"

using namespace halide;

bool halide::isInlined(const Function &F) {
  return F.schedule().ComputeLevel.isInlined() && !F.hasUpdateDefinition();
}

namespace {

class Inliner : public IRMutator {
public:
  explicit Inliner(const std::map<std::string, Function> &Env) : Env(Env) {}

protected:
  Expr visit(const Call *Op) override {
    if (Op->CallKind != CallType::Halide)
      return IRMutator::visit(Op);
    auto It = Env.find(Op->Name);
    if (It == Env.end() || !isInlined(It->second))
      return IRMutator::visit(Op);

    const Function &F = It->second;
    internal_assert(Op->Args.size() == F.args().size())
        << "call to " << Op->Name << " with wrong arity";
    std::map<std::string, Expr> Bindings;
    for (size_t I = 0; I < Op->Args.size(); ++I)
      Bindings[F.args()[I]] = mutate(Op->Args[I]);
    // The inlined body may itself call inlined functions: keep mutating.
    return mutate(substitute(Bindings, F.value()));
  }

private:
  const std::map<std::string, Function> &Env;
};

} // namespace

Stmt halide::inlineCalls(const Stmt &S,
                         const std::map<std::string, Function> &Env) {
  Inliner I(Env);
  return I.mutate(S);
}

Expr halide::inlineCalls(const Expr &E,
                         const std::map<std::string, Function> &Env) {
  Inliner I(Env);
  return I.mutate(E);
}
