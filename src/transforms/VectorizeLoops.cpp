//===-- transforms/VectorizeLoops.cpp -------------------------------------------=//

#include "transforms/VectorizeLoops.h"
#include "analysis/Scope.h"
#include "ir/IRMutator.h"
#include "ir/IROperators.h"
#include "transforms/Simplify.h"
#include "transforms/Substitute.h"

#include <algorithm>

using namespace halide;

namespace {

/// Substitutes a vector value for a scalar loop variable, widening every
/// expression the variable flows into. Scalar operands mixing with vector
/// operands are broadcast (the paper's type coercion pass).
class VectorSubstitute : public IRMutator {
public:
  VectorSubstitute(const std::string &VarName, Expr Replacement)
      : VarName(VarName), Replacement(Replacement),
        Lanes(Replacement.type().Lanes) {}

protected:
  Expr visit(const Variable *Op) override {
    if (Op->Name == VarName)
      return Replacement;
    if (WidenedLets.contains(Op->Name))
      return Variable::make(WidenedLets.get(Op->Name), Op->Name);
    return Op;
  }

  Expr visit(const Cast *Op) override {
    Expr Value = mutate(Op->Value);
    Type T = Op->NodeType.withLanes(Value.type().Lanes);
    if (Value.sameAs(Op->Value) && T == Op->NodeType)
      return Op;
    return Cast::make(T, Value);
  }

  Expr visit(const Add *Op) override { return widenBinary<Add>(Op); }
  Expr visit(const Sub *Op) override { return widenBinary<Sub>(Op); }
  Expr visit(const Mul *Op) override { return widenBinary<Mul>(Op); }
  Expr visit(const Div *Op) override { return widenBinary<Div>(Op); }
  Expr visit(const Mod *Op) override { return widenBinary<Mod>(Op); }
  Expr visit(const Min *Op) override { return widenBinary<Min>(Op); }
  Expr visit(const Max *Op) override { return widenBinary<Max>(Op); }
  Expr visit(const EQ *Op) override { return widenBinary<EQ>(Op); }
  Expr visit(const NE *Op) override { return widenBinary<NE>(Op); }
  Expr visit(const LT *Op) override { return widenBinary<LT>(Op); }
  Expr visit(const LE *Op) override { return widenBinary<LE>(Op); }
  Expr visit(const GT *Op) override { return widenBinary<GT>(Op); }
  Expr visit(const GE *Op) override { return widenBinary<GE>(Op); }
  Expr visit(const And *Op) override { return widenBinary<And>(Op); }
  Expr visit(const Or *Op) override { return widenBinary<Or>(Op); }

  Expr visit(const Select *Op) override {
    Expr C = mutate(Op->Condition);
    Expr T = mutate(Op->TrueValue);
    Expr F = mutate(Op->FalseValue);
    int L = std::max({C.type().Lanes, T.type().Lanes, F.type().Lanes});
    if (L > 1) {
      C = widen(C, L);
      T = widen(T, L);
      F = widen(F, L);
    }
    if (C.sameAs(Op->Condition) && T.sameAs(Op->TrueValue) &&
        F.sameAs(Op->FalseValue))
      return Op;
    return Select::make(C, T, F);
  }

  Expr visit(const Load *Op) override {
    Expr Index = mutate(Op->Index);
    if (Index.sameAs(Op->Index))
      return Op;
    return Load::make(Op->NodeType.withLanes(Index.type().Lanes), Op->Name,
                      Index);
  }

  Expr visit(const Call *Op) override {
    std::vector<Expr> Args(Op->Args.size());
    bool Changed = false;
    int L = 1;
    for (size_t I = 0; I < Args.size(); ++I) {
      Args[I] = mutate(Op->Args[I]);
      Changed |= !Args[I].sameAs(Op->Args[I]);
      L = std::max(L, Args[I].type().Lanes);
    }
    if (!Changed)
      return Op;
    internal_assert(Op->CallKind == CallType::PureExtern ||
                    Op->CallKind == CallType::Intrinsic)
        << "unflattened call to " << Op->Name << " during vectorization";
    for (Expr &Arg : Args)
      Arg = widen(Arg, L);
    return Call::make(Op->NodeType.withLanes(L), Op->Name, std::move(Args),
                      Op->CallKind);
  }

  Expr visit(const Let *Op) override {
    Expr Value = mutate(Op->Value);
    if (Value.type().isVector()) {
      ScopedBinding<Type> Bind(WidenedLets, Op->Name, Value.type());
      Expr Body = mutate(Op->Body);
      return Let::make(Op->Name, Value, Body);
    }
    Expr Body = mutate(Op->Body);
    if (Value.sameAs(Op->Value) && Body.sameAs(Op->Body))
      return Op;
    return Let::make(Op->Name, Value, Body);
  }

  Stmt visit(const LetStmt *Op) override {
    Expr Value = mutate(Op->Value);
    if (Value.type().isVector()) {
      ScopedBinding<Type> Bind(WidenedLets, Op->Name, Value.type());
      Stmt Body = mutate(Op->Body);
      return LetStmt::make(Op->Name, Value, Body);
    }
    Stmt Body = mutate(Op->Body);
    if (Value.sameAs(Op->Value) && Body.sameAs(Op->Body))
      return Op;
    return LetStmt::make(Op->Name, Value, Body);
  }

  Stmt visit(const Store *Op) override {
    Expr Value = mutate(Op->Value);
    Expr Index = mutate(Op->Index);
    int L = std::max(Value.type().Lanes, Index.type().Lanes);
    if (L > 1) {
      Value = widen(Value, L);
      Index = widen(Index, L);
    }
    if (Value.sameAs(Op->Value) && Index.sameAs(Op->Index))
      return Op;
    return Store::make(Op->Name, Value, Index);
  }

  Stmt visit(const For *Op) override {
    Expr MinExpr = mutate(Op->MinExpr);
    Expr Extent = mutate(Op->Extent);
    user_assert(MinExpr.type().isScalar() && Extent.type().isScalar())
        << "loop " << Op->Name
        << " has bounds that depend on a vectorized variable";
    Stmt Body = mutate(Op->Body);
    if (MinExpr.sameAs(Op->MinExpr) && Extent.sameAs(Op->Extent) &&
        Body.sameAs(Op->Body))
      return Op;
    return For::make(Op->Name, MinExpr, Extent, Op->Kind, Body);
  }

  Stmt visit(const IfThenElse *Op) override {
    Expr C = mutate(Op->Condition);
    user_assert(C.type().isScalar())
        << "divergent control flow: if condition depends on a vectorized "
           "variable";
    Stmt T = mutate(Op->ThenCase);
    Stmt F = mutate(Op->ElseCase);
    if (C.sameAs(Op->Condition) && T.sameAs(Op->ThenCase) &&
        F.sameAs(Op->ElseCase))
      return Op;
    return IfThenElse::make(C, T, F);
  }

  Stmt visit(const Allocate *Op) override {
    for (const Expr &E : Op->Extents)
      user_assert(!mutate(E).type().isVector())
          << "allocation " << Op->Name
          << " has an extent that depends on a vectorized variable";
    return IRMutator::visit(Op);
  }

private:
  template <typename NodeT> Expr widenBinary(const NodeT *Op) {
    Expr A = mutate(Op->A);
    Expr B = mutate(Op->B);
    int L = std::max(A.type().Lanes, B.type().Lanes);
    if (L > 1) {
      A = widen(A, L);
      B = widen(B, L);
    }
    if (A.sameAs(Op->A) && B.sameAs(Op->B))
      return Op;
    return NodeT::make(A, B);
  }

  Expr widen(Expr E, int L) {
    if (E.type().Lanes == L)
      return E;
    internal_assert(E.type().isScalar())
        << "cannot widen " << E.type().str() << " to " << L << " lanes";
    return Broadcast::make(E, L);
  }

  std::string VarName;
  Expr Replacement;
  int Lanes;
  Scope<Type> WidenedLets;
};

class VectorizeLoopsPass : public IRMutator {
protected:
  Stmt visit(const For *Op) override {
    if (Op->Kind != ForType::Vectorized)
      return IRMutator::visit(Op);
    Stmt Body = mutate(Op->Body); // inner vectorized loops are an error
    int64_t Extent;
    user_assert(proveConstInt(Op->Extent, &Extent))
        << "vectorized loop " << Op->Name
        << " must have a constant extent (got "
        << "a symbolic expression); split by a constant factor first";
    user_assert(Extent >= 1) << "vectorized loop with non-positive extent";
    if (Extent == 1)
      return substitute(Op->Name, Op->MinExpr, Body);
    Expr Lanes = Ramp::make(Op->MinExpr, makeOne(Op->MinExpr.type()),
                            int(Extent));
    VectorSubstitute Sub(Op->Name, Lanes);
    return Sub.mutate(Body);
  }
};

} // namespace

Stmt halide::vectorizeLoops(const Stmt &S) {
  VectorizeLoopsPass Pass;
  return Pass.mutate(S);
}
