//===-- transforms/StorageFolding.h - Fold marching storage -----*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage folding (paper section 4.3): when the region of an allocation
/// used by each iteration of an intervening serial loop marches
/// monotonically and has a constant-boundable extent, the storage can be
/// folded by rewriting indices modulo a power of two, reducing peak memory
/// (e.g. a whole-image blurx buffer folds to 3 scanlines).
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_STORAGEFOLDING_H
#define HALIDE_TRANSFORMS_STORAGEFOLDING_H

#include "lang/Function.h"

#include <map>
#include <string>

namespace halide {

/// Applies storage folding to every foldable Realize in the statement.
Stmt storageFolding(const Stmt &S,
                    const std::map<std::string, Function> &Env);

} // namespace halide

#endif // HALIDE_TRANSFORMS_STORAGEFOLDING_H
