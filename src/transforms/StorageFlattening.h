//===-- transforms/StorageFlattening.h - Multi-dim -> 1-D -------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flattening (paper section 4.4): converts multidimensional Provide/Call
/// accesses into one-dimensional Store/Load of flattened buffers; the index
/// is the dot product of the site coordinates and the strides, minus the
/// minimum. The innermost dimension always has stride 1 (scanline layout)
/// for internal allocations; pipeline boundary buffers use the runtime-bound
/// strides of the caller's buffers ("<name>.stride.<d>" parameters).
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_STORAGEFLATTENING_H
#define HALIDE_TRANSFORMS_STORAGEFLATTENING_H

#include "lang/Function.h"

#include <map>
#include <set>
#include <string>

namespace halide {

/// Runs flattening. \p OutputName is the pipeline output (stored through
/// the caller's buffer); \p InputImages are the input image names.
Stmt storageFlattening(const Stmt &S, const std::string &OutputName,
                       const std::set<std::string> &InputImages,
                       const std::map<std::string, Function> &Env);

/// Buffer-metadata parameter names, bound from RawBuffers at execution.
inline std::string bufferMinName(const std::string &Buf, int D) {
  return Buf + ".min." + std::to_string(D);
}
inline std::string bufferExtentName(const std::string &Buf, int D) {
  return Buf + ".extent." + std::to_string(D);
}
inline std::string bufferStrideName(const std::string &Buf, int D) {
  return Buf + ".stride." + std::to_string(D);
}

} // namespace halide

#endif // HALIDE_TRANSFORMS_STORAGEFLATTENING_H
