//===-- transforms/UnrollLoops.h - Loop unrolling ---------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unrolling (paper section 4.5): replaces a constant-extent loop scheduled
/// as unrolled with n sequential copies of its body. Partial unrolling is
/// expressed by splitting first and unrolling the inner dimension.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_UNROLLLOOPS_H
#define HALIDE_TRANSFORMS_UNROLLLOOPS_H

#include "ir/Expr.h"

namespace halide {

/// Replaces all unrolled loops in \p S with repeated bodies.
Stmt unrollLoops(const Stmt &S);

} // namespace halide

#endif // HALIDE_TRANSFORMS_UNROLLLOOPS_H
