//===-- transforms/ScheduleFunctions.cpp ---------------------------------------=//

#include "transforms/ScheduleFunctions.h"
#include "ir/IRMutator.h"
#include "ir/IROperators.h"
#include "ir/IRVisitor.h"
#include "transforms/Substitute.h"

#include <algorithm>

using namespace halide;

namespace {

std::string loopMinName(const std::string &QualifiedVar) {
  return QualifiedVar + ".loop_min";
}
std::string loopExtentName(const std::string &QualifiedVar) {
  return QualifiedVar + ".loop_extent";
}

Expr loopMinVar(const std::string &QualifiedVar) {
  return Variable::make(Int(32), loopMinName(QualifiedVar));
}
Expr loopExtentVar(const std::string &QualifiedVar) {
  return Variable::make(Int(32), loopExtentName(QualifiedVar));
}

/// A (name, value) pair for a pending LetStmt.
struct PendingLet {
  std::string Name;
  Expr Value;
};

/// Builds the loop nest for the pure definition of \p F.
Stmt buildPureNest(const Function &F) {
  const Schedule &S = F.schedule();
  const std::string &Name = F.name();

  // The innermost statement: writing one point of the function. Pure
  // variables are referenced under their loop-qualified names.
  std::map<std::string, Expr> VarMap;
  for (const std::string &Arg : F.args())
    VarMap[Arg] = Variable::make(Int(32), loopVarName(Name, Arg));
  Expr Value = substitute(VarMap, F.value());
  std::vector<Expr> ProvideArgs;
  for (const std::string &Arg : F.args())
    ProvideArgs.push_back(VarMap[Arg]);
  Stmt Nest = Provide::make(Name, Value, ProvideArgs);

  // Split index reconstruction, innermost: each split defines the old index
  // from its outer and inner components. Wrapping in split order places
  // later splits' definitions outside earlier ones, so a re-split outer
  // variable is defined before it is used. The original dimension's minimum
  // is captured under a dedicated ".base" name outside the split's own
  // loop-bound lets, because the outer or inner variable may reuse the old
  // name (e.g. split(y, ty, y, 8)), shadowing its loop_min.
  for (size_t I = 0; I < S.Splits.size(); ++I) {
    const Split &Sp = S.Splits[I];
    std::string Old = loopVarName(Name, Sp.Old);
    std::string Outer = loopVarName(Name, Sp.Outer);
    std::string Inner = loopVarName(Name, Sp.Inner);
    std::string Base = Old + ".base" + std::to_string(I);
    Expr Index = Variable::make(Int(32), Outer) * Sp.Factor +
                 Variable::make(Int(32), Inner) +
                 Variable::make(Int(32), Base);
    Nest = LetStmt::make(Old, Index, Nest);
  }

  // The loops themselves, innermost last in Dims.
  for (size_t I = S.Dims.size(); I-- > 0;) {
    const Dim &D = S.Dims[I];
    std::string QV = loopVarName(Name, D.Var);
    Nest = For::make(QV, loopMinVar(QV), loopExtentVar(QV), D.Kind, Nest);
  }

  // Bounds definitions: root dimensions range over the function's required
  // region; splits derive outer/inner ranges, rounding the traversed domain
  // up to a multiple of the factor (paper section 4.1).
  std::vector<PendingLet> Lets;
  for (size_t D = 0; D < F.args().size(); ++D) {
    std::string QV = loopVarName(Name, F.args()[D]);
    Lets.push_back({loopMinName(QV),
                    Variable::make(Int(32), funcMinName(Name, int(D)))});
    Lets.push_back({loopExtentName(QV),
                    Variable::make(Int(32), funcExtentName(Name, int(D)))});
  }
  for (size_t I = 0; I < S.Splits.size(); ++I) {
    const Split &Sp = S.Splits[I];
    std::string Old = loopVarName(Name, Sp.Old);
    std::string Outer = loopVarName(Name, Sp.Outer);
    std::string Inner = loopVarName(Name, Sp.Inner);
    // Capture the old dimension's bounds before the outer/inner lets can
    // shadow them (outer or inner may reuse the old name).
    Lets.push_back({Old + ".base" + std::to_string(I), loopMinVar(Old)});
    Expr OldExtent = loopExtentVar(Old);
    Lets.push_back({Old + ".oldextent" + std::to_string(I), OldExtent});
    Expr OldExtentVar = Variable::make(
        Int(32), Old + ".oldextent" + std::to_string(I));
    Lets.push_back({loopMinName(Outer), 0});
    Lets.push_back({loopExtentName(Outer),
                    (OldExtentVar + Sp.Factor - 1) / Sp.Factor});
    Lets.push_back({loopMinName(Inner), 0});
    Lets.push_back({loopExtentName(Inner), Sp.Factor});
  }
  for (size_t I = Lets.size(); I-- > 0;)
    Nest = LetStmt::make(Lets[I].Name, Lets[I].Value, Nest);
  return Nest;
}

/// Builds the loop nest for update stage \p Idx of \p F.
Stmt buildUpdateNest(const Function &F, size_t Idx) {
  const UpdateDefinition &U = F.updates()[Idx];
  const std::string &Name = F.name();
  std::string StagePrefix = Name + ".s" + std::to_string(Idx + 1) + ".";

  // Update loops are qualified with the stage prefix to keep them distinct
  // from the pure stage's loops.
  std::map<std::string, Expr> VarMap;
  for (const Dim &D : U.Dims)
    VarMap[D.Var] = Variable::make(Int(32), StagePrefix + D.Var);

  Expr Value = substitute(VarMap, U.Value);
  std::vector<Expr> ProvideArgs;
  for (const Expr &Arg : U.Args)
    ProvideArgs.push_back(substitute(VarMap, Arg));
  Stmt Nest = Provide::make(Name, Value, ProvideArgs);

  for (size_t I = U.Dims.size(); I-- > 0;) {
    const Dim &D = U.Dims[I];
    std::string QV = StagePrefix + D.Var;
    Nest = For::make(QV, loopMinVar(QV), loopExtentVar(QV), D.Kind, Nest);
  }

  // Bounds: pure dimensions of the update cover the function's required
  // region; reduction dimensions use the RDom's explicit bounds (paper
  // section 2).
  std::vector<PendingLet> Lets;
  for (const Dim &D : U.Dims) {
    std::string QV = StagePrefix + D.Var;
    if (D.IsRVar) {
      const ReductionVariable *RV = nullptr;
      for (const ReductionVariable &Candidate : U.RVars)
        if (Candidate.Name == D.Var)
          RV = &Candidate;
      internal_assert(RV) << "update dim " << D.Var << " not in RDom";
      Lets.push_back({loopMinName(QV), RV->Min});
      Lets.push_back({loopExtentName(QV), RV->Extent});
      continue;
    }
    // Which pure argument is this?
    auto It = std::find(F.args().begin(), F.args().end(), D.Var);
    internal_assert(It != F.args().end())
        << "update dim " << D.Var << " is not a pure argument";
    int ArgIdx = int(It - F.args().begin());
    Lets.push_back({loopMinName(QV),
                    Variable::make(Int(32), funcMinName(Name, ArgIdx))});
    Lets.push_back({loopExtentName(QV),
                    Variable::make(Int(32), funcExtentName(Name, ArgIdx))});
  }
  for (size_t I = Lets.size(); I-- > 0;)
    Nest = LetStmt::make(Lets[I].Name, Lets[I].Value, Nest);
  return Nest;
}

} // namespace

Stmt halide::buildProduceNest(const Function &F) {
  internal_assert(F.hasPureDefinition())
      << "cannot lower undefined function " << F.name();
  Stmt Nest = buildPureNest(F);
  for (size_t I = 0; I < F.updates().size(); ++I)
    Nest = Block::make(Nest, buildUpdateNest(F, I));
  return ProducerConsumer::make(F.name(), /*IsProducer=*/true, Nest);
}

Expr halide::writtenExtent(const Function &F, int D, Expr RequiredExtent) {
  // Walk the split tree of dimension D, computing the product of leaf loop
  // extents. requiredOf maps each live dimension name to its traversed
  // extent expression.
  const Schedule &S = F.schedule();
  internal_assert(D >= 0 && D < int(F.args().size()));
  std::map<std::string, Expr> ExtentOf;
  ExtentOf[F.args()[D]] = RequiredExtent;
  for (const Split &Sp : S.Splits) {
    auto It = ExtentOf.find(Sp.Old);
    if (It == ExtentOf.end())
      continue; // split of some other original dimension
    Expr OldExtent = It->second;
    ExtentOf.erase(It);
    ExtentOf[Sp.Outer] = (OldExtent + Sp.Factor - 1) / Sp.Factor;
    ExtentOf[Sp.Inner] = Sp.Factor;
  }
  Expr Product;
  for (const auto &[VarName, Extent] : ExtentOf)
    Product = Product.defined() ? Product * Extent : Extent;
  internal_assert(Product.defined());
  return Product;
}

namespace {

/// Searches a statement for a ProducerConsumer(Name, IsProducer=true) node.
class FindProduce : public IRVisitor {
public:
  explicit FindProduce(const std::string &Name) : Name(Name) {}
  bool Found = false;

  void visit(const ProducerConsumer *Op) override {
    if (Op->Name == Name && Op->IsProducer)
      Found = true;
    IRVisitor::visit(Op);
  }

private:
  const std::string &Name;
};

bool containsProduce(const Stmt &S, const std::string &Name) {
  FindProduce Finder(Name);
  S.accept(&Finder);
  return Finder.Found;
}

/// Injects the produce nest of a function at its compute level, splitting
/// the target loop body into produce and consume halves.
class InjectProduce : public IRMutator {
public:
  InjectProduce(const Function &F, const LoopLevel &Level)
      : F(F), Level(Level) {}

  bool Injected = false;

  Stmt inject(const Stmt &Body) {
    Stmt Produce = buildProduceNest(F);
    Stmt Consume = ProducerConsumer::make(F.name(), /*IsProducer=*/false,
                                          Body);
    Injected = true;
    return Block::make(Produce, Consume);
  }

protected:
  Stmt visit(const For *Op) override {
    if (!Injected && Level.isAt() && Op->Name == Level.loopName()) {
      Stmt Body = mutate(Op->Body); // handle inner recurrences first
      return For::make(Op->Name, Op->MinExpr, Op->Extent, Op->Kind,
                       inject(Body));
    }
    return IRMutator::visit(Op);
  }

private:
  const Function &F;
  const LoopLevel &Level;
};

/// Wraps the loop body at the store level (which must contain the produce
/// node) in a Realize allocation marker.
class InjectRealize : public IRMutator {
public:
  InjectRealize(const Function &F, const LoopLevel &Level)
      : F(F), Level(Level) {}

  bool Injected = false;

  Stmt wrap(const Stmt &Body) {
    internal_assert(containsProduce(Body, F.name()))
        << "store level of " << F.name()
        << " does not enclose its compute level";
    Region Bounds;
    for (int D = 0; D < F.dimensions(); ++D) {
      // Placeholder bounds; bounds inference replaces them.
      Bounds.emplace_back(
          Variable::make(Int(32), F.name() + ".realize_min." +
                                      std::to_string(D)),
          Variable::make(Int(32), F.name() + ".realize_extent." +
                                      std::to_string(D)));
    }
    Injected = true;
    return Realize::make(F.name(), F.outputType(), std::move(Bounds), Body);
  }

protected:
  Stmt visit(const For *Op) override {
    if (!Injected && Level.isAt() && Op->Name == Level.loopName() &&
        containsProduce(Op->Body, F.name())) {
      Stmt Body = mutate(Op->Body);
      return For::make(Op->Name, Op->MinExpr, Op->Extent, Op->Kind,
                       wrap(Body));
    }
    return IRMutator::visit(Op);
  }

private:
  const Function &F;
  const LoopLevel &Level;
};

} // namespace

Stmt halide::scheduleFunctions(const Function &Output,
                               const std::vector<std::string> &Order,
                               const std::map<std::string, Function> &Env) {
  // Start with the output's own nest (conceptually computed at root).
  Stmt S = buildProduceNest(Output);

  // Inject every other non-inlined function, consumers before producers.
  for (size_t I = Order.size(); I-- > 0;) {
    const std::string &Name = Order[I];
    if (Name == Output.name())
      continue;
    const Function &F = Env.at(Name);
    LoopLevel Compute = F.schedule().ComputeLevel;
    LoopLevel Store = F.schedule().StoreLevel;
    // Functions with update definitions have state and cannot be inlined.
    if (Compute.isInlined() && F.hasUpdateDefinition())
      Compute = LoopLevel::root();
    if (Compute.isInlined())
      continue; // stays as Call nodes; resolved by the inline pass
    if (Store.isInlined())
      Store = Compute;

    if (Compute.isRoot()) {
      user_assert(Store.isRoot())
          << "store level of " << Name
          << " must be root when compute level is root";
      InjectProduce Producer(F, Compute);
      S = Producer.inject(S);
      InjectRealize Realizer(F, Store);
      S = Realizer.wrap(S);
      continue;
    }

    InjectProduce Producer(F, Compute);
    S = Producer.mutate(S);
    user_assert(Producer.Injected)
        << "compute level " << Compute.str() << " of " << Name
        << " was not found in the loop nest";

    InjectRealize Realizer(F, Store);
    if (Store.isRoot())
      S = Realizer.wrap(S);
    else
      S = Realizer.mutate(S);
    user_assert(Realizer.Injected)
        << "store level " << Store.str() << " of " << Name
        << " was not found in the loop nest (it must enclose the compute "
           "level)";
  }
  return S;
}
