//===-- transforms/BoundsInference.cpp ------------------------------------------=//

#include "transforms/BoundsInference.h"
#include "analysis/Bounds.h"
#include "analysis/Derivatives.h"
#include "ir/IRMutator.h"
#include "ir/IROperators.h"
#include "ir/IRPrinter.h"
#include "ir/IRVisitor.h"
#include "transforms/ScheduleFunctions.h"
#include "transforms/Simplify.h"
#include "transforms/Substitute.h"

#include <set>

using namespace halide;

namespace {

/// Prefixes \p Lets with the ledger definitions their values
/// (transitively) reference, in creation order, dropping definitions
/// nothing uses.
std::vector<std::pair<std::string, Expr>>
prependLedgerDefs(const ExprLedger &Ledger,
                  std::vector<std::pair<std::string, Expr>> Lets) {
  const auto &Defs = Ledger.defs();
  if (Defs.empty())
    return Lets;
  std::set<std::string> Needed;
  auto CollectFrom = [&](const Expr &E) {
    for (const std::string &V : freeVars(E))
      if (Ledger.contains(V))
        Needed.insert(V);
  };
  for (const auto &[Name, Value] : Lets)
    CollectFrom(Value);
  std::vector<char> Keep(Defs.size(), 0);
  for (size_t I = Defs.size(); I-- > 0;) {
    if (!Needed.count(Defs[I].first))
      continue;
    Keep[I] = 1;
    CollectFrom(Defs[I].second);
  }
  std::vector<std::pair<std::string, Expr>> Result;
  for (size_t I = 0; I < Defs.size(); ++I)
    if (Keep[I])
      Result.push_back(Defs[I]);
  Result.insert(Result.end(), std::make_move_iterator(Lets.begin()),
                std::make_move_iterator(Lets.end()));
  return Result;
}

/// Finds the unique produce / consume ProducerConsumer nodes for a name.
class FindProduceConsume : public IRVisitor {
public:
  explicit FindProduceConsume(const std::string &Name) : Name(Name) {}

  Stmt Produce, Consume;

  void visit(const ProducerConsumer *Op) override {
    if (Op->Name == Name) {
      if (Op->IsProducer) {
        internal_assert(!Produce.defined())
            << "multiple produce nodes for " << Name;
        Produce = Stmt(Op);
      } else {
        internal_assert(!Consume.defined())
            << "multiple consume nodes for " << Name;
        Consume = Stmt(Op);
      }
      // Do not recurse into this function's own nodes looking for more of
      // them, but do recurse for nested content.
    }
    IRVisitor::visit(Op);
  }

private:
  const std::string &Name;
};

/// Collects the For loops and LetStmts on the path from a statement down to
/// the produce node of a name (the "intervening" loops between the storage
/// and compute levels) in a single pass: a DFS snapshots the ancestor
/// chain when it reaches the produce node. Each binding on the chain is
/// then ranged exactly once, raw against the caller's ledger, so
/// everything downstream references shared results by name.
class PathToProduce : public IRVisitor {
public:
  PathToProduce(const std::string &Name, ExprLedger *Ledger)
      : Ledger(Ledger), Name(Name) {}

  /// Loop-name -> interval, plus let bounds, accumulated along the path.
  Scope<Interval> PathScope;
  bool Found = false;

  void walk(const Stmt &S) {
    S.accept(this);
    if (!Found)
      return;
    for (const Stmt &Node : Chain) {
      if (const For *Loop = Node.as<For>()) {
        Interval MinB = boundsOfExprInScope(Loop->MinExpr, PathScope, Ledger);
        Interval ExtB = boundsOfExprInScope(Loop->Extent, PathScope, Ledger);
        Interval LoopRange;
        LoopRange.Min = MinB.Min;
        if (MinB.hasUpperBound() && ExtB.hasUpperBound())
          LoopRange.Max = simplify(MinB.Max + ExtB.Max - 1);
        PathScope.push(Loop->Name, Ledger->shared(LoopRange, Loop->Name));
      } else if (const LetStmt *L = Node.as<LetStmt>()) {
        PathScope.push(
            L->Name,
            Ledger->shared(boundsOfExprInScope(L->Value, PathScope, Ledger),
                           L->Name));
      }
    }
  }

  void visit(const ProducerConsumer *Op) override {
    if (Found)
      return;
    if (Op->Name == Name && Op->IsProducer) {
      Found = true;
      Chain = Stack;
      return;
    }
    IRVisitor::visit(Op);
  }

  void visit(const For *Op) override {
    if (Found)
      return;
    Stack.push_back(Stmt(Op));
    IRVisitor::visit(Op);
    if (!Found)
      Stack.pop_back();
  }

  void visit(const LetStmt *Op) override {
    if (Found)
      return;
    Stack.push_back(Stmt(Op));
    IRVisitor::visit(Op);
    if (!Found)
      Stack.pop_back();
  }

private:
  ExprLedger *Ledger;
  const std::string &Name;
  std::vector<Stmt> Stack, Chain;
};

/// Wraps the produce node for \p Name in the given LetStmts.
class WrapProduce : public IRMutator {
public:
  WrapProduce(const std::string &Name, std::vector<std::pair<std::string, Expr>> Lets)
      : Name(Name), Lets(std::move(Lets)) {}

protected:
  Stmt visit(const ProducerConsumer *Op) override {
    if (Op->Name != Name || !Op->IsProducer)
      return IRMutator::visit(Op);
    Stmt Result = Stmt(Op);
    for (size_t I = Lets.size(); I-- > 0;)
      Result = LetStmt::make(Lets[I].first, Lets[I].second, Result);
    return Result;
  }

private:
  const std::string &Name;
  std::vector<std::pair<std::string, Expr>> Lets;
};

class BoundsInferencePass : public IRMutator {
public:
  explicit BoundsInferencePass(const std::map<std::string, Function> &Env)
      : Env(Env) {}

protected:
  Stmt visit(const Realize *Op) override {
    // Consumers first: process realizations nested inside this one so that
    // their bounds lets are in place before we analyze this stage.
    Stmt Body = mutate(Op->Body);

    auto It = Env.find(Op->Name);
    internal_assert(It != Env.end())
        << "realize of unknown function " << Op->Name;
    const Function &F = It->second;
    int Rank = F.dimensions();

    FindProduceConsume Finder(Op->Name);
    Body.accept(&Finder);
    internal_assert(Finder.Produce.defined() && Finder.Consume.defined())
        << "realize of " << Op->Name << " missing produce/consume nodes";

    // Region required by consumers (paper: "the region produced of each
    // stage [must] be at least as large as the region consumed by
    // subsequent stages"). The walk shares subexpressions through a
    // per-stage ledger: the returned intervals are raw references into it,
    // and the definitions are emitted below as LetStmts above the stage's
    // min/extent chain — one binding per reused bounds subtree, however
    // many stages or dimensions reference it.
    Scope<Interval> Empty;
    ExprLedger Ledger;
    Box Consumer = boxRequired(Finder.Consume.as<ProducerConsumer>()->Body,
                               Op->Name, Empty, &Ledger);
    internal_assert(int(Consumer.size()) == Rank ||
                    Consumer.empty())
        << "consumer box of " << Op->Name << " has wrong rank";

    // Region touched by the function's own update stages (scatters and
    // recursive reads), expressed in terms of the still-symbolic required
    // region; resolved by substituting the consumer box.
    Box Self = boxesTouched(Finder.Produce, Empty, /*IncludeCalls=*/true,
                            /*IncludeProvides=*/true, &Ledger)[Op->Name];

    std::vector<std::pair<std::string, Expr>> Lets;
    std::vector<Expr> MinExprs(Rank), MaxExprs(Rank);
    std::map<std::string, Expr> SelfSubstitution;
    for (int D = 0; D < Rank; ++D) {
      internal_assert(D < int(Consumer.size()) &&
                      Consumer[D].isBounded())
          << "bounds inference: required region of " << Op->Name
          << " dimension " << D
          << " is unbounded; clamp data-dependent coordinates";
      MinExprs[D] = simplify(Consumer[D].Min);
      MaxExprs[D] = simplify(Consumer[D].Max);
      SelfSubstitution[funcMinName(Op->Name, D)] = MinExprs[D];
      SelfSubstitution[funcExtentName(Op->Name, D)] =
          simplify(MaxExprs[D] - MinExprs[D] + 1);
    }
    if (!Self.empty()) {
      internal_assert(int(Self.size()) == Rank);
      // The self region (and any ledger definitions it pulled in) is
      // expressed in terms of the stage's own still-symbolic region
      // variables; resolve both against the consumer region.
      Ledger.substituteInDefs(SelfSubstitution);
      for (int D = 0; D < Rank; ++D) {
        internal_assert(Self[D].isBounded())
            << "bounds inference: self region of " << Op->Name
            << " dimension " << D << " is unbounded";
        Expr SelfMin =
            simplify(substitute(SelfSubstitution, Self[D].Min));
        Expr SelfMax =
            simplify(substitute(SelfSubstitution, Self[D].Max));
        MinExprs[D] = simplify(min(MinExprs[D], SelfMin));
        MaxExprs[D] = simplify(max(MaxExprs[D], SelfMax));
      }
    }
    for (int D = 0; D < Rank; ++D) {
      // Programmer-declared bounds override inference for this dimension.
      for (const BoundConstraint &BC : F.schedule().Bounds) {
        if (BC.Var == F.args()[D]) {
          MinExprs[D] = BC.Min;
          MaxExprs[D] = simplify(BC.Min + BC.Extent - 1);
        }
      }
      Lets.emplace_back(funcMinName(Op->Name, D), MinExprs[D]);
      // Built from the raw endpoints so that shared terms cancel: the
      // extent of a dimension whose min and max ride the same ledger
      // names frequently folds to a constant here.
      Lets.emplace_back(funcExtentName(Op->Name, D),
                        simplify(MaxExprs[D] - MinExprs[D] + 1));
    }

    // The ledger definitions the min/extent chain (transitively) uses
    // become real LetStmts above it, in creation order — later
    // definitions may reference earlier ones, never the reverse.
    Lets = prependLedgerDefs(Ledger, std::move(Lets));

    WrapProduce Wrapper(Op->Name, Lets);
    Body = Wrapper.mutate(Body);

    // Allocation bounds: the compute-site region bounded over the loops
    // between the storage level (here) and the compute level, with the
    // extent rounded up to the traversed extent of split dimensions. The
    // path walk and the per-dimension ranging share one ledger, so each
    // preamble binding is bounded once; min and max then cancel
    // structurally in the extent, and only the final expressions are
    // materialized (the Realize sits outside the preamble lets and must
    // stay self-contained).
    ExprLedger PathLedger;
    PathToProduce Path(Op->Name, &PathLedger);
    Path.walk(Body);
    internal_assert(Path.Found) << "lost produce node for " << Op->Name;
    Region RealizeBounds;
    for (int D = 0; D < Rank; ++D) {
      Interval MinB =
          boundsOfExprInScope(MinExprs[D], Path.PathScope, &PathLedger);
      Interval MaxB =
          boundsOfExprInScope(MaxExprs[D], Path.PathScope, &PathLedger);
      internal_assert(MinB.hasLowerBound() && MaxB.hasUpperBound())
          << "allocation bounds of " << Op->Name << " dimension " << D
          << " are unbounded over the loops between store and compute "
             "levels";
      Expr AllocMin = simplify(MinB.Min);
      Expr RequiredExtent = simplify(MaxB.Max - MinB.Min + 1);
      Expr AllocExtent = simplify(writtenExtent(F, D, RequiredExtent));
      RealizeBounds.emplace_back(simplify(PathLedger.materialize(AllocMin)),
                                 simplify(PathLedger.materialize(AllocExtent)));
    }
    return Realize::make(Op->Name, Op->ElemType, std::move(RealizeBounds),
                         Body);
  }

private:
  const std::map<std::string, Function> &Env;
};

} // namespace

Stmt halide::boundsInference(const Stmt &S,
                             const std::map<std::string, Function> &Env) {
  BoundsInferencePass Pass(Env);
  return Pass.mutate(S);
}
