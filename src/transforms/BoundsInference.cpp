//===-- transforms/BoundsInference.cpp ------------------------------------------=//

#include "transforms/BoundsInference.h"
#include "analysis/Bounds.h"
#include "ir/IRMutator.h"
#include "ir/IROperators.h"
#include "ir/IRPrinter.h"
#include "ir/IRVisitor.h"
#include "transforms/ScheduleFunctions.h"
#include "transforms/Simplify.h"
#include "transforms/Substitute.h"

using namespace halide;

namespace {

/// Finds the unique produce / consume ProducerConsumer nodes for a name.
class FindProduceConsume : public IRVisitor {
public:
  explicit FindProduceConsume(const std::string &Name) : Name(Name) {}

  Stmt Produce, Consume;

  void visit(const ProducerConsumer *Op) override {
    if (Op->Name == Name) {
      if (Op->IsProducer) {
        internal_assert(!Produce.defined())
            << "multiple produce nodes for " << Name;
        Produce = Stmt(Op);
      } else {
        internal_assert(!Consume.defined())
            << "multiple consume nodes for " << Name;
        Consume = Stmt(Op);
      }
      // Do not recurse into this function's own nodes looking for more of
      // them, but do recurse for nested content.
    }
    IRVisitor::visit(Op);
  }

private:
  const std::string &Name;
};

/// Collects the For loops and LetStmts on the path from a statement down to
/// the produce node of a name (the "intervening" loops between the storage
/// and compute levels).
class PathToProduce : public IRVisitor {
public:
  explicit PathToProduce(const std::string &Name) : Name(Name) {}

  /// Loop-name -> interval, plus let bounds, accumulated along the path.
  Scope<Interval> PathScope;
  /// The serial loops on the path, outermost first (used by the sliding
  /// window pass via a similar walk; collected here for assertions).
  std::vector<const For *> PathLoops;
  bool Found = false;

  void visit(const ProducerConsumer *Op) override {
    if (Op->Name == Name && Op->IsProducer) {
      Found = true;
      return;
    }
    if (!Found)
      IRVisitor::visit(Op);
  }

  void visit(const For *Op) override {
    if (Found)
      return;
    // Does this subtree contain the produce node?
    FindProduceConsume Finder(Name);
    Op->Body.accept(&Finder);
    if (!Finder.Produce.defined())
      return; // not on the path
    Interval MinB = boundsOfExprInScope(Op->MinExpr, PathScope);
    Interval ExtB = boundsOfExprInScope(Op->Extent, PathScope);
    Interval LoopRange;
    LoopRange.Min = MinB.Min;
    if (MinB.hasUpperBound() && ExtB.hasUpperBound())
      LoopRange.Max = simplify(MinB.Max + ExtB.Max - 1);
    PathScope.push(Op->Name, LoopRange);
    PathLoops.push_back(Op);
    Op->Body.accept(this);
  }

  void visit(const LetStmt *Op) override {
    if (Found)
      return;
    FindProduceConsume Finder(Name);
    Op->Body.accept(&Finder);
    if (!Finder.Produce.defined()) {
      return;
    }
    PathScope.push(Op->Name, boundsOfExprInScope(Op->Value, PathScope));
    Op->Body.accept(this);
  }

private:
  const std::string &Name;
};

/// Wraps the produce node for \p Name in the given LetStmts.
class WrapProduce : public IRMutator {
public:
  WrapProduce(const std::string &Name, std::vector<std::pair<std::string, Expr>> Lets)
      : Name(Name), Lets(std::move(Lets)) {}

protected:
  Stmt visit(const ProducerConsumer *Op) override {
    if (Op->Name != Name || !Op->IsProducer)
      return IRMutator::visit(Op);
    Stmt Result = Stmt(Op);
    for (size_t I = Lets.size(); I-- > 0;)
      Result = LetStmt::make(Lets[I].first, Lets[I].second, Result);
    return Result;
  }

private:
  const std::string &Name;
  std::vector<std::pair<std::string, Expr>> Lets;
};

class BoundsInferencePass : public IRMutator {
public:
  explicit BoundsInferencePass(const std::map<std::string, Function> &Env)
      : Env(Env) {}

protected:
  Stmt visit(const Realize *Op) override {
    // Consumers first: process realizations nested inside this one so that
    // their bounds lets are in place before we analyze this stage.
    Stmt Body = mutate(Op->Body);

    auto It = Env.find(Op->Name);
    internal_assert(It != Env.end())
        << "realize of unknown function " << Op->Name;
    const Function &F = It->second;
    int Rank = F.dimensions();

    FindProduceConsume Finder(Op->Name);
    Body.accept(&Finder);
    internal_assert(Finder.Produce.defined() && Finder.Consume.defined())
        << "realize of " << Op->Name << " missing produce/consume nodes";

    // Region required by consumers (paper: "the region produced of each
    // stage [must] be at least as large as the region consumed by
    // subsequent stages").
    Scope<Interval> Empty;
    Box Consumer = boxRequired(Finder.Consume.as<ProducerConsumer>()->Body,
                               Op->Name, Empty);
    internal_assert(int(Consumer.size()) == Rank ||
                    Consumer.empty())
        << "consumer box of " << Op->Name << " has wrong rank";

    // Region touched by the function's own update stages (scatters and
    // recursive reads), expressed in terms of the still-symbolic required
    // region; resolved by substituting the consumer box.
    Box Self = boxesTouched(Finder.Produce, Empty, /*IncludeCalls=*/true,
                            /*IncludeProvides=*/true)[Op->Name];

    std::vector<std::pair<std::string, Expr>> Lets;
    std::vector<Expr> MinExprs(Rank), MaxExprs(Rank);
    std::map<std::string, Expr> SelfSubstitution;
    for (int D = 0; D < Rank; ++D) {
      internal_assert(D < int(Consumer.size()) &&
                      Consumer[D].isBounded())
          << "bounds inference: required region of " << Op->Name
          << " dimension " << D
          << " is unbounded; clamp data-dependent coordinates";
      MinExprs[D] = simplify(Consumer[D].Min);
      MaxExprs[D] = simplify(Consumer[D].Max);
      SelfSubstitution[funcMinName(Op->Name, D)] = MinExprs[D];
      SelfSubstitution[funcExtentName(Op->Name, D)] =
          simplify(MaxExprs[D] - MinExprs[D] + 1);
    }
    if (!Self.empty()) {
      internal_assert(int(Self.size()) == Rank);
      for (int D = 0; D < Rank; ++D) {
        internal_assert(Self[D].isBounded())
            << "bounds inference: self region of " << Op->Name
            << " dimension " << D << " is unbounded";
        Expr SelfMin =
            simplify(substitute(SelfSubstitution, Self[D].Min));
        Expr SelfMax =
            simplify(substitute(SelfSubstitution, Self[D].Max));
        MinExprs[D] = simplify(min(MinExprs[D], SelfMin));
        MaxExprs[D] = simplify(max(MaxExprs[D], SelfMax));
      }
    }
    for (int D = 0; D < Rank; ++D) {
      // Programmer-declared bounds override inference for this dimension.
      for (const BoundConstraint &BC : F.schedule().Bounds) {
        if (BC.Var == F.args()[D]) {
          MinExprs[D] = BC.Min;
          MaxExprs[D] = simplify(BC.Min + BC.Extent - 1);
        }
      }
      Lets.emplace_back(funcMinName(Op->Name, D), MinExprs[D]);
      Lets.emplace_back(funcExtentName(Op->Name, D),
                        simplify(MaxExprs[D] - MinExprs[D] + 1));
    }

    WrapProduce Wrapper(Op->Name, Lets);
    Body = Wrapper.mutate(Body);

    // Allocation bounds: the compute-site region bounded over the loops
    // between the storage level (here) and the compute level, with the
    // extent rounded up to the traversed extent of split dimensions.
    PathToProduce Path(Op->Name);
    Body.accept(&Path);
    internal_assert(Path.Found) << "lost produce node for " << Op->Name;
    Region RealizeBounds;
    for (int D = 0; D < Rank; ++D) {
      Interval MinB = boundsOfExprInScope(MinExprs[D], Path.PathScope);
      Interval MaxB = boundsOfExprInScope(MaxExprs[D], Path.PathScope);
      internal_assert(MinB.hasLowerBound() && MaxB.hasUpperBound())
          << "allocation bounds of " << Op->Name << " dimension " << D
          << " are unbounded over the loops between store and compute "
             "levels";
      Expr AllocMin = simplify(MinB.Min);
      Expr RequiredExtent = simplify(MaxB.Max - MinB.Min + 1);
      Expr AllocExtent = simplify(writtenExtent(F, D, RequiredExtent));
      RealizeBounds.emplace_back(AllocMin, AllocExtent);
    }
    return Realize::make(Op->Name, Op->ElemType, std::move(RealizeBounds),
                         Body);
  }

private:
  const std::map<std::string, Function> &Env;
};

} // namespace

Stmt halide::boundsInference(const Stmt &S,
                             const std::map<std::string, Function> &Env) {
  BoundsInferencePass Pass(Env);
  return Pass.mutate(S);
}
