//===-- transforms/InjectProfiling.cpp - Stage profiling markers ----------===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transforms/InjectProfiling.h"

#include "ir/IRMutator.h"
#include "lang/Function.h"

#include <vector>

namespace halide {

namespace {

Stmt marker(const char *Intrinsic, const std::string &Stage) {
  return Evaluate::make(Call::make(Int(32), Intrinsic,
                                   {StringImm::make(Stage)},
                                   CallType::Intrinsic));
}

/// Wraps \p Body in start/end markers for \p Stage.
Stmt bracket(const std::string &Stage, Stmt Body) {
  return Block::make(
      marker(Call::ProfileStageStart, Stage),
      Block::make(std::move(Body), marker(Call::ProfileStageEnd, Stage)));
}

class InjectProfiling : public IRMutator {
public:
  explicit InjectProfiling(const std::map<std::string, Function> &Env)
      : Env(Env) {}

private:
  const std::map<std::string, Function> &Env;

  /// Peels the LetStmt/AssertStmt preamble of a produce body and
  /// flattens the Block chain underneath into \p Chain; returns the
  /// peeled wrappers outermost-first so the caller can rebuild.
  static void peel(const Stmt &S, std::vector<Stmt> &Wrappers,
                   std::vector<Stmt> &Chain) {
    Stmt Cur = S;
    while (const LetStmt *L = Cur.as<LetStmt>()) {
      Wrappers.push_back(Cur);
      Cur = L->Body;
    }
    const Stmt *Walk = &Cur;
    while (const Block *B = Walk->as<Block>()) {
      Chain.push_back(B->First);
      Walk = &B->Rest;
    }
    Chain.push_back(*Walk);
  }

  Stmt visit(const ProducerConsumer *Op) override {
    Stmt Body = mutate(Op->Body);
    if (!Op->IsProducer) {
      // Consume bodies need no marker of their own: with a stage stack,
      // the producer's end marker *is* the consume transition (the
      // enclosing stage resumes accumulating self time).
      if (Body.sameAs(Op->Body))
        return Op;
      return ProducerConsumer::make(Op->Name, Op->IsProducer, Body);
    }
    Body = bracketUpdates(Op->Name, std::move(Body));
    return ProducerConsumer::make(Op->Name, true,
                                  bracket(Op->Name, std::move(Body)));
  }

  /// Best-effort per-update sub-stages: when the produce body's top
  /// Block chain (under its LetStmt preamble) has exactly 1 + #updates
  /// statements, statements 1..N are the update stages in definition
  /// order; bracket each as "name.update(k)". Anything else (folded
  /// storage, fused loops) keeps whole-stage attribution only.
  Stmt bracketUpdates(const std::string &Name, Stmt Body) {
    auto It = Env.find(Name);
    if (It == Env.end() || It->second.updates().empty())
      return Body;
    size_t NumUpdates = It->second.updates().size();
    std::vector<Stmt> Wrappers, Chain;
    peel(Body, Wrappers, Chain);
    if (Chain.size() != 1 + NumUpdates)
      return Body;
    for (size_t K = 0; K < NumUpdates; ++K)
      Chain[1 + K] = bracket(Name + ".update(" + std::to_string(K) + ")",
                             Chain[1 + K]);
    Stmt Rebuilt = Block::make(Chain);
    for (auto W = Wrappers.rbegin(); W != Wrappers.rend(); ++W) {
      const LetStmt *L = W->as<LetStmt>();
      Rebuilt = LetStmt::make(L->Name, L->Value, Rebuilt);
    }
    return Rebuilt;
  }
};

} // namespace

LoweredPipeline injectProfiling(const LoweredPipeline &P) {
  LoweredPipeline Out = P;
  InjectProfiling M(P.Env);
  // The whole pipeline body is the output stage's production; bracket it
  // so time outside any inner producer (the output's own loops) is
  // attributed to the output stage rather than lost.
  Out.Body = M.mutate(P.Body);
  if (!P.Body.defined())
    return Out;
  const std::string OutputName = P.Output.name();
  bool OutputBracketed = false;
  if (const ProducerConsumer *PC = P.Body.as<ProducerConsumer>())
    OutputBracketed = PC->IsProducer && PC->Name == OutputName;
  if (!OutputBracketed)
    Out.Body = bracket(OutputName, Out.Body);
  return Out;
}

} // namespace halide
