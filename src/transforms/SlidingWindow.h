//===-- transforms/SlidingWindow.h - Reuse across iterations ----*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sliding window optimization (paper section 4.3): when a function is
/// stored at a higher loop level than it is computed, with an intervening
/// serial loop, each iteration can reuse values computed by previous
/// iterations. The pass shrinks the per-iteration compute region to exclude
/// everything already computed, trading parallelism (the loop must stay
/// serial) for the elimination of redundant recomputation.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_SLIDINGWINDOW_H
#define HALIDE_TRANSFORMS_SLIDINGWINDOW_H

#include "lang/Function.h"

#include <map>
#include <string>

namespace halide {

/// Applies sliding window optimizations over every Realize whose produce
/// node sits under an intervening serial loop.
Stmt slidingWindow(const Stmt &S, const std::map<std::string, Function> &Env);

} // namespace halide

#endif // HALIDE_TRANSFORMS_SLIDINGWINDOW_H
