//===-- transforms/BoundsInference.h - Region inference ---------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounds inference (paper section 4.2): for every Realize node, computes
/// the region of the function required by its consumers (plus the region its
/// own update stages touch) using interval analysis, and injects LetStmt
/// preambles defining "f.min.d" / "f.extent.d" at the produce site. Realize
/// bounds (the allocation) are the compute-site region bounded over the
/// loops between the storage and compute levels, with split dimensions
/// rounded up to the traversed (written) extent.
///
/// Stages are processed consumers-first (inner realizations before outer
/// ones), so each stage's bounds expressions resolve against lets already
/// placed in the tree — ultimately bottoming out at the output buffer's
/// size, which is all the generated bounds depend on (section 4).
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_BOUNDSINFERENCE_H
#define HALIDE_TRANSFORMS_BOUNDSINFERENCE_H

#include "lang/Function.h"

#include <map>
#include <string>

namespace halide {

/// Runs bounds inference over the scheduled pipeline statement. \p Env maps
/// function names to Functions (for split/roundup information).
Stmt boundsInference(const Stmt &S,
                     const std::map<std::string, Function> &Env);

} // namespace halide

#endif // HALIDE_TRANSFORMS_BOUNDSINFERENCE_H
