//===-- transforms/SlidingWindow.cpp --------------------------------------------=//

#include "transforms/SlidingWindow.h"
#include "analysis/Derivatives.h"
#include "analysis/Monotonic.h"
#include "ir/IRMutator.h"
#include "ir/IROperators.h"
#include "ir/IRVisitor.h"
#include "transforms/ScheduleFunctions.h"
#include "transforms/Simplify.h"
#include "transforms/Substitute.h"

using namespace halide;

namespace {

/// Rewrites the bounds lets ("f.min.d" / "f.extent.d") above the produce
/// node of one function to exclude the region computed by previous
/// iterations of a given serial loop.
class SlideAlongLoop : public IRMutator {
public:
  SlideAlongLoop(const std::string &FuncName, int Rank,
                 const std::string &LoopVar, Expr LoopMin)
      : FuncName(FuncName), Rank(Rank), LoopVar(LoopVar), LoopMin(LoopMin) {}

  bool Applied = false;

protected:
  Stmt visit(const LetStmt *Op) override {
    // We are looking for the chain of lets directly wrapping the produce
    // node. Collect the whole chain, then decide.
    if (!startsWith(Op->Name, FuncName + ".min.") &&
        !startsWith(Op->Name, FuncName + ".extent.")) {
      // Not part of the chain. Record the binding — bounds inference now
      // emits shared bounds definitions as enclosing lets, so the chain's
      // dependence on the loop variable may only be visible through them.
      Monotonic M = isMonotonic(Op->Value, LoopVar, LetMono);
      ScopedBinding<Monotonic> BindMono(LetMono, Op->Name, M);
      ActiveLets.push_back({Op->Name, Op->Value, M != Monotonic::Constant});
      Stmt Body = mutate(Op->Body);
      ActiveLets.pop_back();
      if (Body.sameAs(Op->Body))
        return Op;
      return LetStmt::make(Op->Name, Op->Value, Body);
    }

    // Gather the full let chain and the statement under it.
    std::vector<std::pair<std::string, Expr>> Chain;
    Stmt Inner(Op);
    while (const LetStmt *L = Inner.as<LetStmt>()) {
      if (!startsWith(L->Name, FuncName + ".min.") &&
          !startsWith(L->Name, FuncName + ".extent."))
        break;
      Chain.emplace_back(L->Name, L->Value);
      Inner = L->Body;
    }
    const ProducerConsumer *PC = Inner.as<ProducerConsumer>();
    if (!PC || PC->Name != FuncName || !PC->IsProducer)
      return IRMutator::visit(Op);

    // Reconstruct min/extent expressions per dimension.
    std::vector<Expr> Mins(Rank), Extents(Rank);
    for (const auto &[Name, Value] : Chain) {
      for (int D = 0; D < Rank; ++D) {
        if (Name == funcMinName(FuncName, D))
          Mins[D] = Value;
        if (Name == funcExtentName(FuncName, D))
          Extents[D] = Value;
      }
    }
    for (int D = 0; D < Rank; ++D)
      if (!Mins[D].defined() || !Extents[D].defined())
        return IRMutator::visit(Op);

    // Find the single dimension that marches with the loop; all others must
    // be loop-invariant for the rewrite to be sound. The analysis sees
    // through enclosing shared-bounds lets via LetMono.
    int SlideDim = -1;
    for (int D = 0; D < Rank; ++D) {
      Monotonic MinMono = isMonotonic(Mins[D], LoopVar, LetMono);
      Monotonic MaxMono =
          isMonotonic(simplify(Mins[D] + Extents[D] - 1), LoopVar, LetMono);
      if (MinMono == Monotonic::Constant && MaxMono == Monotonic::Constant)
        continue;
      if (MinMono == Monotonic::Increasing &&
          MaxMono == Monotonic::Increasing && SlideDim < 0) {
        SlideDim = D;
        continue;
      }
      return IRMutator::visit(Op); // some dimension moves unpredictably
    }
    if (SlideDim < 0)
      return IRMutator::visit(Op);

    // New minimum: skip everything computed by the previous iteration. The
    // first iteration computes the full region (select on LoopVar==LoopMin).
    // The previous iteration's maximum shifts the loop variable back by
    // one, which must reach loop-variable dependence hidden inside shared
    // bounds definitions — expand exactly those before substituting.
    Expr OldMin = Mins[SlideDim];
    Expr OldMax = simplify(OldMin + Extents[SlideDim] - 1);
    Expr PrevMax = substitute(
        LoopVar, Variable::make(Int(32), LoopVar) - 1,
        expandLoopDependentLets(OldMax));
    Expr LoopVarExpr = Variable::make(Int(32), LoopVar);
    Expr NewMin = select(LoopVarExpr == LoopMin, OldMin,
                         max(OldMin, PrevMax + 1));
    Expr NewExtent = simplify(OldMax - NewMin + 1);

    std::vector<std::pair<std::string, Expr>> NewChain = Chain;
    for (auto &[Name, Value] : NewChain) {
      if (Name == funcMinName(FuncName, SlideDim))
        Value = NewMin;
      if (Name == funcExtentName(FuncName, SlideDim))
        Value = NewExtent;
    }
    Applied = true;
    Stmt Result = Inner;
    for (size_t I = NewChain.size(); I-- > 0;)
      Result = LetStmt::make(NewChain[I].first, NewChain[I].second, Result);
    return Result;
  }

private:
  /// An enclosing LetStmt seen on the way down to the chain.
  struct ActiveLet {
    std::string Name;
    Expr Value;
    bool LoopDependent;
  };

  /// Substitutes away every active let whose value depends on the loop
  /// variable (innermost first, so values referencing other such lets
  /// resolve transitively). Loop-invariant lets stay by name: they remain
  /// in scope at the rewritten chain and need no copy.
  Expr expandLoopDependentLets(Expr E) const {
    for (size_t I = ActiveLets.size(); I-- > 0;) {
      const ActiveLet &L = ActiveLets[I];
      if (L.LoopDependent && exprUsesVar(E, L.Name))
        E = substitute(L.Name, L.Value, E);
    }
    return E;
  }

  std::string FuncName;
  int Rank;
  std::string LoopVar;
  Expr LoopMin;
  Scope<Monotonic> LetMono;
  std::vector<ActiveLet> ActiveLets;
};

/// Walks the tree looking for Realize nodes; within each, finds serial
/// loops between the Realize and the produce node and attempts to slide
/// along the innermost such loop.
class SlidingWindowPass : public IRMutator {
public:
  explicit SlidingWindowPass(const std::map<std::string, Function> &Env)
      : Env(Env) {}

protected:
  Stmt visit(const Realize *Op) override {
    Stmt Body = mutate(Op->Body); // inner realizations first
    auto It = Env.find(Op->Name);
    internal_assert(It != Env.end()) << "realize of unknown " << Op->Name;
    int Rank = It->second.dimensions();

    // Walk down to the produce node collecting the loops on the path.
    // Sliding is only sound along the innermost intervening loop, and only
    // when it is serial: a single unique first iteration must exist for
    // every point (paper section 3.2).
    std::vector<const For *> PathLoops;
    collectSerialPath(Body, Op->Name, &PathLoops);
    if (!PathLoops.empty() && PathLoops.back()->Kind == ForType::Serial) {
      const For *Loop = PathLoops.back();
      SlideAlongLoop Slider(Op->Name, Rank, Loop->Name, Loop->MinExpr);
      Stmt NewBody = Slider.mutate(Body);
      if (Slider.Applied)
        Body = NewBody;
    }
    if (Body.sameAs(Op->Body))
      return Op;
    return Realize::make(Op->Name, Op->ElemType, Op->Bounds, Body);
  }

private:
  static void collectSerialPath(const Stmt &S, const std::string &Name,
                                std::vector<const For *> *Out) {
    if (const For *Loop = S.as<For>()) {
      if (containsProduceOf(Loop->Body, Name)) {
        Out->push_back(Loop);
        collectSerialPath(Loop->Body, Name, Out);
      }
      return;
    }
    if (const LetStmt *L = S.as<LetStmt>()) {
      collectSerialPath(L->Body, Name, Out);
      return;
    }
    if (const Block *B = S.as<Block>()) {
      collectSerialPath(B->First, Name, Out);
      collectSerialPath(B->Rest, Name, Out);
      return;
    }
    if (const IfThenElse *I = S.as<IfThenElse>()) {
      collectSerialPath(I->ThenCase, Name, Out);
      if (I->ElseCase.defined())
        collectSerialPath(I->ElseCase, Name, Out);
      return;
    }
    // Stop at ProducerConsumer of the name itself, and do not descend into
    // inner Realize nodes of other functions (their loops relate to their
    // own windows), except that the produce of Name may legitimately sit
    // inside another function's consume; handle by continuing through both.
    if (const ProducerConsumer *PC = S.as<ProducerConsumer>()) {
      if (PC->Name == Name && PC->IsProducer)
        return;
      collectSerialPath(PC->Body, Name, Out);
      return;
    }
    if (const Realize *R = S.as<Realize>()) {
      collectSerialPath(R->Body, Name, Out);
      return;
    }
  }

  static bool containsProduceOf(const Stmt &S, const std::string &Name);

  const std::map<std::string, Function> &Env;
};

class ProduceFinder : public IRVisitor {
public:
  explicit ProduceFinder(const std::string &Name) : Name(Name) {}
  bool Found = false;
  void visit(const ProducerConsumer *Op) override {
    if (Op->Name == Name && Op->IsProducer) {
      Found = true;
      return;
    }
    IRVisitor::visit(Op);
  }

private:
  const std::string &Name;
};

bool SlidingWindowPass::containsProduceOf(const Stmt &S,
                                          const std::string &Name) {
  ProduceFinder Finder(Name);
  S.accept(&Finder);
  return Finder.Found;
}

} // namespace

Stmt halide::slidingWindow(const Stmt &S,
                           const std::map<std::string, Function> &Env) {
  SlidingWindowPass Pass(Env);
  return Pass.mutate(S);
}
