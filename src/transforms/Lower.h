//===-- transforms/Lower.h - The lowering driver ----------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the full compilation of a scheduled pipeline into an imperative
/// statement, in the paper's pass order (Figure 5): loop synthesis, bounds
/// inference, sliding window optimization and storage folding, flattening,
/// vectorization and unrolling, then simplification. The result plus its
/// argument signature is what the back ends consume.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_LOWER_H
#define HALIDE_TRANSFORMS_LOWER_H

#include "lang/Function.h"
#include "lang/Target.h"

#include <map>
#include <string>
#include <vector>

namespace halide {

/// A buffer argument of the compiled pipeline.
struct BufferArg {
  std::string Name;
  Type ElemType;
  int Dimensions = 0;
  bool IsOutput = false;
};

/// A scalar argument of the compiled pipeline.
struct ScalarArg {
  std::string Name;
  Type ArgType;
};

/// A fully lowered pipeline: the statement plus its argument signature.
struct LoweredPipeline {
  std::string Name;
  Function Output;
  Stmt Body;
  /// Buffer arguments: the output buffer first, then input images in name
  /// order. Metadata parameters "<name>.min.<d>" / ".extent.<d>" /
  /// ".stride.<d>" are bound from these buffers.
  std::vector<BufferArg> Buffers;
  /// User scalar parameters, in name order.
  std::vector<ScalarArg> Scalars;
  std::map<std::string, Function> Env;
};

/// Lowers the pipeline producing \p Output. Only the Target's feature
/// flags steer lowering; the backend choice is applied later, when the
/// lowered pipeline is handed to a back end (codegen/Executable.h).
LoweredPipeline lower(const Function &Output, const Target &T = Target());

} // namespace halide

#endif // HALIDE_TRANSFORMS_LOWER_H
