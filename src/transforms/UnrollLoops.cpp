//===-- transforms/UnrollLoops.cpp ----------------------------------------------=//

#include "transforms/UnrollLoops.h"
#include "ir/IRMutator.h"
#include "ir/IROperators.h"
#include "transforms/Simplify.h"
#include "transforms/Substitute.h"

using namespace halide;

namespace {

class UnrollLoopsPass : public IRMutator {
protected:
  Stmt visit(const For *Op) override {
    if (Op->Kind != ForType::Unrolled)
      return IRMutator::visit(Op);
    Stmt Body = mutate(Op->Body);
    int64_t Extent;
    user_assert(proveConstInt(Op->Extent, &Extent))
        << "unrolled loop " << Op->Name
        << " must have a constant extent; split by a constant factor first";
    user_assert(Extent >= 1 && Extent <= 64)
        << "unrolled loop extent " << Extent << " out of range [1, 64]";
    Stmt Result;
    for (int64_t I = 0; I < Extent; ++I) {
      Stmt Iteration = substitute(
          Op->Name, simplify(Op->MinExpr + makeConst(Int(32), I)), Body);
      Result = Result.defined() ? Block::make(Result, Iteration) : Iteration;
    }
    return Result;
  }
};

} // namespace

Stmt halide::unrollLoops(const Stmt &S) {
  UnrollLoopsPass Pass;
  return Pass.mutate(S);
}
