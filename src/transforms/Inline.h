//===-- transforms/Inline.h - Inline scheduled-inline functions -*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replaces calls to functions whose call schedule is "inlined" (the paper's
/// total fusion / fine-grain interleaving without storage) with their
/// definitions, substituting call arguments for pure variables.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_TRANSFORMS_INLINE_H
#define HALIDE_TRANSFORMS_INLINE_H

#include "lang/Function.h"

#include <map>
#include <string>

namespace halide {

/// True if \p F is scheduled to be inlined into its consumers. Functions
/// with update definitions have state and are never inlined.
bool isInlined(const Function &F);

/// Substitutes the bodies of all inlined functions for their calls,
/// repeatedly, until no calls to inlined functions remain.
Stmt inlineCalls(const Stmt &S, const std::map<std::string, Function> &Env);
Expr inlineCalls(const Expr &E, const std::map<std::string, Function> &Env);

} // namespace halide

#endif // HALIDE_TRANSFORMS_INLINE_H
