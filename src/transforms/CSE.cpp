//===-- transforms/CSE.cpp ------------------------------------------------------=//

#include "transforms/CSE.h"
#include "analysis/Derivatives.h"
#include "ir/IREquality.h"
#include "ir/IRMutator.h"
#include "ir/IRVisitor.h"

#include <map>
#include <set>

using namespace halide;

namespace {

/// Is it worth giving this expression a name? Leaves and casts of leaves
/// are cheaper to recompute than to bind.
bool isNontrivial(const Expr &E) {
  switch (E->Kind) {
  case IRNodeKind::IntImm:
  case IRNodeKind::UIntImm:
  case IRNodeKind::FloatImm:
  case IRNodeKind::StringImm:
  case IRNodeKind::Variable:
  case IRNodeKind::Broadcast:
  case IRNodeKind::Ramp:
    return false;
  case IRNodeKind::Cast:
    return isNontrivial(E.as<Cast>()->Value);
  default:
    return true;
  }
}

/// Counts structural occurrences of every subexpression.
class OccurrenceCounter : public IRVisitor {
public:
  std::map<Expr, int, ExprCompare> Counts;

  void countExpr(const Expr &E) {
    if (!isNontrivial(E)) {
      // still recurse into children
      E.accept(this);
      return;
    }
    int &C = Counts[E];
    ++C;
    // Only recurse the first time: children of repeated expressions are
    // counted once per unique parent occurrence being materialized.
    if (C == 1)
      E.accept(this);
  }

  void visit(const Cast *Op) override { countExpr(Op->Value); }
  void visit(const Add *Op) override { countBinary(Op); }
  void visit(const Sub *Op) override { countBinary(Op); }
  void visit(const Mul *Op) override { countBinary(Op); }
  void visit(const Div *Op) override { countBinary(Op); }
  void visit(const Mod *Op) override { countBinary(Op); }
  void visit(const Min *Op) override { countBinary(Op); }
  void visit(const Max *Op) override { countBinary(Op); }
  void visit(const EQ *Op) override { countBinary(Op); }
  void visit(const NE *Op) override { countBinary(Op); }
  void visit(const LT *Op) override { countBinary(Op); }
  void visit(const LE *Op) override { countBinary(Op); }
  void visit(const GT *Op) override { countBinary(Op); }
  void visit(const GE *Op) override { countBinary(Op); }
  void visit(const And *Op) override { countBinary(Op); }
  void visit(const Or *Op) override { countBinary(Op); }
  void visit(const Not *Op) override { countExpr(Op->A); }
  void visit(const Select *Op) override {
    countExpr(Op->Condition);
    countExpr(Op->TrueValue);
    countExpr(Op->FalseValue);
  }
  void visit(const Load *Op) override { countExpr(Op->Index); }
  void visit(const Call *Op) override {
    for (const Expr &Arg : Op->Args)
      countExpr(Arg);
  }
  // Let values are candidates too (the bounds-sharing layer puts Let
  // expressions into statement-level positions, so CSE sees them before
  // its own pass ever introduced any).
  void visit(const Let *Op) override {
    countExpr(Op->Value);
    Op->Body.accept(this);
  }

private:
  template <typename T> void countBinary(const T *Op) {
    countExpr(Op->A);
    countExpr(Op->B);
  }
};

/// Replaces counted-repeated subexpressions with variables, collecting the
/// bindings (in dependency order: inner expressions first).
class Replacer : public IRMutator {
public:
  Replacer(const std::map<Expr, int, ExprCompare> &Counts) : Counts(Counts) {}

  std::vector<std::pair<std::string, Expr>> Bindings;

  Expr mutate(const Expr &E) override {
    if (!E.defined())
      return E;
    if (isNontrivial(E)) {
      auto It = Counts.find(E);
      // An expression using a Let-bound variable cannot be hoisted to the
      // binding block at the top of the statement: its name would escape
      // its scope. Leave such subtrees inline.
      if (It != Counts.end() && It->second > 1 && !usesBoundName(E)) {
        auto Cached = Replacements.find(E);
        if (Cached != Replacements.end())
          return Cached->second;
        Expr Inner = IRMutator::mutate(E); // CSE children first
        std::string Name = uniqueName("cse$");
        Bindings.emplace_back(Name, Inner);
        Expr Var = Variable::make(E.type(), Name);
        Replacements[E] = Var;
        return Var;
      }
    }
    return IRMutator::mutate(E);
  }

protected:
  Expr visit(const Let *Op) override {
    Expr Value = mutate(Op->Value);
    if (++BoundCounts[Op->Name] == 1)
      BoundNames.insert(Op->Name);
    Expr Body = mutate(Op->Body);
    if (--BoundCounts[Op->Name] == 0) {
      BoundCounts.erase(Op->Name);
      BoundNames.erase(Op->Name);
    }
    if (Value.sameAs(Op->Value) && Body.sameAs(Op->Body))
      return Op;
    return Let::make(Op->Name, Value, Body);
  }

private:
  bool usesBoundName(const Expr &E) const {
    return !BoundNames.empty() && exprUsesVars(E, BoundNames);
  }

  const std::map<Expr, int, ExprCompare> &Counts;
  std::map<Expr, Expr, ExprCompare> Replacements;
  /// Names of Let bindings currently in scope during the mutation, as a
  /// ready-made set so each hoist-candidate query pays no setup.
  std::map<std::string, int> BoundCounts;
  std::set<std::string> BoundNames;
};

Expr cseOne(const Expr &E) {
  OccurrenceCounter Counter;
  Counter.countExpr(E);
  bool AnyRepeated = false;
  for (const auto &[Sub, Count] : Counter.Counts)
    if (Count > 1)
      AnyRepeated = true;
  if (!AnyRepeated)
    return E;
  Replacer R(Counter.Counts);
  Expr Result = R.mutate(E);
  for (size_t I = R.Bindings.size(); I-- > 0;)
    Result = Let::make(R.Bindings[I].first, R.Bindings[I].second, Result);
  return Result;
}

/// Applies CSE to every statement-level expression: store values and
/// indexes, let/loop/allocation bounds, and branch conditions. Bounds
/// inference can build allocation extents whose repeated subtrees grow
/// exponentially with pipeline depth (each pyramid level references the
/// previous level's bounds twice), so skipping any of these positions
/// lets pathological expressions through to the back ends.
class CSEStmt : public IRMutator {
protected:
  Stmt visit(const Store *Op) override {
    Expr Value = cseOne(Op->Value);
    Expr Index = cseOne(Op->Index);
    if (Value.sameAs(Op->Value) && Index.sameAs(Op->Index))
      return Op;
    return Store::make(Op->Name, Value, Index);
  }

  Stmt visit(const Evaluate *Op) override {
    Expr Value = cseOne(Op->Value);
    if (Value.sameAs(Op->Value))
      return Op;
    return Evaluate::make(Value);
  }

  Stmt visit(const LetStmt *Op) override {
    Expr Value = cseOne(Op->Value);
    Stmt Body = mutate(Op->Body);
    if (Value.sameAs(Op->Value) && Body.sameAs(Op->Body))
      return Op;
    return LetStmt::make(Op->Name, Value, Body);
  }

  Stmt visit(const AssertStmt *Op) override {
    Expr Condition = cseOne(Op->Condition);
    if (Condition.sameAs(Op->Condition))
      return Op;
    return AssertStmt::make(Condition, Op->Message);
  }

  Stmt visit(const For *Op) override {
    Expr Min = cseOne(Op->MinExpr);
    Expr Extent = cseOne(Op->Extent);
    Stmt Body = mutate(Op->Body);
    if (Min.sameAs(Op->MinExpr) && Extent.sameAs(Op->Extent) &&
        Body.sameAs(Op->Body))
      return Op;
    return For::make(Op->Name, Min, Extent, Op->Kind, Body);
  }

  Stmt visit(const Allocate *Op) override {
    bool Changed = false;
    std::vector<Expr> Extents;
    Extents.reserve(Op->Extents.size());
    for (const Expr &E : Op->Extents) {
      Extents.push_back(cseOne(E));
      Changed |= !Extents.back().sameAs(E);
    }
    Stmt Body = mutate(Op->Body);
    if (!Changed && Body.sameAs(Op->Body))
      return Op;
    return Allocate::make(Op->Name, Op->ElemType, std::move(Extents), Body,
                          Op->InSharedMemory);
  }

  Stmt visit(const IfThenElse *Op) override {
    Expr Condition = cseOne(Op->Condition);
    Stmt ThenCase = mutate(Op->ThenCase);
    Stmt ElseCase =
        Op->ElseCase.defined() ? mutate(Op->ElseCase) : Op->ElseCase;
    if (Condition.sameAs(Op->Condition) && ThenCase.sameAs(Op->ThenCase) &&
        ElseCase.sameAs(Op->ElseCase))
      return Op;
    return IfThenElse::make(Condition, ThenCase, ElseCase);
  }
};

} // namespace

Expr halide::cseExpr(const Expr &E) { return cseOne(E); }

Stmt halide::cse(const Stmt &S) {
  CSEStmt Pass;
  return Pass.mutate(S);
}
