//===-- metrics/ScheduleMetrics.h - Figure-3 strategy metrics ---*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies a schedule the way the paper's Figure 3 does: span (available
/// parallelism), maximum reuse distance (locality), and work amplification
/// (redundant recomputation relative to breadth-first), plus measured wall
/// time through the JIT backend and peak intermediate memory.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_METRICS_SCHEDULEMETRICS_H
#define HALIDE_METRICS_SCHEDULEMETRICS_H

#include "lang/Pipeline.h"

#include <string>

namespace halide {

/// One row of a Figure-3-style table.
struct StrategyMetrics {
  std::string StrategyName;
  /// Parallel iterations available (threads/SIMD lanes that could be kept
  /// busy) — the paper's "span" column.
  int64_t Span = 0;
  /// Maximum operations between computing a value and reading it back.
  int64_t MaxReuseDistance = 0;
  /// Arithmetic work relative to breadth-first (1.0 = no redundancy).
  double WorkAmplification = 0.0;
  /// Peak intermediate allocation in bytes.
  int64_t PeakMemoryBytes = 0;
  /// Total loads + stores executed (the work-amplification numerator).
  int64_t MemoryOps = 0;
  /// Wall-clock milliseconds per frame through the JIT backend (median of
  /// several runs); negative if not measured.
  double Milliseconds = -1.0;
};

/// Gathers the analytic metrics by interpreting \p P (small sizes advised:
/// reuse tracking is per-element). \p BreadthFirstOps is the memory
/// operation count (loads + stores, a proxy for arithmetic work) of the
/// reference breadth-first schedule, used as the work-amplification
/// denominator; pass 0 to skip that field. The strategy's own operation
/// count is returned in MemoryOps.
StrategyMetrics analyzeStrategy(const std::string &Name, LoweredPipeline &P,
                                const ParamBindings &Params,
                                int64_t BreadthFirstOps);

/// Median wall-clock milliseconds of \p Iters runs of a compiled pipeline
/// (any Executable: JIT, GpuSim, or the interpreter).
double benchmarkMs(const class Executable &Exe, const ParamBindings &Params,
                   int Iters = 5);

} // namespace halide

#endif // HALIDE_METRICS_SCHEDULEMETRICS_H
