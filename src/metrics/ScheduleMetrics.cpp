//===-- metrics/ScheduleMetrics.cpp ----------------------------------------------=//

#include "metrics/ScheduleMetrics.h"
#include "codegen/Executable.h"
#include "codegen/Interpreter.h"

#include <algorithm>
#include <chrono>
#include <vector>

using namespace halide;

StrategyMetrics halide::analyzeStrategy(const std::string &Name,
                                        LoweredPipeline &P,
                                        const ParamBindings &Params,
                                        int64_t BreadthFirstOps) {
  InterpOptions Opts;
  Opts.TrackReuseDistance = true;
  ExecutionStats Stats = interpret(P, Params, Opts);

  StrategyMetrics M;
  M.StrategyName = Name;
  M.Span = std::max<int64_t>(Stats.ParallelIterations, 1);
  for (const auto &[Buf, Dist] : Stats.MaxReuseDistance)
    M.MaxReuseDistance = std::max(M.MaxReuseDistance, Dist);
  M.PeakMemoryBytes = Stats.PeakAllocationBytes;
  M.MemoryOps = Stats.totalStores();
  for (const auto &[Buf, Count] : Stats.LoadsPerBuffer)
    M.MemoryOps += Count;
  if (BreadthFirstOps > 0)
    M.WorkAmplification = double(M.MemoryOps) / double(BreadthFirstOps);
  return M;
}

double halide::benchmarkMs(const Executable &Exe,
                           const ParamBindings &Params, int Iters) {
  internal_assert(Iters >= 1);
  // Warm-up run (page faults, thread pool spin-up).
  Exe.run(Params);
  std::vector<double> Times;
  Times.reserve(size_t(Iters));
  for (int I = 0; I < Iters; ++I) {
    auto Start = std::chrono::steady_clock::now();
    Exe.run(Params);
    auto End = std::chrono::steady_clock::now();
    Times.push_back(
        std::chrono::duration<double, std::milli>(End - Start).count());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}
