//===-- schedule/Schedule.cpp ------------------------------------------------=//

#include "schedule/Schedule.h"
#include "ir/IRPrinter.h"

#include <sstream>

using namespace halide;

Dim *Schedule::findDim(const std::string &Var) {
  for (Dim &D : Dims)
    if (D.Var == Var)
      return &D;
  return nullptr;
}

const Dim *Schedule::findDim(const std::string &Var) const {
  for (const Dim &D : Dims)
    if (D.Var == Var)
      return &D;
  return nullptr;
}

std::string Schedule::str() const {
  std::ostringstream OS;
  OS << "compute_" << ComputeLevel.str() << " store_" << StoreLevel.str();
  for (const Split &S : Splits)
    OS << " split(" << S.Old << "," << S.Outer << "," << S.Inner << ","
       << exprToString(S.Factor) << ")";
  OS << " order(";
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I)
      OS << ",";
    OS << Dims[I].Var;
    switch (Dims[I].Kind) {
    case ForType::Serial:
      break;
    case ForType::Parallel:
      OS << ":par";
      break;
    case ForType::Vectorized:
      OS << ":vec";
      break;
    case ForType::Unrolled:
      OS << ":unroll";
      break;
    case ForType::GPUBlock:
      OS << ":gpu_block";
      break;
    case ForType::GPUThread:
      OS << ":gpu_thread";
      break;
    }
  }
  OS << ")";
  return OS.str();
}
