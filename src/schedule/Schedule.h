//===-- schedule/Schedule.h - The schedule representation -------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central artifact (section 3.2): a per-function description of
/// (a) the domain order — how the required region of the function's domain
/// is traversed: dimension order, splits, and serial / parallel /
/// vectorized / unrolled / GPU markings — and (b) the call schedule — the
/// loop levels of the consuming pipeline at which the function's values are
/// computed and stored.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_SCHEDULE_SCHEDULE_H
#define HALIDE_SCHEDULE_SCHEDULE_H

#include "ir/Expr.h"

#include <string>
#include <vector>

namespace halide {

/// One application of the split transformation: Old is replaced by
/// Outer * Factor + Inner. Splits apply in order, so outer/inner names can
/// themselves be split again (recursive tiling, paper section 3.2).
struct Split {
  std::string Old, Outer, Inner;
  Expr Factor;
};

/// One loop in a function's domain order, outermost-first in
/// Schedule::Dims. Pure dimensions may take any ForType; reduction
/// dimensions must stay serial unless the update is associative.
struct Dim {
  std::string Var;
  ForType Kind = ForType::Serial;
  bool IsRVar = false;
};

/// A point in the loop nest of the pipeline: where a function is computed
/// or stored (the call schedule). "Inlined" means compute at every use
/// site; "Root" is the paper's coarsest granularity, outside all loops.
class LoopLevel {
public:
  enum class Kind : uint8_t { Inlined, Root, At };

  LoopLevel() = default;

  static LoopLevel inlined() { return LoopLevel(Kind::Inlined, "", ""); }
  static LoopLevel root() { return LoopLevel(Kind::Root, "", ""); }
  static LoopLevel at(const std::string &FuncName,
                      const std::string &VarName) {
    return LoopLevel(Kind::At, FuncName, VarName);
  }

  bool isInlined() const { return LevelKind == Kind::Inlined; }
  bool isRoot() const { return LevelKind == Kind::Root; }
  bool isAt() const { return LevelKind == Kind::At; }

  const std::string &funcName() const { return FuncName; }
  const std::string &varName() const { return VarName; }

  /// The fully qualified loop name this level refers to ("func.var").
  std::string loopName() const {
    internal_assert(isAt()) << "loopName of non-At LoopLevel";
    return FuncName + "." + VarName;
  }

  bool operator==(const LoopLevel &Other) const {
    return LevelKind == Other.LevelKind && FuncName == Other.FuncName &&
           VarName == Other.VarName;
  }

  std::string str() const {
    if (isInlined())
      return "inlined";
    if (isRoot())
      return "root";
    return FuncName + "." + VarName;
  }

private:
  LoopLevel(Kind K, std::string FuncName, std::string VarName)
      : LevelKind(K), FuncName(std::move(FuncName)),
        VarName(std::move(VarName)) {}

  Kind LevelKind = Kind::Inlined;
  std::string FuncName, VarName;
};

/// An optional programmer-supplied bound on a pure dimension (the paper's
/// "optional bounds annotations", section 5), also used to bound output
/// dimensions like color channels.
struct BoundConstraint {
  std::string Var;
  Expr Min, Extent;
};

/// The complete schedule for one function (pure definition). Update
/// definitions carry their own Dims in the Function.
struct Schedule {
  std::vector<Split> Splits;
  /// Loop order, outermost first. Initialized by Function::define to the
  /// pure args in order (row-major: last arg outermost).
  std::vector<Dim> Dims;
  LoopLevel ComputeLevel = LoopLevel::inlined();
  LoopLevel StoreLevel = LoopLevel::inlined();
  std::vector<BoundConstraint> Bounds;

  /// Returns the Dim entry for \p Var, or null.
  Dim *findDim(const std::string &Var);
  const Dim *findDim(const std::string &Var) const;

  /// True if \p Var names a dimension in the current loop order.
  bool hasDim(const std::string &Var) const { return findDim(Var) != nullptr; }

  /// Renders the schedule as a short human-readable description (used by
  /// the autotuner's logs and EXPERIMENTS.md).
  std::string str() const;
};

} // namespace halide

#endif // HALIDE_SCHEDULE_SCHEDULE_H
