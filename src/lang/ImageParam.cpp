//===-- lang/ImageParam.cpp ----------------------------------------------------=//

#include "lang/ImageParam.h"

using namespace halide;

ImageParam::ImageParam(Type ElemType, int Dimensions, const std::string &Name)
    : ParamName(Name.empty() ? uniqueName("img") : Name), ElemType(ElemType),
      Dims(Dimensions) {
  user_assert(Dimensions >= 1 && Dimensions <= 4)
      << "ImageParam must have 1-4 dimensions";
  declareParam(ParamName, ElemType, /*IsImage=*/true, Dims);
}

void ImageParam::set(const RawBuffer &B) {
  user_assert(defined()) << "set on an undefined ImageParam";
  user_assert(B.defined()) << "ImageParam " << ParamName
                           << " bound to an undefined buffer";
  user_assert(B.ElemType == ElemType)
      << "ImageParam " << ParamName << " declared " << ElemType.str()
      << " but bound to a " << B.ElemType.str() << " buffer";
  user_assert(B.Dimensions == Dims)
      << "ImageParam " << ParamName << " declared " << Dims
      << "-dimensional but bound to a " << B.Dimensions
      << "-dimensional buffer";
  setParamImage(ParamName, B);
}

void ImageParam::reset() {
  user_assert(defined()) << "reset on an undefined ImageParam";
  clearParamValue(ParamName);
}

Expr ImageParam::operator()(std::vector<Expr> Args) const {
  user_assert(defined()) << "use of undefined ImageParam";
  user_assert(int(Args.size()) == Dims)
      << "ImageParam " << ParamName << " called with " << Args.size()
      << " coordinates, expected " << Dims;
  std::vector<Expr> CallArgs;
  CallArgs.reserve(Args.size());
  for (Expr &Arg : Args)
    CallArgs.push_back(cast(Int(32), Arg));
  return Call::make(ElemType, ParamName, std::move(CallArgs),
                    CallType::Image);
}

Expr ImageParam::operator()(Expr X) const {
  return (*this)(std::vector<Expr>{X});
}
Expr ImageParam::operator()(Expr X, Expr Y) const {
  return (*this)(std::vector<Expr>{X, Y});
}
Expr ImageParam::operator()(Expr X, Expr Y, Expr Z) const {
  return (*this)(std::vector<Expr>{X, Y, Z});
}

Expr ImageParam::extent(int D) const {
  user_assert(D >= 0 && D < Dims) << "extent dimension out of range";
  return Variable::make(Int(32),
                        ParamName + ".extent." + std::to_string(D),
                        /*IsParam=*/true);
}

Expr ImageParam::minCoord(int D) const {
  user_assert(D >= 0 && D < Dims) << "min dimension out of range";
  return Variable::make(Int(32), ParamName + ".min." + std::to_string(D),
                        /*IsParam=*/true);
}
