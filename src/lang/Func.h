//===-- lang/Func.h - The user-facing pipeline stage handle -----*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Func is the public API for defining pipeline stages (paper section 2) and
/// scheduling them (section 3): the algorithm is written once as pure
/// definitions, and every execution-strategy choice is a separate, chainable
/// scheduling call that cannot change the program's meaning.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_LANG_FUNC_H
#define HALIDE_LANG_FUNC_H

#include "lang/Function.h"
#include "lang/RDom.h"
#include "lang/Var.h"

#include <string>
#include <vector>

namespace halide {

class Func;

/// The result of calling a Func with arguments. Converts to an Expr (a call
/// to the stage) or accepts assignment (a definition of the stage).
class FuncRef {
public:
  FuncRef(Function F, std::vector<Expr> Args)
      : F(std::move(F)), Args(std::move(Args)) {}

  /// Using the reference as a value: a Call to the Func.
  operator Expr() const;

  /// Defining the Func: pure definition if all args are distinct plain Vars
  /// and the Func is not yet defined; otherwise an update definition whose
  /// reduction domain is inferred from the RVars used.
  void operator=(Expr Value);
  void operator=(const FuncRef &Other);

  /// Sugar for common reductions.
  void operator+=(Expr Value);
  void operator-=(Expr Value);
  void operator*=(Expr Value);

private:
  void defineUpdateFromExpr(Expr Value);

  Function F;
  std::vector<Expr> Args;
};

/// Names and factors for a standard 2-D tiling, built fluently so call
/// sites stay readable instead of threading eight positional arguments:
///   F.tile(TileSpec(x, y).outer(xo, yo).inner(xi, yi).factors(64, 32));
/// Unset outer/inner names default to fresh Vars; factors are required.
struct TileSpec {
  TileSpec(Var X, Var Y) : X(std::move(X)), Y(std::move(Y)) {}

  TileSpec &outer(Var XO, Var YO) {
    XOuter = std::move(XO);
    YOuter = std::move(YO);
    return *this;
  }
  TileSpec &inner(Var XI, Var YI) {
    XInner = std::move(XI);
    YInner = std::move(YI);
    return *this;
  }
  TileSpec &factors(Expr XF, Expr YF) {
    XFactor = std::move(XF);
    YFactor = std::move(YF);
    return *this;
  }

  Var X, Y;
  Var XOuter, YOuter, XInner, YInner; ///< default: fresh unique names
  Expr XFactor, YFactor;
};

/// A handle to a pipeline stage with definition and scheduling APIs. Copies
/// alias the same stage.
class Func {
public:
  /// Creates an undefined Func with a fresh unique name.
  Func();
  /// Creates an undefined Func with the given base name (made unique if
  /// already taken).
  explicit Func(const std::string &Name);
  /// Wraps an existing internal Function.
  explicit Func(Function F) : F(std::move(F)) {}

  const std::string &name() const { return F.name(); }
  bool defined() const { return F.hasPureDefinition(); }
  int dimensions() const { return F.dimensions(); }
  const Function &function() const { return F; }
  Function &function() { return F; }

  /// Calling/defining with coordinates. Any mix of Vars, Exprs, and
  /// integer literals, of any arity.
  FuncRef operator()(std::vector<Expr> Args) const;
  template <typename... ArgTs> FuncRef operator()(ArgTs &&...TheArgs) const {
    return (*this)(std::vector<Expr>{Expr(std::forward<ArgTs>(TheArgs))...});
  }

  //===--------------------------------------------------------------------===//
  // Domain order directives (paper section 3.2, "The Domain Order").
  //===--------------------------------------------------------------------===//

  /// Splits dimension \p Old into \p Outer * Factor + \p Inner.
  Func &split(const Var &Old, const Var &Outer, const Var &Inner,
              Expr Factor);
  /// Reorders dimensions; arguments are innermost-first (Halide convention).
  Func &reorder(const std::vector<Var> &Vars);
  template <typename... VarTs>
  Func &reorder(const Var &First, const Var &Second, const VarTs &...Rest) {
    return reorder(std::vector<Var>{First, Second, Rest...});
  }
  /// Marks a dimension for parallel execution on the task scheduler.
  Func &parallel(const Var &V);
  /// Marks a (constant-extent) dimension as a SIMD vector dimension.
  Func &vectorize(const Var &V);
  /// Splits by \p Factor and vectorizes the new inner dimension.
  Func &vectorize(const Var &V, int Factor);
  /// Marks a (constant-extent) dimension for complete unrolling.
  Func &unroll(const Var &V);
  /// Splits by \p Factor and unrolls the new inner dimension.
  Func &unroll(const Var &V, int Factor);
  /// Standard 2-D tiling: splits x and y and reorders to tile order.
  Func &tile(const TileSpec &Spec);
  /// Positional sugar for tile(TileSpec).
  Func &tile(const Var &X, const Var &Y, const Var &XOuter,
             const Var &YOuter, const Var &XInner, const Var &YInner,
             Expr XFactor, Expr YFactor) {
    return tile(TileSpec(X, Y)
                    .outer(XOuter, YOuter)
                    .inner(XInner, YInner)
                    .factors(std::move(XFactor), std::move(YFactor)));
  }
  /// Declares bounds for a dimension (the paper's bounds annotation).
  Func &bound(const Var &V, Expr Min, Expr Extent);

  /// Maps a dimension onto the simulated-GPU block / thread grid.
  Func &gpuBlocks(const Var &V);
  Func &gpuThreads(const Var &V);
  /// Tiles and maps the tiles onto the GPU grid in one step.
  Func &gpuTile(const TileSpec &Spec);
  /// Positional sugar for gpuTile(TileSpec).
  Func &gpuTile(const Var &X, const Var &Y, const Var &BX, const Var &BY,
                const Var &TX, const Var &TY, Expr XSize, Expr YSize) {
    return gpuTile(TileSpec(X, Y)
                       .outer(BX, BY)
                       .inner(TX, TY)
                       .factors(std::move(XSize), std::move(YSize)));
  }

  //===--------------------------------------------------------------------===//
  // Call schedule directives (paper section 3.2, "The Call Schedule").
  //===--------------------------------------------------------------------===//

  /// Computes this stage at the root level (breadth-first granularity).
  Func &computeRoot();
  /// Computes this stage inside loop \p V of consumer \p Consumer.
  Func &computeAt(const Func &Consumer, const Var &V);
  /// Inlines this stage into every consumer (the default).
  Func &computeInline();
  /// Stores this stage's buffer at the root level.
  Func &storeRoot();
  /// Stores this stage's buffer at loop \p V of consumer \p Consumer.
  Func &storeAt(const Func &Consumer, const Var &V);

  //===--------------------------------------------------------------------===//
  // Update-stage scheduling (limited: reduction dimensions stay serial;
  // pure dimensions of updates may be reordered/parallelized).
  //===--------------------------------------------------------------------===//

  /// Marks a pure dimension of update \p Idx parallel.
  Func &updateParallel(int Idx, const Var &V);
  /// Marks a pure dimension of update \p Idx vectorized (whole dimension).
  Func &updateVectorize(int Idx, const Var &V);

  //===--------------------------------------------------------------------===//
  // Value tracing (observe/TraceStream.h). The flags only take effect when
  // the pipeline is compiled with Target::withTrace(); they select which
  // stages InjectTracing instruments. With no per-stage flags set anywhere
  // in the pipeline, a traced target instruments every stage.
  //===--------------------------------------------------------------------===//

  /// Emits one trace event per load from this stage's buffer.
  Func &traceLoads();
  /// Emits one trace event per store to this stage's buffer.
  Func &traceStores();
  /// Emits begin/end trace events bracketing each realization of this
  /// stage's buffer, carrying its extents.
  Func &traceRealizations();

private:
  Function F;
};

} // namespace halide

#endif // HALIDE_LANG_FUNC_H
