//===-- lang/Pipeline.h - Compile-and-run entry point -----------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single entry point tying the front end to the compiler and back
/// ends: Pipeline::compile(Target) lowers the output Func with its current
/// schedules and hands it to the backend the Target names, caching the
/// result under a schedule+options fingerprint so an unchanged pipeline is
/// compiled once and run over many frames (paper section 4, Figure 5).
/// Pipeline::realize dispatches through that cache and resolves every
/// pipeline argument the caller did not bind explicitly from the Param<T>
/// / ImageParam registry; name->value ParamBindings remain the internal
/// ABI between Pipeline and the back ends.
///
/// The cache and registry are safe to use from many threads at once: the
/// cache is a shared_mutex-guarded map of per-entry once-compile latches
/// (a stampede of identical compiles does one lowering and one backend
/// compile while the rest wait, and a slow JIT of one pipeline never
/// serializes compiles of unrelated ones), and each realize snapshots the
/// Param registry once for a consistent per-frame view of its bindings.
/// realizeAsync queues a frame as an async job on the task scheduler and
/// returns a FrameFuture, which is what turns the library into a serving
/// runtime: many in-flight frames share the worker pool under per-request
/// priorities. Schedules must not be mutated while any frame of the
/// pipeline is in flight.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_LANG_PIPELINE_H
#define HALIDE_LANG_PIPELINE_H

#include "codegen/Executable.h"
#include "lang/Func.h"
#include "lang/Param.h"
#include "lang/Target.h"
#include "runtime/Runtime.h"
#include "runtime/TaskScheduler.h"
#include "runtime/Tracing.h"
#include "transforms/Lower.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace halide {

/// One formal argument of a compiled pipeline, as reported by
/// Pipeline::inferArguments: the output buffer, an input image, or a
/// scalar parameter.
struct Argument {
  enum class Kind : uint8_t { OutputBuffer, InputBuffer, Scalar };

  std::string Name;
  Kind ArgKind = Kind::Scalar;
  Type ArgType;
  int Dimensions = 0; ///< buffers only

  bool isBuffer() const { return ArgKind != Kind::Scalar; }
};

/// Process-wide compile-cache counters, exposed so tests and benchmarks
/// can assert compile-once-run-many behaviour.
struct CompileCounters {
  /// Full lowering runs (schedule synthesis through simplification).
  int64_t Lowerings = 0;
  /// Backend compilations that produce an artifact ahead of the first
  /// run: host C compiler invocations (JitC/GpuSim) and bytecode
  /// compiles (VmBytecode). The interpreter backend never counts.
  int64_t BackendCompiles = 0;
  /// compile() calls served entirely from the executable cache.
  int64_t CacheHits = 0;
};

/// Handle to one frame submitted with Pipeline::realizeAsync. Copyable;
/// default-constructed futures are invalid. Failures inside the frame
/// (unbound parameters, pipeline assertions) abort the process like a
/// synchronous realize would — the future carries no error channel
/// because this codebase has none (user_error aborts).
class FrameFuture {
public:
  FrameFuture() = default;

  bool valid() const { return Stats != nullptr; }
  /// True once the frame has been fully realized.
  bool done() const { return Job.done(); }
  /// Blocks until the frame completes (helping the scheduler run other
  /// queued work meanwhile) and returns the frame's ExecutionStats.
  ExecutionStats wait() const {
    Job.wait();
    return *Stats;
  }

private:
  friend class Pipeline;
  AsyncJob Job;
  std::shared_ptr<ExecutionStats> Stats;
};

/// A compile-once, run-many image processing pipeline.
class Pipeline {
public:
  explicit Pipeline(Func Output) : Output(std::move(Output)) {}

  Func &output() { return Output; }
  const Func &output() const { return Output; }

  /// Compiles for \p T (lowering with the Funcs' current schedules), or
  /// returns the cached artifact when an identical pipeline was already
  /// compiled. The artifact stays valid even if schedules change later.
  std::shared_ptr<const Executable> compile(const Target &T = Target());

  /// The lowered pipeline for \p T (cached by the same fingerprint).
  LoweredPipeline lowerPipeline(const Target &T = Target());

  /// The lowered statement pretty-printed (for inspection and tests).
  std::string loweredText(const Target &T = Target());

  /// The pipeline's formal arguments: output buffer first, then input
  /// images in name order, then scalar parameters in name order.
  std::vector<Argument> inferArguments(const Target &T = Target());

  /// Compiles (through the cache) and executes on \p T's backend, writing
  /// into \p Out (which also determines the requested output region).
  /// Arguments not bound in \p Params are resolved from Param<T> /
  /// ImageParam bound values; a missing or type-mismatched argument is a
  /// user_error naming it. Aborts (user_error) if the pipeline reports a
  /// nonzero exit code. Each call re-fingerprints the schedules (O(number
  /// of stages)) to detect schedule changes; frame loops that know the
  /// schedule is frozen can hold the compile() result and call run().
  ExecutionStats realize(RawBuffer Out,
                         const ParamBindings &Params = ParamBindings(),
                         const Target &T = Target());

  template <typename T>
  ExecutionStats realize(Buffer<T> &Out,
                         const ParamBindings &Params = ParamBindings(),
                         const Target &Tgt = Target()) {
    return realize(Out.raw(), Params, Tgt);
  }

  /// Allocates a W x H output buffer, realizes into it, and returns it.
  template <typename T>
  Buffer<T> realize2D(int W, int H, const ParamBindings &Params = ParamBindings(),
                      const Target &Tgt = Target()) {
    Buffer<T> Out(W, H);
    realize(Out.raw(), Params, Tgt);
    return Out;
  }

  /// Queues one frame on the task scheduler and returns immediately. The
  /// frame compiles (through the cache) and runs on whichever thread picks
  /// it up; higher \p Priority frames run first, ties in submission order.
  /// The Param registry is snapshotted here, at submission — later set()
  /// calls do not affect this frame. The caller must keep \p Out's
  /// allocation alive until the future reports done, must not realize two
  /// in-flight frames into the same buffer, and must not mutate the
  /// pipeline's schedules while frames are in flight.
  FrameFuture realizeAsync(RawBuffer Out,
                           const ParamBindings &Params = ParamBindings(),
                           const Target &T = Target(), int Priority = 0);

  template <typename T>
  FrameFuture realizeAsync(Buffer<T> &Out,
                           const ParamBindings &Params = ParamBindings(),
                           const Target &Tgt = Target(), int Priority = 0) {
    return realizeAsync(Out.raw(), Params, Tgt, Priority);
  }

  /// The cache key for the current schedules under \p T's feature flags:
  /// every stage's Schedule::str() (plus bounds and update-stage loop
  /// orders) concatenated with the Target's lowering options.
  std::string scheduleFingerprint(const Target &T = Target()) const;

  /// Process-wide compile-cache statistics, read atomically (tests and
  /// benchmarks assert on deltas; returned by value so callers get a
  /// consistent snapshot rather than a reference into mutating state).
  static CompileCounters compileCounters();
  /// Drops every cached lowered pipeline and executable (counters stay).
  /// Safe against in-flight compiles: they finish into their latch slots,
  /// which outstanding shared_ptrs keep alive.
  static void clearCompileCache();

private:
  std::shared_ptr<const LoweredPipeline>
  cachedLowered(const std::string &LowerKey, const Target &T);

  ExecutionStats realizeWithSnapshot(
      RawBuffer Out, const ParamBindings &Params,
      const std::map<std::string, ParamValue> &ParamSnapshot,
      const Target &T);

  Func Output;
};

} // namespace halide

#endif // HALIDE_LANG_PIPELINE_H
