//===-- lang/Pipeline.h - Compile-and-run entry point -----------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the front end to the compiler and back ends: a Pipeline wraps an
/// output Func, lowers it (with its current schedule), and executes it via
/// the reference interpreter or the JIT backend. The generated pipeline is
/// a single procedure taking the output buffer, input image buffers, and
/// scalar parameters — mirroring the paper's C-ABI entry point.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_LANG_PIPELINE_H
#define HALIDE_LANG_PIPELINE_H

#include "lang/Func.h"
#include "runtime/Runtime.h"
#include "runtime/Tracing.h"
#include "transforms/Lower.h"

#include <string>

namespace halide {

/// A compiled-on-demand image processing pipeline.
class Pipeline {
public:
  explicit Pipeline(Func Output) : Output(std::move(Output)) {}

  Func &output() { return Output; }
  const Func &output() const { return Output; }

  /// Lowers with the Funcs' current schedules.
  LoweredPipeline lowerPipeline(const LowerOptions &Opts = LowerOptions());

  /// The lowered statement pretty-printed (for inspection and tests).
  std::string loweredText(const LowerOptions &Opts = LowerOptions());

  /// Executes on the reference interpreter, writing into \p Out (which
  /// also determines the requested output region). Extra inputs and
  /// scalars come from \p Params.
  ExecutionStats realize(RawBuffer Out, ParamBindings Params = ParamBindings(),
                         const LowerOptions &Opts = LowerOptions());

  template <typename T>
  ExecutionStats realize(Buffer<T> &Out,
                         ParamBindings Params = ParamBindings(),
                         const LowerOptions &Opts = LowerOptions()) {
    return realize(Out.raw(), std::move(Params), Opts);
  }

  /// Allocates a W x H output buffer, realizes into it, and returns it.
  template <typename T>
  Buffer<T> realize2D(int W, int H, ParamBindings Params = ParamBindings()) {
    Buffer<T> Out(W, H);
    realize(Out.raw(), std::move(Params));
    return Out;
  }

private:
  Func Output;
};

} // namespace halide

#endif // HALIDE_LANG_PIPELINE_H
