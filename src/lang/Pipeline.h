//===-- lang/Pipeline.h - Compile-and-run entry point -----------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single entry point tying the front end to the compiler and back
/// ends: Pipeline::compile(Target) lowers the output Func with its current
/// schedules and hands it to the backend the Target names, caching the
/// result under a schedule+options fingerprint so an unchanged pipeline is
/// compiled once and run over many frames (paper section 4, Figure 5).
/// Pipeline::realize dispatches through that cache and resolves every
/// pipeline argument the caller did not bind explicitly from the Param<T>
/// / ImageParam registry; name->value ParamBindings remain the internal
/// ABI between Pipeline and the back ends.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_LANG_PIPELINE_H
#define HALIDE_LANG_PIPELINE_H

#include "codegen/Executable.h"
#include "lang/Func.h"
#include "lang/Param.h"
#include "lang/Target.h"
#include "runtime/Runtime.h"
#include "runtime/Tracing.h"
#include "transforms/Lower.h"

#include <memory>
#include <string>
#include <vector>

namespace halide {

/// One formal argument of a compiled pipeline, as reported by
/// Pipeline::inferArguments: the output buffer, an input image, or a
/// scalar parameter.
struct Argument {
  enum class Kind : uint8_t { OutputBuffer, InputBuffer, Scalar };

  std::string Name;
  Kind ArgKind = Kind::Scalar;
  Type ArgType;
  int Dimensions = 0; ///< buffers only

  bool isBuffer() const { return ArgKind != Kind::Scalar; }
};

/// Process-wide compile-cache counters, exposed so tests and benchmarks
/// can assert compile-once-run-many behaviour.
struct CompileCounters {
  /// Full lowering runs (schedule synthesis through simplification).
  int64_t Lowerings = 0;
  /// Backend compilations that produce an artifact ahead of the first
  /// run: host C compiler invocations (JitC/GpuSim) and bytecode
  /// compiles (VmBytecode). The interpreter backend never counts.
  int64_t BackendCompiles = 0;
  /// compile() calls served entirely from the executable cache.
  int64_t CacheHits = 0;
};

/// A compile-once, run-many image processing pipeline.
class Pipeline {
public:
  explicit Pipeline(Func Output) : Output(std::move(Output)) {}

  Func &output() { return Output; }
  const Func &output() const { return Output; }

  /// Compiles for \p T (lowering with the Funcs' current schedules), or
  /// returns the cached artifact when an identical pipeline was already
  /// compiled. The artifact stays valid even if schedules change later.
  std::shared_ptr<const Executable> compile(const Target &T = Target());

  /// The lowered pipeline for \p T (cached by the same fingerprint).
  LoweredPipeline lowerPipeline(const Target &T = Target());

  /// The lowered statement pretty-printed (for inspection and tests).
  std::string loweredText(const Target &T = Target());

  /// The pipeline's formal arguments: output buffer first, then input
  /// images in name order, then scalar parameters in name order.
  std::vector<Argument> inferArguments(const Target &T = Target());

  /// Compiles (through the cache) and executes on \p T's backend, writing
  /// into \p Out (which also determines the requested output region).
  /// Arguments not bound in \p Params are resolved from Param<T> /
  /// ImageParam bound values; a missing or type-mismatched argument is a
  /// user_error naming it. Aborts (user_error) if the pipeline reports a
  /// nonzero exit code. Each call re-fingerprints the schedules (O(number
  /// of stages)) to detect schedule changes; frame loops that know the
  /// schedule is frozen can hold the compile() result and call run().
  ExecutionStats realize(RawBuffer Out,
                         const ParamBindings &Params = ParamBindings(),
                         const Target &T = Target());

  template <typename T>
  ExecutionStats realize(Buffer<T> &Out,
                         const ParamBindings &Params = ParamBindings(),
                         const Target &Tgt = Target()) {
    return realize(Out.raw(), Params, Tgt);
  }

  /// Allocates a W x H output buffer, realizes into it, and returns it.
  template <typename T>
  Buffer<T> realize2D(int W, int H, const ParamBindings &Params = ParamBindings(),
                      const Target &Tgt = Target()) {
    Buffer<T> Out(W, H);
    realize(Out.raw(), Params, Tgt);
    return Out;
  }

  /// The cache key for the current schedules under \p T's feature flags:
  /// every stage's Schedule::str() (plus bounds and update-stage loop
  /// orders) concatenated with the Target's lowering options.
  std::string scheduleFingerprint(const Target &T = Target()) const;

  /// Process-wide compile-cache statistics (tests assert on deltas).
  static const CompileCounters &compileCounters();
  /// Drops every cached lowered pipeline and executable (counters stay).
  static void clearCompileCache();

private:
  const LoweredPipeline &cachedLowered(const std::string &LowerKey,
                                       const Target &T);

  Func Output;
};

} // namespace halide

#endif // HALIDE_LANG_PIPELINE_H
