//===-- lang/ImageParam.h - Pipeline inputs ---------------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime-bound pipeline inputs: ImageParam (the paper's UniformImage) for
/// input images, and Param<T> for scalar parameters. Both are bound to
/// concrete buffers/values when the pipeline is executed.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_LANG_IMAGEPARAM_H
#define HALIDE_LANG_IMAGEPARAM_H

#include "lang/Param.h"

#include <string>
#include <vector>

namespace halide {

/// An input image of a given element type and dimensionality. Loads from it
/// appear in the IR as Call nodes with CallType::Image; its extents appear
/// as scalar parameters named "<name>.extent.<d>" / "<name>.min.<d>".
class ImageParam {
public:
  ImageParam() = default;
  ImageParam(Type ElemType, int Dimensions, const std::string &Name = "");

  const std::string &name() const { return ParamName; }
  Type type() const { return ElemType; }
  int dimensions() const { return Dims; }
  bool defined() const { return !ParamName.empty(); }

  /// Loads a pixel. Coordinates are cast to Int(32).
  Expr operator()(Expr X) const;
  Expr operator()(Expr X, Expr Y) const;
  Expr operator()(Expr X, Expr Y, Expr Z) const;
  Expr operator()(std::vector<Expr> Args) const;

  /// Symbolic extent/min of dimension \p D, bound at execution.
  Expr extent(int D) const;
  Expr minCoord(int D) const;
  Expr width() const { return extent(0); }
  Expr height() const { return extent(1); }
  Expr channels() const { return extent(2); }

  /// Binds the input image subsequent realizations read. The buffer must
  /// match the declared element type and dimensionality (user_error).
  void set(const RawBuffer &B);
  template <typename T> void set(const Buffer<T> &B) { set(B.raw()); }
  /// Clears any bound image; realize() then requires an explicit binding.
  void reset();

private:
  std::string ParamName;
  Type ElemType;
  int Dims = 0;
};

} // namespace halide

#endif // HALIDE_LANG_IMAGEPARAM_H
