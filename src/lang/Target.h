//===-- lang/Target.h - Execution-target description ------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single description of *how* a pipeline is compiled and executed: the
/// backend (reference interpreter, the bytecode VM, the C-source JIT, or
/// the simulated-GPU device reached through the JIT) plus the feature flags
/// that used to live in LowerOptions. A Target is part of the compile-cache key, so two
/// realizations with the same schedules and the same Target share one
/// compiled artifact (paper section 4, Figure 5: compile once, run over
/// many frames).
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_LANG_TARGET_H
#define HALIDE_LANG_TARGET_H

#include <string>

namespace halide {

/// The execution engines a pipeline can be compiled for.
enum class Backend : uint8_t {
  /// The tree-walking reference interpreter (gathers ExecutionStats).
  Interpreter,
  /// Register-based bytecode compiled from the lowered IR and executed by
  /// a dispatch loop: interpreter semantics (bit-identical results, same
  /// ExecutionStats) at a fraction of the per-operation cost, with no
  /// host-compiler dependency. The differential suite's default engine.
  VmBytecode,
  /// CodeGenC -> host C compiler -> dlopen native execution.
  JitC,
  /// Native execution through JitC with kernel launches routed to the
  /// simulated GPU device; realize() reports the launch statistics.
  GpuSim,
};

const char *backendName(Backend B);

/// A complete execution-target description. Value-semantic; the default is
/// the reference interpreter with all optimizations enabled.
struct Target {
  Backend TargetBackend = Backend::Interpreter;

  // Feature flags that steer lowering (previously LowerOptions). They are
  // part of the lowering fingerprint: changing one recompiles.
  /// Skip the sliding window optimization (for ablation benchmarks).
  bool DisableSlidingWindow = false;
  /// Skip storage folding (for ablation benchmarks).
  bool DisableStorageFolding = false;

  /// Extra flags appended to the host C compiler command line (JitC/GpuSim
  /// backends only), e.g. "-O0" for compile-time-sensitive sweeps.
  std::string JitFlags;

  /// Worker-thread request for parallel loops: 0 inherits the task
  /// scheduler's pool size (runtime/TaskScheduler.h — HALIDE_NUM_THREADS
  /// or the hardware concurrency), 1 forces serial execution, N > 1 runs
  /// parallel loops threaded with chunking sized for N workers. Does not
  /// affect lowering — it is folded into the executable cache key only,
  /// never into the lowering fingerprint, so every thread count shares one
  /// lowered pipeline per schedule.
  int NumThreads = 0;

  /// Per-stage profiling (src/observe/Profiler.h): the executable is
  /// instrumented with stage enter/exit markers at backend-compile time.
  /// Like NumThreads this does not affect lowering — it is folded into
  /// the executable cache key only, never into the lowering fingerprint,
  /// so profile-on and profile-off targets share one lowered pipeline
  /// and an off-target run is bit-identical, marker-free code.
  bool Profile = false;

  /// Value-level tracing (src/observe/TraceStream.h): the executable is
  /// instrumented with per-value load/store/realization events at
  /// backend-compile time (transforms/InjectTracing.h). Like Profile this
  /// does not affect lowering — it is folded into the executable cache key
  /// only (together with the per-stage Func::traceLoads()-style flags), so
  /// trace-on and trace-off targets share one lowered pipeline and an
  /// off-target run is bit-identical, event-free code.
  bool Trace = false;

  Target() = default;
  explicit Target(Backend B) : TargetBackend(B) {}

  static Target interpreter() { return Target(Backend::Interpreter); }
  static Target vm() { return Target(Backend::VmBytecode); }
  static Target jit() { return Target(Backend::JitC); }
  static Target gpuSim() { return Target(Backend::GpuSim); }

  /// Fluent option setters (Targets are tiny; pass-by-value chaining).
  Target withJitFlags(std::string Flags) const {
    Target T = *this;
    T.JitFlags = std::move(Flags);
    return T;
  }
  Target withoutSlidingWindow() const {
    Target T = *this;
    T.DisableSlidingWindow = true;
    return T;
  }
  Target withoutStorageFolding() const {
    Target T = *this;
    T.DisableStorageFolding = true;
    return T;
  }
  Target withThreads(int Threads) const {
    Target T = *this;
    T.NumThreads = Threads;
    return T;
  }
  Target withProfile(bool Enable = true) const {
    Target T = *this;
    T.Profile = Enable;
    return T;
  }
  Target withTrace(bool Enable = true) const {
    Target T = *this;
    T.Trace = Enable;
    return T;
  }

  /// True when this target invokes the host C compiler (JitC and the
  /// GpuSim device path that rides on it).
  bool usesJit() const {
    return TargetBackend == Backend::JitC || TargetBackend == Backend::GpuSim;
  }
  /// True when compile() produces an artifact ahead of the first run (a
  /// bytecode program or a native shared object) rather than a thin
  /// tree-walking wrapper; these count as backend compiles in the cache
  /// counters.
  bool compilesAheadOfRun() const {
    return TargetBackend != Backend::Interpreter;
  }

  /// Canonical textual form, e.g. "jit_c-no_sliding_window". Used in logs
  /// and as part of compile-cache keys.
  std::string str() const;

  /// The lowering-relevant portion of str(): backend excluded, so the
  /// interpreter and JIT share one lowered pipeline per schedule.
  std::string lowerOptionsFingerprint() const;

  /// Parses the bench_runner --backend flag form: "interp"/"interpreter",
  /// "vm"/"vm_bytecode", "jit"/"jit_c", "gpu"/"gpu_sim", optionally followed by
  /// "-no_sliding_window"/"-no_storage_folding" features, a
  /// "-threads<N>" thread request, "-profile", and "-trace". JitFlags have no
  /// textual form here — str()'s " [flags]" suffix is display-only.
  /// Returns false (and leaves \p Out alone) on an unknown name.
  static bool parse(const std::string &Text, Target *Out);

  bool operator==(const Target &Other) const {
    return TargetBackend == Other.TargetBackend &&
           DisableSlidingWindow == Other.DisableSlidingWindow &&
           DisableStorageFolding == Other.DisableStorageFolding &&
           JitFlags == Other.JitFlags && NumThreads == Other.NumThreads &&
           Profile == Other.Profile && Trace == Other.Trace;
  }
  bool operator!=(const Target &Other) const { return !(*this == Other); }
};

} // namespace halide

#endif // HALIDE_LANG_TARGET_H
