//===-- lang/RDom.cpp ---------------------------------------------------------=//

#include "lang/RDom.h"
#include "ir/IROperators.h"
#include "support/Util.h"

#include <map>

using namespace halide;

namespace {

/// Registry of all reduction variables ever created, so update definitions
/// can recover the iteration bounds of the RVars they mention. Entries are
/// tiny (name + two Exprs) and RDoms are few, so the registry is append-only.
std::map<std::string, ReductionVariable> &rvarRegistry() {
  static std::map<std::string, ReductionVariable> Table;
  return Table;
}

/// Returns a reduction-domain base name not used before.
std::string uniqueRDomBase(const std::string &Requested) {
  std::string Base =
      Requested.empty() ? uniqueName("r") : Requested;
  while (rvarRegistry().count(Base + "$x"))
    Base = uniqueName(Base + "_");
  return Base;
}

void registerRVar(const ReductionVariable &RV) {
  rvarRegistry()[RV.Name] = RV;
}

} // namespace

const ReductionVariable *halide::lookupReductionVariable(
    const std::string &Name) {
  auto It = rvarRegistry().find(Name);
  return It == rvarRegistry().end() ? nullptr : &It->second;
}

RVar::operator Expr() const {
  internal_assert(!VarName.empty()) << "use of undefined RVar";
  return Variable::make(Int(32), VarName);
}

RDom::RDom(Expr Min, Expr Extent, const std::string &Name) {
  std::string Base = uniqueRDomBase(Name);
  Dims.push_back({Base + "$x", cast(Int(32), Min), cast(Int(32), Extent)});
  registerRVar(Dims.back());
  initAccessors();
}

RDom::RDom(Expr MinX, Expr ExtentX, Expr MinY, Expr ExtentY,
           const std::string &Name) {
  std::string Base = uniqueRDomBase(Name);
  Dims.push_back({Base + "$x", cast(Int(32), MinX), cast(Int(32), ExtentX)});
  Dims.push_back({Base + "$y", cast(Int(32), MinY), cast(Int(32), ExtentY)});
  registerRVar(Dims[0]);
  registerRVar(Dims[1]);
  initAccessors();
}

RDom::RDom(const std::vector<ReductionVariable> &InitDims) : Dims(InitDims) {
  for (const ReductionVariable &RV : Dims)
    registerRVar(RV);
  initAccessors();
}

void RDom::initAccessors() {
  if (Dims.size() > 0)
    x = RVar(Dims[0].Name);
  if (Dims.size() > 1)
    y = RVar(Dims[1].Name);
  if (Dims.size() > 2)
    z = RVar(Dims[2].Name);
  if (Dims.size() > 3)
    w = RVar(Dims[3].Name);
}

RDom::operator Expr() const {
  internal_assert(Dims.size() == 1)
      << "only 1-D RDoms convert implicitly to Expr";
  return Variable::make(Int(32), Dims[0].Name);
}

RDom::operator RVar() const {
  internal_assert(Dims.size() == 1)
      << "only 1-D RDoms convert implicitly to RVar";
  return x;
}
