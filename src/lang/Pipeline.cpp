//===-- lang/Pipeline.cpp -------------------------------------------------===//

#include "lang/Pipeline.h"

#include "analysis/CallGraph.h"
#include "ir/IRPrinter.h"

#include <map>
#include <sstream>

using namespace halide;

namespace {

/// The process-wide compile cache. Lowered pipelines are keyed by the
/// schedule fingerprint alone (both backends share one lowering);
/// executables additionally key on the backend and its flags. Sized for
/// the autotuner's working set; wholesale eviction keeps the bookkeeping
/// trivial and outstanding shared_ptrs keep in-use artifacts alive.
constexpr size_t MaxCacheEntries = 256;

struct CompileCache {
  std::map<std::string, LoweredPipeline> Lowered;
  std::map<std::string, std::shared_ptr<const Executable>> Executables;
  CompileCounters Counters;
};

CompileCache &cache() {
  static CompileCache C;
  return C;
}

void appendDims(std::ostringstream &OS, const std::vector<Dim> &Dims) {
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I)
      OS << ",";
    OS << Dims[I].Var << ":" << forTypeName(Dims[I].Kind);
  }
}

} // namespace

std::string Pipeline::scheduleFingerprint(const Target &T) const {
  std::map<std::string, Function> Env = buildEnvironment(Output.function());
  std::ostringstream OS;
  OS << Output.name();
  for (const auto &[Name, F] : Env) {
    const Schedule &S = F.schedule();
    // Name#id: names are unique only among live functions, so the
    // process-unique id keeps a dead stage's cache entries from aliasing
    // a new stage that reused its name with a different definition.
    OS << "|" << Name << "#" << F.id() << "{" << S.str();
    for (const BoundConstraint &B : S.Bounds)
      OS << " bound(" << B.Var << "," << exprToString(B.Min) << ","
         << exprToString(B.Extent) << ")";
    for (const UpdateDefinition &U : F.updates()) {
      OS << " update(";
      appendDims(OS, U.Dims);
      OS << ")";
    }
    OS << "}";
  }
  OS << "@" << T.lowerOptionsFingerprint();
  return OS.str();
}

/// The lowered pipeline for \p LowerKey, lowering (and counting) on miss.
const LoweredPipeline &Pipeline::cachedLowered(const std::string &LowerKey,
                                               const Target &T) {
  CompileCache &C = cache();
  auto LIt = C.Lowered.find(LowerKey);
  if (LIt == C.Lowered.end()) {
    ++C.Counters.Lowerings;
    if (C.Lowered.size() >= MaxCacheEntries)
      C.Lowered.clear();
    LIt = C.Lowered.emplace(LowerKey, lower(Output.function(), T)).first;
  }
  return LIt->second;
}

std::shared_ptr<const Executable> Pipeline::compile(const Target &T) {
  CompileCache &C = cache();
  std::string LowerKey = scheduleFingerprint(T);
  // The thread request belongs in the executable key only: it never
  // changes lowering, so every thread count shares one lowered pipeline,
  // but the executable carries its Target (the VM's dispatch consults
  // NumThreads at run time), so targets differing in threads must not
  // alias one cached artifact.
  std::string ExecKey = LowerKey + "##" + backendName(T.TargetBackend) +
                        "#" + T.JitFlags + "#t" +
                        std::to_string(T.NumThreads);

  auto EIt = C.Executables.find(ExecKey);
  if (EIt != C.Executables.end()) {
    ++C.Counters.CacheHits;
    return EIt->second;
  }

  const LoweredPipeline &LP = cachedLowered(LowerKey, T);
  if (T.compilesAheadOfRun())
    ++C.Counters.BackendCompiles;
  std::shared_ptr<const Executable> Exe = makeExecutable(LP, T);
  if (C.Executables.size() >= MaxCacheEntries)
    C.Executables.clear();
  C.Executables[ExecKey] = Exe;
  return Exe;
}

LoweredPipeline Pipeline::lowerPipeline(const Target &T) {
  return cachedLowered(scheduleFingerprint(T), T);
}

std::string Pipeline::loweredText(const Target &T) {
  return stmtToString(lowerPipeline(T).Body);
}

std::vector<Argument> Pipeline::inferArguments(const Target &T) {
  LoweredPipeline LP = lowerPipeline(T);
  std::vector<Argument> Args;
  for (const BufferArg &B : LP.Buffers) {
    Argument A;
    A.Name = B.Name;
    A.ArgKind =
        B.IsOutput ? Argument::Kind::OutputBuffer : Argument::Kind::InputBuffer;
    A.ArgType = B.ElemType;
    A.Dimensions = B.Dimensions;
    Args.push_back(std::move(A));
  }
  for (const ScalarArg &S : LP.Scalars) {
    Argument A;
    A.Name = S.Name;
    A.ArgKind = Argument::Kind::Scalar;
    A.ArgType = S.ArgType;
    Args.push_back(std::move(A));
  }
  return Args;
}

namespace {

/// Completes \p Full against the pipeline's signature: every buffer and
/// scalar the caller did not bind explicitly is resolved from the
/// Param<T>/ImageParam registry, with clear user_errors naming the
/// argument on the unbound and type-mismatch paths.
void bindInferredArguments(const LoweredPipeline &LP, ParamBindings *Full) {
  for (const BufferArg &Arg : LP.Buffers) {
    if (!Full->hasBuffer(Arg.Name)) {
      user_assert(!Arg.IsOutput)
          << "output buffer '" << Arg.Name << "' is unbound";
      const ParamValue *PV = findParam(Arg.Name);
      user_assert(PV && PV->HasValue)
          << "input image '" << Arg.Name
          << "' is unbound: call ImageParam::set(buffer) before realize, "
             "or bind it explicitly in the ParamBindings";
      Full->bind(Arg.Name, PV->Image);
    }
    const RawBuffer &B = Full->buffer(Arg.Name);
    user_assert(B.ElemType == Arg.ElemType)
        << (Arg.IsOutput ? "output" : "input") << " buffer '" << Arg.Name
        << "' has element type " << B.ElemType.str()
        << " but the pipeline expects " << Arg.ElemType.str();
    user_assert(B.Dimensions == Arg.Dimensions)
        << (Arg.IsOutput ? "output" : "input") << " buffer '" << Arg.Name
        << "' is " << B.Dimensions << "-dimensional but the pipeline expects "
        << Arg.Dimensions << " dimensions";
  }
  for (const ScalarArg &Arg : LP.Scalars) {
    double Ignored;
    if (Full->lookupScalar(Arg.Name, &Ignored))
      continue; // bound explicitly
    const ParamValue *PV = findParam(Arg.Name);
    user_assert(PV)
        << "scalar parameter '" << Arg.Name
        << "' is unbound: no Param with that name exists; construct a "
           "Param and set() it, or bind the value explicitly";
    user_assert(!PV->IsImage)
        << "parameter '" << Arg.Name
        << "' is an ImageParam but the pipeline expects a scalar";
    user_assert(PV->DeclaredType == Arg.ArgType)
        << "scalar parameter '" << Arg.Name << "' is declared "
        << PV->DeclaredType.str() << " but the pipeline expects "
        << Arg.ArgType.str();
    user_assert(PV->HasValue) << "scalar parameter '" << Arg.Name
                              << "' is unbound: call set() before realize";
    if (Arg.ArgType.isFloat())
      Full->bindFloat(Arg.Name, PV->FloatValue);
    else
      Full->bindInt(Arg.Name, PV->IntValue);
  }
}

} // namespace

ExecutionStats Pipeline::realize(RawBuffer Out, const ParamBindings &Params,
                                 const Target &T) {
  user_assert(Out.defined()) << "realize into an undefined buffer";
  std::shared_ptr<const Executable> Exe = compile(T);
  const LoweredPipeline &LP = Exe->pipeline();

  ParamBindings Full = Params;
  Full.bind(LP.Name, Out);
  bindInferredArguments(LP, &Full);

  ExecutionStats Stats;
  int Rc = Exe->run(Full, &Stats);
  user_assert(Rc == 0) << "pipeline " << LP.Name << " on target " << T.str()
                       << " failed with exit code " << Rc;
  return Stats;
}

const CompileCounters &Pipeline::compileCounters() {
  return cache().Counters;
}

void Pipeline::clearCompileCache() {
  cache().Lowered.clear();
  cache().Executables.clear();
}
