//===-- lang/Pipeline.cpp -------------------------------------------------===//

#include "lang/Pipeline.h"

#include "analysis/CallGraph.h"
#include "ir/IRPrinter.h"
#include "observe/MetricsRegistry.h"
#include "observe/TraceRecorder.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <sstream>

using namespace halide;

namespace {

/// The process-wide compile cache. Lowered pipelines are keyed by the
/// schedule fingerprint alone (both backends share one lowering);
/// executables additionally key on the backend and its flags. Sized for
/// the autotuner's working set; wholesale eviction keeps the bookkeeping
/// trivial and outstanding shared_ptrs keep in-use artifacts alive.
constexpr size_t MaxCacheEntries = 256;

/// A once-compile latch: the thread that inserts the slot produces the
/// value OUTSIDE the cache lock, then flips Ready; concurrent requests
/// for the same key wait on the slot instead of compiling again, and
/// compiles of different keys never wait on each other — a slow JIT of
/// one pipeline cannot serialize unrelated pipelines. Waiters hold the
/// slot by shared_ptr, so wholesale eviction during a pending compile
/// orphans the slot harmlessly rather than dangling it.
template <typename ValueT> struct CacheSlot {
  std::mutex M;
  std::condition_variable CV;
  bool Ready = false;
  ValueT Value{};

  void publish(ValueT V) {
    {
      std::lock_guard<std::mutex> Lock(M);
      Value = std::move(V);
      Ready = true;
    }
    CV.notify_all();
  }
  ValueT await() {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Ready; });
    return Value;
  }
};

using LowerSlot = CacheSlot<std::shared_ptr<const LoweredPipeline>>;
using ExecSlot = CacheSlot<std::shared_ptr<const Executable>>;

struct CompileCache {
  /// Guards the two maps. Counters are atomics so the hot path (a cache
  /// hit) needs only this in shared mode.
  std::shared_mutex Mutex;
  std::map<std::string, std::shared_ptr<LowerSlot>> Lowered;
  std::map<std::string, std::shared_ptr<ExecSlot>> Executables;
  std::atomic<int64_t> Lowerings{0};
  std::atomic<int64_t> BackendCompiles{0};
  std::atomic<int64_t> CacheHits{0};
};

CompileCache &cache() {
  static CompileCache C;
  return C;
}

/// Serializes lowering itself. Lowering touches process-wide state that
/// is individually locked but must be mutually consistent across a whole
/// lowering (the Function registry, unique-name counters, shared IR
/// construction), so two lowerings never interleave. Backend compiles
/// (the cc subprocess, bytecode emission) happen outside this lock and do
/// run concurrently.
std::mutex &loweringMutex() {
  static std::mutex M;
  return M;
}

/// Looks up Key's slot under a shared lock; on miss, inserts a fresh slot
/// under an exclusive lock (evicting wholesale at capacity). Returns the
/// slot and whether this caller created it (and so must fill it).
template <typename SlotT>
std::shared_ptr<SlotT>
lookupOrCreateSlot(std::map<std::string, std::shared_ptr<SlotT>> &Map,
                   const std::string &Key, bool *Created) {
  CompileCache &C = cache();
  {
    std::shared_lock<std::shared_mutex> Lock(C.Mutex);
    auto It = Map.find(Key);
    if (It != Map.end()) {
      *Created = false;
      return It->second;
    }
  }
  std::unique_lock<std::shared_mutex> Lock(C.Mutex);
  auto It = Map.find(Key);
  if (It != Map.end()) {
    *Created = false;
    return It->second;
  }
  if (Map.size() >= MaxCacheEntries)
    Map.clear();
  auto Slot = std::make_shared<SlotT>();
  Map.emplace(Key, Slot);
  *Created = true;
  return Slot;
}

void appendDims(std::ostringstream &OS, const std::vector<Dim> &Dims) {
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I)
      OS << ",";
    OS << Dims[I].Var << ":" << forTypeName(Dims[I].Kind);
  }
}

} // namespace

std::string Pipeline::scheduleFingerprint(const Target &T) const {
  std::map<std::string, Function> Env = buildEnvironment(Output.function());
  std::ostringstream OS;
  OS << Output.name();
  for (const auto &[Name, F] : Env) {
    const Schedule &S = F.schedule();
    // Name#id: names are unique only among live functions, so the
    // process-unique id keeps a dead stage's cache entries from aliasing
    // a new stage that reused its name with a different definition.
    OS << "|" << Name << "#" << F.id() << "{" << S.str();
    for (const BoundConstraint &B : S.Bounds)
      OS << " bound(" << B.Var << "," << exprToString(B.Min) << ","
         << exprToString(B.Extent) << ")";
    for (const UpdateDefinition &U : F.updates()) {
      OS << " update(";
      appendDims(OS, U.Dims);
      OS << ")";
    }
    OS << "}";
  }
  OS << "@" << T.lowerOptionsFingerprint();
  return OS.str();
}

/// The lowered pipeline for \p LowerKey, lowering (and counting) on miss.
/// A stampede of identical keys does exactly one lowering; the rest block
/// on the slot's latch until it is published.
std::shared_ptr<const LoweredPipeline>
Pipeline::cachedLowered(const std::string &LowerKey, const Target &T) {
  CompileCache &C = cache();
  bool Created = false;
  std::shared_ptr<LowerSlot> Slot =
      lookupOrCreateSlot(C.Lowered, LowerKey, &Created);
  if (!Created)
    return Slot->await();
  C.Lowerings.fetch_add(1);
  int64_t TraceT0 = traceActive() ? traceNowNs() : 0;
  std::shared_ptr<const LoweredPipeline> LP;
  {
    std::lock_guard<std::mutex> Lock(loweringMutex());
    LP = std::make_shared<const LoweredPipeline>(lower(Output.function(), T));
  }
  if (TraceT0)
    traceComplete("compile", "lower " + Output.name(), TraceT0,
                  traceNowNs() - TraceT0);
  Slot->publish(LP);
  return LP;
}

std::shared_ptr<const Executable> Pipeline::compile(const Target &T) {
  CompileCache &C = cache();
  std::string LowerKey = scheduleFingerprint(T);
  // The thread request belongs in the executable key only: it never
  // changes lowering, so every thread count shares one lowered pipeline,
  // but the executable carries its Target (the VM's dispatch consults
  // NumThreads at run time), so targets differing in threads must not
  // alias one cached artifact.
  // Profile follows the same rule (see Target::Profile): instrumentation
  // happens in makeExecutable on a copy of the shared lowering, so only
  // the executable key carries the bit. Trace likewise, except its key
  // component also folds in every stage's per-Func trace flags — they
  // select which accesses InjectTracing instruments, so flipping a flag
  // must not alias a differently instrumented cached executable.
  std::string TraceKey;
  if (T.Trace) {
    TraceKey = "#trace";
    for (const auto &[Name, F] : buildEnvironment(Output.function()))
      if (F.traceLoads() || F.traceStores() || F.traceRealizations())
        TraceKey += "," + Name + ":" + (F.traceLoads() ? "l" : "") +
                    (F.traceStores() ? "s" : "") +
                    (F.traceRealizations() ? "r" : "");
  }
  std::string ExecKey = LowerKey + "##" + backendName(T.TargetBackend) +
                        "#" + T.JitFlags + "#t" +
                        std::to_string(T.NumThreads) +
                        (T.Profile ? "#profile" : "") + TraceKey;

  bool Created = false;
  std::shared_ptr<ExecSlot> Slot =
      lookupOrCreateSlot(C.Executables, ExecKey, &Created);
  if (!Created) {
    C.CacheHits.fetch_add(1);
    if (traceActive())
      traceInstant("compile", "cache_hit " + Output.name());
    return Slot->await();
  }

  std::shared_ptr<const LoweredPipeline> LP = cachedLowered(LowerKey, T);
  if (T.compilesAheadOfRun())
    C.BackendCompiles.fetch_add(1);
  int64_t TraceT0 = traceActive() ? traceNowNs() : 0;
  std::shared_ptr<const Executable> Exe = makeExecutable(*LP, T);
  if (TraceT0)
    traceComplete("compile",
                  "backend_compile " + Output.name() + " (" +
                      backendName(T.TargetBackend) + ")",
                  TraceT0, traceNowNs() - TraceT0);
  Slot->publish(Exe);
  return Exe;
}

LoweredPipeline Pipeline::lowerPipeline(const Target &T) {
  return *cachedLowered(scheduleFingerprint(T), T);
}

std::string Pipeline::loweredText(const Target &T) {
  return stmtToString(lowerPipeline(T).Body);
}

std::vector<Argument> Pipeline::inferArguments(const Target &T) {
  LoweredPipeline LP = lowerPipeline(T);
  std::vector<Argument> Args;
  for (const BufferArg &B : LP.Buffers) {
    Argument A;
    A.Name = B.Name;
    A.ArgKind =
        B.IsOutput ? Argument::Kind::OutputBuffer : Argument::Kind::InputBuffer;
    A.ArgType = B.ElemType;
    A.Dimensions = B.Dimensions;
    Args.push_back(std::move(A));
  }
  for (const ScalarArg &S : LP.Scalars) {
    Argument A;
    A.Name = S.Name;
    A.ArgKind = Argument::Kind::Scalar;
    A.ArgType = S.ArgType;
    Args.push_back(std::move(A));
  }
  return Args;
}

namespace {

/// Completes \p Full against the pipeline's signature: every buffer and
/// scalar the caller did not bind explicitly is resolved from \p Snap, a
/// registry snapshot taken once per frame (so one frame never sees a
/// half-updated registry when another thread is rebinding Params), with
/// clear user_errors naming the argument on the unbound and type-mismatch
/// paths.
void bindInferredArguments(const LoweredPipeline &LP,
                           const std::map<std::string, ParamValue> &Snap,
                           ParamBindings *Full) {
  auto lookup = [&Snap](const std::string &Name) -> const ParamValue * {
    auto It = Snap.find(Name);
    return It == Snap.end() ? nullptr : &It->second;
  };
  for (const BufferArg &Arg : LP.Buffers) {
    if (!Full->hasBuffer(Arg.Name)) {
      user_assert(!Arg.IsOutput)
          << "output buffer '" << Arg.Name << "' is unbound";
      const ParamValue *PV = lookup(Arg.Name);
      user_assert(PV && PV->HasValue)
          << "input image '" << Arg.Name
          << "' is unbound: call ImageParam::set(buffer) before realize, "
             "or bind it explicitly in the ParamBindings";
      Full->bind(Arg.Name, PV->Image);
    }
    const RawBuffer &B = Full->buffer(Arg.Name);
    user_assert(B.ElemType == Arg.ElemType)
        << (Arg.IsOutput ? "output" : "input") << " buffer '" << Arg.Name
        << "' has element type " << B.ElemType.str()
        << " but the pipeline expects " << Arg.ElemType.str();
    user_assert(B.Dimensions == Arg.Dimensions)
        << (Arg.IsOutput ? "output" : "input") << " buffer '" << Arg.Name
        << "' is " << B.Dimensions << "-dimensional but the pipeline expects "
        << Arg.Dimensions << " dimensions";
  }
  for (const ScalarArg &Arg : LP.Scalars) {
    double Ignored;
    if (Full->lookupScalar(Arg.Name, &Ignored))
      continue; // bound explicitly
    const ParamValue *PV = lookup(Arg.Name);
    user_assert(PV)
        << "scalar parameter '" << Arg.Name
        << "' is unbound: no Param with that name exists; construct a "
           "Param and set() it, or bind the value explicitly";
    user_assert(!PV->IsImage)
        << "parameter '" << Arg.Name
        << "' is an ImageParam but the pipeline expects a scalar";
    user_assert(PV->DeclaredType == Arg.ArgType)
        << "scalar parameter '" << Arg.Name << "' is declared "
        << PV->DeclaredType.str() << " but the pipeline expects "
        << Arg.ArgType.str();
    user_assert(PV->HasValue) << "scalar parameter '" << Arg.Name
                              << "' is unbound: call set() before realize";
    if (Arg.ArgType.isFloat())
      Full->bindFloat(Arg.Name, PV->FloatValue);
    else
      Full->bindInt(Arg.Name, PV->IntValue);
  }
}

} // namespace

ExecutionStats Pipeline::realizeWithSnapshot(
    RawBuffer Out, const ParamBindings &Params,
    const std::map<std::string, ParamValue> &ParamSnapshot, const Target &T) {
  user_assert(Out.defined()) << "realize into an undefined buffer";
  std::shared_ptr<const Executable> Exe = compile(T);
  const LoweredPipeline &LP = Exe->pipeline();

  ParamBindings Full = Params;
  Full.bind(LP.Name, Out);
  bindInferredArguments(LP, ParamSnapshot, &Full);

  ExecutionStats Stats;
  int Rc = Exe->run(Full, &Stats);
  user_assert(Rc == 0) << "pipeline " << LP.Name << " on target " << T.str()
                       << " failed with exit code " << Rc;
  return Stats;
}

ExecutionStats Pipeline::realize(RawBuffer Out, const ParamBindings &Params,
                                 const Target &T) {
  return realizeWithSnapshot(Out, Params, snapshotParams(), T);
}

FrameFuture Pipeline::realizeAsync(RawBuffer Out, const ParamBindings &Params,
                                   const Target &T, int Priority) {
  user_assert(Out.defined()) << "realizeAsync into an undefined buffer";
  FrameFuture Future;
  Future.Stats = std::make_shared<ExecutionStats>();
  // Snapshot the Param registry NOW: the frame sees the bindings as of
  // submission no matter when a worker gets to it.
  auto Snap = std::make_shared<std::map<std::string, ParamValue>>(
      snapshotParams());
  // The closure holds its own Func handle (a cheap intrusive-ptr copy), so
  // the frame stays valid even if this Pipeline object dies first.
  Func OutputCopy = Output;
  std::shared_ptr<ExecutionStats> Stats = Future.Stats;
  int64_t FrameSeq = metricsNoteFrameSubmitted();
  int64_t SubmitNs = traceActive() ? traceNowNs() : 0;
  Future.Job = submitAsyncJob(
      [OutputCopy, Out, Params, T, Snap, Stats, FrameSeq, SubmitNs,
       Priority]() mutable {
        // Split the frame's life into queue-wait (submission to pickup)
        // and execute spans so serving traces show where latency lives.
        int64_t StartNs = SubmitNs && traceActive() ? traceNowNs() : 0;
        Pipeline P(OutputCopy);
        *Stats = P.realizeWithSnapshot(Out, Params, *Snap, T);
        if (StartNs) {
          std::string Frame =
              OutputCopy.name() + " frame " + std::to_string(FrameSeq);
          std::vector<TraceArg> Args;
          Args.emplace_back("frame", FrameSeq);
          Args.emplace_back("priority", (int64_t)Priority);
          traceComplete("serve", Frame + " queue_wait", SubmitNs,
                        StartNs - SubmitNs, Args);
          traceComplete("serve", Frame + " execute", StartNs,
                        traceNowNs() - StartNs, Args);
        }
        metricsNoteFrameCompleted();
      },
      Priority);
  return Future;
}

CompileCounters Pipeline::compileCounters() {
  CompileCache &C = cache();
  CompileCounters Counters;
  Counters.Lowerings = C.Lowerings.load();
  Counters.BackendCompiles = C.BackendCompiles.load();
  Counters.CacheHits = C.CacheHits.load();
  return Counters;
}

void Pipeline::clearCompileCache() {
  CompileCache &C = cache();
  std::unique_lock<std::shared_mutex> Lock(C.Mutex);
  cache().Lowered.clear();
  cache().Executables.clear();
}
