//===-- lang/Pipeline.cpp --------------------------------------------------------=//

#include "lang/Pipeline.h"
#include "codegen/Interpreter.h"
#include "ir/IRPrinter.h"

using namespace halide;

LoweredPipeline Pipeline::lowerPipeline(const LowerOptions &Opts) {
  return lower(Output.function(), Opts);
}

std::string Pipeline::loweredText(const LowerOptions &Opts) {
  return stmtToString(lowerPipeline(Opts).Body);
}

ExecutionStats Pipeline::realize(RawBuffer Out, ParamBindings Params,
                                 const LowerOptions &Opts) {
  user_assert(Out.defined()) << "realize into an undefined buffer";
  LoweredPipeline P = lowerPipeline(Opts);
  Params.bind(P.Name, Out);
  return interpret(P, Params);
}
