//===-- lang/Param.h - Typed scalar runtime parameters ----------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed scalar runtime parameters (the paper's uniforms) with bound
/// values: a Param<T> both appears symbolically in pipeline definitions
/// and carries the concrete value the next realize() will use, so call
/// sites no longer hand-build name->value ParamBindings (those remain the
/// internal ABI between Pipeline and the back ends). Values live in a
/// process-wide registry keyed by the parameter's unique name, mirroring
/// how Function resolves Call names; Pipeline::realize consults it for
/// every argument the caller did not bind explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_LANG_PARAM_H
#define HALIDE_LANG_PARAM_H

#include "ir/IROperators.h"
#include "runtime/Buffer.h"

#include <map>
#include <string>

namespace halide {

/// One registered runtime parameter: its declaration (from constructing a
/// Param<T> or ImageParam) and, once set, its current value.
struct ParamValue {
  Type DeclaredType;
  bool IsImage = false;
  int Dimensions = 0; ///< image params only
  bool HasValue = false;
  int64_t IntValue = 0;    ///< scalar, integer types
  double FloatValue = 0;   ///< scalar, float types
  RawBuffer Image;         ///< image params (shares the caller's storage)
};

/// Declares (or re-declares) a parameter in the process-wide registry.
/// Re-declaring an existing name resets any bound value.
void declareParam(const std::string &Name, Type DeclaredType, bool IsImage,
                  int Dimensions);

/// Binds a scalar value. \p DeclaredType must match the declaration.
void setParamValue(const std::string &Name, Type DeclaredType,
                   int64_t IntValue, double FloatValue);

/// Binds an image. Type/dimension checks happen at the ImageParam wrapper.
void setParamImage(const std::string &Name, const RawBuffer &Image);

/// Clears a bound value but keeps the declaration.
void clearParamValue(const std::string &Name);

/// Copies a declared parameter's current state into \p Out under the
/// registry lock; false if the name was never declared. All registry
/// accessors are thread-safe — set() during an in-flight realize() is
/// well-defined (the frame sees either the old or the new value, decided
/// by its per-realize snapshot, never a torn mix).
bool getParamValue(const std::string &Name, ParamValue *Out);

/// One consistent copy of the whole registry, taken under the lock.
/// Pipeline::realize resolves every unbound argument from a single
/// snapshot so a frame observes one coherent generation of bindings even
/// while other threads keep calling set().
std::map<std::string, ParamValue> snapshotParams();

/// A scalar runtime parameter (the paper's uniforms). Symbolic in
/// definitions; set() binds the value used by subsequent realizations.
template <typename T> class Param {
public:
  Param() : ParamName(uniqueName("p")) { declare(); }
  explicit Param(const std::string &Name) : ParamName(Name) { declare(); }
  /// Declares and immediately binds \p Initial.
  Param(const std::string &Name, T Initial) : ParamName(Name) {
    declare();
    set(Initial);
  }

  const std::string &name() const { return ParamName; }
  Type type() const { return typeOf<T>(); }

  /// Binds the value subsequent realizations observe.
  void set(T Value) {
    setParamValue(ParamName, type(), int64_t(Value), double(Value));
  }
  /// Returns the bound value; aborts (user_error) if unbound.
  T get() const;

  operator Expr() const {
    return Variable::make(typeOf<T>(), ParamName, /*IsParam=*/true);
  }

private:
  void declare() { declareParam(ParamName, type(), /*IsImage=*/false, 0); }

  std::string ParamName;
};

template <typename T> T Param<T>::get() const {
  ParamValue PV;
  user_assert(getParamValue(ParamName, &PV) && PV.HasValue)
      << "Param " << ParamName << " read before set()";
  return type().isFloat() ? T(PV.FloatValue) : T(PV.IntValue);
}

} // namespace halide

#endif // HALIDE_LANG_PARAM_H
