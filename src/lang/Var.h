//===-- lang/Var.h - Named pure dimensions ----------------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Var names a dimension of a Func's infinite integer domain (paper
/// section 2). Vars convert implicitly to Int(32) Variable expressions.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_LANG_VAR_H
#define HALIDE_LANG_VAR_H

#include "ir/Expr.h"

#include <string>

namespace halide {

/// A named pure dimension. Two Vars with the same name are the same
/// dimension.
class Var {
public:
  /// Creates a Var with a fresh unique name.
  Var();
  /// Creates a Var with the given name.
  explicit Var(const std::string &Name) : VarName(Name) {}

  const std::string &name() const { return VarName; }

  bool sameAs(const Var &Other) const { return VarName == Other.VarName; }

  /// Converts to an Int(32) Variable expression for use in definitions.
  operator Expr() const;

private:
  std::string VarName;
};

} // namespace halide

#endif // HALIDE_LANG_VAR_H
