//===-- lang/Function.h - Internal function representation ------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler-internal representation of one pipeline stage: a pure
/// definition (value at every point of an infinite integer domain, paper
/// section 2), optional update definitions recursing over reduction
/// domains, and the stage's Schedule. Func (lang/Func.h) is the user-facing
/// handle around this.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_LANG_FUNCTION_H
#define HALIDE_LANG_FUNCTION_H

#include "lang/RDom.h"
#include "schedule/Schedule.h"
#include "support/Util.h"

#include <string>
#include <vector>

namespace halide {

/// One update definition: Name(Args...) = Value, iterated over the RDom
/// dimensions in lexicographic order. Args may be arbitrary integer
/// expressions of free pure variables and RVars (scatters).
struct UpdateDefinition {
  std::vector<Expr> Args;
  Expr Value;
  std::vector<ReductionVariable> RVars;
  /// Loop order for this update stage, outermost first: free pure vars then
  /// reduction vars (which default to serial).
  std::vector<Dim> Dims;
};

/// Reference-counted payload of a Function. Registered in a process-wide
/// name table (see Function.cpp) so Call nodes, which store only names, can
/// be resolved back to functions when building the pipeline environment.
struct FunctionContents {
  /// Atomic: Func handles are captured by in-flight async frames and
  /// copied across threads (see IntrusivePtr in support/Util.h).
  mutable std::atomic<int> RefCount{0};

  std::string Name;
  /// Process-unique serial number. Names are unique only among *live*
  /// functions — once a Function dies its name can be reused by a stage
  /// with a different definition — so identity-sensitive consumers (the
  /// compile cache's schedule fingerprint) key on this id, never on the
  /// name alone.
  int64_t Id = 0;
  std::vector<std::string> Args;
  Expr Value;
  std::vector<UpdateDefinition> Updates;
  Schedule Sched;

  /// Value-tracing requests (Func::traceLoads() etc.). Deliberately not part
  /// of Schedule so Schedule::str() — and with it the lowering fingerprint —
  /// is unchanged by tracing; the flags are applied by InjectTracing on a
  /// copy of the cached lowered pipeline and fingerprinted into the
  /// executable cache key only (see lang/Pipeline.cpp).
  bool TraceLoads = false;
  bool TraceStores = false;
  bool TraceRealizations = false;

  ~FunctionContents();
};

/// A shared handle to a pipeline stage. Copies alias the same stage.
class Function {
public:
  Function() = default;
  /// Creates a new, undefined function. The name is made process-unique if
  /// it collides with an existing live function.
  explicit Function(const std::string &Name);

  bool defined() const;
  bool hasPureDefinition() const;
  bool hasUpdateDefinition() const;

  const std::string &name() const;
  /// Process-unique serial number of this stage (stable across renames,
  /// never reused by another Function in the same process).
  int64_t id() const;
  /// The pure argument names, in definition order (x innermost by default).
  const std::vector<std::string> &args() const;
  int dimensions() const { return int(args().size()); }
  Type outputType() const;

  /// The pure definition's right-hand side.
  const Expr &value() const;
  const std::vector<UpdateDefinition> &updates() const;
  std::vector<UpdateDefinition> &updates();

  Schedule &schedule();
  const Schedule &schedule() const;

  /// Value-tracing flags (see FunctionContents). Setters are additive;
  /// resetSchedule() does not clear them.
  void setTraceLoads(bool Enable);
  void setTraceStores(bool Enable);
  void setTraceRealizations(bool Enable);
  bool traceLoads() const;
  bool traceStores() const;
  bool traceRealizations() const;

  /// Installs the pure definition and initializes the default schedule
  /// (row-major loop order over the pure args).
  void define(const std::vector<std::string> &Args, Expr Value);

  /// Restores the default schedule: no splits, row-major order, all serial,
  /// compute/store inlined (or root if the function has updates). Used by
  /// the autotuner between candidate schedules.
  void resetSchedule();
  /// Appends an update definition.
  void defineUpdate(const std::vector<Expr> &Args, Expr Value,
                    const std::vector<ReductionVariable> &RVars);

  bool sameAs(const Function &Other) const { return C.get() == Other.C.get(); }

  /// Looks up a live function by (unique) name; asserts on failure.
  static Function lookup(const std::string &Name);
  /// Returns true and fills \p Out if a live function has this name.
  static bool tryLookup(const std::string &Name, Function *Out);

private:
  IntrusivePtr<FunctionContents> C;
};

} // namespace halide

#endif // HALIDE_LANG_FUNCTION_H
