//===-- lang/Function.cpp -----------------------------------------------------=//

#include "lang/Function.h"
#include "analysis/Derivatives.h"
#include "ir/IROperators.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>

using namespace halide;

namespace {

/// Live-function registry. Function names are made unique at construction,
/// so lookups are unambiguous. Guarded by registryMutex(): Funcs are
/// constructed and destroyed on client threads (serving requests, test
/// workers) while lowering on another thread resolves Call names.
std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

std::map<std::string, FunctionContents *> &registry() {
  static std::map<std::string, FunctionContents *> Table;
  return Table;
}

std::string registerUnique(const std::string &Base, FunctionContents *FC) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  std::string Name = Base;
  int Suffix = 1;
  while (registry().count(Name))
    Name = Base + "$" + std::to_string(Suffix++);
  registry()[Name] = FC;
  return Name;
}

} // namespace

FunctionContents::~FunctionContents() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  registry().erase(Name);
}

Function::Function(const std::string &Name) {
  internal_assert(!Name.empty()) << "Function with empty name";
  internal_assert(Name.find('.') == std::string::npos)
      << "Function names may not contain '.': " << Name;
  FunctionContents *FC = new FunctionContents;
  FC->Name = registerUnique(Name, FC);
  static std::atomic<int64_t> NextId{0};
  FC->Id = ++NextId;
  C = IntrusivePtr<FunctionContents>(FC);
}

bool Function::defined() const { return C.get() != nullptr; }

bool Function::hasPureDefinition() const {
  return defined() && C->Value.defined();
}

bool Function::hasUpdateDefinition() const {
  return defined() && !C->Updates.empty();
}

const std::string &Function::name() const {
  internal_assert(defined()) << "name() of undefined Function";
  return C->Name;
}

int64_t Function::id() const {
  internal_assert(defined()) << "id() of undefined Function";
  return C->Id;
}

const std::vector<std::string> &Function::args() const {
  internal_assert(defined()) << "args() of undefined Function";
  return C->Args;
}

Type Function::outputType() const {
  internal_assert(hasPureDefinition()) << "outputType() before definition";
  return C->Value.type();
}

const Expr &Function::value() const {
  internal_assert(hasPureDefinition()) << "value() before definition";
  return C->Value;
}

const std::vector<UpdateDefinition> &Function::updates() const {
  internal_assert(defined()) << "updates() of undefined Function";
  return C->Updates;
}

std::vector<UpdateDefinition> &Function::updates() {
  internal_assert(defined()) << "updates() of undefined Function";
  return C->Updates;
}

Schedule &Function::schedule() {
  internal_assert(defined()) << "schedule() of undefined Function";
  return C->Sched;
}

const Schedule &Function::schedule() const {
  internal_assert(defined()) << "schedule() of undefined Function";
  return C->Sched;
}

void Function::setTraceLoads(bool Enable) {
  internal_assert(defined()) << "setTraceLoads() of undefined Function";
  C->TraceLoads = Enable;
}

void Function::setTraceStores(bool Enable) {
  internal_assert(defined()) << "setTraceStores() of undefined Function";
  C->TraceStores = Enable;
}

void Function::setTraceRealizations(bool Enable) {
  internal_assert(defined()) << "setTraceRealizations() of undefined Function";
  C->TraceRealizations = Enable;
}

bool Function::traceLoads() const { return defined() && C->TraceLoads; }

bool Function::traceStores() const { return defined() && C->TraceStores; }

bool Function::traceRealizations() const {
  return defined() && C->TraceRealizations;
}

void Function::define(const std::vector<std::string> &Args, Expr Value) {
  internal_assert(defined()) << "define() of undefined Function";
  user_assert(!C->Value.defined())
      << "function " << C->Name << " already has a pure definition";
  user_assert(Value.defined()) << "definition of " << C->Name
                               << " with undefined value";
  user_assert(Value.type().isScalar())
      << "pure definitions must be scalar-typed";
  C->Args = Args;
  C->Value = Value;
  // Default domain order: row-major over the pure args, i.e. the first arg
  // (conventionally x) is the innermost loop. Dims are outermost-first.
  C->Sched.Dims.clear();
  for (size_t I = Args.size(); I-- > 0;)
    C->Sched.Dims.push_back({Args[I], ForType::Serial, /*IsRVar=*/false});
}

void Function::defineUpdate(const std::vector<Expr> &Args, Expr Value,
                            const std::vector<ReductionVariable> &RVars) {
  internal_assert(defined()) << "defineUpdate() of undefined Function";
  user_assert(C->Value.defined())
      << "update of " << C->Name << " before its pure definition";
  user_assert(Args.size() == C->Args.size())
      << "update of " << C->Name << " has wrong dimensionality";
  user_assert(Value.defined() && Value.type() == C->Value.type())
      << "update of " << C->Name << " must match the pure definition's type";

  UpdateDefinition Update;
  Update.Args = Args;
  Update.Value = Value;
  Update.RVars = RVars;

  // Loop order for the update stage: free pure vars (outermost, in reverse
  // arg order for row-major traversal) then reduction vars in declaration
  // order with the last one innermost (lexicographic, paper section 2).
  std::set<std::string> RVarNames;
  for (const ReductionVariable &RV : RVars)
    RVarNames.insert(RV.Name);
  std::set<std::string> Used;
  for (const Expr &Arg : Args)
    for (const std::string &V : freeVars(Arg))
      Used.insert(V);
  for (const std::string &V : freeVars(Value))
    Used.insert(V);
  for (size_t I = C->Args.size(); I-- > 0;) {
    const std::string &PureVar = C->Args[I];
    if (Used.count(PureVar))
      Update.Dims.push_back({PureVar, ForType::Serial, /*IsRVar=*/false});
  }
  for (const ReductionVariable &RV : RVars)
    Update.Dims.push_back({RV.Name, ForType::Serial, /*IsRVar=*/true});

  // Pure vars used on the right-hand side or in Args must appear literally
  // as the corresponding pure argument position or be reduction vars.
  for (size_t I = 0; I < Args.size(); ++I) {
    for (const std::string &V : freeVars(Args[I])) {
      user_assert(RVarNames.count(V) ||
                  std::find(C->Args.begin(), C->Args.end(), V) !=
                      C->Args.end())
          << "update of " << C->Name << " uses unknown variable " << V;
    }
  }
  C->Updates.push_back(std::move(Update));
}

void Function::resetSchedule() {
  internal_assert(hasPureDefinition()) << "resetSchedule before definition";
  Schedule Fresh;
  for (size_t I = C->Args.size(); I-- > 0;)
    Fresh.Dims.push_back({C->Args[I], ForType::Serial, /*IsRVar=*/false});
  C->Sched = Fresh;
  for (UpdateDefinition &U : C->Updates)
    for (Dim &D : U.Dims)
      D.Kind = ForType::Serial;
}

Function Function::lookup(const std::string &Name) {
  Function F;
  internal_assert(tryLookup(Name, &F)) << "unknown function " << Name;
  return F;
}

bool Function::tryLookup(const std::string &Name, Function *Out) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  auto It = registry().find(Name);
  if (It == registry().end())
    return false;
  Function F;
  F.C = IntrusivePtr<FunctionContents>(It->second);
  *Out = F;
  return true;
}
