//===-- lang/Func.cpp ----------------------------------------------------------=//

#include "lang/Func.h"
#include "analysis/Derivatives.h"
#include "ir/IROperators.h"

#include <algorithm>
#include <set>

using namespace halide;

FuncRef::operator Expr() const {
  user_assert(F.hasPureDefinition())
      << "cannot call " << F.name() << " before it is defined";
  std::vector<Expr> CallArgs;
  CallArgs.reserve(Args.size());
  for (const Expr &Arg : Args)
    CallArgs.push_back(cast(Int(32), Arg));
  return Call::make(F.outputType(), F.name(), std::move(CallArgs),
                    CallType::Halide);
}

void FuncRef::operator=(Expr Value) {
  if (!F.hasPureDefinition()) {
    // Pure definition: arguments must be distinct plain Vars.
    std::vector<std::string> ArgNames;
    std::set<std::string> Seen;
    for (const Expr &Arg : Args) {
      const Variable *V = Arg.as<Variable>();
      user_assert(V && !V->IsParam)
          << "pure definition of " << F.name()
          << " requires plain Var arguments";
      user_assert(!lookupReductionVariable(V->Name))
          << "pure definition of " << F.name()
          << " may not use reduction variables";
      user_assert(Seen.insert(V->Name).second)
          << "pure definition of " << F.name() << " repeats argument "
          << V->Name;
      ArgNames.push_back(V->Name);
    }
    F.define(ArgNames, Value);
    return;
  }
  defineUpdateFromExpr(Value);
}

void FuncRef::operator=(const FuncRef &Other) { *this = Expr(Other); }

void FuncRef::operator+=(Expr Value) {
  *this = Expr(*this) + Value;
}
void FuncRef::operator-=(Expr Value) {
  *this = Expr(*this) - Value;
}
void FuncRef::operator*=(Expr Value) {
  *this = Expr(*this) * Value;
}

void FuncRef::defineUpdateFromExpr(Expr Value) {
  std::vector<Expr> UpdateArgs;
  UpdateArgs.reserve(Args.size());
  for (const Expr &Arg : Args)
    UpdateArgs.push_back(cast(Int(32), Arg));
  Value = cast(F.outputType(), Value);

  // Infer the reduction domain: every free variable that is a registered
  // RVar participates, in registration (declaration) order.
  std::set<std::string> Free;
  for (const Expr &Arg : UpdateArgs)
    for (const std::string &Name : freeVars(Arg))
      Free.insert(Name);
  for (const std::string &Name : freeVars(Value))
    Free.insert(Name);

  std::vector<ReductionVariable> RVars;
  for (const std::string &Name : Free)
    if (const ReductionVariable *RV = lookupReductionVariable(Name))
      RVars.push_back(*RV);
  // Deterministic order: by name (RDom dims share a unique base, so x < y).
  std::sort(RVars.begin(), RVars.end(),
            [](const ReductionVariable &A, const ReductionVariable &B) {
              return A.Name < B.Name;
            });
  F.defineUpdate(UpdateArgs, Value, RVars);
}

Func::Func() : F(Function(uniqueName("f"))) {}
Func::Func(const std::string &Name) : F(Function(Name)) {}

FuncRef Func::operator()(std::vector<Expr> Args) const {
  return FuncRef(F, std::move(Args));
}

Func &Func::split(const Var &Old, const Var &Outer, const Var &Inner,
                  Expr Factor) {
  Schedule &S = F.schedule();
  Dim *OldDim = S.findDim(Old.name());
  user_assert(OldDim) << "split: " << F.name() << " has no dimension "
                      << Old.name();
  user_assert(!OldDim->IsRVar)
      << "split of reduction dimension " << Old.name() << " is unsupported";
  user_assert(Outer.name() != Inner.name())
      << "split: outer and inner must have distinct names";
  user_assert(Outer.name() == Old.name() || !S.hasDim(Outer.name()))
      << "split: outer name " << Outer.name() << " already in use";
  user_assert(Inner.name() == Old.name() || !S.hasDim(Inner.name()))
      << "split: inner name " << Inner.name() << " already in use";
  user_assert(Factor.defined()) << "split with undefined factor";
  int64_t ConstFactor;
  if (asConstInt(Factor, &ConstFactor)) {
    user_assert(ConstFactor >= 1) << "split factor must be positive";
  }

  ForType OldKind = OldDim->Kind;
  OldDim->Var = Outer.name();
  OldDim->Kind = OldKind;
  // Insert the inner dimension immediately after (i.e. inside) the outer.
  for (size_t I = 0; I < S.Dims.size(); ++I) {
    if (S.Dims[I].Var == Outer.name()) {
      S.Dims.insert(S.Dims.begin() + I + 1,
                    Dim{Inner.name(), ForType::Serial, false});
      break;
    }
  }
  S.Splits.push_back({Old.name(), Outer.name(), Inner.name(),
                      cast(Int(32), Factor)});
  return *this;
}

Func &Func::reorder(const std::vector<Var> &Vars) {
  Schedule &S = F.schedule();
  std::vector<size_t> Positions;
  std::set<std::string> Names;
  for (const Var &V : Vars) {
    user_assert(Names.insert(V.name()).second)
        << "reorder repeats dimension " << V.name();
    bool Found = false;
    for (size_t I = 0; I < S.Dims.size(); ++I) {
      if (S.Dims[I].Var == V.name()) {
        Positions.push_back(I);
        Found = true;
        break;
      }
    }
    user_assert(Found) << "reorder: " << F.name() << " has no dimension "
                       << V.name();
  }
  std::vector<size_t> Sorted = Positions;
  std::sort(Sorted.begin(), Sorted.end());
  // Vars are given innermost-first; the latest listed var goes outermost.
  std::vector<Dim> NewDims = S.Dims;
  for (size_t K = 0; K < Vars.size(); ++K) {
    const std::string &Name = Vars[Vars.size() - 1 - K].name();
    for (const Dim &D : S.Dims) {
      if (D.Var == Name) {
        NewDims[Sorted[K]] = D;
        break;
      }
    }
  }
  S.Dims = NewDims;
  return *this;
}

namespace {

Func &markDim(Func &Self, Function &F, const std::string &Name,
              ForType Kind) {
  Dim *D = F.schedule().findDim(Name);
  user_assert(D) << forTypeName(Kind) << ": " << F.name()
                 << " has no dimension " << Name;
  if (D->IsRVar) {
    user_assert(Kind == ForType::Serial)
        << "reduction dimension " << Name
        << " may only be serial (associativity is not analyzed)";
  }
  D->Kind = Kind;
  return Self;
}

} // namespace

Func &Func::parallel(const Var &V) {
  return markDim(*this, F, V.name(), ForType::Parallel);
}

Func &Func::vectorize(const Var &V) {
  return markDim(*this, F, V.name(), ForType::Vectorized);
}

Func &Func::vectorize(const Var &V, int Factor) {
  Var Inner(V.name() + "$vi");
  split(V, V, Inner, Factor);
  return vectorize(Inner);
}

Func &Func::unroll(const Var &V) {
  return markDim(*this, F, V.name(), ForType::Unrolled);
}

Func &Func::unroll(const Var &V, int Factor) {
  Var Inner(V.name() + "$ui");
  split(V, V, Inner, Factor);
  return unroll(Inner);
}

Func &Func::tile(const TileSpec &Spec) {
  user_assert(Spec.XFactor.defined() && Spec.YFactor.defined())
      << "tile of " << F.name() << ": TileSpec::factors(...) was not set";
  split(Spec.X, Spec.XOuter, Spec.XInner, Spec.XFactor);
  split(Spec.Y, Spec.YOuter, Spec.YInner, Spec.YFactor);
  return reorder({Spec.XInner, Spec.YInner, Spec.XOuter, Spec.YOuter});
}

Func &Func::bound(const Var &V, Expr Min, Expr Extent) {
  bool IsArg = std::find(F.args().begin(), F.args().end(), V.name()) !=
               F.args().end();
  user_assert(IsArg) << "bound: " << V.name() << " is not a pure argument of "
                     << F.name();
  F.schedule().Bounds.push_back(
      {V.name(), cast(Int(32), Min), cast(Int(32), Extent)});
  return *this;
}

Func &Func::gpuBlocks(const Var &V) {
  return markDim(*this, F, V.name(), ForType::GPUBlock);
}

Func &Func::gpuThreads(const Var &V) {
  return markDim(*this, F, V.name(), ForType::GPUThread);
}

Func &Func::gpuTile(const TileSpec &Spec) {
  tile(Spec);
  gpuBlocks(Spec.YOuter);
  gpuBlocks(Spec.XOuter);
  gpuThreads(Spec.YInner);
  gpuThreads(Spec.XInner);
  return *this;
}

Func &Func::computeRoot() {
  F.schedule().ComputeLevel = LoopLevel::root();
  F.schedule().StoreLevel = LoopLevel::root();
  return *this;
}

Func &Func::computeAt(const Func &Consumer, const Var &V) {
  F.schedule().ComputeLevel = LoopLevel::at(Consumer.name(), V.name());
  return *this;
}

Func &Func::computeInline() {
  F.schedule().ComputeLevel = LoopLevel::inlined();
  F.schedule().StoreLevel = LoopLevel::inlined();
  return *this;
}

Func &Func::storeRoot() {
  F.schedule().StoreLevel = LoopLevel::root();
  return *this;
}

Func &Func::storeAt(const Func &Consumer, const Var &V) {
  F.schedule().StoreLevel = LoopLevel::at(Consumer.name(), V.name());
  return *this;
}

Func &Func::updateParallel(int Idx, const Var &V) {
  auto &Updates = F.updates();
  user_assert(Idx >= 0 && size_t(Idx) < Updates.size())
      << "no update definition " << Idx << " on " << F.name();
  for (Dim &D : Updates[Idx].Dims) {
    if (D.Var == V.name()) {
      user_assert(!D.IsRVar) << "cannot parallelize reduction dimension";
      D.Kind = ForType::Parallel;
      return *this;
    }
  }
  user_error << "update " << Idx << " of " << F.name()
             << " has no dimension " << V.name();
  return *this;
}

Func &Func::updateVectorize(int Idx, const Var &V) {
  auto &Updates = F.updates();
  user_assert(Idx >= 0 && size_t(Idx) < Updates.size())
      << "no update definition " << Idx << " on " << F.name();
  for (Dim &D : Updates[Idx].Dims) {
    if (D.Var == V.name()) {
      user_assert(!D.IsRVar) << "cannot vectorize reduction dimension";
      D.Kind = ForType::Vectorized;
      return *this;
    }
  }
  user_error << "update " << Idx << " of " << F.name()
             << " has no dimension " << V.name();
  return *this;
}

Func &Func::traceLoads() {
  F.setTraceLoads(true);
  return *this;
}

Func &Func::traceStores() {
  F.setTraceStores(true);
  return *this;
}

Func &Func::traceRealizations() {
  F.setTraceRealizations(true);
  return *this;
}
