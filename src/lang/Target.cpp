//===-- lang/Target.cpp ---------------------------------------------------===//

#include "lang/Target.h"

#include "support/Util.h"

#include <cstdlib>
#include <vector>

using namespace halide;

const char *halide::backendName(Backend B) {
  switch (B) {
  case Backend::Interpreter:
    return "interpreter";
  case Backend::VmBytecode:
    return "vm_bytecode";
  case Backend::JitC:
    return "jit_c";
  case Backend::GpuSim:
    return "gpu_sim";
  }
  return "unknown";
}

std::string Target::lowerOptionsFingerprint() const {
  std::string S;
  if (DisableSlidingWindow)
    S += "-no_sliding_window";
  if (DisableStorageFolding)
    S += "-no_storage_folding";
  return S;
}

std::string Target::str() const {
  return backendName(TargetBackend) + lowerOptionsFingerprint() +
         (NumThreads > 0 ? "-threads" + std::to_string(NumThreads) : "") +
         (Profile ? "-profile" : "") + (Trace ? "-trace" : "") +
         (JitFlags.empty() ? "" : " [" + JitFlags + "]");
}

bool Target::parse(const std::string &Text, Target *Out) {
  std::vector<std::string> Parts = splitString(Text, '-');
  if (Parts.empty())
    return false;
  Target T;
  const std::string &Name = Parts[0];
  if (Name == "interp" || Name == "interpreter")
    T.TargetBackend = Backend::Interpreter;
  else if (Name == "vm" || Name == "vm_bytecode")
    T.TargetBackend = Backend::VmBytecode;
  else if (Name == "jit" || Name == "jit_c")
    T.TargetBackend = Backend::JitC;
  else if (Name == "gpu" || Name == "gpu_sim")
    T.TargetBackend = Backend::GpuSim;
  else
    return false;
  for (size_t I = 1; I < Parts.size(); ++I) {
    if (Parts[I] == "no_sliding_window")
      T.DisableSlidingWindow = true;
    else if (Parts[I] == "no_storage_folding")
      T.DisableStorageFolding = true;
    else if (Parts[I] == "profile")
      T.Profile = true;
    else if (Parts[I] == "trace")
      T.Trace = true;
    else if (startsWith(Parts[I], "threads")) {
      int N = std::atoi(Parts[I].c_str() + 7);
      if (N <= 0)
        return false;
      T.NumThreads = N;
    } else
      return false;
  }
  *Out = T;
  return true;
}
