//===-- lang/Var.cpp ----------------------------------------------------------=//

#include "lang/Var.h"
#include "support/Util.h"

using namespace halide;

Var::Var() : VarName(uniqueName("v")) {}

Var::operator Expr() const { return Variable::make(Int(32), VarName); }
