//===-- lang/RDom.h - Reduction domains -------------------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reduction domains (paper section 2, "Reduction functions"): explicit
/// bounded iteration spaces over which update definitions recurse in
/// lexicographic order. An RDom's dimensions appear in update definitions
/// as RVars.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_LANG_RDOM_H
#define HALIDE_LANG_RDOM_H

#include "ir/Expr.h"

#include <string>
#include <vector>

namespace halide {

/// One dimension of a reduction domain.
struct ReductionVariable {
  std::string Name;
  Expr Min, Extent;
};

/// A named reduction dimension; converts to a Variable expression.
class RVar {
public:
  RVar() = default;
  explicit RVar(const std::string &Name) : VarName(Name) {}

  const std::string &name() const { return VarName; }
  operator Expr() const;

private:
  std::string VarName;
};

/// A multidimensional reduction domain. Dimensions are iterated in
/// lexicographic order, later dimensions innermost: for a 2-D RDom r,
/// r.y is the outer loop and r.x the inner one.
class RDom {
public:
  RDom() = default;

  /// 1-D domain over [Min, Min+Extent).
  RDom(Expr Min, Expr Extent, const std::string &Name = "");
  /// 2-D domain; (MinX, ExtentX) is dimension x, (MinY, ExtentY) is y.
  RDom(Expr MinX, Expr ExtentX, Expr MinY, Expr ExtentY,
       const std::string &Name = "");
  /// General constructor from explicit dimensions.
  explicit RDom(const std::vector<ReductionVariable> &Dims);

  bool defined() const { return !Dims.empty(); }
  size_t dimensions() const { return Dims.size(); }
  const std::vector<ReductionVariable> &domain() const { return Dims; }

  /// Dimension accessors in the style of the paper (r.x, r.y, ...).
  RVar x, y, z, w;

  /// 1-D RDoms convert directly to their single variable.
  operator Expr() const;
  operator RVar() const;

private:
  void initAccessors();
  std::vector<ReductionVariable> Dims;
};

/// Looks up the registered reduction variable with the given name; returns
/// null if the name does not belong to any RDom. Used when inferring the
/// reduction domain of an update definition from the RVars it mentions.
const ReductionVariable *lookupReductionVariable(const std::string &Name);

} // namespace halide

#endif // HALIDE_LANG_RDOM_H
