//===-- lang/Param.cpp ----------------------------------------------------===//

#include "lang/Param.h"

#include <map>
#include <mutex>

using namespace halide;

namespace {

/// The process-wide parameter registry. Entries persist for the process
/// lifetime (parameters are few and small); declarations are overwritten
/// when a name is reused, so stale values from a discarded Param cannot
/// leak into a new pipeline that reuses the name.
///
/// Guarded by registryMutex(): Param::set() on one thread races an
/// in-flight realize() resolving bindings on another, so every access
/// copies under the lock. Realize-time resolution goes further and takes
/// one snapshot of the whole registry (snapshotParams), so a single frame
/// never observes a half-applied group of set() calls.
std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

std::map<std::string, ParamValue> &paramRegistry() {
  static std::map<std::string, ParamValue> Registry;
  return Registry;
}

} // namespace

void halide::declareParam(const std::string &Name, Type DeclaredType,
                          bool IsImage, int Dimensions) {
  ParamValue PV;
  PV.DeclaredType = DeclaredType;
  PV.IsImage = IsImage;
  PV.Dimensions = Dimensions;
  std::lock_guard<std::mutex> Lock(registryMutex());
  paramRegistry()[Name] = PV;
}

void halide::setParamValue(const std::string &Name, Type DeclaredType,
                           int64_t IntValue, double FloatValue) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  auto It = paramRegistry().find(Name);
  internal_assert(It != paramRegistry().end())
      << "set of undeclared param " << Name;
  internal_assert(It->second.DeclaredType == DeclaredType &&
                  !It->second.IsImage)
      << "set of param " << Name << " with mismatched declaration";
  It->second.HasValue = true;
  It->second.IntValue = IntValue;
  It->second.FloatValue = FloatValue;
}

void halide::setParamImage(const std::string &Name, const RawBuffer &Image) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  auto It = paramRegistry().find(Name);
  internal_assert(It != paramRegistry().end() && It->second.IsImage)
      << "set of undeclared image param " << Name;
  It->second.HasValue = true;
  It->second.Image = Image;
}

void halide::clearParamValue(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  auto It = paramRegistry().find(Name);
  if (It == paramRegistry().end())
    return;
  It->second.HasValue = false;
  It->second.Image = RawBuffer();
}

bool halide::getParamValue(const std::string &Name, ParamValue *Out) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  auto It = paramRegistry().find(Name);
  if (It == paramRegistry().end())
    return false;
  *Out = It->second;
  return true;
}

std::map<std::string, ParamValue> halide::snapshotParams() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  return paramRegistry();
}
