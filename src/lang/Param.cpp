//===-- lang/Param.cpp ----------------------------------------------------===//

#include "lang/Param.h"

#include <map>

using namespace halide;

namespace {

/// The process-wide parameter registry. Entries persist for the process
/// lifetime (parameters are few and small); declarations are overwritten
/// when a name is reused, so stale values from a discarded Param cannot
/// leak into a new pipeline that reuses the name.
std::map<std::string, ParamValue> &paramRegistry() {
  static std::map<std::string, ParamValue> Registry;
  return Registry;
}

} // namespace

void halide::declareParam(const std::string &Name, Type DeclaredType,
                          bool IsImage, int Dimensions) {
  ParamValue PV;
  PV.DeclaredType = DeclaredType;
  PV.IsImage = IsImage;
  PV.Dimensions = Dimensions;
  paramRegistry()[Name] = PV;
}

void halide::setParamValue(const std::string &Name, Type DeclaredType,
                           int64_t IntValue, double FloatValue) {
  auto It = paramRegistry().find(Name);
  internal_assert(It != paramRegistry().end())
      << "set of undeclared param " << Name;
  internal_assert(It->second.DeclaredType == DeclaredType &&
                  !It->second.IsImage)
      << "set of param " << Name << " with mismatched declaration";
  It->second.HasValue = true;
  It->second.IntValue = IntValue;
  It->second.FloatValue = FloatValue;
}

void halide::setParamImage(const std::string &Name, const RawBuffer &Image) {
  auto It = paramRegistry().find(Name);
  internal_assert(It != paramRegistry().end() && It->second.IsImage)
      << "set of undeclared image param " << Name;
  It->second.HasValue = true;
  It->second.Image = Image;
}

void halide::clearParamValue(const std::string &Name) {
  auto It = paramRegistry().find(Name);
  if (It == paramRegistry().end())
    return;
  It->second.HasValue = false;
  It->second.Image = RawBuffer();
}

const ParamValue *halide::findParam(const std::string &Name) {
  auto It = paramRegistry().find(Name);
  return It == paramRegistry().end() ? nullptr : &It->second;
}
