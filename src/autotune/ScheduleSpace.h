//===-- autotune/ScheduleSpace.h - The schedule search space ----*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The autotuner's genome representation (paper section 5): each function
/// in the pipeline carries one gene choosing its call schedule (inline,
/// root, or fused into its consumer) and a domain-order pattern (the
/// paper's schedule templates: fully-parallelized-and-tiled, parallel-y /
/// vectorize-x, vectorize-x, sliding scanlines), plus randomized block-size
/// constants drawn from small powers of two. Genomes are valid by
/// construction: fusion is only offered where a unique consumer exists, so
/// mutate/crossover cannot produce schedules the compiler rejects — this
/// plays the role of the paper's invalid-schedule rejection sampling.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_AUTOTUNE_SCHEDULESPACE_H
#define HALIDE_AUTOTUNE_SCHEDULESPACE_H

#include "lang/Func.h"

#include <map>
#include <random>
#include <string>
#include <vector>

namespace halide {

/// One function's schedule choice.
struct FuncGene {
  enum class CallSchedule : uint8_t {
    Inline,          ///< total fusion (compute at every use)
    Root,            ///< breadth-first granularity
    FuseIntoConsumer ///< compute within the consumer's tile / scanline
  };
  enum class DomainPattern : uint8_t {
    Simple,          ///< default serial row-major nest
    ParallelOuter,   ///< parallelize the outermost pure dimension
    ParallelYVecX,   ///< the paper's template (3)
    VectorizedX,     ///< the paper's template (1) domain part
    TiledVectorized, ///< the paper's "fully parallelized and tiled"
    GpuTiled,        ///< the paper's CUDA template (4)
  };

  CallSchedule Call = CallSchedule::Root;
  DomainPattern Pattern = DomainPattern::Simple;
  /// Whether a fused stage stores at root and slides along the consumer's
  /// scanlines (trading parallelism for reuse, paper section 4.3).
  bool SlideScanlines = false;
  int TileX = 32, TileY = 8, VecWidth = 8;
};

/// A complete schedule assignment, aligned with ScheduleSpace::order().
struct Genome {
  std::vector<FuncGene> Genes;
};

/// The per-pipeline search space: the stage list, the consumer structure,
/// and the genome operations the genetic algorithm needs.
class ScheduleSpace {
public:
  explicit ScheduleSpace(Function Output);

  const std::vector<std::string> &order() const { return Order; }
  size_t size() const { return Order.size(); }

  /// All stages computed and stored breadth-first (the paper's always-valid
  /// starting point).
  Genome breadthFirstGenome() const;
  /// The paper's seeded starting point: inline footprint-1 stages, then
  /// stochastically choose fully-parallelized-and-tiled or parallel-y.
  Genome reasonableGenome(std::mt19937 &Rng) const;
  /// Independent random choices for every stage.
  Genome randomGenome(std::mt19937 &Rng) const;

  /// A deterministic, seeded sample of \p Count schedules for differential
  /// testing: the canonical variants first (breadth-first, max-inline,
  /// tiled+parallel+vectorized, vectorized-x, sliding-window fusion), then
  /// seeded random/reasonable genomes. The same (Count, Seed) always yields
  /// the same genomes, so failures reproduce across runs and machines.
  std::vector<Genome> deterministicSample(int Count, uint32_t Seed) const;

  /// The paper's mutation rules: randomize constants, replace, copy,
  /// add/remove/replace a transformation, the loop-fusion rule, and the
  /// template rule (the latter two with higher probability).
  void mutate(Genome &G, std::mt19937 &Rng) const;
  /// Two-point crossover with cut points between functions.
  Genome crossover(const Genome &A, const Genome &B,
                   std::mt19937 &Rng) const;

  /// Applies the genome to the pipeline's schedules.
  void apply(const Genome &G) const;

  /// One-line description (for logs and EXPERIMENTS.md).
  std::string describe(const Genome &G) const;

private:
  FuncGene randomGene(const std::string &Name, std::mt19937 &Rng) const;
  bool canFuse(const std::string &Name) const;
  bool canInline(const std::string &Name) const;

  Function Output;
  std::map<std::string, Function> Env;
  std::vector<std::string> Order;
  /// Unique direct consumer of each stage, where one exists.
  std::map<std::string, std::string> UniqueConsumer;
  /// Worst-case distinct call sites any single consumer uses for a stage.
  /// Stages at 1 are consumed pointwise: inlining them never duplicates
  /// work, so they are the only ones deterministicSample inlines (chained
  /// stencil inlining compounds exponentially on pyramid pipelines).
  std::map<std::string, int> MaxConsumerSites;
};

} // namespace halide

#endif // HALIDE_AUTOTUNE_SCHEDULESPACE_H
