//===-- autotune/Autotuner.cpp ----------------------------------------------------=//

#include "autotune/Autotuner.h"
#include "lang/Pipeline.h"
#include "metrics/ScheduleMetrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

using namespace halide;

namespace {

struct Individual {
  Genome G;
  double Ms = -1.0; // fitness; < 0 means unevaluated
};

} // namespace

TuneResult halide::autotune(Func Output, const ParamBindings &Inputs,
                            RawBuffer OutBuf, const TuneOptions &Opts) {
  ScheduleSpace Space(Output.function());
  Pipeline Pipe(Output);
  std::mt19937 Rng(Opts.Seed);
  TuneResult Result;

  ParamBindings Params = Inputs;
  Params.bind(Output.name(), OutBuf);

  // Reference output for candidate verification.
  std::vector<uint8_t> Reference;
  {
    Genome BF = Space.breadthFirstGenome();
    Space.apply(BF);
    Pipe.compile(Target::jit())->run(Params);
    int64_t Bytes = OutBuf.numElements() * OutBuf.ElemType.bytes();
    Reference.assign(static_cast<uint8_t *>(OutBuf.Host),
                     static_cast<uint8_t *>(OutBuf.Host) + Bytes);
  }

  // Fitness evaluation goes through the process compile cache keyed by
  // schedule fingerprint, so genomes the search revisits (elites, repeated
  // tournament winners) are neither re-lowered nor re-compiled.
  auto Evaluate = [&](Individual &Ind) {
    if (Ind.Ms >= 0)
      return;
    Space.apply(Ind.G);
    Ind.Ms = benchmarkMs(*Pipe.compile(Target::jit()), Params,
                         Opts.BenchIters);
    ++Result.CandidatesEvaluated;
    if (Opts.VerifyCandidates) {
      int64_t Bytes = OutBuf.numElements() * OutBuf.ElemType.bytes();
      bool Same = std::memcmp(OutBuf.Host, Reference.data(),
                              size_t(Bytes)) == 0;
      internal_assert(Same)
          << "autotuner: schedule produced incorrect output: "
          << Space.describe(Ind.G);
    }
  };

  // Initial population: half reasonable seeds, half random (paper
  // section 5, "Search Starting Point").
  std::vector<Individual> Population(size_t(Opts.Population));
  Population[0].G = Space.breadthFirstGenome();
  for (int I = 1; I < Opts.Population; ++I)
    Population[size_t(I)].G = (I % 2 == 1) ? Space.reasonableGenome(Rng)
                                           : Space.randomGenome(Rng);

  auto Tournament = [&](const std::vector<Individual> &Pop) -> const
      Individual & {
        const Individual *Best = nullptr;
        for (int I = 0; I < Opts.TournamentSize; ++I) {
          const Individual &C = Pop[std::uniform_int_distribution<size_t>(
              0, Pop.size() - 1)(Rng)];
          if (!Best || C.Ms < Best->Ms)
            Best = &C;
        }
        return *Best;
      };

  for (int Gen = 0; Gen < Opts.Generations; ++Gen) {
    for (Individual &Ind : Population)
      Evaluate(Ind);
    std::sort(Population.begin(), Population.end(),
              [](const Individual &A, const Individual &B) {
                return A.Ms < B.Ms;
              });
    Result.BestPerGeneration.push_back(Population[0].Ms);
    if (Opts.Verbose)
      std::fprintf(stderr, "[autotune] gen %d best %.3f ms: %s\n", Gen,
                   Population[0].Ms,
                   Space.describe(Population[0].G).c_str());
    if (Gen + 1 == Opts.Generations)
      break;

    std::vector<Individual> Next;
    // Elitism.
    for (int I = 0; I < Opts.EliteCount && I < Opts.Population; ++I)
      Next.push_back(Population[size_t(I)]);
    int CrossCount = int(Opts.CrossoverFraction * Opts.Population);
    int MutantCount = int(Opts.MutantFraction * Opts.Population);
    for (int I = 0; I < CrossCount; ++I) {
      Individual Child;
      Child.G = Space.crossover(Tournament(Population).G,
                                Tournament(Population).G, Rng);
      Next.push_back(std::move(Child));
    }
    for (int I = 0; I < MutantCount; ++I) {
      Individual Child = Tournament(Population);
      Child.Ms = -1;
      Space.mutate(Child.G, Rng);
      Next.push_back(std::move(Child));
    }
    while (int(Next.size()) < Opts.Population) {
      Individual Child;
      Child.G = (Next.size() % 2) ? Space.reasonableGenome(Rng)
                                  : Space.randomGenome(Rng);
      Next.push_back(std::move(Child));
    }
    Population = std::move(Next);
  }

  Result.Best = Population[0].G;
  Result.BestMs = Population[0].Ms;
  Result.Description = Space.describe(Result.Best);
  Space.apply(Result.Best);
  return Result;
}
