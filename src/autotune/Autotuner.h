//===-- autotune/Autotuner.h - Stochastic schedule search -------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The genetic-algorithm autotuner of paper section 5: fixed population,
/// elitism, tournament-selected two-point crossover, mutation with
/// imaging-specific rules, random immigrants, and fitness measured by
/// compiling each candidate with the JIT backend and timing it. Candidate
/// outputs are verified against the reference (breadth-first) schedule, the
/// paper's sanity check that all valid schedules generate correct code.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_AUTOTUNE_AUTOTUNER_H
#define HALIDE_AUTOTUNE_AUTOTUNER_H

#include "autotune/ScheduleSpace.h"
#include "runtime/Runtime.h"

#include <string>
#include <vector>

namespace halide {

/// Search configuration. The defaults are scaled down from the paper's
/// population of 128 so test and benchmark budgets stay sane; Figure-8
/// benchmarks raise them.
struct TuneOptions {
  int Population = 16;
  int Generations = 6;
  int EliteCount = 2;
  /// Fractions of each new generation (rest are random immigrants).
  double CrossoverFraction = 0.4;
  double MutantFraction = 0.4;
  int TournamentSize = 3;
  int BenchIters = 3;
  uint32_t Seed = 1;
  bool Verbose = false;
  /// Verify every candidate's output against the reference schedule.
  bool VerifyCandidates = true;
};

/// Search outcome.
struct TuneResult {
  Genome Best;
  double BestMs = 0.0;
  /// Best time after each generation (convergence curve, section 6.1).
  std::vector<double> BestPerGeneration;
  std::string Description;
  int CandidatesEvaluated = 0;
};

/// Tunes the pipeline producing \p Output. \p Inputs must bind every input
/// image and scalar; \p OutBuf is the output buffer candidates render into
/// (its extents should be multiples of 64 so split output schedules remain
/// valid). On return the best genome has been applied to the pipeline's
/// schedules.
TuneResult autotune(Func Output, const ParamBindings &Inputs,
                    RawBuffer OutBuf, const TuneOptions &Opts);

} // namespace halide

#endif // HALIDE_AUTOTUNE_AUTOTUNER_H
