//===-- autotune/ScheduleSpace.cpp -----------------------------------------------=//

#include "autotune/ScheduleSpace.h"
#include "analysis/CallGraph.h"

#include <algorithm>
#include <sstream>

using namespace halide;

namespace {

const int TileSizes[] = {8, 16, 32, 64};
const int VecWidths[] = {4, 8};

int pickFrom(const int *Options, int N, std::mt19937 &Rng) {
  return Options[std::uniform_int_distribution<int>(0, N - 1)(Rng)];
}

double unitRand(std::mt19937 &Rng) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(Rng);
}

} // namespace

ScheduleSpace::ScheduleSpace(Function OutputFn) : Output(std::move(OutputFn)) {
  Env = buildEnvironment(Output);
  Order = realizationOrder(Output, Env);
  // Invert the call graph to find stages with a unique direct consumer.
  std::map<std::string, std::vector<std::string>> Consumers;
  for (const auto &[Name, F] : Env) {
    for (const std::string &Callee : directCallees(F))
      Consumers[Callee].push_back(Name);
    for (const auto &[Callee, Sites] : calleeSiteCounts(F))
      MaxConsumerSites[Callee] =
          std::max(MaxConsumerSites[Callee], Sites);
  }
  for (const auto &[Name, List] : Consumers)
    if (List.size() == 1)
      UniqueConsumer[Name] = List[0];
}

bool ScheduleSpace::canInline(const std::string &Name) const {
  return Name != Output.name() && !Env.at(Name).hasUpdateDefinition();
}

bool ScheduleSpace::canFuse(const std::string &Name) const {
  auto It = UniqueConsumer.find(Name);
  if (It == UniqueConsumer.end())
    return false;
  // The consumer must itself be a stage we can anchor loops on.
  return It->second != "" && Env.at(Name).dimensions() >= 2;
}

Genome ScheduleSpace::breadthFirstGenome() const {
  Genome G;
  G.Genes.resize(Order.size());
  for (FuncGene &Gene : G.Genes) {
    Gene.Call = FuncGene::CallSchedule::Root;
    Gene.Pattern = FuncGene::DomainPattern::Simple;
  }
  return G;
}

FuncGene ScheduleSpace::randomGene(const std::string &Name,
                                   std::mt19937 &Rng) const {
  FuncGene Gene;
  double Roll = unitRand(Rng);
  if (Roll < 0.25 && canInline(Name))
    Gene.Call = FuncGene::CallSchedule::Inline;
  else if (Roll < 0.5 && canFuse(Name))
    Gene.Call = FuncGene::CallSchedule::FuseIntoConsumer;
  else
    Gene.Call = FuncGene::CallSchedule::Root;
  switch (std::uniform_int_distribution<int>(0, 4)(Rng)) {
  case 0:
    Gene.Pattern = FuncGene::DomainPattern::Simple;
    break;
  case 1:
    Gene.Pattern = FuncGene::DomainPattern::ParallelOuter;
    break;
  case 2:
    Gene.Pattern = FuncGene::DomainPattern::ParallelYVecX;
    break;
  case 3:
    Gene.Pattern = FuncGene::DomainPattern::VectorizedX;
    break;
  default:
    Gene.Pattern = FuncGene::DomainPattern::TiledVectorized;
    break;
  }
  Gene.TileX = pickFrom(TileSizes, 4, Rng);
  Gene.TileY = pickFrom(TileSizes, 4, Rng);
  Gene.VecWidth = pickFrom(VecWidths, 2, Rng);
  Gene.SlideScanlines = unitRand(Rng) < 0.25;
  return Gene;
}

Genome ScheduleSpace::randomGenome(std::mt19937 &Rng) const {
  Genome G;
  G.Genes.reserve(Order.size());
  for (const std::string &Name : Order)
    G.Genes.push_back(randomGene(Name, Rng));
  return G;
}

std::vector<Genome> ScheduleSpace::deterministicSample(int Count,
                                                       uint32_t Seed) const {
  // Inlining a stage consumed at S distinct sites multiplies its work by
  // up to S, and chained inlinings compound multiplicatively — fully
  // fusing an image pyramid is exponential in its depth. Cap the product
  // of site counts over all inlined stages so the sampled schedules stay
  // tractable to interpret (blur's 3x full fusion passes; a pyramid's
  // 4^depth does not).
  constexpr int64_t MaxInlineAmplification = 32;
  auto SiteCount = [this](const std::string &Name) {
    auto It = MaxConsumerSites.find(Name);
    return It == MaxConsumerSites.end() ? int64_t(1)
                                        : int64_t(std::max(1, It->second));
  };
  // Demotes inline genes (in realization order) once the cumulative
  // amplification bound is exceeded.
  auto CapInlining = [&](Genome &G) {
    int64_t Amp = 1;
    for (size_t I = 0; I < Order.size(); ++I) {
      FuncGene &Gene = G.Genes[I];
      if (Gene.Call != FuncGene::CallSchedule::Inline)
        continue;
      int64_t Sites = SiteCount(Order[I]);
      if (!canInline(Order[I]) || Amp * Sites > MaxInlineAmplification)
        Gene.Call = FuncGene::CallSchedule::Root;
      else
        Amp *= Sites;
    }
  };

  std::vector<Genome> Sample;
  Sample.push_back(breadthFirstGenome());

  // Maximal (bounded) fusion: inline greedily until the amplification cap.
  Genome Inlined = breadthFirstGenome();
  for (size_t I = 0; I < Order.size(); ++I)
    if (canInline(Order[I]))
      Inlined.Genes[I].Call = FuncGene::CallSchedule::Inline;
  CapInlining(Inlined);
  Sample.push_back(Inlined);

  // Every root stage fully parallelized, tiled, and vectorized.
  Genome Tiled = breadthFirstGenome();
  for (FuncGene &Gene : Tiled.Genes) {
    Gene.Pattern = FuncGene::DomainPattern::TiledVectorized;
    Gene.TileX = 16;
    Gene.TileY = 8;
    Gene.VecWidth = 4;
  }
  Sample.push_back(Tiled);

  // Every root stage vectorized along x.
  Genome Vectorized = breadthFirstGenome();
  for (FuncGene &Gene : Vectorized.Genes) {
    Gene.Pattern = FuncGene::DomainPattern::VectorizedX;
    Gene.VecWidth = 8;
  }
  Sample.push_back(Vectorized);

  // Sliding window: fuse into the consumer's scanlines, storing at root,
  // wherever a unique consumer exists.
  Genome Sliding = breadthFirstGenome();
  for (size_t I = 0; I < Order.size(); ++I)
    if (canFuse(Order[I])) {
      Sliding.Genes[I].Call = FuncGene::CallSchedule::FuseIntoConsumer;
      Sliding.Genes[I].SlideScanlines = true;
    }
  Sample.push_back(Sliding);

  std::mt19937 Rng(Seed);
  while (int(Sample.size()) < Count)
    Sample.push_back(Sample.size() % 2 ? randomGenome(Rng)
                                       : reasonableGenome(Rng));
  if (int(Sample.size()) > Count)
    Sample.resize(size_t(Count));

  // Clamp the randomized constants so every sampled schedule is valid on
  // any frame whose dimensions are multiples of 16 (split factors must
  // divide the output extent; the autotuner proper explores larger tiles
  // against its own frame size), and apply the same inline-amplification
  // cap to the random genomes.
  for (Genome &G : Sample) {
    for (FuncGene &Gene : G.Genes) {
      Gene.TileX = std::min(Gene.TileX, 16);
      Gene.TileY = std::min(Gene.TileY, 16);
      Gene.VecWidth = std::min(Gene.VecWidth, 8);
    }
    CapInlining(G);
  }
  return Sample;
}

Genome ScheduleSpace::reasonableGenome(std::mt19937 &Rng) const {
  Genome G = breadthFirstGenome();
  // "a weighted coin that has fixed weight from zero to one depending on
  // the individual" (paper section 5).
  double TileWeight = unitRand(Rng);
  for (size_t I = 0; I < Order.size(); ++I) {
    const std::string &Name = Order[I];
    FuncGene &Gene = G.Genes[I];
    // Inline pointwise stages (footprint one).
    if (canInline(Name) && unitRand(Rng) < 0.5) {
      Gene.Call = FuncGene::CallSchedule::Inline;
      continue;
    }
    Gene.Call = FuncGene::CallSchedule::Root;
    Gene.Pattern = unitRand(Rng) < TileWeight
                       ? FuncGene::DomainPattern::TiledVectorized
                       : FuncGene::DomainPattern::ParallelOuter;
    Gene.TileX = pickFrom(TileSizes, 4, Rng);
    Gene.TileY = pickFrom(TileSizes, 4, Rng);
    Gene.VecWidth = pickFrom(VecWidths, 2, Rng);
  }
  return G;
}

void ScheduleSpace::mutate(Genome &G, std::mt19937 &Rng) const {
  internal_assert(G.Genes.size() == Order.size());
  size_t Victim =
      std::uniform_int_distribution<size_t>(0, Order.size() - 1)(Rng);
  FuncGene &Gene = G.Genes[Victim];
  const std::string &Name = Order[Victim];

  // The imaging-specific rules get higher probability (paper section 5).
  double Roll = unitRand(Rng);
  if (Roll < 0.25) {
    // Loop fusion rule: schedule this stage fully parallelized and tiled,
    // then fuse callees into it recursively until a coin flip fails.
    Gene.Call = Name == Output.name() ? Gene.Call
                                      : FuncGene::CallSchedule::Root;
    Gene.Pattern = FuncGene::DomainPattern::TiledVectorized;
    std::string Cursor = Name;
    while (unitRand(Rng) < 0.5) {
      // Find a producer of Cursor with Cursor as unique consumer.
      std::string Producer;
      for (const auto &[Child, Parent] : UniqueConsumer)
        if (Parent == Cursor) {
          Producer = Child;
          break;
        }
      if (Producer.empty())
        break;
      for (size_t I = 0; I < Order.size(); ++I)
        if (Order[I] == Producer && canFuse(Producer)) {
          G.Genes[I].Call = FuncGene::CallSchedule::FuseIntoConsumer;
          G.Genes[I].Pattern = FuncGene::DomainPattern::VectorizedX;
          G.Genes[I].SlideScanlines = false;
        }
      Cursor = Producer;
    }
    return;
  }
  if (Roll < 0.5) {
    // Template rule: one of the paper's three common patterns.
    int T = std::uniform_int_distribution<int>(0, 2)(Rng);
    if (T == 0 && canFuse(Name)) {
      Gene.Call = FuncGene::CallSchedule::FuseIntoConsumer;
      Gene.Pattern = FuncGene::DomainPattern::VectorizedX;
    } else if (T == 1) {
      if (Name != Output.name())
        Gene.Call = FuncGene::CallSchedule::Root;
      Gene.Pattern = FuncGene::DomainPattern::TiledVectorized;
    } else {
      if (Name != Output.name())
        Gene.Call = FuncGene::CallSchedule::Root;
      Gene.Pattern = FuncGene::DomainPattern::ParallelYVecX;
    }
    return;
  }
  if (Roll < 0.6) {
    // Randomize constants.
    Gene.TileX = pickFrom(TileSizes, 4, Rng);
    Gene.TileY = pickFrom(TileSizes, 4, Rng);
    Gene.VecWidth = pickFrom(VecWidths, 2, Rng);
    return;
  }
  if (Roll < 0.7) {
    // Replace with a fresh random gene.
    Gene = randomGene(Name, Rng);
    return;
  }
  if (Roll < 0.8) {
    // Copy another function's gene (re-validated below).
    size_t Source =
        std::uniform_int_distribution<size_t>(0, Order.size() - 1)(Rng);
    Gene = G.Genes[Source];
  } else if (Roll < 0.9) {
    // Remove a transformation: revert the domain pattern.
    Gene.Pattern = FuncGene::DomainPattern::Simple;
  } else {
    // Add/replace a transformation.
    Gene.Pattern = unitRand(Rng) < 0.5
                       ? FuncGene::DomainPattern::VectorizedX
                       : FuncGene::DomainPattern::ParallelOuter;
  }
  // Re-validate the call schedule after generic edits.
  if (Gene.Call == FuncGene::CallSchedule::Inline && !canInline(Name))
    Gene.Call = FuncGene::CallSchedule::Root;
  if (Gene.Call == FuncGene::CallSchedule::FuseIntoConsumer &&
      !canFuse(Name))
    Gene.Call = FuncGene::CallSchedule::Root;
}

Genome ScheduleSpace::crossover(const Genome &A, const Genome &B,
                                std::mt19937 &Rng) const {
  internal_assert(A.Genes.size() == B.Genes.size());
  size_t N = A.Genes.size();
  size_t P1 = std::uniform_int_distribution<size_t>(0, N)(Rng);
  size_t P2 = std::uniform_int_distribution<size_t>(0, N)(Rng);
  if (P1 > P2)
    std::swap(P1, P2);
  Genome Child = A;
  for (size_t I = P1; I < P2; ++I)
    Child.Genes[I] = B.Genes[I];
  return Child;
}

void ScheduleSpace::apply(const Genome &G) const {
  internal_assert(G.Genes.size() == Order.size());
  // First pass: reset and record which stages end up inline.
  std::map<std::string, const FuncGene *> GeneOf;
  for (size_t I = 0; I < Order.size(); ++I) {
    Function F = Env.at(Order[I]);
    F.resetSchedule();
    GeneOf[Order[I]] = &G.Genes[I];
  }

  for (size_t I = 0; I < Order.size(); ++I) {
    const std::string &Name = Order[I];
    const FuncGene &Gene = G.Genes[I];
    Function FnHandle = Env.at(Name);
    Func F(FnHandle);
    bool IsOutput = Name == Output.name();

    FuncGene::CallSchedule Call = Gene.Call;
    if (IsOutput)
      Call = FuncGene::CallSchedule::Root;
    if (Call == FuncGene::CallSchedule::Inline && !canInline(Name))
      Call = FuncGene::CallSchedule::Root;
    if (Call == FuncGene::CallSchedule::FuseIntoConsumer && !canFuse(Name))
      Call = FuncGene::CallSchedule::Root;
    // Fusing into an inline consumer is impossible; promote to root.
    if (Call == FuncGene::CallSchedule::FuseIntoConsumer) {
      const std::string &Consumer = UniqueConsumer.at(Name);
      const FuncGene *CG = GeneOf.at(Consumer);
      bool ConsumerInline =
          CG->Call == FuncGene::CallSchedule::Inline &&
          Consumer != Output.name() &&
          !Env.at(Consumer).hasUpdateDefinition();
      if (ConsumerInline)
        Call = FuncGene::CallSchedule::Root;
    }

    if (Call == FuncGene::CallSchedule::Inline)
      continue; // the default schedule is inline

    // Domain pattern. Dimension names: innermost pure dim is "x-like".
    const std::vector<std::string> &Args = FnHandle.args();
    std::string XName = Args.empty() ? "" : Args[0];
    std::string YName = Args.size() > 1 ? Args[1] : "";
    bool TwoD = Args.size() >= 2;

    if (Call == FuncGene::CallSchedule::Root)
      F.computeRoot();

    switch (Gene.Pattern) {
    case FuncGene::DomainPattern::Simple:
      break;
    case FuncGene::DomainPattern::ParallelOuter: {
      Dim &Outer = FnHandle.schedule().Dims.front();
      if (!Outer.IsRVar)
        Outer.Kind = ForType::Parallel;
      break;
    }
    case FuncGene::DomainPattern::ParallelYVecX:
      if (TwoD)
        F.parallel(Var(YName));
      // Only vectorize the output's x when the split divides cleanly.
      if (!IsOutput || Gene.VecWidth <= 8)
        F.vectorize(Var(XName), Gene.VecWidth);
      break;
    case FuncGene::DomainPattern::VectorizedX:
      F.vectorize(Var(XName), Gene.VecWidth);
      break;
    case FuncGene::DomainPattern::TiledVectorized:
      if (TwoD) {
        Var X(XName), Y(YName), XO(XName + "$to"), YO(YName + "$to"),
            XI(XName + "$ti"), YI(YName + "$ti");
        F.tile(X, Y, XO, YO, XI, YI, Gene.TileX, Gene.TileY);
        if (Gene.VecWidth <= Gene.TileX)
          F.vectorize(XI, Gene.VecWidth);
        F.parallel(YO);
      } else {
        F.vectorize(Var(XName), Gene.VecWidth);
      }
      break;
    case FuncGene::DomainPattern::GpuTiled:
      if (TwoD) {
        Var X(XName), Y(YName), BX(XName + "$b"), BY(YName + "$b"),
            TX(XName + "$t"), TY(YName + "$t");
        F.gpuTile(X, Y, BX, BY, TX, TY, Gene.TileX, Gene.TileY);
      }
      break;
    }

    if (Call == FuncGene::CallSchedule::FuseIntoConsumer) {
      const std::string &Consumer = UniqueConsumer.at(Name);
      const FuncGene *CG = GeneOf.at(Consumer);
      Function ConsumerFn = Env.at(Consumer);
      Func CF(ConsumerFn);
      const std::vector<std::string> &CArgs = ConsumerFn.args();
      bool ConsumerTiled =
          CG->Pattern == FuncGene::DomainPattern::TiledVectorized &&
          CArgs.size() >= 2 &&
          (CG->Call != FuncGene::CallSchedule::Inline ||
           Consumer == Output.name());
      if (ConsumerTiled) {
        // Compute within the consumer's tiles.
        F.computeAt(CF, Var(CArgs[0] + "$to"));
      } else if (CArgs.size() >= 2 && Gene.SlideScanlines &&
                 CG->Pattern == FuncGene::DomainPattern::Simple) {
        // Sliding window over the consumer's scanlines.
        F.storeRoot().computeAt(CF, Var(CArgs[1]));
      } else if (CArgs.size() >= 2 &&
                 (CG->Pattern == FuncGene::DomainPattern::Simple ||
                  CG->Pattern == FuncGene::DomainPattern::VectorizedX)) {
        F.computeAt(CF, Var(CArgs[1]));
      } else {
        // No safe anchor loop: fall back to root.
        F.computeRoot();
      }
    }
  }
}

std::string ScheduleSpace::describe(const Genome &G) const {
  std::ostringstream OS;
  for (size_t I = 0; I < Order.size(); ++I) {
    const FuncGene &Gene = G.Genes[I];
    OS << Order[I] << ":";
    switch (Gene.Call) {
    case FuncGene::CallSchedule::Inline:
      OS << "inline";
      break;
    case FuncGene::CallSchedule::Root:
      OS << "root";
      break;
    case FuncGene::CallSchedule::FuseIntoConsumer:
      OS << "fused";
      break;
    }
    switch (Gene.Pattern) {
    case FuncGene::DomainPattern::Simple:
      break;
    case FuncGene::DomainPattern::ParallelOuter:
      OS << "+par";
      break;
    case FuncGene::DomainPattern::ParallelYVecX:
      OS << "+parYvecX" << Gene.VecWidth;
      break;
    case FuncGene::DomainPattern::VectorizedX:
      OS << "+vec" << Gene.VecWidth;
      break;
    case FuncGene::DomainPattern::TiledVectorized:
      OS << "+tile" << Gene.TileX << "x" << Gene.TileY << "v"
         << Gene.VecWidth;
      break;
    case FuncGene::DomainPattern::GpuTiled:
      OS << "+gpu" << Gene.TileX << "x" << Gene.TileY;
      break;
    }
    OS << " ";
  }
  return OS.str();
}
