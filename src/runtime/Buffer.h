//===-- runtime/Buffer.h - Image buffers ------------------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete image storage used at pipeline boundaries. RawBuffer is the
/// type-erased descriptor (base pointer + per-dimension min/extent/stride)
/// that compiled pipelines consume; Buffer<T> is the typed owner used by
/// applications, examples, and tests. The innermost dimension always has
/// stride 1 (scanline layout, paper section 4.4).
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_RUNTIME_BUFFER_H
#define HALIDE_RUNTIME_BUFFER_H

#include "ir/IROperators.h"
#include "ir/Type.h"

#include <cstring>
#include <memory>
#include <vector>

namespace halide {

/// Maximum buffer rank supported by the runtime ABI.
constexpr int MaxBufferDims = 4;

/// Geometry of one buffer dimension.
struct BufferDim {
  int32_t Min = 0;
  int32_t Extent = 0;
  int32_t Stride = 0;
};

/// Type-erased buffer descriptor: what compiled pipelines receive. Owner
/// (when set) keeps the underlying storage alive for the descriptor's
/// lifetime, so bindings can outlive the typed Buffer that created them.
struct RawBuffer {
  void *Host = nullptr;
  Type ElemType;
  int Dimensions = 0;
  BufferDim Dim[MaxBufferDims];
  std::shared_ptr<void> Owner;

  bool defined() const { return Host != nullptr; }

  /// Total number of elements covered by the extents.
  int64_t numElements() const {
    int64_t N = 1;
    for (int I = 0; I < Dimensions; ++I)
      N *= Dim[I].Extent;
    return N;
  }

  /// Flat element offset of a coordinate (which must be in bounds).
  int64_t offsetOf(const int *Coords, int NumCoords) const {
    internal_assert(NumCoords == Dimensions) << "coordinate rank mismatch";
    int64_t Off = 0;
    for (int I = 0; I < Dimensions; ++I) {
      internal_assert(Coords[I] >= Dim[I].Min &&
                      Coords[I] < Dim[I].Min + Dim[I].Extent)
          << "buffer access out of bounds in dim " << I << ": " << Coords[I];
      Off += int64_t(Coords[I] - Dim[I].Min) * Dim[I].Stride;
    }
    return Off;
  }
};

/// A typed, owning, reference-counted image buffer.
template <typename T> class Buffer {
public:
  Buffer() = default;

  /// Allocates a buffer of the given size with zeroed contents and dense
  /// scanline layout (x stride 1, then y, then c, ...).
  explicit Buffer(int W) { allocate({W}); }
  Buffer(int W, int H) { allocate({W, H}); }
  Buffer(int W, int H, int C) { allocate({W, H, C}); }
  Buffer(int W, int H, int C, int K) { allocate({W, H, C, K}); }

  bool defined() const { return Storage != nullptr; }
  int dimensions() const { return Raw.Dimensions; }
  int width() const { return Raw.Dimensions > 0 ? Raw.Dim[0].Extent : 0; }
  int height() const { return Raw.Dimensions > 1 ? Raw.Dim[1].Extent : 1; }
  int channels() const { return Raw.Dimensions > 2 ? Raw.Dim[2].Extent : 1; }
  int minCoord(int D) const { return Raw.Dim[D].Min; }
  int extent(int D) const { return Raw.Dim[D].Extent; }

  /// Sets the logical minimum coordinate of each dimension (for computing
  /// output sub-regions; extents are unchanged).
  void setMin(int X, int Y = 0) {
    Raw.Dim[0].Min = X;
    if (Raw.Dimensions > 1)
      Raw.Dim[1].Min = Y;
  }

  T *data() { return Storage->data(); }
  const T *data() const { return Storage->data(); }

  T &operator()(int X) { return at({X}); }
  T &operator()(int X, int Y) { return at({X, Y}); }
  T &operator()(int X, int Y, int C) { return at({X, Y, C}); }
  T &operator()(int X, int Y, int C, int K) { return at({X, Y, C, K}); }
  const T &operator()(int X) const { return at({X}); }
  const T &operator()(int X, int Y) const { return at({X, Y}); }
  const T &operator()(int X, int Y, int C) const { return at({X, Y, C}); }
  const T &operator()(int X, int Y, int C, int K) const {
    return at({X, Y, C, K});
  }

  /// The type-erased view handed to compiled pipelines.
  const RawBuffer &raw() const { return Raw; }
  RawBuffer &raw() { return Raw; }

  /// Applies F(coords...) to every site, in planar order.
  template <typename Fn> void fill(Fn &&F) {
    int Coords[MaxBufferDims] = {0, 0, 0, 0};
    fillDim(dimensions() - 1, Coords, F);
  }

  /// Sets every element to a constant.
  void fillConstant(T Value) {
    for (T &E : *Storage)
      E = Value;
  }

private:
  void allocate(std::initializer_list<int> Extents) {
    internal_assert(Extents.size() >= 1 && Extents.size() <= MaxBufferDims)
        << "buffers must have 1-4 dimensions";
    Raw.Dimensions = int(Extents.size());
    Raw.ElemType = typeOf<T>();
    int64_t Count = 1;
    int I = 0;
    for (int E : Extents) {
      Raw.Dim[I].Min = 0;
      Raw.Dim[I].Extent = E;
      Raw.Dim[I].Stride = int32_t(Count);
      Count *= E;
      ++I;
    }
    Storage = std::make_shared<std::vector<T>>(size_t(Count), T{});
    Raw.Host = Storage->data();
    Raw.Owner = Storage;
  }

  T &at(std::initializer_list<int> Coords) const {
    int C[MaxBufferDims];
    int I = 0;
    for (int V : Coords)
      C[I++] = V;
    return (*Storage)[size_t(Raw.offsetOf(C, int(Coords.size())))];
  }

  RawBuffer Raw;
  std::shared_ptr<std::vector<T>> Storage;

  template <typename Fn> void fillDim(int D, int *Coords, Fn &&F) {
    if (D < 0) {
      applyFill(Coords, F);
      return;
    }
    for (int I = 0; I < Raw.Dim[D].Extent; ++I) {
      Coords[D] = Raw.Dim[D].Min + I;
      fillDim(D - 1, Coords, F);
    }
  }

  template <typename Fn> void applyFill(int *Coords, Fn &&F) {
    T &Site = (*Storage)[size_t(Raw.offsetOf(Coords, Raw.Dimensions))];
    if constexpr (std::is_invocable_v<Fn, int, int, int, int>)
      Site = T(F(Coords[0], Coords[1], Coords[2], Coords[3]));
    else if constexpr (std::is_invocable_v<Fn, int, int, int>)
      Site = T(F(Coords[0], Coords[1], Coords[2]));
    else if constexpr (std::is_invocable_v<Fn, int, int>)
      Site = T(F(Coords[0], Coords[1]));
    else
      Site = T(F(Coords[0]));
  }
};

} // namespace halide

#endif // HALIDE_RUNTIME_BUFFER_H
