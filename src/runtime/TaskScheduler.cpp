//===-- runtime/TaskScheduler.cpp -----------------------------------------===//

#include "runtime/TaskScheduler.h"

#include "observe/Profiler.h"
#include "observe/TraceRecorder.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

using namespace halide;

namespace halide {

/// Shared completion state of one async job (the handle's pointee).
struct AsyncJobState {
  std::atomic<bool> Done{false};
};

} // namespace halide

namespace {

/// One queued async job: the closure plus its completion state.
struct AsyncTask {
  std::function<void()> Fn;
  std::shared_ptr<AsyncJobState> State;
};

/// One parallel loop in flight. Lives on the submitter's stack: every
/// chunk completes before parallelForChunks returns, so raw pointers to
/// it in queued work items cannot dangle.
struct Job {
  TaskChunkFn Body = nullptr;
  void *Closure = nullptr;
  std::atomic<int> PendingChunks{0};
  /// The submitting thread's profiler stage at submission, or -1. Workers
  /// re-enter it as a chunk scope (no invocation bump) so threaded runs
  /// charge stage time without double-counting invocations.
  int ProfileStage = -1;
};

/// A chunk of some job, sitting in a deque until a thread runs it.
struct WorkItem {
  Job *TheJob = nullptr;
  int64_t Begin = 0, End = 0;
  int Chunk = 0;
  int Origin = 0; ///< deque index it was pushed to; != executor => stolen
};

/// Runs one chunk body with the submitter's profiler stage extended onto
/// this thread and (when tracing) a "task" span recording the subrange.
/// Shared by queued-chunk execution and the serial inline path so chunks
/// are observable regardless of how they were dispatched.
void runChunkBody(TaskChunkFn Body, void *Closure, int64_t Begin,
                  int64_t End, int Chunk, int Stage, bool Stolen) {
  const bool EnterStage = Stage >= 0 && profilerCurrentStage() != Stage;
  const int64_t T0 = traceActive() ? traceNowNs() : 0;
  if (EnterStage)
    profilerEnterChunk(Stage);
  Body(Begin, End, Chunk, Closure);
  if (EnterStage)
    profilerExit(Stage);
  if (T0) {
    std::vector<TraceArg> Args;
    Args.emplace_back("begin", Begin);
    Args.emplace_back("end", End);
    Args.emplace_back("chunk", int64_t(Chunk));
    Args.emplace_back("stolen", int64_t(Stolen ? 1 : 0));
    traceComplete("task", "chunk", T0, traceNowNs() - T0, std::move(Args));
  }
}

/// A per-worker double-ended queue. The owner pushes and pops at the
/// bottom (LIFO — nested loops drain depth-first, like the serial
/// execution order); thieves take from the top (FIFO — they grab the
/// oldest, typically largest-remaining work). A plain mutex per deque is
/// uncontended in the common case and keeps the structure obviously
/// correct under TSan; the loop chunks pipelines generate are far too
/// coarse for lock-free pop latency to matter.
class WorkDeque {
public:
  void pushBottom(const WorkItem &W) {
    std::lock_guard<std::mutex> Lock(M);
    Items.push_back(W);
  }
  bool popBottom(WorkItem *W) {
    std::lock_guard<std::mutex> Lock(M);
    if (Items.empty())
      return false;
    *W = Items.back();
    Items.pop_back();
    return true;
  }
  bool stealTop(WorkItem *W) {
    std::lock_guard<std::mutex> Lock(M);
    if (Items.empty())
      return false;
    *W = Items.front();
    Items.pop_front();
    return true;
  }

private:
  std::mutex M;
  std::deque<WorkItem> Items;
};

class Scheduler {
public:
  static Scheduler &instance() {
    static Scheduler S;
    return S;
  }

  int threads() {
    std::lock_guard<std::mutex> Lock(StateMutex);
    return TotalThreads;
  }

  int run(int64_t Min, int64_t Extent, int MaxTasks, TaskChunkFn Body,
          void *Closure);
  void resize(int Threads);

  TaskSchedulerStats stats() {
    TaskSchedulerStats S;
    S.Threads = threads();
    S.Steals = Steals.load(std::memory_order_relaxed);
    S.ChunksExecuted = ChunksExecuted.load(std::memory_order_relaxed);
    S.AsyncJobsExecuted = AsyncJobsExecuted.load(std::memory_order_relaxed);
    S.PeakQueueDepth = PeakQueueDepth.load(std::memory_order_relaxed);
    return S;
  }

  std::shared_ptr<AsyncJobState> submitAsync(std::function<void()> Fn,
                                             int Priority);
  void waitAsync(const std::shared_ptr<AsyncJobState> &State);

  static thread_local int SlotIndex; ///< deque index; -1 = external thread

private:
  Scheduler() { start(0); }
  ~Scheduler() { stopWorkers(); }

  void start(int Threads) {
    if (Threads <= 0) {
      if (const char *Env = std::getenv("HALIDE_NUM_THREADS"))
        Threads = std::atoi(Env);
      if (Threads <= 0)
        Threads = int(std::thread::hardware_concurrency());
    }
    if (Threads < 1)
      Threads = 1;
    TotalThreads = Threads;
    // Deques: one per spawned worker, plus one shared by all external
    // (non-worker) submitters.
    Deques.clear();
    for (int I = 0; I < Threads; ++I)
      Deques.push_back(std::make_unique<WorkDeque>());
    Stop = false;
    for (int I = 0; I < Threads - 1; ++I)
      Workers.emplace_back([this, I] { workerLoop(I); });
  }

  /// Joins every worker. Caller must guarantee no job is in flight.
  void stopWorkers() {
    {
      std::lock_guard<std::mutex> Lock(StateMutex);
      Stop = true;
      WorkCV.notify_all();
    }
    for (std::thread &W : Workers)
      W.join();
    Workers.clear();
  }

  void workerLoop(int Index) {
    SlotIndex = Index;
    // Sticky lane name: traces started later still label worker lanes.
    traceSetThreadName("worker " + std::to_string(Index));
    WorkItem W;
    AsyncTask AT;
    while (true) {
      // Chunk work from loops already in flight comes first: finishing
      // running frames beats admitting queued ones.
      if (Deques[size_t(Index)]->popBottom(&W) || stealAny(Index, &W)) {
        execute(W);
        continue;
      }
      if (takeAsync(&AT)) {
        runAsyncTask(AT);
        continue;
      }
      std::unique_lock<std::mutex> Lock(StateMutex);
      WorkCV.wait(Lock, [&] {
        return Stop || QueuedItems.load() > 0 || !AsyncQueue.empty();
      });
      if (Stop)
        return;
    }
  }

  /// Pops the highest-priority queued async job (FIFO within a priority).
  bool takeAsync(AsyncTask *T) {
    std::lock_guard<std::mutex> Lock(StateMutex);
    if (AsyncQueue.empty())
      return false;
    auto It = AsyncQueue.begin();
    *T = std::move(It->second);
    AsyncQueue.erase(It);
    return true;
  }

  /// Runs one async job to completion on this thread and publishes the
  /// result. The job's parallel loops count as nested submissions (InTask
  /// is set), so they skip the top-level gate — the job itself is the unit
  /// resize() waits on, via ActiveJobs.
  void runAsyncTask(AsyncTask &T) {
    AsyncJobsExecuted.fetch_add(1, std::memory_order_relaxed);
    const bool WasInTask = InTask;
    InTask = true;
    T.Fn();
    InTask = WasInTask;
    T.Fn = nullptr; // drop the closure before signalling completion
    std::lock_guard<std::mutex> Lock(StateMutex);
    T.State->Done.store(true);
    WorkCV.notify_all();
    if (--ActiveJobs == 0)
      ConfigCV.notify_all();
    else if (Reconfiguring)
      ConfigCV.notify_all(); // a draining resize re-checks the queue
  }

  /// Scans every deque once, starting after \p Home's (external threads
  /// share the last deque). The scan includes Home's own deque last: its
  /// bottom was already tried, but another thread may have pushed since.
  bool stealAny(int Home, WorkItem *W) {
    const int N = int(Deques.size());
    const int Start = Home >= 0 ? Home : N - 1;
    for (int Off = 1; Off <= N; ++Off) {
      if (Deques[size_t((Start + Off) % N)]->stealTop(W))
        return true;
    }
    return false;
  }

  void execute(const WorkItem &W) {
    QueuedItems.fetch_sub(1);
    ChunksExecuted.fetch_add(1, std::memory_order_relaxed);
    const int Home =
        SlotIndex >= 0 ? SlotIndex : int(Deques.size()) - 1;
    const bool Stolen = W.Origin != Home;
    if (Stolen)
      Steals.fetch_add(1, std::memory_order_relaxed);
    const bool WasInTask = InTask;
    InTask = true;
    runChunkBody(W.TheJob->Body, W.TheJob->Closure, W.Begin, W.End,
                 W.Chunk, W.TheJob->ProfileStage, Stolen);
    InTask = WasInTask;
    if (W.TheJob->PendingChunks.fetch_sub(1) == 1) {
      // Last chunk: wake the submitter (and anyone else re-checking).
      std::lock_guard<std::mutex> Lock(StateMutex);
      WorkCV.notify_all();
    }
  }

  std::vector<std::unique_ptr<WorkDeque>> Deques; ///< workers + external
  std::vector<std::thread> Workers;
  std::mutex StateMutex;
  std::condition_variable WorkCV;   ///< work queued or a job completed
  std::condition_variable ConfigCV; ///< resize gate handshake
  std::atomic<int> QueuedItems{0};  ///< items sitting in deques
  // Lifetime observability counters (taskSchedulerStats()); monotonic,
  // never reset by resize().
  std::atomic<int64_t> Steals{0};
  std::atomic<int64_t> ChunksExecuted{0};
  std::atomic<int64_t> AsyncJobsExecuted{0};
  std::atomic<int64_t> PeakQueueDepth{0};
  /// Queued async jobs, ordered by (-Priority, submission sequence): the
  /// map's first entry is always the next job to run.
  std::map<std::pair<int, uint64_t>, AsyncTask> AsyncQueue;
  uint64_t AsyncSeq = 0;
  int ActiveJobs = 0; ///< top-level loops + async jobs in flight or queued
  int TotalThreads = 1;
  bool Stop = false;
  bool Reconfiguring = false;

  static thread_local bool InTask;

  friend bool halide::inTaskWorker();
};

thread_local int Scheduler::SlotIndex = -1;
thread_local bool Scheduler::InTask = false;

int Scheduler::run(int64_t Min, int64_t Extent, int MaxTasks,
                   TaskChunkFn Body, void *Closure) {
  if (Extent <= 0)
    return 0;

  const bool TopLevel = SlotIndex < 0 && !InTask;
  int PoolThreads;
  if (TopLevel) {
    // Gate: hold new top-level loops while the pool is being rebuilt, and
    // count them so resize() can wait for quiescence. Nested submissions
    // skip the gate — they are already covered by their root loop's count
    // (and taking it could deadlock against a waiting resize).
    std::unique_lock<std::mutex> Lock(StateMutex);
    ConfigCV.wait(Lock, [&] { return !Reconfiguring; });
    ++ActiveJobs;
    PoolThreads = TotalThreads;
  } else {
    std::lock_guard<std::mutex> Lock(StateMutex);
    PoolThreads = TotalThreads;
  }

  if (MaxTasks <= 0)
    MaxTasks = PoolThreads * 4;
  const int NumChunks = int(Extent < MaxTasks ? Extent : MaxTasks);

  if (NumChunks == 1 || PoolThreads == 1) {
    // Inline execution still honors the partition — callers size
    // per-chunk result slots from it, so every chunk index must fire.
    // The submitting thread's stage is already current, so the chunk
    // helper only adds the trace span here.
    const bool WasInTask = InTask;
    InTask = true;
    for (int C = 0; C < NumChunks; ++C) {
      ChunksExecuted.fetch_add(1, std::memory_order_relaxed);
      runChunkBody(Body, Closure, Min + Extent * C / NumChunks,
                   Min + Extent * (C + 1) / NumChunks, C, /*Stage=*/-1,
                   /*Stolen=*/false);
    }
    InTask = WasInTask;
  } else {
    Job TheJob;
    TheJob.Body = Body;
    TheJob.Closure = Closure;
    TheJob.PendingChunks.store(NumChunks);
    TheJob.ProfileStage = profilerCurrentStage();

    const int MineIdx = SlotIndex >= 0 ? SlotIndex : int(Deques.size()) - 1;
    WorkDeque &Mine = *Deques[size_t(MineIdx)];
    // Deterministic balanced partition: chunk C covers
    // [Extent*C/NumChunks, Extent*(C+1)/NumChunks); no chunk is empty
    // because NumChunks <= Extent.
    for (int C = 0; C < NumChunks; ++C) {
      WorkItem W;
      W.TheJob = &TheJob;
      W.Begin = Min + Extent * C / NumChunks;
      W.End = Min + Extent * (C + 1) / NumChunks;
      W.Chunk = C;
      W.Origin = MineIdx;
      Mine.pushBottom(W);
    }
    const int64_t Depth = QueuedItems.fetch_add(NumChunks) + NumChunks;
    int64_t Peak = PeakQueueDepth.load(std::memory_order_relaxed);
    while (Depth > Peak && !PeakQueueDepth.compare_exchange_weak(
                               Peak, Depth, std::memory_order_relaxed)) {
    }
    {
      std::lock_guard<std::mutex> Lock(StateMutex);
      WorkCV.notify_all();
    }

    // Participate: drain our own deque first (depth-first — in the nested
    // case that is this loop's chunks before the enclosing loop's), then
    // steal anything from anyone rather than going idle while the last
    // chunks run elsewhere.
    const int Home = SlotIndex;
    WorkItem W;
    while (TheJob.PendingChunks.load() > 0) {
      if ((Home >= 0 ? Deques[size_t(Home)]->popBottom(&W)
                     : Deques.back()->popBottom(&W)) ||
          stealAny(Home, &W)) {
        execute(W);
        continue;
      }
      std::unique_lock<std::mutex> Lock(StateMutex);
      WorkCV.wait(Lock, [&] {
        return QueuedItems.load() > 0 || TheJob.PendingChunks.load() == 0;
      });
    }
  }

  if (TopLevel) {
    std::lock_guard<std::mutex> Lock(StateMutex);
    if (--ActiveJobs == 0)
      ConfigCV.notify_all();
  }
  return NumChunks;
}

std::shared_ptr<AsyncJobState> Scheduler::submitAsync(std::function<void()> Fn,
                                                      int Priority) {
  AsyncTask T;
  T.Fn = std::move(Fn);
  T.State = std::make_shared<AsyncJobState>();
  std::shared_ptr<AsyncJobState> Handle = T.State;
  {
    std::unique_lock<std::mutex> Lock(StateMutex);
    // Hold new submissions at the resize gate, like top-level loops — but
    // only for external threads; a submission from inside a task is
    // already covered by its enclosing job's ActiveJobs count, and gating
    // it could deadlock against a resize waiting for that very job.
    if (SlotIndex < 0 && !InTask)
      ConfigCV.wait(Lock, [&] { return !Reconfiguring; });
    ++ActiveJobs; // queued jobs count as in flight until they complete
    AsyncQueue.emplace(std::make_pair(-Priority, AsyncSeq++), std::move(T));
    WorkCV.notify_all();
    ConfigCV.notify_all(); // a draining resize must see the new job
  }
  return Handle;
}

void Scheduler::waitAsync(const std::shared_ptr<AsyncJobState> &State) {
  const int Home = SlotIndex;
  WorkItem W;
  AsyncTask AT;
  while (!State->Done.load()) {
    // Help instead of idling: chunk work first (it makes running frames
    // finish, possibly the very one we wait for), then queued jobs. This
    // is what makes submit-then-wait safe on a one-thread pool.
    if ((Home >= 0 ? Deques[size_t(Home)]->popBottom(&W)
                   : Deques.back()->popBottom(&W)) ||
        stealAny(Home, &W)) {
      execute(W);
      continue;
    }
    if (takeAsync(&AT)) {
      runAsyncTask(AT);
      continue;
    }
    std::unique_lock<std::mutex> Lock(StateMutex);
    WorkCV.wait(Lock, [&] {
      return State->Done.load() || QueuedItems.load() > 0 ||
             !AsyncQueue.empty();
    });
  }
}

void Scheduler::resize(int Threads) {
  std::unique_lock<std::mutex> Lock(StateMutex);
  // One resize at a time; wait out any loop that is already running (new
  // top-level loops queue behind the Reconfiguring gate).
  ConfigCV.wait(Lock, [&] { return !Reconfiguring; });
  Reconfiguring = true;
  // Drain in-flight work. Queued async jobs may never be picked up (the
  // workers could all be asleep on a one-thread pool, where there are no
  // workers at all), so execute them here rather than waiting forever.
  while (ActiveJobs != 0) {
    if (!AsyncQueue.empty()) {
      auto It = AsyncQueue.begin();
      AsyncTask T = std::move(It->second);
      AsyncQueue.erase(It);
      Lock.unlock();
      runAsyncTask(T);
      Lock.lock();
      continue;
    }
    ConfigCV.wait(Lock,
                  [&] { return ActiveJobs == 0 || !AsyncQueue.empty(); });
  }
  Lock.unlock();
  stopWorkers();
  Lock.lock();
  start(Threads);
  Reconfiguring = false;
  ConfigCV.notify_all();
}

} // namespace

int halide::parallelForChunks(int64_t Min, int64_t Extent, int MaxTasks,
                              TaskChunkFn Body, void *Closure) {
  return Scheduler::instance().run(Min, Extent, MaxTasks, Body, Closure);
}

namespace {

struct ForClosure {
  void (*Body)(int32_t, void *);
  void *Closure;
};

void runForChunk(int64_t Begin, int64_t End, int, void *Closure) {
  const ForClosure *F = static_cast<const ForClosure *>(Closure);
  for (int64_t I = Begin; I < End; ++I)
    F->Body(int32_t(I), F->Closure);
}

} // namespace

void halide::parallelFor(int32_t Min, int32_t Extent,
                         void (*Body)(int32_t, void *), void *Closure) {
  ForClosure F{Body, Closure};
  parallelForChunks(Min, Extent, /*MaxTasks=*/0, runForChunk, &F);
}

int halide::taskSchedulerThreads() { return Scheduler::instance().threads(); }

void halide::setTaskSchedulerThreads(int Threads) {
  Scheduler::instance().resize(Threads);
}

TaskSchedulerStats halide::taskSchedulerStats() {
  return Scheduler::instance().stats();
}

bool halide::inTaskWorker() {
  return Scheduler::SlotIndex >= 0 || Scheduler::InTask;
}

bool AsyncJob::done() const {
  return State && State->Done.load();
}

void AsyncJob::wait() const {
  if (State)
    Scheduler::instance().waitAsync(State);
}

AsyncJob halide::submitAsyncJob(std::function<void()> Fn, int Priority) {
  AsyncJob Handle;
  Handle.State = Scheduler::instance().submitAsync(std::move(Fn), Priority);
  return Handle;
}
