//===-- runtime/Tracing.cpp ------------------------------------------------------=//

#include "runtime/Tracing.h"

#include <ostream>
#include <sstream>

using namespace halide;

namespace {

void mapToStream(std::ostream &OS,
                 const std::map<std::string, int64_t> &M) {
  OS << "{";
  bool First = true;
  for (const auto &[Name, Count] : M) {
    OS << (First ? "" : ", ") << Name << ": " << Count;
    First = false;
  }
  OS << "}";
}

void mapToJson(std::ostream &OS, const std::map<std::string, int64_t> &M) {
  OS << "{";
  bool First = true;
  for (const auto &[Name, Count] : M) {
    OS << (First ? "" : ", ") << "\"" << Name << "\": " << Count;
    First = false;
  }
  OS << "}";
}

} // namespace

bool halide::operator==(const ExecutionStats &A, const ExecutionStats &B) {
  return A.StoresPerBuffer == B.StoresPerBuffer &&
         A.LoadsPerBuffer == B.LoadsPerBuffer &&
         A.PeakAllocationBytes == B.PeakAllocationBytes &&
         A.ParallelIterations == B.ParallelIterations &&
         A.GpuKernelLaunches == B.GpuKernelLaunches &&
         A.GpuBlocksExecuted == B.GpuBlocksExecuted;
}

std::ostream &halide::operator<<(std::ostream &OS,
                                 const ExecutionStats &S) {
  OS << "stores=" << S.totalStores() << " peak=" << S.PeakAllocationBytes
     << " span=" << S.ParallelIterations;
  if (S.GpuKernelLaunches)
    OS << " gpu_launches=" << S.GpuKernelLaunches
       << " gpu_blocks=" << S.GpuBlocksExecuted;
  OS << " loads=";
  mapToStream(OS, S.LoadsPerBuffer);
  OS << " stores_per_buffer=";
  mapToStream(OS, S.StoresPerBuffer);
  return OS;
}

std::string ExecutionStats::toJson() const {
  std::ostringstream OS;
  OS << "{\"stores\": ";
  mapToJson(OS, StoresPerBuffer);
  OS << ", \"loads\": ";
  mapToJson(OS, LoadsPerBuffer);
  OS << ", \"peak_allocation_bytes\": " << PeakAllocationBytes
     << ", \"current_allocation_bytes\": " << CurrentAllocationBytes
     << ", \"parallel_iterations\": " << ParallelIterations
     << ", \"max_reuse_distance\": ";
  mapToJson(OS, MaxReuseDistance);
  OS << ", \"gpu_kernel_launches\": " << GpuKernelLaunches
     << ", \"gpu_blocks_executed\": " << GpuBlocksExecuted << "}";
  return OS.str();
}
