//===-- runtime/Tracing.cpp ------------------------------------------------------=//

// ExecutionStats is header-only; this file anchors the translation unit so
// the module appears in the library (and hosts future tracing hooks).

#include "runtime/Tracing.h"
