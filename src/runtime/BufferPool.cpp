//===-- runtime/BufferPool.cpp --------------------------------------------===//

#include "runtime/BufferPool.h"

#include "observe/Profiler.h"
#include "observe/TraceRecorder.h"
#include "support/Util.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

using namespace halide;

namespace {

constexpr int64_t DefaultCapacityBytes = 256ll << 20;

/// Size-class granularity: requests round up to a multiple of the block
/// alignment, so a pipeline whose extents wobble by a few elements between
/// frames still lands in one bucket.
constexpr int64_t BlockAlign = 64;

int64_t roundToClass(int64_t Bytes) {
  if (Bytes <= 0)
    Bytes = 1;
  return (Bytes + BlockAlign - 1) / BlockAlign * BlockAlign;
}

class BufferPool {
public:
  static BufferPool &instance() {
    static BufferPool P;
    return P;
  }

  void *allocate(int64_t Bytes) {
    const int64_t Class = roundToClass(Bytes);
    {
      std::lock_guard<std::mutex> Lock(M);
      auto It = Free.find(Class);
      if (It != Free.end() && !It->second.empty()) {
        void *Ptr = It->second.back();
        It->second.pop_back();
        Held -= Class;
        Live[Ptr] = Class;
        ++Stats.PoolHits;
        Stats.BytesHeld = Held;
        Stats.BytesLive += Class;
        return Ptr;
      }
    }
    void *Ptr = nullptr;
    if (posix_memalign(&Ptr, size_t(BlockAlign), size_t(Class)) != 0)
      return nullptr;
    std::lock_guard<std::mutex> Lock(M);
    Live[Ptr] = Class;
    ++Stats.FreshAllocations;
    Stats.BytesLive += Class;
    return Ptr;
  }

  void release(void *Ptr) {
    if (!Ptr)
      return;
    int64_t Class = 0;
    {
      std::lock_guard<std::mutex> Lock(M);
      auto It = Live.find(Ptr);
      internal_assert(It != Live.end())
          << "bufferPoolFree of a pointer the pool did not allocate";
      Class = It->second;
      Live.erase(It);
      Stats.BytesLive -= Class;
      if (Held + Class <= Capacity) {
        Free[Class].push_back(Ptr);
        Held += Class;
        Stats.BytesHeld = Held;
        return;
      }
      ++Stats.CapacityEvictions;
    }
    free(Ptr);
  }

  void clear() {
    std::vector<void *> ToFree;
    {
      std::lock_guard<std::mutex> Lock(M);
      for (auto &[Class, List] : Free)
        for (void *Ptr : List)
          ToFree.push_back(Ptr);
      Free.clear();
      Held = 0;
      Stats.BytesHeld = 0;
    }
    for (void *Ptr : ToFree)
      free(Ptr);
  }

  void setCapacity(int64_t Bytes) {
    {
      std::lock_guard<std::mutex> Lock(M);
      Capacity = Bytes > 0 ? Bytes : defaultCapacity();
    }
    // Shed inventory above the new cap the simple way: drop it all; the
    // next frames repopulate the buckets they actually use.
    clear();
  }

  BufferPoolStats stats() {
    std::lock_guard<std::mutex> Lock(M);
    return Stats;
  }

private:
  BufferPool() : Capacity(defaultCapacity()) {}
  ~BufferPool() { clear(); }

  static int64_t defaultCapacity() {
    if (const char *Env = std::getenv("HALIDE_BUFFER_POOL_MB")) {
      int64_t Mb = std::atoll(Env);
      if (Mb >= 0)
        return Mb << 20;
    }
    return DefaultCapacityBytes;
  }

  std::mutex M;
  std::map<int64_t, std::vector<void *>> Free; ///< size class -> blocks
  std::unordered_map<void *, int64_t> Live;    ///< handed out -> size class
  int64_t Held = 0;
  int64_t Capacity = 0;
  BufferPoolStats Stats;
};

} // namespace

BufferPoolStats halide::bufferPoolStats() {
  return BufferPool::instance().stats();
}

void halide::clearBufferPool() { BufferPool::instance().clear(); }

void halide::setBufferPoolCapacity(int64_t Bytes) {
  BufferPool::instance().setCapacity(Bytes);
}

void *halide::bufferPoolMalloc(int64_t Bytes) {
  void *Ptr = BufferPool::instance().allocate(Bytes);
  // Attribute to the profiler stage active on this thread, and sample the
  // live-bytes counter into the trace so pool traffic is visible as a
  // chart. Both are single-atomic-load no-ops when observability is off.
  profilerNoteAlloc(Ptr, Bytes);
  if (traceActive())
    traceCounter("pool_bytes_live", bufferPoolStats().BytesLive);
  return Ptr;
}

void halide::bufferPoolFree(void *Ptr) {
  profilerNoteFree(Ptr);
  BufferPool::instance().release(Ptr);
  if (traceActive())
    traceCounter("pool_bytes_live", bufferPoolStats().BytesLive);
}
