//===-- runtime/ThreadPool.h - Task-queue thread pool -----------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel-for runtime of paper section 4.6: parallel loops are
/// lowered to a closure plus a body function taking one iteration index;
/// iterations are enqueued onto a task queue consumed by a persistent
/// thread pool.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_RUNTIME_THREADPOOL_H
#define HALIDE_RUNTIME_THREADPOOL_H

#include <cstdint>

namespace halide {

/// Runs Body(I, Closure) for every I in [Min, Min+Extent), distributing
/// iterations over the pool. Safe to call from within a pool worker
/// (nested parallelism runs the nested loop inline).
void parallelFor(int32_t Min, int32_t Extent,
                 void (*Body)(int32_t, void *), void *Closure);

/// Number of worker threads in the pool.
int threadPoolSize();

/// Overrides the pool size (takes effect for subsequent parallelFor calls;
/// 0 restores the hardware default). Used by benchmarks.
void setThreadPoolSize(int Threads);

} // namespace halide

#endif // HALIDE_RUNTIME_THREADPOOL_H
