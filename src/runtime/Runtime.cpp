//===-- runtime/Runtime.cpp -----------------------------------------------------=//

#include "runtime/Runtime.h"
#include "observe/Profiler.h"
#include "observe/TraceStream.h"
#include "runtime/BufferPool.h"
#include "runtime/GpuSim.h"
#include "runtime/TaskScheduler.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace halide;

bool ParamBindings::lookupScalar(const std::string &Name, double *Out) const {
  auto IntIt = IntScalars.find(Name);
  if (IntIt != IntScalars.end()) {
    *Out = double(IntIt->second);
    return true;
  }
  auto FloatIt = FloatScalars.find(Name);
  if (FloatIt != FloatScalars.end()) {
    *Out = FloatIt->second;
    return true;
  }
  // Buffer metadata: "<buf>.min.<d>" etc.
  for (const char *Suffix : {".min.", ".extent.", ".stride."}) {
    size_t Pos = Name.rfind(Suffix);
    if (Pos == std::string::npos)
      continue;
    auto BufIt = Buffers.find(Name.substr(0, Pos));
    if (BufIt == Buffers.end())
      continue;
    int D = std::atoi(Name.c_str() + Pos + std::strlen(Suffix));
    if (D < 0 || D >= MaxBufferDims)
      return false;
    const BufferDim &Dim = BufIt->second.Dim[D];
    // Dimensions beyond the buffer's rank read as a degenerate [0, 1).
    if (D >= BufIt->second.Dimensions) {
      *Out = (std::strncmp(Suffix, ".extent.", 8) == 0) ? 1 : 0;
      return true;
    }
    if (std::strncmp(Suffix, ".min.", 5) == 0)
      *Out = Dim.Min;
    else if (std::strncmp(Suffix, ".extent.", 8) == 0)
      *Out = Dim.Extent;
    else
      *Out = Dim.Stride;
    return true;
  }
  return false;
}

void *halide::halideMalloc(int64_t Bytes) { return bufferPoolMalloc(Bytes); }

void halide::halideFree(void *Ptr) { bufferPoolFree(Ptr); }

namespace {

void vtableAbort(const char *Message) {
  std::fprintf(stderr, "pipeline aborted: %s\n", Message);
  std::fflush(stderr);
  std::abort();
}

void vtableParFor(int32_t Min, int32_t Extent,
                  void (*Body)(int32_t, void *), void *Closure) {
  parallelFor(Min, Extent, Body, Closure);
}

void vtableGpuLaunch(int32_t Blocks, void (*Body)(int32_t, void *),
                     void *Closure) {
  gpuSim().launch(Blocks, Body, Closure);
}

void vtableProfEnter(int32_t StageId) { profilerEnter(StageId); }

void vtableProfExit(int32_t StageId) { profilerExit(StageId); }

void vtableTraceLoad(int32_t StageId, int32_t TypeCode, int32_t Lanes,
                     const int32_t *Coords, const uint64_t *Bits) {
  traceStreamEmit(StageId, TraceEventKind::TraceLoad, uint8_t(TypeCode),
                  Lanes, Coords, Lanes, Bits);
}

void vtableTraceStore(int32_t StageId, int32_t TypeCode, int32_t Lanes,
                      const int32_t *Coords, const uint64_t *Bits) {
  traceStreamEmit(StageId, TraceEventKind::TraceStore, uint8_t(TypeCode),
                  Lanes, Coords, Lanes, Bits);
}

void vtableTraceBegin(int32_t StageId, int32_t Dims, const int32_t *Extents) {
  traceStreamEmit(StageId, TraceEventKind::TraceBegin, 0, 0, Extents, Dims,
                  nullptr);
}

void vtableTraceEnd(int32_t StageId) {
  traceStreamEmit(StageId, TraceEventKind::TraceEnd, 0, 0, nullptr, 0,
                  nullptr);
}

} // namespace

const RuntimeVTable *halide::runtimeVTable() {
  static const RuntimeVTable Table = {
      halideMalloc,    halideFree,      vtableParFor,    vtableGpuLaunch,
      vtableAbort,     vtableProfEnter, vtableProfExit,  vtableTraceLoad,
      vtableTraceStore, vtableTraceBegin, vtableTraceEnd,
  };
  return &Table;
}
