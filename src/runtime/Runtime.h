//===-- runtime/Runtime.h - Execution-time support --------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime contract between compiled pipelines and the host: parameter
/// bindings (buffers and scalars), the function-pointer table passed to
/// JIT-compiled code (so generated code needs no link-time symbols), and
/// small allocation helpers.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_RUNTIME_RUNTIME_H
#define HALIDE_RUNTIME_RUNTIME_H

#include "runtime/Buffer.h"

#include <cstdint>
#include <map>
#include <string>

namespace halide {

/// Concrete values for a pipeline invocation: buffers by name (output and
/// input images) and scalar parameters by name.
class ParamBindings {
public:
  void bind(const std::string &Name, const RawBuffer &Buffer) {
    Buffers[Name] = Buffer;
  }
  template <typename T>
  void bind(const std::string &Name, const Buffer<T> &B) {
    Buffers[Name] = B.raw();
  }
  void bindInt(const std::string &Name, int64_t Value) {
    IntScalars[Name] = Value;
  }
  void bindFloat(const std::string &Name, double Value) {
    FloatScalars[Name] = Value;
  }

  bool hasBuffer(const std::string &Name) const {
    return Buffers.count(Name) > 0;
  }
  const RawBuffer &buffer(const std::string &Name) const {
    auto It = Buffers.find(Name);
    internal_assert(It != Buffers.end()) << "unbound buffer " << Name;
    return It->second;
  }

  /// Resolves a scalar parameter: either a user scalar or buffer metadata
  /// of the form "<buf>.min.<d>" / ".extent.<d>" / ".stride.<d>".
  bool lookupScalar(const std::string &Name, double *Out) const;

  const std::map<std::string, RawBuffer> &buffers() const { return Buffers; }
  const std::map<std::string, int64_t> &intScalars() const {
    return IntScalars;
  }
  const std::map<std::string, double> &floatScalars() const {
    return FloatScalars;
  }

private:
  std::map<std::string, RawBuffer> Buffers;
  std::map<std::string, int64_t> IntScalars;
  std::map<std::string, double> FloatScalars;
};

/// The vtable handed to JIT-compiled pipelines. Passing function pointers
/// explicitly (rather than relying on dynamic symbol resolution) keeps the
/// generated shared object fully self-contained.
struct RuntimeVTable {
  /// Heap allocation for internal buffers (16-byte aligned).
  void *(*Malloc)(int64_t Bytes);
  void (*Free)(void *Ptr);
  /// Closure-based parallel for: runs Body(I, Closure) for I in
  /// [Min, Min+Extent) on the work-stealing task scheduler (paper §4.6).
  void (*ParFor)(int32_t Min, int32_t Extent,
                 void (*Body)(int32_t, void *), void *Closure);
  /// Simulated-GPU kernel launch over a flattened block range; semantics
  /// match ParFor but route through the GPU simulator for accounting.
  void (*GpuLaunch)(int32_t Blocks, void (*Body)(int32_t, void *),
                    void *Closure);
  /// Aborts execution with a message (failed AssertStmt).
  void (*Abort)(const char *Message);
  /// Profiler stage markers (observe/Profiler.h), emitted by CodeGenC
  /// only for Target::Profile executables; the argument is the
  /// process-wide stage id baked in at codegen time. Appended at the end
  /// of the struct so the generated hl_vtable typedef (CodeGenC.cpp)
  /// stays layout-compatible — keep both in lockstep.
  void (*ProfEnter)(int32_t StageId);
  void (*ProfExit)(int32_t StageId);
  /// Value-trace events (observe/TraceStream.h), emitted by CodeGenC only
  /// for Target::Trace executables. StageId and TypeCode are baked in at
  /// codegen time; Coords holds one flat index per lane (loads/stores) or
  /// the realization extents (begin), Bits the normalized value bits per
  /// lane. Appended at the end — keep the generated hl_vtable typedef in
  /// lockstep.
  void (*TraceLoad)(int32_t StageId, int32_t TypeCode, int32_t Lanes,
                    const int32_t *Coords, const uint64_t *Bits);
  void (*TraceStore)(int32_t StageId, int32_t TypeCode, int32_t Lanes,
                     const int32_t *Coords, const uint64_t *Bits);
  void (*TraceBegin)(int32_t StageId, int32_t Dims, const int32_t *Extents);
  void (*TraceEnd)(int32_t StageId);
};

/// The global vtable instance (also used by the interpreter for parity).
const RuntimeVTable *runtimeVTable();

/// 64-byte-aligned heap allocation helpers. Backed by the process-wide
/// buffer pool (runtime/BufferPool.h), so steady-state frame loops reuse
/// blocks instead of hitting the system allocator.
void *halideMalloc(int64_t Bytes);
void halideFree(void *Ptr);

} // namespace halide

#endif // HALIDE_RUNTIME_RUNTIME_H
