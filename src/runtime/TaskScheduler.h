//===-- runtime/TaskScheduler.h - Work-stealing task runtime ----*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared parallel task runtime of paper section 4.6, used by every
/// backend: parallel loops are lowered to a closure plus a body function,
/// and the loop's iteration range is split into chunks scheduled over a
/// work-stealing pool with per-worker deques. A thread that submits a loop
/// participates in it, and a worker whose own loop is blocked on chunks
/// stolen by others steals work itself instead of idling or inlining — so
/// nested parallel loops (the paper's tile-over-scanline schedules) really
/// run in parallel rather than serializing on the submitting worker.
///
/// The pool size counts the submitting thread: size N means N-1 spawned
/// workers plus the caller. The default is the HALIDE_NUM_THREADS
/// environment variable when set, otherwise the hardware concurrency.
/// Reconfiguration is locked against in-flight loops, and all workers are
/// joined on reconfiguration and at process exit.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_RUNTIME_TASKSCHEDULER_H
#define HALIDE_RUNTIME_TASKSCHEDULER_H

#include <cstdint>
#include <functional>
#include <memory>

namespace halide {

/// A chunk of a parallel loop: runs iterations [Begin, End). \p Chunk is
/// the chunk's index in the loop's deterministic partition (dense, in
/// range order), so callers can deposit per-chunk results without locks
/// and merge them in a fixed order afterwards.
using TaskChunkFn = void (*)(int64_t Begin, int64_t End, int Chunk,
                             void *Closure);

/// Runs \p Body over [Min, Min+Extent) as up to \p MaxTasks chunks on the
/// scheduler (MaxTasks <= 0 picks a default of a few chunks per worker).
/// Returns the number of chunks dispatched (0 when Extent <= 0) — the
/// partition is deterministic and balanced (chunk C covers
/// [Extent*C/N, Extent*(C+1)/N)), so chunk indices identify stable
/// subranges. Blocks until
/// every chunk has finished; the calling thread executes chunks itself
/// and steals unrelated work while waiting on stragglers. Safe to call
/// from within a chunk (nested parallelism).
int parallelForChunks(int64_t Min, int64_t Extent, int MaxTasks,
                      TaskChunkFn Body, void *Closure);

/// Runs Body(I, Closure) for every I in [Min, Min+Extent), distributing
/// iterations over the pool. This is the entry point compiled pipelines
/// call through the runtime vtable (CodeGenC/JIT closures); it rides on
/// parallelForChunks with the default chunking.
void parallelFor(int32_t Min, int32_t Extent,
                 void (*Body)(int32_t, void *), void *Closure);

/// The scheduler's thread count, including the submitting thread.
int taskSchedulerThreads();

/// Overrides the pool size (0 restores the default). Blocks until every
/// in-flight parallel loop has drained, then joins and restarts the
/// workers — concurrent parallelFor calls are held at the gate while the
/// pool is rebuilt, so reconfiguration cannot race execution. Must not be
/// called from inside a parallel task.
void setTaskSchedulerThreads(int Threads);

/// True when the calling thread is a scheduler worker or is currently
/// executing a task chunk (used to decide top-level vs nested submission;
/// exposed for tests).
bool inTaskWorker();

/// Lifetime counters of the scheduler, sampled for the metrics registry
/// (observe/MetricsRegistry.h). Monotonic since process start — resize()
/// does not reset them — except Threads, which is the current pool size.
struct TaskSchedulerStats {
  int Threads = 1;              ///< current pool size (incl. submitter)
  int64_t Steals = 0;           ///< chunks taken from another thread's deque
  int64_t ChunksExecuted = 0;   ///< parallel-loop chunks run (any path)
  int64_t AsyncJobsExecuted = 0; ///< async jobs (frames) run to completion
  int64_t PeakQueueDepth = 0;   ///< high-water mark of queued chunks
};

/// Snapshot of the counters above. Individually consistent (each counter
/// is an atomic), not a cross-counter atomic snapshot.
TaskSchedulerStats taskSchedulerStats();

//===----------------------------------------------------------------------===//
// Async jobs: whole units of work (a frame's realize) queued on the same
// pool that runs parallel-loop chunks. This is what turns the scheduler
// from "one parallel loop at a time" into a multi-tenant serving runtime:
// many in-flight frames coexist, each fanning its own loops out as chunks,
// and idle workers pick the highest-priority queued frame next.
//===----------------------------------------------------------------------===//

struct AsyncJobState; // opaque; defined in TaskScheduler.cpp

/// Handle to a submitted async job. Copyable; default-constructed handles
/// are invalid. The job's closure runs exactly once, on whichever thread
/// picks it up (a pool worker, a thread blocked in wait(), or a resize
/// draining the queue).
class AsyncJob {
public:
  AsyncJob() = default;

  bool valid() const { return State != nullptr; }
  /// True once the job's closure has finished running.
  bool done() const;
  /// Blocks until the job completes. The waiting thread does not idle: it
  /// executes queued parallel-loop chunks and other queued async jobs
  /// while it waits, so frames complete even on a single-threaded pool
  /// (and submit-then-wait never deadlocks).
  void wait() const;

private:
  friend AsyncJob submitAsyncJob(std::function<void()> Fn, int Priority);
  std::shared_ptr<AsyncJobState> State;
};

/// Queues \p Fn on the scheduler. Higher \p Priority runs first when a
/// thread picks its next job; ties run in submission order (FIFO). Chunk
/// work from already-running loops always takes precedence over starting
/// a new job — finishing in-flight frames beats admitting new ones.
/// The closure may freely call parallelForChunks (that is the point: a
/// frame's parallel loops nest inside its job). It must not call
/// setTaskSchedulerThreads. Jobs count as in-flight work: a concurrent
/// resize drains them (executing queued ones itself if need be) before
/// rebuilding the pool.
AsyncJob submitAsyncJob(std::function<void()> Fn, int Priority = 0);

} // namespace halide

#endif // HALIDE_RUNTIME_TASKSCHEDULER_H
