//===-- runtime/TaskScheduler.h - Work-stealing task runtime ----*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared parallel task runtime of paper section 4.6, used by every
/// backend: parallel loops are lowered to a closure plus a body function,
/// and the loop's iteration range is split into chunks scheduled over a
/// work-stealing pool with per-worker deques. A thread that submits a loop
/// participates in it, and a worker whose own loop is blocked on chunks
/// stolen by others steals work itself instead of idling or inlining — so
/// nested parallel loops (the paper's tile-over-scanline schedules) really
/// run in parallel rather than serializing on the submitting worker.
///
/// The pool size counts the submitting thread: size N means N-1 spawned
/// workers plus the caller. The default is the HALIDE_NUM_THREADS
/// environment variable when set, otherwise the hardware concurrency.
/// Reconfiguration is locked against in-flight loops, and all workers are
/// joined on reconfiguration and at process exit.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_RUNTIME_TASKSCHEDULER_H
#define HALIDE_RUNTIME_TASKSCHEDULER_H

#include <cstdint>

namespace halide {

/// A chunk of a parallel loop: runs iterations [Begin, End). \p Chunk is
/// the chunk's index in the loop's deterministic partition (dense, in
/// range order), so callers can deposit per-chunk results without locks
/// and merge them in a fixed order afterwards.
using TaskChunkFn = void (*)(int64_t Begin, int64_t End, int Chunk,
                             void *Closure);

/// Runs \p Body over [Min, Min+Extent) as up to \p MaxTasks chunks on the
/// scheduler (MaxTasks <= 0 picks a default of a few chunks per worker).
/// Returns the number of chunks dispatched (0 when Extent <= 0) — the
/// partition is deterministic and balanced (chunk C covers
/// [Extent*C/N, Extent*(C+1)/N)), so chunk indices identify stable
/// subranges. Blocks until
/// every chunk has finished; the calling thread executes chunks itself
/// and steals unrelated work while waiting on stragglers. Safe to call
/// from within a chunk (nested parallelism).
int parallelForChunks(int64_t Min, int64_t Extent, int MaxTasks,
                      TaskChunkFn Body, void *Closure);

/// Runs Body(I, Closure) for every I in [Min, Min+Extent), distributing
/// iterations over the pool. This is the entry point compiled pipelines
/// call through the runtime vtable (CodeGenC/JIT closures); it rides on
/// parallelForChunks with the default chunking.
void parallelFor(int32_t Min, int32_t Extent,
                 void (*Body)(int32_t, void *), void *Closure);

/// The scheduler's thread count, including the submitting thread.
int taskSchedulerThreads();

/// Overrides the pool size (0 restores the default). Blocks until every
/// in-flight parallel loop has drained, then joins and restarts the
/// workers — concurrent parallelFor calls are held at the gate while the
/// pool is rebuilt, so reconfiguration cannot race execution. Must not be
/// called from inside a parallel task.
void setTaskSchedulerThreads(int Threads);

/// True when the calling thread is a scheduler worker or is currently
/// executing a task chunk (used to decide top-level vs nested submission;
/// exposed for tests).
bool inTaskWorker();

} // namespace halide

#endif // HALIDE_RUNTIME_TASKSCHEDULER_H
