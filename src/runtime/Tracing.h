//===-- runtime/Tracing.h - Execution counters ------------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named execution counters used by tests and benchmarks to observe
/// recomputation (work amplification) and allocation behaviour without
/// affecting compiled-code performance; the reference interpreter updates
/// them on every store and allocation.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_RUNTIME_TRACING_H
#define HALIDE_RUNTIME_TRACING_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace halide {

/// Counters gathered while executing a pipeline in the interpreter.
struct ExecutionStats {
  /// Number of values stored per buffer (pure + update writes).
  std::map<std::string, int64_t> StoresPerBuffer;
  /// Number of values loaded per buffer.
  std::map<std::string, int64_t> LoadsPerBuffer;
  /// Peak simultaneous internal allocation, in bytes.
  int64_t PeakAllocationBytes = 0;
  /// Current live internal allocation, in bytes.
  int64_t CurrentAllocationBytes = 0;
  /// Total loop iterations whose ForType was Parallel/GPU (a proxy for the
  /// paper's "span" parallelism measure).
  int64_t ParallelIterations = 0;
  /// Maximum number of memory operations between a value being stored and
  /// a later load of it, per buffer (Figure 3's "max reuse distance").
  /// Only populated when reuse tracking is enabled.
  std::map<std::string, int64_t> MaxReuseDistance;
  /// Kernel launches / blocks executed on the simulated GPU device during
  /// this run. Only populated by the GpuSim backend.
  int64_t GpuKernelLaunches = 0;
  int64_t GpuBlocksExecuted = 0;

  int64_t totalStores() const {
    int64_t Total = 0;
    for (const auto &[Name, Count] : StoresPerBuffer)
      Total += Count;
    return Total;
  }

  void noteAllocation(int64_t Bytes) {
    CurrentAllocationBytes += Bytes;
    if (CurrentAllocationBytes > PeakAllocationBytes)
      PeakAllocationBytes = CurrentAllocationBytes;
  }
  void noteFree(int64_t Bytes) { CurrentAllocationBytes -= Bytes; }

  /// All fields as one JSON object ({"stores": {...}, "loads": {...},
  /// "peak_allocation_bytes": N, ...}) for machine-readable baselines.
  std::string toJson() const;
};

/// The determinism contract: the counters that identify the computation
/// performed (loads/stores per buffer, peak allocation, span, GPU
/// launches). Excludes the transient CurrentAllocationBytes and the
/// opt-in MaxReuseDistance, so two runs of the same schedule compare
/// equal whichever engine and thread count executed them. This is what
/// the parity/serving tests and the differential harness check.
bool operator==(const ExecutionStats &A, const ExecutionStats &B);
inline bool operator!=(const ExecutionStats &A, const ExecutionStats &B) {
  return !(A == B);
}

/// Compact one-line rendering of the contract fields, for test-failure
/// and differential-mismatch diagnostics (gtest picks this up when an
/// EXPECT_EQ of two stats fails).
std::ostream &operator<<(std::ostream &OS, const ExecutionStats &S);

} // namespace halide

#endif // HALIDE_RUNTIME_TRACING_H
