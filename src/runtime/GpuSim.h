//===-- runtime/GpuSim.h - Simulated GPU device -----------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A software stand-in for the paper's CUDA device (see DESIGN.md,
/// substitution 2). Kernel launches execute a block range on a worker pool
/// that models a fixed number of streaming multiprocessors; the simulator
/// tracks launch counts and per-launch block/thread totals so benchmarks
/// can report the kernel-graph structure the paper discusses (e.g. the 58
/// distinct kernels of the local Laplacian schedule). Memory is unified:
/// the copy-tracking the paper describes degenerates to counting logical
/// transfers at kernel boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_RUNTIME_GPUSIM_H
#define HALIDE_RUNTIME_GPUSIM_H

#include <cstdint>

namespace halide {

/// Aggregate statistics of the simulated device.
struct GpuStats {
  int64_t KernelLaunches = 0;
  int64_t BlocksExecuted = 0;
};

/// The simulated GPU device.
class GpuSim {
public:
  /// Launches a kernel over \p Blocks blocks; Body(B, Closure) runs once
  /// per block (thread loops execute inside the body).
  void launch(int32_t Blocks, void (*Body)(int32_t, void *), void *Closure);

  /// Number of simulated streaming multiprocessors (parallel workers).
  int smCount() const { return SMs; }
  void setSmCount(int Count) { SMs = Count < 1 ? 1 : Count; }

  const GpuStats &stats() const { return Stats; }
  void resetStats() { Stats = GpuStats(); }

private:
  int SMs = 8;
  GpuStats Stats;
};

/// The process-wide simulated device.
GpuSim &gpuSim();

} // namespace halide

#endif // HALIDE_RUNTIME_GPUSIM_H
