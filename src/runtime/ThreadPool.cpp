//===-- runtime/ThreadPool.cpp --------------------------------------------------=//

#include "runtime/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

using namespace halide;

namespace {

/// A work-stealing-free, single-queue pool: simple and adequate for the
/// coarse-grained loop tasks pipelines generate.
class Pool {
public:
  static Pool &instance() {
    static Pool P;
    return P;
  }

  void run(int32_t Min, int32_t Extent, void (*Body)(int32_t, void *),
           void *Closure) {
    if (Extent <= 0)
      return;
    // Nested parallelism or a degenerate pool runs inline.
    if (Extent == 1 || InWorker || Workers.empty()) {
      for (int32_t I = 0; I < Extent; ++I)
        Body(Min + I, Closure);
      return;
    }

    Job TheJob;
    TheJob.Min = Min;
    TheJob.Extent = Extent;
    TheJob.Body = Body;
    TheJob.Closure = Closure;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      CurrentJob = &TheJob;
      WorkAvailable.notify_all();
    }
    // The calling thread participates.
    workOn(TheJob);
    std::unique_lock<std::mutex> Lock(Mutex);
    JobDone.wait(Lock, [&] { return TheJob.Active == 0 &&
                                    TheJob.NextIter >= TheJob.Extent; });
    CurrentJob = nullptr;
  }

  int size() const { return int(Workers.size()) + 1; }

  void resize(int Threads) {
    shutdown();
    start(Threads);
  }

private:
  struct Job {
    int32_t Min = 0, Extent = 0;
    void (*Body)(int32_t, void *) = nullptr;
    void *Closure = nullptr;
    std::atomic<int32_t> NextIter{0};
    std::atomic<int> Active{0};
  };

  Pool() { start(0); }
  ~Pool() { shutdown(); }

  void start(int Threads) {
    if (Threads <= 0)
      Threads = int(std::thread::hardware_concurrency());
    if (Threads < 1)
      Threads = 1;
    Stop = false;
    for (int I = 0; I < Threads - 1; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  void shutdown() {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Stop = true;
      WorkAvailable.notify_all();
    }
    for (std::thread &W : Workers)
      W.join();
    Workers.clear();
  }

  void workerLoop() {
    InWorker = true;
    while (true) {
      Job *J = nullptr;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WorkAvailable.wait(Lock, [&] { return Stop || CurrentJob; });
        if (Stop)
          return;
        J = CurrentJob;
      }
      if (J)
        workOn(*J);
      // Avoid busy spinning on the same finished job.
      std::this_thread::yield();
    }
  }

  void workOn(Job &J) {
    J.Active.fetch_add(1);
    while (true) {
      int32_t I = J.NextIter.fetch_add(1);
      if (I >= J.Extent)
        break;
      J.Body(J.Min + I, J.Closure);
    }
    if (J.Active.fetch_sub(1) == 1) {
      std::unique_lock<std::mutex> Lock(Mutex);
      JobDone.notify_all();
    }
  }

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkAvailable, JobDone;
  Job *CurrentJob = nullptr;
  bool Stop = false;
  static thread_local bool InWorker;
};

thread_local bool Pool::InWorker = false;

} // namespace

void halide::parallelFor(int32_t Min, int32_t Extent,
                         void (*Body)(int32_t, void *), void *Closure) {
  Pool::instance().run(Min, Extent, Body, Closure);
}

int halide::threadPoolSize() { return Pool::instance().size(); }

void halide::setThreadPoolSize(int Threads) {
  Pool::instance().resize(Threads);
}
