//===-- runtime/BufferPool.h - Pooled frame allocations ---------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving runtime's allocator: every halideMalloc/halideFree (internal
/// pipeline buffers on all backends — the VM's Alloc op, the interpreter's
/// Realize scopes, and JIT-compiled code through the runtime vtable) routes
/// through a process-wide, size-bucketed free-list pool. Pipelines allocate
/// the same intermediate shapes frame after frame, so once a pipeline's
/// working set has been seen, steady-state serving performs zero system
/// mallocs per frame — the property bench_runner --serve relies on and
/// ServingTest asserts via the FreshAllocations counter.
///
/// Blocks above the pool's held-bytes capacity are returned to the system
/// on free (oldest buckets are not aged out; eviction is whole-block at
/// free time, keeping the bookkeeping trivial). clearBufferPool() releases
/// everything held, and the pool frees its inventory at process exit so
/// leak-checked suites stay clean.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_RUNTIME_BUFFERPOOL_H
#define HALIDE_RUNTIME_BUFFERPOOL_H

#include <cstdint>

namespace halide {

/// Observable pool behaviour, exposed so tests and benchmarks can assert
/// steady-state reuse (FreshAllocations stops growing once a serving loop
/// is warm).
struct BufferPoolStats {
  /// Allocations served by reusing a pooled block (no system malloc).
  int64_t PoolHits = 0;
  /// Allocations that went to the system because no pooled block of the
  /// size class was available.
  int64_t FreshAllocations = 0;
  /// Blocks returned to the system because the pool was at capacity.
  int64_t CapacityEvictions = 0;
  /// Bytes currently held in free lists, ready for reuse.
  int64_t BytesHeld = 0;
  /// Bytes currently live (handed out and not yet freed).
  int64_t BytesLive = 0;
};

/// A copy of the pool's counters, taken under the pool lock.
BufferPoolStats bufferPoolStats();

/// Returns every held block to the system (live blocks are unaffected).
/// Counters keep accumulating across clears.
void clearBufferPool();

/// Caps BytesHeld; frees beyond the cap bypass the pool. 0 restores the
/// default (256 MiB, or the HALIDE_BUFFER_POOL_MB environment variable).
void setBufferPoolCapacity(int64_t Bytes);

/// Pool-aware allocation entry points; halideMalloc/halideFree in
/// Runtime.h are aliases of these (see Runtime.cpp).
void *bufferPoolMalloc(int64_t Bytes);
void bufferPoolFree(void *Ptr);

} // namespace halide

#endif // HALIDE_RUNTIME_BUFFERPOOL_H
