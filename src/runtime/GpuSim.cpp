//===-- runtime/GpuSim.cpp -------------------------------------------------------=//

#include "runtime/GpuSim.h"
#include "observe/TraceRecorder.h"
#include "runtime/TaskScheduler.h"

using namespace halide;

void GpuSim::launch(int32_t Blocks, void (*Body)(int32_t, void *),
                    void *Closure) {
  ++Stats.KernelLaunches;
  Stats.BlocksExecuted += Blocks;
  const int64_t T0 = traceActive() ? traceNowNs() : 0;
  // Blocks are data parallel; run them on the host task scheduler, which
  // stands in for the SM array. (With one hardware core this degrades
  // gracefully to a serial sweep, preserving semantics.)
  parallelFor(0, Blocks, Body, Closure);
  if (T0) {
    std::vector<TraceArg> Args;
    Args.emplace_back("blocks", int64_t(Blocks));
    traceComplete("gpu", "kernel_launch", T0, traceNowNs() - T0,
                  std::move(Args));
  }
}

GpuSim &halide::gpuSim() {
  static GpuSim Device;
  return Device;
}
