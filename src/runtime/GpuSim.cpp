//===-- runtime/GpuSim.cpp -------------------------------------------------------=//

#include "runtime/GpuSim.h"
#include "runtime/TaskScheduler.h"

using namespace halide;

void GpuSim::launch(int32_t Blocks, void (*Body)(int32_t, void *),
                    void *Closure) {
  ++Stats.KernelLaunches;
  Stats.BlocksExecuted += Blocks;
  // Blocks are data parallel; run them on the host task scheduler, which
  // stands in for the SM array. (With one hardware core this degrades
  // gracefully to a serial sweep, preserving semantics.)
  parallelFor(0, Blocks, Body, Closure);
}

GpuSim &halide::gpuSim() {
  static GpuSim Device;
  return Device;
}
