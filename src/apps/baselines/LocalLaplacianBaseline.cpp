//===-- apps/baselines/LocalLaplacianBaseline.cpp --------------------------------===//
//
// Hand-written local Laplacian filter in the style of the paper's "clean
// C++ without IPP and OpenMP" reference (naive), plus a locality-tuned
// variant that fuses the remap+pyramid construction per intensity level to
// cut the working set (expert).
//
//===----------------------------------------------------------------------===//

#include "apps/baselines/Baselines.h"

#include <algorithm>
#include <cmath>
#include <vector>

using namespace halide;

namespace {

struct Plane {
  int W = 0, H = 0;
  std::vector<float> Data;
  void alloc(int Width, int Height) {
    W = Width;
    H = Height;
    Data.assign(size_t(W) * H, 0.0f);
  }
  float get(int X, int Y) const {
    X = std::clamp(X, 0, W - 1);
    Y = std::clamp(Y, 0, H - 1);
    return Data[size_t(Y) * W + X];
  }
  float &at(int X, int Y) { return Data[size_t(Y) * W + X]; }
};

void downsample(const Plane &In, Plane &Out) {
  Plane Tmp;
  Tmp.alloc(In.W / 2 + 1, In.H);
  for (int Y = 0; Y < Tmp.H; ++Y)
    for (int X = 0; X < Tmp.W; ++X)
      Tmp.at(X, Y) = (In.get(2 * X - 1, Y) +
                      3 * (In.get(2 * X, Y) + In.get(2 * X + 1, Y)) +
                      In.get(2 * X + 2, Y)) /
                     8.0f;
  Out.alloc(In.W / 2 + 1, In.H / 2 + 1);
  for (int Y = 0; Y < Out.H; ++Y)
    for (int X = 0; X < Out.W; ++X)
      Out.at(X, Y) = (Tmp.get(X, 2 * Y - 1) +
                      3 * (Tmp.get(X, 2 * Y) + Tmp.get(X, 2 * Y + 1)) +
                      Tmp.get(X, 2 * Y + 2)) /
                     8.0f;
}

float upsampleAt(const Plane &Coarse, int X, int Y) {
  auto UpX = [&](int YY) {
    return 0.25f * Coarse.get((X / 2) - 1 + 2 * (X % 2), YY) +
           0.75f * Coarse.get(X / 2, YY);
  };
  return 0.25f * UpX((Y / 2) - 1 + 2 * (Y % 2)) + 0.75f * UpX(Y / 2);
}

std::vector<uint16_t> makeInput(int W, int H) {
  std::vector<uint16_t> In(size_t(W) * H);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      In[size_t(Y) * W + X] =
          uint16_t((X * 131 + Y * 523 + (X * Y) / 7) % 65536);
  return In;
}

void runLocalLaplacian(const std::vector<uint16_t> &In, int W, int H, int J,
                       int K, std::vector<uint16_t> &Out, bool Fused) {
  const float Alpha = 1.0f / float(K - 1);
  const float Beta = 1.0f;

  Plane Gray;
  Gray.alloc(W, H);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      Gray.at(X, Y) = float(In[size_t(Y) * W + X]) / 65535.0f;

  // Remap LUT.
  std::vector<float> Remap(size_t(2 * (K - 1) * 256 + 1));
  for (int I = -(K - 1) * 256; I <= (K - 1) * 256; ++I) {
    float Fx = float(I) / 256.0f;
    Remap[size_t(I + (K - 1) * 256)] = Alpha * Fx * std::exp(-Fx * Fx / 2);
  }
  auto RemapAt = [&](int I) {
    I = std::clamp(I, -(K - 1) * 256, (K - 1) * 256);
    return Remap[size_t(I + (K - 1) * 256)];
  };

  // Gaussian pyramid of the input.
  std::vector<Plane> InG(static_cast<size_t>(J));
  InG[0] = Gray;
  for (int L = 1; L < J; ++L)
    downsample(InG[size_t(L) - 1], InG[size_t(L)]);

  // K remapped Gaussian + Laplacian pyramids. "Fused" processes one
  // intensity level at a time (smaller working set); naive materializes
  // all K first. Numerically identical.
  std::vector<std::vector<Plane>> LPyr(static_cast<size_t>(K),
                                       std::vector<Plane>(static_cast<size_t>(J)));
  auto BuildOne = [&](int KI) {
    std::vector<Plane> G(static_cast<size_t>(J));
    G[0].alloc(W, H);
    float Level = float(KI) / float(K - 1);
    for (int Y = 0; Y < H; ++Y)
      for (int X = 0; X < W; ++X) {
        float V = Gray.get(X, Y);
        int Idx = std::clamp(int(V * float(K - 1) * 256.0f), 0,
                             (K - 1) * 256);
        G[0].at(X, Y) =
            Beta * (V - Level) + Level + RemapAt(Idx - 256 * KI);
      }
    for (int L = 1; L < J; ++L)
      downsample(G[size_t(L) - 1], G[size_t(L)]);
    for (int L = 0; L < J - 1; ++L) {
      LPyr[size_t(KI)][size_t(L)].alloc(G[size_t(L)].W, G[size_t(L)].H);
      for (int Y = 0; Y < G[size_t(L)].H; ++Y)
        for (int X = 0; X < G[size_t(L)].W; ++X)
          LPyr[size_t(KI)][size_t(L)].at(X, Y) =
              G[size_t(L)].get(X, Y) - upsampleAt(G[size_t(L) + 1], X, Y);
    }
    LPyr[size_t(KI)][size_t(J) - 1] = G[size_t(J) - 1];
  };
  if (Fused) {
    for (int KI = 0; KI < K; ++KI)
      BuildOne(KI);
  } else {
    // Same computation; the naive version also materializes the full
    // remapped images for all K before taking Laplacians, costing an extra
    // full-resolution pass per level.
    std::vector<Plane> Remapped(static_cast<size_t>(K));
    for (int KI = 0; KI < K; ++KI) {
      Remapped[size_t(KI)].alloc(W, H);
      float Level = float(KI) / float(K - 1);
      for (int Y = 0; Y < H; ++Y)
        for (int X = 0; X < W; ++X) {
          float V = Gray.get(X, Y);
          int Idx = std::clamp(int(V * float(K - 1) * 256.0f), 0,
                               (K - 1) * 256);
          Remapped[size_t(KI)].at(X, Y) =
              Beta * (V - Level) + Level + RemapAt(Idx - 256 * KI);
        }
    }
    for (int KI = 0; KI < K; ++KI)
      BuildOne(KI);
  }

  // Output pyramid via the DDA, collapsed.
  std::vector<Plane> OutG(static_cast<size_t>(J));
  for (int L = J - 1; L >= 0; --L) {
    OutG[size_t(L)].alloc(InG[size_t(L)].W, InG[size_t(L)].H);
    for (int Y = 0; Y < OutG[size_t(L)].H; ++Y)
      for (int X = 0; X < OutG[size_t(L)].W; ++X) {
        float LevelV = InG[size_t(L)].get(X, Y) * float(K - 1);
        int Li = std::clamp(int(LevelV), 0, K - 2);
        float Lf = std::clamp(LevelV - float(Li), 0.0f, 1.0f);
        float OutL = (1 - Lf) * LPyr[size_t(Li)][size_t(L)].get(X, Y) +
                     Lf * LPyr[size_t(Li) + 1][size_t(L)].get(X, Y);
        float Up = L == J - 1 ? 0.0f : upsampleAt(OutG[size_t(L) + 1], X, Y);
        OutG[size_t(L)].at(X, Y) = Up + OutL;
      }
  }
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      float V = std::clamp(OutG[0].get(X, Y), 0.0f, 1.0f);
      Out[size_t(Y) * W + X] = uint16_t(V * 65535.0f);
    }
}

} // namespace

void halide::baselines::localLaplacianReferenceOutput(int W, int H,
                                                      int Levels, int K,
                                                      const RawBuffer &Out) {
  std::vector<uint16_t> In = makeInput(W, H);
  std::vector<uint16_t> OutV(size_t(W) * H);
  runLocalLaplacian(In, W, H, Levels, K, OutV, /*Fused=*/false);
  uint16_t *O = static_cast<uint16_t *>(Out.Host);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      int Coords[2] = {X, Y};
      O[Out.offsetOf(Coords, 2)] = OutV[size_t(Y) * W + X];
    }
}

double halide::baselines::localLaplacianNaiveMs(int W, int H, int J, int K) {
  std::vector<uint16_t> In = makeInput(W, H);
  std::vector<uint16_t> Out(size_t(W) * H);
  return timeMs([&] { runLocalLaplacian(In, W, H, J, K, Out, false); }, 1);
}

double halide::baselines::localLaplacianExpertMs(int W, int H, int J,
                                                 int K) {
  std::vector<uint16_t> In = makeInput(W, H);
  std::vector<uint16_t> Out(size_t(W) * H);
  return timeMs([&] { runLocalLaplacian(In, W, H, J, K, Out, true); }, 1);
}
