//===-- apps/baselines/Baselines.h - Expert C++ comparators -----*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written C++ implementations standing in for the paper's expert
/// references (DESIGN.md substitution 3). For each app there is a "naive"
/// version (clean breadth-first C++, the style of the paper's unoptimized
/// references) and an "expert" version (hand-tiled/fused with attention to
/// locality). Each entry point generates its own synthetic input — matching
/// the Halide apps' generators — runs the algorithm, and returns the median
/// wall time in milliseconds.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_APPS_BASELINES_BASELINES_H
#define HALIDE_APPS_BASELINES_BASELINES_H

#include "runtime/Buffer.h"

#include <functional>

namespace halide {
namespace baselines {

/// Median wall time (ms) of \p Iters invocations of \p Work.
double timeMs(const std::function<void()> &Work, int Iters = 3);

// Two-stage 3x3 blur (paper section 3.1).
double blurNaiveMs(int W, int H);
double blurExpertMs(int W, int H);
/// Reference blur used by correctness tests: writes the expected output.
void blurReference(const Buffer<uint8_t> &In, Buffer<uint8_t> &Out);

// Bilateral grid (paper section 6, [Chen et al. 2007]).
double bilateralGridNaiveMs(int W, int H);
double bilateralGridExpertMs(int W, int H);

// Camera pipeline (demosaic + color correct + gamma curve).
double cameraPipeNaiveMs(int W, int H);
double cameraPipeExpertMs(int W, int H);

// Multi-scale interpolation over an image pyramid.
double interpolateNaiveMs(int W, int H);
double interpolateExpertMs(int W, int H);

// Local Laplacian filters.
double localLaplacianNaiveMs(int W, int H, int Levels, int K);
double localLaplacianExpertMs(int W, int H, int Levels, int K);

// Reference-output writers for the differential schedule-correctness
// harness: each computes the naive baseline over the app's standard W x H
// synthetic input (the same generator App::MakeInputs uses) and writes the
// result into a caller-provided buffer shaped like the Halide app's output.
void blurReferenceOutput(int W, int H, const RawBuffer &Out);
void bilateralGridReferenceOutput(int W, int H, const RawBuffer &Out);
void cameraPipeReferenceOutput(int W, int H, const RawBuffer &Out);
void interpolateReferenceOutput(int W, int H, const RawBuffer &Out);
void localLaplacianReferenceOutput(int W, int H, int Levels, int K,
                                   const RawBuffer &Out);

} // namespace baselines
} // namespace halide

#endif // HALIDE_APPS_BASELINES_BASELINES_H
