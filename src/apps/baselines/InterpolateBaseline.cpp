//===-- apps/baselines/InterpolateBaseline.cpp ----------------------------------===//
//
// Hand-written multi-scale interpolation. Naive: every pyramid level
// materialized with separate x/y resampling passes. Expert: x-passes fused
// into y-passes per scanline (small row buffers), halving traffic.
//
//===----------------------------------------------------------------------===//

#include "apps/baselines/Baselines.h"

#include <algorithm>
#include <vector>

using namespace halide;

namespace {

constexpr int Levels = 6;
constexpr int C4 = 4;

struct Image {
  int W = 0, H = 0;
  std::vector<float> Data;
  void alloc(int Width, int Height) {
    W = Width;
    H = Height;
    Data.assign(size_t(W) * H * C4, 0.0f);
  }
  float &at(int X, int Y, int C) {
    X = std::clamp(X, 0, W - 1);
    Y = std::clamp(Y, 0, H - 1);
    return Data[(size_t(Y) * W + X) * C4 + C];
  }
  float get(int X, int Y, int C) const {
    X = std::clamp(X, 0, W - 1);
    Y = std::clamp(Y, 0, H - 1);
    return Data[(size_t(Y) * W + X) * C4 + C];
  }
};

Image makeInput(int W, int H) {
  Image In;
  In.alloc(W, H);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      for (int C = 0; C < C4; ++C) {
        float V = C == 3 ? (((X % 7 == 0) && (Y % 5 == 0)) ? 1.0f : 0.02f)
                         : float((X * (C + 1) + Y) % 64) / 64.0f;
        In.at(X, Y, C) = V;
      }
  return In;
}

void premultiply(const Image &In, Image &Out) {
  Out.alloc(In.W, In.H);
  for (int Y = 0; Y < In.H; ++Y)
    for (int X = 0; X < In.W; ++X) {
      float Alpha = In.get(X, Y, 3);
      for (int C = 0; C < 3; ++C)
        Out.at(X, Y, C) = In.get(X, Y, C) * Alpha;
      Out.at(X, Y, 3) = Alpha;
    }
}

/// [1 3 3 1]/8 in x then y, decimating by 2, with (naive) a full-size
/// intermediate or (fused) a per-output-row pass.
void downsampleNaive(const Image &In, Image &Out) {
  Image Tmp;
  Tmp.alloc(In.W / 2 + 1, In.H);
  for (int Y = 0; Y < Tmp.H; ++Y)
    for (int X = 0; X < Tmp.W; ++X)
      for (int C = 0; C < C4; ++C)
        Tmp.at(X, Y, C) = (In.get(2 * X - 1, Y, C) +
                           3 * (In.get(2 * X, Y, C) +
                                In.get(2 * X + 1, Y, C)) +
                           In.get(2 * X + 2, Y, C)) /
                          8.0f;
  Out.alloc(In.W / 2 + 1, In.H / 2 + 1);
  for (int Y = 0; Y < Out.H; ++Y)
    for (int X = 0; X < Out.W; ++X)
      for (int C = 0; C < C4; ++C)
        Out.at(X, Y, C) = (Tmp.get(X, 2 * Y - 1, C) +
                           3 * (Tmp.get(X, 2 * Y, C) +
                                Tmp.get(X, 2 * Y + 1, C)) +
                           Tmp.get(X, 2 * Y + 2, C)) /
                          8.0f;
}

void downsampleFused(const Image &In, Image &Out) {
  Out.alloc(In.W / 2 + 1, In.H / 2 + 1);
  std::vector<float> Rows(size_t(4) * Out.W * C4);
  auto RowPtr = [&](int Y) { return &Rows[size_t((Y % 4 + 4) % 4) * Out.W * C4]; };
  auto ComputeRow = [&](int Y) {
    float *Row = RowPtr(Y);
    for (int X = 0; X < Out.W; ++X)
      for (int C = 0; C < C4; ++C)
        Row[size_t(X) * C4 + C] = (In.get(2 * X - 1, Y, C) +
                                   3 * (In.get(2 * X, Y, C) +
                                        In.get(2 * X + 1, Y, C)) +
                                   In.get(2 * X + 2, Y, C)) /
                                  8.0f;
  };
  ComputeRow(-1);
  ComputeRow(0);
  ComputeRow(1);
  for (int Y = 0; Y < Out.H; ++Y) {
    ComputeRow(2 * Y + 2);
    const float *Rm = RowPtr(2 * Y - 1), *R0 = RowPtr(2 * Y),
                *R1 = RowPtr(2 * Y + 1), *R2 = RowPtr(2 * Y + 2);
    for (int X = 0; X < Out.W; ++X)
      for (int C = 0; C < C4; ++C)
        Out.at(X, Y, C) = (Rm[size_t(X) * C4 + C] +
                           3 * (R0[size_t(X) * C4 + C] +
                                R1[size_t(X) * C4 + C]) +
                           R2[size_t(X) * C4 + C]) /
                          8.0f;
  }
}

void interpolateUp(const Image &Down, const Image &Coarse, Image &Out) {
  Out.alloc(Down.W, Down.H);
  auto Up = [&](int X, int Y, int C) {
    float Ux0 = 0.25f * Coarse.get((X / 2) - 1 + 2 * (X % 2), Y / 2, C) +
                0.75f * Coarse.get(X / 2, Y / 2, C);
    float Ux1 =
        0.25f * Coarse.get((X / 2) - 1 + 2 * (X % 2),
                           (Y / 2) - 1 + 2 * (Y % 2), C) +
        0.75f * Coarse.get(X / 2, (Y / 2) - 1 + 2 * (Y % 2), C);
    return 0.75f * Ux0 + 0.25f * Ux1;
  };
  for (int Y = 0; Y < Out.H; ++Y)
    for (int X = 0; X < Out.W; ++X) {
      float A = Down.get(X, Y, 3);
      for (int C = 0; C < C4; ++C)
        Out.at(X, Y, C) = Down.get(X, Y, C) + (1.0f - A) * Up(X, Y, C);
    }
}

void runPyramid(const Image &In, Image &Final, bool Fused) {
  Image Down[Levels];
  premultiply(In, Down[0]);
  for (int L = 1; L < Levels; ++L) {
    if (Fused)
      downsampleFused(Down[L - 1], Down[L]);
    else
      downsampleNaive(Down[L - 1], Down[L]);
  }
  Image Interp[Levels];
  Interp[Levels - 1] = Down[Levels - 1];
  for (int L = Levels - 2; L >= 0; --L)
    interpolateUp(Down[L], Interp[L + 1], Interp[L]);
  Final.alloc(In.W, In.H);
  for (int Y = 0; Y < In.H; ++Y)
    for (int X = 0; X < In.W; ++X) {
      float A = std::max(Interp[0].get(X, Y, 3), 1e-6f);
      for (int C = 0; C < 3; ++C)
        Final.at(X, Y, C) = Interp[0].get(X, Y, C) / A;
    }
}

} // namespace

void halide::baselines::interpolateReferenceOutput(int W, int H,
                                                   const RawBuffer &Out) {
  Image In = makeInput(W, H);
  Image Final;
  runPyramid(In, Final, /*Fused=*/false);
  float *O = static_cast<float *>(Out.Host);
  for (int C = 0; C < 3; ++C)
    for (int Y = 0; Y < H; ++Y)
      for (int X = 0; X < W; ++X) {
        int Coords[3] = {X, Y, C};
        O[Out.offsetOf(Coords, 3)] = Final.get(X, Y, C);
      }
}

double halide::baselines::interpolateNaiveMs(int W, int H) {
  Image In = makeInput(W, H);
  Image Out;
  return timeMs([&] { runPyramid(In, Out, /*Fused=*/false); });
}

double halide::baselines::interpolateExpertMs(int W, int H) {
  Image In = makeInput(W, H);
  Image Out;
  return timeMs([&] { runPyramid(In, Out, /*Fused=*/true); });
}
