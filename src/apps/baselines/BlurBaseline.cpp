//===-- apps/baselines/BlurBaseline.cpp - Hand-written blur --------------------===//

#include "apps/baselines/Baselines.h"

#include <algorithm>
#include <chrono>
#include <vector>

using namespace halide;
using namespace halide::baselines;

double halide::baselines::timeMs(const std::function<void()> &Work,
                                 int Iters) {
  Work(); // warm-up
  std::vector<double> Times;
  for (int I = 0; I < Iters; ++I) {
    auto Start = std::chrono::steady_clock::now();
    Work();
    auto End = std::chrono::steady_clock::now();
    Times.push_back(
        std::chrono::duration<double, std::milli>(End - Start).count());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

namespace {

std::vector<uint8_t> makeInput(int W, int H) {
  std::vector<uint8_t> In(size_t(W) * H);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      In[size_t(Y) * W + X] = uint8_t((X * 23 + Y * 7) % 256);
  return In;
}

inline int clampi(int V, int Lo, int Hi) {
  return V < Lo ? Lo : (V > Hi ? Hi : V);
}

/// Breadth-first: compute all of blurx, then all of the output — the
/// paper's "most common strategy in hand-written pipelines".
void blurNaive(const uint8_t *In, uint8_t *Out, int W, int H) {
  std::vector<uint16_t> Blurx(size_t(W) * (H + 2));
  for (int Y = -1; Y <= H; ++Y) {
    int Yc = clampi(Y, 0, H - 1);
    for (int X = 0; X < W; ++X) {
      int Xl = clampi(X - 1, 0, W - 1), Xr = clampi(X + 1, 0, W - 1);
      Blurx[size_t(Y + 1) * W + X] =
          uint16_t((In[size_t(Yc) * W + Xl] + In[size_t(Yc) * W + X] +
                    In[size_t(Yc) * W + Xr]) /
                   3);
    }
  }
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      int S = Blurx[size_t(Y) * W + X] + Blurx[size_t(Y + 1) * W + X] +
              Blurx[size_t(Y + 2) * W + X];
      Out[size_t(Y) * W + X] = uint8_t(S / 3);
    }
}

/// Expert: strips of scanlines with a 3-row circular blurx window — the
/// paper's fastest CPU strategy, hand-written.
void blurExpert(const uint8_t *In, uint8_t *Out, int W, int H) {
  constexpr int Strip = 8;
  std::vector<uint16_t> Window(size_t(3) * W);
  for (int Ty = 0; Ty < H; Ty += Strip) {
    int Y1 = std::min(Ty + Strip, H);
    for (int Y = Ty - 2; Y < Y1; ++Y) {
      // Produce blurx row y+1 into the circular window.
      int Py = Y + 1;
      int Yc = clampi(Py, 0, H - 1);
      uint16_t *Row = &Window[size_t((Py % 3 + 3) % 3) * W];
      for (int X = 0; X < W; ++X) {
        int Xl = clampi(X - 1, 0, W - 1), Xr = clampi(X + 1, 0, W - 1);
        Row[X] = uint16_t((In[size_t(Yc) * W + Xl] + In[size_t(Yc) * W + X] +
                           In[size_t(Yc) * W + Xr]) /
                          3);
      }
      if (Y < Ty)
        continue;
      const uint16_t *R0 = &Window[size_t(((Y - 1) % 3 + 3) % 3) * W];
      const uint16_t *R1 = &Window[size_t((Y % 3 + 3) % 3) * W];
      const uint16_t *R2 = &Window[size_t(((Y + 1) % 3 + 3) % 3) * W];
      uint8_t *OutRow = &Out[size_t(Y) * W];
      for (int X = 0; X < W; ++X)
        OutRow[X] = uint8_t((R0[X] + R1[X] + R2[X]) / 3);
    }
  }
}

} // namespace

double halide::baselines::blurNaiveMs(int W, int H) {
  std::vector<uint8_t> In = makeInput(W, H);
  std::vector<uint8_t> Out(size_t(W) * H);
  return timeMs([&] { blurNaive(In.data(), Out.data(), W, H); });
}

double halide::baselines::blurExpertMs(int W, int H) {
  std::vector<uint8_t> In = makeInput(W, H);
  std::vector<uint8_t> Out(size_t(W) * H);
  return timeMs([&] { blurExpert(In.data(), Out.data(), W, H); });
}

void halide::baselines::blurReferenceOutput(int W, int H,
                                            const RawBuffer &Out) {
  std::vector<uint8_t> In = makeInput(W, H);
  std::vector<uint8_t> Flat(size_t(W) * H);
  blurNaive(In.data(), Flat.data(), W, H);
  uint8_t *O = static_cast<uint8_t *>(Out.Host);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      int Coords[2] = {X, Y};
      O[Out.offsetOf(Coords, 2)] = Flat[size_t(Y) * W + X];
    }
}

void halide::baselines::blurReference(const Buffer<uint8_t> &In,
                                      Buffer<uint8_t> &Out) {
  int W = In.width(), H = In.height();
  auto BlurxAt = [&](int X, int Y) {
    int Yc = clampi(Y, 0, H - 1);
    int Xl = clampi(X - 1, 0, W - 1), Xr = clampi(X + 1, 0, W - 1);
    return (In(Xl, Yc) + In(clampi(X, 0, W - 1), Yc) + In(Xr, Yc)) / 3;
  };
  for (int Y = 0; Y < Out.height(); ++Y)
    for (int X = 0; X < Out.width(); ++X) {
      int Yo = Out.minCoord(1) + Y, Xo = Out.minCoord(0) + X;
      int S = BlurxAt(Xo, Yo - 1) + BlurxAt(Xo, Yo) + BlurxAt(Xo, Yo + 1);
      Out(Xo, Yo) = uint8_t((S / 3) & 0xff);
    }
}
