//===-- apps/baselines/CameraPipeBaseline.cpp ----------------------------------===//
//
// Hand-written camera pipeline. Naive: each stage materialized at full
// size (Frankencamera-style staging through scratch buffers, but without
// the tiling). Expert: single fused pass over output scanline strips.
//
//===----------------------------------------------------------------------===//

#include "apps/baselines/Baselines.h"

#include <cmath>
#include <vector>

using namespace halide;

namespace {

inline int clampi(int V, int Lo, int Hi) {
  return V < Lo ? Lo : (V > Hi ? Hi : V);
}

std::vector<uint16_t> makeRaw(int W, int H) {
  std::vector<uint16_t> Raw(size_t(W) * H);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      int Site = (X % 2) + 2 * (Y % 2);
      int Base = (X * 37 + Y * 91) % 32768;
      Raw[size_t(Y) * W + X] =
          uint16_t(Site == 0 || Site == 3 ? Base + 16384 : Base + 8192);
    }
  return Raw;
}

std::vector<uint8_t> makeCurve() {
  std::vector<uint8_t> Curve(1024);
  for (int I = 0; I < 1024; ++I) {
    float V = float(I) / 1023.0f;
    float G = std::pow(V, 1.0f / 1.8f);
    float SC = G * G * (3.0f - 2.0f * G);
    float R = SC * 255.0f;
    Curve[size_t(I)] = uint8_t(R < 0 ? 0 : (R > 255 ? 255 : R));
  }
  return Curve;
}

struct HalfPlanes {
  int HW, HH;
  std::vector<float> Gr, R, B, Gb;
};

void deinterleave(const std::vector<uint16_t> &Raw, int W, int H,
                  HalfPlanes &P) {
  P.HW = W / 2;
  P.HH = H / 2;
  size_t N = size_t(P.HW) * P.HH;
  P.Gr.resize(N);
  P.R.resize(N);
  P.B.resize(N);
  P.Gb.resize(N);
  auto At = [&](int X, int Y) {
    return float(Raw[size_t(clampi(Y, 0, H - 1)) * W +
                     clampi(X, 0, W - 1)]) /
           65535.0f;
  };
  for (int Y = 0; Y < P.HH; ++Y)
    for (int X = 0; X < P.HW; ++X) {
      size_t I = size_t(Y) * P.HW + X;
      P.Gr[I] = At(2 * X, 2 * Y);
      P.R[I] = At(2 * X + 1, 2 * Y);
      P.B[I] = At(2 * X, 2 * Y + 1);
      P.Gb[I] = At(2 * X + 1, 2 * Y + 1);
    }
}

struct PlaneView {
  const std::vector<float> *Data;
  int W, H;
  float at(int X, int Y) const {
    return (*Data)[size_t(clampi(Y, 0, H - 1)) * W + clampi(X, 0, W - 1)];
  }
};

void demosaicAndFinish(const HalfPlanes &P, const std::vector<uint8_t> &Curve,
                       uint8_t *Out, int W, int /*H*/, int Y0, int Y1) {
  PlaneView Gr{&P.Gr, P.HW, P.HH}, R{&P.R, P.HW, P.HH}, B{&P.B, P.HW, P.HH},
      Gb{&P.Gb, P.HW, P.HH};
  for (int Y = Y0; Y < Y1; ++Y)
    for (int X = 0; X < W; ++X) {
      int Hx = X / 2, Hy = Y / 2;
      bool Right = X % 2, Bottom = Y % 2;
      float RV, GV, BV;
      if (!Right && !Bottom) {
        RV = (R.at(Hx, Hy) + R.at(Hx - 1, Hy)) * 0.5f;
        GV = Gr.at(Hx, Hy);
        BV = (B.at(Hx, Hy) + B.at(Hx, Hy - 1)) * 0.5f;
      } else if (Right && !Bottom) {
        RV = R.at(Hx, Hy);
        GV = (Gr.at(Hx, Hy) + Gr.at(Hx + 1, Hy) + Gb.at(Hx, Hy) +
              Gb.at(Hx, Hy - 1)) *
             0.25f;
        BV = (B.at(Hx, Hy) + B.at(Hx + 1, Hy) + B.at(Hx, Hy - 1) +
              B.at(Hx + 1, Hy - 1)) *
             0.25f;
      } else if (!Right && Bottom) {
        RV = (R.at(Hx, Hy) + R.at(Hx - 1, Hy) + R.at(Hx, Hy + 1) +
              R.at(Hx - 1, Hy + 1)) *
             0.25f;
        GV = (Gr.at(Hx, Hy) + Gr.at(Hx, Hy + 1) + Gb.at(Hx, Hy) +
              Gb.at(Hx - 1, Hy)) *
             0.25f;
        BV = B.at(Hx, Hy);
      } else {
        RV = (R.at(Hx, Hy) + R.at(Hx - 1, Hy)) * 0.5f;
        GV = Gb.at(Hx, Hy);
        BV = (B.at(Hx, Hy) + B.at(Hx, Hy - 1)) * 0.5f;
      }
      float RC = 1.6f * RV - 0.4f * GV - 0.2f * BV;
      float GC = -0.2f * RV + 1.5f * GV - 0.3f * BV;
      float BC = -0.1f * RV - 0.4f * GV + 1.5f * BV;
      auto Apply = [&](float V) {
        int I = clampi(int(V * 1023.0f), 0, 1023);
        return Curve[size_t(I)];
      };
      size_t O = (size_t(Y) * W + X) * 3;
      Out[O + 0] = Apply(RC);
      Out[O + 1] = Apply(GC);
      Out[O + 2] = Apply(BC);
    }
}

} // namespace

void halide::baselines::cameraPipeReferenceOutput(int W, int H,
                                                  const RawBuffer &Out) {
  std::vector<uint16_t> Raw = makeRaw(W, H);
  std::vector<uint8_t> Curve = makeCurve();
  std::vector<uint8_t> OutV(size_t(W) * H * 3);
  HalfPlanes P;
  deinterleave(Raw, W, H, P);
  demosaicAndFinish(P, Curve, OutV.data(), W, H, 0, H);
  uint8_t *O = static_cast<uint8_t *>(Out.Host);
  for (int C = 0; C < 3; ++C)
    for (int Y = 0; Y < H; ++Y)
      for (int X = 0; X < W; ++X) {
        int Coords[3] = {X, Y, C};
        O[Out.offsetOf(Coords, 3)] = OutV[(size_t(Y) * W + X) * 3 + C];
      }
}

double halide::baselines::cameraPipeNaiveMs(int W, int H) {
  std::vector<uint16_t> Raw = makeRaw(W, H);
  std::vector<uint8_t> Curve = makeCurve();
  std::vector<uint8_t> Out(size_t(W) * H * 3);
  return timeMs([&] {
    // Stage everything at full size first (breadth-first).
    HalfPlanes P;
    deinterleave(Raw, W, H, P);
    demosaicAndFinish(P, Curve, Out.data(), W, H, 0, H);
  });
}

double halide::baselines::cameraPipeExpertMs(int W, int H) {
  std::vector<uint16_t> Raw = makeRaw(W, H);
  std::vector<uint8_t> Curve = makeCurve();
  std::vector<uint8_t> Out(size_t(W) * H * 3);
  // Deinterleave once; then process output in strips for locality.
  return timeMs([&] {
    HalfPlanes P;
    deinterleave(Raw, W, H, P);
    constexpr int Strip = 16;
    for (int Y0 = 0; Y0 < H; Y0 += Strip)
      demosaicAndFinish(P, Curve, Out.data(), W, H, Y0,
                        std::min(Y0 + Strip, H));
  });
}
