//===-- apps/baselines/BilateralGridBaseline.cpp -------------------------------===//
//
// Hand-written bilateral grid in the style of the original authors' CPU
// reference: grid construction, three axis blurs, trilinear slicing. The
// naive version materializes each stage; the expert version fuses the blur
// chain through a per-z working set.
//
//===----------------------------------------------------------------------===//

#include "apps/baselines/Baselines.h"

#include <cmath>
#include <vector>

using namespace halide;

namespace {

constexpr int S = 8;
constexpr float RS = 0.125f;
constexpr int ZB = 10;

std::vector<float> makeInput(int W, int H) {
  std::vector<float> In(size_t(W) * H);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      In[size_t(Y) * W + X] =
          0.5f + 0.5f * float(((X / 3 + Y / 5) % 17)) / 17.0f - 0.25f;
  return In;
}

inline int clampi(int V, int Lo, int Hi) {
  return V < Lo ? Lo : (V > Hi ? Hi : V);
}

struct Grid {
  int GW, GH;
  std::vector<float> Data; // [c][z][y][x], c in {value, weight}
  float &at(int X, int Y, int Z, int C) {
    return Data[((size_t(C) * ZB + Z) * GH + Y) * GW + X];
  }
};

void buildGrid(const std::vector<float> &In, int W, int H, Grid &G) {
  G.GW = (W + S - 1) / S + 1;
  G.GH = (H + S - 1) / S + 1;
  G.Data.assign(size_t(2) * ZB * G.GH * G.GW, 0.0f);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      float V = In[size_t(Y) * W + X];
      V = V < 0 ? 0 : (V > 1 ? 1 : V);
      int Z = clampi(int(V / RS + 0.5f), 0, ZB - 1);
      G.at(X / S, Y / S, Z, 0) += V;
      G.at(X / S, Y / S, Z, 1) += 1.0f;
    }
}

void blurAxis(Grid &G, int Axis) {
  Grid Tmp = G;
  auto Tap = [&](int X, int Y, int Z, int C, int O) {
    int XX = Axis == 0 ? clampi(X + O, 0, G.GW - 1) : X;
    int YY = Axis == 1 ? clampi(Y + O, 0, G.GH - 1) : Y;
    int ZZ = Axis == 2 ? clampi(Z + O, 0, ZB - 1) : Z;
    return Tmp.at(XX, YY, ZZ, C);
  };
  for (int C = 0; C < 2; ++C)
    for (int Z = 0; Z < ZB; ++Z)
      for (int Y = 0; Y < G.GH; ++Y)
        for (int X = 0; X < G.GW; ++X)
          G.at(X, Y, Z, C) = Tap(X, Y, Z, C, -2) + 2 * Tap(X, Y, Z, C, -1) +
                             4 * Tap(X, Y, Z, C, 0) +
                             2 * Tap(X, Y, Z, C, 1) + Tap(X, Y, Z, C, 2);
}

void slice(const std::vector<float> &In, int W, int H, Grid &G,
           std::vector<float> &Out) {
  auto Sample = [&](int X, int Y, int Z, int C) {
    return G.at(clampi(X, 0, G.GW - 1), clampi(Y, 0, G.GH - 1),
                clampi(Z, 0, ZB - 1), C);
  };
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      float V = In[size_t(Y) * W + X];
      V = V < 0 ? 0 : (V > 1 ? 1 : V);
      float Zv = V / RS;
      int Zi = clampi(int(Zv), 0, ZB - 2);
      float Zf = Zv - float(Zi);
      float Xf = float(X % S) / S, Yf = float(Y % S) / S;
      int Xi = X / S, Yi = Y / S;
      float Num = 0, Den = 0;
      for (int C = 0; C < 2; ++C) {
        float V00 = Sample(Xi, Yi, Zi, C) * (1 - Xf) +
                    Sample(Xi + 1, Yi, Zi, C) * Xf;
        float V01 = Sample(Xi, Yi + 1, Zi, C) * (1 - Xf) +
                    Sample(Xi + 1, Yi + 1, Zi, C) * Xf;
        float V10 = Sample(Xi, Yi, Zi + 1, C) * (1 - Xf) +
                    Sample(Xi + 1, Yi, Zi + 1, C) * Xf;
        float V11 = Sample(Xi, Yi + 1, Zi + 1, C) * (1 - Xf) +
                    Sample(Xi + 1, Yi + 1, Zi + 1, C) * Xf;
        float VL = (V00 * (1 - Yf) + V01 * Yf) * (1 - Zf) +
                   (V10 * (1 - Yf) + V11 * Yf) * Zf;
        (C == 0 ? Num : Den) = VL;
      }
      Out[size_t(Y) * W + X] = Num / (Den > 1e-6f ? Den : 1e-6f);
    }
}

} // namespace

void halide::baselines::bilateralGridReferenceOutput(int W, int H,
                                                     const RawBuffer &Out) {
  std::vector<float> In = makeInput(W, H);
  std::vector<float> OutV(size_t(W) * H);
  Grid G;
  buildGrid(In, W, H, G);
  blurAxis(G, 2);
  blurAxis(G, 0);
  blurAxis(G, 1);
  slice(In, W, H, G, OutV);
  float *O = static_cast<float *>(Out.Host);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      int Coords[2] = {X, Y};
      O[Out.offsetOf(Coords, 2)] = OutV[size_t(Y) * W + X];
    }
}

double halide::baselines::bilateralGridNaiveMs(int W, int H) {
  std::vector<float> In = makeInput(W, H);
  std::vector<float> Out(size_t(W) * H);
  return timeMs([&] {
    Grid G;
    buildGrid(In, W, H, G);
    blurAxis(G, 2);
    blurAxis(G, 0);
    blurAxis(G, 1);
    slice(In, W, H, G, Out);
  });
}

double halide::baselines::bilateralGridExpertMs(int W, int H) {
  std::vector<float> In = makeInput(W, H);
  std::vector<float> Out(size_t(W) * H);
  return timeMs([&] {
    Grid G;
    buildGrid(In, W, H, G);
    // Fused z/x/y blur: single pass per axis pair with a small working
    // set, avoiding two of the three full-grid round trips.
    Grid T1 = G;
    for (int C = 0; C < 2; ++C)
      for (int Y = 0; Y < G.GH; ++Y)
        for (int X = 0; X < G.GW; ++X)
          for (int Z = 0; Z < ZB; ++Z) {
            auto Tap = [&](int O) {
              return T1.at(X, Y, clampi(Z + O, 0, ZB - 1), C);
            };
            G.at(X, Y, Z, C) =
                Tap(-2) + 2 * Tap(-1) + 4 * Tap(0) + 2 * Tap(1) + Tap(2);
          }
    blurAxis(G, 0);
    blurAxis(G, 1);
    slice(In, W, H, G, Out);
  });
}
