//===-- apps/BilateralGrid.cpp - Bilateral grid [Chen et al. 2007] -----------===//
//
// The paper's bilateral-grid app (section 6): scatter the image into a
// coarse 4-D grid (x, y, intensity z, homogeneous channel c), building a
// windowed histogram in each grid column; blur the grid along each axis
// with a 5-point stencil; then slice the output by trilinear interpolation
// at data-dependent grid coordinates.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

using namespace halide;

namespace {
constexpr int SSigma = 8;      // spatial grid cell size
constexpr float RSigma = 0.125f; // range bin size (8 intensity bins)
constexpr int ZBins = 10;      // ceil(1/RSigma) + padding for blur taps
} // namespace

App halide::makeBilateralGridApp() {
  App A;
  A.Name = "bilateral_grid";
  ImageParam In(Float(32), 2, "bg_input");
  A.Inputs = {In};

  Var x("x"), y("y"), z("z"), c("c");

  // Clamped input.
  Func Input("bg_clamped");
  Input(x, y) = In(clamp(x, 0, In.width() - 1), clamp(y, 0, In.height() - 1));

  // Grid construction: a scattering reduction over each s_sigma x s_sigma
  // tile (paper: "effectively building a windowed histogram in each column
  // of the grid").
  RDom R(0, SSigma, 0, SSigma, "bgr");
  Func Grid("bg_grid");
  Expr Val = Input(x * SSigma + R.x, y * SSigma + R.y);
  Val = clamp(Val, 0.0f, 1.0f);
  Expr Zi = cast(Int(32), Val * (1.0f / RSigma) + 0.5f);
  Grid(x, y, z, c) = 0.0f;
  Grid(x, y, clamp(Zi, 0, ZBins - 1), c) += select(c == 0, Val, 1.0f);
  Grid.bound(c, 0, 2).bound(z, 0, ZBins);

  // Blur the grid along each axis with the 5-point [1 2 4 2 1] stencil.
  auto blur5 = [&](Func F, const char *Name, int Axis) {
    Func B(Name);
    auto At = [&](int Offset) {
      Expr Xs = Axis == 0 ? Expr(x + Offset) : Expr(x);
      Expr Ys = Axis == 1 ? Expr(y + Offset) : Expr(y);
      Expr Zs = Axis == 2 ? Expr(clamp(z + Offset, 0, ZBins - 1)) : Expr(z);
      return F(Xs, Ys, Zs, c);
    };
    B(x, y, z, c) = At(-2) + At(-1) * 2.0f + At(0) * 4.0f + At(1) * 2.0f +
                    At(2);
    B.bound(c, 0, 2).bound(z, 0, ZBins);
    return B;
  };
  Func Blurz = blur5(Grid, "bg_blurz", 2);
  Func Blurx = blur5(Blurz, "bg_blurx", 0);
  Func Blury = blur5(Blurx, "bg_blury", 1);

  // Slicing: trilinear interpolation at data-dependent coordinates (the
  // paper's data-dependent gather).
  Func Interp("bg_interp");
  {
    Expr V = clamp(Input(x, y), 0.0f, 1.0f);
    Expr Zv = V * (1.0f / RSigma);
    Expr Zint = clamp(cast(Int(32), Zv), 0, ZBins - 2);
    Expr Zf = Zv - cast(Float(32), Zint);
    Expr Xf = cast(Float(32), x % SSigma) / float(SSigma);
    Expr Yf = cast(Float(32), y % SSigma) / float(SSigma);
    Expr Xi = x / SSigma;
    Expr Yi = y / SSigma;
    auto G = [&](Expr GX, Expr GY, Expr GZ) { return Blury(GX, GY, GZ, c); };
    Expr L = lerp(lerp(lerp(G(Xi, Yi, Zint), G(Xi + 1, Yi, Zint), Xf),
                       lerp(G(Xi, Yi + 1, Zint), G(Xi + 1, Yi + 1, Zint),
                            Xf),
                       Yf),
                  lerp(lerp(G(Xi, Yi, Zint + 1), G(Xi + 1, Yi, Zint + 1),
                            Xf),
                       lerp(G(Xi, Yi + 1, Zint + 1),
                            G(Xi + 1, Yi + 1, Zint + 1), Xf),
                       Yf),
                  Zf);
    Interp(x, y, c) = L;
    Interp.bound(c, 0, 2);
  }

  // Normalize by the homogeneous coordinate.
  Func Out("bilateral_grid");
  Out(x, y) = Interp(x, y, 0) / max(Interp(x, y, 1), 1e-6f);
  A.Output = Out;

  std::vector<Function> Fns = {Input.function(),  Grid.function(),
                               Blurz.function(),  Blurx.function(),
                               Blury.function(),  Interp.function(),
                               Out.function()};
  auto Reset = [Fns]() mutable {
    for (Function &F : Fns)
      F.resetSchedule();
  };
  A.ScheduleBreadthFirst = [Reset, Input, Grid, Blurz, Blurx, Blury,
                            Interp]() mutable {
    Reset();
    Input.computeRoot();
    Grid.computeRoot();
    Blurz.computeRoot();
    Blurx.computeRoot();
    Blury.computeRoot();
    Interp.computeRoot();
  };
  A.ScheduleTuned = [Reset, Grid, Blurz, Blurx, Blury, Out]() mutable {
    Reset();
    Var x("x"), y("y"), z("z");
    // Grid stages at root (they are coarse); blur stages fused per z-slab,
    // output vectorized and parallel over scanlines — the shape of the
    // paper's tuned CPU schedule (parallel grain control + fusion of the
    // blur chain).
    Grid.computeRoot();
    Blurz.computeRoot().parallel(z);
    Blurx.computeAt(Blury, y);
    Blury.computeRoot().parallel(z);
    Out.vectorize(x, 8).parallel(y);
  };
  A.ScheduleGpu = [Reset, Grid, Blurz, Blurx, Blury, Out]() mutable {
    Reset();
    Var x("x"), y("y"), bx("bx"), by("by"), tx("tx"), ty("ty");
    Grid.computeRoot();
    Blurz.computeRoot();
    Blurx.computeAt(Blury, Var("y"));
    Blury.computeRoot();
    Out.gpuTile(x, y, bx, by, tx, ty, 16, 16);
  };

  A.MakeInputs = [In](int W, int H) {
    Buffer<float> Input(W, H);
    Input.fill([](int X, int Y) {
      return 0.5f + 0.5f * float(((X / 3 + Y / 5) % 17)) / 17.0f - 0.25f;
    });
    ParamBindings P;
    P.bind(In.name(), Input);
    return P;
  };
  A.PaperHalideLines = 34;
  A.PaperExpertLines = 122;
  A.PaperHalideMs = 36;
  A.PaperExpertMs = 158;
  A.ReproLines = 42;
  return A;
}
