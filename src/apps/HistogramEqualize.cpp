//===-- apps/HistogramEqualize.cpp - Section 2's reduction example -----------===//
//
// The histogram-equalization pipeline from paper section 2: a scattering
// reduction builds a histogram, a recursive scan integrates it into a CDF,
// and a point-wise operation remaps the input through the CDF — combining
// reductions with a data-dependent gather.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

using namespace halide;

App halide::makeHistogramEqualizeApp() {
  App A;
  A.Name = "histeq";
  ImageParam In(UInt(8), 2, "histeq_input");
  A.Inputs = {In};

  Var x("x"), y("y"), i("i");
  Func Histogram("histogram"), Cdf("cdf"), Out("histeq");

  RDom R(0, In.width(), 0, In.height(), "himg");
  Histogram(i) = cast(UInt(32), 0);
  Histogram(clamp(cast(Int(32), In(R.x, R.y)), 0, 255)) +=
      cast(UInt(32), 1);
  Histogram.bound(i, 0, 256);

  RDom Ri(1, 255, "hscan");
  Cdf(i) = cast(UInt(32), 0);
  Cdf(0) = Histogram(0);
  Cdf(Ri) = Cdf(Expr(Ri) - 1) + Histogram(Ri);
  Cdf.bound(i, 0, 256);

  Expr Total = cast(Float(32), In.width() * In.height());
  Expr Remapped =
      cast(Float(32), Cdf(clamp(cast(Int(32), In(clamp(x, 0, In.width() - 1),
                                                 clamp(y, 0, In.height() - 1))),
                                0, 255))) /
      Total * 255.0f;
  Out(x, y) = cast(UInt(8), clamp(Remapped, 0.0f, 255.0f));
  A.Output = Out;

  Function OutFn = Out.function(), HistFn = Histogram.function(),
           CdfFn = Cdf.function();
  auto Reset = [OutFn, HistFn, CdfFn]() mutable {
    OutFn.resetSchedule();
    HistFn.resetSchedule();
    CdfFn.resetSchedule();
  };
  A.ScheduleBreadthFirst = [Reset, Histogram, Cdf]() mutable {
    Reset();
    Histogram.computeRoot();
    Cdf.computeRoot();
  };
  A.ScheduleTuned = [Reset, Histogram, Cdf, Out]() mutable {
    Reset();
    Var x("x"), y("y");
    Histogram.computeRoot();
    Cdf.computeRoot();
    Out.vectorize(x, 8).parallel(y);
  };

  A.MakeInputs = [In](int W, int H) {
    Buffer<uint8_t> Input(W, H);
    // A low-contrast ramp so equalization has something to do.
    Input.fill([W](int X, int Y) { return 64 + ((X + Y * 3) % W) % 96; });
    ParamBindings P;
    P.bind(In.name(), Input);
    return P;
  };
  A.ReproLines = 14;
  return A;
}
