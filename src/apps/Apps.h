//===-- apps/Apps.h - The paper's evaluation applications -------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Halide implementations of the five applications in the paper's
/// evaluation (section 6) plus the histogram-equalization example from
/// section 2, each packaged with schedule variants (breadth-first,
/// hand-tuned CPU, simulated-GPU) and input generators, so examples, tests,
/// and benchmarks share one registry.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_APPS_APPS_H
#define HALIDE_APPS_APPS_H

#include "lang/ImageParam.h"
#include "lang/Pipeline.h"

#include <functional>
#include <string>
#include <vector>

namespace halide {

/// A packaged application pipeline.
struct App {
  std::string Name;
  Func Output;
  std::vector<ImageParam> Inputs;
  /// Handles keeping every intermediate stage alive (Call nodes reference
  /// stages by name through the process-wide registry).
  std::vector<Function> KeepAlive;

  /// Apply a schedule (each resets all stage schedules first).
  std::function<void()> ScheduleBreadthFirst;
  std::function<void()> ScheduleTuned;
  std::function<void()> ScheduleGpu; // may be null (no GPU variant)

  /// Builds input bindings (and any scalar params) for a W x H frame.
  /// The returned bindings do NOT include the output buffer.
  std::function<ParamBindings(int W, int H)> MakeInputs;

  /// Runs the hand-written "expert" baseline (plain C++), writing into a
  /// float/byte buffer laid out like the pipeline output; used by tests
  /// for correctness and by Figure-7 benchmarks for the time comparison.
  /// Null for apps without a baseline.
  std::function<double(int W, int H)> ExpertBaselineMs;
  /// Runs the naive (clean C++, breadth-first) baseline; returns ms.
  std::function<double(int W, int H)> NaiveBaselineMs;

  /// Writes the naive hand-written baseline's output for the app's standard
  /// W x H synthetic input into \p Out (shaped like the pipeline output).
  /// Null for apps without a baseline. Used by the differential
  /// schedule-correctness harness as the independent expected result.
  std::function<void(int W, int H, const RawBuffer &Out)> Reference;
  /// Border pixels excluded when comparing against Reference: the baselines
  /// clamp each pyramid level at its own allocated extent while the Halide
  /// pipelines extend intermediate levels through bounds inference, so the
  /// two conventions legitimately diverge near image edges.
  int ReferenceMargin = 0;

  /// Properties reported by the paper (Figures 6 and 7) for context.
  int PaperHalideLines = 0;
  int PaperExpertLines = 0;
  double PaperHalideMs = 0;
  double PaperExpertMs = 0;
  /// This reproduction's own line counts (filled by the registry).
  int ReproLines = 0;
};

App makeBlurApp();
App makeBilateralGridApp();
App makeCameraPipeApp();
App makeInterpolateApp();
/// \p Levels defaults to the paper's 8 pyramid levels; smaller values keep
/// test time down.
App makeLocalLaplacianApp(int Levels = 8, int IntensityLevels = 8);
App makeHistogramEqualizeApp();

/// All five paper apps (blur, bilateral grid, camera pipe, interpolate,
/// local Laplacian), in the order of the paper's Figure 6/7 tables.
std::vector<App> paperApps(int LocalLaplacianLevels = 8);

} // namespace halide

#endif // HALIDE_APPS_APPS_H
