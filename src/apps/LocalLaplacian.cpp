//===-- apps/LocalLaplacian.cpp - Local Laplacian filters ----------------------===//
//
// The paper's flagship app (Figure 1, section 6): edge-respecting tone
// mapping via Laplacian pyramids. The pipeline builds a Gaussian pyramid of
// the input, K remapped Gaussian pyramids (one per intensity level, carried
// as a k dimension), takes Laplacians, selects between intensity levels by
// a data-dependent access (DDA) on the input pyramid, and collapses the
// result pyramid. With 8 pyramid levels this instantiates the ~99-stage
// graph of Figure 1.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "analysis/CallGraph.h"

using namespace halide;

App halide::makeLocalLaplacianApp(int Levels, int IntensityLevels) {
  const int J = Levels;
  const int K = IntensityLevels;
  App A;
  A.Name = "local_laplacian";
  ImageParam In(UInt(16), 2, "ll_input");
  A.Inputs = {In};

  Var x("x"), y("y"), k("k");

  // Stages created inside helper lambdas must outlive the factory: Call
  // nodes reference stages by name through the registry, so every created
  // Func is retained here.
  std::vector<Function> Keep;
  auto Retain = [&Keep](Func F) {
    Keep.push_back(F.function());
    return F;
  };

  // Floating point, clamped input.
  Func Floating("ll_float");
  Floating(x, y) = cast(Float(32), In(clamp(x, 0, In.width() - 1),
                                      clamp(y, 0, In.height() - 1))) /
                   65535.0f;

  // Remap LUT, computed once (the paper's LUT stage).
  const float Alpha = 1.0f / float(K - 1);
  const float Beta = 1.0f;
  Func Remap("ll_remap");
  {
    Var i("i");
    Expr Fx = cast(Float(32), i) / 256.0f;
    Remap(i) = Alpha * Fx * exp(-Fx * Fx / 2.0f);
  }

  // The K remapped images, carried as dimension k.
  Func GPyramid0("ll_gpyr0");
  {
    Expr Level = cast(Float(32), k) * (1.0f / float(K - 1));
    Expr Idx = clamp(cast(Int(32), Floating(x, y) * float(K - 1) * 256.0f),
                     0, (K - 1) * 256);
    GPyramid0(x, y, k) =
        Beta * (Floating(x, y) - Level) + Level +
        Remap(clamp(Idx - 256 * k, -(K - 1) * 256, (K - 1) * 256));
    GPyramid0.bound(k, 0, K);
  }

  auto downsample = [&](Func F, const std::string &Name, bool HasK) {
    Func DX = Retain(Func(Name + "_dx")), D = Retain(Func(Name));
    if (HasK) {
      DX(x, y, k) = (F(2 * x - 1, y, k) + 3.0f * (F(2 * x, y, k) +
                                                  F(2 * x + 1, y, k)) +
                     F(2 * x + 2, y, k)) /
                    8.0f;
      D(x, y, k) = (DX(x, 2 * y - 1, k) + 3.0f * (DX(x, 2 * y, k) +
                                                  DX(x, 2 * y + 1, k)) +
                    DX(x, 2 * y + 2, k)) /
                   8.0f;
      DX.bound(k, 0, K);
      D.bound(k, 0, K);
    } else {
      DX(x, y) = (F(2 * x - 1, y) + 3.0f * (F(2 * x, y) + F(2 * x + 1, y)) +
                  F(2 * x + 2, y)) /
                 8.0f;
      D(x, y) = (DX(x, 2 * y - 1) + 3.0f * (DX(x, 2 * y) +
                                            DX(x, 2 * y + 1)) +
                 DX(x, 2 * y + 2)) /
                8.0f;
    }
    return D;
  };
  auto upsample = [&](Func F, const std::string &Name, bool HasK) {
    Func UX = Retain(Func(Name + "_ux")), U = Retain(Func(Name));
    if (HasK) {
      UX(x, y, k) = 0.25f * F((x / 2) - 1 + 2 * (x % 2), y, k) +
                    0.75f * F(x / 2, y, k);
      U(x, y, k) = 0.25f * UX(x, (y / 2) - 1 + 2 * (y % 2), k) +
                   0.75f * UX(x, y / 2, k);
      UX.bound(k, 0, K);
      U.bound(k, 0, K);
    } else {
      UX(x, y) = 0.25f * F((x / 2) - 1 + 2 * (x % 2), y) +
                 0.75f * F(x / 2, y);
      U(x, y) = 0.25f * UX(x, (y / 2) - 1 + 2 * (y % 2)) +
                0.75f * UX(x, y / 2);
    }
    return U;
  };

  // Gaussian pyramid of the remapped stack (k-dimensional).
  std::vector<Func> GPyramid(J);
  GPyramid[0] = GPyramid0;
  for (int L = 1; L < J; ++L)
    GPyramid[L] = downsample(GPyramid[L - 1],
                             "ll_gpyr" + std::to_string(L), true);

  // Laplacian pyramid of the remapped stack.
  std::vector<Func> LPyramid(J);
  LPyramid[J - 1] = GPyramid[J - 1];
  for (int L = J - 2; L >= 0; --L) {
    Func Up = upsample(GPyramid[L + 1], "ll_lup" + std::to_string(L), true);
    LPyramid[L] = Func("ll_lpyr" + std::to_string(L));
    LPyramid[L](x, y, k) = GPyramid[L](x, y, k) - Up(x, y, k);
    LPyramid[L].bound(k, 0, K);
  }

  // Gaussian pyramid of the input itself.
  std::vector<Func> InGPyramid(J);
  InGPyramid[0] = Floating;
  for (int L = 1; L < J; ++L)
    InGPyramid[L] = downsample(InGPyramid[L - 1],
                               "ll_inpyr" + std::to_string(L), false);

  // Output Laplacian pyramid: the paper's DDA — choose which remapped
  // pyramid to sample based on the local input intensity.
  std::vector<Func> OutLPyramid(J);
  for (int L = 0; L < J; ++L) {
    Expr LevelV = InGPyramid[L](x, y) * float(K - 1);
    Expr Li = clamp(cast(Int(32), LevelV), 0, K - 2);
    Expr Lf = clamp(LevelV - cast(Float(32), Li), 0.0f, 1.0f);
    OutLPyramid[L] = Func("ll_outlpyr" + std::to_string(L));
    OutLPyramid[L](x, y) = (1.0f - Lf) * LPyramid[L](x, y, Li) +
                           Lf * LPyramid[L](x, y, Li + 1);
  }

  // Collapse the output pyramid.
  std::vector<Func> OutGPyramid(J);
  OutGPyramid[J - 1] = OutLPyramid[J - 1];
  for (int L = J - 2; L >= 0; --L) {
    Func Up = upsample(OutGPyramid[L + 1], "ll_oup" + std::to_string(L),
                       false);
    OutGPyramid[L] = Func("ll_outgpyr" + std::to_string(L));
    OutGPyramid[L](x, y) = Up(x, y) + OutLPyramid[L](x, y);
  }

  Func Out("local_laplacian");
  Out(x, y) = cast(UInt(16),
                   clamp(OutGPyramid[0](x, y), 0.0f, 1.0f) * 65535.0f);
  A.Output = Out;
  // Keep every stage alive: Call nodes reference stages by name only.
  A.KeepAlive = Keep;
  for (const auto &[StageName, StageFn] : buildEnvironment(Out.function()))
    A.KeepAlive.push_back(StageFn);

  // Schedules operate on the whole environment generically: the graph is
  // too large to schedule stage by name.
  Function OutFn = Out.function();
  auto ForEachStage = [OutFn](const std::function<void(Function &)> &Fn) {
    std::map<std::string, Function> Env = buildEnvironment(OutFn);
    for (auto &[Name, F] : Env)
      if (Name != OutFn.name())
        Fn(F);
  };
  A.ScheduleBreadthFirst = [ForEachStage, OutFn]() mutable {
    Function Copy = OutFn;
    Copy.resetSchedule();
    ForEachStage([](Function &F) {
      F.resetSchedule();
      F.schedule().ComputeLevel = LoopLevel::root();
      F.schedule().StoreLevel = LoopLevel::root();
    });
  };
  A.ScheduleTuned = [ForEachStage, OutFn]() mutable {
    Function Copy = OutFn;
    Copy.resetSchedule();
    // The paper's tuned schedule mixes strategies across the 99 stages; we
    // approximate its shape: x-passes of resampling fuse into their
    // consumers' scanlines (inline), pyramid levels at root with parallel
    // scanlines and vectorized x on the large fine levels.
    ForEachStage([](Function &F) {
      F.resetSchedule();
      bool IsXPass = endsWith(F.name(), "_dx") || endsWith(F.name(), "_ux");
      if (IsXPass && !F.hasUpdateDefinition())
        return; // stays inline: fused into the y pass
      F.schedule().ComputeLevel = LoopLevel::root();
      F.schedule().StoreLevel = LoopLevel::root();
      // Parallel over the outermost dimension, vectorize x by 8.
      if (!F.schedule().Dims.empty()) {
        Dim &Outer = F.schedule().Dims.front();
        if (!Outer.IsRVar)
          Outer.Kind = ForType::Parallel;
      }
    });
    Func OutF(Copy);
    Var x("x"), y("y");
    OutF.parallel(y).vectorize(x, 8);
  };
  A.ScheduleGpu = [ForEachStage, OutFn]() mutable {
    Function Copy = OutFn;
    Copy.resetSchedule();
    ForEachStage([](Function &F) {
      F.resetSchedule();
      bool IsXPass = endsWith(F.name(), "_dx") || endsWith(F.name(), "_ux");
      if (IsXPass && !F.hasUpdateDefinition())
        return;
      F.schedule().ComputeLevel = LoopLevel::root();
      F.schedule().StoreLevel = LoopLevel::root();
      // Map each root stage's x/y onto the simulated-GPU grid when 2-D+.
      Schedule &S = F.schedule();
      if (S.Dims.size() >= 2) {
        Func FF(F);
        Var GX(S.Dims.back().Var);
        Var GY(S.Dims[S.Dims.size() - 2].Var);
        FF.gpuTile(GX, GY, Var(GX.name() + "$b"), Var(GY.name() + "$b"),
                   Var(GX.name() + "$t"), Var(GY.name() + "$t"), 8, 8);
      }
    });
    Func OutF(Copy);
    Var x("x"), y("y"), bx("bx"), by("by"), tx("tx"), ty("ty");
    OutF.gpuTile(x, y, bx, by, tx, ty, 8, 8);
  };

  A.MakeInputs = [In](int W, int H) {
    Buffer<uint16_t> Input(W, H);
    Input.fill([](int X, int Y) {
      return uint16_t((X * 131 + Y * 523 + (X * Y) / 7) % 65536);
    });
    ParamBindings P;
    P.bind(In.name(), Input);
    return P;
  };
  A.PaperHalideLines = 52;
  A.PaperExpertLines = 262;
  A.PaperHalideMs = 113;
  A.PaperExpertMs = 189;
  A.ReproLines = 70;
  return A;
}
