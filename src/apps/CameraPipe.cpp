//===-- apps/CameraPipe.cpp - Raw-to-RGB camera pipeline -----------------------===//
//
// The paper's camera pipeline (section 6): transforms raw Bayer-mosaic
// sensor data into a usable image. Deinterleave, demosaic (a combination of
// interleaved, inter-dependent stencils), color-matrix correction, and a
// gamma curve applied through a lookup table computed once at root — the
// paper's LUT-plus-gather pattern.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

using namespace halide;

App halide::makeCameraPipeApp() {
  App A;
  A.Name = "camera_pipe";
  ImageParam Raw(UInt(16), 2, "cam_raw");
  A.Inputs = {Raw};

  Var x("x"), y("y"), c("c");

  Func Clamped("cam_clamped");
  Clamped(x, y) = cast(Float(32), Raw(clamp(x, 0, Raw.width() - 1),
                                      clamp(y, 0, Raw.height() - 1))) /
                  65535.0f;

  // Deinterleave the GRBG Bayer mosaic into per-site planes at half
  // resolution.
  Func Gr("cam_gr"), R("cam_r"), B("cam_b"), Gb("cam_gb");
  Gr(x, y) = Clamped(2 * x, 2 * y);
  R(x, y) = Clamped(2 * x + 1, 2 * y);
  B(x, y) = Clamped(2 * x, 2 * y + 1);
  Gb(x, y) = Clamped(2 * x + 1, 2 * y + 1);

  // Demosaic: interpolate the two missing channels at each site with
  // small inter-dependent stencils, then re-interleave to full resolution.
  Func GAtR("cam_g_at_r"), GAtB("cam_g_at_b");
  GAtR(x, y) = (Gr(x, y) + Gr(x + 1, y) + Gb(x, y) + Gb(x, y - 1)) * 0.25f;
  GAtB(x, y) = (Gr(x, y) + Gr(x, y + 1) + Gb(x, y) + Gb(x - 1, y)) * 0.25f;

  Func RAtG("cam_r_at_g"), BAtG("cam_b_at_g"), RAtB("cam_r_at_b"),
      BAtR("cam_b_at_r");
  RAtG(x, y) = (R(x, y) + R(x - 1, y)) * 0.5f;
  BAtG(x, y) = (B(x, y) + B(x, y - 1)) * 0.5f;
  RAtB(x, y) = (R(x, y) + R(x - 1, y) + R(x, y + 1) + R(x - 1, y + 1)) *
               0.25f;
  BAtR(x, y) = (B(x, y) + B(x + 1, y) + B(x, y - 1) + B(x + 1, y - 1)) *
               0.25f;

  // Re-interleave to full resolution per output channel.
  Func Demosaic("cam_demosaic");
  {
    Expr Hx = x / 2, Hy = y / 2;
    Expr IsRight = (x % 2) == 1, IsBottom = (y % 2) == 1;
    Expr RedV = select(!IsRight && !IsBottom, RAtG(Hx, Hy),
                       IsRight && !IsBottom, R(Hx, Hy),
                       !IsRight && IsBottom, RAtB(Hx, Hy),
                       RAtG(Hx, Hy));
    Expr GreenV = select(!IsRight && !IsBottom, Gr(Hx, Hy),
                         IsRight && !IsBottom, GAtR(Hx, Hy),
                         !IsRight && IsBottom, GAtB(Hx, Hy),
                         Gb(Hx, Hy));
    Expr BlueV = select(!IsRight && !IsBottom, BAtG(Hx, Hy),
                        IsRight && !IsBottom, BAtR(Hx, Hy),
                        !IsRight && IsBottom, B(Hx, Hy),
                        BAtG(Hx, Hy));
    Demosaic(x, y, c) = select(c == 0, RedV, c == 1, GreenV, BlueV);
    Demosaic.bound(c, 0, 3);
  }

  // Color-matrix correction.
  Func Corrected("cam_corrected");
  {
    Expr RR = Demosaic(x, y, 0), GG = Demosaic(x, y, 1),
         BB = Demosaic(x, y, 2);
    Expr RC = 1.6f * RR - 0.4f * GG - 0.2f * BB;
    Expr GC = -0.2f * RR + 1.5f * GG - 0.3f * BB;
    Expr BC = -0.1f * RR - 0.4f * GG + 1.5f * BB;
    Corrected(x, y, c) = select(c == 0, RC, c == 1, GC, BC);
    Corrected.bound(c, 0, 3);
  }

  // Gamma/contrast curve applied via a 1024-entry LUT computed at root.
  Func Curve("cam_curve");
  {
    Var i("i");
    Expr V = cast(Float(32), i) / 1023.0f;
    Expr Gamma = pow(V, 1.0f / 1.8f);
    // Gentle s-curve for contrast.
    Expr SCurve = Gamma * Gamma * (3.0f - 2.0f * Gamma);
    Curve(i) = cast(UInt(8), clamp(SCurve * 255.0f, 0.0f, 255.0f));
    Curve.bound(i, 0, 1024);
  }

  Func Out("camera_pipe");
  Out(x, y, c) = Curve(clamp(cast(Int(32), Corrected(x, y, c) * 1023.0f),
                             0, 1023));
  Out.bound(c, 0, 3);
  A.Output = Out;

  std::vector<Function> Fns;
  for (Func F : {Clamped, Gr, R, B, Gb, GAtR, GAtB, RAtG, BAtG, RAtB, BAtR,
                 Demosaic, Corrected, Curve, Out})
    Fns.push_back(F.function());
  auto Reset = [Fns]() mutable {
    for (Function &F : Fns)
      F.resetSchedule();
  };
  A.ScheduleBreadthFirst = [Reset, Fns]() mutable {
    Reset();
    for (Function &F : Fns) {
      if (F.name() == "camera_pipe" || startsWith(F.name(), "camera_pipe$"))
        continue;
      F.schedule().ComputeLevel = LoopLevel::root();
      F.schedule().StoreLevel = LoopLevel::root();
    }
  };
  A.ScheduleTuned = [Reset, Curve, Demosaic, Corrected, Gr, R, B, Gb, GAtR,
                     GAtB, RAtG, BAtG, RAtB, BAtR, Out]() mutable {
    Reset();
    // The paper's tuned camera pipe fuses long chains of interleaved
    // stencils on overlapping tiles of scanlines, vectorizes every stage,
    // and distributes blocks of scanlines across threads. LUT at root;
    // everything else fuses into output strips.
    Var x("x"), y("y"), yo("yo"), yi("yi");
    // Stage everything like breadth-first (the demosaic's interleaved
    // selects recompute poorly when fused on one core), then add the
    // domain-order optimizations: strip-parallel output and vectorized
    // site planes and demosaic.
    Curve.computeRoot();
    for (Func F : {Gr, R, B, Gb, GAtR, GAtB, RAtG, BAtG, RAtB, BAtR})
      F.computeRoot().vectorize(Var("x"), 8);
    Demosaic.computeRoot().parallel(Var("y"));
    Corrected.computeRoot().vectorize(Var("x"), 8).parallel(Var("y"));
    Out.split(y, yo, yi, 16).parallel(yo).vectorize(x, 8);
  };
  A.ScheduleGpu = [Reset, Curve, Demosaic, Out]() mutable {
    Reset();
    Var x("x"), y("y"), bx("bx"), by("by"), tx("tx"), ty("ty");
    Curve.computeRoot();
    Demosaic.computeRoot().gpuTile(x, y, bx, by, tx, ty, 16, 16);
    Out.gpuTile(x, y, bx, by, tx, ty, 16, 16);
  };

  A.MakeInputs = [Raw](int W, int H) {
    Buffer<uint16_t> Input(W, H);
    Input.fill([](int X, int Y) {
      // A plausible mosaic: greens brighter, diagonal gradient.
      int Site = (X % 2) + 2 * (Y % 2);
      int Base = (X * 37 + Y * 91) % 32768;
      return uint16_t(Site == 0 || Site == 3 ? Base + 16384 : Base + 8192);
    });
    ParamBindings P;
    P.bind(Raw.name(), Input);
    return P;
  };
  A.PaperHalideLines = 123;
  A.PaperExpertLines = 306;
  A.PaperHalideMs = 14;
  A.PaperExpertMs = 49;
  A.ReproLines = 64;
  return A;
}
