//===-- apps/Blur.cpp - The paper's two-stage blur --------------------------===//
//
// The running example of paper section 3.1: a 3x3 box filter computed as a
// horizontal then a vertical 3-tap pass. The tuned schedule is the paper's
// "sliding window within strips" strategy (split y into strips processed in
// parallel, slide blurx within each strip, vectorize x).
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "analysis/CallGraph.h"
#include "apps/baselines/Baselines.h"

using namespace halide;

App halide::makeBlurApp() {
  App A;
  A.Name = "blur";
  ImageParam In(UInt(8), 2, "blur_input");
  A.Inputs = {In};

  Var x("x"), y("y");
  Func Blurx("blurx"), Out("blur");
  auto InC = [&](Expr X, Expr Y) {
    return cast(UInt(16), In(clamp(X, 0, In.width() - 1),
                             clamp(Y, 0, In.height() - 1)));
  };
  Blurx(x, y) =
      cast(UInt(16), (InC(x - 1, y) + InC(x, y) + InC(x + 1, y)) / 3);
  Out(x, y) = cast(UInt(8),
                   (Blurx(x, y - 1) + Blurx(x, y) + Blurx(x, y + 1)) / 3);
  A.Output = Out;

  Function OutFn = Out.function(), BlurxFn = Blurx.function();
  auto Reset = [OutFn, BlurxFn]() mutable {
    OutFn.resetSchedule();
    BlurxFn.resetSchedule();
  };
  A.ScheduleBreadthFirst = [Reset, Blurx]() mutable {
    Reset();
    Blurx.computeRoot();
  };
  A.ScheduleTuned = [Reset, Blurx, Out]() mutable {
    Reset();
    Var x("x"), y("y"), ty("ty");
    Out.split(y, ty, y, 8).parallel(ty).vectorize(x, 8);
    Blurx.storeAt(Out, ty).computeAt(Out, y).vectorize(x, 8);
  };
  A.ScheduleGpu = [Reset, Blurx, Out]() mutable {
    Reset();
    Var x("x"), y("y"), bx("bx"), by("by"), tx("tx"), ty("ty");
    Out.gpuTile(x, y, bx, by, tx, ty, 32, 8);
    Blurx.computeAt(Out, bx).vectorize(Var("x"), 8);
  };

  A.MakeInputs = [In](int W, int H) {
    Buffer<uint8_t> Input(W, H);
    Input.fill([](int X, int Y) { return (X * 23 + Y * 7) % 256; });
    ParamBindings P;
    P.bind(In.name(), Input);
    return P;
  };

  A.ExpertBaselineMs = [](int W, int H) {
    return baselines::blurExpertMs(W, H);
  };
  A.NaiveBaselineMs = [](int W, int H) {
    return baselines::blurNaiveMs(W, H);
  };

  // Paper Figure 7 (x86 row "Blur").
  A.PaperHalideLines = 2;
  A.PaperExpertLines = 35;
  A.PaperHalideMs = 11;
  A.PaperExpertMs = 13;
  A.ReproLines = 10;
  return A;
}
