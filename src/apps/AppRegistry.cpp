//===-- apps/AppRegistry.cpp - Registry of the paper's apps --------------------===//

#include "apps/Apps.h"
#include "apps/baselines/Baselines.h"

using namespace halide;

std::vector<App> halide::paperApps(int LocalLaplacianLevels) {
  std::vector<App> Apps;
  Apps.push_back(makeBlurApp());
  Apps.push_back(makeBilateralGridApp());
  Apps.push_back(makeCameraPipeApp());
  Apps.push_back(makeInterpolateApp());
  Apps.push_back(makeLocalLaplacianApp(LocalLaplacianLevels));

  // Wire baseline hooks not set by the individual factories.
  for (App &A : Apps) {
    if (A.Name == "bilateral_grid") {
      A.NaiveBaselineMs = baselines::bilateralGridNaiveMs;
      A.ExpertBaselineMs = baselines::bilateralGridExpertMs;
    } else if (A.Name == "camera_pipe") {
      A.NaiveBaselineMs = baselines::cameraPipeNaiveMs;
      A.ExpertBaselineMs = baselines::cameraPipeExpertMs;
    } else if (A.Name == "interpolate") {
      A.NaiveBaselineMs = baselines::interpolateNaiveMs;
      A.ExpertBaselineMs = baselines::interpolateExpertMs;
    } else if (A.Name == "local_laplacian") {
      int J = LocalLaplacianLevels;
      A.NaiveBaselineMs = [J](int W, int H) {
        return baselines::localLaplacianNaiveMs(W, H, J, 8);
      };
      A.ExpertBaselineMs = [J](int W, int H) {
        return baselines::localLaplacianExpertMs(W, H, J, 8);
      };
    }
  }
  return Apps;
}
