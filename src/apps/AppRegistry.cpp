//===-- apps/AppRegistry.cpp - Registry of the paper's apps --------------------===//

#include "apps/Apps.h"
#include "apps/baselines/Baselines.h"

using namespace halide;

std::vector<App> halide::paperApps(int LocalLaplacianLevels) {
  std::vector<App> Apps;
  Apps.push_back(makeBlurApp());
  Apps.push_back(makeBilateralGridApp());
  Apps.push_back(makeCameraPipeApp());
  Apps.push_back(makeInterpolateApp());
  Apps.push_back(makeLocalLaplacianApp(LocalLaplacianLevels));

  // Wire baseline hooks not set by the individual factories. The
  // ReferenceMargin values reflect how far each baseline's edge-clamping
  // convention diverges from Halide's bounds-inference extension (pyramid
  // and grid apps diverge over a border band, see Apps.h).
  for (App &A : Apps) {
    if (A.Name == "blur") {
      A.Reference = baselines::blurReferenceOutput;
      A.ReferenceMargin = 0;
    } else if (A.Name == "bilateral_grid") {
      A.NaiveBaselineMs = baselines::bilateralGridNaiveMs;
      A.ExpertBaselineMs = baselines::bilateralGridExpertMs;
      A.Reference = baselines::bilateralGridReferenceOutput;
      A.ReferenceMargin = 24; // three 8-pixel grid tiles
    } else if (A.Name == "camera_pipe") {
      A.NaiveBaselineMs = baselines::cameraPipeNaiveMs;
      A.ExpertBaselineMs = baselines::cameraPipeExpertMs;
      A.Reference = baselines::cameraPipeReferenceOutput;
      A.ReferenceMargin = 4; // demosaic stencils straddle the border
    } else if (A.Name == "interpolate") {
      A.NaiveBaselineMs = baselines::interpolateNaiveMs;
      A.ExpertBaselineMs = baselines::interpolateExpertMs;
      A.Reference = baselines::interpolateReferenceOutput;
      A.ReferenceMargin = 64; // six-level pyramid border band (~2^6)
    } else if (A.Name == "local_laplacian") {
      int J = LocalLaplacianLevels;
      A.NaiveBaselineMs = [J](int W, int H) {
        return baselines::localLaplacianNaiveMs(W, H, J, 8);
      };
      A.ExpertBaselineMs = [J](int W, int H) {
        return baselines::localLaplacianExpertMs(W, H, J, 8);
      };
      A.Reference = [J](int W, int H, const RawBuffer &Out) {
        baselines::localLaplacianReferenceOutput(W, H, J, 8, Out);
      };
      A.ReferenceMargin = 2 << LocalLaplacianLevels; // pyramid border band
    }
  }
  return Apps;
}
