//===-- apps/Interpolate.cpp - Multi-scale interpolation ----------------------===//
//
// The paper's multi-scale interpolation app (section 6): an image pyramid
// interpolates pixel data for seamless compositing. Chains of stages
// resample locally over small stencils, but dependence propagates globally
// across the entire image through the pyramid.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

using namespace halide;

namespace {
constexpr int PyramidLevels = 6;
} // namespace

App halide::makeInterpolateApp() {
  App A;
  A.Name = "interpolate";
  // RGBA input with premultiplied-alpha compositing semantics.
  ImageParam In(Float(32), 3, "interp_input");
  A.Inputs = {In};

  Var x("x"), y("y"), c("c");

  Func Clamped("interp_clamped");
  Clamped(x, y, c) = In(clamp(x, 0, In.width() - 1),
                        clamp(y, 0, In.height() - 1), clamp(c, 0, 3));

  // Premultiply color by alpha.
  Func Down0("down0");
  Down0(x, y, c) = select(c < 3,
                          Clamped(x, y, c) * Clamped(x, y, 3),
                          Clamped(x, y, 3));
  Down0.bound(c, 0, 4);

  // Downsample chain: [1 3 3 1] in x then y, decimate by 2.
  std::vector<Func> Downsampled(PyramidLevels);
  std::vector<Func> DownX(PyramidLevels);
  Downsampled[0] = Down0;
  for (int L = 1; L < PyramidLevels; ++L) {
    Func Prev = Downsampled[L - 1];
    DownX[L] = Func("downx" + std::to_string(L));
    DownX[L](x, y, c) =
        (Prev(x * 2 - 1, y, c) + 3.0f * (Prev(x * 2, y, c) +
                                         Prev(x * 2 + 1, y, c)) +
         Prev(x * 2 + 2, y, c)) /
        8.0f;
    Downsampled[L] = Func("down" + std::to_string(L));
    Downsampled[L](x, y, c) =
        (DownX[L](x, y * 2 - 1, c) + 3.0f * (DownX[L](x, y * 2, c) +
                                             DownX[L](x, y * 2 + 1, c)) +
         DownX[L](x, y * 2 + 2, c)) /
        8.0f;
    DownX[L].bound(c, 0, 4);
    Downsampled[L].bound(c, 0, 4);
  }

  // Interpolate back up: where alpha is low, fill from the coarser level.
  std::vector<Func> Interpolated(PyramidLevels);
  std::vector<Func> UpX(PyramidLevels);
  Interpolated[PyramidLevels - 1] = Downsampled[PyramidLevels - 1];
  for (int L = PyramidLevels - 2; L >= 0; --L) {
    UpX[L] = Func("upx" + std::to_string(L));
    Func Coarser = Interpolated[L + 1];
    // Linear upsample: x/2 neighbourhood blend.
    UpX[L](x, y, c) = 0.25f * Coarser((x / 2) - 1 + 2 * (x % 2), y, c) +
                      0.75f * Coarser(x / 2, y, c);
    Interpolated[L] = Func("interp" + std::to_string(L));
    Interpolated[L](x, y, c) =
        Downsampled[L](x, y, c) +
        (1.0f - Downsampled[L](x, y, 3)) *
            (0.25f * UpX[L](x, (y / 2) - 1 + 2 * (y % 2), c) +
             0.75f * UpX[L](x, y / 2, c));
    UpX[L].bound(c, 0, 4);
    Interpolated[L].bound(c, 0, 4);
  }

  // Unpremultiply.
  Func Out("interpolate");
  Out(x, y, c) = select(c < 3,
                        Interpolated[0](x, y, c) /
                            max(Interpolated[0](x, y, 3), 1e-6f),
                        1.0f);
  Out.bound(c, 0, 3);
  A.Output = Out;

  std::vector<Function> Fns = {Clamped.function(), Down0.function(),
                               Out.function()};
  for (int L = 1; L < PyramidLevels; ++L) {
    Fns.push_back(DownX[L].function());
    Fns.push_back(Downsampled[L].function());
  }
  for (int L = 0; L < PyramidLevels - 1; ++L) {
    Fns.push_back(UpX[L].function());
    Fns.push_back(Interpolated[L].function());
  }
  auto Reset = [Fns]() mutable {
    for (Function &F : Fns)
      F.resetSchedule();
  };
  auto AllRoot = [Fns]() mutable {
    for (Function &F : Fns)
      if (!F.schedule().ComputeLevel.isRoot()) {
        F.schedule().ComputeLevel = LoopLevel::root();
        F.schedule().StoreLevel = LoopLevel::root();
      }
  };
  A.ScheduleBreadthFirst = [Reset, AllRoot]() mutable {
    Reset();
    AllRoot();
  };
  A.ScheduleTuned = [Reset, Downsampled, DownX, Interpolated, UpX,
                     Out]() mutable {
    Reset();
    Var x("x"), y("y");
    // Pyramid levels at root (they are reused globally); fuse the x-pass
    // of each resample into its consumer's scanlines; parallelize and
    // vectorize the large fine levels.
    for (int L = 1; L < PyramidLevels; ++L) {
      Func D = Downsampled[L];
      D.computeRoot();
      if (L <= 2)
        D.parallel(y).vectorize(x, 8);
      // The x-pass stays inline: totally fused into the y-pass (cheap
      // recompute beats materializing another full plane per level).
    }
    for (int L = PyramidLevels - 2; L >= 0; --L) {
      Func I = Interpolated[L];
      I.computeRoot();
      if (L <= 2)
        I.parallel(y).vectorize(x, 8);
      // UpX stays inline (total fusion into the interpolated level).
    }
    Out.parallel(y).vectorize(x, 8);
  };
  A.ScheduleGpu = [Reset, AllRoot, Downsampled, Interpolated,
                   Out]() mutable {
    Reset();
    AllRoot();
    Var x("x"), y("y"), bx("bx"), by("by"), tx("tx"), ty("ty");
    for (int L = 1; L < 3; ++L)
      Downsampled[L].gpuTile(x, y, bx, by, tx, ty, 16, 16);
    for (int L = 0; L < 2; ++L)
      Interpolated[L].gpuTile(x, y, bx, by, tx, ty, 16, 16);
    Out.gpuTile(x, y, bx, by, tx, ty, 16, 16);
  };

  A.MakeInputs = [In](int W, int H) {
    Buffer<float> Input(W, H, 4);
    Input.fill([W, H](int X, int Y, int C) {
      if (C == 3) // sparse alpha mask
        return ((X % 7 == 0) && (Y % 5 == 0)) ? 1.0f : 0.02f;
      return float((X * (C + 1) + Y) % 64) / 64.0f;
    });
    ParamBindings P;
    P.bind(In.name(), Input);
    return P;
  };
  A.PaperHalideLines = 21;
  A.PaperExpertLines = 152;
  A.PaperHalideMs = 32;
  A.PaperExpertMs = 54;
  A.ReproLines = 35;
  return A;
}
