//===-- support/DiffTest.h - Differential schedule testing ------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential schedule-correctness harness: the paper's core safety
/// property is that *any* valid schedule of a pipeline computes the same
/// result as the naive one. For a given app this harness enumerates a
/// deterministic sample of schedules from the autotuner's search space and
/// checks every output against the breadth-first reference and, where one
/// exists, the hand-written C++ baseline from apps/baselines. Three
/// engines participate: the bytecode VM executes every schedule (the
/// suite's default backend — fast enough to keep the sweep wide), the
/// CodeGenC -> host-compiler -> dlopen path independently re-executes
/// every schedule, and the tree-walking interpreter spot-checks a prefix
/// of the sample bit-for-bit as the semantic reference. On top of that,
/// every sampled schedule is checked serial-vs-parallel: the threaded VM
/// must reproduce the serial VM's output bit-for-bit with identical
/// merged ExecutionStats (DiffOptions::ThreadedVmThreads /
/// HALIDE_DIFF_THREADS). A final concurrency leg re-runs the first few
/// schedules' executables as simultaneous async jobs on the task
/// scheduler — the serving configuration — and requires every frame to
/// be bit-identical (output and merged stats) to its sequential run
/// (DiffOptions::ConcurrentFrames / HALIDE_DIFF_CONCURRENT). Since the
/// backends grew real SIMD execution, a scalar-vs-vector leg re-lowers
/// every sampled schedule that contains a vectorized loop with that loop
/// demoted to serial (splits intact) and requires the vectorized run to
/// reproduce the scalarized output bit-for-bit with identical per-buffer
/// load/store counts (DiffOptions::ScalarVectorParity /
/// HALIDE_DIFF_SCALAR). Finally a trace-parity leg re-runs a prefix of
/// the sample with value tracing enabled (Target::withTrace() streaming
/// to a temporary file): the traced run must reproduce the untraced
/// output bit-for-bit, and the per-buffer load/store lane counts summed
/// from the trace itself must equal the untraced run's ExecutionStats —
/// instrumentation may not change the computation, and may not miss or
/// invent an access (DiffOptions::TraceParityChecks / HALIDE_DIFF_TRACE).
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_SUPPORT_DIFFTEST_H
#define HALIDE_SUPPORT_DIFFTEST_H

#include "apps/Apps.h"
#include "transforms/Lower.h"

#include <memory>
#include <string>
#include <vector>

namespace halide {

/// Uniform backend entry point: executes \p P on the backend \p T names
/// and returns the pipeline's exit code (0 on success). The interpreter
/// aborts via user_error on internal pipeline assertions; the JIT backends
/// report them through the exit code. Compiles fresh on every call — the
/// schedule sweep wants per-schedule artifacts, not the process cache.
/// \p Stats, when non-null, receives the backend's execution counters.
int runOnBackend(const Target &T, const LoweredPipeline &P,
                 const ParamBindings &Params,
                 ExecutionStats *Stats = nullptr);

/// Options controlling a differential run.
struct DiffOptions {
  int Width = 96;
  int Height = 64;
  /// Frame size for the hand-written-baseline check (0 = use Width/Height).
  /// Pyramid apps diverge from the baseline's edge-clamping over a border
  /// band whose width is set by pyramid depth, not frame size, so they
  /// need a frame large enough that an interior region survives the
  /// ReferenceMargin — while the schedule sweep itself (which compares
  /// full frames schedule-vs-schedule) can stay small and fast.
  int BaselineWidth = 0;
  int BaselineHeight = 0;
  /// Schedules drawn from ScheduleSpace::deterministicSample. The first
  /// five are the canonical variants (breadth-first, max-inline,
  /// tiled+parallel, vectorized, sliding window); the rest are seeded
  /// random points in the search space. Twelve per app since the bytecode
  /// VM became the suite's engine (PR 3 made the sweep ~4x faster, so the
  /// sample affords twice the coverage it had under the interpreter).
  int ScheduleCount = 12;
  uint32_t Seed = 2013;
  /// Absolute per-element tolerance for float outputs. Integer outputs
  /// must match bit-exactly.
  double FloatTolerance = 1e-5;
  /// The engine that computes the reference output and executes every
  /// sampled schedule. Defaults to the bytecode VM; the
  /// HALIDE_DIFF_BACKEND environment variable (Target::parse syntax,
  /// e.g. "vm", "interp") overrides it process-wide, which is how CI
  /// forces a backend under sanitizers.
  Target ExecTarget = Target::vm();
  /// The first this-many sampled schedules are additionally executed by
  /// the tree-walking interpreter, which must reproduce the execution
  /// backend's output for the same schedule bit-for-bit — the
  /// stats-reference engine keeps auditing the VM without paying its
  /// 10-40x slowdown on every schedule. 0 disables; ignored when
  /// ExecTarget is already the interpreter.
  int InterpreterSpotChecks = 1;
  /// The threaded-VM leg: when the execution backend is the bytecode VM,
  /// every sampled schedule is re-executed with this many threads
  /// requested and must reproduce the serial output bit-for-bit with
  /// identical merged ExecutionStats — the serial-vs-parallel
  /// determinism check. <= 1 disables. The HALIDE_DIFF_THREADS
  /// environment variable overrides it process-wide (0 to disable); the
  /// effective worker count is still bounded by the task scheduler's
  /// pool size (HALIDE_NUM_THREADS / hardware concurrency).
  int ThreadedVmThreads = 4;
  /// The concurrent-serving leg: the first this-many sampled schedules'
  /// executables are re-run as simultaneous async jobs sharing the task
  /// scheduler (mixed priorities), and every frame's output and merged
  /// ExecutionStats must be bit-identical to that schedule's sequential
  /// run — concurrency must be invisible in the results. 0 disables. The
  /// HALIDE_DIFF_CONCURRENT environment variable overrides it
  /// process-wide (0 to disable).
  int ConcurrentFrames = 4;
  /// The scalar-vs-vector parity leg: every sampled schedule containing a
  /// vectorized loop is additionally re-lowered with each vectorized
  /// dimension demoted to a serial loop of the same extent (splits stay,
  /// so the iteration space is identical) and re-executed on the same
  /// backend. The vectorized run must reproduce the scalarized output
  /// bit-for-bit — zero tolerance, floats included, since lane-parallel
  /// arithmetic performs exactly the per-element operations — with
  /// identical per-buffer load/store counts. The HALIDE_DIFF_SCALAR
  /// environment variable overrides it process-wide (0 disables).
  bool ScalarVectorParity = true;
  /// The trace-parity leg: the first this-many sampled schedules are
  /// re-executed with value tracing enabled (Target::withTrace(), stream
  /// directed at a temporary file that is deleted afterwards). The traced
  /// run must reproduce the untraced output bit-for-bit, and summing the
  /// trace's per-lane load/store records per buffer must reproduce the
  /// untraced run's ExecutionStats LoadsPerBuffer/StoresPerBuffer exactly
  /// — the instrumentation neither perturbs the computation nor drops or
  /// duplicates an access. 0 disables. The HALIDE_DIFF_TRACE environment
  /// variable overrides it process-wide (0 to disable).
  int TraceParityChecks = 1;
  /// Also push every schedule through the C backend (compile + dlopen).
  bool RunCodeGenC = true;
  /// Host-compiler flags for the C backend. -O0 because this harness
  /// checks correctness, not speed: the vectorized schedules emit large
  /// translation units that -O3 compiles an order of magnitude slower.
  /// The HALIDE_DIFF_JIT_FLAGS environment variable overrides it
  /// process-wide (and also applies to an exec backend forced to jit_c
  /// via HALIDE_DIFF_BACKEND) — CI's no-autovectorize leg pins
  /// "-O2 -fno-tree-vectorize" to prove the emitted vector code, not the
  /// host compiler, carries the SIMD.
  std::string JitFlags = "-O0";
};

/// One disagreement between a schedule's output and the reference.
struct DiffMismatch {
  std::string Schedule;   ///< ScheduleSpace::describe of the genome
  std::string Comparison; ///< e.g. "interpreter vs reference"
  std::string Detail;     ///< first differing element and both values
};

/// The outcome of a differential run over one app.
struct DiffReport {
  std::string AppName;
  int SchedulesRun = 0;
  std::vector<DiffMismatch> Mismatches;
  bool ok() const { return Mismatches.empty(); }
  /// Human-readable multi-line failure description (empty when ok).
  std::string summary() const;
};

/// Demotes every vectorized loop in the pipeline's currently applied
/// schedules to a serial loop, leaving splits intact: the scalarized
/// pipeline walks exactly the same iteration space as the vectorized
/// one, only the lane-parallel execution disappears. Returns true if any
/// loop was demoted (i.e. the schedule actually vectorized something).
/// Used by the scalar-vs-vector parity leg and bench_runner --novec.
bool scalarizeVectorLoops(const Function &Output);

/// The widest vector width the pipeline's currently applied schedules
/// request: the constant split factor (or whole-dimension bound() extent)
/// of each vectorized loop, maximized over all stages. 1 when nothing is
/// vectorized — the scalar baseline.
int scheduleVectorWidth(const Function &Output);

/// Allocates a dense planar output buffer shaped like the app's output
/// signature: W x H, plus 3 channels when the output is 3-dimensional.
/// \p Keep receives the owning storage handle.
RawBuffer makeAppOutput(const App &A, int W, int H,
                        std::shared_ptr<void> *Keep);

/// Element-wise comparison of two identically shaped buffers: bit-exact
/// for integer element types, absolute tolerance \p FloatTol for floats.
/// \p Margin border elements in dims 0 and 1 are excluded. On mismatch,
/// *Detail (if non-null) receives the first differing coordinate and both
/// values.
bool buffersMatch(const RawBuffer &A, const RawBuffer &B, double FloatTol,
                  int Margin, std::string *Detail);

/// Runs the full differential sweep for one app. The reference output is
/// the breadth-first schedule through the interpreter; every sampled
/// schedule must reproduce it on both backends, and the reference itself
/// must agree with the app's hand-written baseline where one is wired.
DiffReport runScheduleDifferential(App &A, const DiffOptions &Opts = {});

} // namespace halide

#endif // HALIDE_SUPPORT_DIFFTEST_H
