//===-- support/DiffTest.cpp - Differential schedule testing -----------------===//

#include "support/DiffTest.h"

#include "analysis/CallGraph.h"
#include "autotune/ScheduleSpace.h"
#include "codegen/Executable.h"
#include "ir/IROperators.h"
#include "observe/TraceStream.h"
#include "runtime/TaskScheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include <unistd.h>

using namespace halide;

namespace {

/// C-backend host-compiler flags: HALIDE_DIFF_JIT_FLAGS wins over the
/// option so CI can pin the flags per job — notably
/// "-O2 -fno-tree-vectorize", which proves the emitted vector code
/// carries the SIMD rather than the host compiler's auto-vectorizer.
std::string diffJitFlags(const DiffOptions &Opts) {
  const char *Env = std::getenv("HALIDE_DIFF_JIT_FLAGS");
  if (Env && *Env)
    return Env;
  return Opts.JitFlags;
}

/// The suite's execution target: the HALIDE_DIFF_BACKEND environment
/// variable (Target::parse syntax) wins over the option so CI can force a
/// backend — e.g. the VM under ASan — without touching test code. A
/// forced C backend also picks up the suite's host-compiler flags, so a
/// HALIDE_DIFF_BACKEND=jit_c job compiles every schedule's artifact with
/// the flags HALIDE_DIFF_JIT_FLAGS pins.
Target diffExecTarget(const DiffOptions &Opts) {
  const char *Env = std::getenv("HALIDE_DIFF_BACKEND");
  if (Env && *Env) { // set-but-empty (e.g. a blank CI matrix cell) = unset
    Target T;
    user_assert(Target::parse(Env, &T))
        << "HALIDE_DIFF_BACKEND=" << Env << " is not a valid backend name";
    if (T.TargetBackend == Backend::JitC)
      T = T.withJitFlags(diffJitFlags(Opts));
    return T;
  }
  return Opts.ExecTarget;
}

/// Threaded-leg thread count: HALIDE_DIFF_THREADS wins over the option so
/// CI can force (or disable) the serial-vs-parallel check per job.
int diffThreadedVmThreads(const DiffOptions &Opts) {
  const char *Env = std::getenv("HALIDE_DIFF_THREADS");
  if (Env && *Env)
    return std::atoi(Env);
  return Opts.ThreadedVmThreads;
}

/// Concurrent-leg frame count: HALIDE_DIFF_CONCURRENT wins over the
/// option so CI can widen (or disable) the serving check per job.
int diffConcurrentFrames(const DiffOptions &Opts) {
  const char *Env = std::getenv("HALIDE_DIFF_CONCURRENT");
  if (Env && *Env)
    return std::atoi(Env);
  return Opts.ConcurrentFrames;
}

/// Scalar-vs-vector leg switch: HALIDE_DIFF_SCALAR wins over the option
/// so CI can force (or disable) the parity check per job.
bool diffScalarParity(const DiffOptions &Opts) {
  const char *Env = std::getenv("HALIDE_DIFF_SCALAR");
  if (Env && *Env)
    return std::atoi(Env) != 0;
  return Opts.ScalarVectorParity;
}

/// Trace-parity prefix length: HALIDE_DIFF_TRACE wins over the option so
/// CI can widen (or disable) the trace-on-vs-off check per job.
int diffTraceParity(const DiffOptions &Opts) {
  const char *Env = std::getenv("HALIDE_DIFF_TRACE");
  if (Env && *Env)
    return std::atoi(Env);
  return Opts.TraceParityChecks;
}

/// Renders the stats fields the determinism contract covers, for
/// mismatch diagnostics (the contract and rendering live with
/// ExecutionStats itself; see runtime/Tracing.h).
std::string statsSummary(const ExecutionStats &S) {
  std::ostringstream OS;
  OS << S;
  return OS.str();
}

} // namespace

int halide::runOnBackend(const Target &T, const LoweredPipeline &P,
                         const ParamBindings &Params,
                         ExecutionStats *Stats) {
  return makeExecutable(P, T)->run(Params, Stats);
}

bool halide::scalarizeVectorLoops(const Function &Output) {
  bool Any = false;
  for (auto &[Name, F] : buildEnvironment(Output)) {
    Function Fn = F; // shared handle: edits reach the pipeline's stage
    for (Dim &D : Fn.schedule().Dims)
      if (D.Kind == ForType::Vectorized) {
        D.Kind = ForType::Serial;
        Any = true;
      }
    for (UpdateDefinition &U : Fn.updates())
      for (Dim &D : U.Dims)
        if (D.Kind == ForType::Vectorized) {
          D.Kind = ForType::Serial;
          Any = true;
        }
  }
  return Any;
}

int halide::scheduleVectorWidth(const Function &Output) {
  int Width = 1;
  for (const auto &[Name, F] : buildEnvironment(Output)) {
    const Schedule &S = F.schedule();
    auto NoteDim = [&](const Dim &D) {
      if (D.Kind != ForType::Vectorized)
        return;
      int64_t Lanes;
      for (const Split &Sp : S.Splits)
        if (Sp.Inner == D.Var && asConstInt(Sp.Factor, &Lanes))
          Width = std::max(Width, int(Lanes));
      // Whole-dimension vectorize (no split): the width is the bound()
      // extent pinned on that dimension, where one exists.
      for (const BoundConstraint &B : S.Bounds)
        if (B.Var == D.Var && B.Extent.defined() &&
            asConstInt(B.Extent, &Lanes))
          Width = std::max(Width, int(Lanes));
    };
    for (const Dim &D : S.Dims)
      NoteDim(D);
    for (const UpdateDefinition &U : F.updates())
      for (const Dim &D : U.Dims)
        NoteDim(D);
  }
  return Width;
}

RawBuffer halide::makeAppOutput(const App &A, int W, int H,
                                std::shared_ptr<void> *Keep) {
  const Function &F = A.Output.function();
  Type T = F.outputType();
  int Dims = F.dimensions();
  // Harness convention: 2-D outputs are W x H, 3-D outputs are W x H x 3
  // color channels (every registered app binds its channel dim with
  // bound(c, 0, 3)). Fail loudly on anything else rather than allocate
  // the wrong shape and trip bounds asserts far from the cause.
  internal_assert(Dims == 2 || Dims == 3)
      << "makeAppOutput: app " << A.Name << " has a " << Dims
      << "-D output; extend the harness convention";
  int C = Dims >= 3 ? 3 : 1;
  for (const BoundConstraint &B : F.schedule().Bounds)
    if (Dims >= 3 && B.Var == F.args()[2]) {
      int64_t Declared = 0;
      internal_assert(asConstInt(B.Extent, &Declared) && Declared == C)
          << "makeAppOutput: app " << A.Name
          << " declares a non-3-channel output; extend the harness "
             "convention";
    }
  int64_t Elems = int64_t(W) * H * C;
  auto Storage = std::make_shared<std::vector<uint8_t>>(
      size_t(Elems * T.bytes()), uint8_t(0));
  *Keep = Storage;
  RawBuffer Raw;
  Raw.Host = Storage->data();
  Raw.ElemType = T;
  Raw.Dimensions = Dims;
  Raw.Dim[0] = {0, W, 1};
  Raw.Dim[1] = {0, H, W};
  if (Dims >= 3)
    Raw.Dim[2] = {0, C, W * H};
  Raw.Owner = Storage;
  return Raw;
}

namespace {

/// Reads element I of a buffer as a double (all supported element types).
double elementAsDouble(const RawBuffer &B, int64_t Off) {
  const Type &T = B.ElemType;
  const void *P = static_cast<const uint8_t *>(B.Host) + Off * T.bytes();
  if (T.isFloat())
    return T.Bits == 32 ? double(*static_cast<const float *>(P))
                          : *static_cast<const double *>(P);
  if (T.isUInt()) {
    switch (T.Bits) {
    case 8:
      return *static_cast<const uint8_t *>(P);
    case 16:
      return *static_cast<const uint16_t *>(P);
    case 32:
      return *static_cast<const uint32_t *>(P);
    default:
      return double(*static_cast<const uint64_t *>(P));
    }
  }
  switch (T.Bits) {
  case 8:
    return *static_cast<const int8_t *>(P);
  case 16:
    return *static_cast<const int16_t *>(P);
  case 32:
    return *static_cast<const int32_t *>(P);
  default:
    return double(*static_cast<const int64_t *>(P));
  }
}

} // namespace

bool halide::buffersMatch(const RawBuffer &A, const RawBuffer &B,
                          double FloatTol, int Margin, std::string *Detail) {
  internal_assert(A.Dimensions == B.Dimensions &&
                  A.ElemType == B.ElemType)
      << "buffersMatch: shape/type mismatch";
  double Tol = A.ElemType.isFloat() ? FloatTol : 0.0;

  int Coords[MaxBufferDims] = {0};
  int Extents[MaxBufferDims] = {1, 1, 1, 1};
  for (int D = 0; D < A.Dimensions; ++D) {
    internal_assert(A.Dim[D].Extent == B.Dim[D].Extent)
        << "buffersMatch: extent mismatch in dim " << D;
    Extents[D] = A.Dim[D].Extent;
  }

  // A margin that swallows the whole frame would make the comparison
  // vacuously true; report it as a failure so callers pick a frame large
  // enough to leave an interior.
  if (A.Dimensions >= 2 && Margin > 0 &&
      (2 * Margin >= Extents[0] || 2 * Margin >= Extents[1])) {
    if (Detail)
      *Detail = "margin " + std::to_string(Margin) +
                " leaves no interior in a " + std::to_string(Extents[0]) +
                "x" + std::to_string(Extents[1]) +
                " frame; nothing was compared";
    return false;
  }

  for (int C3 = 0; C3 < Extents[3]; ++C3)
    for (int C2 = 0; C2 < Extents[2]; ++C2)
      for (int Y = 0; Y < Extents[1]; ++Y)
        for (int X = 0; X < Extents[0]; ++X) {
          if (A.Dimensions >= 2 &&
              (X < Margin || X >= Extents[0] - Margin || Y < Margin ||
               Y >= Extents[1] - Margin))
            continue;
          Coords[0] = A.Dim[0].Min + X;
          Coords[1] = A.Dim[1].Min + Y;
          Coords[2] = A.Dimensions > 2 ? A.Dim[2].Min + C2 : 0;
          Coords[3] = A.Dimensions > 3 ? A.Dim[3].Min + C3 : 0;
          int64_t OffA = A.offsetOf(Coords, A.Dimensions);
          int CoordsB[MaxBufferDims];
          for (int D = 0; D < B.Dimensions; ++D)
            CoordsB[D] = B.Dim[D].Min + (Coords[D] - A.Dim[D].Min);
          int64_t OffB = B.offsetOf(CoordsB, B.Dimensions);
          double VA = elementAsDouble(A, OffA);
          double VB = elementAsDouble(B, OffB);
          bool Match = Tol > 0 ? std::fabs(VA - VB) <= Tol : VA == VB;
          if (!Match) {
            if (Detail) {
              std::ostringstream OS;
              OS << "first mismatch at (" << Coords[0] << ", " << Coords[1];
              if (A.Dimensions > 2)
                OS << ", " << Coords[2];
              OS << "): " << VA << " vs " << VB;
              *Detail = OS.str();
            }
            return false;
          }
        }
  return true;
}

std::string DiffReport::summary() const {
  std::ostringstream OS;
  for (const DiffMismatch &M : Mismatches)
    OS << AppName << " [" << M.Comparison << "] schedule {" << M.Schedule
       << "}: " << M.Detail << "\n";
  return OS.str();
}

DiffReport halide::runScheduleDifferential(App &A, const DiffOptions &Opts) {
  DiffReport R;
  R.AppName = A.Name;
  const int W = Opts.Width, H = Opts.Height;
  ParamBindings Inputs = A.MakeInputs(W, H);

  const Target Exec = diffExecTarget(Opts);
  const std::string ExecName = backendName(Exec.TargetBackend);

  ScheduleSpace Space(A.Output.function());
  Pipeline Pipe(A.Output);

  // The semantic reference: breadth-first through the suite's execution
  // backend. Going through Pipeline::lowerPipeline keys the lowering into
  // the process compile cache, so repeated differential runs (and the
  // canonical schedules the sample re-draws) stop paying re-lowering.
  std::shared_ptr<void> KeepRef;
  RawBuffer Ref = makeAppOutput(A, W, H, &KeepRef);
  Space.apply(Space.breadthFirstGenome());
  {
    LoweredPipeline P = Pipe.lowerPipeline();
    ParamBindings PB = Inputs;
    PB.bind(A.Output.name(), Ref);
    int Rc = runOnBackend(Exec, P, PB);
    if (Rc != 0) {
      // Without a reference every later comparison would report garbage;
      // fail with the one diagnostic that matters.
      R.Mismatches.push_back({"breadth_first", ExecName + " exit code",
                              "reference run returned " +
                                  std::to_string(Rc)});
      return R;
    }
  }

  // The reference itself must agree with the hand-written baseline (over
  // the interior where the edge-extension conventions coincide), possibly
  // at a larger frame so an interior survives the margin.
  if (A.Reference) {
    int BW = Opts.BaselineWidth > 0 ? Opts.BaselineWidth : W;
    int BH = Opts.BaselineHeight > 0 ? Opts.BaselineHeight : H;
    std::shared_ptr<void> KeepBRef, KeepBase;
    RawBuffer BRef = Ref;
    if (BW != W || BH != H) {
      BRef = makeAppOutput(A, BW, BH, &KeepBRef);
      LoweredPipeline P = Pipe.lowerPipeline();
      ParamBindings PB = A.MakeInputs(BW, BH);
      PB.bind(A.Output.name(), BRef);
      int Rc = runOnBackend(Exec, P, PB);
      if (Rc != 0) {
        R.Mismatches.push_back({"breadth_first", ExecName + " exit code",
                                "baseline-frame run returned " +
                                    std::to_string(Rc)});
        return R;
      }
    }
    RawBuffer Base = makeAppOutput(A, BW, BH, &KeepBase);
    A.Reference(BW, BH, Base);
    std::string Detail;
    if (!buffersMatch(BRef, Base, Opts.FloatTolerance, A.ReferenceMargin,
                      &Detail))
      R.Mismatches.push_back({"breadth_first",
                              ExecName + " vs hand-written baseline",
                              Detail});
  }

  // The serial-vs-parallel determinism leg: when the execution backend is
  // the bytecode VM, every schedule's primary run is pinned to one thread
  // and re-executed with a thread request; outputs must match bit for bit
  // and the merged ExecutionStats must be identical.
  const int DiffThreads = Exec.TargetBackend == Backend::VmBytecode
                              ? diffThreadedVmThreads(Opts)
                              : 0;
  const Target ExecSerial =
      DiffThreads > 1 ? Exec.withThreads(1) : Exec;

  // The concurrent-serving leg retains the first few schedules' compiled
  // executables, sequential outputs, and stats; after the sweep they all
  // run again simultaneously and must reproduce those results exactly.
  struct ConcurrentCase {
    std::string Desc;
    std::shared_ptr<const Executable> Exe;
    std::shared_ptr<void> KeepOut;
    RawBuffer SerialOut;
    ExecutionStats SerialStats;
  };
  const int NumConcurrent = diffConcurrentFrames(Opts);
  std::vector<ConcurrentCase> Cases;

  int ScheduleIndex = 0;
  for (const Genome &G : Space.deterministicSample(Opts.ScheduleCount,
                                                   Opts.Seed)) {
    std::string Desc = Space.describe(G);
    Space.apply(G);
    LoweredPipeline P = Pipe.lowerPipeline();

    ExecutionStats SerialStats;
    std::shared_ptr<void> KeepExec;
    RawBuffer OutExec = makeAppOutput(A, W, H, &KeepExec);
    {
      ParamBindings PB = Inputs;
      PB.bind(A.Output.name(), OutExec);
      // The VM and the interpreter abort via user_error; a JIT exec
      // target reports failed pipeline asserts through the exit code.
      int Rc = runOnBackend(ExecSerial, P, PB, &SerialStats);
      std::string Detail;
      if (Rc != 0)
        R.Mismatches.push_back({Desc, ExecName + " exit code",
                                "pipeline returned " + std::to_string(Rc)});
      else if (!buffersMatch(Ref, OutExec, Opts.FloatTolerance, 0, &Detail))
        R.Mismatches.push_back({Desc, ExecName + " vs reference", Detail});
      else if (int(Cases.size()) < NumConcurrent) {
        ConcurrentCase CC;
        CC.Desc = Desc;
        CC.Exe = makeExecutable(P, ExecSerial);
        CC.KeepOut = KeepExec;
        CC.SerialOut = OutExec;
        CC.SerialStats = SerialStats;
        Cases.push_back(std::move(CC));
      }
    }

    if (DiffThreads > 1) {
      std::shared_ptr<void> KeepThr;
      RawBuffer OutThr = makeAppOutput(A, W, H, &KeepThr);
      ParamBindings PB = Inputs;
      PB.bind(A.Output.name(), OutThr);
      ExecutionStats ThrStats;
      int Rc =
          runOnBackend(Exec.withThreads(DiffThreads), P, PB, &ThrStats);
      std::string Detail;
      if (Rc != 0)
        R.Mismatches.push_back(
            {Desc, "threaded " + ExecName + " exit code",
             "pipeline returned " + std::to_string(Rc)});
      else if (!buffersMatch(OutExec, OutThr, 0.0, 0, &Detail))
        R.Mismatches.push_back(
            {Desc, "threaded vs serial " + ExecName, Detail});
      else if (ThrStats != SerialStats)
        R.Mismatches.push_back(
            {Desc, "threaded vs serial " + ExecName + " stats",
             "serial {" + statsSummary(SerialStats) + "} threaded {" +
                 statsSummary(ThrStats) + "}"});
    }

    // The tree-walking interpreter audits a prefix of the sample: it
    // re-executes the same schedule and must reproduce the execution
    // backend's output bit for bit (zero tolerance — the VM's contract
    // with the interpreter is identical results, not merely close ones).
    if (Exec.TargetBackend != Backend::Interpreter &&
        ScheduleIndex < Opts.InterpreterSpotChecks) {
      std::shared_ptr<void> KeepInterp;
      RawBuffer OutInterp = makeAppOutput(A, W, H, &KeepInterp);
      ParamBindings PB = Inputs;
      PB.bind(A.Output.name(), OutInterp);
      runOnBackend(Target::interpreter(), P, PB);
      std::string Detail;
      if (!buffersMatch(OutExec, OutInterp, 0.0, 0, &Detail))
        R.Mismatches.push_back({Desc, "interpreter vs " + ExecName, Detail});
    }

    if (Opts.RunCodeGenC) {
      std::shared_ptr<void> KeepC;
      RawBuffer OutC = makeAppOutput(A, W, H, &KeepC);
      ParamBindings PB = Inputs;
      PB.bind(A.Output.name(), OutC);
      int Rc =
          runOnBackend(Target::jit().withJitFlags(diffJitFlags(Opts)), P,
                       PB);
      std::string Detail;
      if (Rc != 0)
        R.Mismatches.push_back(
            {Desc, "codegen_c exit code", "pipeline returned " +
                                              std::to_string(Rc)});
      else if (!buffersMatch(Ref, OutC, Opts.FloatTolerance, 0, &Detail))
        R.Mismatches.push_back({Desc, "codegen_c vs reference", Detail});
    }

    // The trace-parity leg: the same lowered pipeline runs again with
    // value tracing enabled, streaming to a throwaway file. The traced
    // run must reproduce the untraced output bit for bit (tracing is
    // observation, not perturbation), and summing the trace's per-lane
    // load/store records per buffer must land exactly on the untraced
    // run's ExecutionStats — the instrumentation saw every access the
    // counters saw, and nothing else.
    if (ScheduleIndex < diffTraceParity(Opts)) {
      const std::string TracePath = "/tmp/halide_diff_trace_" +
                                    std::to_string(getpid()) + ".bin";
      std::shared_ptr<void> KeepTr;
      RawBuffer OutTr = makeAppOutput(A, W, H, &KeepTr);
      ParamBindings PB = Inputs;
      PB.bind(A.Output.name(), OutTr);
      if (!traceStreamStart(TracePath)) {
        R.Mismatches.push_back({Desc, "trace stream",
                                "traceStreamStart(" + TracePath +
                                    ") failed"});
      } else {
        int Rc = runOnBackend(ExecSerial.withTrace(), P, PB);
        traceStreamStop();
        std::vector<TraceEvent> Events;
        std::string Detail;
        if (Rc != 0)
          R.Mismatches.push_back({Desc, "traced " + ExecName + " exit code",
                                  "pipeline returned " +
                                      std::to_string(Rc)});
        else if (!buffersMatch(OutExec, OutTr, 0.0, 0, &Detail))
          R.Mismatches.push_back(
              {Desc, "traced vs untraced " + ExecName, Detail});
        else if (!readTraceFile(TracePath, &Events, &Detail))
          R.Mismatches.push_back({Desc, "trace file", Detail});
        else {
          std::map<uint16_t, std::string> Names;
          for (const TraceEvent &E : Events)
            if (E.Kind == TraceEventKind::TraceName)
              Names[E.StageId] = E.Name;
          std::map<std::string, int64_t> Loads, Stores;
          for (const TraceEvent &E : Events) {
            if (E.Kind == TraceEventKind::TraceLoad)
              Loads[Names[E.StageId]] += int64_t(E.Coords.size());
            else if (E.Kind == TraceEventKind::TraceStore)
              Stores[Names[E.StageId]] += int64_t(E.Coords.size());
          }
          if (Loads != SerialStats.LoadsPerBuffer ||
              Stores != SerialStats.StoresPerBuffer) {
            // Render the trace-derived counts through the stats printer
            // so the diagnostic lines up field-for-field.
            ExecutionStats TraceStats = SerialStats;
            TraceStats.LoadsPerBuffer = std::move(Loads);
            TraceStats.StoresPerBuffer = std::move(Stores);
            R.Mismatches.push_back(
                {Desc, "trace-derived vs " + ExecName + " memory traffic",
                 "stats {" + statsSummary(SerialStats) + "} trace {" +
                     statsSummary(TraceStats) + "}"});
          }
        }
      }
      std::remove(TracePath.c_str());
    }

    // The scalar-vs-vector parity leg: re-apply the genome, demote its
    // vectorized loops to serial (splits intact — same iteration space),
    // and re-lower. The vectorized primary run must reproduce the
    // scalarized output bit for bit (zero tolerance even for floats:
    // lane-parallel execution performs exactly the per-element
    // operations) and issue exactly the same per-buffer load/store
    // traffic. Last leg in the loop because it rewrites the applied
    // schedules; the next iteration's apply() resets them anyway.
    if (diffScalarParity(Opts)) {
      Space.apply(G);
      if (scalarizeVectorLoops(A.Output.function())) {
        LoweredPipeline PS = Pipe.lowerPipeline();
        std::shared_ptr<void> KeepScalar;
        RawBuffer OutScalar = makeAppOutput(A, W, H, &KeepScalar);
        ParamBindings PB = Inputs;
        PB.bind(A.Output.name(), OutScalar);
        ExecutionStats ScalarStats;
        int Rc = runOnBackend(ExecSerial, PS, PB, &ScalarStats);
        std::string Detail;
        if (Rc != 0)
          R.Mismatches.push_back(
              {Desc, "scalarized " + ExecName + " exit code",
               "pipeline returned " + std::to_string(Rc)});
        else if (!buffersMatch(OutExec, OutScalar, 0.0, 0, &Detail))
          R.Mismatches.push_back(
              {Desc, "vector vs scalar " + ExecName, Detail});
        else if (ScalarStats.LoadsPerBuffer != SerialStats.LoadsPerBuffer ||
                 ScalarStats.StoresPerBuffer != SerialStats.StoresPerBuffer)
          R.Mismatches.push_back(
              {Desc, "vector vs scalar " + ExecName + " memory traffic",
               "vector {" + statsSummary(SerialStats) + "} scalar {" +
                   statsSummary(ScalarStats) + "}"});
      }
    }
    ++R.SchedulesRun;
    ++ScheduleIndex;
  }

  // The concurrent-serving leg: every retained executable runs again as
  // an async job, all in flight at once on the shared task scheduler with
  // mixed priorities — the serving runtime's configuration. Each frame
  // must reproduce its sequential run bit for bit (zero tolerance) with
  // identical merged ExecutionStats: concurrency must be invisible in the
  // results.
  if (Cases.size() > 1) {
    struct Frame {
      std::shared_ptr<void> Keep;
      RawBuffer Out;
      ExecutionStats Stats;
      int Rc = 0;
    };
    std::vector<Frame> Frames(Cases.size());
    std::vector<ParamBindings> Bindings(Cases.size());
    for (size_t I = 0; I < Cases.size(); ++I) {
      Frames[I].Out = makeAppOutput(A, W, H, &Frames[I].Keep);
      Bindings[I] = Inputs;
      Bindings[I].bind(A.Output.name(), Frames[I].Out);
    }
    std::vector<AsyncJob> Jobs;
    for (size_t I = 0; I < Cases.size(); ++I) {
      const Executable *Exe = Cases[I].Exe.get();
      const ParamBindings *PB = &Bindings[I];
      Frame *F = &Frames[I];
      Jobs.push_back(
          submitAsyncJob([Exe, PB, F] { F->Rc = Exe->run(*PB, &F->Stats); },
                         /*Priority=*/int(I % 3)));
    }
    for (const AsyncJob &J : Jobs)
      J.wait();
    for (size_t I = 0; I < Cases.size(); ++I) {
      const ConcurrentCase &CC = Cases[I];
      const Frame &F = Frames[I];
      std::string Detail;
      if (F.Rc != 0)
        R.Mismatches.push_back(
            {CC.Desc, "concurrent " + ExecName + " exit code",
             "pipeline returned " + std::to_string(F.Rc)});
      else if (!buffersMatch(CC.SerialOut, F.Out, 0.0, 0, &Detail))
        R.Mismatches.push_back(
            {CC.Desc, "concurrent vs sequential " + ExecName, Detail});
      else if (F.Stats != CC.SerialStats)
        R.Mismatches.push_back(
            {CC.Desc, "concurrent vs sequential " + ExecName + " stats",
             "sequential {" + statsSummary(CC.SerialStats) +
                 "} concurrent {" + statsSummary(F.Stats) + "}"});
    }
  }
  return R;
}
