//===-- support/Util.cpp --------------------------------------------------==//

#include "support/Util.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

using namespace halide;

ErrorReport::ErrorReport(const char *File, int Line, const char *CondString,
                         bool IsUser) {
  Msg << (IsUser ? "Error: " : "Internal error at ") << File << ":" << Line
      << " ";
  if (CondString)
    Msg << "condition failed: " << CondString << " ";
}

ErrorReport::~ErrorReport() {
  Msg << "\n";
  std::fputs(Msg.str().c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

namespace {
/// Per-prefix counters for uniqueName, lock-guarded (concurrent serving
/// clients construct Funcs/Params/Vars from their own threads). A
/// function-local static avoids a global static constructor.
std::mutex &nameCountersMutex() {
  static std::mutex M;
  return M;
}

std::map<std::string, int> &nameCounters() {
  static std::map<std::string, int> Counters;
  return Counters;
}
} // namespace

std::string halide::uniqueName(const std::string &Prefix) {
  std::lock_guard<std::mutex> Lock(nameCountersMutex());
  int Count = nameCounters()[Prefix]++;
  return Prefix + std::to_string(Count);
}

void halide::resetUniqueNameCounters() {
  std::lock_guard<std::mutex> Lock(nameCountersMutex());
  nameCounters().clear();
}

bool halide::startsWith(const std::string &Str, const std::string &Prefix) {
  return Str.size() >= Prefix.size() &&
         Str.compare(0, Prefix.size(), Prefix) == 0;
}

bool halide::endsWith(const std::string &Str, const std::string &Suffix) {
  return Str.size() >= Suffix.size() &&
         Str.compare(Str.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::vector<std::string> halide::splitString(const std::string &Str,
                                             char Sep) {
  std::vector<std::string> Result;
  size_t Start = 0;
  while (Start < Str.size()) {
    size_t End = Str.find(Sep, Start);
    if (End == std::string::npos) {
      Result.push_back(Str.substr(Start));
      return Result;
    }
    Result.push_back(Str.substr(Start, End - Start));
    Start = End + 1;
  }
  return Result;
}

std::string halide::replaceAll(std::string Str, const std::string &From,
                               const std::string &To) {
  internal_assert(!From.empty()) << "replaceAll with empty pattern";
  size_t Pos = 0;
  while ((Pos = Str.find(From, Pos)) != std::string::npos) {
    Str.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Str;
}
