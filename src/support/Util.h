//===-- support/Util.h - Common utilities and error handling ---*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small support utilities shared by every layer of the compiler: streaming
/// assertion macros (the project builds without exceptions in the spirit of
/// the LLVM coding standards), unique name generation for compiler-created
/// variables, and string helpers.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_SUPPORT_UTIL_H
#define HALIDE_SUPPORT_UTIL_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace halide {

/// Accumulates an error message via operator<< and aborts the process when
/// destroyed. Used through the internal_assert / user_assert macros below so
/// that error sites read like LLVM's `assert(X && "msg")` but can embed
/// dynamic values.
class ErrorReport {
public:
  ErrorReport(const char *File, int Line, const char *CondString, bool IsUser);
  [[noreturn]] ~ErrorReport();

  template <typename T> ErrorReport &operator<<(const T &Value) {
    Msg << Value;
    return *this;
  }

private:
  std::ostringstream Msg;
};

/// A do-nothing sink so that passing asserts compile away to a dead branch.
class ErrorSink {
public:
  template <typename T> ErrorSink &operator<<(const T &) { return *this; }
};

} // namespace halide

/// Check an invariant of the compiler itself. Failure indicates a bug in
/// this repository, not in user code.
#define internal_assert(c)                                                     \
  if (c)                                                                       \
    ;                                                                          \
  else                                                                         \
    ::halide::ErrorReport(__FILE__, __LINE__, #c, false)

/// Check a constraint on user input (malformed pipelines, bad schedules).
#define user_assert(c)                                                         \
  if (c)                                                                       \
    ;                                                                          \
  else                                                                         \
    ::halide::ErrorReport(__FILE__, __LINE__, #c, true)

/// Report an unconditional internal error.
#define internal_error ::halide::ErrorReport(__FILE__, __LINE__, nullptr, false)
/// Report an unconditional user-facing error.
#define user_error ::halide::ErrorReport(__FILE__, __LINE__, nullptr, true)

namespace halide {

/// Returns a process-unique name derived from \p Prefix, used for
/// compiler-generated variables and functions. Thread-safe: the counters
/// are lock-guarded so concurrent front-end construction (serving clients
/// declaring Params, tests building pipelines on worker threads) cannot
/// mint duplicate names.
std::string uniqueName(const std::string &Prefix);

/// Resets the unique-name counters. Only tests should call this, to make
/// golden-text comparisons deterministic.
void resetUniqueNameCounters();

/// Returns true if \p Str starts with \p Prefix.
bool startsWith(const std::string &Str, const std::string &Prefix);

/// Returns true if \p Str ends with \p Suffix.
bool endsWith(const std::string &Str, const std::string &Suffix);

/// Splits \p Str on character \p Sep. An empty string yields no tokens.
std::vector<std::string> splitString(const std::string &Str, char Sep);

/// Replaces every occurrence of \p From in \p Str with \p To.
std::string replaceAll(std::string Str, const std::string &From,
                       const std::string &To);

/// Intrusively reference-counted smart pointer, in the style of
/// llvm::IntrusiveRefCntPtr. The pointee exposes a mutable
/// `std::atomic<int> RefCount`. Refcounting is atomic because handles to
/// shared IR cross threads in the serving runtime: concurrent realize()
/// calls copy LoweredPipeline (and the Func/Expr handles inside it), and
/// two backend compiles of the same Func walk lowered trees that share
/// subtrees with the original definition — a plain int count corrupts
/// under that interleaving. Structural *mutation* of IR is still
/// single-threaded-per-tree (lowering is serialized; executing pipelines
/// never mutate IR), so only the counts need atomicity, not the nodes.
template <typename T> class IntrusivePtr {
public:
  IntrusivePtr() = default;
  IntrusivePtr(T *P) : Ptr(P) { incref(); }
  IntrusivePtr(const IntrusivePtr &Other) : Ptr(Other.Ptr) { incref(); }
  IntrusivePtr(IntrusivePtr &&Other) noexcept : Ptr(Other.Ptr) {
    Other.Ptr = nullptr;
  }
  ~IntrusivePtr() { decref(); }

  IntrusivePtr &operator=(const IntrusivePtr &Other) {
    // Increment first so self-assignment is safe.
    T *OldPtr = Ptr;
    Ptr = Other.Ptr;
    incref();
    if (OldPtr &&
        OldPtr->RefCount.fetch_sub(1, std::memory_order_acq_rel) == 1)
      delete OldPtr;
    return *this;
  }

  IntrusivePtr &operator=(IntrusivePtr &&Other) noexcept {
    std::swap(Ptr, Other.Ptr);
    return *this;
  }

  T *get() const { return Ptr; }
  T *operator->() const { return Ptr; }
  T &operator*() const { return *Ptr; }
  explicit operator bool() const { return Ptr != nullptr; }

  bool sameAs(const IntrusivePtr &Other) const { return Ptr == Other.Ptr; }

private:
  void incref() {
    // Relaxed is enough for an increment: the thread already holds a live
    // reference (directly or through the handle it is copying from), so
    // the count cannot concurrently reach zero.
    if (Ptr)
      Ptr->RefCount.fetch_add(1, std::memory_order_relaxed);
  }
  // GCC 12 reports a spurious -Wuse-after-free here when decref is inlined
  // into loops over containers of IntrusivePtr (it conflates the pointer
  // freed in one iteration with the decrement in the next).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuse-after-free"
#endif
  void decref() {
    // Acquire/release so every access through a dying reference
    // happens-before the delete that another thread's final decrement may
    // perform.
    T *Dead = Ptr;
    Ptr = nullptr;
    if (Dead && Dead->RefCount.fetch_sub(1, std::memory_order_acq_rel) == 1)
      delete Dead;
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  T *Ptr = nullptr;
};

} // namespace halide

#endif // HALIDE_SUPPORT_UTIL_H
