//===-- vm/VmExecutable.h - Bytecode execution backend ----------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VmBytecode backend: a lowered pipeline compiled once to a flat
/// bytecode program (vm/VmCompiler.h) and executed by a dispatch loop on
/// every run. It implements the common Executable interface, so
/// Pipeline::compile(Target{Backend::VmBytecode}) caches it by schedule
/// fingerprint exactly like the other backends, and it gathers the same
/// ExecutionStats (loads/stores per buffer, peak allocation, parallel
/// iterations) the tree-walking interpreter does — at a fraction of the
/// per-operation cost, which is what lets the differential suite and the
/// autotuner afford many more schedules per app.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_VM_VMEXECUTABLE_H
#define HALIDE_VM_VMEXECUTABLE_H

#include "codegen/Executable.h"
#include "vm/Bytecode.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace halide {

/// A pipeline compiled to bytecode, ready to run any number of times.
/// Parallel For loops are compiled to task entry points with explicit
/// closures and dispatched over the work-stealing task scheduler
/// (runtime/TaskScheduler.h), in chunks executed by per-worker contexts
/// whose statistics shards merge deterministically — a threaded run's
/// output and merged ExecutionStats are bit-identical to a serial run's.
/// The Target's NumThreads picks the dispatch (1 = serial inline, 0 =
/// the scheduler's pool size). Simulated-GPU loop types stay serial, and
/// pipeline assertions abort via user_error, so a completed run always
/// returns 0.
class VmExecutable final : public Executable {
public:
  VmExecutable(LoweredPipeline P, Target T);

  int run(const ParamBindings &Params,
          ExecutionStats *Stats = nullptr) const override;

  /// The disassembled bytecode (the VM's "generated source"), produced
  /// on first request: the compile path that feeds the schedule sweeps
  /// never pays for formatting a listing nobody reads. Cached executables
  /// are shared across threads, so the lazy fill is a call_once.
  const std::string &source() const override {
    std::call_once(ListingOnce, [this] { Listing = Prog.disassemble(); });
    return Listing;
  }

  const VmProgram &program() const { return Prog; }

private:
  VmProgram Prog;
  /// Per-buffer element kinds (vm/VmExecutable.cpp's ElemKind), computed
  /// at compile time so runs do not rebuild the table per frame.
  std::vector<uint8_t> BufKinds;
  /// Process-wide profiler stage ids, one per Prog.StageNames entry
  /// (resolved once here so ProfEnter/ProfExit dispatch is a table
  /// lookup). Empty for uninstrumented programs.
  std::vector<int> StageIds;
  /// Per-buffer trace stage ids and packed element type codes
  /// (observe/TraceStream.h), one per buffer-table slot, resolved once
  /// here so trace dispatch never touches the name registry. Populated
  /// only when the program contains trace ops.
  std::vector<int> TraceStageIds;
  std::vector<uint8_t> TraceTypeCodes;
  mutable std::once_flag ListingOnce;
  mutable std::string Listing;
};

/// Compiles \p P to bytecode for target \p T.
std::shared_ptr<const VmExecutable> vmCompile(const LoweredPipeline &P,
                                              const Target &T);

} // namespace halide

#endif // HALIDE_VM_VMEXECUTABLE_H
