//===-- vm/VmCompiler.cpp -------------------------------------------------===//

#include "vm/VmCompiler.h"

#include "analysis/Scope.h"
#include "ir/Expr.h"
#include "ir/IROperators.h"

#include <algorithm>
#include <map>

using namespace halide;

namespace {

class Compiler {
public:
  explicit Compiler(const LoweredPipeline &P) : P(P) {}

  VmProgram compile() {
    // Boundary buffers occupy the first buffer-table slots; internal
    // Allocate sites are appended as they are encountered.
    for (const BufferArg &Arg : P.Buffers) {
      VmBufferDesc Desc;
      Desc.Name = Arg.Name;
      Desc.ElemType = Arg.ElemType;
      Desc.IsBoundary = true;
      Desc.IsOutput = Arg.IsOutput;
      BufScope.push(Arg.Name, int32_t(Prog.Buffers.size()));
      Prog.Buffers.push_back(std::move(Desc));
    }
    compileStmt(P.Body);
    emit({VmOp::Halt, 0, 0, 1, 0, 0, 0, 0, 0});
    Prog.InitialRegs.assign(size_t(RegCount), VmSlot{0});
    for (const auto &[Slot, Value] : ConstInits)
      Prog.InitialRegs[Slot] = Value;
    return std::move(Prog);
  }

private:
  //===------------------------------------------------------------------===//
  // Registers and emission
  //===------------------------------------------------------------------===//

  uint32_t allocReg(int Lanes) {
    uint32_t Slot = RegCount;
    RegCount += uint32_t(Lanes);
    return Slot;
  }

  size_t emit(VmInstr In) {
    Prog.Code.push_back(In);
    return Prog.Code.size() - 1;
  }

  /// Index of \p Name in the program's stage-name pool (appending it on
  /// first use). Marker pairs for one stage share an entry.
  int32_t internStageName(const std::string &Name) {
    for (size_t I = 0; I < Prog.StageNames.size(); ++I)
      if (Prog.StageNames[I] == Name)
        return int32_t(I);
    Prog.StageNames.push_back(Name);
    return int32_t(Prog.StageNames.size() - 1);
  }

  /// A register pre-loaded with a scalar integer constant (deduplicated).
  uint32_t constInt(int64_t Value) {
    auto It = IntConsts.find(Value);
    if (It != IntConsts.end())
      return It->second;
    uint32_t Slot = allocReg(1);
    VmSlot S;
    S.I = Value;
    ConstInits.emplace_back(Slot, S);
    IntConsts[Value] = Slot;
    return Slot;
  }

  /// A register pre-loaded with a scalar double constant (deduplicated by
  /// bit pattern so -0.0 and 0.0 stay distinct).
  uint32_t constFloat(double Value) {
    VmSlot S;
    S.F = Value;
    auto It = FloatConsts.find(S.I);
    if (It != FloatConsts.end())
      return It->second;
    uint32_t Slot = allocReg(1);
    ConstInits.emplace_back(Slot, S);
    FloatConsts[S.I] = Slot;
    return Slot;
  }

  /// The register holding the scalar parameter \p Name, creating its
  /// per-run initialization record on first use.
  uint32_t paramReg(const std::string &Name, Type T) {
    auto It = ParamSlots.find(Name);
    if (It != ParamSlots.end())
      return It->second;
    VmParamInit Init;
    Init.Name = Name;
    Init.Slot = allocReg(1);
    Init.IsFloat = T.isFloat();
    Init.Bits = uint8_t(T.Bits);
    Init.SignedWrap = T.isInt();
    Prog.Params.push_back(Init);
    ParamSlots[Name] = Init.Slot;
    return Init.Slot;
  }

  /// Fills the shared layout of an elementwise instruction.
  VmInstr elemwise(VmOp Op, Type T, uint32_t Dst, uint32_t A, uint32_t B = 0,
                   uint32_t C = 0) {
    VmInstr In;
    In.Op = Op;
    In.Bits = uint8_t(T.Bits);
    In.SignedWrap = T.isInt();
    In.Lanes = uint16_t(T.Lanes);
    In.Dst = Dst;
    In.A = A;
    In.B = B;
    In.C = C;
    return In;
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  uint32_t compileExpr(const Expr &E) {
    switch (E->Kind) {
    case IRNodeKind::IntImm:
      return constInt(wrapToType(E.as<IntImm>()->Value, E.type().element()));
    case IRNodeKind::UIntImm:
      return constInt(
          wrapToType(int64_t(E.as<UIntImm>()->Value), E.type().element()));
    case IRNodeKind::FloatImm:
      return constFloat(E.as<FloatImm>()->Value);
    case IRNodeKind::StringImm:
      internal_error << "vm: cannot evaluate string immediate";
      return 0;
    case IRNodeKind::Cast:
      return compileCast(E.as<Cast>());
    case IRNodeKind::Variable: {
      const Variable *Op = E.as<Variable>();
      if (Vars.contains(Op->Name))
        return Vars.get(Op->Name);
      return paramReg(Op->Name, Op->NodeType);
    }
    case IRNodeKind::Add:
      return compileBinary(E, E.as<Add>()->A, E.as<Add>()->B, VmOp::AddI,
                           VmOp::AddI, VmOp::AddF);
    case IRNodeKind::Sub:
      return compileBinary(E, E.as<Sub>()->A, E.as<Sub>()->B, VmOp::SubI,
                           VmOp::SubI, VmOp::SubF);
    case IRNodeKind::Mul:
      return compileBinary(E, E.as<Mul>()->A, E.as<Mul>()->B, VmOp::MulI,
                           VmOp::MulI, VmOp::MulF);
    case IRNodeKind::Div:
      return compileBinary(E, E.as<Div>()->A, E.as<Div>()->B, VmOp::DivI,
                           VmOp::DivU, VmOp::DivF);
    case IRNodeKind::Mod:
      return compileBinary(E, E.as<Mod>()->A, E.as<Mod>()->B, VmOp::ModI,
                           VmOp::ModU, VmOp::ModF);
    case IRNodeKind::Min:
      return compileBinary(E, E.as<Min>()->A, E.as<Min>()->B, VmOp::MinI,
                           VmOp::MinU, VmOp::MinF);
    case IRNodeKind::Max:
      return compileBinary(E, E.as<Max>()->A, E.as<Max>()->B, VmOp::MaxI,
                           VmOp::MaxU, VmOp::MaxF);
    case IRNodeKind::EQ:
      return compileCompare(E, E.as<EQ>()->A, E.as<EQ>()->B, VmOp::EqI,
                            VmOp::EqI, VmOp::EqF);
    case IRNodeKind::NE:
      return compileCompare(E, E.as<NE>()->A, E.as<NE>()->B, VmOp::NeI,
                            VmOp::NeI, VmOp::NeF);
    case IRNodeKind::LT:
      return compileCompare(E, E.as<LT>()->A, E.as<LT>()->B, VmOp::LtI,
                            VmOp::LtU, VmOp::LtF);
    case IRNodeKind::LE:
      return compileCompare(E, E.as<LE>()->A, E.as<LE>()->B, VmOp::LeI,
                            VmOp::LeU, VmOp::LeF);
    case IRNodeKind::GT:
      // a > b compiles as b < a (and likewise for >=) — same operand
      // ordering trick keeps the opcode count down.
      return compileCompare(E, E.as<GT>()->B, E.as<GT>()->A, VmOp::LtI,
                            VmOp::LtU, VmOp::LtF);
    case IRNodeKind::GE:
      return compileCompare(E, E.as<GE>()->B, E.as<GE>()->A, VmOp::LeI,
                            VmOp::LeU, VmOp::LeF);
    case IRNodeKind::And:
      return compileCompare(E, E.as<And>()->A, E.as<And>()->B, VmOp::AndB,
                            VmOp::AndB, VmOp::AndB);
    case IRNodeKind::Or:
      return compileCompare(E, E.as<Or>()->A, E.as<Or>()->B, VmOp::OrB,
                            VmOp::OrB, VmOp::OrB);
    case IRNodeKind::Not: {
      uint32_t A = compileExpr(E.as<Not>()->A);
      uint32_t Dst = allocReg(E.type().Lanes);
      emit(elemwise(VmOp::NotB, E.type(), Dst, A));
      return Dst;
    }
    case IRNodeKind::Select:
      return compileSelect(E.as<Select>());
    case IRNodeKind::Load:
      return compileLoad(E.as<Load>());
    case IRNodeKind::Ramp: {
      const Ramp *Op = E.as<Ramp>();
      uint32_t Base = compileExpr(Op->Base);
      uint32_t Stride = compileExpr(Op->Stride);
      uint32_t Dst = allocReg(Op->Lanes);
      emit(elemwise(VmOp::Ramp, E.type(), Dst, Base, Stride));
      return Dst;
    }
    case IRNodeKind::Broadcast: {
      const Broadcast *Op = E.as<Broadcast>();
      uint32_t A = compileExpr(Op->Value);
      uint32_t Dst = allocReg(Op->Lanes);
      emit(elemwise(VmOp::BroadcastSlot, E.type(), Dst, A));
      return Dst;
    }
    case IRNodeKind::Call:
      return compileCall(E.as<Call>());
    case IRNodeKind::Let: {
      const Let *Op = E.as<Let>();
      uint32_t Val = compileExpr(Op->Value);
      ScopedBinding<uint32_t> Bind(Vars, Op->Name, Val);
      return compileExpr(Op->Body);
    }
    default:
      internal_error << "vm: statement kind in expression position";
      return 0;
    }
  }

  uint32_t compileBinary(const Expr &E, const Expr &AE, const Expr &BE,
                         VmOp IntOp, VmOp UIntOp, VmOp FloatOp) {
    Type T = E.type();
    uint32_t A = compileExpr(AE);
    uint32_t B = compileExpr(BE);
    uint32_t Dst = allocReg(T.Lanes);
    Type OpT = AE.type();
    VmOp Op = OpT.isFloat() ? FloatOp
              : OpT.isUInt() && !OpT.isBool() ? UIntOp
                                              : IntOp;
    emit(elemwise(Op, OpT, Dst, A, B));
    return Dst;
  }

  uint32_t compileCompare(const Expr &E, const Expr &AE, const Expr &BE,
                          VmOp IntOp, VmOp UIntOp, VmOp FloatOp) {
    // Same emission as compileBinary but the operand type (not the bool
    // result type) picks the opcode, and the result never wraps.
    return compileBinary(E, AE, BE, IntOp, UIntOp, FloatOp);
  }

  uint32_t compileCast(const Cast *Op) {
    Type To = Op->NodeType;
    Type From = Op->Value.type();
    uint32_t A = compileExpr(Op->Value);
    uint32_t Dst = allocReg(To.Lanes);
    VmOp O;
    if (To.isFloat())
      O = From.isFloat()  ? VmOp::CastFToF
          : From.isUInt() ? VmOp::CastUIntToF
                          : VmOp::CastIntToF;
    else
      O = From.isFloat() ? VmOp::CastFToInt : VmOp::CastIntWrap;
    emit(elemwise(O, To, Dst, A));
    return Dst;
  }

  uint32_t compileSelect(const Select *Op) {
    uint32_t C = compileExpr(Op->Condition);
    uint32_t A = compileExpr(Op->TrueValue);
    uint32_t B = compileExpr(Op->FalseValue);
    Type T = Op->NodeType;
    uint32_t Dst = allocReg(T.Lanes);
    emit(elemwise(VmOp::Select, T, Dst, A, B, C));
    return Dst;
  }

  /// A TraceLoad/TraceStore event instruction: A is the index (or, when
  /// \p Dense, scalar base) register of the memory op it follows, B the
  /// value register. SignedWrap carries the dense flag; Bits/Lanes the
  /// value shape.
  VmInstr traceAccess(VmOp Op, Type T, uint32_t IdxReg, uint32_t ValReg,
                      bool Dense, int32_t Buf) {
    VmInstr Tr = elemwise(Op, T, 0, IdxReg, ValReg);
    Tr.SignedWrap = Dense ? 1 : 0;
    Tr.Aux = Buf;
    return Tr;
  }

  /// Unit-stride ramp index: the dense vector access shape. Such loads
  /// and stores compile only the scalar base and move the whole lane
  /// group per dispatch (LoadDense/StoreDense).
  static const Ramp *asDenseRamp(const Expr &Index) {
    const Ramp *R = Index.as<Ramp>();
    int64_t Stride;
    if (R && R->Lanes > 1 && asConstInt(R->Stride, &Stride) && Stride == 1)
      return R;
    return nullptr;
  }

  uint32_t compileLoad(const Load *Op) {
    int32_t Buf = BufScope.get(Op->Name);
    Type T = Op->NodeType;
    if (const Ramp *R = asDenseRamp(Op->Index)) {
      uint32_t Base = compileExpr(R->Base);
      uint32_t Dst = allocReg(T.Lanes);
      VmInstr In = elemwise(VmOp::LoadDense, T, Dst, Base);
      In.Aux = Buf;
      emit(In);
      return Dst;
    }
    uint32_t Index = compileExpr(Op->Index);
    uint32_t Dst = allocReg(T.Lanes);
    VmInstr In = elemwise(VmOp::Load, T, Dst, Index);
    In.Aux = Buf;
    emit(In);
    return Dst;
  }

  uint32_t compileCall(const Call *Op) {
    if (Op->CallKind == CallType::Intrinsic) {
      // The trace hook is a no-op in the VM, exactly as in the
      // interpreter: it folds to the constant 0 without evaluating its
      // arguments.
      if (Op->Name == Call::TracePoint)
        return constInt(0);
      if (Op->Name == Call::TraceLoad) {
        // {StringImm(buffer), Load}: the load compiles exactly as an
        // untraced load (dense form included), followed by a trace op
        // reading the same index and destination registers.
        const StringImm *BufName = Op->Args.at(0).as<StringImm>();
        const Load *L = Op->Args.at(1).as<Load>();
        internal_assert(BufName && L) << "vm: malformed trace_load";
        int32_t Buf = BufScope.get(L->Name);
        Type T = L->NodeType;
        bool Dense = false;
        uint32_t IdxReg;
        if (const Ramp *R = asDenseRamp(L->Index)) {
          IdxReg = compileExpr(R->Base);
          Dense = true;
        } else {
          IdxReg = compileExpr(L->Index);
        }
        uint32_t Dst = allocReg(T.Lanes);
        VmInstr In = elemwise(Dense ? VmOp::LoadDense : VmOp::Load, T, Dst,
                              IdxReg);
        In.Aux = Buf;
        emit(In);
        emit(traceAccess(VmOp::TraceLoad, T, IdxReg, Dst, Dense, Buf));
        return Dst;
      }
      internal_error << "vm: unknown intrinsic " << Op->Name;
    }
    internal_assert(Op->CallKind == CallType::PureExtern)
        << "vm: unlowered call to " << Op->Name;
    VmExtern Fn;
    if (Op->Name == "sqrt")
      Fn = VmExtern::Sqrt;
    else if (Op->Name == "sin")
      Fn = VmExtern::Sin;
    else if (Op->Name == "cos")
      Fn = VmExtern::Cos;
    else if (Op->Name == "exp")
      Fn = VmExtern::Exp;
    else if (Op->Name == "log")
      Fn = VmExtern::Log;
    else if (Op->Name == "floor")
      Fn = VmExtern::Floor;
    else if (Op->Name == "ceil")
      Fn = VmExtern::Ceil;
    else if (Op->Name == "round")
      Fn = VmExtern::Round;
    else if (Op->Name == "pow")
      Fn = VmExtern::Pow;
    else {
      internal_error << "vm: unknown extern " << Op->Name;
      return 0;
    }
    internal_assert(Op->Args.size() == (Fn == VmExtern::Pow ? 2u : 1u))
        << "vm: bad arity for extern " << Op->Name;
    uint32_t A = compileExpr(Op->Args[0]);
    uint32_t B = Op->Args.size() > 1 ? compileExpr(Op->Args[1]) : 0;
    Type T = Op->NodeType;
    uint32_t Dst = allocReg(T.Lanes);
    VmInstr In = elemwise(VmOp::CallExtern, T, Dst, A, B);
    In.Aux = int32_t(Fn);
    emit(In);
    return Dst;
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void compileStmt(const Stmt &S) {
    switch (S->Kind) {
    case IRNodeKind::LetStmt: {
      const LetStmt *Op = S.as<LetStmt>();
      uint32_t Val = compileExpr(Op->Value);
      ScopedBinding<uint32_t> Bind(Vars, Op->Name, Val);
      compileStmt(Op->Body);
      return;
    }
    case IRNodeKind::AssertStmt: {
      const AssertStmt *Op = S.as<AssertStmt>();
      uint32_t C = compileExpr(Op->Condition);
      VmInstr In;
      In.Op = VmOp::AssertCond;
      In.A = C;
      In.Aux = int32_t(Prog.Messages.size());
      Prog.Messages.push_back(Op->Message);
      emit(In);
      return;
    }
    case IRNodeKind::ProducerConsumer:
      compileStmt(S.as<ProducerConsumer>()->Body);
      return;
    case IRNodeKind::For:
      compileFor(S.as<For>());
      return;
    case IRNodeKind::Store: {
      const Store *Op = S.as<Store>();
      int32_t Buf = BufScope.get(Op->Name);
      // Value before index, matching the interpreter's evaluation order.
      uint32_t Val = compileExpr(Op->Value);
      if (const Ramp *R = asDenseRamp(Op->Index)) {
        uint32_t Base = compileExpr(R->Base);
        VmInstr In =
            elemwise(VmOp::StoreDense, Op->Value.type(), 0, Val, Base);
        In.Aux = Buf;
        emit(In);
        return;
      }
      uint32_t Index = compileExpr(Op->Index);
      VmInstr In = elemwise(VmOp::Store, Op->Value.type(), 0, Val, Index);
      In.Aux = Buf;
      emit(In);
      return;
    }
    case IRNodeKind::Allocate:
      compileAllocate(S.as<Allocate>());
      return;
    case IRNodeKind::Block:
      compileStmt(S.as<Block>()->First);
      compileStmt(S.as<Block>()->Rest);
      return;
    case IRNodeKind::IfThenElse: {
      const IfThenElse *Op = S.as<IfThenElse>();
      uint32_t C = compileExpr(Op->Condition);
      VmInstr Br;
      Br.Op = VmOp::JumpIfFalse;
      Br.A = C;
      size_t BrAt = emit(Br);
      compileStmt(Op->ThenCase);
      if (Op->ElseCase.defined()) {
        VmInstr J;
        J.Op = VmOp::Jump;
        size_t JAt = emit(J);
        Prog.Code[BrAt].Aux = int32_t(Prog.Code.size());
        compileStmt(Op->ElseCase);
        Prog.Code[JAt].Aux = int32_t(Prog.Code.size());
      } else {
        Prog.Code[BrAt].Aux = int32_t(Prog.Code.size());
      }
      return;
    }
    case IRNodeKind::Evaluate: {
      const Evaluate *Op = S.as<Evaluate>();
      // Pure expressions evaluated for side effects only reduce to the
      // trace hook, which the VM drops entirely, and the profile markers,
      // which compile to dedicated ops with the stage name interned in
      // the program's StageNames pool (the executable resolves names to
      // process-wide ids once, at load).
      const Call *C = Op->Value.as<Call>();
      if (C && C->CallKind == CallType::Intrinsic) {
        if (C->Name == Call::TracePoint)
          return;
        if (C->Name == Call::ProfileStageStart ||
            C->Name == Call::ProfileStageEnd) {
          const StringImm *Stage = C->Args.at(0).as<StringImm>();
          internal_assert(Stage) << "vm: profile marker without stage name";
          VmInstr In;
          In.Op = C->Name == Call::ProfileStageStart ? VmOp::ProfEnter
                                                     : VmOp::ProfExit;
          In.Aux = internStageName(Stage->Value);
          emit(In);
          return;
        }
        if (C->Name == Call::TraceStore) {
          // {StringImm(buffer), Value, Index}: the store compiles exactly
          // as an untraced Store (value before index, dense form
          // included), followed by a trace op reading the same registers.
          const StringImm *BufName = C->Args.at(0).as<StringImm>();
          internal_assert(BufName) << "vm: malformed trace_store";
          int32_t Buf = BufScope.get(BufName->Value);
          const Expr &Value = C->Args.at(1);
          const Expr &Index = C->Args.at(2);
          uint32_t Val = compileExpr(Value);
          bool Dense = false;
          uint32_t IdxReg;
          if (const Ramp *R = asDenseRamp(Index)) {
            IdxReg = compileExpr(R->Base);
            Dense = true;
          } else {
            IdxReg = compileExpr(Index);
          }
          VmInstr In = elemwise(Dense ? VmOp::StoreDense : VmOp::Store,
                                Value.type(), 0, Val, IdxReg);
          In.Aux = Buf;
          emit(In);
          emit(traceAccess(VmOp::TraceStore, Value.type(), IdxReg, Val,
                           Dense, Buf));
          return;
        }
        if (C->Name == Call::TraceBegin) {
          // Extents move into a contiguous scalar register block so the
          // event op can read them as one range.
          const StringImm *BufName = C->Args.at(0).as<StringImm>();
          internal_assert(BufName) << "vm: malformed trace_begin";
          int32_t Buf = BufScope.get(BufName->Value);
          int Dims = int(C->Args.size()) - 1;
          uint32_t Base = allocReg(Dims > 0 ? Dims : 1);
          for (int I = 0; I < Dims; ++I) {
            uint32_t E = compileExpr(C->Args[size_t(I) + 1]);
            emit(elemwise(VmOp::Mov, Int(32), Base + uint32_t(I), E));
          }
          VmInstr In;
          In.Op = VmOp::TraceBegin;
          In.A = Base;
          In.Lanes = uint16_t(Dims);
          In.Aux = Buf;
          emit(In);
          return;
        }
        if (C->Name == Call::TraceEnd) {
          const StringImm *BufName = C->Args.at(0).as<StringImm>();
          internal_assert(BufName) << "vm: malformed trace_end";
          VmInstr In;
          In.Op = VmOp::TraceEnd;
          In.Lanes = 0;
          In.Aux = BufScope.get(BufName->Value);
          emit(In);
          return;
        }
      }
      compileExpr(Op->Value);
      return;
    }
    case IRNodeKind::Provide:
    case IRNodeKind::Realize:
      internal_error << "vm: unflattened "
                     << (S->Kind == IRNodeKind::Provide ? "Provide"
                                                        : "Realize");
      return;
    default:
      internal_error << "vm: expression kind in statement position";
    }
  }

  void compileFor(const For *Op) {
    internal_assert(Op->Kind != ForType::Vectorized &&
                    Op->Kind != ForType::Unrolled)
        << "vm: unlowered " << forTypeName(Op->Kind) << " loop";
    uint32_t MinR = compileExpr(Op->MinExpr);
    uint32_t ExtR = compileExpr(Op->Extent);
    internal_assert(Op->MinExpr.type().isScalar() &&
                    Op->Extent.type().isScalar())
        << "vm: vector loop bounds";

    if (isParallelForType(Op->Kind)) {
      // The extent feeds the span statistic whether or not the loop is
      // actually threaded.
      VmInstr In;
      In.Op = VmOp::CountParallel;
      In.A = ExtR;
      emit(In);
    }

    if (Op->Kind == ForType::Parallel) {
      // Extract the body into a parallel task entry point: the dispatch
      // loop hands [min, min+extent) to the task scheduler (or runs it
      // inline for single-threaded targets), with the body's live-in
      // registers as the explicit closure. Simulated-GPU loop types stay
      // serial here — they model the device the GpuSim backend runs.
      compileParallelFor(Op, MinR, ExtR);
      return;
    }

    // counter = min; limit = min + extent (64-bit, so the back-edge
    // comparison cannot wrap); skip the loop entirely when extent <= 0.
    uint32_t Counter = allocReg(1);
    uint32_t Limit = allocReg(1);
    uint32_t Guard = allocReg(1);
    emit(elemwise(VmOp::Mov, Int(32), Counter, MinR));
    emit(elemwise(VmOp::AddI, Int(64), Limit, MinR, ExtR));
    emit(elemwise(VmOp::LtI, Int(64), Guard, Counter, Limit));
    VmInstr Br;
    Br.Op = VmOp::JumpIfFalse;
    Br.A = Guard;
    size_t BrAt = emit(Br);

    size_t BodyStart = Prog.Code.size();
    {
      ScopedBinding<uint32_t> Bind(Vars, Op->Name, Counter);
      compileStmt(Op->Body);
    }
    VmInstr Next;
    Next.Op = VmOp::LoopNext;
    Next.A = Counter;
    Next.B = Limit;
    Next.Aux = int32_t(BodyStart);
    emit(Next);
    Prog.Code[BrAt].Aux = int32_t(Prog.Code.size());
  }

  void compileParallelFor(const For *Op, uint32_t MinR, uint32_t ExtR) {
    uint32_t Counter = allocReg(1);
    // Reserve the task slot before compiling the body: nested parallel
    // loops inside it allocate their own slots while this one is open.
    const size_t TaskIndex = Prog.Tasks.size();
    Prog.Tasks.emplace_back();
    VmInstr PF;
    PF.Op = VmOp::ParFor;
    PF.Dst = uint32_t(TaskIndex);
    PF.A = MinR;
    PF.B = ExtR;
    size_t PFAt = emit(PF);

    VmTaskDesc Task;
    Task.CounterReg = Counter;
    Task.BodyStart = uint32_t(Prog.Code.size());
    {
      ScopedBinding<uint32_t> Bind(Vars, Op->Name, Counter);
      compileStmt(Op->Body);
    }
    VmInstr Ret;
    Ret.Op = VmOp::TaskRet;
    Task.BodyEnd = uint32_t(emit(Ret));
    Prog.Code[PFAt].Aux = int32_t(Prog.Code.size());

    // The explicit closure: every register the body region reads (its
    // own scratch writes-then-reads included — capturing those too is
    // harmless and keeps the analysis a single pass), minus the counter,
    // which the dispatcher sets per iteration. Nested task bodies lie
    // inside this region, so their captures are transitively included:
    // whatever an inner task copies from its spawner must be present in
    // the spawner's context to begin with.
    std::vector<std::pair<uint32_t, uint32_t>> Reads;
    for (size_t PC = Task.BodyStart; PC <= Task.BodyEnd; ++PC)
      forEachSourceRange(Prog.Code[PC], &Reads);
    Task.LiveIn = mergeRanges(std::move(Reads), Counter);
    Prog.Tasks[TaskIndex] = std::move(Task);
  }

  /// Appends the (slot, length) register ranges instruction \p In reads.
  void forEachSourceRange(const VmInstr &In,
                          std::vector<std::pair<uint32_t, uint32_t>> *Out) {
    const uint32_t L = In.Lanes;
    switch (In.Op) {
    case VmOp::Mov:
    case VmOp::NotB:
    case VmOp::CastIntWrap:
    case VmOp::CastIntToF:
    case VmOp::CastUIntToF:
    case VmOp::CastFToInt:
    case VmOp::CastFToF:
    case VmOp::Load:
      Out->push_back({In.A, L});
      break;
    case VmOp::Select:
      Out->push_back({In.A, L});
      Out->push_back({In.B, L});
      Out->push_back({In.C, L});
      break;
    case VmOp::Ramp:
      Out->push_back({In.A, 1});
      Out->push_back({In.B, 1});
      break;
    case VmOp::BroadcastSlot:
      Out->push_back({In.A, 1});
      break;
    case VmOp::Store:
      Out->push_back({In.A, L});
      Out->push_back({In.B, L});
      break;
    case VmOp::LoadDense:
      Out->push_back({In.A, 1}); // scalar base register
      break;
    case VmOp::StoreDense:
      Out->push_back({In.A, L}); // value lanes
      Out->push_back({In.B, 1}); // scalar base register
      break;
    case VmOp::Alloc:
    case VmOp::JumpIfFalse:
    case VmOp::AssertCond:
    case VmOp::CountParallel:
      Out->push_back({In.A, 1});
      break;
    case VmOp::LoopNext:
      Out->push_back({In.A, 1});
      Out->push_back({In.B, 1});
      break;
    case VmOp::ParFor:
      Out->push_back({In.A, 1});
      Out->push_back({In.B, 1});
      break;
    case VmOp::CallExtern:
      Out->push_back({In.A, L});
      if (VmExtern(In.Aux) == VmExtern::Pow)
        Out->push_back({In.B, L});
      break;
    case VmOp::TraceLoad:
    case VmOp::TraceStore:
      // A is the index register (a single scalar base in the dense form,
      // flagged in SignedWrap), B the value lanes. Missing these would
      // leave a traced access's registers out of a parallel task's
      // closure.
      Out->push_back({In.A, In.SignedWrap ? 1 : L});
      Out->push_back({In.B, L});
      break;
    case VmOp::TraceBegin:
      if (L)
        Out->push_back({In.A, L});
      break;
    case VmOp::Jump:
    case VmOp::FreeOp:
    case VmOp::TaskRet:
    case VmOp::ProfEnter:
    case VmOp::ProfExit:
    case VmOp::TraceEnd:
    case VmOp::Halt:
      break;
    default:
      // Every remaining op is a two-operand elementwise arithmetic,
      // comparison, or boolean instruction.
      Out->push_back({In.A, L});
      Out->push_back({In.B, L});
      break;
    }
  }

  /// Sorts, merges, and de-overlaps raw ranges; drops \p Exclude (a
  /// single slot — the task counter, which is written per iteration).
  static std::vector<std::pair<uint32_t, uint32_t>>
  mergeRanges(std::vector<std::pair<uint32_t, uint32_t>> Ranges,
              uint32_t Exclude) {
    std::sort(Ranges.begin(), Ranges.end());
    std::vector<std::pair<uint32_t, uint32_t>> Merged;
    for (const auto &[Start, Len] : Ranges) {
      uint32_t End = Start + Len;
      if (!Merged.empty() && Start <= Merged.back().first + Merged.back().second) {
        uint32_t &MLen = Merged.back().second;
        if (End > Merged.back().first + MLen)
          MLen = End - Merged.back().first;
      } else {
        Merged.push_back({Start, Len});
      }
    }
    // Carve the excluded slot out of whichever range contains it.
    std::vector<std::pair<uint32_t, uint32_t>> Out;
    for (const auto &[Start, Len] : Merged) {
      if (Exclude < Start || Exclude >= Start + Len) {
        Out.push_back({Start, Len});
        continue;
      }
      if (Exclude > Start)
        Out.push_back({Start, Exclude - Start});
      if (Exclude + 1 < Start + Len)
        Out.push_back({Exclude + 1, Start + Len - Exclude - 1});
    }
    return Out;
  }

  void compileAllocate(const Allocate *Op) {
    VmBufferDesc Desc;
    Desc.Name = Op->Name;
    Desc.ElemType = Op->ElemType.element();
    int32_t Buf = int32_t(Prog.Buffers.size());
    Prog.Buffers.push_back(std::move(Desc));

    // elems = product of the extents, accumulated in 64 bits like the
    // interpreter (each extent is a wrapped int32; the product is not
    // re-wrapped).
    uint32_t Elems = constInt(1);
    for (const Expr &E : Op->Extents) {
      uint32_t Ext = compileExpr(E);
      uint32_t Next = allocReg(1);
      emit(elemwise(VmOp::MulI, Int(64), Next, Elems, Ext));
      Elems = Next;
    }
    VmInstr In;
    In.Op = VmOp::Alloc;
    In.A = Elems;
    In.Aux = Buf;
    emit(In);

    {
      ScopedBinding<int32_t> Bind(BufScope, Op->Name, Buf);
      compileStmt(Op->Body);
    }
    VmInstr Fr;
    Fr.Op = VmOp::FreeOp;
    Fr.Aux = Buf;
    emit(Fr);
  }

  const LoweredPipeline &P;
  VmProgram Prog;
  uint32_t RegCount = 0;
  Scope<uint32_t> Vars;     ///< let/loop variable -> register slot
  Scope<int32_t> BufScope;  ///< buffer name -> buffer-table index
  std::map<std::string, uint32_t> ParamSlots;
  std::map<int64_t, uint32_t> IntConsts;
  std::map<int64_t, uint32_t> FloatConsts; ///< keyed by bit pattern
  std::vector<std::pair<uint32_t, VmSlot>> ConstInits;
};

} // namespace

VmProgram halide::compileToBytecode(const LoweredPipeline &P) {
  Compiler C(P);
  return C.compile();
}
