//===-- vm/Bytecode.h - Register-based bytecode for lowered IR --*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the bytecode VM backend. VmCompiler walks a
/// lowered pipeline statement once and emits a flat stream of these
/// instructions over virtual registers; VmExecutable's dispatch loop then
/// executes the stream with none of the tree-walking interpreter's
/// per-node costs (virtual dispatch, name lookups, per-value vector
/// allocations). Registers are ranges of 8-byte slots in a flat register
/// file — a scalar value is one slot, a vector value is Lanes consecutive
/// slots — so instruction operands are plain offsets resolved at compile
/// time. Buffers, extern functions, and assert messages are likewise
/// referenced by pre-resolved table indices, never by name.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_VM_BYTECODE_H
#define HALIDE_VM_BYTECODE_H

#include "ir/Type.h"

#include <cstdint>
#include <string>
#include <vector>

namespace halide {

/// Bytecode operations. Arithmetic/compare ops are typed by suffix: I =
/// signed integer, U = unsigned integer, F = floating point (computed in
/// double, rounded through float when the instruction's Bits is 32,
/// matching the interpreter and compiled C bit for bit). All elementwise
/// ops process Lanes consecutive slots.
enum class VmOp : uint8_t {
  // Moves.
  Mov, ///< dst[l] = a[l] (raw slot copy)

  // Integer arithmetic; results wrap to (Bits, signedness).
  AddI, SubI, MulI,
  DivI, ModI, MinI, MaxI, ///< signed: floor division / floor remainder
  DivU, ModU, MinU, MaxU, ///< unsigned; x/0 and x%0 are 0

  // Float arithmetic (Mod is the floor-remainder the interpreter computes).
  AddF, SubF, MulF, DivF, ModF, MinF, MaxF,

  // Comparisons: dst[l] = a[l] op b[l] as 0/1.
  EqI, NeI, LtI, LeI, ///< signed integer (Eq/Ne shared with unsigned)
  LtU, LeU,           ///< unsigned integer
  EqF, NeF, LtF, LeF, ///< floating point

  // Boolean logic on 0/1 integer values.
  AndB, OrB, NotB,

  /// dst[l] = c[l] ? a[l] : b[l]; the slot kind (int/float) is opaque.
  Select,

  // Conversions. Src lanes == dst lanes.
  CastIntWrap, ///< dst[l] = wrap(a[l]) to (Bits, signedness)
  CastIntToF,  ///< dst[l] = double(int64 a[l]), rounded if Bits == 32
  CastUIntToF, ///< dst[l] = double(uint64 a[l]), rounded if Bits == 32
  CastFToInt,  ///< dst[l] = wrap(int64(a[l])) — C truncation semantics
  CastFToF,    ///< dst[l] = a[l], rounded through float if Bits == 32

  /// dst[l] = wrap(a[0] + l * b[0]) for l in [0, Lanes).
  Ramp,
  /// dst[l] = a[0] (slot copy, kind-agnostic).
  BroadcastSlot,

  // Memory. Aux is the buffer-table index; the element kind comes from
  // the buffer descriptor, not the instruction.
  Load,  ///< dst[l] = buffer[a[l]] (a = index register, int64 elements)
  Store, ///< buffer[b[l]] = a[l]   (a = value register, b = index register)

  // Dense (unit-stride ramp) vector memory. The index is a single scalar
  // base register instead of a lane-wide index vector, so the whole lane
  // group moves with one range-checked contiguous copy per dispatch —
  // this is what makes vectorize() pay off on the VM.
  LoadDense,  ///< dst[l] = buffer[a[0] + l]
  StoreDense, ///< buffer[b[0] + l] = a[l] (a = value register, b = base)

  // Allocation. Aux is the buffer-table index.
  Alloc, ///< allocate a[0] (int64) elements for buffer slot Aux
  FreeOp, ///< free buffer slot Aux

  // Control flow. Jump targets are absolute instruction indices in Aux.
  Jump,        ///< pc = Aux
  JumpIfFalse, ///< if (!a[0]) pc = Aux
  /// Fused loop back-edge: ++a[0]; if (a[0] < b[0]) pc = Aux. Counter
  /// arithmetic is 64-bit so the bound check cannot wrap.
  LoopNext,

  /// Dispatch the parallel task Tasks[Dst] over iterations
  /// [a[0], a[0]+b[0]): each iteration runs the task's body region in an
  /// execution context seeded from the task's captured registers, with
  /// the task's counter register set to the iteration index. Iterations
  /// may run concurrently on the task scheduler (or inline, serially, for
  /// single-threaded targets). Execution resumes at Aux afterwards.
  ParFor,
  /// End of a parallel task's body region: return to the dispatcher.
  TaskRet,

  /// if (!a[0]) abort with message Messages[Aux] (failed pipeline assert).
  AssertCond,

  /// dst[l] = extern fn Aux (a[l] [, b[l]]); see VmExtern.
  CallExtern,

  /// Stats.ParallelIterations += a[0] (entering a parallel/GPU loop).
  CountParallel,

  // Profiler stage markers (present only in Target::Profile programs;
  // see transforms/InjectProfiling.h). Aux indexes VmProgram::StageNames;
  // the executable pre-resolves each name to a process-wide stage id so
  // dispatch is a table lookup plus profilerEnter/profilerExit.
  ProfEnter, ///< enter stage StageNames[Aux]
  ProfExit,  ///< exit stage StageNames[Aux]

  // Value-trace events (present only in Target::Trace programs; see
  // transforms/InjectTracing.h and observe/TraceStream.h). Aux is the
  // buffer-table index — the buffer name *is* the trace stage, and the
  // executable pre-resolves each traced buffer's process-wide stage id.
  // TraceLoad/TraceStore follow the matching memory op: A is its index
  // register (the scalar base register when SignedWrap is 1, i.e. the
  // dense form), B is the value register, Lanes the lane count.
  TraceLoad,  ///< event: loaded b[0..Lanes) from buffer Aux at A's indices
  TraceStore, ///< event: stored b[0..Lanes) to buffer Aux at A's indices
  /// Realization begin event: Lanes extents in consecutive scalar
  /// registers starting at A.
  TraceBegin,
  TraceEnd, ///< realization end event for buffer Aux

  Halt, ///< end of program
};

const char *vmOpName(VmOp Op);

/// Pure extern math functions callable from bytecode (CallExtern's Aux).
enum class VmExtern : uint8_t {
  Sqrt, Sin, Cos, Exp, Log, Floor, Ceil, Round, Pow,
};

const char *vmExternName(VmExtern Fn);

/// One instruction. Dst/A/B/C are register-file slot offsets; Lanes is the
/// elementwise width; Bits + SignedWrap describe the element type where an
/// op needs to wrap or round; Aux is the op-specific table index or jump
/// target.
struct VmInstr {
  VmOp Op = VmOp::Halt;
  uint8_t Bits = 32;       ///< element bit width (wrapping / f32 rounding)
  uint8_t SignedWrap = 0;  ///< wrap as signed (Int) rather than unsigned
  uint16_t Lanes = 1;
  uint32_t Dst = 0, A = 0, B = 0, C = 0;
  int32_t Aux = 0;
};

/// A register-file slot: one scalar lane, integer or floating.
union VmSlot {
  int64_t I;
  double F;
};

/// A buffer referenced by the program: a pipeline boundary buffer (bound
/// from the ParamBindings each run) or an internal allocation site.
struct VmBufferDesc {
  std::string Name;
  Type ElemType;          ///< scalar element type
  bool IsBoundary = false;
  bool IsOutput = false;
};

/// A parallel task: the body of one parallel For loop, extracted into an
/// entry point a worker thread can execute in its own context. The
/// closure is explicit — LiveIn lists exactly the register ranges the
/// body region reads before writing (captured let values and loop
/// bounds, constants, param registers); a worker context copies those
/// slots from the spawning context, sets CounterReg to the iteration
/// index, and executes from BodyStart until TaskRet. Everything else in
/// the worker's register file is scratch the body writes before reading.
/// Buffer-table state is inherited by value the same way: boundary and
/// already-allocated buffers alias the spawner's storage, while Allocs
/// inside the body stay private to the worker's context.
struct VmTaskDesc {
  uint32_t BodyStart = 0;  ///< first instruction of the body region
  uint32_t BodyEnd = 0;    ///< the body's TaskRet (region is [start, end])
  uint32_t CounterReg = 0; ///< receives the iteration index
  /// Captured registers as merged, sorted (slot, length) ranges.
  std::vector<std::pair<uint32_t, uint32_t>> LiveIn;
};

/// A register initialized from the caller's scalar parameters before each
/// run (user scalars and "<buf>.min.<d>"-style buffer metadata).
struct VmParamInit {
  std::string Name;
  uint32_t Slot = 0;
  bool IsFloat = false;
  /// Integer params are wrapped to this width/signedness on binding (the
  /// interpreter does the same when materializing a parameter Value).
  uint8_t Bits = 32;
  bool SignedWrap = true;
};

/// A compiled program: the instruction stream plus every pre-resolved
/// table the dispatch loop needs.
struct VmProgram {
  std::vector<VmInstr> Code;
  /// Register-file template: constants pre-materialized, the rest zero.
  /// run() copies this once per execution.
  std::vector<VmSlot> InitialRegs;
  std::vector<VmBufferDesc> Buffers;
  std::vector<VmParamInit> Params;
  /// AssertCond message pool.
  std::vector<std::string> Messages;
  /// Parallel task entry points (ParFor's Dst indexes this).
  std::vector<VmTaskDesc> Tasks;
  /// Stage-name pool for ProfEnter/ProfExit (Aux indexes this). Empty in
  /// uninstrumented programs.
  std::vector<std::string> StageNames;

  /// Human-readable listing of the whole program (tests, debugging).
  std::string disassemble() const;
};

} // namespace halide

#endif // HALIDE_VM_BYTECODE_H
