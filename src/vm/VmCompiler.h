//===-- vm/VmCompiler.h - Lowered IR -> bytecode compiler ------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a lowered pipeline statement into a VmProgram in one walk over
/// the IR. Every name is resolved at compile time: let and loop variables
/// become registers, scalar parameters and buffer metadata
/// ("<buf>.stride.<d>" and friends) become registers initialized once per
/// run, buffers become table indices, and structured control flow (for,
/// if) becomes jumps with pre-patched targets. The generated code computes
/// bit-identical results to the tree-walking interpreter: the same integer
/// wrapping, floor division, float-through-double rounding, and extern
/// call precision paths.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_VM_VMCOMPILER_H
#define HALIDE_VM_VMCOMPILER_H

#include "transforms/Lower.h"
#include "vm/Bytecode.h"

namespace halide {

/// Compiles \p P (post-lowering: flattened, vectorized loops already
/// turned into ramps, unrolled loops expanded) into a bytecode program.
/// Aborts via internal_error on IR the VM cannot execute (unflattened
/// Provide/Realize, unlowered vectorized/unrolled loops).
VmProgram compileToBytecode(const LoweredPipeline &P);

} // namespace halide

#endif // HALIDE_VM_VMCOMPILER_H
