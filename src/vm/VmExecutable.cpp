//===-- vm/VmExecutable.cpp - The bytecode dispatch loop ------------------===//

#include "vm/VmExecutable.h"

#include "observe/Profiler.h"
#include "observe/TraceStream.h"
#include "runtime/TaskScheduler.h"
#include "vm/VmCompiler.h"

#include <algorithm>
#include <cmath>
#include <memory>

using namespace halide;

namespace {

/// Local copy of IROperators' wrapToType, reduced to the two fields the
/// bytecode carries, so the hot loop can inline it.
inline int64_t wrapBits(int64_t Value, int Bits, bool Signed) {
  if (Bits >= 64)
    return Value;
  uint64_t Mask = (uint64_t(1) << Bits) - 1;
  uint64_t U = uint64_t(Value) & Mask;
  if (Signed && (U >> (Bits - 1)))
    return int64_t(U) - (int64_t(1) << Bits);
  return int64_t(U);
}

inline int64_t vmFloorDiv(int64_t A, int64_t B) {
  if (B == 0)
    return 0;
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

inline int64_t vmFloorMod(int64_t A, int64_t B) {
  if (B == 0)
    return 0;
  return A - vmFloorDiv(A, B) * B;
}

/// Float arithmetic computes in double and, for 32-bit elements, rounds
/// every result through single precision — the same path as the
/// interpreter and the compiled C, so results are bit-identical.
inline double roundF(double V, int Bits) {
  return Bits == 32 ? double(float(V)) : V;
}

/// How the dispatch loop reads/writes a buffer element.
enum class ElemKind : uint8_t { I8, U8, I16, U16, I32, U32, I64, F32, F64 };

ElemKind elemKindOf(Type T) {
  if (T.isFloat())
    return T.Bits == 32 ? ElemKind::F32 : ElemKind::F64;
  switch (T.Bits) {
  case 1:
  case 8:
    return T.isUInt() ? ElemKind::U8 : ElemKind::I8;
  case 16:
    return T.isUInt() ? ElemKind::U16 : ElemKind::I16;
  case 32:
    return T.isUInt() ? ElemKind::U32 : ElemKind::I32;
  case 64:
    return ElemKind::I64; // signed and unsigned share the bit pattern
  default:
    internal_error << "vm: unsupported element width " << T.Bits;
    return ElemKind::I64;
  }
}

/// A buffer slot at run time: boundary buffers alias caller storage,
/// internal allocations own theirs for the extent of their scope.
struct RtBuf {
  void *Data = nullptr;
  int64_t SizeElems = 0; ///< 0 = unknown (skip the bounds check)
  int64_t Bytes = 0;     ///< owned allocations only
};

/// One execution context's share of the run statistics. Every context —
/// the root, and one per task chunk — counts only the work it executed
/// itself; shards merge bottom-up in chunk order, which makes the merged
/// totals independent of how iterations interleaved across workers:
/// loads/stores/span are sums, and the peak-allocation recurrence
/// Peak = max(Peak, CurrentAtSpawn + ChildPeak) reproduces exactly the
/// serial execution's high-water mark because every chunk allocates and
/// frees only scopes nested inside its own iterations (a chunk's net
/// allocation is zero by construction).
struct StatsShard {
  std::vector<int64_t> Loads, Stores; ///< indexed by buffer-table slot
  int64_t CurAlloc = 0, PeakAlloc = 0;
  int64_t ParallelIters = 0;

  void init(size_t NumBufs) {
    Loads.assign(NumBufs, 0);
    Stores.assign(NumBufs, 0);
    CurAlloc = PeakAlloc = ParallelIters = 0;
  }
  void noteAlloc(int64_t Bytes) {
    CurAlloc += Bytes;
    if (CurAlloc > PeakAlloc)
      PeakAlloc = CurAlloc;
  }
  void noteFree(int64_t Bytes) { CurAlloc -= Bytes; }
  void merge(const StatsShard &Child) {
    for (size_t I = 0; I < Loads.size(); ++I) {
      Loads[I] += Child.Loads[I];
      Stores[I] += Child.Stores[I];
    }
    PeakAlloc = std::max(PeakAlloc, CurAlloc + Child.PeakAlloc);
    CurAlloc += Child.CurAlloc;
    ParallelIters += Child.ParallelIters;
  }
};

/// Everything one thread needs to execute a region of the program: a
/// register file, the buffer table (inherited by value at task spawn, so
/// allocations inside a task body stay private to it), and a stats shard.
struct VmContext {
  std::vector<VmSlot> Regs;
  std::vector<RtBuf> Bufs;
  StatsShard Shard;
};

/// Per-worker context freelist: task chunks (and whole frames) on the
/// same thread reuse the same backing storage instead of reallocating
/// register files per chunk or per frame.
thread_local std::vector<std::unique_ptr<VmContext>> ContextPool;

std::unique_ptr<VmContext> acquireContext() {
  if (!ContextPool.empty()) {
    std::unique_ptr<VmContext> C = std::move(ContextPool.back());
    ContextPool.pop_back();
    return C;
  }
  return std::make_unique<VmContext>();
}

void releaseContext(std::unique_ptr<VmContext> C) {
  if (ContextPool.size() < 8)
    ContextPool.push_back(std::move(C));
}

/// One program execution. Owns nothing; borrows the program and fans task
/// chunks out to the task scheduler.
class Runner {
public:
  Runner(const VmProgram &Prog, const std::vector<uint8_t> &Kinds,
         const std::vector<int> &StageIds,
         const std::vector<int> &TraceStageIds,
         const std::vector<uint8_t> &TraceTypeCodes, int Threads)
      : Prog(Prog), Kinds(Kinds), StageIds(StageIds),
        TraceStageIds(TraceStageIds), TraceTypeCodes(TraceTypeCodes),
        Threads(Threads) {}

  /// Executes from \p StartPC until Halt or TaskRet.
  void exec(VmContext &C, size_t PC) const;

  /// Runs iterations [Begin, End) of \p TD in a fresh worker context
  /// seeded from \p Parent, depositing the chunk's stats in \p Out.
  void runChunk(const VmContext &Parent, const VmTaskDesc &TD,
                int64_t Begin, int64_t End, StatsShard *Out) const;

private:
  void dispatchParallel(VmContext &C, const VmTaskDesc &TD, int64_t Min,
                        int64_t Extent) const;

  const VmProgram &Prog;
  const std::vector<uint8_t> &Kinds; ///< ElemKind per buffer slot
  const std::vector<int> &StageIds;  ///< profiler id per StageNames entry
  const std::vector<int> &TraceStageIds;      ///< trace stage id per buffer
  const std::vector<uint8_t> &TraceTypeCodes; ///< trace type code per buffer
  const int Threads; ///< effective thread request (>= 1)
};

void Runner::exec(VmContext &C, size_t PC) const {
  VmSlot *R = C.Regs.data();
  const VmInstr *Code = Prog.Code.data();

  // Scratch for trace-event records; only the trace cases touch these,
  // and default-constructed vectors cost nothing here.
  std::vector<int32_t> TraceCoords;
  std::vector<uint64_t> TraceBits;

  auto checkBounds = [&](const RtBuf &B, size_t BI, int64_t Idx) {
    internal_assert(Idx >= 0 && (B.SizeElems == 0 || Idx < B.SizeElems))
        << "vm: access to " << Prog.Buffers[BI].Name << " at flat index "
        << Idx << " outside [0, " << B.SizeElems << ")";
  };

  for (;;) {
    const VmInstr &In = Code[PC];
    const int L = In.Lanes;
    switch (In.Op) {
    case VmOp::Mov:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I] = R[In.A + I];
      break;

#define VM_INT_BINOP(OPNAME, EXPRESSION)                                       \
  case VmOp::OPNAME:                                                           \
    for (int I = 0; I < L; ++I) {                                              \
      int64_t X = R[In.A + I].I, Y = R[In.B + I].I;                            \
      (void)X;                                                                 \
      (void)Y;                                                                 \
      R[In.Dst + I].I = (EXPRESSION);                                          \
    }                                                                          \
    break;

    VM_INT_BINOP(AddI, wrapBits(X + Y, In.Bits, In.SignedWrap))
    VM_INT_BINOP(SubI, wrapBits(X - Y, In.Bits, In.SignedWrap))
    VM_INT_BINOP(MulI, wrapBits(X * Y, In.Bits, In.SignedWrap))
    VM_INT_BINOP(DivI, wrapBits(vmFloorDiv(X, Y), In.Bits, true))
    VM_INT_BINOP(ModI, wrapBits(vmFloorMod(X, Y), In.Bits, true))
    VM_INT_BINOP(MinI, X < Y ? X : Y)
    VM_INT_BINOP(MaxI, X > Y ? X : Y)
    VM_INT_BINOP(DivU, Y == 0 ? 0 : int64_t(uint64_t(X) / uint64_t(Y)))
    VM_INT_BINOP(ModU, Y == 0 ? 0 : int64_t(uint64_t(X) % uint64_t(Y)))
    VM_INT_BINOP(MinU, uint64_t(X) < uint64_t(Y) ? X : Y)
    VM_INT_BINOP(MaxU, uint64_t(X) > uint64_t(Y) ? X : Y)
    VM_INT_BINOP(EqI, X == Y ? 1 : 0)
    VM_INT_BINOP(NeI, X != Y ? 1 : 0)
    VM_INT_BINOP(LtI, X < Y ? 1 : 0)
    VM_INT_BINOP(LeI, X <= Y ? 1 : 0)
    VM_INT_BINOP(LtU, uint64_t(X) < uint64_t(Y) ? 1 : 0)
    VM_INT_BINOP(LeU, uint64_t(X) <= uint64_t(Y) ? 1 : 0)
    VM_INT_BINOP(AndB, (X && Y) ? 1 : 0)
    VM_INT_BINOP(OrB, (X || Y) ? 1 : 0)
#undef VM_INT_BINOP

#define VM_FLOAT_BINOP(OPNAME, EXPRESSION)                                     \
  case VmOp::OPNAME:                                                           \
    for (int I = 0; I < L; ++I) {                                              \
      double X = R[In.A + I].F, Y = R[In.B + I].F;                             \
      (void)Y;                                                                 \
      R[In.Dst + I].F = roundF((EXPRESSION), In.Bits);                         \
    }                                                                          \
    break;

    VM_FLOAT_BINOP(AddF, X + Y)
    VM_FLOAT_BINOP(SubF, X - Y)
    VM_FLOAT_BINOP(MulF, X *Y)
    VM_FLOAT_BINOP(DivF, X / Y)
    VM_FLOAT_BINOP(ModF, X - std::floor(X / Y) * Y)
    VM_FLOAT_BINOP(MinF, X < Y ? X : Y)
    VM_FLOAT_BINOP(MaxF, X > Y ? X : Y)
#undef VM_FLOAT_BINOP

#define VM_FLOAT_CMP(OPNAME, EXPRESSION)                                       \
  case VmOp::OPNAME:                                                           \
    for (int I = 0; I < L; ++I) {                                              \
      double X = R[In.A + I].F, Y = R[In.B + I].F;                             \
      R[In.Dst + I].I = (EXPRESSION) ? 1 : 0;                                  \
    }                                                                          \
    break;

    VM_FLOAT_CMP(EqF, X == Y)
    VM_FLOAT_CMP(NeF, X != Y)
    VM_FLOAT_CMP(LtF, X < Y)
    VM_FLOAT_CMP(LeF, X <= Y)
#undef VM_FLOAT_CMP

    case VmOp::NotB:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].I = R[In.A + I].I ? 0 : 1;
      break;

    case VmOp::Select:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I] = R[In.C + I].I ? R[In.A + I] : R[In.B + I];
      break;

    case VmOp::CastIntWrap:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].I = wrapBits(R[In.A + I].I, In.Bits, In.SignedWrap);
      break;
    case VmOp::CastIntToF:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].F = roundF(double(R[In.A + I].I), In.Bits);
      break;
    case VmOp::CastUIntToF:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].F = roundF(double(uint64_t(R[In.A + I].I)), In.Bits);
      break;
    case VmOp::CastFToInt:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].I =
            wrapBits(int64_t(R[In.A + I].F), In.Bits, In.SignedWrap);
      break;
    case VmOp::CastFToF:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].F = roundF(R[In.A + I].F, In.Bits);
      break;

    case VmOp::Ramp: {
      int64_t Base = R[In.A].I, Stride = R[In.B].I;
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].I =
            wrapBits(Base + int64_t(I) * Stride, In.Bits, In.SignedWrap);
      break;
    }
    case VmOp::BroadcastSlot:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I] = R[In.A];
      break;

    case VmOp::Load: {
      RtBuf &B = C.Bufs[size_t(In.Aux)];
      C.Shard.Loads[size_t(In.Aux)] += L;
      const void *Base = B.Data;
      switch (ElemKind(Kinds[size_t(In.Aux)])) {
#define VM_LOAD(KIND, CTYPE, FIELD, CONV)                                      \
  case ElemKind::KIND:                                                         \
    for (int I = 0; I < L; ++I) {                                              \
      int64_t Idx = R[In.A + I].I;                                             \
      checkBounds(B, size_t(In.Aux), Idx);                                     \
      R[In.Dst + I].FIELD = CONV(static_cast<const CTYPE *>(Base)[Idx]);       \
    }                                                                          \
    break;
        VM_LOAD(I8, int8_t, I, int64_t)
        VM_LOAD(U8, uint8_t, I, int64_t)
        VM_LOAD(I16, int16_t, I, int64_t)
        VM_LOAD(U16, uint16_t, I, int64_t)
        VM_LOAD(I32, int32_t, I, int64_t)
        VM_LOAD(U32, uint32_t, I, int64_t)
        VM_LOAD(I64, int64_t, I, int64_t)
        VM_LOAD(F32, float, F, double)
        VM_LOAD(F64, double, F, double)
#undef VM_LOAD
      }
      break;
    }

    case VmOp::LoadDense: {
      // Dense lane-group load: one range check for the whole group, then
      // a tight per-kind copy from buffer[base .. base+L).
      RtBuf &B = C.Bufs[size_t(In.Aux)];
      C.Shard.Loads[size_t(In.Aux)] += L;
      int64_t Base0 = R[In.A].I;
      checkBounds(B, size_t(In.Aux), Base0);
      checkBounds(B, size_t(In.Aux), Base0 + L - 1);
      const void *Base = B.Data;
      switch (ElemKind(Kinds[size_t(In.Aux)])) {
#define VM_LOAD_DENSE(KIND, CTYPE, FIELD, CONV)                                \
  case ElemKind::KIND: {                                                       \
    const CTYPE *P = static_cast<const CTYPE *>(Base) + Base0;                 \
    for (int I = 0; I < L; ++I)                                                \
      R[In.Dst + I].FIELD = CONV(P[I]);                                        \
  } break;
        VM_LOAD_DENSE(I8, int8_t, I, int64_t)
        VM_LOAD_DENSE(U8, uint8_t, I, int64_t)
        VM_LOAD_DENSE(I16, int16_t, I, int64_t)
        VM_LOAD_DENSE(U16, uint16_t, I, int64_t)
        VM_LOAD_DENSE(I32, int32_t, I, int64_t)
        VM_LOAD_DENSE(U32, uint32_t, I, int64_t)
        VM_LOAD_DENSE(I64, int64_t, I, int64_t)
        VM_LOAD_DENSE(F32, float, F, double)
        VM_LOAD_DENSE(F64, double, F, double)
#undef VM_LOAD_DENSE
      }
      break;
    }

    case VmOp::Store: {
      RtBuf &B = C.Bufs[size_t(In.Aux)];
      C.Shard.Stores[size_t(In.Aux)] += L;
      void *Base = B.Data;
      switch (ElemKind(Kinds[size_t(In.Aux)])) {
#define VM_STORE(KIND, CTYPE, FIELD)                                           \
  case ElemKind::KIND:                                                         \
    for (int I = 0; I < L; ++I) {                                              \
      int64_t Idx = R[In.B + I].I;                                             \
      checkBounds(B, size_t(In.Aux), Idx);                                     \
      static_cast<CTYPE *>(Base)[Idx] = CTYPE(R[In.A + I].FIELD);              \
    }                                                                          \
    break;
        VM_STORE(I8, int8_t, I)
        VM_STORE(U8, uint8_t, I)
        VM_STORE(I16, int16_t, I)
        VM_STORE(U16, uint16_t, I)
        VM_STORE(I32, int32_t, I)
        VM_STORE(U32, uint32_t, I)
        VM_STORE(I64, int64_t, I)
        VM_STORE(F32, float, F)
        VM_STORE(F64, double, F)
#undef VM_STORE
      }
      break;
    }

    case VmOp::StoreDense: {
      // Dense lane-group store: mirror of LoadDense.
      RtBuf &B = C.Bufs[size_t(In.Aux)];
      C.Shard.Stores[size_t(In.Aux)] += L;
      int64_t Base0 = R[In.B].I;
      checkBounds(B, size_t(In.Aux), Base0);
      checkBounds(B, size_t(In.Aux), Base0 + L - 1);
      void *Base = B.Data;
      switch (ElemKind(Kinds[size_t(In.Aux)])) {
#define VM_STORE_DENSE(KIND, CTYPE, FIELD)                                     \
  case ElemKind::KIND: {                                                       \
    CTYPE *P = static_cast<CTYPE *>(Base) + Base0;                             \
    for (int I = 0; I < L; ++I)                                                \
      P[I] = CTYPE(R[In.A + I].FIELD);                                         \
  } break;
        VM_STORE_DENSE(I8, int8_t, I)
        VM_STORE_DENSE(U8, uint8_t, I)
        VM_STORE_DENSE(I16, int16_t, I)
        VM_STORE_DENSE(U16, uint16_t, I)
        VM_STORE_DENSE(I32, int32_t, I)
        VM_STORE_DENSE(U32, uint32_t, I)
        VM_STORE_DENSE(I64, int64_t, I)
        VM_STORE_DENSE(F32, float, F)
        VM_STORE_DENSE(F64, double, F)
#undef VM_STORE_DENSE
      }
      break;
    }

    case VmOp::Alloc: {
      RtBuf &B = C.Bufs[size_t(In.Aux)];
      int64_t Elems = R[In.A].I;
      internal_assert(Elems >= 0)
          << "negative allocation size for " << Prog.Buffers[size_t(In.Aux)].Name;
      B.Bytes = Elems * Prog.Buffers[size_t(In.Aux)].ElemType.bytes();
      B.Data = halideMalloc(B.Bytes);
      internal_assert(B.Data)
          << "allocation of " << B.Bytes << " bytes failed for "
          << Prog.Buffers[size_t(In.Aux)].Name;
      B.SizeElems = Elems;
      C.Shard.noteAlloc(B.Bytes);
      break;
    }
    case VmOp::FreeOp: {
      RtBuf &B = C.Bufs[size_t(In.Aux)];
      C.Shard.noteFree(B.Bytes);
      halideFree(B.Data);
      B.Data = nullptr;
      B.Bytes = 0;
      B.SizeElems = 0;
      break;
    }

    case VmOp::Jump:
      PC = size_t(In.Aux);
      continue;
    case VmOp::JumpIfFalse:
      if (!R[In.A].I) {
        PC = size_t(In.Aux);
        continue;
      }
      break;
    case VmOp::LoopNext:
      if (++R[In.A].I < R[In.B].I) {
        PC = size_t(In.Aux);
        continue;
      }
      break;

    case VmOp::ParFor: {
      const VmTaskDesc &TD = Prog.Tasks[size_t(In.Dst)];
      int64_t Min = R[In.A].I, Extent = R[In.B].I;
      if (Extent > 0) {
        if (Threads == 1 || Extent == 1) {
          // Serial fallback runs the body regions inline in this
          // context — the execution order, and therefore every counter,
          // is identical to the pre-threading serial loop.
          for (int64_t I = Min; I < Min + Extent; ++I) {
            R[TD.CounterReg].I = I;
            exec(C, TD.BodyStart);
          }
        } else {
          dispatchParallel(C, TD, Min, Extent);
        }
      }
      PC = size_t(In.Aux);
      continue;
    }
    case VmOp::TaskRet:
      return;

    case VmOp::AssertCond:
      user_assert(R[In.A].I)
          << "pipeline assertion failed: " << Prog.Messages[size_t(In.Aux)];
      break;

    case VmOp::CallExtern: {
      const bool Single = In.Bits == 32;
      for (int I = 0; I < L; ++I) {
        double X = R[In.A + I].F;
        double V = 0;
        switch (VmExtern(In.Aux)) {
        case VmExtern::Sqrt:
          V = Single ? std::sqrt(float(X)) : std::sqrt(X);
          break;
        case VmExtern::Sin:
          V = Single ? std::sin(float(X)) : std::sin(X);
          break;
        case VmExtern::Cos:
          V = Single ? std::cos(float(X)) : std::cos(X);
          break;
        case VmExtern::Exp:
          V = Single ? std::exp(float(X)) : std::exp(X);
          break;
        case VmExtern::Log:
          V = Single ? std::log(float(X)) : std::log(X);
          break;
        case VmExtern::Floor:
          V = std::floor(X);
          break;
        case VmExtern::Ceil:
          V = std::ceil(X);
          break;
        case VmExtern::Round:
          V = std::nearbyint(X);
          break;
        case VmExtern::Pow: {
          double Y = R[In.B + I].F;
          V = Single ? std::pow(float(X), float(Y)) : std::pow(X, Y);
          break;
        }
        }
        R[In.Dst + I].F = roundF(V, In.Bits);
      }
      break;
    }

    case VmOp::CountParallel:
      C.Shard.ParallelIters += R[In.A].I;
      break;

    case VmOp::ProfEnter:
      profilerEnter(StageIds[size_t(In.Aux)]);
      break;
    case VmOp::ProfExit:
      profilerExit(StageIds[size_t(In.Aux)]);
      break;

    case VmOp::TraceLoad:
    case VmOp::TraceStore: {
      if (!traceStreamActive())
        break; // one relaxed atomic load when no stream is open
      const size_t BI = size_t(In.Aux);
      const bool Dense = In.SignedWrap != 0;
      const int64_t Base0 = R[In.A].I;
      const ElemKind K = ElemKind(Kinds[BI]);
      const bool IsFloat = K == ElemKind::F32 || K == ElemKind::F64;
      TraceCoords.resize(size_t(L));
      TraceBits.resize(size_t(L));
      for (int I = 0; I < L; ++I) {
        TraceCoords[size_t(I)] = int32_t(Dense ? Base0 + I : R[In.A + I].I);
        TraceBits[size_t(I)] = IsFloat ? traceBitsOfDouble(R[In.B + I].F)
                                       : traceBitsOfInt(R[In.B + I].I);
      }
      traceStreamEmit(TraceStageIds[BI],
                      In.Op == VmOp::TraceLoad ? TraceEventKind::TraceLoad
                                               : TraceEventKind::TraceStore,
                      TraceTypeCodes[BI], L, TraceCoords.data(), L,
                      TraceBits.data());
      break;
    }
    case VmOp::TraceBegin: {
      if (!traceStreamActive())
        break;
      TraceCoords.resize(size_t(L));
      for (int I = 0; I < L; ++I)
        TraceCoords[size_t(I)] = int32_t(R[In.A + I].I);
      traceStreamEmit(TraceStageIds[size_t(In.Aux)],
                      TraceEventKind::TraceBegin, 0, 0, TraceCoords.data(), L,
                      nullptr);
      break;
    }
    case VmOp::TraceEnd:
      if (traceStreamActive())
        traceStreamEmit(TraceStageIds[size_t(In.Aux)],
                        TraceEventKind::TraceEnd, 0, 0, nullptr, 0, nullptr);
      break;

    case VmOp::Halt:
      return;
    }
    ++PC;
  }
}

/// The scheduler-facing closure for one parallel loop dispatch.
struct ParClosure {
  const Runner *TheRunner;
  const VmContext *Parent;
  const VmTaskDesc *Task;
  std::vector<StatsShard> *Shards;
};

void vmRunParChunk(int64_t Begin, int64_t End, int Chunk, void *Closure);

void Runner::dispatchParallel(VmContext &C, const VmTaskDesc &TD,
                              int64_t Min, int64_t Extent) const {
  // Mirror the scheduler's chunk count so the shard array can be sized
  // (and merged) deterministically up front.
  const int MaxTasks = Threads * 4;
  const int NumChunks = int(Extent < MaxTasks ? Extent : MaxTasks);
  std::vector<StatsShard> Shards(static_cast<size_t>(NumChunks));
  ParClosure PC{this, &C, &TD, &Shards};
  int Dispatched =
      parallelForChunks(Min, Extent, MaxTasks, vmRunParChunk, &PC);
  internal_assert(Dispatched == NumChunks)
      << "vm: scheduler chunk count diverged from the dispatcher's";
  // Chunk-order merge: the totals come out identical to the serial
  // execution no matter which workers ran which chunks when.
  for (const StatsShard &S : Shards)
    C.Shard.merge(S);
}

void Runner::runChunk(const VmContext &Parent, const VmTaskDesc &TD,
                      int64_t Begin, int64_t End, StatsShard *Out) const {
  // A worker context: zeroed registers with the task's live-in ranges
  // copied from the spawning context, the spawner's buffer table by
  // value, and a fresh stats shard. Contexts are pooled per worker
  // thread so consecutive chunks reuse their storage.
  std::unique_ptr<VmContext> Ctx;
  if (!ContextPool.empty()) {
    Ctx = std::move(ContextPool.back());
    ContextPool.pop_back();
  } else {
    Ctx = std::make_unique<VmContext>();
  }
  Ctx->Regs.assign(Prog.InitialRegs.size(), VmSlot{0});
  for (const auto &[Slot, Len] : TD.LiveIn)
    std::copy(Parent.Regs.begin() + Slot, Parent.Regs.begin() + Slot + Len,
              Ctx->Regs.begin() + Slot);
  Ctx->Bufs = Parent.Bufs;
  Ctx->Shard.init(Prog.Buffers.size());

  for (int64_t I = Begin; I < End; ++I) {
    Ctx->Regs[TD.CounterReg].I = I;
    exec(*Ctx, TD.BodyStart);
  }

  *Out = std::move(Ctx->Shard);
  if (ContextPool.size() < 8)
    ContextPool.push_back(std::move(Ctx));
}

void vmRunParChunk(int64_t Begin, int64_t End, int Chunk, void *Closure) {
  const ParClosure *PC = static_cast<const ParClosure *>(Closure);
  PC->TheRunner->runChunk(*PC->Parent, *PC->Task, Begin, End,
                          &(*PC->Shards)[size_t(Chunk)]);
}

} // namespace

VmExecutable::VmExecutable(LoweredPipeline LP, Target T)
    : Executable(std::move(LP), std::move(T)) {
  Prog = compileToBytecode(P);
  BufKinds.reserve(Prog.Buffers.size());
  for (const VmBufferDesc &Desc : Prog.Buffers)
    BufKinds.push_back(uint8_t(elemKindOf(Desc.ElemType)));
  StageIds.reserve(Prog.StageNames.size());
  for (const std::string &Name : Prog.StageNames)
    StageIds.push_back(profilerStageId(Name));
  for (const VmInstr &In : Prog.Code) {
    if (In.Op != VmOp::TraceLoad && In.Op != VmOp::TraceStore &&
        In.Op != VmOp::TraceBegin && In.Op != VmOp::TraceEnd)
      continue;
    for (const VmBufferDesc &Desc : Prog.Buffers) {
      TraceStageIds.push_back(profilerStageId(Desc.Name));
      TraceTypeCodes.push_back(traceTypeCode(Desc.ElemType));
    }
    break;
  }
}

std::shared_ptr<const VmExecutable> halide::vmCompile(
    const LoweredPipeline &P, const Target &T) {
  return std::make_shared<VmExecutable>(P, T);
}

int VmExecutable::run(const ParamBindings &Params,
                      ExecutionStats *Stats) const {
  // Root context: the register file starts from the compiled template
  // (constants pre-materialized), buffers and scalar params are resolved
  // from the bindings once, up front. Contexts come from the per-thread
  // pool, so a steady-state frame loop reuses the same register file and
  // buffer table instead of reallocating them every frame.
  std::unique_ptr<VmContext> RootPtr = acquireContext();
  VmContext &Root = *RootPtr;
  Root.Regs = Prog.InitialRegs;

  const size_t NumBufs = Prog.Buffers.size();
  Root.Bufs.assign(NumBufs, RtBuf{});
  for (size_t BI = 0; BI < NumBufs; ++BI) {
    const VmBufferDesc &Desc = Prog.Buffers[BI];
    if (!Desc.IsBoundary)
      continue;
    const RawBuffer &Raw = Params.buffer(Desc.Name);
    user_assert(Raw.defined()) << "buffer " << Desc.Name << " is undefined";
    user_assert(Raw.ElemType == Desc.ElemType)
        << "buffer " << Desc.Name << " has element type "
        << Raw.ElemType.str() << ", pipeline expects "
        << Desc.ElemType.str();
    user_assert(Raw.Dim[0].Stride == 1)
        << "buffer " << Desc.Name
        << " must be dense in dimension 0 (stride 1)";
    RtBuf &B = Root.Bufs[BI];
    B.Data = Raw.Host;
    int64_t MaxIndex = 0;
    for (int D = 0; D < Raw.Dimensions; ++D)
      MaxIndex += int64_t(Raw.Dim[D].Extent - 1) * Raw.Dim[D].Stride;
    B.SizeElems = MaxIndex + 1;
  }

  for (const VmParamInit &PI : Prog.Params) {
    double Scalar;
    internal_assert(Params.lookupScalar(PI.Name, &Scalar))
        << "vm: unbound parameter " << PI.Name;
    if (PI.IsFloat)
      Root.Regs[PI.Slot].F = Scalar;
    else
      Root.Regs[PI.Slot].I = wrapBits(int64_t(Scalar), PI.Bits, PI.SignedWrap);
  }

  Root.Shard.init(NumBufs);

  const int Threads =
      T.NumThreads > 0 ? T.NumThreads : taskSchedulerThreads();
  Runner R(Prog, BufKinds, StageIds, TraceStageIds, TraceTypeCodes,
           Threads < 1 ? 1 : Threads);
  R.exec(Root, 0);

  if (Stats) {
    ExecutionStats S;
    S.ParallelIterations = Root.Shard.ParallelIters;
    S.PeakAllocationBytes = Root.Shard.PeakAlloc;
    S.CurrentAllocationBytes = Root.Shard.CurAlloc;
    for (size_t BI = 0; BI < NumBufs; ++BI) {
      if (Root.Shard.Loads[BI])
        S.LoadsPerBuffer[Prog.Buffers[BI].Name] += Root.Shard.Loads[BI];
      if (Root.Shard.Stores[BI])
        S.StoresPerBuffer[Prog.Buffers[BI].Name] += Root.Shard.Stores[BI];
    }
    *Stats = std::move(S);
  }
  releaseContext(std::move(RootPtr));
  return 0;
}
