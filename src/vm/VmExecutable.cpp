//===-- vm/VmExecutable.cpp - The bytecode dispatch loop ------------------===//

#include "vm/VmExecutable.h"

#include "vm/VmCompiler.h"

#include <cmath>

using namespace halide;

namespace {

/// Local copy of IROperators' wrapToType, reduced to the two fields the
/// bytecode carries, so the hot loop can inline it.
inline int64_t wrapBits(int64_t Value, int Bits, bool Signed) {
  if (Bits >= 64)
    return Value;
  uint64_t Mask = (uint64_t(1) << Bits) - 1;
  uint64_t U = uint64_t(Value) & Mask;
  if (Signed && (U >> (Bits - 1)))
    return int64_t(U) - (int64_t(1) << Bits);
  return int64_t(U);
}

inline int64_t vmFloorDiv(int64_t A, int64_t B) {
  if (B == 0)
    return 0;
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

inline int64_t vmFloorMod(int64_t A, int64_t B) {
  if (B == 0)
    return 0;
  return A - vmFloorDiv(A, B) * B;
}

/// Float arithmetic computes in double and, for 32-bit elements, rounds
/// every result through single precision — the same path as the
/// interpreter and the compiled C, so results are bit-identical.
inline double roundF(double V, int Bits) {
  return Bits == 32 ? double(float(V)) : V;
}

/// How the dispatch loop reads/writes a buffer element.
enum class ElemKind : uint8_t { I8, U8, I16, U16, I32, U32, I64, F32, F64 };

ElemKind elemKindOf(Type T) {
  if (T.isFloat())
    return T.Bits == 32 ? ElemKind::F32 : ElemKind::F64;
  switch (T.Bits) {
  case 1:
  case 8:
    return T.isUInt() ? ElemKind::U8 : ElemKind::I8;
  case 16:
    return T.isUInt() ? ElemKind::U16 : ElemKind::I16;
  case 32:
    return T.isUInt() ? ElemKind::U32 : ElemKind::I32;
  case 64:
    return ElemKind::I64; // signed and unsigned share the bit pattern
  default:
    internal_error << "vm: unsupported element width " << T.Bits;
    return ElemKind::I64;
  }
}

/// A buffer slot at run time: boundary buffers alias caller storage,
/// internal allocations own theirs for the extent of their scope.
struct RtBuf {
  void *Data = nullptr;
  int64_t SizeElems = 0; ///< 0 = unknown (skip the bounds check)
  int64_t Bytes = 0;     ///< owned allocations only
  int64_t Loads = 0, Stores = 0;
};

} // namespace

VmExecutable::VmExecutable(LoweredPipeline LP, Target T)
    : Executable(std::move(LP), std::move(T)) {
  Prog = compileToBytecode(P);
}

std::shared_ptr<const VmExecutable> halide::vmCompile(
    const LoweredPipeline &P, const Target &T) {
  return std::make_shared<VmExecutable>(P, T);
}

int VmExecutable::run(const ParamBindings &Params,
                      ExecutionStats *Stats) const {
  // Per-run state: the register file starts from the compiled template
  // (constants pre-materialized), buffers and scalar params are resolved
  // from the bindings once, up front.
  std::vector<VmSlot> Regs = Prog.InitialRegs;
  VmSlot *R = Regs.data();

  const size_t NumBufs = Prog.Buffers.size();
  std::vector<RtBuf> Bufs(NumBufs);
  std::vector<ElemKind> Kinds(NumBufs);
  for (size_t BI = 0; BI < NumBufs; ++BI) {
    const VmBufferDesc &Desc = Prog.Buffers[BI];
    Kinds[BI] = elemKindOf(Desc.ElemType);
    if (!Desc.IsBoundary)
      continue;
    const RawBuffer &Raw = Params.buffer(Desc.Name);
    user_assert(Raw.defined()) << "buffer " << Desc.Name << " is undefined";
    user_assert(Raw.ElemType == Desc.ElemType)
        << "buffer " << Desc.Name << " has element type "
        << Raw.ElemType.str() << ", pipeline expects "
        << Desc.ElemType.str();
    user_assert(Raw.Dim[0].Stride == 1)
        << "buffer " << Desc.Name
        << " must be dense in dimension 0 (stride 1)";
    RtBuf &B = Bufs[BI];
    B.Data = Raw.Host;
    int64_t MaxIndex = 0;
    for (int D = 0; D < Raw.Dimensions; ++D)
      MaxIndex += int64_t(Raw.Dim[D].Extent - 1) * Raw.Dim[D].Stride;
    B.SizeElems = MaxIndex + 1;
  }

  for (const VmParamInit &PI : Prog.Params) {
    double Scalar;
    internal_assert(Params.lookupScalar(PI.Name, &Scalar))
        << "vm: unbound parameter " << PI.Name;
    if (PI.IsFloat)
      R[PI.Slot].F = Scalar;
    else
      R[PI.Slot].I = wrapBits(int64_t(Scalar), PI.Bits, PI.SignedWrap);
  }

  ExecutionStats S;
  int64_t ParallelIters = 0;

  auto checkBounds = [&](const RtBuf &B, size_t BI, int64_t Idx) {
    internal_assert(Idx >= 0 && (B.SizeElems == 0 || Idx < B.SizeElems))
        << "vm: access to " << Prog.Buffers[BI].Name << " at flat index "
        << Idx << " outside [0, " << B.SizeElems << ")";
  };

  const VmInstr *Code = Prog.Code.data();
  size_t PC = 0;
  for (;;) {
    const VmInstr &In = Code[PC];
    const int L = In.Lanes;
    switch (In.Op) {
    case VmOp::Mov:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I] = R[In.A + I];
      break;

#define VM_INT_BINOP(OPNAME, EXPRESSION)                                       \
  case VmOp::OPNAME:                                                           \
    for (int I = 0; I < L; ++I) {                                              \
      int64_t X = R[In.A + I].I, Y = R[In.B + I].I;                            \
      (void)X;                                                                 \
      (void)Y;                                                                 \
      R[In.Dst + I].I = (EXPRESSION);                                          \
    }                                                                          \
    break;

    VM_INT_BINOP(AddI, wrapBits(X + Y, In.Bits, In.SignedWrap))
    VM_INT_BINOP(SubI, wrapBits(X - Y, In.Bits, In.SignedWrap))
    VM_INT_BINOP(MulI, wrapBits(X * Y, In.Bits, In.SignedWrap))
    VM_INT_BINOP(DivI, wrapBits(vmFloorDiv(X, Y), In.Bits, true))
    VM_INT_BINOP(ModI, wrapBits(vmFloorMod(X, Y), In.Bits, true))
    VM_INT_BINOP(MinI, X < Y ? X : Y)
    VM_INT_BINOP(MaxI, X > Y ? X : Y)
    VM_INT_BINOP(DivU, Y == 0 ? 0 : int64_t(uint64_t(X) / uint64_t(Y)))
    VM_INT_BINOP(ModU, Y == 0 ? 0 : int64_t(uint64_t(X) % uint64_t(Y)))
    VM_INT_BINOP(MinU, uint64_t(X) < uint64_t(Y) ? X : Y)
    VM_INT_BINOP(MaxU, uint64_t(X) > uint64_t(Y) ? X : Y)
    VM_INT_BINOP(EqI, X == Y ? 1 : 0)
    VM_INT_BINOP(NeI, X != Y ? 1 : 0)
    VM_INT_BINOP(LtI, X < Y ? 1 : 0)
    VM_INT_BINOP(LeI, X <= Y ? 1 : 0)
    VM_INT_BINOP(LtU, uint64_t(X) < uint64_t(Y) ? 1 : 0)
    VM_INT_BINOP(LeU, uint64_t(X) <= uint64_t(Y) ? 1 : 0)
    VM_INT_BINOP(AndB, (X && Y) ? 1 : 0)
    VM_INT_BINOP(OrB, (X || Y) ? 1 : 0)
#undef VM_INT_BINOP

#define VM_FLOAT_BINOP(OPNAME, EXPRESSION)                                     \
  case VmOp::OPNAME:                                                           \
    for (int I = 0; I < L; ++I) {                                              \
      double X = R[In.A + I].F, Y = R[In.B + I].F;                             \
      (void)Y;                                                                 \
      R[In.Dst + I].F = roundF((EXPRESSION), In.Bits);                         \
    }                                                                          \
    break;

    VM_FLOAT_BINOP(AddF, X + Y)
    VM_FLOAT_BINOP(SubF, X - Y)
    VM_FLOAT_BINOP(MulF, X *Y)
    VM_FLOAT_BINOP(DivF, X / Y)
    VM_FLOAT_BINOP(ModF, X - std::floor(X / Y) * Y)
    VM_FLOAT_BINOP(MinF, X < Y ? X : Y)
    VM_FLOAT_BINOP(MaxF, X > Y ? X : Y)
#undef VM_FLOAT_BINOP

#define VM_FLOAT_CMP(OPNAME, EXPRESSION)                                       \
  case VmOp::OPNAME:                                                           \
    for (int I = 0; I < L; ++I) {                                              \
      double X = R[In.A + I].F, Y = R[In.B + I].F;                             \
      R[In.Dst + I].I = (EXPRESSION) ? 1 : 0;                                  \
    }                                                                          \
    break;

    VM_FLOAT_CMP(EqF, X == Y)
    VM_FLOAT_CMP(NeF, X != Y)
    VM_FLOAT_CMP(LtF, X < Y)
    VM_FLOAT_CMP(LeF, X <= Y)
#undef VM_FLOAT_CMP

    case VmOp::NotB:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].I = R[In.A + I].I ? 0 : 1;
      break;

    case VmOp::Select:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I] = R[In.C + I].I ? R[In.A + I] : R[In.B + I];
      break;

    case VmOp::CastIntWrap:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].I = wrapBits(R[In.A + I].I, In.Bits, In.SignedWrap);
      break;
    case VmOp::CastIntToF:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].F = roundF(double(R[In.A + I].I), In.Bits);
      break;
    case VmOp::CastUIntToF:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].F = roundF(double(uint64_t(R[In.A + I].I)), In.Bits);
      break;
    case VmOp::CastFToInt:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].I =
            wrapBits(int64_t(R[In.A + I].F), In.Bits, In.SignedWrap);
      break;
    case VmOp::CastFToF:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].F = roundF(R[In.A + I].F, In.Bits);
      break;

    case VmOp::Ramp: {
      int64_t Base = R[In.A].I, Stride = R[In.B].I;
      for (int I = 0; I < L; ++I)
        R[In.Dst + I].I =
            wrapBits(Base + int64_t(I) * Stride, In.Bits, In.SignedWrap);
      break;
    }
    case VmOp::BroadcastSlot:
      for (int I = 0; I < L; ++I)
        R[In.Dst + I] = R[In.A];
      break;

    case VmOp::Load: {
      RtBuf &B = Bufs[size_t(In.Aux)];
      B.Loads += L;
      const void *Base = B.Data;
      switch (Kinds[size_t(In.Aux)]) {
#define VM_LOAD(KIND, CTYPE, FIELD, CONV)                                      \
  case ElemKind::KIND:                                                         \
    for (int I = 0; I < L; ++I) {                                              \
      int64_t Idx = R[In.A + I].I;                                             \
      checkBounds(B, size_t(In.Aux), Idx);                                     \
      R[In.Dst + I].FIELD = CONV(static_cast<const CTYPE *>(Base)[Idx]);       \
    }                                                                          \
    break;
        VM_LOAD(I8, int8_t, I, int64_t)
        VM_LOAD(U8, uint8_t, I, int64_t)
        VM_LOAD(I16, int16_t, I, int64_t)
        VM_LOAD(U16, uint16_t, I, int64_t)
        VM_LOAD(I32, int32_t, I, int64_t)
        VM_LOAD(U32, uint32_t, I, int64_t)
        VM_LOAD(I64, int64_t, I, int64_t)
        VM_LOAD(F32, float, F, double)
        VM_LOAD(F64, double, F, double)
#undef VM_LOAD
      }
      break;
    }

    case VmOp::Store: {
      RtBuf &B = Bufs[size_t(In.Aux)];
      B.Stores += L;
      void *Base = B.Data;
      switch (Kinds[size_t(In.Aux)]) {
#define VM_STORE(KIND, CTYPE, FIELD)                                           \
  case ElemKind::KIND:                                                         \
    for (int I = 0; I < L; ++I) {                                              \
      int64_t Idx = R[In.B + I].I;                                             \
      checkBounds(B, size_t(In.Aux), Idx);                                     \
      static_cast<CTYPE *>(Base)[Idx] = CTYPE(R[In.A + I].FIELD);              \
    }                                                                          \
    break;
        VM_STORE(I8, int8_t, I)
        VM_STORE(U8, uint8_t, I)
        VM_STORE(I16, int16_t, I)
        VM_STORE(U16, uint16_t, I)
        VM_STORE(I32, int32_t, I)
        VM_STORE(U32, uint32_t, I)
        VM_STORE(I64, int64_t, I)
        VM_STORE(F32, float, F)
        VM_STORE(F64, double, F)
#undef VM_STORE
      }
      break;
    }

    case VmOp::Alloc: {
      RtBuf &B = Bufs[size_t(In.Aux)];
      int64_t Elems = R[In.A].I;
      internal_assert(Elems >= 0)
          << "negative allocation size for " << Prog.Buffers[size_t(In.Aux)].Name;
      B.Bytes = Elems * Prog.Buffers[size_t(In.Aux)].ElemType.bytes();
      B.Data = halideMalloc(B.Bytes);
      internal_assert(B.Data)
          << "allocation of " << B.Bytes << " bytes failed for "
          << Prog.Buffers[size_t(In.Aux)].Name;
      B.SizeElems = Elems;
      S.noteAllocation(B.Bytes);
      break;
    }
    case VmOp::FreeOp: {
      RtBuf &B = Bufs[size_t(In.Aux)];
      S.noteFree(B.Bytes);
      halideFree(B.Data);
      B.Data = nullptr;
      B.Bytes = 0;
      B.SizeElems = 0;
      break;
    }

    case VmOp::Jump:
      PC = size_t(In.Aux);
      continue;
    case VmOp::JumpIfFalse:
      if (!R[In.A].I) {
        PC = size_t(In.Aux);
        continue;
      }
      break;
    case VmOp::LoopNext:
      if (++R[In.A].I < R[In.B].I) {
        PC = size_t(In.Aux);
        continue;
      }
      break;

    case VmOp::AssertCond:
      user_assert(R[In.A].I)
          << "pipeline assertion failed: " << Prog.Messages[size_t(In.Aux)];
      break;

    case VmOp::CallExtern: {
      const bool Single = In.Bits == 32;
      for (int I = 0; I < L; ++I) {
        double X = R[In.A + I].F;
        double V = 0;
        switch (VmExtern(In.Aux)) {
        case VmExtern::Sqrt:
          V = Single ? std::sqrt(float(X)) : std::sqrt(X);
          break;
        case VmExtern::Sin:
          V = Single ? std::sin(float(X)) : std::sin(X);
          break;
        case VmExtern::Cos:
          V = Single ? std::cos(float(X)) : std::cos(X);
          break;
        case VmExtern::Exp:
          V = Single ? std::exp(float(X)) : std::exp(X);
          break;
        case VmExtern::Log:
          V = Single ? std::log(float(X)) : std::log(X);
          break;
        case VmExtern::Floor:
          V = std::floor(X);
          break;
        case VmExtern::Ceil:
          V = std::ceil(X);
          break;
        case VmExtern::Round:
          V = std::nearbyint(X);
          break;
        case VmExtern::Pow: {
          double Y = R[In.B + I].F;
          V = Single ? std::pow(float(X), float(Y)) : std::pow(X, Y);
          break;
        }
        }
        R[In.Dst + I].F = roundF(V, In.Bits);
      }
      break;
    }

    case VmOp::CountParallel:
      ParallelIters += R[In.A].I;
      break;

    case VmOp::Halt: {
      if (Stats) {
        S.ParallelIterations = ParallelIters;
        for (size_t BI = 0; BI < NumBufs; ++BI) {
          const RtBuf &B = Bufs[BI];
          if (B.Loads)
            S.LoadsPerBuffer[Prog.Buffers[BI].Name] += B.Loads;
          if (B.Stores)
            S.StoresPerBuffer[Prog.Buffers[BI].Name] += B.Stores;
        }
        *Stats = std::move(S);
      }
      return 0;
    }
    }
    ++PC;
  }
}
