//===-- vm/Bytecode.cpp ---------------------------------------------------===//

#include "vm/Bytecode.h"

#include <sstream>

using namespace halide;

const char *halide::vmOpName(VmOp Op) {
  switch (Op) {
  case VmOp::Mov: return "mov";
  case VmOp::AddI: return "add.i";
  case VmOp::SubI: return "sub.i";
  case VmOp::MulI: return "mul.i";
  case VmOp::DivI: return "div.i";
  case VmOp::ModI: return "mod.i";
  case VmOp::MinI: return "min.i";
  case VmOp::MaxI: return "max.i";
  case VmOp::DivU: return "div.u";
  case VmOp::ModU: return "mod.u";
  case VmOp::MinU: return "min.u";
  case VmOp::MaxU: return "max.u";
  case VmOp::AddF: return "add.f";
  case VmOp::SubF: return "sub.f";
  case VmOp::MulF: return "mul.f";
  case VmOp::DivF: return "div.f";
  case VmOp::ModF: return "mod.f";
  case VmOp::MinF: return "min.f";
  case VmOp::MaxF: return "max.f";
  case VmOp::EqI: return "eq.i";
  case VmOp::NeI: return "ne.i";
  case VmOp::LtI: return "lt.i";
  case VmOp::LeI: return "le.i";
  case VmOp::LtU: return "lt.u";
  case VmOp::LeU: return "le.u";
  case VmOp::EqF: return "eq.f";
  case VmOp::NeF: return "ne.f";
  case VmOp::LtF: return "lt.f";
  case VmOp::LeF: return "le.f";
  case VmOp::AndB: return "and.b";
  case VmOp::OrB: return "or.b";
  case VmOp::NotB: return "not.b";
  case VmOp::Select: return "select";
  case VmOp::CastIntWrap: return "cast.ii";
  case VmOp::CastIntToF: return "cast.if";
  case VmOp::CastUIntToF: return "cast.uf";
  case VmOp::CastFToInt: return "cast.fi";
  case VmOp::CastFToF: return "cast.ff";
  case VmOp::Ramp: return "ramp";
  case VmOp::BroadcastSlot: return "broadcast";
  case VmOp::Load: return "load";
  case VmOp::Store: return "store";
  case VmOp::LoadDense: return "load.dense";
  case VmOp::StoreDense: return "store.dense";
  case VmOp::Alloc: return "alloc";
  case VmOp::FreeOp: return "free";
  case VmOp::Jump: return "jump";
  case VmOp::JumpIfFalse: return "jump_if_false";
  case VmOp::LoopNext: return "loop_next";
  case VmOp::ParFor: return "par_for";
  case VmOp::TaskRet: return "task_ret";
  case VmOp::AssertCond: return "assert";
  case VmOp::CallExtern: return "call";
  case VmOp::CountParallel: return "count_parallel";
  case VmOp::ProfEnter: return "prof_enter";
  case VmOp::ProfExit: return "prof_exit";
  case VmOp::TraceLoad: return "trace.load";
  case VmOp::TraceStore: return "trace.store";
  case VmOp::TraceBegin: return "trace.begin";
  case VmOp::TraceEnd: return "trace.end";
  case VmOp::Halt: return "halt";
  }
  return "unknown";
}

const char *halide::vmExternName(VmExtern Fn) {
  switch (Fn) {
  case VmExtern::Sqrt: return "sqrt";
  case VmExtern::Sin: return "sin";
  case VmExtern::Cos: return "cos";
  case VmExtern::Exp: return "exp";
  case VmExtern::Log: return "log";
  case VmExtern::Floor: return "floor";
  case VmExtern::Ceil: return "ceil";
  case VmExtern::Round: return "round";
  case VmExtern::Pow: return "pow";
  }
  return "unknown";
}

std::string VmProgram::disassemble() const {
  std::ostringstream OS;
  OS << "; " << Code.size() << " instructions, " << InitialRegs.size()
     << " register slots, " << Buffers.size() << " buffers, "
     << Params.size() << " params, " << Tasks.size() << " parallel tasks\n";
  for (size_t I = 0; I < Buffers.size(); ++I)
    OS << "; buf " << I << ": " << Buffers[I].Name << " ("
       << Buffers[I].ElemType.str()
       << (Buffers[I].IsBoundary ? Buffers[I].IsOutput ? ", output"
                                                       : ", input"
                                 : ", internal")
       << ")\n";
  for (const VmParamInit &P : Params)
    OS << "; param r" << P.Slot << " = " << P.Name << "\n";
  for (size_t I = 0; I < Code.size(); ++I) {
    const VmInstr &In = Code[I];
    OS << I << ":\t" << vmOpName(In.Op);
    if (In.Lanes > 1)
      OS << " x" << In.Lanes;
    switch (In.Op) {
    case VmOp::Jump:
      OS << " -> " << In.Aux;
      break;
    case VmOp::JumpIfFalse:
      OS << " r" << In.A << " -> " << In.Aux;
      break;
    case VmOp::LoopNext:
      OS << " r" << In.A << " < r" << In.B << " -> " << In.Aux;
      break;
    case VmOp::Load:
      OS << " r" << In.Dst << ", buf" << In.Aux << "[r" << In.A << "]";
      break;
    case VmOp::Store:
      OS << " buf" << In.Aux << "[r" << In.B << "], r" << In.A;
      break;
    case VmOp::LoadDense:
      OS << " r" << In.Dst << ", buf" << In.Aux << "[r" << In.A << " ..]";
      break;
    case VmOp::StoreDense:
      OS << " buf" << In.Aux << "[r" << In.B << " ..], r" << In.A;
      break;
    case VmOp::Alloc:
      OS << " buf" << In.Aux << ", elems=r" << In.A;
      break;
    case VmOp::FreeOp:
      OS << " buf" << In.Aux;
      break;
    case VmOp::AssertCond:
      OS << " r" << In.A << ", \"" << Messages[size_t(In.Aux)] << "\"";
      break;
    case VmOp::CallExtern:
      OS << " r" << In.Dst << ", " << vmExternName(VmExtern(In.Aux))
         << "(r" << In.A;
      if (VmExtern(In.Aux) == VmExtern::Pow)
        OS << ", r" << In.B;
      OS << ")";
      break;
    case VmOp::CountParallel:
      OS << " r" << In.A;
      break;
    case VmOp::ProfEnter:
    case VmOp::ProfExit:
      OS << " \"" << StageNames[size_t(In.Aux)] << "\"";
      break;
    case VmOp::TraceLoad:
    case VmOp::TraceStore:
      OS << " \"" << Buffers[size_t(In.Aux)].Name << "\"[r" << In.A
         << (In.SignedWrap ? " ..]" : "]") << ", r" << In.B;
      break;
    case VmOp::TraceBegin:
      OS << " \"" << Buffers[size_t(In.Aux)].Name << "\" extents=r" << In.A;
      break;
    case VmOp::TraceEnd:
      OS << " \"" << Buffers[size_t(In.Aux)].Name << "\"";
      break;
    case VmOp::ParFor: {
      const VmTaskDesc &T = Tasks[size_t(In.Dst)];
      OS << " task" << In.Dst << " min=r" << In.A << " extent=r" << In.B
         << " counter=r" << T.CounterReg << " body=" << T.BodyStart
         << " live_in={";
      for (size_t R = 0; R < T.LiveIn.size(); ++R) {
        if (R)
          OS << ",";
        OS << "r" << T.LiveIn[R].first;
        if (T.LiveIn[R].second > 1)
          OS << "+" << T.LiveIn[R].second;
      }
      OS << "} -> " << In.Aux;
      break;
    }
    case VmOp::TaskRet:
    case VmOp::Halt:
      break;
    case VmOp::Select:
      OS << " r" << In.Dst << ", r" << In.C << " ? r" << In.A << " : r"
         << In.B;
      break;
    case VmOp::NotB:
    case VmOp::Mov:
    case VmOp::BroadcastSlot:
    case VmOp::CastIntWrap:
    case VmOp::CastIntToF:
    case VmOp::CastUIntToF:
    case VmOp::CastFToInt:
    case VmOp::CastFToF:
      OS << " r" << In.Dst << ", r" << In.A;
      break;
    default:
      OS << " r" << In.Dst << ", r" << In.A << ", r" << In.B;
      break;
    }
    OS << "\n";
  }
  return OS.str();
}
