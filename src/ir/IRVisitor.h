//===-- ir/IRVisitor.h - Read-only IR traversal -----------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic visitor over the IR. The base class visits every child, so
/// analyses override only the nodes they care about.
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_IR_IRVISITOR_H
#define HALIDE_IR_IRVISITOR_H

#include "ir/Expr.h"

namespace halide {

/// Read-only visitor whose default implementations traverse all children.
class IRVisitor {
public:
  virtual ~IRVisitor();

  virtual void visit(const IntImm *);
  virtual void visit(const UIntImm *);
  virtual void visit(const FloatImm *);
  virtual void visit(const StringImm *);
  virtual void visit(const Cast *);
  virtual void visit(const Variable *);
  virtual void visit(const Add *);
  virtual void visit(const Sub *);
  virtual void visit(const Mul *);
  virtual void visit(const Div *);
  virtual void visit(const Mod *);
  virtual void visit(const Min *);
  virtual void visit(const Max *);
  virtual void visit(const EQ *);
  virtual void visit(const NE *);
  virtual void visit(const LT *);
  virtual void visit(const LE *);
  virtual void visit(const GT *);
  virtual void visit(const GE *);
  virtual void visit(const And *);
  virtual void visit(const Or *);
  virtual void visit(const Not *);
  virtual void visit(const Select *);
  virtual void visit(const Load *);
  virtual void visit(const Ramp *);
  virtual void visit(const Broadcast *);
  virtual void visit(const Call *);
  virtual void visit(const Let *);
  virtual void visit(const LetStmt *);
  virtual void visit(const AssertStmt *);
  virtual void visit(const ProducerConsumer *);
  virtual void visit(const For *);
  virtual void visit(const Store *);
  virtual void visit(const Provide *);
  virtual void visit(const Allocate *);
  virtual void visit(const Realize *);
  virtual void visit(const Block *);
  virtual void visit(const IfThenElse *);
  virtual void visit(const Evaluate *);
};

/// Number of IR nodes in a tree, counting every expression and statement
/// node once per occurrence. Shared subtrees reached through multiple
/// parents are counted at each reachable position, so this measures the
/// size a consumer walking the tree actually sees.
size_t countIRNodes(const Expr &E);
size_t countIRNodes(const Stmt &S);

/// True when \p E has more than \p Limit nodes; costs O(Limit), not
/// O(tree) — the form size-threshold checks should use.
bool irNodeCountExceeds(const Expr &E, size_t Limit);

} // namespace halide

#endif // HALIDE_IR_IRVISITOR_H
