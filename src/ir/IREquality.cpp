//===-- ir/IREquality.cpp ---------------------------------------------------=//

#include "ir/IREquality.h"
#include "ir/IRPrinter.h"

using namespace halide;

namespace {

int compareInt(int64_t A, int64_t B) { return A < B ? -1 : (A > B ? 1 : 0); }
int compareUInt(uint64_t A, uint64_t B) {
  return A < B ? -1 : (A > B ? 1 : 0);
}
int compareDouble(double A, double B) {
  return A < B ? -1 : (A > B ? 1 : 0);
}

int compareTypes(Type A, Type B) {
  if (int C = compareInt(int(A.Code), int(B.Code)))
    return C;
  if (int C = compareInt(A.Bits, B.Bits))
    return C;
  return compareInt(A.Lanes, B.Lanes);
}

int compareNames(const std::string &A, const std::string &B) {
  int C = A.compare(B);
  return C < 0 ? -1 : (C > 0 ? 1 : 0);
}

template <typename T>
int compareBinaryOp(const Expr &A, const Expr &B) {
  const T *OpA = A.as<T>();
  const T *OpB = B.as<T>();
  if (int C = compareExpr(OpA->A, OpB->A))
    return C;
  return compareExpr(OpA->B, OpB->B);
}

int compareStmtInternal(const Stmt &A, const Stmt &B);

int compareExprList(const std::vector<Expr> &A, const std::vector<Expr> &B) {
  if (int C = compareInt(int64_t(A.size()), int64_t(B.size())))
    return C;
  for (size_t I = 0; I < A.size(); ++I)
    if (int C = compareExpr(A[I], B[I]))
      return C;
  return 0;
}

} // namespace

int halide::compareExpr(const Expr &A, const Expr &B) {
  if (A.sameAs(B))
    return 0;
  if (!A.defined())
    return B.defined() ? -1 : 0;
  if (!B.defined())
    return 1;
  if (int C = compareInt(int(A->Kind), int(B->Kind)))
    return C;
  if (int C = compareTypes(A.type(), B.type()))
    return C;

  switch (A->Kind) {
  case IRNodeKind::IntImm:
    return compareInt(A.as<IntImm>()->Value, B.as<IntImm>()->Value);
  case IRNodeKind::UIntImm:
    return compareUInt(A.as<UIntImm>()->Value, B.as<UIntImm>()->Value);
  case IRNodeKind::FloatImm:
    return compareDouble(A.as<FloatImm>()->Value, B.as<FloatImm>()->Value);
  case IRNodeKind::StringImm:
    return compareNames(A.as<StringImm>()->Value, B.as<StringImm>()->Value);
  case IRNodeKind::Cast:
    return compareExpr(A.as<Cast>()->Value, B.as<Cast>()->Value);
  case IRNodeKind::Variable:
    return compareNames(A.as<Variable>()->Name, B.as<Variable>()->Name);
  case IRNodeKind::Add:
    return compareBinaryOp<Add>(A, B);
  case IRNodeKind::Sub:
    return compareBinaryOp<Sub>(A, B);
  case IRNodeKind::Mul:
    return compareBinaryOp<Mul>(A, B);
  case IRNodeKind::Div:
    return compareBinaryOp<Div>(A, B);
  case IRNodeKind::Mod:
    return compareBinaryOp<Mod>(A, B);
  case IRNodeKind::Min:
    return compareBinaryOp<Min>(A, B);
  case IRNodeKind::Max:
    return compareBinaryOp<Max>(A, B);
  case IRNodeKind::EQ:
    return compareBinaryOp<EQ>(A, B);
  case IRNodeKind::NE:
    return compareBinaryOp<NE>(A, B);
  case IRNodeKind::LT:
    return compareBinaryOp<LT>(A, B);
  case IRNodeKind::LE:
    return compareBinaryOp<LE>(A, B);
  case IRNodeKind::GT:
    return compareBinaryOp<GT>(A, B);
  case IRNodeKind::GE:
    return compareBinaryOp<GE>(A, B);
  case IRNodeKind::And:
    return compareBinaryOp<And>(A, B);
  case IRNodeKind::Or:
    return compareBinaryOp<Or>(A, B);
  case IRNodeKind::Not:
    return compareExpr(A.as<Not>()->A, B.as<Not>()->A);
  case IRNodeKind::Select: {
    const Select *SA = A.as<Select>(), *SB = B.as<Select>();
    if (int C = compareExpr(SA->Condition, SB->Condition))
      return C;
    if (int C = compareExpr(SA->TrueValue, SB->TrueValue))
      return C;
    return compareExpr(SA->FalseValue, SB->FalseValue);
  }
  case IRNodeKind::Load: {
    const Load *LA = A.as<Load>(), *LB = B.as<Load>();
    if (int C = compareNames(LA->Name, LB->Name))
      return C;
    return compareExpr(LA->Index, LB->Index);
  }
  case IRNodeKind::Ramp: {
    const Ramp *RA = A.as<Ramp>(), *RB = B.as<Ramp>();
    if (int C = compareExpr(RA->Base, RB->Base))
      return C;
    if (int C = compareExpr(RA->Stride, RB->Stride))
      return C;
    return compareInt(RA->Lanes, RB->Lanes);
  }
  case IRNodeKind::Broadcast:
    return compareExpr(A.as<Broadcast>()->Value, B.as<Broadcast>()->Value);
  case IRNodeKind::Call: {
    const Call *CA = A.as<Call>(), *CB = B.as<Call>();
    if (int C = compareNames(CA->Name, CB->Name))
      return C;
    if (int C = compareInt(int(CA->CallKind), int(CB->CallKind)))
      return C;
    return compareExprList(CA->Args, CB->Args);
  }
  case IRNodeKind::Let: {
    const Let *LA = A.as<Let>(), *LB = B.as<Let>();
    if (int C = compareNames(LA->Name, LB->Name))
      return C;
    if (int C = compareExpr(LA->Value, LB->Value))
      return C;
    return compareExpr(LA->Body, LB->Body);
  }
  default:
    internal_error << "compareExpr on statement kind";
    return 0;
  }
}

bool halide::equal(const Expr &A, const Expr &B) {
  return compareExpr(A, B) == 0;
}

// Statement equality is only needed by tests; printing both sides and
// comparing the text is structural enough for our golden tests, but we
// implement a direct recursive comparison to avoid depending on formatting.
namespace {

int compareStmtInternal(const Stmt &A, const Stmt &B) {
  if (A.sameAs(B))
    return 0;
  if (!A.defined())
    return B.defined() ? -1 : 0;
  if (!B.defined())
    return 1;
  if (int C = compareInt(int(A->Kind), int(B->Kind)))
    return C;
  switch (A->Kind) {
  case IRNodeKind::LetStmt: {
    const LetStmt *SA = A.as<LetStmt>(), *SB = B.as<LetStmt>();
    if (int C = compareNames(SA->Name, SB->Name))
      return C;
    if (int C = compareExpr(SA->Value, SB->Value))
      return C;
    return compareStmtInternal(SA->Body, SB->Body);
  }
  case IRNodeKind::AssertStmt: {
    const AssertStmt *SA = A.as<AssertStmt>(), *SB = B.as<AssertStmt>();
    if (int C = compareExpr(SA->Condition, SB->Condition))
      return C;
    return compareNames(SA->Message, SB->Message);
  }
  case IRNodeKind::ProducerConsumer: {
    const auto *SA = A.as<ProducerConsumer>(), *SB = B.as<ProducerConsumer>();
    if (int C = compareNames(SA->Name, SB->Name))
      return C;
    if (int C = compareInt(SA->IsProducer, SB->IsProducer))
      return C;
    return compareStmtInternal(SA->Body, SB->Body);
  }
  case IRNodeKind::For: {
    const For *SA = A.as<For>(), *SB = B.as<For>();
    if (int C = compareNames(SA->Name, SB->Name))
      return C;
    if (int C = compareInt(int(SA->Kind), int(SB->Kind)))
      return C;
    if (int C = compareExpr(SA->MinExpr, SB->MinExpr))
      return C;
    if (int C = compareExpr(SA->Extent, SB->Extent))
      return C;
    return compareStmtInternal(SA->Body, SB->Body);
  }
  case IRNodeKind::Store: {
    const Store *SA = A.as<Store>(), *SB = B.as<Store>();
    if (int C = compareNames(SA->Name, SB->Name))
      return C;
    if (int C = compareExpr(SA->Value, SB->Value))
      return C;
    return compareExpr(SA->Index, SB->Index);
  }
  case IRNodeKind::Provide: {
    const Provide *SA = A.as<Provide>(), *SB = B.as<Provide>();
    if (int C = compareNames(SA->Name, SB->Name))
      return C;
    if (int C = compareExpr(SA->Value, SB->Value))
      return C;
    return compareExprList(SA->Args, SB->Args);
  }
  case IRNodeKind::Allocate: {
    const Allocate *SA = A.as<Allocate>(), *SB = B.as<Allocate>();
    if (int C = compareNames(SA->Name, SB->Name))
      return C;
    if (int C = compareTypes(SA->ElemType, SB->ElemType))
      return C;
    if (int C = compareExprList(SA->Extents, SB->Extents))
      return C;
    return compareStmtInternal(SA->Body, SB->Body);
  }
  case IRNodeKind::Realize: {
    const Realize *SA = A.as<Realize>(), *SB = B.as<Realize>();
    if (int C = compareNames(SA->Name, SB->Name))
      return C;
    if (int C = compareInt(int64_t(SA->Bounds.size()),
                           int64_t(SB->Bounds.size())))
      return C;
    for (size_t I = 0; I < SA->Bounds.size(); ++I) {
      if (int C = compareExpr(SA->Bounds[I].Min, SB->Bounds[I].Min))
        return C;
      if (int C = compareExpr(SA->Bounds[I].Extent, SB->Bounds[I].Extent))
        return C;
    }
    return compareStmtInternal(SA->Body, SB->Body);
  }
  case IRNodeKind::Block: {
    const Block *SA = A.as<Block>(), *SB = B.as<Block>();
    if (int C = compareStmtInternal(SA->First, SB->First))
      return C;
    return compareStmtInternal(SA->Rest, SB->Rest);
  }
  case IRNodeKind::IfThenElse: {
    const IfThenElse *SA = A.as<IfThenElse>(), *SB = B.as<IfThenElse>();
    if (int C = compareExpr(SA->Condition, SB->Condition))
      return C;
    if (int C = compareStmtInternal(SA->ThenCase, SB->ThenCase))
      return C;
    return compareStmtInternal(SA->ElseCase, SB->ElseCase);
  }
  case IRNodeKind::Evaluate:
    return compareExpr(A.as<Evaluate>()->Value, B.as<Evaluate>()->Value);
  default:
    internal_error << "compareStmt on expression kind";
    return 0;
  }
}

} // namespace

bool halide::equal(const Stmt &A, const Stmt &B) {
  return compareStmtInternal(A, B) == 0;
}
