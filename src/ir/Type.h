//===-- ir/Type.h - Scalar and vector value types ---------------*- C++ -*-===//
//
// Part of the halide-pldi13-repro project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types of values computed by pipelines: signed/unsigned integers and floats
/// of a given bit width, with a vector lane count. Vector types are produced
/// only by the vectorization pass (paper section 4.5); front-end expressions
/// are always scalar (lanes == 1).
///
//===----------------------------------------------------------------------===//

#ifndef HALIDE_IR_TYPE_H
#define HALIDE_IR_TYPE_H

#include "support/Util.h"

#include <cstdint>
#include <string>

namespace halide {

/// The fundamental scalar kind of a Type.
enum class TypeCode : uint8_t {
  Int,    ///< Signed two's-complement integer.
  UInt,   ///< Unsigned integer. UInt(1) is the boolean type.
  Float,  ///< IEEE floating point (32 or 64 bits).
  Handle, ///< An opaque pointer-sized value (used for buffer base pointers).
};

/// A value type: scalar code, bit width, and vector lane count.
struct Type {
  TypeCode Code = TypeCode::Int;
  int Bits = 32;
  int Lanes = 1;

  Type() = default;
  Type(TypeCode Code, int Bits, int Lanes) : Code(Code), Bits(Bits),
                                             Lanes(Lanes) {
    internal_assert(Lanes >= 1) << "type with non-positive lanes";
  }

  bool isInt() const { return Code == TypeCode::Int; }
  bool isUInt() const { return Code == TypeCode::UInt; }
  bool isFloat() const { return Code == TypeCode::Float; }
  bool isHandle() const { return Code == TypeCode::Handle; }
  bool isBool() const { return Code == TypeCode::UInt && Bits == 1; }
  bool isScalar() const { return Lanes == 1; }
  bool isVector() const { return Lanes > 1; }

  /// The same type with a different lane count.
  Type withLanes(int NewLanes) const { return Type(Code, Bits, NewLanes); }
  /// The scalar element type of this (possibly vector) type.
  Type element() const { return withLanes(1); }
  /// The same lane count with a different scalar code/width.
  Type withCode(TypeCode NewCode) const { return Type(NewCode, Bits, Lanes); }

  /// Number of bytes a scalar element occupies in a buffer.
  int bytes() const { return (Bits + 7) / 8; }

  /// Smallest/largest representable value for integer types (as int64 /
  /// uint64). Asserts on floats.
  int64_t intMin() const;
  int64_t intMax() const;
  uint64_t uintMax() const;

  /// True if the given constant is exactly representable in this type.
  bool canRepresent(int64_t Value) const;
  bool canRepresent(double Value) const;

  bool operator==(const Type &Other) const {
    return Code == Other.Code && Bits == Other.Bits && Lanes == Other.Lanes;
  }
  bool operator!=(const Type &Other) const { return !(*this == Other); }

  /// A short printable form such as "int32" or "uint8x4".
  std::string str() const;
};

/// Convenience constructors mirroring the names in the paper's examples.
inline Type Int(int Bits, int Lanes = 1) {
  return Type(TypeCode::Int, Bits, Lanes);
}
inline Type UInt(int Bits, int Lanes = 1) {
  return Type(TypeCode::UInt, Bits, Lanes);
}
inline Type Float(int Bits, int Lanes = 1) {
  return Type(TypeCode::Float, Bits, Lanes);
}
inline Type Bool(int Lanes = 1) { return UInt(1, Lanes); }
inline Type Handle(int Lanes = 1) {
  return Type(TypeCode::Handle, 64, Lanes);
}

} // namespace halide

#endif // HALIDE_IR_TYPE_H
